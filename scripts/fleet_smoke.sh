#!/usr/bin/env sh
# fleet_smoke.sh — end-to-end smoke of durable warm state and fleet mode.
#
# Phase A (one replica, direct): run the 21-workload suite against an idiomd
# with -state-dir, restart it, and assert the restarted process answers the
# whole suite byte-identically with ZERO fresh solves (everything from the
# disk spill) and still serves the pack registered before the restart.
#
# Phase B (two replicas + idiomfront): the suite through the consistent-hash
# front door, twice; pass 2 must add no per-replica misses (>= 99% warm is the
# gate; zero is what we assert). A replica is then restarted on its state dir
# and must answer warm through the router, and a third replica booted with
# -warm-from inherits phase A's memo and answers the suite with zero solves.
#
# Phase C (fairness through the router): cmd/soak -addr drives two
# authenticated -no-memo replicas behind a fresh front, asserting the
# fair-share, auth, deadline and drain contracts hold across the fleet
# boundary.
#
# CI runs this as `make fleet-smoke`; locally it is the same command.
set -eu

BASE_PORT="${FLEET_SMOKE_PORT:-8191}"
A1="127.0.0.1:$BASE_PORT"
B1="127.0.0.1:$((BASE_PORT + 1))"
B2="127.0.0.1:$((BASE_PORT + 2))"
B3="127.0.0.1:$((BASE_PORT + 3))"
FRONT="127.0.0.1:$((BASE_PORT + 4))"
C1="127.0.0.1:$((BASE_PORT + 5))"
C2="127.0.0.1:$((BASE_PORT + 6))"
FRONT2="127.0.0.1:$((BASE_PORT + 7))"

WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT INT TERM

fail() {
    echo "fleet_smoke: $1" >&2
    for log in "$WORK"/*.log; do
        [ -f "$log" ] && { echo "--- $log" >&2; tail -20 "$log" >&2; }
    done
    exit 1
}

go build -o "$WORK/idiomd" ./cmd/idiomd
go build -o "$WORK/idiomfront" ./cmd/idiomfront
go build -o "$WORK/suitejson" ./cmd/suitejson
go build -o "$WORK/soak" ./cmd/soak
go build -o "$WORK/idlc" ./cmd/idlc

"$WORK/suitejson" >"$WORK/suite.json"

wait_healthy() {
    i=0
    until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && fail "$1 never became healthy"
        sleep 0.1
    done
}

# stat_of ADDR KEY: first occurrence of "KEY": N in the replica's /statsz.
stat_of() {
    curl -fsS "http://$1/statsz" | grep -o "\"$2\": [0-9]*" | head -1 | grep -o '[0-9]*$'
}

# normalize FILE: strip the run-dependent fields (wall time, memo counter
# snapshot) from a detect response, leaving only what the protocol pins.
normalize() {
    sed '/"elapsed_ns"/d;/"memo": {/,/^[[:space:]]*},\{0,1\}$/d' "$1"
}

run_suite() {
    curl -fsS -X POST "http://$1/v1/detect" --data-binary @"$WORK/suite.json"
}

# --- Phase A: warm restart of a single replica -----------------------------

STATE_A="$WORK/state-a"
"$WORK/idiomd" -addr "$A1" -state-dir "$STATE_A" >"$WORK/a1.log" 2>&1 &
A_PID=$!
PIDS="$PIDS $A_PID"
wait_healthy "$A1"

# Register a pack before the restart; it must survive without re-registration.
"$WORK/idlc" -source >"$WORK/pack.idl"
PACKSRC=$(awk 'BEGIN{ORS="\\n"} {print}' "$WORK/pack.idl")
printf '{"pack":"fleet","source":"%s","idioms":[{"name":"Dot","top":"Reduction","class":"Scalar Reduction","scheme":"reduction","kind":"reduction"}]}' "$PACKSRC" >"$WORK/packbody.json"
REG=$(curl -fsS -X POST "http://$A1/v1/idioms" --data-binary @"$WORK/packbody.json")
case "$REG" in
*'"name": "fleet"'*) ;;
*) fail "phase A: pack registration failed: $REG" ;;
esac

run_suite "$A1" >"$WORK/a_pass1.json"
normalize "$WORK/a_pass1.json" >"$WORK/a_pass1.norm"

# Graceful stop (drains + flushes the spill), then boot a fresh process on
# the same state dir.
kill -TERM "$A_PID"
wait "$A_PID" 2>/dev/null || true
"$WORK/idiomd" -addr "$A1" -state-dir "$STATE_A" >"$WORK/a1b.log" 2>&1 &
A_PID=$!
PIDS="$PIDS $A_PID"
wait_healthy "$A1"

PACKS=$(curl -fsS "http://$A1/v1/idioms?pack=fleet")
case "$PACKS" in
*'"name": "fleet"'*) ;;
*) fail "phase A: pack did not survive the restart: $PACKS" ;;
esac
MATCH=$(curl -fsS -X POST "http://$A1/v1/match" -d '{
  "name": "dot.c",
  "pack": "fleet",
  "source": "double dot(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; } return s; }"
}')
case "$MATCH" in
*'"idiom": "Dot"'*) ;;
*) fail "phase A: replayed pack did not serve /v1/match: $MATCH" ;;
esac

run_suite "$A1" >"$WORK/a_pass2.json"
normalize "$WORK/a_pass2.json" >"$WORK/a_pass2.norm"
cmp -s "$WORK/a_pass1.norm" "$WORK/a_pass2.norm" ||
    fail "phase A: restarted replica's suite results differ from the original run"

MISSES=$(stat_of "$A1" misses)
SPILL_HITS=$(stat_of "$A1" spill_hits)
[ "$MISSES" -eq 0 ] || fail "phase A: restarted replica re-solved $MISSES times; want 0 (disk-warm)"
[ "$SPILL_HITS" -gt 0 ] || fail "phase A: restarted replica reported no disk read-throughs"
echo "fleet_smoke: phase A OK (restart warm: 0 misses, $SPILL_HITS spill hits, pack survived)"

# --- Phase B: two replicas behind idiomfront -------------------------------

STATE_B1="$WORK/state-b1"
STATE_B2="$WORK/state-b2"
"$WORK/idiomd" -addr "$B1" -state-dir "$STATE_B1" >"$WORK/b1.log" 2>&1 &
B1_PID=$!
PIDS="$PIDS $B1_PID"
"$WORK/idiomd" -addr "$B2" -state-dir "$STATE_B2" >"$WORK/b2.log" 2>&1 &
B2_PID=$!
PIDS="$PIDS $B2_PID"
wait_healthy "$B1"
wait_healthy "$B2"
"$WORK/idiomfront" -addr "$FRONT" -replicas "http://$B1,http://$B2" >"$WORK/front.log" 2>&1 &
F_PID=$!
PIDS="$PIDS $F_PID"
wait_healthy "$FRONT"

# Pack broadcast: one POST lands it on every replica.
REG=$(curl -fsS -X POST "http://$FRONT/v1/idioms" --data-binary @"$WORK/packbody.json")
case "$REG" in
*'"name": "fleet"'*) ;;
*) fail "phase B: pack broadcast failed: $REG" ;;
esac
for R in "$B1" "$B2"; do
    curl -fsS "http://$R/v1/idioms?pack=fleet" | grep -q '"name": "fleet"' ||
        fail "phase B: replica $R missing the broadcast pack"
done

run_suite "$FRONT" >"$WORK/b_pass1.json"
normalize "$WORK/b_pass1.json" >"$WORK/b_pass1.norm"
# The fleet's answers must equal the single-replica answers for the same body.
cmp -s "$WORK/a_pass1.norm" "$WORK/b_pass1.norm" ||
    fail "phase B: fleet suite results differ from the single-replica run"

B1_M1=$(stat_of "$B1" misses)
B2_M1=$(stat_of "$B2" misses)
B1_C1=$(stat_of "$B1" completed)
B2_C1=$(stat_of "$B2" completed)
[ "$B1_C1" -gt 0 ] || fail "phase B: replica 1 served nothing; routing is not spreading"
[ "$B2_C1" -gt 0 ] || fail "phase B: replica 2 served nothing; routing is not spreading"

run_suite "$FRONT" >"$WORK/b_pass2.json"
normalize "$WORK/b_pass2.json" >"$WORK/b_pass2.norm"
cmp -s "$WORK/b_pass1.norm" "$WORK/b_pass2.norm" ||
    fail "phase B: pass 2 through the front differs from pass 1"
B1_M2=$(stat_of "$B1" misses)
B2_M2=$(stat_of "$B2" misses)
[ "$B1_M2" -eq "$B1_M1" ] && [ "$B2_M2" -eq "$B2_M1" ] ||
    fail "phase B: pass 2 added misses (r1 $B1_M1->$B1_M2, r2 $B2_M1->$B2_M2); want fully memo-warm"

# Restart replica 1 on its state dir: it must answer warm through the router.
kill -TERM "$B1_PID"
wait "$B1_PID" 2>/dev/null || true
"$WORK/idiomd" -addr "$B1" -state-dir "$STATE_B1" >"$WORK/b1b.log" 2>&1 &
B1_PID=$!
PIDS="$PIDS $B1_PID"
wait_healthy "$B1"
run_suite "$FRONT" >"$WORK/b_pass3.json"
normalize "$WORK/b_pass3.json" >"$WORK/b_pass3.norm"
cmp -s "$WORK/b_pass1.norm" "$WORK/b_pass3.norm" ||
    fail "phase B: suite after replica restart differs"
B1_M3=$(stat_of "$B1" misses)
[ "$B1_M3" -eq 0 ] || fail "phase B: restarted replica re-solved $B1_M3 times behind the router; want 0"

# Warm handoff: a brand-new replica inherits phase A's full-suite memo over
# HTTP and answers the whole suite without a single solve.
"$WORK/idiomd" -addr "$B3" -state-dir "$WORK/state-b3" -warm-from "http://$A1" >"$WORK/b3.log" 2>&1 &
B3_PID=$!
PIDS="$PIDS $B3_PID"
wait_healthy "$B3"
run_suite "$B3" >"$WORK/b3_pass.json"
normalize "$WORK/b3_pass.json" >"$WORK/b3_pass.norm"
cmp -s "$WORK/a_pass1.norm" "$WORK/b3_pass.norm" ||
    fail "phase B: warm-from replica's results differ from the donor's"
B3_M=$(stat_of "$B3" misses)
[ "$B3_M" -eq 0 ] || fail "phase B: warm-from replica re-solved $B3_M times; want 0 (inherited memo)"
curl -fsS "http://$B3/v1/idioms?pack=fleet" | grep -q '"name": "fleet"' ||
    fail "phase B: warm-from replica did not inherit the donor's pack"
echo "fleet_smoke: phase B OK (fleet warm passes, restart warm via router, snapshot handoff)"

# Free phase A/B processes before the soak phase.
for p in $A_PID $B1_PID $B2_PID $B3_PID $F_PID; do
    kill -TERM "$p" 2>/dev/null || true
    wait "$p" 2>/dev/null || true
done
PIDS=""

# --- Phase C: fairness soak through the router -----------------------------

"$WORK/soak" -print-keys >"$WORK/keys.txt"
# -no-memo: every solve pays full price, so the fairness gates are load-
# bearing (the soak's own in-process mode runs the same way).
"$WORK/idiomd" -addr "$C1" -no-memo -slots 2 -keys "$WORK/keys.txt" >"$WORK/c1.log" 2>&1 &
PIDS="$PIDS $!"
"$WORK/idiomd" -addr "$C2" -no-memo -slots 2 -keys "$WORK/keys.txt" >"$WORK/c2.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$C1"
wait_healthy "$C2"
"$WORK/idiomfront" -addr "$FRONT2" -replicas "http://$C1,http://$C2" >"$WORK/front2.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$FRONT2"

# The light tenant's one module hashes to a single replica, so its global
# share floor is roughly half the single-replica guarantee: 0.2 across two.
"$WORK/soak" -addr "http://$FRONT2" -duration 9s -min-share 0.2 -p99-floor 1s ||
    fail "phase C: soak through the router violated a fairness contract"
echo "fleet_smoke: phase C OK (fair-share soak held through the front door)"

echo "fleet_smoke: OK"
