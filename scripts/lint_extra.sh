#!/usr/bin/env sh
# lint_extra.sh — third-party static analysis, pinned by version so local
# runs and CI agree on findings:
#
#   staticcheck  honnef.co/go/tools   (correctness + simplification checks)
#   govulncheck  golang.org/x/vuln    (known-vulnerability reachability scan)
#
# The tools are fetched through the module proxy. The dev container is often
# fully offline (no proxy reachable), so availability is probed first: if a
# tool cannot be installed, it is SKIPPED with a notice and the script still
# succeeds — the repo-local invariant analyzers (cmd/idiomvet) always run
# regardless. CI, which has network, runs both at full strength; a real
# finding from either tool fails the build.
set -u

STATICCHECK_MOD="honnef.co/go/tools/cmd/staticcheck@2025.1.1"
GOVULNCHECK_MOD="golang.org/x/vuln/cmd/govulncheck@v1.1.4"

GOBIN_DIR="$(mktemp -d)"
trap 'rm -rf "$GOBIN_DIR"' EXIT INT TERM

status=0

run_tool() {
    mod="$1"
    shift
    name="${mod##*/}"
    name="${name%%@*}"
    # Probe: installing resolves + builds the pinned version. Failure here
    # means the tool is unreachable (offline container), not a lint finding.
    if ! GOBIN="$GOBIN_DIR" go install "$mod" >/dev/null 2>&1; then
        echo "lint_extra: SKIP $name ($mod unavailable; module proxy unreachable?)"
        return 0
    fi
    echo "lint_extra: $name $*"
    if ! "$GOBIN_DIR/$name" "$@"; then
        echo "lint_extra: $name failed" >&2
        status=1
    fi
}

run_tool "$STATICCHECK_MOD" ./...
run_tool "$GOVULNCHECK_MOD" ./...

exit "$status"
