#!/usr/bin/env sh
# serve_smoke.sh — end-to-end smoke of the HTTP front door: build idiomd,
# start it, wait for /healthz, run one streamed detection via curl, register
# an idiom pack and run a /v1/match round-trip against it (live, no
# restart), check /statsz, shut down. CI runs this as a job step; `make
# serve-smoke` runs the same thing locally.
set -eu

ADDR="127.0.0.1:${IDIOMD_PORT:-8173}"
BIN="$(mktemp -d)/idiomd"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/idiomd

"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM

# Wait for liveness (up to ~10s).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "serve_smoke: idiomd never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

OUT=$(curl -fsS -X POST "http://$ADDR/v1/detect/stream" -d '{
  "name": "dot.c",
  "source": "double dot(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; } return s; }"
}')
echo "$OUT"
case "$OUT" in
*'"idiom":"Reduction"'*) ;;
*)
    echo "serve_smoke: streamed detection did not report the Reduction idiom" >&2
    exit 1
    ;;
esac

# Register an idiom pack on the live server (no rebuild, no restart) and
# run the full match pipeline against it. The pack source is the built-in
# IDL library dumped by idlc — the same registration path a user pack takes.
PACKIDL=$(mktemp)
go run ./cmd/idlc -source >"$PACKIDL"
# The IDL contains no quotes or backslashes; newline-escaping is enough to
# embed it as a JSON string.
PACKSRC=$(awk 'BEGIN{ORS="\\n"} {print}' "$PACKIDL")
PACKBODY=$(mktemp)
printf '{"pack":"smoke","source":"%s","idioms":[{"name":"Dot","top":"Reduction","class":"Scalar Reduction","scheme":"reduction","kind":"reduction"}]}' "$PACKSRC" >"$PACKBODY"
REG=$(curl -fsS -X POST "http://$ADDR/v1/idioms" --data-binary @"$PACKBODY")
case "$REG" in
*'"name": "smoke"'*) ;;
*)
    echo "serve_smoke: pack registration failed: $REG" >&2
    exit 1
    ;;
esac

MATCH=$(curl -fsS -X POST "http://$ADDR/v1/match" -d '{
  "name": "dot.c",
  "pack": "smoke",
  "source": "double dot(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; } return s; }"
}')
echo "$MATCH"
case "$MATCH" in
*'"idiom": "Dot"'*) ;;
*)
    echo "serve_smoke: /v1/match did not detect the pack idiom" >&2
    exit 1
    ;;
esac
case "$MATCH" in
*'lift.reduction#'*) ;;
*)
    echo "serve_smoke: /v1/match did not transform the pack idiom" >&2
    exit 1
    ;;
esac
case "$MATCH" in
*'"backend": "lift"'*) ;;
*)
    echo "serve_smoke: /v1/match carried no backend selection" >&2
    exit 1
    ;;
esac

curl -fsS "http://$ADDR/v1/backends" >/dev/null

# Explain-mode round-trip: an almost-GEMM (accumulation twisted to c*A + B,
# so every opcode GEMM wants is present but the solver rejects it) must come
# back unmatched with a GEMM near-miss row attributing the rejection to the
# constraint solver. Same source as idiomatic/testdata/nearmiss_gemm.golden.json.
EXPLAIN=$(curl -fsS -X POST "http://$ADDR/v1/match" -d '{
  "name": "almost_gemm.c",
  "opts": {"explain": true},
  "source": "void almost_gemm(int n, float* A, float* B, float* C) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { C[i*n + j] = 0.0f; float c = 0.0f; for (int k = 0; k < n; k++) { c = c * A[i*n + k] + B[k*n + j]; } C[i*n + j] = c; } } }"
}')
echo "$EXPLAIN"
case "$EXPLAIN" in
*'"near_misses"'*) ;;
*)
    echo "serve_smoke: explain-mode /v1/match carried no near-miss diagnostics" >&2
    exit 1
    ;;
esac
case "$EXPLAIN" in
*'"idiom": "GEMM"'*) ;;
*)
    echo "serve_smoke: almost-GEMM near miss did not report the GEMM idiom" >&2
    exit 1
    ;;
esac
case "$EXPLAIN" in
*'rejected during constraint solving'*) ;;
*)
    echo "serve_smoke: GEMM near miss lacked the solver-rejection delta" >&2
    exit 1
    ;;
esac

STATS=$(curl -fsS "http://$ADDR/statsz")
case "$STATS" in
*'"completed": 3'*) ;;
*)
    echo "serve_smoke: /statsz did not count the requests: $STATS" >&2
    exit 1
    ;;
esac
case "$STATS" in
*'"packs": 1'*) ;;
*)
    echo "serve_smoke: /statsz did not count the registered pack: $STATS" >&2
    exit 1
    ;;
esac
case "$STATS" in
*'"prune_mode": "reorder"'*) ;;
*)
    echo "serve_smoke: /statsz did not report the default prune mode: $STATS" >&2
    exit 1
    ;;
esac

curl -fsS "http://$ADDR/v1/idioms" >/dev/null
curl -fsS "http://$ADDR/v1/idioms?pack=smoke" >/dev/null

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "serve_smoke: OK"
