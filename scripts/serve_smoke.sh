#!/usr/bin/env sh
# serve_smoke.sh — end-to-end smoke of the HTTP front door: build idiomd,
# start it, wait for /healthz, run one streamed detection via curl, check the
# finding and /statsz, shut down. CI runs this as a job step; `make
# serve-smoke` runs the same thing locally.
set -eu

ADDR="127.0.0.1:${IDIOMD_PORT:-8173}"
BIN="$(mktemp -d)/idiomd"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/idiomd

"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM

# Wait for liveness (up to ~10s).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "serve_smoke: idiomd never became healthy" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

OUT=$(curl -fsS -X POST "http://$ADDR/v1/detect/stream" -d '{
  "name": "dot.c",
  "source": "double dot(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; } return s; }"
}')
echo "$OUT"
case "$OUT" in
*'"idiom":"Reduction"'*) ;;
*)
    echo "serve_smoke: streamed detection did not report the Reduction idiom" >&2
    exit 1
    ;;
esac

STATS=$(curl -fsS "http://$ADDR/statsz")
case "$STATS" in
*'"completed": 1'*) ;;
*)
    echo "serve_smoke: /statsz did not count the request: $STATS" >&2
    exit 1
    ;;
esac

curl -fsS "http://$ADDR/v1/idioms" >/dev/null

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "serve_smoke: OK"
