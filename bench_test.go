// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with `go test -bench=.`),
// plus the ablation benchmarks for the design choices called out in
// DESIGN.md §5:
//
//	BenchmarkTable1Detection     — idiom detection over all 21 benchmarks
//	BenchmarkDetectParallel      — concurrent engine scaling, fresh solves
//	BenchmarkSolveSplit          — intra-solve branch fan-out on the stream
//	BenchmarkPipeline            — streaming compile→detect, memo on/off
//	BenchmarkServeMatch          — /v1/match/stream over the HTTP front door
//	BenchmarkTable2CompileTime   — per-benchmark compile + detect cost
//	BenchmarkTable3APIs          — full per-API performance sweep
//	BenchmarkFig16Classes        — per-benchmark idiom classes
//	BenchmarkFig17Coverage       — runtime coverage pipeline
//	BenchmarkFig18Speedup        — end-to-end speedups, best API per device
//	BenchmarkFig19Handwritten    — comparison against OpenMP/OpenCL models
//	BenchmarkAblation*           — solver and runtime design ablations
package repro_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/idiomatic"
	"repro/internal/analysis"
	"repro/internal/cc"
	"repro/internal/constraint"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/hetero"
	"repro/internal/httpapi"
	"repro/internal/idioms"
	"repro/internal/idl"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// --- Table 1: detection over the full suite ---

func BenchmarkTable1Detection(b *testing.B) {
	mods := compileAll(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, mod := range mods {
			res, err := detect.Module(mod.mod, detect.Options{})
			if err != nil {
				b.Fatal(err)
			}
			total += len(res.Instances)
		}
		if total != 60 {
			b.Fatalf("detected %d idioms, want 60", total)
		}
	}
}

// BenchmarkDetectParallel measures the concurrent engine over the full
// workloads.All() suite at several worker counts. workers=1 is the scaling
// baseline (identical task graph, no pool fan-out); compare against higher
// counts for speedup. Memoization is disabled so every iteration measures
// fresh backtracking solves (BenchmarkPipeline covers the memoized path).
// Results are asserted identical to the sequential total, so the benchmark
// doubles as a determinism smoke check.
func BenchmarkDetectParallel(b *testing.B) {
	named := compileAll(b)
	mods := make([]*ir.Module, len(named))
	for i, nm := range named {
		mods[i] = nm.mod
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := detect.NewEngine(detect.Options{Workers: workers, NoMemo: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := eng.Modules(mods)
				if err != nil {
					b.Fatal(err)
				}
				total := 0
				for _, res := range results {
					total += len(res.Instances)
				}
				if total != 60 {
					b.Fatalf("detected %d idioms, want 60", total)
				}
			}
		})
	}
}

// BenchmarkSolveSplit measures intra-solve parallelism on the streaming
// path: the full suite streams through a 4-worker engine while each fresh
// backtracking search may fork into split root branches on that same pool.
// split=1 is the baseline (identical scheduling, no forking); on multicore
// the higher factors cut the critical path from the largest single solve
// (~60ms, lbm/GEMM) to its largest branch. Memoization is off so every
// iteration measures fresh searches, and the instance total doubles as a
// determinism smoke check.
func BenchmarkSolveSplit(b *testing.B) {
	named := compileAll(b)
	for _, split := range []int{1, 2, 4, 8} {
		split := split
		b.Run(fmt.Sprintf("split=%d", split), func(b *testing.B) {
			eng, err := detect.NewEngine(detect.Options{Workers: 4, SolveSplit: split, NoMemo: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := eng.Stream(len(named))
				for _, nm := range named {
					st.Submit(nm.mod)
				}
				st.Close()
				total := 0
				for sr := range st.Results() {
					if sr.Err != nil {
						b.Fatal(sr.Err)
					}
					total += len(sr.Result.Instances)
				}
				if total != 60 {
					b.Fatalf("detected %d idioms, want 60", total)
				}
			}
		})
	}
}

// BenchmarkPipeline measures the streaming compile→detect pipeline end to
// end over all 21 workloads: every iteration submits each workload's compile
// thunk and collects per-module results, so frontend and solver work overlap
// (no compileAll barrier). memo=off measures fresh solves; memo=on shares a
// solve cache across iterations and measures the fingerprint-memoized steady
// state (compile + analysis + cache rehydration).
func BenchmarkPipeline(b *testing.B) {
	ws := workloads.All()
	for _, workers := range []int{1, 2, 4, 8} {
		for _, memo := range []bool{false, true} {
			workers, memo := workers, memo
			b.Run(fmt.Sprintf("workers=%d/memo=%v", workers, memo), func(b *testing.B) {
				opts := detect.Options{Workers: workers, NoMemo: !memo}
				if memo {
					opts.Memo = constraint.NewSolveCache()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p, err := pipeline.New(pipeline.Options{Detect: opts})
					if err != nil {
						b.Fatal(err)
					}
					jobs := make([]*pipeline.Job, 0, len(ws))
					for _, w := range ws {
						jobs = append(jobs, p.Submit(w.Name, w.Compile))
					}
					results, err := pipeline.Collect(jobs)
					if err != nil {
						b.Fatal(err)
					}
					p.Close()
					total := 0
					for _, res := range results {
						total += len(res.Instances)
					}
					if total != 60 {
						b.Fatalf("detected %d idioms, want 60", total)
					}
				}
			})
		}
	}
}

// BenchmarkTable1PerBenchmark reports per-benchmark detection cost.
func BenchmarkTable1PerBenchmark(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			mod, err := w.Compile()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := detect.Module(mod, detect.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 2: compile-time cost without and with IDL ---

func BenchmarkTable2CompileTime(b *testing.B) {
	b.Run("withoutIDL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range workloads.All() {
				if _, err := cc.Compile(w.Name, w.Source); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("withIDL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range workloads.All() {
				mod, err := cc.Compile(w.Name, w.Source)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := detect.Module(mod, detect.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- Table 3 / Figures 18, 19: the performance pipeline ---

func BenchmarkTable3APIs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Performance(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig18Speedup(b *testing.B) {
	rows, err := experiments.Performance(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bars := experiments.Fig18(rows)
		if len(bars) == 0 {
			b.Fatal("no bars")
		}
	}
}

func BenchmarkFig19Handwritten(b *testing.B) {
	rows, err := experiments.Performance(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig19(rows)) != 10 {
			b.Fatal("rows")
		}
	}
}

// --- Figures 16, 17 ---

func BenchmarkFig16Classes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig17(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 21 {
			b.Fatal("rows")
		}
	}
}

// --- Per-idiom solver benchmarks ---

func BenchmarkSolver(b *testing.B) {
	cases := []struct {
		idiom, bench string
	}{
		{"Reduction", "UA"},
		{"Histogram", "histo"},
		{"SPMV", "CG"},
		{"GEMM", "sgemm"},
		{"Stencil3", "stencil"},
	}
	for _, c := range cases {
		c := c
		b.Run(c.idiom, func(b *testing.B) {
			mod, err := workloads.ByName(c.bench).Compile()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := detect.Module(mod, detect.Options{Idioms: []string{c.idiom}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation 1 (§4.4): variable ordering impacts solver pruning ---

func BenchmarkAblationVariableOrdering(b *testing.B) {
	prog, err := idl.ParseProgram(idioms.LibrarySource)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := workloads.ByName("CG").Compile()
	if err != nil {
		b.Fatal(err)
	}
	for _, ord := range []struct {
		name string
		o    constraint.Ordering
	}{
		{"greedy", constraint.OrderGreedy},
		{"appearance", constraint.OrderAppearance},
	} {
		ord := ord
		b.Run(ord.name, func(b *testing.B) {
			problem, err := constraint.Compile(prog, "SPMV", constraint.CompileOptions{Ordering: ord.o})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			steps := 0
			for i := 0; i < b.N; i++ {
				for _, fn := range mod.Functions {
					solver := constraint.NewSolver(problem, analysis.Analyze(fn))
					solver.Solve()
					steps += solver.Steps
				}
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// --- Ablation 2: atom-indexed candidate generation vs naive enumeration ---

func BenchmarkAblationCandidateGeneration(b *testing.B) {
	prog, err := idl.ParseProgram(idioms.LibrarySource)
	if err != nil {
		b.Fatal(err)
	}
	problem, err := constraint.Compile(prog, "Reduction", constraint.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	mod, err := workloads.ByName("UA").Compile()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		naive bool
	}{
		{"indexed", false},
		{"naive", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				for _, fn := range mod.Functions {
					solver := constraint.NewSolver(problem, analysis.Analyze(fn))
					solver.NaiveCandidates = mode.naive
					solver.Solve()
					steps += solver.Steps
				}
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// --- Ablation 3: the lazy-copy transfer optimization (the red bars) ---

func BenchmarkAblationLazyCopy(b *testing.B) {
	br, err := experiments.Pipeline(workloads.ByName("CG"), 1)
	if err != nil {
		b.Fatal(err)
	}
	gpu := hetero.DeviceByKind(hetero.GPU)
	api := hetero.APIByName("cusparse")
	for _, mode := range []struct {
		name string
		lazy bool
	}{
		{"lazy", true},
		{"eager", false},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				t, err := hetero.Estimate(br.RunCost, gpu, api,
					hetero.TimingOptions{LazyCopy: mode.lazy, WorkScale: experiments.ModelWorkScale})
				if err != nil {
					b.Fatal(err)
				}
				total = t
			}
			b.ReportMetric(total*1000, "modelled-ms")
		})
	}
}

// --- Ablation 4: API choice per platform (try-all vs fixed mapping) ---

func BenchmarkAblationAPIChoice(b *testing.B) {
	br, err := experiments.Pipeline(workloads.ByName("sgemm"), 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := hetero.TimingOptions{WorkScale: experiments.ModelWorkScale}
	b.Run("try-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, dev := range hetero.Devices() {
				if _, ok := hetero.BestOnDevice(br.RunCost, dev, opts); !ok {
					b.Fatal("no API")
				}
			}
		}
	})
	b.Run("fixed-lift", func(b *testing.B) {
		lift := hetero.APIByName("lift")
		for i := 0; i < b.N; i++ {
			for _, dev := range hetero.Devices() {
				if _, err := hetero.Estimate(br.RunCost, dev, lift, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- Serving-path match benchmark ---

// BenchmarkServeMatch measures the full match pipeline behind the HTTP
// front door: the 21-workload suite POSTed to /v1/match/stream — compile,
// detect, transform, backend selection and NDJSON framing per request.
// Compare against benchjson's ServeStream rows for the transformation leg's
// marginal cost.
func BenchmarkServeMatch(b *testing.B) {
	svc, err := idiomatic.NewService(idiomatic.ServiceOptions{Workers: 4, QueueLimit: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpapi.New(svc))
	defer ts.Close()
	var reqs []idiomatic.MatchRequest
	for _, w := range workloads.All() {
		reqs = append(reqs, idiomatic.MatchRequest{Name: w.Name, Source: w.Source})
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/match/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		lines, plans := 0, 0
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			var res idiomatic.MatchResult
			if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
				b.Fatal(err)
			}
			if res.Err != "" {
				b.Fatalf("%s: %s", res.Name, res.Err)
			}
			lines++
			plans += len(res.Plans)
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		if lines != len(reqs) || plans != 60 {
			b.Fatalf("stream delivered %d lines / %d plans, want %d / 60", lines, plans, len(reqs))
		}
	}
}

// --- End-to-end pipeline benchmark ---

func BenchmarkEndToEndPipeline(b *testing.B) {
	for _, name := range []string{"CG", "sgemm", "stencil"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w := workloads.ByName(name)
			for i := 0; i < b.N; i++ {
				br, err := experiments.Pipeline(w, 1)
				if err != nil {
					b.Fatal(err)
				}
				if br.Mismatch != "" {
					b.Fatal(br.Mismatch)
				}
			}
		})
	}
}

// --- helpers ---

type namedModule struct {
	name string
	mod  *ir.Module
}

// compileAll compiles every workload concurrently (the sequential compile
// barrier is gone here too; benchmark setup cost shrinks with cores).
func compileAll(b *testing.B) []namedModule {
	b.Helper()
	ws := workloads.All()
	out := make([]namedModule, len(ws))
	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	for i, w := range ws {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			mod, err := w.Compile()
			out[i] = namedModule{w.Name, mod}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			b.Fatalf("%s: %v", ws[i].Name, err)
		}
	}
	return out
}
