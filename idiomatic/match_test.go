package idiomatic_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/idiomatic"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// planGoldens covers every idiom class of Table 1 (plus the Map extension):
// the wire-encoded APICall plans — extern, backend selection, soundness
// flags, runtime checks, ranked per-device offload estimates — are pinned
// byte for byte against testdata goldens, so any drift in the transform
// schemes, the backend profiles or the wire encoding is a reviewed diff.
var planGoldens = []struct {
	name string
	req  idiomatic.MatchRequest
}{
	{"gemm", idiomatic.MatchRequest{Name: "gemm.c", Source: `
void gemm1(int m, int n, int k, float* A, int lda, float* B, int ldb,
           float* C, int ldc, float alpha, float beta) {
    for (int mm = 0; mm < m; mm++) {
        for (int nn = 0; nn < n; nn++) {
            float c = 0.0f;
            for (int i = 0; i < k; i++) {
                float a = A[mm + i * lda];
                float b = B[nn + i * ldb];
                c += a * b;
            }
            C[mm + nn * ldc] = C[mm + nn * ldc] * beta + alpha * c;
        }
    }
}`}},
	{"spmv", idiomatic.MatchRequest{Name: "spmv.c", Source: `
void spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}`}},
	{"reduction", idiomatic.MatchRequest{Name: "dot.c", Source: `
double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; }
    return s;
}`}},
	{"histogram", idiomatic.MatchRequest{Name: "histo.c", Source: `
void histo(int* data, int* bins, int n) {
    for (int i = 0; i < n; i++) {
        bins[data[i]] += 1;
    }
}`}},
	{"stencils", idiomatic.MatchRequest{Name: "stencils.c", Source: `
void jacobi1d(double* in, double* out, int n) {
    for (int i = 1; i < n - 1; i++) {
        out[i] = (in[i-1] + in[i] + in[i+1]) / 3.0;
    }
}

void jacobi2d(double* in, double* out, int n, int m) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < m - 1; j++) {
            out[i*500 + j] = 0.25 * (in[(i-1)*500 + j] + in[(i+1)*500 + j]
                                   + in[i*500 + (j-1)] + in[i*500 + (j+1)]);
        }
    }
}

void stencil7(double* in, double* out, int n) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            for (int k = 1; k < n - 1; k++) {
                out[(i*64 + j)*64 + k] =
                    in[(i*64 + j)*64 + k] * -6.0
                  + in[((i-1)*64 + j)*64 + k] + in[((i+1)*64 + j)*64 + k]
                  + in[(i*64 + (j-1))*64 + k] + in[(i*64 + (j+1))*64 + k]
                  + in[(i*64 + j)*64 + (k-1)] + in[(i*64 + j)*64 + (k+1)];
            }
        }
    }
}`}},
	{"map", idiomatic.MatchRequest{Name: "map.c", Idioms: []string{"Map"}, Source: `
void scale(double* out, double* in, int n, double a) {
    for (int i = 0; i < n; i++) {
        out[i] = in[i] * a + 1.0;
    }
}`}},
	{"gemm_cpu", idiomatic.MatchRequest{Name: "gemm.c", Target: "CPU", Source: `
void gemm2(float M1[500][500], float M2[500][500], float M3[500][500]) {
    for (int i = 0; i < 500; i++) {
        for (int j = 0; j < 500; j++) {
            M3[i][j] = 0.0f;
            for (int k = 0; k < 500; k++) {
                M3[i][j] += M1[i][k] * M2[k][j];
            }
        }
    }
}`}},
}

func TestMatchPlansGolden(t *testing.T) {
	ctx := context.Background()
	svc, err := idiomatic.NewService(idiomatic.ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for _, tc := range planGoldens {
		t.Run(tc.name, func(t *testing.T) {
			res, err := svc.Match(ctx, tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != "" {
				t.Fatalf("in-band error: %s", res.Err)
			}
			if len(res.Findings) == 0 {
				t.Fatal("no findings — the golden would pin nothing")
			}
			if len(res.Plans) != len(res.Findings) {
				t.Fatalf("%d plans for %d findings", len(res.Plans), len(res.Findings))
			}
			for i, p := range res.Plans {
				if p.Err != "" {
					t.Errorf("plan %d (%s in %s) failed: %s", i, p.Idiom, p.Function, p.Err)
				}
			}
			got, err := json.MarshalIndent(res.Plans, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "plans_"+tc.name+".golden.json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./idiomatic -run TestMatchPlansGolden -update` to create)", err)
			}
			if string(got) != string(want) {
				t.Errorf("wire plans drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
