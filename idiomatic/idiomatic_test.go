package idiomatic

import (
	"strings"
	"testing"
)

const dotSource = `
double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; }
    return s;
}`

func dotArgs() []Value {
	x := NewBuffer("x", 8*8)
	y := NewBuffer("y", 8*8)
	for i := 0; i < 8; i++ {
		x.SetFloat64(i, float64(i))
		y.SetFloat64(i, 0.5)
	}
	return []Value{Buf(x), Buf(y), Int(8)}
}

func TestFacadeEndToEnd(t *testing.T) {
	prog, err := Compile("demo", dotSource)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.IR(), "fmul double") {
		t.Error("IR rendering lacks the multiply")
	}

	det, err := prog.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Instances) != 1 {
		t.Fatalf("instances = %d, want 1", len(det.Instances))
	}
	inst := det.Instances[0]
	if inst.Idiom != "Reduction" || inst.Class != "Scalar Reduction" || inst.Function != "dot" {
		t.Errorf("instance = %+v", inst)
	}
	if !strings.Contains(inst.Solution(), "iterator") {
		t.Error("solution rendering lacks the iterator binding")
	}
	if det.SolverSteps == 0 {
		t.Error("no solver effort recorded")
	}

	// Reference result before transformation.
	ref, err := prog.Run("dot", dotArgs()...)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Calls != 0 {
		t.Errorf("untransformed run made %d API calls", ref.Calls)
	}

	calls, err := prog.Accelerate(det)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || !strings.HasPrefix(calls[0].Extern, "lift.reduction#") {
		t.Errorf("calls = %+v", calls)
	}

	out, err := prog.Run("dot", dotArgs()...)
	if err != nil {
		t.Fatal(err)
	}
	if out.Calls != 1 {
		t.Errorf("transformed run made %d API calls, want 1", out.Calls)
	}
	if out.Return.String() != ref.Return.String() {
		t.Errorf("results diverge: %s vs %s", out.Return, ref.Return)
	}
	// 0+0.5+1+...+3.5 = 14 * 0.5... sum(i*0.5, i=0..7) = 14.
	if out.Return.Float() != 14 {
		t.Errorf("dot = %v, want 14", out.Return)
	}

	// Performance modelling surfaces.
	if out.SequentialSeconds() <= 0 {
		t.Error("sequential model must be positive")
	}
	if best, ok := out.EstimateBest(GPU); !ok || best.Seconds <= 0 {
		t.Errorf("GPU estimate = %+v %v", best, ok)
	}
}

func TestFacadeDetectOnly(t *testing.T) {
	prog, err := Compile("demo", dotSource)
	if err != nil {
		t.Fatal(err)
	}
	det, err := prog.DetectOnly("GEMM")
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Instances) != 0 {
		t.Errorf("GEMM-only detection found %d instances in a dot product", len(det.Instances))
	}
}

func TestFacadeMatchCustomIdiom(t *testing.T) {
	prog, err := Compile("demo", `
int f(int a, int b) { return (a*b) + (b*a); }`)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := prog.Match(`
Constraint TwoMuls
( {sum} is add instruction and
  {l} is first argument of {sum} and
  {l} is mul instruction and
  {r} is second argument of {sum} and
  {r} is mul instruction )
End`, "TwoMuls", "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Errorf("solutions = %d, want 1", len(sols))
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := Compile("bad", "not C at all {{{"); err == nil {
		t.Error("expected parse error")
	}
	prog, _ := Compile("demo", dotSource)
	if _, err := prog.Run("nonesuch"); err == nil {
		t.Error("expected missing-function error")
	}
	if _, err := prog.Match("Constraint X ( {a} is add instruction ) End", "Y", "dot"); err == nil {
		t.Error("expected unknown-constraint error")
	}
	if _, err := prog.Match("garbage", "X", "dot"); err == nil {
		t.Error("expected IDL parse error")
	}
}

func TestLibraryMetadata(t *testing.T) {
	if n := LibraryLineCount(); n < 300 || n > 600 {
		t.Errorf("library lines = %d, expected the paper's ~500 ballpark", n)
	}
	if !strings.Contains(LibrarySource(), "Constraint SPMV") {
		t.Error("library source lacks SPMV")
	}
}
