package idiomatic

import "context"

// Client is an authenticated tenant identity, attached to request contexts
// by the serving layer (the httpapi key middleware) and carried end to end:
// Service.Submit forwards it into the pipeline's weighted-fair intake, and
// the name reaches the solver pool via detect.Submission. The zero Client is
// the anonymous tier — exempt from per-client caps and rate limits, so a
// service without auth behaves exactly like a single-tenant one.
type Client struct {
	// Name is the tenant identity ("" = anonymous).
	Name string `json:"name"`
	// Weight is the tenant's fair-share weight: jobs served per
	// deficit-round-robin round while backlogged (0 = 1).
	Weight int `json:"weight"`
	// Admin grants access to the admin surface (GET /v1/clients).
	Admin bool `json:"admin,omitempty"`
}

type clientKey struct{}

// WithClient returns a context carrying the given tenant identity.
func WithClient(ctx context.Context, c Client) context.Context {
	return context.WithValue(ctx, clientKey{}, c)
}

// ClientFromContext reports the tenant identity attached by WithClient, if
// any. A missing identity is the anonymous tier.
func ClientFromContext(ctx context.Context) (Client, bool) {
	c, ok := ctx.Value(clientKey{}).(Client)
	return c, ok
}
