package idiomatic

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const storeDotSource = `
double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; }
    return s;
}`

func newStateService(t *testing.T, dir string) *Service {
	t.Helper()
	svc, err := NewService(ServiceOptions{Workers: 2, StateDir: dir})
	if err != nil {
		t.Fatalf("NewService(StateDir=%s): %v", dir, err)
	}
	return svc
}

func canonicalBatch(t *testing.T, rs []DetectResult) []string {
	t.Helper()
	out := make([]string, len(rs))
	for i, r := range rs {
		if r.Err != "" {
			t.Fatalf("result %d (%s): %s", i, r.Name, r.Err)
		}
		out[i] = canonicalJSON(t, r)
	}
	return out
}

// TestServiceWarmRestart is the tentpole's acceptance criterion at the
// service layer: run the full 21-workload suite against a state dir, restart
// (a brand-new Service on the same dir), re-run — the restarted service must
// answer with zero fresh solves, byte-identically to the first run.
func TestServiceWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	reqs := workloadRequests(RequestOptions{})

	svc1 := newStateService(t, dir)
	res1, err := svc1.DetectBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalBatch(t, res1)
	if m := svc1.Stats().Memo; m.Misses == 0 {
		t.Fatal("cold run reported zero memo misses; the suite must have solved something")
	}
	svc1.Close() // flushes pending async spills

	svc2 := newStateService(t, dir)
	defer svc2.Close()
	if st := svc2.Stats().Store; !st.Enabled || st.Entries == 0 {
		t.Fatalf("restarted store stats = %+v; want enabled with surviving entries", st)
	}
	res2, err := svc2.DetectBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	got := canonicalBatch(t, res2)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: warm-restarted result differs from the original run", reqs[i].Name)
		}
	}
	st := svc2.Stats()
	if st.Memo.Misses != 0 {
		t.Errorf("restarted service re-solved %d times; want zero fresh solves (all from disk)", st.Memo.Misses)
	}
	if st.Store.SpillHits == 0 {
		t.Error("restarted service reported zero disk read-throughs; the warm answers came from nowhere")
	}
}

// TestServicePackDurability pins the registration log: packs registered over
// the live API survive a restart without client re-registration, replayed
// through the identical CompilePack path in append order (last-writer-wins).
func TestServicePackDurability(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	svc1 := newStateService(t, dir)
	if _, err := svc1.RegisterPack("durable", LibrarySource(), []TopSpec{
		{Name: "First", Top: "Reduction", Scheme: "reduction", Kind: "reduction"},
	}); err != nil {
		t.Fatal(err)
	}
	// Re-registration appends; replay must yield the later roster.
	if _, err := svc1.RegisterPack("durable", LibrarySource(), []TopSpec{
		{Name: "Dot", Top: "Reduction", Class: "Scalar Reduction", Scheme: "reduction", Kind: "reduction"},
	}); err != nil {
		t.Fatal(err)
	}
	r1, err := svc1.Detect(ctx, DetectRequest{Name: "dot.c", Source: storeDotSource, Pack: "durable"})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	svc2 := newStateService(t, dir)
	defer svc2.Close()
	info, ok := svc2.PackByName("durable")
	if !ok {
		t.Fatal("pack not present after restart")
	}
	if len(info.Idioms) != 1 || info.Idioms[0].Name != "Dot" {
		t.Fatalf("replayed roster = %+v; want the later registration (Dot)", info.Idioms)
	}
	if st := svc2.Stats().Store; st.PacksReplayed != 2 || st.PacksAbandoned != 0 {
		t.Fatalf("store stats = %+v; want 2 replayed pack records", st)
	}
	r2, err := svc2.Detect(ctx, DetectRequest{Name: "dot.c", Source: storeDotSource, Pack: "durable"})
	if err != nil {
		t.Fatalf("detect via replayed pack: %v", err)
	}
	if len(r2.Findings) == 0 || canonicalJSON(t, r2) != canonicalJSON(t, r1) {
		t.Errorf("replayed pack's detection differs from the original registration's")
	}
}

// TestServiceCrashRecovery simulates a crash mid-write — a stray temp file in
// the memo tree and one torn blob — and asserts the reboot contract: the temp
// file is swept, the corrupt entry is never served (it re-solves instead),
// the suite re-warms to >= 99% memo hits, and results stay byte-identical.
func TestServiceCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	reqs := workloadRequests(RequestOptions{})

	svc1 := newStateService(t, dir)
	res1, err := svc1.DetectBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalBatch(t, res1)
	svc1.Close()

	// The "crash": a half-written temp file that never got renamed, plus one
	// blob torn mid-write.
	memoRoot := filepath.Join(dir, "memo")
	var entries []string
	if err := filepath.WalkDir(memoRoot, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(d.Name(), ".entry") {
			entries = append(entries, path)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("suite produced no spilled entries; nothing to corrupt")
	}
	torn := entries[0]
	raw, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(filepath.Dir(torn), filepath.Base(torn)+".tmp999")
	if err := os.WriteFile(tmp, []byte("interrupted"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := newStateService(t, dir)
	defer svc2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived reboot: stat err = %v", err)
	}
	res2, err := svc2.DetectBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	got := canonicalBatch(t, res2)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: post-crash result differs from the pre-crash run", reqs[i].Name)
		}
	}
	st := svc2.Stats()
	if st.Store.LoadErrors == 0 {
		t.Error("torn blob never flagged as a load error; was it served as valid?")
	}
	// The miss re-solved and re-spilled: whatever sits at the torn path now
	// must be a fresh, whole blob — never the half-write we planted.
	if now, err := os.ReadFile(torn); err == nil && bytes.Equal(now, raw[:len(raw)/2]) {
		t.Error("torn blob still on disk unrepaired after serving as a miss")
	}
	total := st.Memo.Hits + st.Memo.Misses
	if total == 0 {
		t.Fatal("no memo lookups recorded")
	}
	if rate := float64(st.Memo.Hits) / float64(total); rate < 0.99 {
		t.Errorf("re-warm hit rate %.4f (%d/%d) < 0.99", rate, st.Memo.Hits, total)
	}
	if st.Memo.Misses == 0 {
		t.Error("zero misses despite a torn blob; the corrupt entry must re-solve, not hit")
	}
}

// TestMemoSnapshotRoundTrip pins the warm-handoff path: a snapshot streamed
// from one service ingests into a fresh replica (its own state dir), which
// then serves the donor's workloads with zero fresh solves — and the donor's
// packs — without ever having seen the traffic.
func TestMemoSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	reqs := workloadRequests(RequestOptions{})

	donor := newStateService(t, t.TempDir())
	defer donor.Close()
	if _, err := donor.RegisterPack("handoff", LibrarySource(), []TopSpec{
		{Name: "Dot", Top: "Reduction", Scheme: "reduction", Kind: "reduction"},
	}); err != nil {
		t.Fatal(err)
	}
	res1, err := donor.DetectBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalBatch(t, res1)

	var snap bytes.Buffer
	if err := donor.WriteMemoSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	heir := newStateService(t, t.TempDir())
	defer heir.Close()
	entries, packs, err := heir.IngestMemoSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if entries == 0 || packs != 1 {
		t.Fatalf("ingested %d entries, %d packs; want >0 entries and the donor's 1 pack", entries, packs)
	}
	if _, ok := heir.PackByName("handoff"); !ok {
		t.Fatal("donor's pack absent after ingest")
	}
	res2, err := heir.DetectBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	got := canonicalBatch(t, res2)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: inherited result differs from the donor's", reqs[i].Name)
		}
	}
	if m := heir.Stats().Memo; m.Misses != 0 {
		t.Errorf("inheriting service re-solved %d times; want zero fresh solves", m.Misses)
	}
}

// TestSnapshotRequiresStore pins the API contract for stateless services.
func TestSnapshotRequiresStore(t *testing.T) {
	svc, err := NewService(ServiceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.StoreEnabled() {
		t.Fatal("StoreEnabled without a state dir")
	}
	var buf bytes.Buffer
	if err := svc.WriteMemoSnapshot(&buf); err != ErrNoStore {
		t.Errorf("WriteMemoSnapshot = %v; want ErrNoStore", err)
	}
	if _, _, err := svc.IngestMemoSnapshot(strings.NewReader("{}")); err != ErrNoStore {
		t.Errorf("IngestMemoSnapshot = %v; want ErrNoStore", err)
	}
}
