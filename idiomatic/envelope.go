package idiomatic

// Error codes of the v1 error envelope. Every non-2xx response from a /v1/*
// endpoint (and the legacy /statsz, /healthz paths) carries exactly one of
// these machine-readable codes; clients switch on the code, not on HTTP
// status or message text.
const (
	// CodeInvalidRequest (400): malformed JSON, empty source, unknown idiom
	// or pack, bad header values.
	CodeInvalidRequest = "invalid_request"
	// CodeUnauthenticated (401): the server requires an API key and the
	// request carried none, or an unknown one.
	CodeUnauthenticated = "unauthenticated"
	// CodeForbidden (403): the key is valid but lacks the required role
	// (e.g. the admin surface).
	CodeForbidden = "forbidden"
	// CodeNotFound (404): no such endpoint.
	CodeNotFound = "not_found"
	// CodeBodyTooLarge (413): the request body exceeded the server's byte
	// bound.
	CodeBodyTooLarge = "body_too_large"
	// CodeBatchTooLarge (429, no Retry-After): the batch can never fit the
	// intake queue — split it; retrying the same batch cannot succeed.
	CodeBatchTooLarge = "batch_too_large"
	// CodeOverloaded (429 + Retry-After): the intake queue (global or
	// per-client) is transiently full — back off and retry.
	CodeOverloaded = "overloaded"
	// CodeRateLimited (429 + Retry-After): the client's token bucket is
	// empty; retry_after_ms says when a token exists.
	CodeRateLimited = "rate_limited"
	// CodeUnavailable (503): the service is shutting down.
	CodeUnavailable = "unavailable"
	// CodeMethodNotAllowed (405): wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
)

// ErrorEnvelope is the single v1 error shape: every non-2xx response body is
// {"error":{"code","message","retry_after_ms?"}}. The legacy Retry-After
// header is still sent alongside retry_after_ms for 429s that are worth
// retrying.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the envelope payload.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description (not for machine matching).
	Message string `json:"message"`
	// RetryAfterMs, when positive, hints how long to back off before
	// retrying. Absent on errors where a retry cannot succeed.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}
