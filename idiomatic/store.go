package idiomatic

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/constraint"
	"repro/internal/store"
)

// ErrNoStore is returned by the snapshot APIs on a service running without
// ServiceOptions.StateDir — there is no durable state to stream or ingest.
var ErrNoStore = errors.New("idiomatic: service has no state dir")

// MemoSnapshotSchemaVersion versions the snapshot stream produced by
// WriteMemoSnapshot (GET /v1/memo/snapshot): an NDJSON header line carrying
// the pack log, then one line per verified memo blob.
const MemoSnapshotSchemaVersion = 1

// snapshotHeader is the snapshot's first NDJSON line.
type snapshotHeader struct {
	Schema int                `json:"schema"`
	Packs  []store.PackRecord `json:"packs"`
}

// snapshotEntry is one memo blob: the hex spill key and the raw payload
// (JSON base64). Payloads re-enter the receiving store through the same
// integrity-checked Write path as local spills.
type snapshotEntry struct {
	Key  string `json:"key"`
	Blob []byte `json:"blob"`
}

// StoreEnabled reports whether the service runs with a durable state dir.
func (s *Service) StoreEnabled() bool { return s.store != nil }

// WriteMemoSnapshot streams the service's durable warm state — registered
// packs and every verified memo blob — as NDJSON. Pending async spills are
// flushed first, so the snapshot includes everything solved before the call.
// A booting replica ingests this (idiomd -warm-from) to inherit the warm
// memo instead of re-solving the world.
func (s *Service) WriteMemoSnapshot(w io.Writer) error {
	if s.store == nil {
		return ErrNoStore
	}
	s.store.Flush()
	s.packMu.Lock()
	packs := append([]store.PackRecord(nil), s.packLog...)
	s.packMu.Unlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(snapshotHeader{Schema: MemoSnapshotSchemaVersion, Packs: packs}); err != nil {
		return err
	}
	return s.store.Entries(func(key constraint.SpillKey, payload []byte) error {
		return enc.Encode(snapshotEntry{Key: hex.EncodeToString(key[:]), Blob: payload})
	})
}

// IngestMemoSnapshot applies a WriteMemoSnapshot stream to this service:
// packs are registered through the ordinary RegisterPack path (compiled,
// persisted to this replica's own pack log) and memo blobs are written into
// the local store, where the solve memo's read-through finds them. Returns
// how many entries and pack registrations were applied.
func (s *Service) IngestMemoSnapshot(r io.Reader) (entries, packs int, err error) {
	if s.store == nil {
		return 0, 0, ErrNoStore
	}
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return 0, 0, fmt.Errorf("idiomatic: reading snapshot header: %w", err)
	}
	if hdr.Schema != MemoSnapshotSchemaVersion {
		return 0, 0, fmt.Errorf("idiomatic: snapshot schema %d, want %d", hdr.Schema, MemoSnapshotSchemaVersion)
	}
	for _, rec := range hdr.Packs {
		var tops []TopSpec
		if err := json.Unmarshal(rec.Idioms, &tops); err != nil {
			return entries, packs, fmt.Errorf("idiomatic: snapshot pack %q: %w", rec.Name, err)
		}
		if _, err := s.RegisterPack(rec.Name, rec.Source, tops); err != nil {
			return entries, packs, fmt.Errorf("idiomatic: snapshot pack %q: %w", rec.Name, err)
		}
		packs++
	}
	for {
		var ent snapshotEntry
		if err := dec.Decode(&ent); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return entries, packs, fmt.Errorf("idiomatic: reading snapshot entry: %w", err)
		}
		keyBytes, err := hex.DecodeString(ent.Key)
		if err != nil || len(keyBytes) != len(constraint.SpillKey{}) {
			return entries, packs, fmt.Errorf("idiomatic: snapshot entry with malformed key %q", ent.Key)
		}
		var key constraint.SpillKey
		copy(key[:], keyBytes)
		if err := s.store.Write(key, ent.Blob); err != nil {
			return entries, packs, fmt.Errorf("idiomatic: writing snapshot entry: %w", err)
		}
		entries++
	}
	return entries, packs, nil
}

// replayPacks re-registers every pack from the state dir's log, in append
// order (so a re-registration wins, exactly like the live path). The log
// only ever contains packs that compiled when appended, so a replay failure
// means the binary and the state dir disagree — boot fails loudly rather
// than silently serving a subset.
func (s *Service) replayPacks() (replayed int, err error) {
	recs, skipped, err := s.store.ReplayPacks()
	if err != nil {
		return 0, err
	}
	for _, rec := range recs {
		var tops []TopSpec
		if err := json.Unmarshal(rec.Idioms, &tops); err != nil {
			return replayed, fmt.Errorf("idiomatic: replaying pack %q: %w", rec.Name, err)
		}
		if _, err := s.reg.Register(rec.Name, rec.Source, tops); err != nil {
			return replayed, fmt.Errorf("idiomatic: replaying pack %q: %w", rec.Name, err)
		}
		s.packLog = append(s.packLog, rec)
		replayed++
	}
	s.packsReplayed = replayed
	s.packsAbandoned = skipped
	return replayed, nil
}

// persistPack appends one successful registration to the pack log (and the
// in-memory mirror snapshots stream from). No-op without a state dir beyond
// the mirror.
func (s *Service) persistPack(name, idlSource string, tops []TopSpec) error {
	raw, err := json.Marshal(tops)
	if err != nil {
		return fmt.Errorf("idiomatic: encoding pack %q: %w", name, err)
	}
	rec := store.PackRecord{Schema: store.PackLogSchemaVersion, Name: name, Source: idlSource, Idioms: raw}
	if s.store != nil {
		if err := s.store.AppendPack(rec); err != nil {
			return fmt.Errorf("idiomatic: pack %q registered but not persisted: %w", name, err)
		}
	}
	s.packMu.Lock()
	s.packLog = append(s.packLog, rec)
	s.packMu.Unlock()
	return nil
}

// StoreStats is the /statsz persistence block (stats schema v3). Zero-valued
// with Enabled false when the service runs without a state dir.
type StoreStats struct {
	Enabled bool `json:"enabled"`
	// SchemaVersion is the on-disk blob schema (store.BlobSchemaVersion).
	SchemaVersion int `json:"schema_version,omitempty"`
	// Entries is the memo-blob gauge; Writes/WriteErrors count blob writes.
	Entries     int64 `json:"entries"`
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	// Loads counts read-through attempts at the store; LoadErrors counts
	// integrity failures (file removed, served as a miss).
	Loads      int64 `json:"loads"`
	LoadErrors int64 `json:"load_errors"`
	// AsyncDrops counts spills refused by a full writer queue (recovered by
	// eviction-time sync spill, counted in SyncSpills).
	AsyncDrops int64 `json:"async_drops"`
	SyncSpills int64 `json:"sync_spills"`
	// SpillHits / SpillMisses count the memo's disk read-throughs;
	// DecodeErrors counts payloads the memo codec rejected.
	SpillHits    int64 `json:"spill_hits"`
	SpillMisses  int64 `json:"spill_misses"`
	DecodeErrors int64 `json:"decode_errors"`
	// PacksLogged counts registrations appended this run; PacksReplayed is
	// how many the boot replay applied, PacksAbandoned how many trailing
	// log lines it abandoned as torn or unknown.
	PacksLogged    int64 `json:"packs_logged"`
	PacksReplayed  int   `json:"packs_replayed"`
	PacksAbandoned int   `json:"packs_abandoned"`
}

func (s *Service) storeStats() StoreStats {
	if s.store == nil {
		return StoreStats{}
	}
	st := s.store.Stats()
	out := StoreStats{
		Enabled:        true,
		SchemaVersion:  store.BlobSchemaVersion,
		Entries:        st.Entries,
		Writes:         st.Writes,
		WriteErrors:    st.WriteErrors,
		Loads:          st.Loads,
		LoadErrors:     st.LoadErrors,
		AsyncDrops:     st.AsyncDrops,
		PacksLogged:    st.PacksAppended,
		PacksReplayed:  s.packsReplayed,
		PacksAbandoned: s.packsAbandoned,
	}
	if s.memo != nil {
		sp := s.memo.SpillStats()
		out.SpillHits = sp.Hits
		out.SpillMisses = sp.Misses
		out.SyncSpills = sp.SyncSpills
		out.DecodeErrors = sp.DecodeErrors
	}
	return out
}
