package idiomatic

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/constraint"
	"repro/internal/detect"
	"repro/internal/idioms"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// ErrOverloaded is returned by Submit (and the batch helpers) when the
// service's bounded intake queue is full. A network front door translates it
// into HTTP 429; in-process callers should back off and retry.
var ErrOverloaded = pipeline.ErrOverloaded

// ErrClosed is returned by Submit after Close.
var ErrClosed = pipeline.ErrClosed

// ErrRateLimited is returned by Submit when the requesting client's token
// bucket is empty (see ServiceOptions.ClientRate). The concrete error is a
// *pipeline.RateLimitedError carrying the retry hint the HTTP layer turns
// into Retry-After / retry_after_ms.
var ErrRateLimited = pipeline.ErrRateLimited

// ErrBatchTooLarge is returned by the batch helpers when a single batch
// exceeds the intake queue limit: unlike a transient ErrOverloaded (which it
// wraps, so errors.Is(err, ErrOverloaded) holds), retrying the same batch
// can never succeed — it must be split. The HTTP layer distinguishes the two
// by omitting Retry-After.
var ErrBatchTooLarge = fmt.Errorf("idiomatic: batch larger than the intake queue limit (split the batch): %w", pipeline.ErrOverloaded)

// DefaultQueueLimit bounds a service's in-flight modules when
// ServiceOptions.QueueLimit is zero.
const DefaultQueueLimit = 256

// ServiceOptions configure a Service.
type ServiceOptions struct {
	// Workers sizes both the compile pool and the solver pool (0 =
	// GOMAXPROCS).
	Workers int
	// QueueLimit bounds in-flight modules across all requests; submissions
	// beyond it fail with ErrOverloaded. 0 means DefaultQueueLimit, negative
	// means unbounded.
	QueueLimit int
	// MemoMaxEntries bounds the service's solve cache (LRU eviction). 0 means
	// constraint.DefaultMemoMaxEntries, negative means unbounded.
	MemoMaxEntries int
	// NoMemo disables solver memoization entirely.
	NoMemo bool
	// SolveSplit caps intra-solve parallelism: each fresh backtracking
	// search may fork at its split variable's candidate list (the widest
	// relevant, unbound variable the search reaches deterministically) into
	// up to this many branch tasks on the shared solver pool, cutting a
	// single large solve's latency from the whole search to its largest
	// branch. The actual fan-out per solve is cost-gated: solves the memo
	// cost table predicts cheaper than fork overhead stay sequential, and
	// costlier ones fork proportionally up to this cap. 0 or 1 keeps
	// searches sequential. Output is byte-identical either way.
	SolveSplit int
	// ResplitDepth lets a branch of a split solve fork its remaining
	// candidates again — up to this many nesting levels below the root fork
	// — whenever the solver pool reports idle capacity, adapting fan-out to
	// load. 0 never re-splits. Output is byte-identical either way.
	ResplitDepth int
	// MaxPacks bounds the number of distinct registered idiom-pack names
	// (registrations hold compiled problems for the process lifetime, so
	// the bound caps memory like the memo LRU does). 0 means
	// idioms.DefaultMaxPacks, negative means unbounded. Replacing an
	// existing pack never counts against the bound.
	MaxPacks int
	// ClientQueue bounds each named client's in-flight requests (anonymous
	// tier exempt). 0 or negative means unbounded.
	ClientQueue int
	// ClientRate, when positive, rate-limits named clients to
	// ClientRate*weight requests/sec (token bucket bursting to ClientBurst;
	// anonymous tier exempt). Rejections carry ErrRateLimited.
	ClientRate float64
	// ClientBurst is the token-bucket capacity (0 = max(1, ClientRate)).
	ClientBurst float64
	// DetectSlots bounds how many compiled modules occupy the solver pool at
	// once; the rest wait in per-client ready queues served weighted-fair.
	// 0 means twice the solver worker count, negative means unbounded.
	DetectSlots int
	// Prune selects the similarity-prescreen mode: "" or "reorder" (default)
	// schedules solves best-score-first without ever skipping (responses stay
	// byte-identical to prune "off"), "on" additionally skips solves the
	// prescreen proves unmatchable, "off" disables the prescreen. Parsed by
	// detect.ParsePruneMode; unknown spellings fail NewService.
	Prune string
	// StateDir, when non-empty, makes the service's warm state durable
	// (idiomd -state-dir): the solve memo spills to a content-addressed
	// blob store under the directory — with build-cache semantics, so a
	// restarted process re-serves prior solves byte-identically without
	// re-solving — and pack registrations append to a log replayed through
	// the identical CompilePack path at boot. Ignored memo-wise when NoMemo
	// is set; pack durability still applies.
	StateDir string
}

// Service is the long-lived, service-grade front door of the paper's
// compile → detect → transform → backend-selection flow: one process-wide
// streaming pipeline and one shared detection engine behind a versioned
// request/response model, plus a copy-on-write registry of runtime idiom
// packs. Every request path — the HTTP endpoints of cmd/idiomd, the
// cmd/idiomcc CLI, the examples and the deprecated package-level free
// functions — funnels through a Service, so there is exactly one blessed
// route from source text to detections and transformation plans.
//
// Requests are context-aware end to end: cancelling a request's context
// sheds its remaining compile and constraint-solving work mid-solve.
// Intake is bounded (QueueLimit, ErrOverloaded) so a serving process degrades
// by rejecting rather than queueing without limit.
type Service struct {
	eng        *detect.Engine
	pipe       *pipeline.Pipeline
	memo       *constraint.SolveCache
	queueLimit int

	// defaultIdioms is the paper's evaluated idiom set; extensions participate
	// only when a request names them. known is the full resolvable roster.
	defaultIdioms []string
	known         map[string]bool

	// reg holds runtime-registered idiom packs (copy-on-write snapshots;
	// see idioms.Registry). Requests naming a pack resolve their roster
	// against the snapshot current at intake and keep it for their whole
	// lifetime.
	reg *idioms.Registry

	// store is the durable warm-state layer (nil without
	// ServiceOptions.StateDir). packLog mirrors the on-disk pack log in
	// memory so snapshots can stream registrations without re-reading the
	// file; packMu guards it after NewService returns.
	store          *store.Store
	packMu         sync.Mutex
	packLog        []store.PackRecord
	packsReplayed  int
	packsAbandoned int
}

// NewService builds a service: idiom constraint problems (core set and
// extensions) are compiled and indexed once, the worker pools start, and the
// solve cache is installed. Close releases the pools.
func NewService(o ServiceOptions) (*Service, error) {
	var names []string
	for _, idm := range idioms.All() {
		names = append(names, idm.Name)
	}
	defaults := append([]string(nil), names...)
	for _, idm := range idioms.Extensions() {
		names = append(names, idm.Name)
	}

	s := &Service{defaultIdioms: defaults}
	switch {
	case o.MaxPacks == 0:
		s.reg = idioms.NewRegistry()
	case o.MaxPacks < 0:
		s.reg = idioms.NewRegistrySize(0)
	default:
		s.reg = idioms.NewRegistrySize(o.MaxPacks)
	}
	prune, err := detect.ParsePruneMode(o.Prune)
	if err != nil {
		return nil, err
	}
	dopts := detect.Options{
		Workers:      o.Workers,
		Idioms:       names,
		NoMemo:       o.NoMemo,
		SolveSplit:   o.SolveSplit,
		ResplitDepth: o.ResplitDepth,
		Prune:        prune,
	}
	if !o.NoMemo {
		max := o.MemoMaxEntries
		switch {
		case max == 0:
			s.memo = constraint.NewSolveCache()
		case max < 0:
			s.memo = constraint.NewSolveCacheSize(0)
		default:
			s.memo = constraint.NewSolveCacheSize(max)
		}
		dopts.Memo = s.memo
	}
	eng, err := detect.NewEngine(dopts)
	if err != nil {
		return nil, err
	}
	limit := o.QueueLimit
	if limit == 0 {
		limit = DefaultQueueLimit
	}
	if limit < 0 {
		limit = 0
	}
	pipe, err := pipeline.New(pipeline.Options{
		Engine:      eng,
		MaxQueue:    limit,
		ClientQueue: o.ClientQueue,
		ClientRate:  o.ClientRate,
		ClientBurst: o.ClientBurst,
		DetectSlots: o.DetectSlots,
	})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	s.pipe = pipe
	s.queueLimit = limit
	s.known = make(map[string]bool, len(names))
	for _, n := range names {
		s.known[n] = true
	}
	if o.StateDir != "" {
		st, err := store.Open(o.StateDir)
		if err != nil {
			pipe.Close()
			return nil, err
		}
		s.store = st
		if s.memo != nil {
			s.memo.AttachStore(st)
		}
		if _, err := s.replayPacks(); err != nil {
			pipe.Close()
			st.Close()
			return nil, err
		}
	}
	return s, nil
}

var (
	defaultOnce sync.Once
	defaultSvc  *Service
)

// Default returns the lazily-built process-wide Service used by the
// deprecated package-level free functions and by Programs not created
// through an explicit Service.
func Default() *Service {
	defaultOnce.Do(func() {
		// Unbounded intake: the default service backs blocking in-process
		// library calls (Program.Detect and the deprecated free functions),
		// which must never fail with ErrOverloaded the way network traffic
		// may. Explicit services choose their own bound.
		svc, err := NewService(ServiceOptions{QueueLimit: -1})
		if err != nil {
			// The built-in idiom library always compiles; reaching this means
			// the embedded IDL is broken, which every test would catch.
			panic(fmt.Sprintf("idiomatic: building default service: %v", err))
		}
		defaultSvc = svc
	})
	return defaultSvc
}

// Close stops intake; in-flight requests still complete. With a state dir,
// pending async memo spills are flushed and the store is closed (spills from
// requests still in flight after Close are dropped and counted, never
// half-written). The service cannot be reused afterwards.
func (s *Service) Close() {
	s.pipe.Close()
	if s.store != nil {
		s.store.Flush()
		s.store.Close()
	}
}

// --- versioned wire model (v1) ---

// DetectRequest is one v1 detection request: a named C source text, an
// optional idiom subset and response-shaping options. It is the JSON body of
// POST /v1/detect and /v1/detect/stream.
type DetectRequest struct {
	// Name labels the source (a file name or request id); echoed back in the
	// result. Empty defaults to "input.c".
	Name string `json:"name"`
	// Source is the C program text to compile and detect over.
	Source string `json:"source"`
	// Idioms restricts detection to the named idioms, in precedence order
	// (empty = the paper's full default set; extensions such as "Map" only
	// run when named here). With Pack set the names subset that pack's
	// roster instead.
	Idioms []string `json:"idioms,omitempty"`
	// Pack selects a runtime-registered idiom pack instead of the built-in
	// roster (see Service.RegisterPack). Unknown packs are rejected at
	// intake, never answered with an empty 200.
	Pack string `json:"pack,omitempty"`
	// DeadlineMs, when positive, bounds the request's total latency: the
	// service derives a context deadline that sheds queued work and aborts
	// constraint solving mid-search once it expires. A deadline-exceeded
	// outcome is reported in-band in the result's Err field, and the solver
	// pool schedules soonest-deadline work first. (The HTTP layer also
	// accepts this as the X-Deadline-Ms header.)
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Opts shape the response payload.
	Opts RequestOptions `json:"opts"`
}

// RequestOptions shape a DetectResult's payload.
type RequestOptions struct {
	// Solutions includes each finding's full constraint solution bindings
	// (variable name → SSA operand rendering).
	Solutions bool `json:"solutions,omitempty"`
	// EmitIR includes the compiled module's SSA rendering.
	EmitIR bool `json:"emit_ir,omitempty"`
	// Explain includes near-miss diagnostics: the top unmatched idioms with
	// their prescreen similarity score, dominant feature deltas, and the
	// constraint family that rejected them.
	Explain bool `json:"explain,omitempty"`
}

// Finding is one JSON-encodable detected idiom instance.
type Finding struct {
	// Idiom is the matched idiom name (GEMM, SPMV, Histogram, ...).
	Idiom string `json:"idiom"`
	// Class is the paper's Table 1 category.
	Class string `json:"class"`
	// Function is the containing function name.
	Function string `json:"function"`
	// Solution holds the constraint solution bindings (only when
	// RequestOptions.Solutions was set).
	Solution map[string]string `json:"solution,omitempty"`
}

// MemoSnapshot reports solver-memoization state. In a DetectResult it is the
// engine's cumulative counters at result-delivery time.
type MemoSnapshot struct {
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	HitRate    float64 `json:"hit_rate"`
	Entries    int     `json:"entries"`
	Evictions  int64   `json:"evictions"`
	MaxEntries int     `json:"max_entries"`
	// CostEntries sizes the memo layer's measured solve-cost table, the data
	// behind the prescreen's longest-likely-solve-first ordering.
	CostEntries int `json:"cost_entries"`
}

// NearMiss is one wire near-miss diagnostic: an idiom the module did not
// match, the best-scoring function, and why the pair was rejected. Only
// present when RequestOptions.Explain was set.
type NearMiss struct {
	Idiom    string `json:"idiom"`
	Function string `json:"function"`
	// Score is the prescreen similarity in [0, 1]; 0 means provably
	// unmatchable (a required opcode is absent).
	Score float64 `json:"score"`
	// Family is the rejecting constraint family: "opcode", "control-flow",
	// or "dataflow".
	Family string `json:"family"`
	// Deltas are the dominant feature differences, largest deficit first.
	Deltas []string `json:"deltas,omitempty"`
	// Skipped marks pairs prune mode never solved.
	Skipped bool `json:"skipped,omitempty"`
}

// DetectResult is one v1 detection outcome. Streamed responses deliver one
// per submitted request in completion order; Seq is the request's position
// in its batch (submit order), so reassembling a stream by Seq reproduces
// the deterministic batch order.
type DetectResult struct {
	Seq  int    `json:"seq"`
	Name string `json:"name"`
	// Findings are the detected instances, in the engine's deterministic
	// merge order.
	Findings []Finding `json:"findings"`
	// SolverSteps is the backtracking effort (the paper's compile-time cost).
	SolverSteps int `json:"solver_steps"`
	// ElapsedNs is the request's wall time, compile-start → merge-done.
	ElapsedNs int64 `json:"elapsed_ns"`
	// IR is the SSA rendering (only when RequestOptions.EmitIR was set).
	IR string `json:"ir,omitempty"`
	// NearMisses are the explain-mode diagnostics (only when
	// RequestOptions.Explain was set).
	NearMisses []NearMiss `json:"near_misses,omitempty"`
	// Memo snapshots the service's memoization counters at delivery.
	Memo MemoSnapshot `json:"memo"`
	// Err reports a per-request failure (compile error, cancellation); the
	// other payload fields are zero when set.
	Err string `json:"error,omitempty"`
}

// WireResult converts an in-process detection result into its v1 wire form.
// The conversion is deterministic: identical detection results produce
// byte-identical JSON (map keys marshal sorted), which is what lets tests
// assert the HTTP stream against detect.Modules.
func WireResult(seq int, name string, res *detect.Result, opts RequestOptions) DetectResult {
	out := DetectResult{
		Seq:         seq,
		Name:        name,
		SolverSteps: res.SolverSteps,
		ElapsedNs:   res.Elapsed.Nanoseconds(),
	}
	for _, inst := range res.Instances {
		f := Finding{
			Idiom:    inst.Idiom.Name,
			Class:    inst.Idiom.Class.String(),
			Function: inst.Function.Ident,
		}
		if opts.Solutions {
			f.Solution = make(map[string]string, len(inst.Solution))
			for k, v := range inst.Solution {
				f.Solution[k] = v.Operand()
			}
		}
		out.Findings = append(out.Findings, f)
	}
	if opts.Explain {
		for _, nm := range res.NearMisses {
			out.NearMisses = append(out.NearMisses, NearMiss{
				Idiom:    nm.Idiom,
				Function: nm.Function,
				Score:    nm.Score,
				Family:   nm.Family,
				Deltas:   nm.Deltas,
				Skipped:  nm.Skipped,
			})
		}
	}
	return out
}

// --- request lifecycle ---

// Task tracks one submitted request through the service. It completes when
// Done is closed; the accessors below are valid only after that.
type Task struct {
	// Req is the originating request.
	Req DetectRequest

	svc *Service
	job *pipeline.Job
	// pack is the immutable pack snapshot the request resolved against at
	// intake (nil for the built-in roster). Re-registrations during the
	// task's lifetime cannot affect it.
	pack *idioms.Pack
}

// Submit enqueues one request and returns its Task immediately. It fails
// fast with ErrOverloaded when the intake queue (or the client's bound) is
// full, ErrRateLimited when the client's token bucket is empty, and
// ErrClosed after Close. Cancelling ctx — or exceeding req.DeadlineMs —
// sheds the request's remaining work; the task then completes with the
// context error. The tenant identity attached by WithClient rides the
// context into the pipeline's weighted-fair intake.
func (s *Service) Submit(ctx context.Context, req DetectRequest) (*Task, error) {
	if req.Source == "" {
		return nil, errors.New("idiomatic: empty source")
	}
	if req.Name == "" {
		req.Name = "input.c"
	}
	idms, roster, pk, err := s.resolve(req.Pack, req.Idioms)
	if err != nil {
		return nil, err
	}
	cl, _ := ClientFromContext(ctx)
	var cancel context.CancelFunc
	if req.DeadlineMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
	}
	name, source := req.Name, req.Source
	job, err := s.pipe.SubmitOpts(name, func() (*ir.Module, error) {
		return cc.Compile(name, source)
	}, pipeline.SubmitOptions{
		Ctx: ctx, Idioms: idms, Roster: roster,
		Client: cl.Name, Weight: cl.Weight,
		Explain: req.Opts.Explain,
	})
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	if cancel != nil {
		// Release the deadline timer as soon as the job finishes.
		go func() { <-job.Done(); cancel() }()
	}
	return &Task{Req: req, svc: s, job: job, pack: pk}, nil
}

// resolve maps a request's (pack, idioms) selection to submit options:
// with no pack, a name subset over the engine's built-in roster (the PR 3
// path, byte-identical responses); with a pack, an explicit resolved roster
// from the registry snapshot current right now — the pack pointer is
// immutable, so the request solves exactly this registration even if a
// concurrent RegisterPack replaces the name a microsecond later.
func (s *Service) resolve(pack string, names []string) (idms []string, roster []detect.Resolved, pk *idioms.Pack, err error) {
	if pack == "" {
		idms, err = s.subset(names)
		return idms, nil, nil, err
	}
	p, ok := s.reg.Pack(pack)
	if !ok {
		return nil, nil, nil, fmt.Errorf("idiomatic: unknown pack %q", pack)
	}
	sel := names
	if len(sel) == 0 {
		sel = make([]string, len(p.Idioms))
		for i, idm := range p.Idioms {
			sel[i] = idm.Name
		}
	}
	roster = make([]detect.Resolved, 0, len(sel))
	for _, n := range sel {
		idm, ok := p.Idiom(n)
		if !ok {
			return nil, nil, nil, fmt.Errorf("idiomatic: unknown idiom %q in pack %q", n, pack)
		}
		prob, _ := p.Problem(n)
		sig, _ := p.Signature(n)
		roster = append(roster, detect.Resolved{Idiom: idm, Prob: prob, Sig: sig})
	}
	return nil, roster, p, nil
}

// subset resolves a request's idiom list: empty means the default (paper)
// set, never the engine's full roster, so extensions stay opt-in per
// request. Unknown names are rejected — a versioned API must not answer a
// typo with an empty 200.
func (s *Service) subset(names []string) ([]string, error) {
	if len(names) == 0 {
		return s.defaultIdioms, nil
	}
	for _, n := range names {
		if !s.known[n] {
			return nil, fmt.Errorf("idiomatic: unknown idiom %q", n)
		}
	}
	return names, nil
}

// Done is closed when the task has fully completed (or failed).
func (t *Task) Done() <-chan struct{} { return t.job.Done() }

// Err reports the task's failure, nil on success. Valid after Done.
func (t *Task) Err() error {
	<-t.job.Done()
	return t.job.Err
}

// Program returns the compiled program (nil when compilation failed or the
// request was shed before compiling). Valid after Done. The program stays
// bound to this service for further Detect/Accelerate/Run calls.
func (t *Task) Program() *Program {
	<-t.job.Done()
	if t.job.Mod == nil {
		return nil
	}
	return &Program{Module: t.job.Mod, svc: t.svc}
}

// Detection returns the in-process detection outcome (nil on failure),
// carrying the live instances Accelerate consumes. Valid after Done.
func (t *Task) Detection() *Detection {
	<-t.job.Done()
	if t.job.Res == nil {
		return nil
	}
	return wrapDetection(t.job.Res)
}

// Result renders the task's outcome in v1 wire form under the given
// (batch-relative) sequence number, blocking until the task completes.
func (t *Task) Result(seq int) DetectResult {
	<-t.job.Done()
	if t.job.Err != nil {
		return DetectResult{
			Seq: seq, Name: t.job.Name,
			Err:  t.job.Err.Error(),
			Memo: t.svc.memoSnapshot(),
		}
	}
	out := WireResult(seq, t.job.Name, t.job.Res, t.Req.Opts)
	if t.Req.Opts.EmitIR {
		out.IR = t.job.Mod.String()
	}
	out.Memo = t.svc.memoSnapshot()
	return out
}

// Detect runs one request to completion and returns its wire result. A
// per-request failure (compile error, cancellation) is reported inside the
// result's Err field; the returned error covers intake failures only
// (ErrOverloaded, ErrClosed, invalid request).
func (s *Service) Detect(ctx context.Context, req DetectRequest) (DetectResult, error) {
	t, err := s.Submit(ctx, req)
	if err != nil {
		return DetectResult{}, err
	}
	return t.Result(0), nil
}

// DetectBatch runs a batch of requests and returns their wire results in
// submit order (Seq = index into reqs). On intake failure mid-batch the
// already-submitted requests are cancelled and the intake error is returned.
func (s *Service) DetectBatch(ctx context.Context, reqs []DetectRequest) ([]DetectResult, error) {
	tasks, cancel, err := s.submitAll(ctx, reqs)
	if err != nil {
		return nil, err
	}
	defer cancel()
	out := make([]DetectResult, len(tasks))
	for i, t := range tasks {
		out[i] = t.Result(i)
	}
	return out, nil
}

// DetectStream runs a batch of requests and returns a channel delivering one
// wire result per request in completion order, with Seq carrying the
// submit-order position — the same sequence-number semantics as the
// in-process detect.Stream, so reassembling by Seq is byte-identical to
// DetectBatch. The channel is buffered for the whole batch (a slow consumer
// never blocks the pipeline) and closes after the last result. On intake
// failure mid-batch the already-submitted requests are cancelled and the
// intake error is returned.
func (s *Service) DetectStream(ctx context.Context, reqs []DetectRequest) (<-chan DetectResult, error) {
	tasks, cancel, err := s.submitAll(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make(chan DetectResult, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		i, t := i, t
		wg.Add(1)
		go func() {
			defer wg.Done()
			out <- t.Result(i)
		}()
	}
	go func() {
		wg.Wait()
		cancel()
		close(out)
	}()
	return out, nil
}

// submitAll enqueues a whole batch under one derived context; any intake
// failure cancels the requests already submitted. A batch that could never
// fit the queue is rejected up front as ErrBatchTooLarge.
func (s *Service) submitAll(ctx context.Context, reqs []DetectRequest) ([]*Task, context.CancelFunc, error) {
	if s.queueLimit > 0 && len(reqs) > s.queueLimit {
		return nil, nil, ErrBatchTooLarge
	}
	cctx, cancel := context.WithCancel(ctx)
	tasks := make([]*Task, len(reqs))
	for i, req := range reqs {
		t, err := s.Submit(cctx, req)
		if err != nil {
			cancel()
			return nil, nil, err
		}
		tasks[i] = t
	}
	return tasks, cancel, nil
}

// --- in-process blessed path ---

// Compile translates a C source file into SSA form and binds the resulting
// Program to this service, so its Detect calls run on the service's shared
// engine and memo cache.
func (s *Service) Compile(ctx context.Context, name, source string) (*Program, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mod, err := cc.Compile(name, source)
	if err != nil {
		return nil, err
	}
	return &Program{Module: mod, svc: s}, nil
}

// DetectProgram detects idioms in an already-compiled program through the
// service pipeline (idioms empty = the default set). This is the single
// in-process path from a Program to a Detection; Program.Detect and
// Program.DetectOnly are thin wrappers over it.
func (s *Service) DetectProgram(ctx context.Context, p *Program, idms ...string) (*Detection, error) {
	subset, err := s.subset(idms)
	if err != nil {
		return nil, err
	}
	mod := p.Module
	job, err := s.pipe.SubmitOpts(mod.Ident, func() (*ir.Module, error) {
		return mod, nil
	}, pipeline.SubmitOptions{Ctx: ctx, Idioms: subset})
	if err != nil {
		return nil, err
	}
	res, err := job.Wait()
	if err != nil {
		return nil, err
	}
	return wrapDetection(res), nil
}

// --- introspection ---

// IdiomInfo describes one detectable idiom for roster introspection
// (GET /v1/idioms).
type IdiomInfo struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	// Default marks idioms in the paper's evaluated set, detected when a
	// request names none.
	Default bool `json:"default"`
	// Extension marks §9 future-work idioms, detected only when named.
	Extension bool `json:"extension"`
	// Scheme and Kind carry a pack idiom's transform strategy and offload
	// kind (empty for built-in idioms, whose strategies are intrinsic).
	Scheme string `json:"scheme,omitempty"`
	Kind   string `json:"kind,omitempty"`
}

// Idioms reports the service's roster in precedence order.
func (s *Service) Idioms() []IdiomInfo {
	ext := map[string]bool{}
	for _, idm := range idioms.Extensions() {
		ext[idm.Name] = true
	}
	var out []IdiomInfo
	for _, idm := range s.eng.Roster() {
		out = append(out, IdiomInfo{
			Name:      idm.Name,
			Class:     idm.Class.String(),
			Default:   !ext[idm.Name],
			Extension: ext[idm.Name],
		})
	}
	return out
}

// StatsSchemaVersion is the current StatsResponse schema number, bumped on
// any incompatible change to the /statsz payload. v2 added the prescreen
// gauges (prune_mode, prune_skipped, prune_reordered, prescreen_ns_total)
// and the memo cost-table size (memo.cost_entries). v3 added the
// persistence block (store.*: blob gauge, spill hit/miss, sync spills,
// pack-log counters). v4 added the adaptive split-scheduling gauges
// (resplit_depth, split_decisions, split_resplits, split_skipped_cheap,
// split_var_hist).
const StatsSchemaVersion = 4

// StatsResponse is the versioned /statsz wire payload: queue depth, worker
// utilization, memoization state and per-client fairness gauges. Fields are
// append-only within a schema version; see README ("Auth & fairness") for
// field-by-field documentation.
type StatsResponse struct {
	// Schema is the payload's schema version (StatsSchemaVersion).
	Schema int `json:"schema"`
	// InFlight is the number of requests submitted but not yet finished;
	// QueueLimit is the intake bound they count against (0 = unbounded).
	InFlight   int `json:"in_flight"`
	QueueLimit int `json:"queue_limit"`
	// CompileQueue is how many requests are waiting for a compile worker.
	CompileQueue int `json:"compile_queue"`
	// SolveActive / SolveWorkers is the solver-pool utilization gauge.
	CompileWorkers int `json:"compile_workers"`
	SolveWorkers   int `json:"solve_workers"`
	SolveActive    int `json:"solve_active"`
	// SolveSplit is the configured intra-solve branch fan-out cap (1 =
	// sequential searches); SolveBranchActive is how many branch subtasks of
	// split solves are running right now.
	SolveSplit        int `json:"solve_split"`
	SolveBranchActive int `json:"solve_branch_active"`
	// ResplitDepth is the configured adaptive re-split budget below the root
	// fork (0 = branches never re-split).
	ResplitDepth int `json:"resplit_depth"`
	// Split-decision counters (schema v4, cumulative): SplitDecisions counts
	// solves that actually forked at a split variable, SplitResplits the
	// adaptive branch re-splits across them, and SplitSkippedCheap the
	// splittable solves kept sequential because the memo cost table
	// predicted them cheaper than fork overhead. SplitVarHist is the
	// chosen-variable histogram: forked solves per split variable.
	SplitDecisions    int64            `json:"split_decisions"`
	SplitResplits     int64            `json:"split_resplits"`
	SplitSkippedCheap int64            `json:"split_skipped_cheap"`
	SplitVarHist      map[string]int64 `json:"split_var_hist"`
	// ReadyQueue counts compiled modules waiting for a solver slot;
	// DetectSlots is the slot bound (-1 = unbounded) and DetectActive how
	// many slots are occupied right now.
	ReadyQueue   int `json:"ready_queue"`
	DetectSlots  int `json:"detect_slots"`
	DetectActive int `json:"detect_active"`
	// PruneMode is the engine's similarity-prescreen mode ("off", "reorder",
	// "on"). PruneSkipped counts solves skipped as provably unmatchable,
	// PruneReordered counts solves the scheduler displaced from natural
	// order, and PrescreenNsTotal is cumulative feature-extraction and
	// scoring time in nanoseconds.
	PruneMode        string `json:"prune_mode"`
	PruneSkipped     int64  `json:"prune_skipped"`
	PruneReordered   int64  `json:"prune_reordered"`
	PrescreenNsTotal int64  `json:"prescreen_ns_total"`
	// Submitted and Completed are cumulative request counts.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	// Packs is the number of currently registered idiom packs.
	Packs int `json:"packs"`
	// Memo is the solve-cache snapshot (hit rate, entries, evictions).
	Memo MemoSnapshot `json:"memo"`
	// Store is the persistence block (schema v3): disk-spill and pack-log
	// gauges, zero-valued with Enabled false when the service runs without
	// a state dir.
	Store StoreStats `json:"store"`
	// Clients holds one fairness row per tenant seen since start, in
	// first-seen order (the anonymous tier appears with an empty name).
	Clients []ClientStatsRow `json:"clients,omitempty"`
}

// ServiceStats is the pre-v1 name of the stats payload.
//
// Deprecated: use StatsResponse.
type ServiceStats = StatsResponse

// ClientStatsRow is one per-tenant fairness row in StatsResponse.
type ClientStatsRow struct {
	// Name is the tenant ("" = anonymous tier); Weight its fair-share weight.
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	// InFlight is the tenant's submitted-but-unfinished request count.
	InFlight int64 `json:"in_flight"`
	// IntakeQueue / ReadyQueue are the tenant's requests waiting for a
	// compile worker and for a solver slot, respectively.
	IntakeQueue int `json:"intake_queue"`
	ReadyQueue  int `json:"ready_queue"`
	// Served counts completed requests; Shed counts rejections (overload,
	// rate limit) and requests cancelled while queued.
	Served int64 `json:"served"`
	Shed   int64 `json:"shed"`
}

// Stats reports current service load.
func (s *Service) Stats() StatsResponse {
	ps := s.pipe.Stats()
	out := StatsResponse{
		Schema:            StatsSchemaVersion,
		InFlight:          ps.InFlight,
		QueueLimit:        ps.MaxQueue,
		CompileQueue:      ps.CompileQueue,
		CompileWorkers:    ps.CompileWorkers,
		SolveWorkers:      ps.SolveWorkers,
		SolveActive:       ps.SolveActive,
		SolveSplit:        ps.SolveSplit,
		SolveBranchActive: ps.SolveBranchActive,
		ResplitDepth:      ps.ResplitDepth,
		SplitDecisions:    ps.SplitDecisions,
		SplitResplits:     ps.SplitResplits,
		SplitSkippedCheap: ps.SplitSkippedCheap,
		SplitVarHist:      ps.SplitVars,
		ReadyQueue:        ps.ReadyQueue,
		DetectSlots:       ps.DetectSlots,
		DetectActive:      ps.DetectActive,
		PruneMode:         ps.PruneMode,
		PruneSkipped:      ps.PruneSkipped,
		PruneReordered:    ps.PruneReordered,
		PrescreenNsTotal:  ps.PrescreenNs,
		Submitted:         ps.Submitted,
		Completed:         ps.Completed,
		Packs:             len(s.reg.Packs()),
		Memo:              s.memoSnapshot(),
		Store:             s.storeStats(),
	}
	for _, c := range ps.Clients {
		out.Clients = append(out.Clients, ClientStatsRow{
			Name:        c.Name,
			Weight:      c.Weight,
			InFlight:    c.InFlight,
			IntakeQueue: c.IntakeQueue,
			ReadyQueue:  c.ReadyQueue,
			Served:      c.Served,
			Shed:        c.Shed,
		})
	}
	return out
}

func (s *Service) memoSnapshot() MemoSnapshot {
	hits, misses := s.eng.MemoStats()
	out := MemoSnapshot{Hits: hits, Misses: misses}
	if hits+misses > 0 {
		out.HitRate = float64(hits) / float64(hits+misses)
	}
	if s.memo != nil {
		out.Entries = s.memo.Len()
		out.Evictions = s.memo.Evictions()
		out.MaxEntries = s.memo.MaxEntries()
		out.CostEntries = s.memo.CostEntries()
	}
	return out
}

// Elapsed converts a wire result's nanosecond timing back to a Duration.
func (r *DetectResult) Elapsed() time.Duration { return time.Duration(r.ElapsedNs) }
