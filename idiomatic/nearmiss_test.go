package idiomatic_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/idiomatic"
)

// nearMissGoldens perturbs one workload per idiom class just enough that the
// class idiom no longer matches, then pins the explain-mode wire diagnostics
// byte for byte: which idioms are reported as near misses, their prescreen
// scores, the dominant feature deltas and the rejecting constraint family.
// Any drift in the feature extractor, the signature derivation or the wire
// encoding becomes a reviewed diff. Regenerate with
// `go test ./idiomatic -run TestNearMissGolden -update`.
var nearMissGoldens = []struct {
	name string
	req  idiomatic.DetectRequest
}{
	// Triple float loop with the accumulation twisted (acc*a + b instead of
	// acc + a*b): every opcode GEMM wants is present at full demand, so GEMM
	// tops the near-miss list with a solver-level rejection — the canonical
	// "one constraint away from GEMM" report. The same source anchors
	// scripts/serve_smoke.sh; keep them in sync.
	{"gemm", idiomatic.DetectRequest{Name: "almost_gemm.c", Source: `
void almost_gemm(int n, float* A, float* B, float* C) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            C[i*n + j] = 0.0f;
            float c = 0.0f;
            for (int k = 0; k < n; k++) {
                c = c * A[i*n + k] + B[k*n + j];
            }
            C[i*n + j] = c;
        }
    }
}`}},
	// CSR-style loop nest without the gather: x is read densely, so SPMV's
	// indirection constraints fail while its loop shape scores high.
	{"spmv", idiomatic.DetectRequest{Name: "almost_spmv.c", Source: `
void almost_spmv(int m, double* a, int* rowstr, double* x, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * x[k];
        }
        r[j] = d;
    }
}`}},
	// Reduction over subtraction: fsub is not the accumulator pattern the
	// Reduction idiom's fadd demand wants.
	{"reduction", idiomatic.DetectRequest{Name: "almost_dot.c", Source: `
double almost_dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s - x[i]*y[i]; }
    return s;
}`}},
	// Histogram whose bin update multiplies instead of increments.
	{"histogram", idiomatic.DetectRequest{Name: "almost_histo.c", Source: `
void almost_histo(int* data, int* bins, int n) {
    for (int i = 0; i < n; i++) {
        bins[data[i]] *= 2;
    }
}`}},
	// 1-D stencil that reads its neighborhood but writes through a stride,
	// breaking the stencil store constraint.
	{"stencil", idiomatic.DetectRequest{Name: "almost_jacobi.c", Source: `
void almost_jacobi(double* in, double* out, int n) {
    for (int i = 1; i < n - 1; i++) {
        out[2*i] = (in[i-1] + in[i] + in[i+1]) / 3.0;
    }
}`}},
}

func TestNearMissGolden(t *testing.T) {
	ctx := context.Background()
	svc, err := idiomatic.NewService(idiomatic.ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for _, tc := range nearMissGoldens {
		t.Run(tc.name, func(t *testing.T) {
			req := tc.req
			req.Opts.Explain = true
			res, err := svc.Detect(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != "" {
				t.Fatalf("in-band error: %s", res.Err)
			}
			if len(res.NearMisses) == 0 {
				t.Fatal("no near misses — the golden would pin nothing")
			}
			got, err := json.MarshalIndent(res.NearMisses, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "nearmiss_"+tc.name+".golden.json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./idiomatic -run TestNearMissGolden -update` to create)", err)
			}
			if string(got) != string(want) {
				t.Errorf("near-miss wire diagnostics drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestNearMissOffByDefault pins the opt-in contract: without Opts.Explain the
// wire result carries no near-miss payload at all (omitempty keeps the field
// off the wire for byte-compatibility with pre-explain clients).
func TestNearMissOffByDefault(t *testing.T) {
	svc, err := idiomatic.NewService(idiomatic.ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	res, err := svc.Detect(context.Background(), nearMissGoldens[0].req)
	if err != nil {
		t.Fatal(err)
	}
	if res.NearMisses != nil {
		t.Fatalf("near misses present without explain: %+v", res.NearMisses)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	if _, ok := fields["near_misses"]; ok {
		t.Error("near_misses field on the wire without explain")
	}
}
