package idiomatic_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/idiomatic"
	"repro/internal/idioms"
)

const dotSource = `
double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; }
    return s;
}`

func newPackService(t *testing.T, opts idiomatic.ServiceOptions) *idiomatic.Service {
	t.Helper()
	svc, err := idiomatic.NewService(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func TestServicePackLifecycle(t *testing.T) {
	ctx := context.Background()
	svc := newPackService(t, idiomatic.ServiceOptions{Workers: 2})

	// Unknown pack / idiom / target are intake errors, never empty results.
	if _, err := svc.Detect(ctx, idiomatic.DetectRequest{Source: dotSource, Pack: "nope"}); err == nil ||
		!strings.Contains(err.Error(), `unknown pack "nope"`) {
		t.Fatalf("unknown pack err = %v", err)
	}
	if _, err := svc.Match(ctx, idiomatic.MatchRequest{Source: dotSource, Target: "TPU"}); err == nil ||
		!strings.Contains(err.Error(), `unknown target device "TPU"`) {
		t.Fatalf("unknown target err = %v", err)
	}

	// Registration failures surface the shared CompilePack error verbatim —
	// the same text `idlc -pack` prints.
	badTops := []idiomatic.TopSpec{{Top: "NoSuchConstraint"}}
	_, svcErr := svc.RegisterPack("p", idiomatic.LibrarySource(), badTops)
	_, cliErr := idioms.CompilePack("p", idiomatic.LibrarySource(), badTops, 0)
	if svcErr == nil || cliErr == nil || svcErr.Error() != cliErr.Error() {
		t.Fatalf("service and CLI validation diverge:\n  service: %v\n  cli:     %v", svcErr, cliErr)
	}

	info, err := svc.RegisterPack("p", idiomatic.LibrarySource(), []idiomatic.TopSpec{
		{Name: "Dot", Top: "Reduction", Class: "Scalar Reduction", Scheme: "reduction", Kind: "reduction"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || len(info.Idioms) != 1 || info.Idioms[0].Name != "Dot" {
		t.Fatalf("pack info = %+v", info)
	}
	if st := svc.Stats(); st.Packs != 1 {
		t.Errorf("stats packs = %d, want 1", st.Packs)
	}
	if _, ok := svc.PackByName("p"); !ok {
		t.Error("PackByName missed a registered pack")
	}

	if _, err := svc.Detect(ctx, idiomatic.DetectRequest{Source: dotSource, Pack: "p", Idioms: []string{"Reduction"}}); err == nil ||
		!strings.Contains(err.Error(), `unknown idiom "Reduction" in pack "p"`) {
		t.Fatalf("unknown pack idiom err = %v", err)
	}

	// The pack detects and transforms with ranked backend estimates.
	res, err := svc.Match(ctx, idiomatic.MatchRequest{Name: "dot.c", Source: dotSource, Pack: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" || len(res.Findings) != 1 || res.Findings[0].Idiom != "Dot" {
		t.Fatalf("match result = %+v", res)
	}
	if res.Pack != "p" || res.PackVersion != 1 {
		t.Errorf("pack identity = %s v%d, want p v1", res.Pack, res.PackVersion)
	}
	plan := res.Plans[0]
	if plan.Err != "" || !strings.HasPrefix(plan.Extern, "lift.reduction#") {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Backend != "lift" || plan.Device != "GPU" {
		t.Errorf("selected backend = %s on %s, want lift on GPU", plan.Backend, plan.Device)
	}
	if len(plan.Offload) != 3 || plan.Offload[0].Device != "CPU" || len(plan.Offload[0].Choices) == 0 {
		t.Errorf("offload ranking = %+v", plan.Offload)
	}

	// Target pinning restricts the ranking and selection to one device.
	res, err = svc.Match(ctx, idiomatic.MatchRequest{Source: dotSource, Pack: "p", Target: "CPU"})
	if err != nil {
		t.Fatal(err)
	}
	plan = res.Plans[0]
	if plan.Device != "CPU" || len(plan.Offload) != 1 || plan.Offload[0].Device != "CPU" {
		t.Errorf("CPU-pinned plan = %+v", plan)
	}
	// On the CPU the best reduction backend is halide (0.55 ties lift, name
	// breaks the tie deterministically).
	if plan.Backend != "halide" {
		t.Errorf("CPU reduction backend = %s, want halide", plan.Backend)
	}
}

// TestPackSchemeWinsOverBuiltinName pins that a pack idiom reusing a
// built-in idiom name keeps its declared transform scheme and claim set —
// the per-name tables in transform.Apply and detect.claimSet must not
// shadow it.
func TestPackSchemeWinsOverBuiltinName(t *testing.T) {
	ctx := context.Background()
	svc := newPackService(t, idiomatic.ServiceOptions{Workers: 2})
	if _, err := svc.RegisterPack("p", idiomatic.LibrarySource(), []idiomatic.TopSpec{
		// Deliberately named after the built-in Histogram idiom, but it is
		// a reduction: the declared scheme must drive the transformation.
		{Name: "Histogram", Top: "Reduction", Scheme: "reduction", Kind: "reduction"},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Match(ctx, idiomatic.MatchRequest{Name: "dot.c", Source: dotSource, Pack: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" || len(res.Plans) != 1 {
		t.Fatalf("result = %+v", res)
	}
	plan := res.Plans[0]
	if plan.Err != "" || !strings.HasPrefix(plan.Extern, "lift.reduction#") {
		t.Fatalf("name shadowed the declared scheme: plan = %+v", plan)
	}
}

// TestBranchyKernelExcludesStraightLineAPIs pins the §6.3 Halide
// restriction in backend selection: an outlined kernel containing control
// flow must never select (or rank) a NeedsStraightLineKernel API, even when
// that API would win on efficiency.
func TestBranchyKernelExcludesStraightLineAPIs(t *testing.T) {
	ctx := context.Background()
	svc := newPackService(t, idiomatic.ServiceOptions{Workers: 2})
	straight := `
double sum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}`
	branchy := `
double maxval(double* a, int n) {
    double m = 0.0;
    for (int i = 0; i < n; i++) {
        if (a[i] > m) { m = a[i]; }
    }
    return m;
}`
	// Straight-line reduction on the CPU: halide wins the 0.55 tie by name.
	res, err := svc.Match(ctx, idiomatic.MatchRequest{Source: straight, Target: "CPU"})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Plans[0]; p.Err != "" || p.Backend != "halide" {
		t.Fatalf("straight-line CPU reduction plan = %+v", p)
	}
	// Branchy reduction: halide cannot express it; lift takes over and the
	// extern is re-qualified accordingly.
	res, err = svc.Match(ctx, idiomatic.MatchRequest{Source: branchy, Target: "CPU"})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Plans[0]
	if p.Err != "" || p.Backend != "lift" || !strings.HasPrefix(p.Extern, "lift.reduction#") {
		t.Fatalf("branchy CPU reduction plan = %+v", p)
	}
	for _, off := range p.Offload {
		for _, c := range off.Choices {
			if c.API == "halide" {
				t.Errorf("halide ranked for a branchy kernel on %s", off.Device)
			}
		}
	}
}

// TestMatchResultValidatesTarget pins that the exported Task.MatchResult
// reports an invalid target in-band instead of silently planning for a
// default device.
func TestMatchResultValidatesTarget(t *testing.T) {
	svc := newPackService(t, idiomatic.ServiceOptions{Workers: 1})
	task, err := svc.Submit(context.Background(), idiomatic.DetectRequest{Source: dotSource})
	if err != nil {
		t.Fatal(err)
	}
	res := task.MatchResult(0, "gpu") // wrong case on purpose
	if !strings.Contains(res.Err, `unknown target device "gpu"`) || res.Plans != nil {
		t.Fatalf("result = %+v", res)
	}
}

// TestPackReplacementConcurrentWithMatching is the registry-concurrency
// acceptance test: packs are re-registered while matches stream under -race,
// and every in-flight result must be consistent with the snapshot it
// resolved at intake — odd versions detect (Reduction top), even versions
// cannot (GEMM top on a dot product). A solve-memo leak across versions
// (same source fingerprint, same pack and idiom name) would surface here as
// an even-version result carrying the odd version's finding.
func TestPackReplacementConcurrentWithMatching(t *testing.T) {
	ctx := context.Background()
	svc := newPackService(t, idiomatic.ServiceOptions{Workers: 4})

	register := func(version int) {
		top := "Reduction"
		if version%2 == 0 {
			top = "GEMM"
		}
		info, err := svc.RegisterPack("p", idiomatic.LibrarySource(), []idiomatic.TopSpec{
			{Name: "Dot", Top: top, Scheme: "reduction", Kind: "reduction"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if info.Version != uint64(version) {
			t.Errorf("registration version = %d, want %d", info.Version, version)
		}
	}
	register(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := svc.Match(ctx, idiomatic.MatchRequest{Name: "dot.c", Source: dotSource, Pack: "p"})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Err != "" {
					t.Errorf("in-band error: %s", res.Err)
					return
				}
				want := 0
				if res.PackVersion%2 == 1 {
					want = 1
				}
				if len(res.Findings) != want {
					t.Errorf("pack v%d: %d finding(s), want %d — result crossed registration versions",
						res.PackVersion, len(res.Findings), want)
					return
				}
				if want == 1 && (res.Findings[0].Idiom != "Dot" || res.Plans[0].Err != "") {
					t.Errorf("pack v%d: finding/plan = %+v / %+v", res.PackVersion, res.Findings[0], res.Plans[0])
					return
				}
			}
		}()
	}
	for v := 2; v <= 21; v++ {
		register(v)
	}
	close(stop)
	wg.Wait()
}

// TestPackReplacementConcurrentWithPruning re-runs the registry-concurrency
// scenario against a prune=on service. The hazard is specific to the
// prescreen: signatures are compiled per pack version, and a stale signature
// surviving a replacement could veto solves for the new version's idioms —
// here, the GEMM-top version's signature (which prunes a dot product as
// provably unmatchable) suppressing the Reduction-top version's match. Packs
// are replaced every few milliseconds while explain-mode matches stream on
// four goroutines; run under -race this also exercises every
// signature-publication path.
func TestPackReplacementConcurrentWithPruning(t *testing.T) {
	ctx := context.Background()
	svc := newPackService(t, idiomatic.ServiceOptions{Workers: 4, Prune: "on"})

	register := func(version int) {
		top := "Reduction"
		if version%2 == 0 {
			top = "GEMM"
		}
		info, err := svc.RegisterPack("p", idiomatic.LibrarySource(), []idiomatic.TopSpec{
			{Name: "Dot", Top: top, Scheme: "reduction", Kind: "reduction"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if info.Version != uint64(version) {
			t.Errorf("registration version = %d, want %d", info.Version, version)
		}
	}
	register(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := svc.Match(ctx, idiomatic.MatchRequest{
					Name: "dot.c", Source: dotSource, Pack: "p",
					Opts: idiomatic.RequestOptions{Explain: true},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Err != "" {
					t.Errorf("in-band error: %s", res.Err)
					return
				}
				if res.PackVersion%2 == 1 {
					// Reduction top: must match. A pruned-away finding here
					// means a stale (GEMM) signature crossed the replacement.
					if len(res.Findings) != 1 || res.Findings[0].Idiom != "Dot" {
						t.Errorf("pack v%d: findings = %+v — stale signature pruned a live match",
							res.PackVersion, res.Findings)
						return
					}
				} else {
					// GEMM top: cannot match a dot product; explain mode must
					// report the near miss for the version actually resolved.
					if len(res.Findings) != 0 {
						t.Errorf("pack v%d: unexpected findings %+v", res.PackVersion, res.Findings)
						return
					}
					if len(res.NearMisses) != 1 || res.NearMisses[0].Idiom != "Dot" {
						t.Errorf("pack v%d: near misses = %+v, want one Dot row", res.PackVersion, res.NearMisses)
						return
					}
				}
			}
		}()
	}
	for v := 2; v <= 21; v++ {
		time.Sleep(3 * time.Millisecond)
		register(v)
	}
	close(stop)
	wg.Wait()
}
