package idiomatic

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// canonicalJSON renders a wire result with the non-deterministic fields
// (wall time, memo counters) zeroed, so byte equality pins everything the
// protocol guarantees to be deterministic.
func canonicalJSON(t *testing.T, r DetectResult) string {
	t.Helper()
	r.ElapsedNs = 0
	r.Memo = MemoSnapshot{}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func workloadRequests(opts RequestOptions) []DetectRequest {
	var reqs []DetectRequest
	for _, w := range workloads.All() {
		reqs = append(reqs, DetectRequest{Name: w.Name, Source: w.Source, Opts: opts})
	}
	return reqs
}

// wantWire builds the reference wire results straight from the batch engine:
// compile all workloads, detect with detect.Modules, convert with the same
// WireResult encoding.
func wantWire(t *testing.T, opts RequestOptions) []DetectResult {
	t.Helper()
	ws := workloads.All()
	mods := make([]*ir.Module, len(ws))
	for i, w := range ws {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		mods[i] = mod
	}
	ress, err := detect.Modules(mods, detect.Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]DetectResult, len(ress))
	for i, res := range ress {
		out[i] = WireResult(i, ws[i].Name, res, opts)
	}
	return out
}

// TestServiceStreamMatchesModules is the service-level determinism
// criterion: streaming the full 21-workload suite through DetectStream and
// reassembling by sequence number is byte-identical (canonical wire
// encoding, findings with full solutions) to detect.Modules over the same
// batch; DetectBatch must agree as well. The split variant runs every
// backtracking search forked 4 ways on the shared pool — the wire contract
// is identical bytes either way.
func TestServiceStreamMatchesModules(t *testing.T) {
	t.Run("sequential", func(t *testing.T) {
		testServiceStreamMatchesModules(t, ServiceOptions{Workers: 4})
	})
	t.Run("split=4", func(t *testing.T) {
		testServiceStreamMatchesModules(t, ServiceOptions{Workers: 4, SolveSplit: 4})
	})
}

func testServiceStreamMatchesModules(t *testing.T, sopts ServiceOptions) {
	opts := RequestOptions{Solutions: true}
	want := wantWire(t, opts)
	reqs := workloadRequests(opts)

	svc, err := NewService(sopts)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ch, err := svc.DetectStream(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]*DetectResult, len(reqs))
	for res := range ch {
		res := res
		if res.Err != "" {
			t.Fatalf("seq %d (%s): %s", res.Seq, res.Name, res.Err)
		}
		if res.Seq < 0 || res.Seq >= len(reqs) || got[res.Seq] != nil {
			t.Fatalf("bad or duplicate seq %d", res.Seq)
		}
		got[res.Seq] = &res
	}
	for i := range want {
		if got[i] == nil {
			t.Fatalf("seq %d never delivered", i)
		}
		if g, w := canonicalJSON(t, *got[i]), canonicalJSON(t, want[i]); g != w {
			t.Errorf("seq %d (%s) differs:\n  stream: %s\n  batch:  %s", i, want[i].Name, g, w)
		}
		if got[i].ElapsedNs <= 0 {
			t.Errorf("seq %d: elapsed %d, want > 0", i, got[i].ElapsedNs)
		}
	}

	batch, err := svc.DetectBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if g, w := canonicalJSON(t, batch[i]), canonicalJSON(t, want[i]); g != w {
			t.Errorf("batch seq %d differs:\n  got:  %s\n  want: %s", i, g, w)
		}
	}
	// The second pass re-detected identical shapes: the memo must have hits.
	if st := svc.Stats(); st.Memo.Hits == 0 {
		t.Error("no memo hits after re-detecting the suite")
	}
}

// TestServiceOverload pins intake backpressure end to end: a batch larger
// than the queue limit is rejected with ErrOverloaded, already-submitted
// requests are shed, and the service keeps serving afterwards.
func TestServiceOverload(t *testing.T) {
	svc, err := NewService(ServiceOptions{Workers: 2, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	err = func() error {
		_, err := svc.DetectBatch(context.Background(), workloadRequests(RequestOptions{}))
		return err
	}()
	if !errors.Is(err, ErrBatchTooLarge) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized batch: err = %v, want ErrBatchTooLarge (wrapping ErrOverloaded)", err)
	}
	waitDrained(t, svc)

	res, err := svc.Detect(context.Background(), DetectRequest{
		Name: "dot.c", Source: dotSource,
	})
	if err != nil {
		t.Fatalf("service unusable after overload: %v", err)
	}
	if res.Err != "" || len(res.Findings) != 1 || res.Findings[0].Idiom != "Reduction" {
		t.Fatalf("post-overload result = %+v", res)
	}
}

// TestServiceCancellation pins load shedding through the public API:
// cancelling the request context fails the in-flight batch with context
// errors, the queues drain, and the service keeps serving.
func TestServiceCancellation(t *testing.T) {
	svc, err := NewService(ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	ch, err := svc.DetectStream(ctx, workloadRequests(RequestOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	delivered := 0
	for res := range ch {
		delivered++
		if res.Err != "" && res.Err != context.Canceled.Error() {
			t.Errorf("seq %d: err = %q, want context.Canceled", res.Seq, res.Err)
		}
	}
	if delivered != len(workloads.All()) {
		t.Fatalf("delivered %d results, want %d (every request must resolve)", delivered, len(workloads.All()))
	}
	waitDrained(t, svc)

	res, err := svc.Detect(context.Background(), DetectRequest{Name: "dot.c", Source: dotSource})
	if err != nil || res.Err != "" {
		t.Fatalf("service unusable after cancellation: %v / %q", err, res.Err)
	}
}

// TestServiceErrorsInBand pins per-request failure reporting: a compile
// error lands in the result's Err field without failing the batch.
func TestServiceErrorsInBand(t *testing.T) {
	svc, err := NewService(ServiceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	results, err := svc.DetectBatch(context.Background(), []DetectRequest{
		{Name: "good.c", Source: dotSource},
		{Name: "bad.c", Source: "int broken( {"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != "" || len(results[0].Findings) != 1 {
		t.Errorf("good request: %+v", results[0])
	}
	if results[1].Err == "" {
		t.Error("compile error not reported in-band")
	}
}

// TestServiceProgramPath pins the in-process blessed path: Compile binds the
// Program to the service, Detect routes through the shared pipeline, and the
// idiom subset keeps sequential-driver precedence semantics.
func TestServiceProgramPath(t *testing.T) {
	svc, err := NewService(ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	prog, err := svc.Compile(context.Background(), "dot", dotSource)
	if err != nil {
		t.Fatal(err)
	}
	det, err := prog.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Instances) != 1 || det.Instances[0].Idiom != "Reduction" {
		t.Fatalf("detection = %+v", det)
	}
	if det.Elapsed <= 0 {
		t.Error("Detection.Elapsed not populated")
	}
	none, err := prog.DetectOnly("GEMM")
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Instances) != 0 {
		t.Fatalf("GEMM-only detection found %d instances in a reduction", len(none.Instances))
	}
	if _, err := prog.DetectOnly("Bogus"); err == nil {
		t.Error("unknown idiom name accepted; must be rejected, not answered empty")
	}
	if _, err := svc.Submit(context.Background(), DetectRequest{
		Name: "x.c", Source: dotSource, Idioms: []string{"gemm"},
	}); err == nil {
		t.Error("Submit accepted a misspelled idiom name")
	}
}

func waitDrained(t *testing.T, svc *Service) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.Stats()
		if st.InFlight == 0 && st.SolveActive == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not drain: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
