package idiomatic_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/idiomatic"
)

// The wire schema carries three map-typed fields — StatsResponse.SplitVarHist,
// Finding.Solution, and BackendInfo.Kinds — whose byte-level determinism
// rests entirely on encoding/json sorting map keys. These tests pin that
// contract from both sides: the encoder side (identical contents, hostile
// insertion orders, identical bytes) and the population side (repeated
// Backends calls marshal identically). If any of these fields is ever moved
// off encoding/json — a hand-rolled writer, a streaming encoder — the
// replacement must sort keys itself or these tests fail. The idiomvet
// mapdeterminism analyzer guards the same invariant statically on the
// population loops.

// marshalBoth builds two values via the supplied inserters (which add the
// same entries in opposite orders) and marshals each.
func marshalBoth[T any](t *testing.T, build func(insertReversed bool) T) ([]byte, []byte) {
	t.Helper()
	a, err := json.Marshal(build(false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build(true))
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestStatsSplitVarHistMarshalsSorted(t *testing.T) {
	entries := []struct {
		k string
		v int64
	}{{"Z_mul", 9}, {"A_add", 3}, {"m_acc", 7}, {"B_red", 1}}
	a, b := marshalBoth(t, func(rev bool) idiomatic.StatsResponse {
		var s idiomatic.StatsResponse
		s.SplitVarHist = map[string]int64{}
		for i := range entries {
			e := entries[i]
			if rev {
				e = entries[len(entries)-1-i]
			}
			s.SplitVarHist[e.k] = e.v
		}
		return s
	})
	if !bytes.Equal(a, b) {
		t.Errorf("SplitVarHist encoding depends on insertion order:\n  %s\n  %s", a, b)
	}
}

func TestFindingSolutionMarshalsSorted(t *testing.T) {
	entries := []struct{ k, v string }{
		{"%out", "%3"}, {"%acc", "%1"}, {"%n", "%7"}, {"%base", "%2"},
	}
	a, b := marshalBoth(t, func(rev bool) idiomatic.Finding {
		var f idiomatic.Finding
		f.Solution = map[string]string{}
		for i := range entries {
			e := entries[i]
			if rev {
				e = entries[len(entries)-1-i]
			}
			f.Solution[e.k] = e.v
		}
		return f
	})
	if !bytes.Equal(a, b) {
		t.Errorf("Finding.Solution encoding depends on insertion order:\n  %s\n  %s", a, b)
	}
}

// TestBackendsMarshalStable exercises the real population loop: Backends()
// fills BackendInfo.Kinds by ranging over maps, so two calls populate in
// different randomized orders — the wire bytes must come out identical.
func TestBackendsMarshalStable(t *testing.T) {
	svc, err := idiomatic.NewService(idiomatic.ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	first, err := json.Marshal(svc.Backends())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		again, err := json.Marshal(svc.Backends())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("Backends encoding unstable across calls:\n  %s\n  %s", first, again)
		}
	}
}
