// Package idiomatic is the public interface of the reproduction of
// "Automatic Matching of Legacy Code to Heterogeneous APIs: An Idiomatic
// Approach" (Ginsbach et al., ASPLOS 2018).
//
// The blessed entry point is the Service: a long-lived, context-aware front
// door owning one streaming compile→detect pipeline, a shared solver pool
// and a bounded intake queue, with a versioned JSON-encodable
// request/response model. DetectRequest → DetectResult covers detection;
// MatchRequest → MatchResult serves the paper's whole pipeline — detection,
// code replacement plans and per-device backend selection — and RegisterPack
// makes the idiom inventory itself runtime data (IDL idiom packs, installed
// live, copy-on-write versioned). cmd/idiomd serves the same model over
// HTTP.
//
//	svc, _ := idiomatic.NewService(idiomatic.ServiceOptions{})
//	defer svc.Close()
//	res, _ := svc.Match(ctx, idiomatic.MatchRequest{Name: "demo", Source: src})
//	// res.Findings, res.Plans (externs, unsound flags, ranked offload estimates)
//
// In-process consumers that go on to transform and execute programs use the
// Program path of the paper's Figure 1, still routed through the service:
//
//	prog, _ := svc.Compile(ctx, "demo", src)
//	det, _ := prog.Detect()            // constraint-based idiom discovery
//	calls, _ := prog.Accelerate(det)   // replace idioms with API calls
//	out, _ := prog.Run("sum", args...) // execute under the interpreter
//
// plus direct access to the Idiom Description Language for user-defined
// idioms (Service.MatchIDL for one-shot probes, Service.RegisterPack for
// full pipeline coverage), and to the heterogeneous performance models used
// by the paper's evaluation (see Devices, EstimateBest, Service.Backends).
package idiomatic

import (
	"context"
	"fmt"
	"time"

	"repro/internal/detect"
	"repro/internal/hetero"
	"repro/internal/idioms"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Program is a compiled C program ready for idiom detection, transformation
// and execution. Programs are bound to the Service that compiled them;
// detection runs on that service's shared engine and memo cache.
type Program struct {
	Module *ir.Module

	svc *Service
}

// Compile translates a C source file into SSA form (the clang-to-LLVM-IR
// stage of the paper's workflow) on the process-wide default service.
//
// Deprecated: use Service.Compile (or Service.Detect for the full
// source-to-findings path); a Service carries the context support, intake
// bounds and serving statistics this wrapper cannot offer.
func Compile(name, source string) (*Program, error) {
	return Default().Compile(context.Background(), name, source)
}

// service resolves the owning service, falling back to the process default
// for Programs built by the deprecated free functions.
func (p *Program) service() *Service {
	if p.svc != nil {
		return p.svc
	}
	return Default()
}

// IR renders the program's SSA form like the paper's LLVM IR listings.
func (p *Program) IR() string { return p.Module.String() }

// Instance is one detected idiom occurrence.
type Instance struct {
	// Idiom is the matched idiom name (GEMM, SPMV, Histogram, Reduction,
	// Stencil1/2/3).
	Idiom string
	// Class is the paper's Table 1 category.
	Class string
	// Function is the containing function name.
	Function string

	inner detect.Instance
}

// Solution renders the constraint solution (the paper's Figure 5).
func (in *Instance) Solution() string { return in.inner.Solution.String() }

// Detection is the result of running the idiom library over a program.
type Detection struct {
	Instances []Instance
	// SolverSteps is the backtracking effort (compile-time cost, Table 2).
	SolverSteps int
	// Elapsed is the detection wall time.
	Elapsed time.Duration
}

// Detect runs the paper's idiom library (~500 lines of IDL) over the
// program, on the owning service's engine.
func (p *Program) Detect() (*Detection, error) {
	return p.service().DetectProgram(context.Background(), p)
}

// DetectOnly restricts detection to the named idioms (order is merge
// precedence, as in the sequential driver).
func (p *Program) DetectOnly(names ...string) (*Detection, error) {
	return p.service().DetectProgram(context.Background(), p, names...)
}

func wrapDetection(res *detect.Result) *Detection {
	d := &Detection{SolverSteps: res.SolverSteps, Elapsed: res.Elapsed}
	for _, inst := range res.Instances {
		d.Instances = append(d.Instances, Instance{
			Idiom:    inst.Idiom.Name,
			Class:    inst.Idiom.Class.String(),
			Function: inst.Function.Ident,
			inner:    inst,
		})
	}
	return d
}

// APICall describes one applied code replacement.
type APICall struct {
	// Extern is the backend-qualified symbol, e.g. "cusparse.spmv" or
	// "lift.reduction#sum_reduction_kernel".
	Extern string
	// Unsound marks replacements static analysis cannot prove safe (sparse
	// aliasing, paper §6.3).
	Unsound bool
	// RuntimeChecks lists the non-overlap checks a real deployment would
	// insert (dense idioms, paper §6.3).
	RuntimeChecks []string
	// Rendering is the Figure 6 style call listing.
	Rendering string
}

// Accelerate replaces every detected idiom with a call to the appropriate
// heterogeneous API (libraries for GEMM/SPMV, DSL kernels for reductions,
// histograms and stencils), rewriting the program in place.
//
// Deprecated: use Service.Accelerate (the same fixed backend mapping) or
// Service.Plan / Service.Match for profile-driven backend selection with
// ranked per-device offload estimates.
func (p *Program) Accelerate(d *Detection) ([]APICall, error) {
	return p.service().Accelerate(context.Background(), p, d)
}

// Value is an execution argument or result.
type Value = interp.Value

// Int wraps an integer argument.
func Int(v int64) Value { return interp.IntValue(v) }

// Float wraps a floating-point argument.
func Float(v float64) Value { return interp.FloatValue(v) }

// Buffer is a memory object argument.
type Buffer = interp.Buffer

// NewBuffer allocates a zeroed buffer of n bytes.
func NewBuffer(name string, n int) *Buffer { return interp.NewBuffer(name, n) }

// Buf wraps a buffer as a pointer argument.
func Buf(b *Buffer) Value { return interp.PtrValue(interp.Pointer{Buf: b}) }

// RunResult carries a program execution's outcome.
type RunResult struct {
	Return Value
	// Counts are the dynamic operation counts, consumed by the performance
	// models.
	Counts interp.Counts
	// Calls is the number of heterogeneous API invocations (0 for
	// untransformed programs).
	Calls int

	runCost hetero.RunCost
}

// Run executes the named function under the interpreter. Transformed
// programs execute their API calls through the heterogeneous runtime, so
// results are bit-identical to the sequential original.
func (p *Program) Run(entry string, args ...Value) (*RunResult, error) {
	fn := p.Module.FunctionByName(entry)
	if fn == nil {
		return nil, fmt.Errorf("idiomatic: no function %q", entry)
	}
	m := interp.NewMachine(p.Module)
	ledger := &hetero.Ledger{}
	if err := hetero.Bind(m, ledger); err != nil {
		return nil, err
	}
	ret, err := m.Exec(fn, args...)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Return:  ret,
		Counts:  m.Counts,
		Calls:   len(ledger.Calls),
		runCost: hetero.SplitCosts(m.Counts, ledger),
	}, nil
}

// Device identifies one of the paper's three evaluation platforms.
type Device = hetero.DeviceKind

// The paper's platforms.
const (
	CPU  = hetero.CPU
	IGPU = hetero.IGPU
	GPU  = hetero.GPU
)

// Choice is one (API, modelled seconds) option.
type Choice struct {
	API     string
	Seconds float64
}

// EstimateBest models the transformed run on the device, trying every
// applicable API and returning the fastest — the paper's §2.1 strategy
// ("we just try all applicable libraries and DSLs and pick the best").
func (r *RunResult) EstimateBest(dev Device) (Choice, bool) {
	best, ok := hetero.BestOnDevice(r.runCost, hetero.DeviceByKind(dev),
		hetero.TimingOptions{LazyCopy: true})
	return Choice{API: best.API, Seconds: best.Seconds}, ok
}

// SequentialSeconds models the sequential run of the counted work.
func (r *RunResult) SequentialSeconds() float64 {
	return hetero.SequentialSeconds(r.Counts)
}

// Match compiles a user-written IDL specification and returns all solutions
// of the named constraint over the given function — the paper's
// extensibility story: "new idioms can be easily added ... without touching
// the core compiler".
//
// Deprecated: use Service.MatchIDL for the one-shot probe, or register the
// IDL as a pack (Service.RegisterPack) to get full detection,
// transformation and backend selection for it — including over HTTP.
func (p *Program) Match(idlSource, constraintName, function string) ([]string, error) {
	return p.service().MatchIDL(context.Background(), p, idlSource, constraintName, function)
}

// LibrarySource returns the built-in idiom library's IDL text.
func LibrarySource() string { return idioms.LibrarySource }

// LibraryLineCount reports the library's size in non-empty IDL lines (the
// paper quotes ≈500 for the complete idiom set).
func LibraryLineCount() int { return idioms.LibraryLineCount() }
