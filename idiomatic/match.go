package idiomatic

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/constraint"
	"repro/internal/detect"
	"repro/internal/hetero"
	"repro/internal/idioms"
	"repro/internal/idl"
	"repro/internal/ir"
	"repro/internal/transform"
)

// TopSpec declares one idiom of a pack for RegisterPack: the top-level IDL
// constraint plus class/transform-scheme/offload-kind metadata. It is the
// JSON element of POST /v1/idioms.
type TopSpec = idioms.TopSpec

// --- versioned wire model (v1): the full match pipeline ---

// MatchRequest is one v1 end-to-end matching request: detection plus
// transformation plans and backend selection — the paper's whole Figure 1
// flow as one call. It is the JSON body of POST /v1/match and
// /v1/match/stream.
type MatchRequest struct {
	// Name labels the source; echoed back in the result.
	Name string `json:"name"`
	// Source is the C program text to compile, detect and transform.
	Source string `json:"source"`
	// Idioms restricts matching to the named idioms, in precedence order.
	// With Pack empty they resolve against the built-in roster (empty = the
	// paper's default set); with Pack set they subset that pack.
	Idioms []string `json:"idioms,omitempty"`
	// Pack selects a runtime-registered idiom pack instead of the built-in
	// roster. Unknown packs are rejected at intake (HTTP 400).
	Pack string `json:"pack,omitempty"`
	// Target pins backend selection to one device ("CPU", "iGPU", "GPU");
	// empty ranks all three and selects the best effective throughput.
	// Unknown targets are rejected at intake (HTTP 400).
	Target string `json:"target,omitempty"`
	// DeadlineMs, when positive, bounds the request's total latency (same
	// semantics as DetectRequest.DeadlineMs).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Opts shape the response payload. EmitIR emits the post-transformation
	// SSA (the module with idioms replaced by API calls).
	Opts RequestOptions `json:"opts"`
}

// APIChoice is one ranked offload option: an API implementing the idiom's
// kind on a device, with the Table 3 profile efficiency and the effective
// device throughput it buys.
type APIChoice struct {
	API        string  `json:"api"`
	Efficiency float64 `json:"efficiency"`
	// EffectiveGFLOPS is efficiency × device kernel throughput — the
	// cross-device comparison score backend selection maximizes.
	EffectiveGFLOPS float64 `json:"effective_gflops"`
}

// DeviceOffload ranks the APIs serving one idiom kind on one device, best
// first — one Table 3 column, statically.
type DeviceOffload struct {
	Device  string      `json:"device"`
	Choices []APIChoice `json:"choices"`
}

// PlanCall is the wire form of one applied transformation
// (transform.APICall) plus the backend selection that chose its API.
type PlanCall struct {
	// Idiom / Class / Function identify the finding the plan replaces.
	Idiom    string `json:"idiom"`
	Class    string `json:"class"`
	Function string `json:"function"`
	// Extern is the backend-qualified symbol the rewritten code calls
	// (e.g. "cublas.gemm", "lift.reduction#cg_reduction_kernel").
	Extern string `json:"extern,omitempty"`
	// Backend is the selected API (the best choice on Device) and Device the
	// device it was selected for.
	Backend string `json:"backend,omitempty"`
	Device  string `json:"device,omitempty"`
	// Kernel names the outlined DSL kernel function ("" for library calls).
	Kernel string `json:"kernel,omitempty"`
	// Unsound marks replacements static analysis cannot prove safe (sparse
	// aliasing, paper §6.3); RuntimeChecks lists the checks a deployment
	// would insert.
	Unsound       bool     `json:"unsound,omitempty"`
	RuntimeChecks []string `json:"runtime_checks,omitempty"`
	// Rendering is the Figure 6 style call listing.
	Rendering string `json:"rendering,omitempty"`
	// Offload ranks the applicable APIs per device (all three devices, or
	// just the request target), best first. Empty for idioms without an
	// offload kind.
	Offload []DeviceOffload `json:"offload,omitempty"`
	// Err reports a per-instance transformation failure; the call fields are
	// empty when set. Detection findings always survive — a plan that cannot
	// be realized is reported, not hidden.
	Err string `json:"error,omitempty"`
}

// MatchResult is one v1 end-to-end matching outcome: the DetectResult
// payload (same Seq/byte-identity guarantees as /v1/detect) extended with
// transformation plans and backend selection. With Opts.EmitIR the IR field
// carries the post-transformation SSA.
type MatchResult struct {
	DetectResult
	// Pack / PackVersion identify the registry snapshot the request resolved
	// against (empty / 0 for the built-in roster). In-flight requests keep
	// the snapshot they started with even across re-registrations.
	Pack        string `json:"pack,omitempty"`
	PackVersion uint64 `json:"pack_version,omitempty"`
	// Target echoes the requested device pin.
	Target string `json:"target,omitempty"`
	// Plans carry one entry per finding, in finding order.
	Plans []PlanCall `json:"plans"`
}

// matchTarget validates a wire target name. anyDevice reports target == "".
func matchTarget(target string) (dev hetero.DeviceKind, anyDevice bool, err error) {
	if target == "" {
		return 0, true, nil
	}
	k, ok := hetero.DeviceKindByName(target)
	if !ok {
		return 0, false, fmt.Errorf("idiomatic: unknown target device %q (want CPU, iGPU or GPU)", target)
	}
	return k, false, nil
}

// offloadFor ranks the APIs serving kind, per device (all, or the pinned
// target only). branchyKernel excludes straight-line-only APIs.
func offloadFor(kind string, target hetero.DeviceKind, anyDevice, branchyKernel bool) []DeviceOffload {
	if kind == "" {
		return nil
	}
	devs := []hetero.DeviceKind{target}
	if anyDevice {
		devs = []hetero.DeviceKind{CPU, IGPU, GPU}
	}
	var out []DeviceOffload
	for _, d := range devs {
		ranked := hetero.RankOnDevice(d, kind, branchyKernel)
		if len(ranked) == 0 {
			continue
		}
		do := DeviceOffload{Device: d.String()}
		for _, r := range ranked {
			do.Choices = append(do.Choices, APIChoice{
				API: r.API, Efficiency: r.Efficiency, EffectiveGFLOPS: r.EffectiveGFLOPS,
			})
		}
		out = append(out, do)
	}
	return out
}

// planInstances selects a backend for every finding and applies the code
// replacement in finding order, mutating mod — the transformation leg of the
// match pipeline. target must already be validated. The result is
// deterministic: identical detections produce byte-identical plans.
//
// Selection is two-phase because one input is only known after outlining:
// an extracted kernel containing control flow disqualifies
// NeedsStraightLineKernel APIs (the paper's Halide restriction). The plan
// is provisionally transformed with the unrestricted best backend; if the
// outlined kernel turns out branchy and that backend cannot take it, the
// call is retargeted to the best remaining API and the ranking re-filtered.
func planInstances(mod *ir.Module, instances []detect.Instance, target string) []PlanCall {
	tdev, anyDevice, _ := matchTarget(target)
	plans := make([]PlanCall, 0, len(instances))
	// A failed Apply may leave its function partially rewritten; later
	// instances in that function would transform garbage, so they are
	// skipped explicitly instead of reported as spurious failures.
	poisoned := map[*ir.Function]bool{}
	for _, inst := range instances {
		pc := PlanCall{
			Idiom:    inst.Idiom.Name,
			Class:    inst.Idiom.Class.String(),
			Function: inst.Function.Ident,
		}
		// Backend selection: best profiled API for the idiom's kind, on the
		// target (or across devices). Idioms without an offload model — or
		// kinds nothing profiles on the target — fall back to the generic
		// DSL backend, like the paper's Lift catch-all.
		backend := "lift"
		selected := false
		if api, dev, ok := hetero.SelectBackend(inst.Idiom.Kind, tdev, anyDevice, false); ok {
			backend, selected = api, true
			pc.Device = dev.String()
		}
		if poisoned[inst.Function] {
			pc.Offload = offloadFor(inst.Idiom.Kind, tdev, anyDevice, false)
			pc.Err = "skipped: an earlier transformation of this function failed"
			plans = append(plans, pc)
			continue
		}
		call, err := transform.Apply(mod, inst, backend)
		if err != nil {
			poisoned[inst.Function] = true
			pc.Offload = offloadFor(inst.Idiom.Kind, tdev, anyDevice, false)
			pc.Err = err.Error()
			plans = append(plans, pc)
			continue
		}
		branchy := hetero.KernelHasBranches(call.Kernel)
		if branchy && selected {
			// Re-select under the straight-line restriction; the kernel and
			// API name survive, only the backend qualifier moves.
			if api, dev, ok := hetero.SelectBackend(inst.Idiom.Kind, tdev, anyDevice, true); ok {
				if api != backend {
					call.Retarget(mod, api)
				}
				backend = api
				pc.Device = dev.String()
			} else {
				// Nothing on the target can take a branchy kernel; keep the
				// generic DSL fallback.
				if backend != "lift" {
					call.Retarget(mod, "lift")
				}
				backend = "lift"
				pc.Device = ""
			}
		}
		pc.Offload = offloadFor(inst.Idiom.Kind, tdev, anyDevice, branchy)
		pc.Backend = backend
		pc.Extern = call.Extern
		if call.Kernel != nil {
			pc.Kernel = call.Kernel.Ident
		}
		pc.Unsound = call.Unsound
		pc.RuntimeChecks = append([]string(nil), call.RuntimeChecks...)
		pc.Rendering = call.String()
		plans = append(plans, pc)
	}
	return plans
}

// MatchResult renders the task's outcome as a v1 match result under the
// given sequence number, blocking until the task completes: the detection
// payload of Result plus transformation plans and backend selection. The
// task's module is rewritten in place (idioms replaced by API calls), so
// with EmitIR the IR field is the post-transformation SSA.
func (t *Task) MatchResult(seq int, target string) MatchResult {
	out := MatchResult{DetectResult: t.Result(seq), Target: target}
	if t.pack != nil {
		out.Pack, out.PackVersion = t.pack.Name, t.pack.Version
	}
	if out.Err != "" {
		return out
	}
	// The service paths validated the target at intake; direct callers get
	// the same error in-band rather than plans silently pinned to a
	// default device.
	if _, _, err := matchTarget(target); err != nil {
		out.Err = err.Error()
		return out
	}
	out.Plans = planInstances(t.job.Mod, t.job.Res.Instances, target)
	if t.Req.Opts.EmitIR {
		out.IR = t.job.Mod.String()
	}
	return out
}

// submitMatch validates the match-specific request fields and enqueues the
// underlying detection.
func (s *Service) submitMatch(ctx context.Context, req MatchRequest) (*Task, error) {
	if _, _, err := matchTarget(req.Target); err != nil {
		return nil, err
	}
	return s.Submit(ctx, DetectRequest{
		Name: req.Name, Source: req.Source,
		Idioms: req.Idioms, Pack: req.Pack, Opts: req.Opts,
		DeadlineMs: req.DeadlineMs,
	})
}

// Match runs one end-to-end matching request: compile → detect → transform →
// backend selection. Per-request failures (compile error, cancellation)
// are reported inside the result's Err field; per-instance transformation
// failures inside the plan's Err field. The returned error covers intake
// failures only (ErrOverloaded, ErrClosed, unknown pack/idiom/target).
func (s *Service) Match(ctx context.Context, req MatchRequest) (MatchResult, error) {
	t, err := s.submitMatch(ctx, req)
	if err != nil {
		return MatchResult{}, err
	}
	return t.MatchResult(0, req.Target), nil
}

// MatchBatch runs a batch of match requests and returns their results in
// submit order (Seq = index into reqs), with the same intake semantics as
// DetectBatch.
func (s *Service) MatchBatch(ctx context.Context, reqs []MatchRequest) ([]MatchResult, error) {
	tasks, cancel, err := s.submitAllMatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	defer cancel()
	out := make([]MatchResult, len(tasks))
	for i, t := range tasks {
		out[i] = t.MatchResult(i, reqs[i].Target)
	}
	return out, nil
}

// MatchStream runs a batch of match requests and returns a channel
// delivering one result per request in completion order, Seq carrying the
// submit-order position — the same sequence semantics and byte-identity
// guarantee as DetectStream: reassembling by Seq is byte-identical to
// MatchBatch over the same requests.
func (s *Service) MatchStream(ctx context.Context, reqs []MatchRequest) (<-chan MatchResult, error) {
	tasks, cancel, err := s.submitAllMatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make(chan MatchResult, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		i, t := i, t
		wg.Add(1)
		go func() {
			defer wg.Done()
			out <- t.MatchResult(i, reqs[i].Target)
		}()
	}
	go func() {
		wg.Wait()
		cancel()
		close(out)
	}()
	return out, nil
}

// submitAllMatch mirrors submitAll for match requests.
func (s *Service) submitAllMatch(ctx context.Context, reqs []MatchRequest) ([]*Task, context.CancelFunc, error) {
	if s.queueLimit > 0 && len(reqs) > s.queueLimit {
		return nil, nil, ErrBatchTooLarge
	}
	cctx, cancel := context.WithCancel(ctx)
	tasks := make([]*Task, len(reqs))
	for i, req := range reqs {
		t, err := s.submitMatch(cctx, req)
		if err != nil {
			cancel()
			return nil, nil, err
		}
		tasks[i] = t
	}
	return tasks, cancel, nil
}

// --- idiom-pack registration surface ---

// PackInfo is the wire description of one registered idiom pack.
type PackInfo struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	// Lines is the pack's non-empty IDL line count.
	Lines  int         `json:"lines"`
	Idioms []IdiomInfo `json:"idioms"`
}

func packInfo(p *idioms.Pack) PackInfo {
	out := PackInfo{Name: p.Name, Version: p.Version, Lines: p.Lines}
	for _, idm := range p.Idioms {
		out.Idioms = append(out.Idioms, IdiomInfo{
			Name:   idm.Name,
			Class:  idm.Class.String(),
			Scheme: idm.Scheme,
			Kind:   idm.Kind,
		})
	}
	return out
}

// RegisterPack compiles an idiom pack from IDL source and installs it under
// name — live, no rebuild, no restart. Replacing an existing name is atomic:
// in-flight requests keep the snapshot they resolved at intake, and the new
// registration's solve-memo entries are keyed under a fresh pack version so
// stale cached solves can never cross over. Validation is the exact code
// path of `idlc -pack`, so CLI and HTTP report identical errors.
// With a state dir the registration is also appended to the pack log, so a
// restarted process replays it through this same compile path — packs
// survive restarts with no client re-registration.
func (s *Service) RegisterPack(name, idlSource string, tops []TopSpec) (PackInfo, error) {
	p, err := s.reg.Register(name, idlSource, tops)
	if err != nil {
		return PackInfo{}, err
	}
	if err := s.persistPack(name, idlSource, tops); err != nil {
		// The pack is live in memory; surface the durability failure so the
		// caller knows a restart would lose it.
		return PackInfo{}, err
	}
	return packInfo(p), nil
}

// Packs lists the currently registered idiom packs, sorted by name.
func (s *Service) Packs() []PackInfo {
	var out []PackInfo
	for _, p := range s.reg.Packs() {
		out = append(out, packInfo(p))
	}
	return out
}

// PackByName returns one registered pack's description.
func (s *Service) PackByName(name string) (PackInfo, bool) {
	p, ok := s.reg.Pack(name)
	if !ok {
		return PackInfo{}, false
	}
	return packInfo(p), true
}

// --- backend introspection (GET /v1/backends) ---

// BackendInfo describes one heterogeneous API profile: per device, the
// idiom kinds it implements and the fraction of peak it attains (Table 3).
type BackendInfo struct {
	Name string `json:"name"`
	// Kinds maps device name → idiom kind → efficiency.
	Kinds                   map[string]map[string]float64 `json:"kinds"`
	NeedsStraightLineKernel bool                          `json:"needs_straight_line_kernel,omitempty"`
}

// DeviceInfo describes one modelled device platform.
type DeviceInfo struct {
	Device        string  `json:"device"`
	Name          string  `json:"name"`
	ComputeGFLOPS float64 `json:"compute_gflops"`
	MemBWGBs      float64 `json:"mem_bw_gbs"`
	TransferGBs   float64 `json:"transfer_gbs"`
}

// Backends reports every API profile backend selection ranks over.
func (s *Service) Backends() []BackendInfo {
	var out []BackendInfo
	for _, a := range hetero.APIs() {
		bi := BackendInfo{
			Name:                    a.Name,
			Kinds:                   map[string]map[string]float64{},
			NeedsStraightLineKernel: a.NeedsStraightLineKernel,
		}
		for dev, kinds := range a.Eff {
			m := make(map[string]float64, len(kinds))
			for k, v := range kinds {
				m[k] = v
			}
			bi.Kinds[dev.String()] = m
		}
		out = append(out, bi)
	}
	return out
}

// DevicePlatforms reports the three modelled devices.
func (s *Service) DevicePlatforms() []DeviceInfo {
	var out []DeviceInfo
	for _, d := range hetero.Devices() {
		out = append(out, DeviceInfo{
			Device:        d.Kind.String(),
			Name:          d.Name,
			ComputeGFLOPS: d.ComputeGFLOPS,
			MemBWGBs:      d.MemBWGBs,
			TransferGBs:   d.TransferGBs,
		})
	}
	return out
}

// --- blessed in-process transformation paths ---

// Plan applies profile-driven backend selection and code replacement to an
// already-detected program: one PlanCall per finding, the program module
// rewritten in place. It is the in-process equivalent of POST /v1/match's
// transformation leg (Program paths that keep the paper's fixed backend
// mapping use Accelerate instead).
func (s *Service) Plan(ctx context.Context, p *Program, d *Detection, target string) ([]PlanCall, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, _, err := matchTarget(target); err != nil {
		return nil, err
	}
	insts := make([]detect.Instance, len(d.Instances))
	for i, inst := range d.Instances {
		insts[i] = inst.inner
	}
	return planInstances(p.Module, insts, target), nil
}

// MatchIDL compiles a user-written IDL specification and returns all
// solutions of the named constraint over the given function of p — the
// paper's §1 extensibility story as a one-shot probe. Registering the same
// IDL as a pack (RegisterPack) additionally gets claim-deduplicated
// detection, transformation and backend selection.
func (s *Service) MatchIDL(ctx context.Context, p *Program, idlSource, constraintName, function string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, err := idl.ParseProgram(idlSource)
	if err != nil {
		return nil, err
	}
	problem, err := constraint.Compile(prog, constraintName, constraint.CompileOptions{})
	if err != nil {
		return nil, err
	}
	fn := p.Module.FunctionByName(function)
	if fn == nil {
		return nil, fmt.Errorf("idiomatic: no function %q", function)
	}
	solver := constraint.NewSolver(problem, analysis.Analyze(fn))
	var out []string
	for _, sol := range solver.Solve() {
		out = append(out, sol.String())
	}
	return out, nil
}

// Accelerate replaces every detected idiom with a call to the appropriate
// heterogeneous API using the paper's fixed backend mapping (libraries for
// GEMM/SPMV, the DSL for everything else), rewriting the program in place —
// the evaluated Figure 1 pipeline. Profile-driven selection is Plan / Match.
func (s *Service) Accelerate(ctx context.Context, p *Program, d *Detection) ([]APICall, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []APICall
	for _, inst := range d.Instances {
		backend := "lift"
		switch inst.Idiom {
		case "GEMM":
			backend = "blas"
		case "SPMV":
			backend = "sparse"
		}
		call, err := transform.Apply(p.Module, inst.inner, backend)
		if err != nil {
			return nil, fmt.Errorf("idiomatic: %s in %s: %w", inst.Idiom, inst.Function, err)
		}
		out = append(out, APICall{
			Extern: call.Extern, Unsound: call.Unsound,
			RuntimeChecks: append([]string(nil), call.RuntimeChecks...),
			Rendering:     call.String(),
		})
	}
	if err := ir.VerifyModule(p.Module); err != nil {
		return nil, err
	}
	return out, nil
}
