// Gemmstyles reproduces the paper's Figure 8 and §4.3: two syntactically
// distinct C implementations of general matrix multiplication — a strided,
// alpha/beta-generalized BLAS form and a textbook triple loop accumulating
// into memory — are both discovered by the same GEMM idiom, because IDL
// matches on SSA structure rather than syntax. Both are then replaced by
// library calls and verified.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/idiomatic"
)

const source = `
void gemm_blas_style(int m, int n, int k, float* A, int lda, float* B, int ldb,
                     float* C, int ldc, float alpha, float beta) {
    for (int mm = 0; mm < m; mm++) {
        for (int nn = 0; nn < n; nn++) {
            float c = 0.0f;
            for (int i = 0; i < k; i++) {
                float a = A[mm + i * lda];
                float b = B[nn + i * ldb];
                c = c + a * b;
            }
            C[mm + nn * ldc] = C[mm + nn * ldc] * beta + alpha * c;
        }
    }
}

void gemm_textbook(float M1[16][16], float M2[16][16], float M3[16][16]) {
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            M3[i][j] = 0.0f;
            for (int k = 0; k < 16; k++) {
                M3[i][j] += M1[i][k] * M2[k][j];
            }
        }
    }
}

float both(int m, float* A, float* B, float* C, float alpha, float beta,
           float* M1, float* M2, float* M3) {
    gemm_blas_style(m, m, m, A, m, B, m, C, m, alpha, beta);
    gemm_textbook(M1, M2, M3);
    return C[0] + M3[0];
}`

func f32(name string, n int, rng *rand.Rand) *idiomatic.Buffer {
	b := idiomatic.NewBuffer(name, n*4)
	for i := 0; i < n; i++ {
		b.SetFloat32(i, float32(rng.NormFloat64()))
	}
	return b
}

func args() []idiomatic.Value {
	rng := rand.New(rand.NewSource(8))
	const m = 16
	return []idiomatic.Value{
		idiomatic.Int(m),
		idiomatic.Buf(f32("A", m*m, rng)), idiomatic.Buf(f32("B", m*m, rng)),
		idiomatic.Buf(f32("C", m*m, rng)),
		idiomatic.Float(1.5), idiomatic.Float(0.5),
		idiomatic.Buf(f32("M1", m*m, rng)), idiomatic.Buf(f32("M2", m*m, rng)),
		idiomatic.Buf(f32("M3", m*m, rng)),
	}
}

func main() {
	svc := idiomatic.Default() // blessed front door: one shared compile→detect pipeline
	seq, err := svc.Compile(context.Background(), "gemms", source)
	if err != nil {
		log.Fatal(err)
	}
	seqRun, err := seq.Run("both", args()...)
	if err != nil {
		log.Fatal(err)
	}

	acc, _ := svc.Compile(context.Background(), "gemms", source)
	det, err := acc.Detect()
	if err != nil {
		log.Fatal(err)
	}
	gemms := 0
	for _, inst := range det.Instances {
		fmt.Printf("detected %s in %s\n", inst.Idiom, inst.Function)
		if inst.Idiom == "GEMM" {
			gemms++
		}
	}
	if gemms != 2 {
		log.Fatalf("expected both GEMM styles to match, got %d", gemms)
	}
	fmt.Println("\nboth syntactic styles matched the same GEMM idiom (paper §4.3)")

	if _, err := acc.Accelerate(det); err != nil {
		log.Fatal(err)
	}
	accRun, err := acc.Run("both", args()...)
	if err != nil {
		log.Fatal(err)
	}
	if seqRun.Return.String() != accRun.Return.String() {
		log.Fatalf("results diverge: %s vs %s", seqRun.Return, accRun.Return)
	}
	fmt.Printf("library-call results identical: %s\n", accRun.Return)
}
