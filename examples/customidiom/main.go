// Customidiom demonstrates the extensibility claim of the paper's §1 end to
// end: "new idioms can be easily added thanks to the flexibility of IDL ...
// without touching the core compiler". It defines a brand-new idiom — AXPY
// (y[i] = alpha*x[i] + y[i]), the BLAS level-1 workhorse — as a few lines
// of IDL built from the library's own building blocks, registers it as an
// idiom pack against a *running* Service (no rebuild, no restart), and runs
// the full match pipeline over legacy code the shipped idiom set does not
// cover: detection, code replacement, and a ranked per-device backend
// estimate. The same registration then happens over HTTP against a live
// idiomd front door, proving the claim holds across the wire.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/idiomatic"
	"repro/internal/httpapi"
)

const source = `
void axpy(int n, double alpha, double* x, double* y) {
    for (int i = 0; i < n; i++) {
        y[i] = alpha * x[i] + y[i];
    }
}

void unrelated(double* x, int n) {
    for (int i = 1; i < n; i++) {
        x[i] = x[i-1] * 0.5;
    }
}`

// AXPY in IDL: a counted loop whose body loads x[i] and y[i], multiplies
// x[i] by a loop-invariant scalar, adds y[i] and stores back to y[i]. The
// For, VectorRead and VectorStore constraints are reused verbatim from the
// built-in library source.
const axpyIDL = `
Constraint For
( {iterator} is phi instruction and
  {iterator} is integer and
  {iter_begin} reaches phi node {iterator} from {precursor} and
  {increment} reaches phi node {iterator} from {backedge} and
  {precursor} is not the same as {backedge} and
  {increment} is add instruction and
  {iterator} is first argument of {increment} and
  {comparison} is icmp instruction and
  {iterator} is first argument of {comparison} and
  {iter_end} is second argument of {comparison} and
  {guard} is branch instruction and
  {comparison} is first argument of {guard} and
  {guard} has control flow to {begin} and
  {guard} has control flow to {successor} and
  {precursor} strictly control flow dominates {guard} and
  {begin} is not the same as {successor} and
  {begin} control flow dominates {increment} and
  {successor} does not control flow dominates {increment} and
  {guard} strictly control flow dominates {begin} and
  {successor} strictly control flow post dominates {guard})
End

Constraint VectorRead
( {value} is load instruction and
  {address} is first argument of {value} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {gep_index} is second argument of {address} and
  ( {gep_index} is the same as {idx} or
    ( {gep_index} is sext instruction and
      {idx} is first argument of {gep_index} ) ) and
  {begin} control flow dominates {value} )
End

Constraint VectorStore
( {store} is store instruction and
  {value} is first argument of {store} and
  {address} is second argument of {store} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {gep_index} is second argument of {address} and
  ( {gep_index} is the same as {idx} or
    ( {gep_index} is sext instruction and
      {idx} is first argument of {gep_index} ) ) and
  {begin} control flow dominates {store} )
End

Constraint AXPY
( inherits For and
  inherits VectorRead
    with {iterator} as {idx}
    and {begin} as {begin} at {xread} and
  inherits VectorRead
    with {iterator} as {idx}
    and {begin} as {begin} at {yread} and
  inherits VectorStore
    with {iterator} as {idx}
    and {begin} as {begin} at {out} and
  {yread.base_pointer} is the same as {out.base_pointer} and
  {xread.base_pointer} is not the same as {out.base_pointer} and
  {scaled} is fmul instruction and
  ( ( {xread.value} is first argument of {scaled} and
      {alpha} is second argument of {scaled} ) or
    ( {alpha} is first argument of {scaled} and
      {xread.value} is second argument of {scaled} ) ) and
  {alpha} is an argument and
  {out.value} is fadd instruction and
  ( {scaled} is first argument of {out.value} or
    {scaled} is second argument of {out.value} ) and
  ( {yread.value} is first argument of {out.value} or
    {yread.value} is second argument of {out.value} ) )
End`

// axpyPack declares the pack: the AXPY top constraint, transformed by
// outlining the loop body (loopbody1) and offload-modelled as a parallel
// map.
var axpyPack = []idiomatic.TopSpec{{
	Top: "AXPY", Class: "Parallel Map", Scheme: "loopbody1", Kind: "map",
}}

func main() {
	ctx := context.Background()
	svc, err := idiomatic.NewService(idiomatic.ServiceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// The built-in library does not know AXPY (it is neither a reduction
	// nor a stencil: the output array is also an input).
	builtin, err := svc.Detect(ctx, idiomatic.DetectRequest{Name: "legacy", Source: source})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built-in idiom library: %d finding(s)\n", len(builtin.Findings))

	// Register the AXPY pack against the running service — live.
	info, err := svc.RegisterPack("blas1", axpyIDL, axpyPack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered pack %s v%d (%d IDL lines)\n", info.Name, info.Version, info.Lines)

	// The full match pipeline now covers it: detection, code replacement,
	// ranked backend estimates.
	res, err := svc.Match(ctx, idiomatic.MatchRequest{
		Name: "legacy", Source: source, Pack: "blas1",
	})
	if err != nil {
		log.Fatal(err)
	}
	report("in-process", res)

	// Same thing over HTTP against a live front door: register, then match.
	// The serving process is never rebuilt or restarted.
	svc2, err := idiomatic.NewService(idiomatic.ServiceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()
	ts := httptest.NewServer(httpapi.New(svc2))
	defer ts.Close()

	reg, _ := json.Marshal(map[string]any{
		"pack": "blas1", "source": axpyIDL, "idioms": axpyPack,
	})
	if err := post(ts.URL+"/v1/idioms", reg, nil); err != nil {
		log.Fatal(err)
	}
	match, _ := json.Marshal(idiomatic.MatchRequest{
		Name: "legacy", Source: source, Pack: "blas1",
	})
	var wire struct {
		Results []idiomatic.MatchResult `json:"results"`
	}
	if err := post(ts.URL+"/v1/match", match, &wire); err != nil {
		log.Fatal(err)
	}
	report("over HTTP", wire.Results[0])
}

func report(how string, res idiomatic.MatchResult) {
	fmt.Printf("\nmatch %s (pack %s v%d): %d finding(s)\n",
		how, res.Pack, res.PackVersion, len(res.Findings))
	for i, f := range res.Findings {
		fmt.Printf("  %s (%s) in %s\n", f.Idiom, f.Class, f.Function)
		plan := res.Plans[i]
		if plan.Err != "" {
			fmt.Printf("    plan failed: %s\n", plan.Err)
			continue
		}
		fmt.Printf("    -> %s on %s (backend %s)\n", plan.Rendering, plan.Device, plan.Backend)
		for _, off := range plan.Offload {
			fmt.Printf("    %-5s:", off.Device)
			for _, c := range off.Choices {
				fmt.Printf(" %s(%.0f%%)", c.API, 100*c.Efficiency)
			}
			fmt.Println()
		}
	}
}

func post(url string, body []byte, out any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
