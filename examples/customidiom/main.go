// Customidiom demonstrates the extensibility claim of the paper's §1:
// "new idioms can be easily added thanks to the flexibility of IDL ...
// without touching the core compiler". It defines a brand-new idiom — AXPY
// (y[i] = alpha*x[i] + y[i]), the BLAS level-1 workhorse — as a few lines
// of IDL built from the library's own building blocks, then detects it in
// legacy code the shipped idiom set does not cover.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/idiomatic"
)

const source = `
void axpy(int n, double alpha, double* x, double* y) {
    for (int i = 0; i < n; i++) {
        y[i] = alpha * x[i] + y[i];
    }
}

void unrelated(double* x, int n) {
    for (int i = 1; i < n; i++) {
        x[i] = x[i-1] * 0.5;
    }
}`

// AXPY in IDL: a counted loop whose body loads x[i] and y[i], multiplies
// x[i] by a loop-invariant scalar, adds y[i] and stores back to y[i]. The
// For, VectorRead and VectorStore constraints are reused verbatim from the
// built-in library source.
const axpyIDL = `
Constraint For
( {iterator} is phi instruction and
  {iterator} is integer and
  {iter_begin} reaches phi node {iterator} from {precursor} and
  {increment} reaches phi node {iterator} from {backedge} and
  {precursor} is not the same as {backedge} and
  {increment} is add instruction and
  {iterator} is first argument of {increment} and
  {comparison} is icmp instruction and
  {iterator} is first argument of {comparison} and
  {iter_end} is second argument of {comparison} and
  {guard} is branch instruction and
  {comparison} is first argument of {guard} and
  {guard} has control flow to {begin} and
  {guard} has control flow to {successor} and
  {precursor} strictly control flow dominates {guard} and
  {begin} is not the same as {successor} and
  {begin} control flow dominates {increment} and
  {successor} does not control flow dominates {increment} and
  {guard} strictly control flow dominates {begin} and
  {successor} strictly control flow post dominates {guard})
End

Constraint VectorRead
( {value} is load instruction and
  {address} is first argument of {value} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {gep_index} is second argument of {address} and
  ( {gep_index} is the same as {idx} or
    ( {gep_index} is sext instruction and
      {idx} is first argument of {gep_index} ) ) and
  {begin} control flow dominates {value} )
End

Constraint VectorStore
( {store} is store instruction and
  {value} is first argument of {store} and
  {address} is second argument of {store} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {gep_index} is second argument of {address} and
  ( {gep_index} is the same as {idx} or
    ( {gep_index} is sext instruction and
      {idx} is first argument of {gep_index} ) ) and
  {begin} control flow dominates {store} )
End

Constraint AXPY
( inherits For and
  inherits VectorRead
    with {iterator} as {idx}
    and {begin} as {begin} at {xread} and
  inherits VectorRead
    with {iterator} as {idx}
    and {begin} as {begin} at {yread} and
  inherits VectorStore
    with {iterator} as {idx}
    and {begin} as {begin} at {out} and
  {yread.base_pointer} is the same as {out.base_pointer} and
  {xread.base_pointer} is not the same as {out.base_pointer} and
  {scaled} is fmul instruction and
  ( ( {xread.value} is first argument of {scaled} and
      {alpha} is second argument of {scaled} ) or
    ( {alpha} is first argument of {scaled} and
      {xread.value} is second argument of {scaled} ) ) and
  {alpha} is an argument and
  {out.value} is fadd instruction and
  ( {scaled} is first argument of {out.value} or
    {scaled} is second argument of {out.value} ) and
  ( {yread.value} is first argument of {out.value} or
    {yread.value} is second argument of {out.value} ) )
End`

func main() {
	prog, err := idiomatic.Default().Compile(context.Background(), "legacy", source)
	if err != nil {
		log.Fatal(err)
	}

	// The built-in library does not know AXPY (it is neither a reduction
	// nor a stencil: the output array is also an input).
	builtin, err := prog.Detect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built-in idiom library: %d instances in axpy()\n", countIn(builtin, "axpy"))

	// The user-defined idiom finds it without recompiling anything.
	sols, err := prog.Match(axpyIDL, "AXPY", "axpy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user-defined AXPY idiom: %d instance(s)\n", len(sols))
	for _, s := range sols {
		fmt.Println(s)
	}

	// And it correctly rejects the recurrence in unrelated().
	none, err := prog.Match(axpyIDL, "AXPY", "unrelated")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in unrelated(): %d instance(s) — the x[i-1] recurrence is not an AXPY\n", len(none))
}

func countIn(d *idiomatic.Detection, fn string) int {
	n := 0
	for _, inst := range d.Instances {
		if inst.Function == fn {
			n++
		}
	}
	return n
}
