// Quickstart reproduces the paper's Figures 2 and 3: a small IDL program
// describing the factorization opportunity (x*y)+(x*z), applied to a three-
// line C function. The solver finds the unique solution {sum, left_addend,
// right_addend, factor}.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/idiomatic"
)

// The C input of the paper's Figure 3.
const source = `
int example(int a, int b, int c) {
    int d = a;
    return (a*b) + (c*d);
}`

// The IDL idiom of the paper's Figure 2.
const factorizationIDL = `
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend}) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend}))
End`

func main() {
	// The process-wide Service is the blessed entry point; it owns the
	// compile→detect pipeline every Program routes through.
	prog, err := idiomatic.Default().Compile(context.Background(), "figure3", source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Resulting LLVM-style IR:")
	fmt.Println(prog.IR())

	sols, err := prog.Match(factorizationIDL, "FactorizationOpportunity", "example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Detected factorization opportunities: %d\n", len(sols))
	for _, s := range sols {
		fmt.Println(s)
	}
}
