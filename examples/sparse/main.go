// Sparse reproduces the paper's flagship scenario (§2.3, Figures 4-6): the
// performance bottleneck of the NAS CG benchmark — a CSR sparse matrix-
// vector multiplication with memory-dependent loop bounds and indirect
// accesses that defeat polyhedral tools — is detected by the SPMV idiom,
// replaced with a cuSPARSE-style library call, executed, verified against
// the sequential original, and timed under the paper's three platform
// models.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/idiomatic"
)

// The paper's Figure 4 kernel, embedded in a small driver.
const source = `
void spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}

double solve(int m, double* a, int* rowstr, int* colidx, double* z, double* r, int iters) {
    for (int it = 0; it < iters; it++) {
        spmv(m, a, rowstr, colidx, z, r);
    }
    return r[0];
}`

const rows, perRow, iters = 512, 8, 20

func inputs() []idiomatic.Value {
	rng := rand.New(rand.NewSource(42))
	nnz := rows * perRow
	a := idiomatic.NewBuffer("a", nnz*8)
	rowstr := idiomatic.NewBuffer("rowstr", (rows+1)*4)
	colidx := idiomatic.NewBuffer("colidx", nnz*4)
	z := idiomatic.NewBuffer("z", rows*8)
	r := idiomatic.NewBuffer("r", rows*8)
	for i := 0; i <= rows; i++ {
		rowstr.SetInt32(i, int32(i*perRow))
	}
	for i := 0; i < nnz; i++ {
		a.SetFloat64(i, rng.NormFloat64())
		colidx.SetInt32(i, rng.Int31n(rows))
	}
	for i := 0; i < rows; i++ {
		z.SetFloat64(i, rng.NormFloat64())
	}
	return []idiomatic.Value{
		idiomatic.Int(rows), idiomatic.Buf(a), idiomatic.Buf(rowstr),
		idiomatic.Buf(colidx), idiomatic.Buf(z), idiomatic.Buf(r),
		idiomatic.Int(iters),
	}
}

func main() {
	svc := idiomatic.Default() // blessed front door: one shared compile→detect pipeline

	// Sequential reference.
	seq, err := svc.Compile(context.Background(), "cg", source)
	if err != nil {
		log.Fatal(err)
	}
	seqArgs := inputs()
	seqRun, err := seq.Run("solve", seqArgs...)
	if err != nil {
		log.Fatal(err)
	}

	// Detect and transform a second copy.
	acc, _ := svc.Compile(context.Background(), "cg", source)
	det, err := acc.Detect()
	if err != nil {
		log.Fatal(err)
	}
	for _, inst := range det.Instances {
		fmt.Printf("detected %s (%s) in %s\n", inst.Idiom, inst.Class, inst.Function)
	}
	calls, err := acc.Accelerate(det)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range calls {
		fmt.Printf("generated call: %s (unsound static aliasing check: %v)\n",
			c.Rendering, c.Unsound)
	}

	accArgs := inputs()
	accRun, err := acc.Run("solve", accArgs...)
	if err != nil {
		log.Fatal(err)
	}
	if seqRun.Return.String() != accRun.Return.String() {
		log.Fatalf("results diverge: %s vs %s", seqRun.Return, accRun.Return)
	}
	fmt.Printf("\nresults identical (%s) across %d API calls\n", accRun.Return, accRun.Calls)

	seqTime := seqRun.SequentialSeconds()
	fmt.Printf("\nmodelled sequential time: %.3f ms\n", seqTime*1000)
	for _, dev := range []idiomatic.Device{idiomatic.CPU, idiomatic.IGPU, idiomatic.GPU} {
		if best, ok := accRun.EstimateBest(dev); ok {
			fmt.Printf("%-5s best API %-9s %8.3f ms  speedup %.2fx\n",
				dev, best.API, best.Seconds*1000, seqTime/best.Seconds)
		}
	}
}
