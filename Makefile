# Local and CI invocations are the same commands: .github/workflows/ci.yml
# runs build, vet, fmt-check, race and bench-smoke as individual steps, and
# `make ci` chains those same targets locally. Keep the two in sync when
# adding a step.

GO ?= go

.PHONY: build test race bench bench-smoke bench-json fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness (regenerates every table/figure of the paper).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# One-iteration smoke of the detection benchmarks so the harness cannot rot.
bench-smoke:
	$(GO) test -bench='BenchmarkTable1Detection|BenchmarkDetectParallel|BenchmarkPipeline' -benchtime=1x -run='^$$' .

# Perf trajectory artifact: engine scaling + streaming pipeline ns/op per
# worker count and the solver-memo hit rate, as machine-readable JSON.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr2.json

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build vet fmt-check race bench-smoke
