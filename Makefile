# Local and CI invocations are the same commands: .github/workflows/ci.yml
# runs build, vet, fmt-check, race, bench-smoke and serve-smoke as individual
# steps, and `make ci` chains those same targets locally. Keep the two in
# sync when adding a step.

GO ?= go
# PR numbers the perf-trajectory artifact (BENCH_pr$(PR).json); bump it each
# PR so one artifact per PR accumulates in the repo.
PR ?= 10

.PHONY: build test race race4 bench bench-smoke bench-json serve serve-smoke soak soak-smoke fleet-smoke fmt fmt-check vet lint lint-extra ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race detection with a multi-core scheduler: the dev container may default
# to one CPU, which serializes the worker pools and can hide races in
# branch-split scheduling (workers stealing branch tasks of each other's
# solves). CI runs this as its own job.
race4:
	GOMAXPROCS=4 $(GO) test -race ./...

# Full benchmark harness (regenerates every table/figure of the paper).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# One-iteration smoke of the detection benchmarks so the harness cannot rot.
bench-smoke:
	$(GO) test -bench='BenchmarkTable1Detection|BenchmarkDetectParallel|BenchmarkPipeline' -benchtime=1x -run='^$$' .

# Perf trajectory artifact: engine scaling + streaming pipeline + HTTP
# serving-path ns/op per worker count and the solver-memo hit rates, as
# machine-readable JSON. Pinned to a 4-way scheduler: the adaptive
# split-scheduling rows compare off/static/adaptive modes on multicore, and
# a single-CPU dev container would flatten exactly those comparisons.
bench-json:
	GOMAXPROCS=4 $(GO) run ./cmd/benchjson -pr $(PR) -out BENCH_pr$(PR).json

# Run the HTTP detection server locally.
serve:
	$(GO) run ./cmd/idiomd

# End-to-end smoke of the server: healthz, one streamed detection, statsz.
serve-smoke:
	sh scripts/serve_smoke.sh

# Full hostile-traffic soak: auth probes, weighted-fair flood, deadline
# probes, drain asserts. Native timings, tight p99 budget.
soak:
	$(GO) run ./cmd/soak

# Short -race soak for CI: the race detector inflates solve times ~10-20x,
# so the p99 noise floor is raised accordingly — the share, auth, deadline
# and drain asserts run at full strength.
soak-smoke:
	$(GO) run -race ./cmd/soak -duration 16s -p99-floor 1s

# Durable-state + fleet smoke: single-replica warm restart and pack replay,
# two replicas behind idiomfront (warm pass 2, restart-warm via the router,
# snapshot handoff), then the fairness soak driven through the front door.
fleet-smoke:
	sh scripts/fleet_smoke.sh

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Repo-invariant analyzers (internal/lint via cmd/idiomvet): map-order
# determinism, per-candidate cancel polls, fsync-before-rename, the v1 error
# envelope, and wall-clock-free solve paths. Findings print file:line plus
# the invariant's rationale; suppress a documented exception with
# `//lint:allow <analyzer> <reason>`. Then third-party analyzers
# (staticcheck, govulncheck), pinned by version and skipped gracefully when
# the module proxy is unreachable.
lint:
	$(GO) run ./cmd/idiomvet
	sh scripts/lint_extra.sh

# Just the third-party half, for CI's dedicated lint job.
lint-extra:
	sh scripts/lint_extra.sh

# race4 subsumes race locally (same suite, stronger scheduler); CI runs race
# in the main job and race4 as its own parallel job.
ci: build vet fmt-check lint race4 bench-smoke serve-smoke soak-smoke fleet-smoke
