package pipeline_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

const bpSource = `
double bpsum(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]; }
    return s;
}`

// TestSubmitOverload pins the intake backpressure contract: with MaxQueue in
// force, submissions beyond the bound fail fast with ErrOverloaded, and
// capacity frees up again as in-flight jobs finish.
func TestSubmitOverload(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{
		Detect:         detect.Options{Workers: 2, NoMemo: true},
		CompileWorkers: 1,
		MaxQueue:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Gate the compile stage so the first two jobs pin the queue open.
	release := make(chan struct{})
	gated := func() (*ir.Module, error) {
		<-release
		return cc.Compile("bp", bpSource)
	}
	j1, err := p.SubmitOpts("a", gated, pipeline.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	j2, err := p.SubmitOpts("b", gated, pipeline.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := p.SubmitOpts("c", gated, pipeline.SubmitOptions{}); !errors.Is(err, pipeline.ErrOverloaded) {
		t.Fatalf("submit 3: err = %v, want ErrOverloaded", err)
	}
	if st := p.Stats(); st.InFlight != 2 || st.MaxQueue != 2 {
		t.Fatalf("stats = %+v, want InFlight 2 / MaxQueue 2", st)
	}

	close(release)
	for _, j := range []*pipeline.Job{j1, j2} {
		if _, err := j.Wait(); err != nil {
			t.Fatalf("%s: %v", j.Name, err)
		}
	}
	// Drained: intake must accept again.
	j4, err := p.SubmitOpts("d", func() (*ir.Module, error) { return cc.Compile("bp", bpSource) }, pipeline.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	res, err := j4.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("instances = %d, want 1 (reduction)", len(res.Instances))
	}
	if st := p.Stats(); st.InFlight != 0 || st.Submitted != 3 || st.Completed != 3 {
		t.Fatalf("final stats = %+v, want 3 submitted / 3 completed / 0 in flight", st)
	}
}

// TestSubmitOptsAfterClose pins the non-panicking close contract of the
// serving path.
func TestSubmitOptsAfterClose(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{Detect: detect.Options{Workers: 1, NoMemo: true}})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.SubmitOpts("x", func() (*ir.Module, error) { return cc.Compile("bp", bpSource) },
		pipeline.SubmitOptions{}); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestSubmitCtxCancelledShedsCompile pins that a job cancelled while queued
// never runs its compile thunk and finishes with the context error.
func TestSubmitCtxCancelledShedsCompile(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{
		Detect:         detect.Options{Workers: 2, NoMemo: true},
		CompileWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Occupy the single compile worker so the cancelled job stays queued.
	release := make(chan struct{})
	blocker, err := p.SubmitOpts("blocker", func() (*ir.Module, error) {
		<-release
		return cc.Compile("bp", bpSource)
	}, pipeline.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var compiled atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	victim, err := p.SubmitOpts("victim", func() (*ir.Module, error) {
		compiled.Store(true)
		return cc.Compile("bp", bpSource)
	}, pipeline.SubmitOptions{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)

	if _, err := victim.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("victim err = %v, want context.Canceled", err)
	}
	if compiled.Load() {
		t.Error("cancelled job ran its compile thunk; queued work must be shed")
	}
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}

	// The pipeline must fully drain after shedding.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not drain: %+v", p.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
