// Package pipeline streams modules through the paper's compile → detect flow
// without the historical two-barrier shape (compile all workloads, then hand
// the whole batch to detect.Modules). A Pipeline is long-lived: sources enter
// via Submit as compile thunks, a compile worker pool fans the frontend out,
// and each compiled module feeds straight into the detection engine's shared
// solver pool (detect.Stream), so frontend and solver work overlap instead of
// barriering. Per-module results are delivered as they complete.
//
// Determinism: detection inherits detect.Stream's guarantees, so collecting
// jobs in submit order is byte-identical (instances and solver steps) to
// detect.Modules over the same batch at any worker count. Each Result's
// Elapsed is the module's true wall time, compile-start → merge-done.
package pipeline

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/ir"
)

// CompileFunc produces one module — typically a closure over cc.Compile or a
// workload's Compile method. It runs on a pipeline compile worker.
type CompileFunc func() (*ir.Module, error)

// Options configure a Pipeline.
type Options struct {
	// Engine is the detection engine to stream into; nil builds one from
	// Detect. Sharing one engine across pipelines shares its solver memo
	// accounting.
	Engine *detect.Engine
	// Detect configures the engine built when Engine is nil.
	Detect detect.Options
	// CompileWorkers bounds the frontend pool. Zero or negative means the
	// engine's worker count, mirroring the solver pool shape.
	CompileWorkers int
	// Buffer is the capacity of the Results channel (0 = unbuffered).
	Buffer int
}

// Job tracks one submitted module through the pipeline. Seq is the submit
// order; Mod, Res and Err are valid once Done is closed.
type Job struct {
	Seq  int
	Name string
	// Mod is the compiled module (nil when compilation failed).
	Mod *ir.Module
	// Res is the detection result (nil when Err is set).
	Res *detect.Result
	Err error

	compile CompileFunc
	done    chan struct{}
}

// Done is closed when the job has fully completed (or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns its result.
func (j *Job) Wait() (*detect.Result, error) {
	<-j.done
	return j.Res, j.Err
}

// Pipeline is the streaming compile→detect front door. Submit never blocks
// on pipeline work, and jobs complete independently: await an individual
// job's Done/Wait, or call Results (before submitting) and range it for
// completion-order delivery.
type Pipeline struct {
	eng    *detect.Engine
	stream *detect.Stream

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job       // submitted, awaiting a compile worker
	pending map[int]*Job // stream seq -> job awaiting detection
	nextSeq int
	closed  bool

	inflight sync.WaitGroup // submitted jobs not yet finished

	// The completion-order stream is opt-in: the dispatch queue, its
	// goroutine and the results channel exist only once Results has been
	// called, so Done/Wait-only consumers (a long-lived shared pipeline,
	// benchmarks) retain no finished jobs and leak no goroutine. Finished
	// jobs pass through the unbounded outQ so completing workers never block
	// on a slow reader.
	outMu      sync.Mutex
	outCond    *sync.Cond
	outActive  bool
	outQ       []*Job
	outDone    bool
	results    chan *Job
	resultsCap int
}

// New builds and starts a pipeline.
func New(o Options) (*Pipeline, error) {
	eng := o.Engine
	if eng == nil {
		var err error
		eng, err = detect.NewEngine(o.Detect)
		if err != nil {
			return nil, err
		}
	}
	buffer := o.Buffer
	if buffer < 0 {
		buffer = 0
	}
	p := &Pipeline{
		eng:        eng,
		stream:     eng.Stream(buffer),
		pending:    map[int]*Job{},
		resultsCap: buffer,
	}
	p.cond = sync.NewCond(&p.mu)
	p.outCond = sync.NewCond(&p.outMu)
	workers := o.CompileWorkers
	if workers <= 0 {
		workers = eng.Workers()
	}
	for w := 0; w < workers; w++ {
		go p.compileWorker()
	}
	go p.collector()
	return p, nil
}

// Engine exposes the detection engine (for memo statistics and sharing).
func (p *Pipeline) Engine() *detect.Engine { return p.eng }

// Submit enqueues one compile thunk and returns its Job immediately.
func (p *Pipeline) Submit(name string, compile CompileFunc) *Job {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("pipeline: Submit after Close")
	}
	job := &Job{Seq: p.nextSeq, Name: name, compile: compile, done: make(chan struct{})}
	p.nextSeq++
	p.inflight.Add(1)
	p.queue = append(p.queue, job)
	// Broadcast, not Signal: the collector waits on the same cond (for
	// pending registration), so a single wakeup could land there and strand
	// the queued job.
	p.cond.Broadcast()
	p.mu.Unlock()
	return job
}

// SubmitModule enqueues an already-compiled module (the compile stage is a
// no-op; detection still streams).
func (p *Pipeline) SubmitModule(name string, mod *ir.Module) *Job {
	return p.Submit(name, func() (*ir.Module, error) { return mod, nil })
}

// Results activates the completion-order stream and returns its channel. It
// is forward-only: jobs that finished before the first Results call are not
// replayed (nothing is buffered for a stream nobody asked for), so call
// Results before submitting to observe every job. Per-job Done/Wait works
// regardless. The channel closes after Close once all in-flight jobs have
// drained; repeated calls return the same channel.
func (p *Pipeline) Results() <-chan *Job {
	p.outMu.Lock()
	defer p.outMu.Unlock()
	if !p.outActive {
		p.outActive = true
		p.results = make(chan *Job, p.resultsCap)
		go p.dispatcher()
	}
	return p.results
}

// Close stops intake; in-flight jobs still complete and Results closes once
// they drain. Close does not block and is idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	go func() {
		p.inflight.Wait()
		p.stream.Close()
	}()
}

// Collect waits for the given jobs and returns their results in the given
// (typically submit) order, failing on the first job error.
func Collect(jobs []*Job) ([]*detect.Result, error) {
	out := make([]*detect.Result, len(jobs))
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", j.Name, err)
		}
		out[i] = res
	}
	return out, nil
}

func (p *Pipeline) compileWorker() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		start := time.Now()
		mod, err := job.compile()
		if err != nil {
			job.Err = err
			p.finish(job)
			continue
		}
		job.Mod = mod
		// Register the job under the stream sequence before releasing the
		// lock so the collector can always resolve an arriving result.
		p.mu.Lock()
		seq := p.stream.SubmitAt(mod, start)
		p.pending[seq] = job
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// collector resolves stream results back to their jobs. It owns the only
// read side of the stream, so detection orchestrators never stall on an
// unread Results channel.
func (p *Pipeline) collector() {
	for sr := range p.stream.Results() {
		p.mu.Lock()
		job := p.pending[sr.Seq]
		for job == nil {
			p.cond.Wait()
			job = p.pending[sr.Seq]
		}
		delete(p.pending, sr.Seq)
		p.mu.Unlock()
		job.Res, job.Err = sr.Result, sr.Err
		p.finish(job)
	}
	p.outMu.Lock()
	p.outDone = true
	p.outCond.Broadcast()
	p.outMu.Unlock()
}

func (p *Pipeline) finish(job *Job) {
	close(job.done)
	p.outMu.Lock()
	if p.outActive {
		p.outQ = append(p.outQ, job)
		p.outCond.Broadcast()
	}
	p.outMu.Unlock()
	p.inflight.Done()
}

func (p *Pipeline) dispatcher() {
	for {
		p.outMu.Lock()
		for len(p.outQ) == 0 && !p.outDone {
			p.outCond.Wait()
		}
		if len(p.outQ) == 0 {
			p.outMu.Unlock()
			close(p.results)
			return
		}
		job := p.outQ[0]
		p.outQ = p.outQ[1:]
		p.outMu.Unlock()
		p.results <- job
	}
}
