// Package pipeline streams modules through the paper's compile → detect flow
// without the historical two-barrier shape (compile all workloads, then hand
// the whole batch to detect.Modules). A Pipeline is long-lived: sources enter
// via Submit as compile thunks, a compile worker pool fans the frontend out,
// and each compiled module feeds straight into the detection engine's shared
// solver pool (detect.Stream), so frontend and solver work overlap instead of
// barriering. Per-module results are delivered as they complete.
//
// Determinism: detection inherits detect.Stream's guarantees, so collecting
// jobs in submit order is byte-identical (instances and solver steps) to
// detect.Modules over the same batch at any worker count. Each Result's
// Elapsed is the module's true wall time, compile-start → merge-done.
//
// Serving controls: SubmitOpts threads a context through the whole
// compile→solve path (cancelled jobs shed their remaining work and finish
// with the context error), Options.MaxQueue bounds intake (ErrOverloaded),
// and Stats exposes queue depth and pool utilization — the hooks the
// idiomatic.Service front door builds on.
//
// Multi-tenant fairness: SubmitOptions.Client names the tenant, and both
// contended stages — compile intake and solver admission (Options.
// DetectSlots) — are served by weighted deficit round-robin over per-client
// queues, so one client's backlog cannot delay another tenant's modules.
// Named clients are additionally subject to per-client in-flight bounds
// (Options.ClientQueue) and token buckets (Options.ClientRate); the
// anonymous tier is exempt and so preserves the single-tenant contract
// exactly.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/ir"
)

// ErrClosed is returned by SubmitOpts after Close: the pipeline no longer
// accepts work.
var ErrClosed = errors.New("pipeline: closed")

// ErrOverloaded is returned by SubmitOpts when Options.MaxQueue in-flight
// jobs already occupy the pipeline — the intake backpressure signal a
// serving front door translates into HTTP 429.
var ErrOverloaded = errors.New("pipeline: overloaded (submit queue full)")

// CompileFunc produces one module — typically a closure over cc.Compile or a
// workload's Compile method. It runs on a pipeline compile worker.
type CompileFunc func() (*ir.Module, error)

// Options configure a Pipeline.
type Options struct {
	// Engine is the detection engine to stream into; nil builds one from
	// Detect. Sharing one engine across pipelines shares its solver memo
	// accounting.
	Engine *detect.Engine
	// Detect configures the engine built when Engine is nil.
	Detect detect.Options
	// CompileWorkers bounds the frontend pool. Zero or negative means the
	// engine's worker count, mirroring the solver pool shape.
	CompileWorkers int
	// Buffer is the capacity of the Results channel (0 = unbuffered).
	Buffer int
	// MaxQueue bounds the number of in-flight jobs (submitted, not yet
	// finished). Submissions beyond the bound fail fast with ErrOverloaded
	// instead of queueing without limit. Zero or negative means unbounded.
	MaxQueue int
	// ClientQueue bounds each named client's in-flight jobs, independent of
	// the global MaxQueue. A named client at its bound gets a per-client
	// ErrOverloaded; the anonymous tier is exempt. Zero or negative means
	// unbounded.
	ClientQueue int
	// ClientRate, when positive, enables a token bucket per named client:
	// ClientRate*weight submissions per second sustained, bursting to
	// ClientBurst. Submissions on an empty bucket fail fast with a
	// *RateLimitedError. The anonymous tier is exempt.
	ClientRate float64
	// ClientBurst is the token-bucket capacity (defaults to max(1,
	// ClientRate) when zero).
	ClientBurst float64
	// DetectSlots bounds how many compiled modules occupy the solver stream
	// at once; further modules wait in per-client ready queues and enter via
	// weighted-fair dequeue as slots free, so fairness decisions happen at
	// the solver's door on every completion. Zero means 2x the solver worker
	// count; negative means unbounded (the pre-fairness behavior of handing
	// every compiled module to the stream immediately).
	DetectSlots int
}

// SubmitOptions carry the per-job controls of SubmitOpts.
type SubmitOptions struct {
	// Ctx, when non-nil, cancels the job: a job still queued skips its
	// compile, and one already solving aborts mid-search (see
	// detect.Submission). The job then finishes with Ctx.Err().
	Ctx context.Context
	// Idioms restricts this job's detection to the named idioms, with the
	// same order-is-precedence semantics as detect.Options.Idioms. Nil means
	// the engine's full roster.
	Idioms []string
	// Roster, when non-nil, overrides Idioms with an explicit resolved
	// (idiom, problem) roster — the per-request idiom-pack path (see
	// detect.Submission.Roster).
	Roster []detect.Resolved
	// Client names the tenant submitting the job. Named clients compete for
	// compile workers and solver slots under deficit round-robin, weighted by
	// Weight, and are subject to Options.ClientQueue / ClientRate. The empty
	// name is the anonymous tier: it rides the same rings but is exempt from
	// per-client caps and buckets.
	Client string
	// Weight is the client's fair-share weight (jobs served per DRR round
	// while backlogged). Zero or negative means 1.
	Weight int
	// Explain requests near-miss diagnostics on the job's Result (see
	// detect.Submission.Explain).
	Explain bool
}

// Job tracks one submitted module through the pipeline. Seq is the submit
// order; Mod, Res and Err are valid once Done is closed.
type Job struct {
	Seq  int
	Name string
	// Mod is the compiled module (nil when compilation failed).
	Mod *ir.Module
	// Res is the detection result (nil when Err is set).
	Res *detect.Result
	Err error

	compile CompileFunc
	ctx     context.Context // nil = never cancelled
	idioms  []string
	roster  []detect.Resolved
	explain bool
	cs      *clientState
	start   time.Time // compile start; anchors Result.Elapsed
	shed    bool      // cancelled in queue / rejected, not served
	done    chan struct{}
}

// Done is closed when the job has fully completed (or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns its result.
func (j *Job) Wait() (*detect.Result, error) {
	<-j.done
	return j.Res, j.Err
}

// Pipeline is the streaming compile→detect front door. Submit never blocks
// on pipeline work, and jobs complete independently: await an individual
// job's Done/Wait, or call Results (before submitting) and range it for
// completion-order delivery.
type Pipeline struct {
	eng            *detect.Engine
	stream         *detect.Stream
	compileWorkers int
	maxQueue       int

	mu      sync.Mutex
	cond    *sync.Cond
	pending map[int]*Job // stream seq -> job awaiting detection
	nextSeq int
	closed  bool

	// Weighted-fair state: per-client intake and ready queues served by two
	// independent deficit-round-robin rings (compile pick, solver dispatch),
	// plus the solver slot gate. All guarded by mu.
	clients     map[string]*clientState
	clientOrder []*clientState // first-seen order, the DRR ring
	intakeCur   int            // DRR cursor over compile intake
	readyCur    int            // DRR cursor over solver dispatch
	intakeCount int            // total jobs across all intake queues
	readyCount  int            // total jobs across all ready queues
	slotsUsed   int            // modules currently occupying the stream
	detectSlots int            // resolved slot bound (<0 = unbounded)
	clientQueue int
	clientRate  float64
	clientBurst float64

	inflight             sync.WaitGroup // submitted jobs not yet finished
	submitted, completed atomic.Int64

	// The completion-order stream is opt-in: the dispatch queue, its
	// goroutine and the results channel exist only once Results has been
	// called, so Done/Wait-only consumers (a long-lived shared pipeline,
	// benchmarks) retain no finished jobs and leak no goroutine. Finished
	// jobs pass through the unbounded outQ so completing workers never block
	// on a slow reader.
	outMu      sync.Mutex
	outCond    *sync.Cond
	outActive  bool
	outQ       []*Job
	outDone    bool
	results    chan *Job
	resultsCap int
}

// New builds and starts a pipeline.
func New(o Options) (*Pipeline, error) {
	eng := o.Engine
	if eng == nil {
		var err error
		eng, err = detect.NewEngine(o.Detect)
		if err != nil {
			return nil, err
		}
	}
	buffer := o.Buffer
	if buffer < 0 {
		buffer = 0
	}
	slots := o.DetectSlots
	if slots == 0 {
		slots = 2 * eng.Workers()
	}
	burst := o.ClientBurst
	if o.ClientRate > 0 && burst <= 0 {
		burst = o.ClientRate
		if burst < 1 {
			burst = 1
		}
	}
	p := &Pipeline{
		eng:         eng,
		stream:      eng.Stream(buffer),
		maxQueue:    o.MaxQueue,
		pending:     map[int]*Job{},
		resultsCap:  buffer,
		clients:     map[string]*clientState{},
		detectSlots: slots,
		clientQueue: o.ClientQueue,
		clientRate:  o.ClientRate,
		clientBurst: burst,
	}
	p.cond = sync.NewCond(&p.mu)
	p.outCond = sync.NewCond(&p.outMu)
	workers := o.CompileWorkers
	if workers <= 0 {
		workers = eng.Workers()
	}
	p.compileWorkers = workers
	for w := 0; w < workers; w++ {
		go p.compileWorker()
	}
	go p.collector()
	return p, nil
}

// Engine exposes the detection engine (for memo statistics and sharing).
func (p *Pipeline) Engine() *detect.Engine { return p.eng }

// Submit enqueues one compile thunk and returns its Job immediately. It
// panics after Close (legacy contract); bounded or cancellable intake goes
// through SubmitOpts.
func (p *Pipeline) Submit(name string, compile CompileFunc) *Job {
	job, err := p.SubmitOpts(name, compile, SubmitOptions{})
	if err != nil {
		panic(err.Error()) // errors already carry the "pipeline:" prefix
	}
	return job
}

// SubmitOpts enqueues one compile thunk with per-job controls and returns
// its Job immediately. It fails fast with ErrClosed after Close, with
// ErrOverloaded when Options.MaxQueue jobs are already in flight (or the
// named client sits at its Options.ClientQueue bound), and with a
// *RateLimitedError when the named client's token bucket is empty; it never
// blocks on pipeline work.
func (p *Pipeline) SubmitOpts(name string, compile CompileFunc, so SubmitOptions) (*Job, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	cs := p.clientFor(so.Client, so.Weight)
	if p.maxQueue > 0 && p.submitted.Load()-p.completed.Load() >= int64(p.maxQueue) {
		cs.shed.Add(1)
		p.mu.Unlock()
		return nil, ErrOverloaded
	}
	// Per-client admission applies to named tenants only: the anonymous tier
	// keeps the exact pre-auth intake contract.
	if cs.name != "" {
		if p.clientQueue > 0 && cs.inFlight.Load() >= int64(p.clientQueue) {
			cs.shed.Add(1)
			p.mu.Unlock()
			return nil, fmt.Errorf("pipeline: client %q at queue bound %d: %w", cs.name, p.clientQueue, ErrOverloaded)
		}
		if p.clientRate > 0 {
			if ok, retry := cs.takeToken(p.clientRate, p.clientBurst, time.Now()); !ok {
				cs.shed.Add(1)
				p.mu.Unlock()
				return nil, &RateLimitedError{Client: cs.name, RetryAfter: retry}
			}
		}
	}
	job := &Job{
		Seq: p.nextSeq, Name: name,
		compile: compile, ctx: so.Ctx, idioms: so.Idioms, roster: so.Roster,
		explain: so.Explain,
		cs:      cs,
		done:    make(chan struct{}),
	}
	p.nextSeq++
	p.submitted.Add(1)
	p.inflight.Add(1)
	cs.inFlight.Add(1)
	cs.intake = append(cs.intake, job)
	p.intakeCount++
	// Broadcast, not Signal: the collector waits on the same cond (for
	// pending registration), so a single wakeup could land there and strand
	// the queued job.
	p.cond.Broadcast()
	p.mu.Unlock()
	return job, nil
}

// SubmitModule enqueues an already-compiled module (the compile stage is a
// no-op; detection still streams).
func (p *Pipeline) SubmitModule(name string, mod *ir.Module) *Job {
	return p.Submit(name, func() (*ir.Module, error) { return mod, nil })
}

// Stats is a point-in-time snapshot of pipeline load, consumed by the
// serving layer's /statsz endpoint.
type Stats struct {
	// Submitted and Completed are cumulative job counts.
	Submitted, Completed int64
	// InFlight is Submitted - Completed: jobs compiling, solving, or queued.
	InFlight int
	// CompileQueue is the number of jobs waiting for a compile worker.
	CompileQueue int
	// CompileWorkers and SolveWorkers are the two pool sizes; SolveActive is
	// how many solver-pool workers are executing a task right now.
	CompileWorkers, SolveWorkers, SolveActive int
	// SolveSplit is the engine's intra-solve branch fan-out cap (1 =
	// sequential searches); SolveBranchActive is how many branch subtasks of
	// split solves are executing right now. ResplitDepth is the configured
	// adaptive re-split budget below the root fork (0 = never re-split).
	SolveSplit, SolveBranchActive, ResplitDepth int
	// Split-decision counters (cumulative): solves that actually forked at a
	// split variable, adaptive branch re-splits across them, and splittable
	// solves kept sequential because the memo cost table predicted them
	// cheaper than fork overhead. SplitVars is the chosen-variable
	// histogram: forked solves per split variable.
	SplitDecisions    int64
	SplitResplits     int64
	SplitSkippedCheap int64
	SplitVars         map[string]int64
	// MaxQueue is the configured intake bound (0 = unbounded).
	MaxQueue int
	// ReadyQueue is the number of compiled modules waiting for a solver slot
	// across all clients; DetectSlots is the configured slot bound (-1 =
	// unbounded) and DetectActive how many slots are occupied right now.
	ReadyQueue, DetectSlots, DetectActive int
	// PruneMode is the engine's similarity-prescreen mode ("off", "reorder",
	// "on"). PruneSkipped counts solves skipped as provably unmatchable,
	// PruneReordered counts solves displaced from natural order by the
	// scheduler, and PrescreenNs is cumulative time spent extracting features
	// and scoring — the overhead the prescreen must keep negligible.
	PruneMode      string
	PruneSkipped   int64
	PruneReordered int64
	PrescreenNs    int64
	// Clients holds one row per tenant the pipeline has seen, in first-seen
	// order (the anonymous tier appears as the empty name).
	Clients []ClientStats
}

// Stats reports current pipeline load.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	queued := p.intakeCount
	ready := p.readyCount
	slots := p.slotsUsed
	rows := make([]ClientStats, 0, len(p.clientOrder))
	for _, cs := range p.clientOrder {
		rows = append(rows, ClientStats{
			Name:        cs.name,
			Weight:      cs.weight,
			InFlight:    cs.inFlight.Load(),
			IntakeQueue: len(cs.intake),
			ReadyQueue:  len(cs.ready),
			Served:      cs.served.Load(),
			Shed:        cs.shed.Load(),
		})
	}
	p.mu.Unlock()
	sub, comp := p.submitted.Load(), p.completed.Load()
	skipped, reordered, prescreenNs := p.eng.PruneStats()
	decisions, resplits, skippedCheap := p.eng.SplitStats()
	return Stats{
		Submitted:         sub,
		Completed:         comp,
		InFlight:          int(sub - comp),
		CompileQueue:      queued,
		CompileWorkers:    p.compileWorkers,
		SolveWorkers:      p.eng.Workers(),
		SolveActive:       p.stream.Active(),
		SolveSplit:        p.eng.SolveSplit(),
		SolveBranchActive: p.stream.ActiveBranches(),
		ResplitDepth:      p.eng.ResplitDepth(),
		SplitDecisions:    decisions,
		SplitResplits:     resplits,
		SplitSkippedCheap: skippedCheap,
		SplitVars:         p.eng.SplitVars(),
		MaxQueue:          p.maxQueue,
		ReadyQueue:        ready,
		DetectSlots:       p.detectSlots,
		DetectActive:      slots,
		PruneMode:         p.eng.Prune().String(),
		PruneSkipped:      skipped,
		PruneReordered:    reordered,
		PrescreenNs:       prescreenNs,
		Clients:           rows,
	}
}

// Results activates the completion-order stream and returns its channel. It
// is forward-only: jobs that finished before the first Results call are not
// replayed (nothing is buffered for a stream nobody asked for), so call
// Results before submitting to observe every job. Per-job Done/Wait works
// regardless. The channel closes after Close once all in-flight jobs have
// drained; repeated calls return the same channel.
func (p *Pipeline) Results() <-chan *Job {
	p.outMu.Lock()
	defer p.outMu.Unlock()
	if !p.outActive {
		p.outActive = true
		p.results = make(chan *Job, p.resultsCap)
		go p.dispatcher()
	}
	return p.results
}

// Close stops intake; in-flight jobs still complete and Results closes once
// they drain. Close does not block and is idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	go func() {
		p.inflight.Wait()
		p.stream.Close()
	}()
}

// Collect waits for the given jobs and returns their results in the given
// (typically submit) order, failing on the first job error.
func Collect(jobs []*Job) ([]*detect.Result, error) {
	out := make([]*detect.Result, len(jobs))
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", j.Name, err)
		}
		out[i] = res
	}
	return out, nil
}

func (p *Pipeline) compileWorker() {
	for {
		p.mu.Lock()
		for p.intakeCount == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.intakeCount == 0 {
			p.mu.Unlock()
			return
		}
		job := drrPick(p.clientOrder, &p.intakeCur, intakeQ, intakeDef)
		p.intakeCount--
		p.mu.Unlock()

		// A job cancelled while waiting for a worker sheds its compile (and
		// detection) entirely.
		if job.ctx != nil {
			if err := job.ctx.Err(); err != nil {
				job.Err = err
				job.shed = true
				p.finish(job)
				continue
			}
		}
		job.start = time.Now()
		mod, err := job.compile()
		if err != nil {
			job.Err = err
			p.finish(job)
			continue
		}
		job.Mod = mod
		// Compiled modules queue per client for a solver slot; dispatch moves
		// them into the stream under weighted-fair order as slots allow.
		p.mu.Lock()
		job.cs.ready = append(job.cs.ready, job)
		p.readyCount++
		p.dispatchLocked()
		p.mu.Unlock()
	}
}

// dispatchLocked moves compiled jobs from the per-client ready queues into
// the solver stream while detect slots remain, picking clients by deficit
// round-robin — the fairness decision happens at the solver's door on every
// admission. Jobs cancelled while waiting are shed without consuming a slot.
// Callers hold p.mu.
func (p *Pipeline) dispatchLocked() {
	for p.readyCount > 0 && (p.detectSlots < 0 || p.slotsUsed < p.detectSlots) {
		job := drrPick(p.clientOrder, &p.readyCur, readyQ, readyDef)
		if job == nil {
			break
		}
		p.readyCount--
		if job.ctx != nil {
			if err := job.ctx.Err(); err != nil {
				job.Err = err
				job.shed = true
				p.finish(job)
				continue
			}
		}
		p.slotsUsed++
		// Register the job under the stream sequence before anyone else can
		// observe the result, so the collector can always resolve it.
		seq := p.stream.SubmitJob(detect.Submission{
			Mod: job.Mod, Start: job.start, Ctx: job.ctx, Idioms: job.idioms, Roster: job.roster,
			Client: job.cs.name, Explain: job.explain,
		})
		p.pending[seq] = job
	}
	// The collector waits on the same cond for pending registration.
	p.cond.Broadcast()
}

// collector resolves stream results back to their jobs. It owns the only
// read side of the stream, so detection orchestrators never stall on an
// unread Results channel.
func (p *Pipeline) collector() {
	for sr := range p.stream.Results() {
		p.mu.Lock()
		job := p.pending[sr.Seq]
		for job == nil {
			p.cond.Wait()
			job = p.pending[sr.Seq]
		}
		delete(p.pending, sr.Seq)
		// A completion frees a detect slot: re-run dispatch so the next
		// fair-share pick enters the stream immediately.
		p.slotsUsed--
		p.dispatchLocked()
		p.mu.Unlock()
		job.Res, job.Err = sr.Result, sr.Err
		p.finish(job)
	}
	p.outMu.Lock()
	p.outDone = true
	p.outCond.Broadcast()
	p.outMu.Unlock()
}

func (p *Pipeline) finish(job *Job) {
	p.completed.Add(1)
	job.cs.inFlight.Add(-1)
	if job.shed {
		job.cs.shed.Add(1)
	} else {
		job.cs.served.Add(1)
	}
	close(job.done)
	p.outMu.Lock()
	if p.outActive {
		p.outQ = append(p.outQ, job)
		p.outCond.Broadcast()
	}
	p.outMu.Unlock()
	p.inflight.Done()
}

func (p *Pipeline) dispatcher() {
	for {
		p.outMu.Lock()
		for len(p.outQ) == 0 && !p.outDone {
			p.outCond.Wait()
		}
		if len(p.outQ) == 0 {
			p.outMu.Unlock()
			close(p.results)
			return
		}
		job := p.outQ[0]
		p.outQ = p.outQ[1:]
		p.outMu.Unlock()
		p.results <- job
	}
}
