// Package pipeline streams modules through the paper's compile → detect flow
// without the historical two-barrier shape (compile all workloads, then hand
// the whole batch to detect.Modules). A Pipeline is long-lived: sources enter
// via Submit as compile thunks, a compile worker pool fans the frontend out,
// and each compiled module feeds straight into the detection engine's shared
// solver pool (detect.Stream), so frontend and solver work overlap instead of
// barriering. Per-module results are delivered as they complete.
//
// Determinism: detection inherits detect.Stream's guarantees, so collecting
// jobs in submit order is byte-identical (instances and solver steps) to
// detect.Modules over the same batch at any worker count. Each Result's
// Elapsed is the module's true wall time, compile-start → merge-done.
//
// Serving controls: SubmitOpts threads a context through the whole
// compile→solve path (cancelled jobs shed their remaining work and finish
// with the context error), Options.MaxQueue bounds intake (ErrOverloaded),
// and Stats exposes queue depth and pool utilization — the hooks the
// idiomatic.Service front door builds on.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/ir"
)

// ErrClosed is returned by SubmitOpts after Close: the pipeline no longer
// accepts work.
var ErrClosed = errors.New("pipeline: closed")

// ErrOverloaded is returned by SubmitOpts when Options.MaxQueue in-flight
// jobs already occupy the pipeline — the intake backpressure signal a
// serving front door translates into HTTP 429.
var ErrOverloaded = errors.New("pipeline: overloaded (submit queue full)")

// CompileFunc produces one module — typically a closure over cc.Compile or a
// workload's Compile method. It runs on a pipeline compile worker.
type CompileFunc func() (*ir.Module, error)

// Options configure a Pipeline.
type Options struct {
	// Engine is the detection engine to stream into; nil builds one from
	// Detect. Sharing one engine across pipelines shares its solver memo
	// accounting.
	Engine *detect.Engine
	// Detect configures the engine built when Engine is nil.
	Detect detect.Options
	// CompileWorkers bounds the frontend pool. Zero or negative means the
	// engine's worker count, mirroring the solver pool shape.
	CompileWorkers int
	// Buffer is the capacity of the Results channel (0 = unbuffered).
	Buffer int
	// MaxQueue bounds the number of in-flight jobs (submitted, not yet
	// finished). Submissions beyond the bound fail fast with ErrOverloaded
	// instead of queueing without limit. Zero or negative means unbounded.
	MaxQueue int
}

// SubmitOptions carry the per-job controls of SubmitOpts.
type SubmitOptions struct {
	// Ctx, when non-nil, cancels the job: a job still queued skips its
	// compile, and one already solving aborts mid-search (see
	// detect.Submission). The job then finishes with Ctx.Err().
	Ctx context.Context
	// Idioms restricts this job's detection to the named idioms, with the
	// same order-is-precedence semantics as detect.Options.Idioms. Nil means
	// the engine's full roster.
	Idioms []string
	// Roster, when non-nil, overrides Idioms with an explicit resolved
	// (idiom, problem) roster — the per-request idiom-pack path (see
	// detect.Submission.Roster).
	Roster []detect.Resolved
}

// Job tracks one submitted module through the pipeline. Seq is the submit
// order; Mod, Res and Err are valid once Done is closed.
type Job struct {
	Seq  int
	Name string
	// Mod is the compiled module (nil when compilation failed).
	Mod *ir.Module
	// Res is the detection result (nil when Err is set).
	Res *detect.Result
	Err error

	compile CompileFunc
	ctx     context.Context // nil = never cancelled
	idioms  []string
	roster  []detect.Resolved
	done    chan struct{}
}

// Done is closed when the job has fully completed (or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns its result.
func (j *Job) Wait() (*detect.Result, error) {
	<-j.done
	return j.Res, j.Err
}

// Pipeline is the streaming compile→detect front door. Submit never blocks
// on pipeline work, and jobs complete independently: await an individual
// job's Done/Wait, or call Results (before submitting) and range it for
// completion-order delivery.
type Pipeline struct {
	eng            *detect.Engine
	stream         *detect.Stream
	compileWorkers int
	maxQueue       int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job       // submitted, awaiting a compile worker
	pending map[int]*Job // stream seq -> job awaiting detection
	nextSeq int
	closed  bool

	inflight             sync.WaitGroup // submitted jobs not yet finished
	submitted, completed atomic.Int64

	// The completion-order stream is opt-in: the dispatch queue, its
	// goroutine and the results channel exist only once Results has been
	// called, so Done/Wait-only consumers (a long-lived shared pipeline,
	// benchmarks) retain no finished jobs and leak no goroutine. Finished
	// jobs pass through the unbounded outQ so completing workers never block
	// on a slow reader.
	outMu      sync.Mutex
	outCond    *sync.Cond
	outActive  bool
	outQ       []*Job
	outDone    bool
	results    chan *Job
	resultsCap int
}

// New builds and starts a pipeline.
func New(o Options) (*Pipeline, error) {
	eng := o.Engine
	if eng == nil {
		var err error
		eng, err = detect.NewEngine(o.Detect)
		if err != nil {
			return nil, err
		}
	}
	buffer := o.Buffer
	if buffer < 0 {
		buffer = 0
	}
	p := &Pipeline{
		eng:        eng,
		stream:     eng.Stream(buffer),
		maxQueue:   o.MaxQueue,
		pending:    map[int]*Job{},
		resultsCap: buffer,
	}
	p.cond = sync.NewCond(&p.mu)
	p.outCond = sync.NewCond(&p.outMu)
	workers := o.CompileWorkers
	if workers <= 0 {
		workers = eng.Workers()
	}
	p.compileWorkers = workers
	for w := 0; w < workers; w++ {
		go p.compileWorker()
	}
	go p.collector()
	return p, nil
}

// Engine exposes the detection engine (for memo statistics and sharing).
func (p *Pipeline) Engine() *detect.Engine { return p.eng }

// Submit enqueues one compile thunk and returns its Job immediately. It
// panics after Close (legacy contract); bounded or cancellable intake goes
// through SubmitOpts.
func (p *Pipeline) Submit(name string, compile CompileFunc) *Job {
	job, err := p.SubmitOpts(name, compile, SubmitOptions{})
	if err != nil {
		panic(err.Error()) // errors already carry the "pipeline:" prefix
	}
	return job
}

// SubmitOpts enqueues one compile thunk with per-job controls and returns
// its Job immediately. It fails fast with ErrClosed after Close and with
// ErrOverloaded when Options.MaxQueue jobs are already in flight; it never
// blocks on pipeline work.
func (p *Pipeline) SubmitOpts(name string, compile CompileFunc, so SubmitOptions) (*Job, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if p.maxQueue > 0 && p.submitted.Load()-p.completed.Load() >= int64(p.maxQueue) {
		p.mu.Unlock()
		return nil, ErrOverloaded
	}
	job := &Job{
		Seq: p.nextSeq, Name: name,
		compile: compile, ctx: so.Ctx, idioms: so.Idioms, roster: so.Roster,
		done: make(chan struct{}),
	}
	p.nextSeq++
	p.submitted.Add(1)
	p.inflight.Add(1)
	p.queue = append(p.queue, job)
	// Broadcast, not Signal: the collector waits on the same cond (for
	// pending registration), so a single wakeup could land there and strand
	// the queued job.
	p.cond.Broadcast()
	p.mu.Unlock()
	return job, nil
}

// SubmitModule enqueues an already-compiled module (the compile stage is a
// no-op; detection still streams).
func (p *Pipeline) SubmitModule(name string, mod *ir.Module) *Job {
	return p.Submit(name, func() (*ir.Module, error) { return mod, nil })
}

// Stats is a point-in-time snapshot of pipeline load, consumed by the
// serving layer's /statsz endpoint.
type Stats struct {
	// Submitted and Completed are cumulative job counts.
	Submitted, Completed int64
	// InFlight is Submitted - Completed: jobs compiling, solving, or queued.
	InFlight int
	// CompileQueue is the number of jobs waiting for a compile worker.
	CompileQueue int
	// CompileWorkers and SolveWorkers are the two pool sizes; SolveActive is
	// how many solver-pool workers are executing a task right now.
	CompileWorkers, SolveWorkers, SolveActive int
	// SolveSplit is the engine's intra-solve branch fan-out cap (1 =
	// sequential searches); SolveBranchActive is how many branch subtasks of
	// split solves are executing right now.
	SolveSplit, SolveBranchActive int
	// MaxQueue is the configured intake bound (0 = unbounded).
	MaxQueue int
}

// Stats reports current pipeline load.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	queued := len(p.queue)
	p.mu.Unlock()
	sub, comp := p.submitted.Load(), p.completed.Load()
	return Stats{
		Submitted:         sub,
		Completed:         comp,
		InFlight:          int(sub - comp),
		CompileQueue:      queued,
		CompileWorkers:    p.compileWorkers,
		SolveWorkers:      p.eng.Workers(),
		SolveActive:       p.stream.Active(),
		SolveSplit:        p.eng.SolveSplit(),
		SolveBranchActive: p.stream.ActiveBranches(),
		MaxQueue:          p.maxQueue,
	}
}

// Results activates the completion-order stream and returns its channel. It
// is forward-only: jobs that finished before the first Results call are not
// replayed (nothing is buffered for a stream nobody asked for), so call
// Results before submitting to observe every job. Per-job Done/Wait works
// regardless. The channel closes after Close once all in-flight jobs have
// drained; repeated calls return the same channel.
func (p *Pipeline) Results() <-chan *Job {
	p.outMu.Lock()
	defer p.outMu.Unlock()
	if !p.outActive {
		p.outActive = true
		p.results = make(chan *Job, p.resultsCap)
		go p.dispatcher()
	}
	return p.results
}

// Close stops intake; in-flight jobs still complete and Results closes once
// they drain. Close does not block and is idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	go func() {
		p.inflight.Wait()
		p.stream.Close()
	}()
}

// Collect waits for the given jobs and returns their results in the given
// (typically submit) order, failing on the first job error.
func Collect(jobs []*Job) ([]*detect.Result, error) {
	out := make([]*detect.Result, len(jobs))
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", j.Name, err)
		}
		out[i] = res
	}
	return out, nil
}

func (p *Pipeline) compileWorker() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		// A job cancelled while waiting for a worker sheds its compile (and
		// detection) entirely.
		if job.ctx != nil {
			if err := job.ctx.Err(); err != nil {
				job.Err = err
				p.finish(job)
				continue
			}
		}
		start := time.Now()
		mod, err := job.compile()
		if err != nil {
			job.Err = err
			p.finish(job)
			continue
		}
		job.Mod = mod
		// Register the job under the stream sequence before releasing the
		// lock so the collector can always resolve an arriving result.
		p.mu.Lock()
		seq := p.stream.SubmitJob(detect.Submission{
			Mod: mod, Start: start, Ctx: job.ctx, Idioms: job.idioms, Roster: job.roster,
		})
		p.pending[seq] = job
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// collector resolves stream results back to their jobs. It owns the only
// read side of the stream, so detection orchestrators never stall on an
// unread Results channel.
func (p *Pipeline) collector() {
	for sr := range p.stream.Results() {
		p.mu.Lock()
		job := p.pending[sr.Seq]
		for job == nil {
			p.cond.Wait()
			job = p.pending[sr.Seq]
		}
		delete(p.pending, sr.Seq)
		p.mu.Unlock()
		job.Res, job.Err = sr.Result, sr.Err
		p.finish(job)
	}
	p.outMu.Lock()
	p.outDone = true
	p.outCond.Broadcast()
	p.outMu.Unlock()
}

func (p *Pipeline) finish(job *Job) {
	p.completed.Add(1)
	close(job.done)
	p.outMu.Lock()
	if p.outActive {
		p.outQ = append(p.outQ, job)
		p.outCond.Broadcast()
	}
	p.outMu.Unlock()
	p.inflight.Done()
}

func (p *Pipeline) dispatcher() {
	for {
		p.outMu.Lock()
		for len(p.outQ) == 0 && !p.outDone {
			p.outCond.Wait()
		}
		if len(p.outQ) == 0 {
			p.outMu.Unlock()
			close(p.results)
			return
		}
		job := p.outQ[0]
		p.outQ = p.outQ[1:]
		p.outMu.Unlock()
		p.results <- job
	}
}
