package pipeline_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/constraint"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/leakcheck"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

func instanceKey(inst detect.Instance) string {
	s := fmt.Sprintf("%s|%s|%s|claims[", inst.Idiom.Name, inst.Function.Ident, inst.Solution)
	for _, c := range inst.Claims {
		s += c.Operand() + ","
	}
	return s + "]"
}

func resultKeys(res *detect.Result) []string {
	keys := make([]string, len(res.Instances))
	for i, inst := range res.Instances {
		keys[i] = instanceKey(inst)
	}
	return keys
}

// TestPipelineMatchesBatch is the tentpole determinism criterion: submitting
// every workload's compile thunk and collecting the jobs in submit order is
// byte-identical (instances and solver steps) to compiling everything first
// and calling detect.Modules, at 1, 4 and 8 workers. Run under -race this
// covers the full compile→detect overlap.
func TestPipelineMatchesBatch(t *testing.T) {
	leakcheck.Register(t)
	ws := workloads.All()
	var mods []*ir.Module
	for _, w := range ws {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		mods = append(mods, mod)
	}
	want, err := detect.Modules(mods, detect.Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p, err := pipeline.New(pipeline.Options{
				Detect: detect.Options{Workers: workers, Memo: constraint.NewSolveCache()},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			var jobs []*pipeline.Job
			for _, w := range ws {
				jobs = append(jobs, p.Submit(w.Name, w.Compile))
			}
			got, err := pipeline.Collect(jobs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				wk, gk := resultKeys(want[i]), resultKeys(got[i])
				if len(wk) != len(gk) {
					t.Fatalf("%s: %d instances, want %d", ws[i].Name, len(gk), len(wk))
				}
				for j := range wk {
					if wk[j] != gk[j] {
						t.Errorf("%s: instance %d differs:\n  batch:    %s\n  pipeline: %s",
							ws[i].Name, j, wk[j], gk[j])
					}
				}
				if got[i].SolverSteps != want[i].SolverSteps {
					t.Errorf("%s: solver steps %d, want %d", ws[i].Name, got[i].SolverSteps, want[i].SolverSteps)
				}
				if got[i].Elapsed <= 0 {
					t.Errorf("%s: Elapsed = %v, want > 0 (per-module wall time)", ws[i].Name, got[i].Elapsed)
				}
			}
		})
	}
}

// TestPipelineResultsStream drains the completion-order channel and checks
// every job arrives exactly once with its Done already closed. The stream is
// activated before the first Submit — Results is forward-only and replays
// nothing that finished before it was requested.
func TestPipelineResultsStream(t *testing.T) {
	leakcheck.Register(t)
	p, err := pipeline.New(pipeline.Options{Detect: detect.Options{Workers: 4, NoMemo: true}})
	if err != nil {
		t.Fatal(err)
	}
	results := p.Results()
	names := []string{"lbm", "EP", "IS", "sgemm", "histo", "CG"}
	submitted := map[string]bool{}
	for _, n := range names {
		p.Submit(n, workloads.ByName(n).Compile)
		submitted[n] = true
	}
	p.Close()
	seen := map[string]bool{}
	for job := range results {
		if job.Err != nil {
			t.Fatalf("%s: %v", job.Name, job.Err)
		}
		select {
		case <-job.Done():
		default:
			t.Errorf("%s delivered on Results with Done still open", job.Name)
		}
		if !submitted[job.Name] || seen[job.Name] {
			t.Fatalf("unexpected or duplicate job %q", job.Name)
		}
		seen[job.Name] = true
		if job.Mod == nil || job.Res == nil {
			t.Errorf("%s: incomplete job on Results", job.Name)
		}
	}
	if len(seen) != len(names) {
		t.Fatalf("delivered %d jobs, want %d", len(seen), len(names))
	}
}

// TestPipelineCompileError pins error isolation: a failing compile reports on
// its own job and the rest of the stream is unaffected.
func TestPipelineCompileError(t *testing.T) {
	leakcheck.Register(t)
	p, err := pipeline.New(pipeline.Options{Detect: detect.Options{Workers: 2, NoMemo: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	bad := p.Submit("bad.c", func() (*ir.Module, error) {
		return cc.Compile("bad.c", "int broken( {")
	})
	good := p.Submit("EP", workloads.ByName("EP").Compile)

	if _, err := bad.Wait(); err == nil {
		t.Error("broken source compiled without error")
	} else if !strings.Contains(err.Error(), "bad.c") && bad.Name != "bad.c" {
		t.Errorf("error lost job identity: %v", err)
	}
	res, err := good.Wait()
	if err != nil {
		t.Fatalf("healthy job failed alongside broken one: %v", err)
	}
	if len(res.Instances) == 0 {
		t.Error("healthy job detected nothing")
	}
}

// TestPipelineMemoAcrossSubmissions checks the cross-run memo path end to
// end: resubmitting the same sources through one long-lived pipeline
// recompiles them (fresh IR pointers) but performs zero fresh solves.
func TestPipelineMemoAcrossSubmissions(t *testing.T) {
	leakcheck.Register(t)
	p, err := pipeline.New(pipeline.Options{
		Detect: detect.Options{Workers: 4, Memo: constraint.NewSolveCache()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	names := []string{"CG", "sgemm", "stencil"}
	submit := func() []*pipeline.Job {
		var jobs []*pipeline.Job
		for _, n := range names {
			jobs = append(jobs, p.Submit(n, workloads.ByName(n).Compile))
		}
		return jobs
	}

	first, err := pipeline.Collect(submit())
	if err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := p.Engine().MemoStats()

	second, err := pipeline.Collect(submit())
	if err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := p.Engine().MemoStats()
	if misses2 != misses1 {
		t.Errorf("resubmission performed %d fresh solves, want 0", misses2-misses1)
	}
	if hits2-hits1 != hits1+misses1 {
		t.Errorf("resubmission hit the memo %d times, want %d", hits2-hits1, hits1+misses1)
	}
	for i := range first {
		fk, sk := resultKeys(first[i]), resultKeys(second[i])
		if len(fk) != len(sk) {
			t.Fatalf("%s: instance counts differ across submissions", names[i])
		}
		for j := range fk {
			if fk[j] != sk[j] {
				t.Errorf("%s: instance %d differs across submissions", names[i], j)
			}
		}
		if first[i].SolverSteps != second[i].SolverSteps {
			t.Errorf("%s: steps differ across submissions", names[i])
		}
	}
}
