package pipeline

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrRateLimited is the base error matched by errors.Is for token-bucket
// rejections. The concrete error is always a *RateLimitedError carrying the
// client and a retry hint.
var ErrRateLimited = errors.New("pipeline: rate limited")

// RateLimitedError reports a submission rejected by a client's token bucket.
// RetryAfter is when the bucket will next hold a full token — the serving
// layer translates it into Retry-After / retry_after_ms.
type RateLimitedError struct {
	Client     string
	RetryAfter time.Duration
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("pipeline: client %q rate limited (retry in %s)", e.Client, e.RetryAfter.Round(time.Millisecond))
}

func (e *RateLimitedError) Unwrap() error { return ErrRateLimited }

// clientState is the per-tenant bookkeeping behind weighted-fair intake: one
// FIFO of jobs awaiting a compile worker, one FIFO of compiled jobs awaiting
// a solver slot, a token bucket, and the gauges surfaced in /statsz. The
// anonymous client (empty name) participates in the round-robin like any
// other tenant but is exempt from per-client caps and buckets, so a server
// without auth behaves exactly like the pre-fairness pipeline.
type clientState struct {
	name   string
	weight int

	intake []*Job // submitted, awaiting a compile worker
	ready  []*Job // compiled, awaiting a detect slot

	// Deficit round-robin counters, one per queue the client competes in
	// (compile intake and solver dispatch are two independent DRR rings).
	intakeDeficit float64
	readyDeficit  float64

	// Token bucket (lazy refill; no background goroutine). tokens is only
	// meaningful when the pipeline's clientRate is > 0.
	tokens     float64
	lastRefill time.Time

	// Atomic: finish() updates these without holding p.mu.
	inFlight atomic.Int64 // submitted, not yet finished
	served   atomic.Int64 // jobs fully completed (including with job errors)
	shed     atomic.Int64 // rejected at intake, rate limited, or cancelled in queue
}

// clientFor returns the state for a client name, creating and registering it
// in first-seen order on first use. A positive weight updates the stored
// weight (last writer wins — the auth layer sends the keyfile weight on every
// request, so this is idempotent in practice). Callers hold p.mu.
func (p *Pipeline) clientFor(name string, weight int) *clientState {
	cs := p.clients[name]
	if cs == nil {
		cs = &clientState{name: name, weight: 1, lastRefill: time.Now(), tokens: p.clientBurst}
		p.clients[name] = cs
		p.clientOrder = append(p.clientOrder, cs)
	}
	if weight > 0 {
		cs.weight = weight
	}
	return cs
}

// takeToken runs the lazy-refill token bucket for a named client: refill at
// clientRate*weight tokens/sec up to clientBurst, then spend one. On an empty
// bucket it returns false and the wait until a full token exists. Callers
// hold p.mu; the anonymous client never reaches here.
func (cs *clientState) takeToken(rate, burst float64, now time.Time) (ok bool, retryAfter time.Duration) {
	perSec := rate * float64(cs.weight)
	cs.tokens += perSec * now.Sub(cs.lastRefill).Seconds()
	if cs.tokens > burst {
		cs.tokens = burst
	}
	cs.lastRefill = now
	if cs.tokens < 1 {
		wait := time.Duration((1 - cs.tokens) / perSec * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		return false, wait
	}
	cs.tokens--
	return true, 0
}

// drrPick serves one job from the per-client queues selected by q, advancing
// the deficit round-robin state selected by def. Each visited client with a
// backlog is recharged by its weight when its deficit runs dry and serves
// jobs until the deficit is spent, so long-run service ratios track weights
// (2:1 weights → 2:1 modules) while a client with an empty queue donates its
// turn instead of stalling the ring. Returns nil when every queue is empty.
// Callers hold p.mu.
func drrPick(order []*clientState, cur *int, q func(*clientState) *[]*Job, def func(*clientState) *float64) *Job {
	n := len(order)
	if n == 0 {
		return nil
	}
	if *cur >= n {
		*cur = 0
	}
	// Each client is visited at most once before a serve happens (weight >= 1
	// guarantees the recharge covers one job), so 2n visits always suffice.
	for visits := 0; visits < 2*n; visits++ {
		cs := order[*cur]
		queue := q(cs)
		if len(*queue) == 0 {
			// An idle client carries no deficit into its next busy period —
			// fairness is over backlogged clients only.
			*def(cs) = 0
			*cur = (*cur + 1) % n
			continue
		}
		d := def(cs)
		if *d < 1 {
			*d += float64(cs.weight)
		}
		job := (*queue)[0]
		(*queue)[0] = nil
		*queue = (*queue)[1:]
		*d--
		if *d < 1 {
			*cur = (*cur + 1) % n
		}
		return job
	}
	return nil
}

func intakeQ(cs *clientState) *[]*Job    { return &cs.intake }
func readyQ(cs *clientState) *[]*Job     { return &cs.ready }
func intakeDef(cs *clientState) *float64 { return &cs.intakeDeficit }
func readyDef(cs *clientState) *float64  { return &cs.readyDeficit }

// ClientStats is one per-client row in Stats, mirrored on /statsz.
type ClientStats struct {
	// Name is the client identity from the auth layer ("" = anonymous tier).
	Name string
	// Weight is the client's fair-share weight (jobs served per DRR round).
	Weight int
	// InFlight is the client's submitted-but-unfinished job count.
	InFlight int64
	// IntakeQueue and ReadyQueue are the client's jobs awaiting a compile
	// worker and awaiting a solver slot, respectively.
	IntakeQueue, ReadyQueue int
	// Served counts the client's completed jobs; Shed counts submissions
	// rejected at intake (overload, rate limit) or cancelled while queued.
	Served, Shed int64
}
