package pipeline_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

const fairSource = `
double fsum(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]; }
    return s;
}`

// TestWeightedFairCompileOrder pins the deficit-round-robin intake contract:
// with two backlogged clients at weights 2:1 and a single compile worker, the
// worker serves modules in weight proportion, not submit order.
func TestWeightedFairCompileOrder(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{
		Detect:         detect.Options{Workers: 2, NoMemo: true},
		CompileWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Pin the single compile worker open so both clients can backlog.
	started := make(chan struct{})
	release := make(chan struct{})
	blocker, err := p.SubmitOpts("blocker", func() (*ir.Module, error) {
		close(started)
		<-release
		return cc.Compile("fair", fairSource)
	}, pipeline.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []string
	record := func(client string) pipeline.CompileFunc {
		return func() (*ir.Module, error) {
			mu.Lock()
			order = append(order, client)
			mu.Unlock()
			return cc.Compile("fair", fairSource)
		}
	}
	var jobs []*pipeline.Job
	// heavy floods first — submit order must not dictate service order.
	for i := 0; i < 8; i++ {
		j, err := p.SubmitOpts("heavy", record("heavy"), pipeline.SubmitOptions{Client: "heavy", Weight: 2})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for i := 0; i < 4; i++ {
		j, err := p.SubmitOpts("light", record("light"), pipeline.SubmitOptions{Client: "light", Weight: 1})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Collect(jobs); err != nil {
		t.Fatal(err)
	}

	// While both queues are backlogged (the first 6 picks), service must run
	// 2:1 — no FIFO burst of the flooding client.
	heavy, light := 0, 0
	for _, c := range order[:6] {
		if c == "heavy" {
			heavy++
		} else {
			light++
		}
	}
	if heavy != 4 || light != 2 {
		t.Fatalf("first 6 picks = %d heavy / %d light (order %v), want 4/2 for weights 2:1", heavy, light, order)
	}

	st := p.Stats()
	var sawHeavy, sawLight bool
	for _, row := range st.Clients {
		switch row.Name {
		case "heavy":
			sawHeavy = true
			if row.Weight != 2 || row.Served != 8 || row.Shed != 0 {
				t.Fatalf("heavy row = %+v, want weight 2 / served 8 / shed 0", row)
			}
		case "light":
			sawLight = true
			if row.Weight != 1 || row.Served != 4 {
				t.Fatalf("light row = %+v, want weight 1 / served 4", row)
			}
		}
	}
	if !sawHeavy || !sawLight {
		t.Fatalf("missing client rows in %+v", st.Clients)
	}
}

// TestClientRateLimited pins the token-bucket contract: a named client over
// its rate gets a *RateLimitedError with a retry hint, while the anonymous
// tier is exempt.
func TestClientRateLimited(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{
		Detect:      detect.Options{Workers: 1, NoMemo: true},
		ClientRate:  0.001, // effectively no refill within the test
		ClientBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	mod := func() (*ir.Module, error) { return cc.Compile("fair", fairSource) }
	so := pipeline.SubmitOptions{Client: "bursty"}
	var jobs []*pipeline.Job
	for i := 0; i < 2; i++ {
		j, err := p.SubmitOpts("ok", mod, so)
		if err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	_, err = p.SubmitOpts("over", mod, so)
	if !errors.Is(err, pipeline.ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	var rl *pipeline.RateLimitedError
	if !errors.As(err, &rl) {
		t.Fatalf("err = %T, want *RateLimitedError", err)
	}
	if rl.Client != "bursty" || rl.RetryAfter <= 0 {
		t.Fatalf("rate limit detail = %+v, want client bursty with positive RetryAfter", rl)
	}

	// Anonymous submissions are never rate limited.
	for i := 0; i < 5; i++ {
		j, err := p.SubmitOpts("anon", mod, pipeline.SubmitOptions{})
		if err != nil {
			t.Fatalf("anonymous submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	if _, err := pipeline.Collect(jobs); err != nil {
		t.Fatal(err)
	}

	for _, row := range p.Stats().Clients {
		if row.Name == "bursty" && row.Shed != 1 {
			t.Fatalf("bursty shed = %d, want 1", row.Shed)
		}
	}
}

// TestClientQueueBound pins the per-client overload contract: a named client
// at its in-flight bound is rejected with an error matching ErrOverloaded
// (and naming the client), without consuming global capacity for others.
func TestClientQueueBound(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{
		Detect:         detect.Options{Workers: 2, NoMemo: true},
		CompileWorkers: 1,
		ClientQueue:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	release := make(chan struct{})
	gated := func() (*ir.Module, error) {
		<-release
		return cc.Compile("fair", fairSource)
	}
	j1, err := p.SubmitOpts("a", gated, pipeline.SubmitOptions{Client: "tenant"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.SubmitOpts("b", gated, pipeline.SubmitOptions{Client: "tenant"})
	if !errors.Is(err, pipeline.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	// Another tenant and the anonymous tier still get in.
	j2, err := p.SubmitOpts("c", gated, pipeline.SubmitOptions{Client: "other"})
	if err != nil {
		t.Fatalf("other tenant blocked by tenant's bound: %v", err)
	}
	j3, err := p.SubmitOpts("d", gated, pipeline.SubmitOptions{})
	if err != nil {
		t.Fatalf("anonymous blocked by tenant's bound: %v", err)
	}

	close(release)
	if _, err := pipeline.Collect([]*pipeline.Job{j1, j2, j3}); err != nil {
		t.Fatal(err)
	}
}

// TestDetectSlotsGate pins that a tiny slot bound still drains everything:
// modules beyond the bound wait in ready queues and enter as slots free, and
// every job completes with the same result.
func TestDetectSlotsGate(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{
		Detect:         detect.Options{Workers: 2, NoMemo: true},
		CompileWorkers: 2,
		DetectSlots:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var jobs []*pipeline.Job
	for i := 0; i < 6; i++ {
		client := "a"
		if i%2 == 1 {
			client = "b"
		}
		j, err := p.SubmitOpts("mod", func() (*ir.Module, error) { return cc.Compile("fair", fairSource) },
			pipeline.SubmitOptions{Client: client})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	results, err := pipeline.Collect(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if len(res.Instances) != 1 {
			t.Fatalf("job %d: instances = %d, want 1 (reduction)", i, len(res.Instances))
		}
	}
	st := p.Stats()
	if st.DetectSlots != 1 || st.DetectActive != 0 || st.ReadyQueue != 0 {
		t.Fatalf("final stats = %+v, want drained slot gauges with DetectSlots 1", st)
	}

	// Drain deadline: all client gauges must be back to zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, row := range p.Stats().Clients {
			if row.InFlight != 0 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client gauges did not drain: %+v", p.Stats().Clients)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
