// Package fleet is the consistent-hash front door that turns N idiomd
// replicas into one service (cmd/idiomfront). Requests are routed by module
// identity — the SHA-256 of the request's source text — so every module
// lands on the same replica run after run, keeping each shard's solve memo
// (and its disk spill) hot. The front forwards the v1 wire model untouched:
// auth headers, deadlines and NDJSON sequence numbering all mean exactly
// what they mean against a single replica.
//
//	POST /v1/detect|match          batches are split per routed replica,
//	                               forwarded as sub-batches, and merged back
//	                               in global submit order.
//	POST /v1/detect|match/stream   sub-streams run concurrently; each line's
//	                               seq is rewritten to the global submit
//	                               index, so reassembling by seq reproduces
//	                               the batch order exactly as with one
//	                               replica.
//	POST /v1/idioms                broadcast to every live replica (a pack
//	                               must exist wherever its requests land).
//	GET  /v1/idioms|/v1/backends   answered by the first live replica.
//	GET  /v1/clients               per-tenant gauges aggregated (summed)
//	                               across replicas.
//	GET  /statsz                   per-replica StatsResponse plus fleet sums.
//	GET  /healthz                  200 while at least one replica is live.
//
// Replicas are health-checked in the background; a replica that fails a
// forward is marked down immediately and retried by the prober. A routed
// group fails over to the next replica on the ring, and when every replica
// is down the outcome is reported in-band per module (the Err field), the
// same way deadline expiry is — never as a torn response.
package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/idiomatic"
)

// Options configure a Front.
type Options struct {
	// Replicas are the idiomd base URLs (e.g. http://127.0.0.1:8173). At
	// least one is required; the set is static for the front's lifetime.
	Replicas []string
	// Vnodes is the number of ring points per replica (default 64): enough
	// that the module space splits near-evenly even with two replicas.
	Vnodes int
	// HealthInterval is the background probe period (default 2s).
	HealthInterval time.Duration
	// Client issues the forwarded requests. Default: no timeout (streams
	// are long-lived; cancellation rides the caller's request context).
	Client *http.Client
}

// Front is the router. Create with New, serve Handler, release with Close.
type Front struct {
	replicas []*replica
	ring     []ringNode
	client   *http.Client
	probe    *http.Client

	stop chan struct{}
	wg   sync.WaitGroup
}

type replica struct {
	base string
	up   atomic.Bool
}

// ringNode is one vnode: a hash point owned by a replica index.
type ringNode struct {
	hash uint64
	idx  int
}

// DefaultVnodes is the per-replica ring-point count.
const DefaultVnodes = 64

// New builds a front over the given replica base URLs. Replicas start
// optimistically live (the first failed forward or probe marks them down),
// so a fleet boots without waiting a probe period.
func New(o Options) (*Front, error) {
	if len(o.Replicas) == 0 {
		return nil, errors.New("fleet: at least one replica required")
	}
	vnodes := o.Vnodes
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	interval := o.HealthInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &Front{
		client: client,
		probe:  &http.Client{Timeout: interval},
		stop:   make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, base := range o.Replicas {
		for len(base) > 0 && base[len(base)-1] == '/' {
			base = base[:len(base)-1]
		}
		if base == "" || seen[base] {
			return nil, fmt.Errorf("fleet: empty or duplicate replica %q", base)
		}
		seen[base] = true
		rep := &replica{base: base}
		rep.up.Store(true)
		f.replicas = append(f.replicas, rep)
	}
	for i, rep := range f.replicas {
		for v := 0; v < vnodes; v++ {
			f.ring = append(f.ring, ringNode{hash: point(rep.base + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(f.ring, func(a, b int) bool { return f.ring[a].hash < f.ring[b].hash })
	f.wg.Add(1)
	go f.healthLoop(interval)
	return f, nil
}

// Close stops the health prober.
func (f *Front) Close() {
	close(f.stop)
	f.wg.Wait()
}

func point(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// RouteKey hashes a module's source text onto the ring — name is excluded
// deliberately, so renaming a module keeps hitting the replica whose memo
// already holds its shape.
func RouteKey(source string) uint64 {
	h := sha256.Sum256([]byte(source))
	return binary.BigEndian.Uint64(h[:8])
}

// candidates returns replica indices in ring-preference order for a key:
// the owner first, then each distinct successor — the failover sequence.
func (f *Front) candidates(key uint64) []int {
	start := sort.Search(len(f.ring), func(i int) bool { return f.ring[i].hash >= key })
	out := make([]int, 0, len(f.replicas))
	seen := make([]bool, len(f.replicas))
	for i := 0; i < len(f.ring) && len(out) < len(f.replicas); i++ {
		idx := f.ring[(start+i)%len(f.ring)].idx
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// Route reports which replica base URL a source text routes to (ignoring
// liveness) — exposed for tests and for operators debugging shard locality.
func (f *Front) Route(source string) string {
	return f.replicas[f.candidates(RouteKey(source))[0]].base
}

func (f *Front) healthLoop(interval time.Duration) {
	defer f.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			for _, rep := range f.replicas {
				resp, err := f.probe.Get(rep.base + "/healthz")
				ok := err == nil && resp.StatusCode == http.StatusOK
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				rep.up.Store(ok)
			}
		}
	}
}

// CheckNow probes every replica once, synchronously — used by tests and at
// idiomfront boot so the first request doesn't pay for a dead replica.
func (f *Front) CheckNow() {
	for _, rep := range f.replicas {
		resp, err := f.probe.Get(rep.base + "/healthz")
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		rep.up.Store(ok)
	}
}

func (f *Front) live() []int {
	var out []int
	for i, rep := range f.replicas {
		if rep.up.Load() {
			out = append(out, i)
		}
	}
	return out
}

// forwardHeaders are the request headers the front relays: tenant identity,
// deadline, and content negotiation. Everything else is hop-local.
var forwardHeaders = []string{"Authorization", "X-Api-Key", "X-Deadline-Ms", "Content-Type", "Accept"}

func copyHeaders(dst http.Header, src http.Header) {
	for _, h := range forwardHeaders {
		if v := src.Values(h); len(v) > 0 {
			dst[http.CanonicalHeaderKey(h)] = v
		}
	}
}

// forward issues one request to a replica, relaying the caller's identity
// headers and context. A transport-level failure marks the replica down.
func (f *Front) forward(ctx context.Context, idx int, method, path string, hdr http.Header, body []byte) (*http.Response, error) {
	rep := f.replicas[idx]
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.base+path, rd)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, hdr)
	resp, err := f.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			rep.up.Store(false)
		}
		return nil, err
	}
	return resp, nil
}

// Handler returns the front's HTTP handler.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", func(w http.ResponseWriter, r *http.Request) {
		proxyBatch(f, w, r, "/v1/detect", detectCodec{})
	})
	mux.HandleFunc("/v1/match", func(w http.ResponseWriter, r *http.Request) {
		proxyBatch(f, w, r, "/v1/match", matchCodec{})
	})
	mux.HandleFunc("/v1/detect/stream", func(w http.ResponseWriter, r *http.Request) {
		proxyStream(f, w, r, "/v1/detect/stream", detectCodec{})
	})
	mux.HandleFunc("/v1/match/stream", func(w http.ResponseWriter, r *http.Request) {
		proxyStream(f, w, r, "/v1/match/stream", matchCodec{})
	})
	mux.HandleFunc("/v1/idioms", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			f.broadcastPack(w, r)
		case http.MethodGet, http.MethodHead:
			f.relayFirstLive(w, r, "/v1/idioms")
		default:
			writeFrontError(w, http.StatusMethodNotAllowed, idiomatic.CodeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed on %s", r.Method, r.URL.Path))
		}
	})
	mux.HandleFunc("/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		f.relayFirstLive(w, r, "/v1/backends")
	})
	mux.HandleFunc("/v1/clients", func(w http.ResponseWriter, r *http.Request) {
		f.aggregateClients(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		live := len(f.live())
		status := http.StatusOK
		if live == 0 {
			status = http.StatusServiceUnavailable
		}
		writeIndentedJSON(w, status, map[string]any{"ok": live > 0, "live": live, "replicas": len(f.replicas)})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		f.aggregateStats(w, r)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeFrontError(w, http.StatusNotFound, idiomatic.CodeNotFound, fmt.Sprintf("no such endpoint %s", r.URL.Path))
	})
	return mux
}

// --- batch routing ---

// routedItem is one request of a batch: its raw JSON, peeked routing fields,
// and its global submit index.
type routedItem struct {
	raw    json.RawMessage
	name   string
	global int
}

// routePeek is the subset of a request the router reads. Source drives the
// ring placement; Name labels in-band failover errors.
type routePeek struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// resultCodec adapts the two wire result types to the router: decode a
// replica's result, rewrite its sub-batch seq to the global one, and
// fabricate in-band error results when no replica is reachable.
type resultCodec interface {
	// rewrite decodes one result, returning the value re-sequenced to
	// global and the sub-batch seq it carried.
	rewrite(raw []byte, globalOf func(sub int) int) (val any, sub int, err error)
	errResult(global int, name, msg string) any
}

type detectCodec struct{}

func (detectCodec) rewrite(raw []byte, globalOf func(int) int) (any, int, error) {
	var res idiomatic.DetectResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, 0, err
	}
	sub := res.Seq
	res.Seq = globalOf(sub)
	return res, sub, nil
}

func (detectCodec) errResult(global int, name, msg string) any {
	return idiomatic.DetectResult{Seq: global, Name: name, Err: msg}
}

type matchCodec struct{}

func (matchCodec) rewrite(raw []byte, globalOf func(int) int) (any, int, error) {
	var res idiomatic.MatchResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, 0, err
	}
	sub := res.Seq
	res.Seq = globalOf(sub)
	return res, sub, nil
}

func (matchCodec) errResult(global int, name, msg string) any {
	return idiomatic.MatchResult{DetectResult: idiomatic.DetectResult{Seq: global, Name: name, Err: msg}}
}

// decodeRouted splits the request body (one object or an array — the same
// contract as the replicas) into routable items.
func decodeRouted(w http.ResponseWriter, r *http.Request) ([]routedItem, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeFrontError(w, http.StatusRequestEntityTooLarge, idiomatic.CodeBodyTooLarge, err.Error())
		return nil, false
	}
	body = bytes.TrimLeft(body, " \t\r\n")
	var raws []json.RawMessage
	if len(body) > 0 && body[0] == '[' {
		if err := json.Unmarshal(body, &raws); err != nil {
			writeFrontError(w, http.StatusBadRequest, idiomatic.CodeInvalidRequest, fmt.Sprintf("invalid request array: %v", err))
			return nil, false
		}
		if len(raws) == 0 {
			writeFrontError(w, http.StatusBadRequest, idiomatic.CodeInvalidRequest, "empty request batch")
			return nil, false
		}
	} else {
		raws = []json.RawMessage{json.RawMessage(body)}
	}
	items := make([]routedItem, len(raws))
	for i, raw := range raws {
		var peek routePeek
		if err := json.Unmarshal(raw, &peek); err != nil {
			writeFrontError(w, http.StatusBadRequest, idiomatic.CodeInvalidRequest, fmt.Sprintf("invalid request: %v", err))
			return nil, false
		}
		name := peek.Name
		if name == "" {
			name = "input.c"
		}
		items[i] = routedItem{raw: raw, name: name, global: i}
	}
	return items, true
}

// groupByReplica buckets items by their routed owner, preserving submit
// order inside each bucket (sub-batch seq = index in bucket).
func (f *Front) groupByReplica(items []routedItem) map[int][]routedItem {
	groups := map[int][]routedItem{}
	for _, it := range items {
		var peek routePeek
		_ = json.Unmarshal(it.raw, &peek)
		owner := f.candidates(RouteKey(peek.Source))[0]
		groups[owner] = append(groups[owner], it)
	}
	return groups
}

// encodeGroup renders one bucket as the sub-batch array a replica receives.
func encodeGroup(items []routedItem) []byte {
	raws := make([]json.RawMessage, len(items))
	for i, it := range items {
		raws[i] = it.raw
	}
	body, _ := json.Marshal(raws)
	return body
}

// forwardGroup sends one bucket to its owner, failing over once per distinct
// replica along the ring. Returns the response of the first replica that
// answered (any status), or an error when none was reachable.
func (f *Front) forwardGroup(ctx context.Context, owner int, path string, hdr http.Header, body []byte) (*http.Response, error) {
	cands := f.candidates(f.ring[ownerRingStart(f, owner)].hash)
	// candidates() keyed off the owner's first vnode reproduces owner-first
	// order; make that explicit instead of depending on vnode layout.
	ordered := append([]int{owner}, without(cands, owner)...)
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for _, idx := range ordered {
			// First pass: live replicas only. Second pass: try everyone —
			// liveness is advisory and may be stale.
			if pass == 0 && !f.replicas[idx].up.Load() {
				continue
			}
			resp, err := f.forward(ctx, idx, http.MethodPost, path, hdr, body)
			if err == nil {
				return resp, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
	}
	if lastErr == nil {
		lastErr = errors.New("fleet: no replica reachable")
	}
	return nil, lastErr
}

func ownerRingStart(f *Front, owner int) int {
	for i, n := range f.ring {
		if n.idx == owner {
			return i
		}
	}
	return 0
}

func without(xs []int, drop int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x != drop {
			out = append(out, x)
		}
	}
	return out
}

const maxBodyBytes = 16 << 20

// groupOutcome is one bucket's merged contribution to a single-shot reply.
type groupOutcome struct {
	firstGlobal int
	results     []any
	// relay holds a replica's non-200 response (status + body) to pass
	// through verbatim; nil when the group succeeded or failed in-band.
	relayStatus int
	relayBody   []byte
	relayType   string
}

// proxyBatch serves POST /v1/detect and /v1/match: split, forward, merge in
// global submit order. A replica answering non-200 for its sub-batch fails
// the whole request with that replica's envelope relayed verbatim (the same
// all-or-nothing contract a single replica gives a batch); an unreachable
// shard degrades in-band per module instead.
func proxyBatch(f *Front, w http.ResponseWriter, r *http.Request, path string, codec resultCodec) {
	if r.Method != http.MethodPost {
		writeFrontError(w, http.StatusMethodNotAllowed, idiomatic.CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s", r.Method, r.URL.Path))
		return
	}
	items, ok := decodeRouted(w, r)
	if !ok {
		return
	}
	groups := f.groupByReplica(items)
	outcomes := make([]*groupOutcome, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for owner, group := range groups {
		owner, group := owner, group
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := f.runGroup(r.Context(), owner, group, path, r.Header, codec)
			mu.Lock()
			outcomes = append(outcomes, out)
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Deterministic error precedence: the failing group containing the
	// earliest submitted request wins.
	sort.Slice(outcomes, func(a, b int) bool { return outcomes[a].firstGlobal < outcomes[b].firstGlobal })
	for _, out := range outcomes {
		if out.relayStatus != 0 {
			relay(w, out.relayStatus, out.relayType, out.relayBody)
			return
		}
	}
	merged := make([]any, len(items))
	for _, out := range outcomes {
		for _, res := range out.results {
			switch v := res.(type) {
			case idiomatic.DetectResult:
				merged[v.Seq] = v
			case idiomatic.MatchResult:
				merged[v.Seq] = v
			}
		}
	}
	writeIndentedJSON(w, http.StatusOK, map[string]any{"results": merged})
}

// runGroup forwards one bucket and decodes its results (or fabricates
// in-band errors when no replica was reachable).
func (f *Front) runGroup(ctx context.Context, owner int, group []routedItem, path string, hdr http.Header, codec resultCodec) *groupOutcome {
	out := &groupOutcome{firstGlobal: group[0].global}
	globalOf := func(sub int) int {
		if sub < 0 || sub >= len(group) {
			return -1
		}
		return group[sub].global
	}
	resp, err := f.forwardGroup(ctx, owner, path, hdr, encodeGroup(group))
	if err != nil {
		for _, it := range group {
			out.results = append(out.results, codec.errResult(it.global, it.name, "fleet: no replica reachable: "+err.Error()))
		}
		return out
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		for _, it := range group {
			out.results = append(out.results, codec.errResult(it.global, it.name, "fleet: reading replica response: "+err.Error()))
		}
		return out
	}
	if resp.StatusCode != http.StatusOK {
		out.relayStatus = resp.StatusCode
		out.relayBody = body
		out.relayType = resp.Header.Get("Content-Type")
		return out
	}
	var envelope struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || len(envelope.Results) != len(group) {
		for _, it := range group {
			out.results = append(out.results, codec.errResult(it.global, it.name, "fleet: malformed replica response"))
		}
		return out
	}
	for _, raw := range envelope.Results {
		val, sub, err := codec.rewrite(raw, globalOf)
		if err != nil || globalOf(sub) < 0 {
			out.results = append(out.results, codec.errResult(group[0].global, group[0].name, "fleet: malformed replica result"))
			continue
		}
		out.results = append(out.results, val)
	}
	return out
}

// proxyStream serves the NDJSON endpoints: every bucket streams from its
// replica concurrently, each line re-sequenced to the global submit index
// and flushed as it lands — completion order across the whole fleet, exactly
// the single-replica stream contract.
func proxyStream(f *Front, w http.ResponseWriter, r *http.Request, path string, codec resultCodec) {
	if r.Method != http.MethodPost {
		writeFrontError(w, http.StatusMethodNotAllowed, idiomatic.CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s", r.Method, r.URL.Path))
		return
	}
	items, ok := decodeRouted(w, r)
	if !ok {
		return
	}
	groups := f.groupByReplica(items)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	emit := func(v any) {
		wmu.Lock()
		defer wmu.Unlock()
		if enc.Encode(v) == nil && flusher != nil {
			flusher.Flush()
		}
	}
	var wg sync.WaitGroup
	for owner, group := range groups {
		owner, group := owner, group
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.streamGroup(r.Context(), owner, group, path, r.Header, codec, emit)
		}()
	}
	wg.Wait()
}

func (f *Front) streamGroup(ctx context.Context, owner int, group []routedItem, path string, hdr http.Header, codec resultCodec, emit func(any)) {
	globalOf := func(sub int) int {
		if sub < 0 || sub >= len(group) {
			return -1
		}
		return group[sub].global
	}
	emitAllErr := func(msg string) {
		for _, it := range group {
			emit(codec.errResult(it.global, it.name, msg))
		}
	}
	resp, err := f.forwardGroup(ctx, owner, path, hdr, encodeGroup(group))
	if err != nil {
		emitAllErr("fleet: no replica reachable: " + err.Error())
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		emitAllErr(fmt.Sprintf("fleet: replica rejected sub-batch: %s: %s", resp.Status, bytes.TrimSpace(body)))
		return
	}
	dec := json.NewDecoder(resp.Body)
	delivered := 0
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if !errors.Is(err, io.EOF) && ctx.Err() == nil {
				emitAllErr("fleet: replica stream broke: " + err.Error())
			}
			break
		}
		val, sub, err := codec.rewrite(raw, globalOf)
		if err != nil || globalOf(sub) < 0 {
			continue
		}
		emit(val)
		delivered++
	}
	_ = delivered
}

// --- control-plane endpoints ---

// broadcastPack registers a pack on every replica: consistent-hash routing
// can land a pack's requests anywhere, so a registration that skipped a
// replica would surface as sporadic "unknown pack" errors. All-or-error:
// the first failing replica's envelope is relayed with its status.
func (f *Front) broadcastPack(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeFrontError(w, http.StatusRequestEntityTooLarge, idiomatic.CodeBodyTooLarge, err.Error())
		return
	}
	live := f.live()
	if len(live) == 0 {
		writeFrontError(w, http.StatusServiceUnavailable, idiomatic.CodeUnavailable, "fleet: no live replicas")
		return
	}
	var okBody []byte
	var okType string
	for _, idx := range live {
		resp, err := f.forward(r.Context(), idx, http.MethodPost, "/v1/idioms", r.Header, body)
		if err != nil {
			writeFrontError(w, http.StatusBadGateway, idiomatic.CodeUnavailable,
				fmt.Sprintf("fleet: registering on %s: %v", f.replicas[idx].base, err))
			return
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			relay(w, resp.StatusCode, resp.Header.Get("Content-Type"), rb)
			return
		}
		okBody, okType = rb, resp.Header.Get("Content-Type")
	}
	relay(w, http.StatusOK, okType, okBody)
}

// relayFirstLive forwards a read-only request to the first live replica
// (introspection data is identical fleet-wide once packs are broadcast).
func (f *Front) relayFirstLive(w http.ResponseWriter, r *http.Request, path string) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeFrontError(w, http.StatusMethodNotAllowed, idiomatic.CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s", r.Method, r.URL.Path))
		return
	}
	target := path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	for _, idx := range f.live() {
		resp, err := f.forward(r.Context(), idx, http.MethodGet, target, r.Header, nil)
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		relay(w, resp.StatusCode, resp.Header.Get("Content-Type"), body)
		return
	}
	writeFrontError(w, http.StatusServiceUnavailable, idiomatic.CodeUnavailable, "fleet: no live replicas")
}

// clientRow mirrors httpapi.ClientInfo for aggregation.
type clientRow struct {
	Name        string `json:"name"`
	Weight      int    `json:"weight"`
	Admin       bool   `json:"admin,omitempty"`
	InFlight    int64  `json:"in_flight"`
	IntakeQueue int    `json:"intake_queue"`
	ReadyQueue  int    `json:"ready_queue"`
	Served      int64  `json:"served"`
	Shed        int64  `json:"shed"`
}

// aggregateClients sums each tenant's gauges across replicas, so fairness
// asserts (cmd/soak) read fleet-wide shares through the router. Replicas
// enforce auth themselves: the first non-200 (401/403) is relayed verbatim.
func (f *Front) aggregateClients(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeFrontError(w, http.StatusMethodNotAllowed, idiomatic.CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s", r.Method, r.URL.Path))
		return
	}
	live := f.live()
	if len(live) == 0 {
		writeFrontError(w, http.StatusServiceUnavailable, idiomatic.CodeUnavailable, "fleet: no live replicas")
		return
	}
	sums := map[string]*clientRow{}
	var order []string
	for _, idx := range live {
		resp, err := f.forward(r.Context(), idx, http.MethodGet, "/v1/clients", r.Header, nil)
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			relay(w, resp.StatusCode, resp.Header.Get("Content-Type"), body)
			return
		}
		var payload struct {
			Clients []clientRow `json:"clients"`
		}
		if json.Unmarshal(body, &payload) != nil {
			continue
		}
		for _, row := range payload.Clients {
			acc, ok := sums[row.Name]
			if !ok {
				cp := row
				sums[row.Name] = &cp
				order = append(order, row.Name)
				continue
			}
			acc.InFlight += row.InFlight
			acc.IntakeQueue += row.IntakeQueue
			acc.ReadyQueue += row.ReadyQueue
			acc.Served += row.Served
			acc.Shed += row.Shed
		}
	}
	out := make([]clientRow, 0, len(order))
	for _, name := range order {
		out = append(out, *sums[name])
	}
	writeIndentedJSON(w, http.StatusOK, map[string]any{"clients": out})
}

// FleetStatsSchemaVersion versions the aggregated /statsz payload.
const FleetStatsSchemaVersion = 1

// ReplicaStats is one replica's row in the aggregated /statsz.
type ReplicaStats struct {
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
	// Stats is the replica's own versioned StatsResponse (absent when the
	// replica was unreachable at aggregation time).
	Stats *idiomatic.StatsResponse `json:"stats,omitempty"`
}

// FleetSums are the cross-replica totals of the headline gauges.
type FleetSums struct {
	InFlight     int   `json:"in_flight"`
	Submitted    int64 `json:"submitted"`
	Completed    int64 `json:"completed"`
	MemoHits     int64 `json:"memo_hits"`
	MemoMisses   int64 `json:"memo_misses"`
	StoreEntries int64 `json:"store_entries"`
	SpillHits    int64 `json:"spill_hits"`
}

// FleetStatsResponse is the front's /statsz payload: fleet rollup plus every
// replica's full StatsResponse.
type FleetStatsResponse struct {
	Schema   int            `json:"schema"`
	Replicas int            `json:"fleet_replicas"`
	Live     int            `json:"fleet_live"`
	Sums     FleetSums      `json:"fleet_sums"`
	Rows     []ReplicaStats `json:"replicas"`
}

func (f *Front) aggregateStats(w http.ResponseWriter, r *http.Request) {
	out := FleetStatsResponse{Schema: FleetStatsSchemaVersion, Replicas: len(f.replicas)}
	for _, rep := range f.replicas {
		row := ReplicaStats{Addr: rep.base, Up: rep.up.Load()}
		resp, err := f.forward(r.Context(), indexOf(f.replicas, rep), http.MethodGet, "/statsz", r.Header, nil)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var stats idiomatic.StatsResponse
			if resp.StatusCode == http.StatusOK && json.Unmarshal(body, &stats) == nil {
				row.Stats = &stats
				out.Sums.InFlight += stats.InFlight
				out.Sums.Submitted += stats.Submitted
				out.Sums.Completed += stats.Completed
				out.Sums.MemoHits += stats.Memo.Hits
				out.Sums.MemoMisses += stats.Memo.Misses
				out.Sums.StoreEntries += stats.Store.Entries
				out.Sums.SpillHits += stats.Store.SpillHits
			}
		}
		if row.Up {
			out.Live++
		}
		out.Rows = append(out.Rows, row)
	}
	writeIndentedJSON(w, http.StatusOK, out)
}

func indexOf(reps []*replica, rep *replica) int {
	for i, r := range reps {
		if r == rep {
			return i
		}
	}
	return 0
}

// --- response helpers ---

func relay(w http.ResponseWriter, status int, contentType string, body []byte) {
	if contentType == "" {
		contentType = "application/json"
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	w.Write(body)
}

// writeFrontError emits the v1 error envelope the replicas use, so clients
// parse fleet-level failures with the same code they parse replica ones.
func writeFrontError(w http.ResponseWriter, status int, code, message string) {
	writeIndentedJSON(w, status, idiomatic.ErrorEnvelope{Error: idiomatic.ErrorBody{Code: code, Message: message}})
}

// writeIndentedJSON matches the replicas' response formatting (two-space
// indent), keeping single-shot responses byte-comparable across the fleet
// boundary.
func writeIndentedJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
