package fleet_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/idiomatic"
	"repro/internal/fleet"
	"repro/internal/httpapi"
)

// testSources are small distinct modules; enough of them that a 2-replica
// ring almost surely splits the set (and the tests assert it did).
func testSources() []idiomatic.DetectRequest {
	reqs := []idiomatic.DetectRequest{
		{Name: "dot.c", Source: "double dot(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; } return s; }"},
		{Name: "sum.c", Source: "double sum(double* x, int n) { double a = 0.0; for (int i = 0; i < n; i++) { a = a + x[i]; } return a; }"},
		{Name: "scale.c", Source: "void scale(double* x, double a, int n) { for (int i = 0; i < n; i++) { x[i] = a * x[i]; } }"},
	}
	for i := 0; i < 5; i++ {
		src := fmt.Sprintf("int f%d(int a, int b) { int r = a * b;", i)
		for j := 0; j <= i; j++ {
			src += " r = r + a;"
		}
		src += " return r; }"
		reqs = append(reqs, idiomatic.DetectRequest{Name: fmt.Sprintf("f%d.c", i), Source: src})
	}
	return reqs
}

type backend struct {
	svc *idiomatic.Service
	ts  *httptest.Server
}

func newBackend(t *testing.T, keys *httpapi.Keyring) *backend {
	t.Helper()
	svc, err := idiomatic.NewService(idiomatic.ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.Options{Keys: keys}))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return &backend{svc: svc, ts: ts}
}

func newFleet(t *testing.T, n int, keys *httpapi.Keyring) ([]*backend, *fleet.Front, *httptest.Server) {
	t.Helper()
	backs := make([]*backend, n)
	urls := make([]string, n)
	for i := range backs {
		backs[i] = newBackend(t, keys)
		urls[i] = backs[i].ts.URL
	}
	front, err := fleet.New(fleet.Options{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front.Close)
	front.CheckNow()
	fs := httptest.NewServer(front.Handler())
	t.Cleanup(fs.Close)
	return backs, front, fs
}

func canonical(t *testing.T, r idiomatic.DetectResult) string {
	t.Helper()
	r.ElapsedNs = 0
	r.Memo = idiomatic.MemoSnapshot{}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func postBatch(t *testing.T, url string, reqs []idiomatic.DetectRequest) (int, []idiomatic.DetectResult) {
	t.Helper()
	body, err := json.Marshal(reqs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out struct {
		Results []idiomatic.DetectResult `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal batch response: %v (body %s)", err, data)
	}
	return resp.StatusCode, out.Results
}

// TestRouteDeterminismAndSpread pins the ring: the same source routes to the
// same replica across independently built fronts (the ring is a pure function
// of the replica list), and the test corpus actually spans both replicas.
func TestRouteDeterminismAndSpread(t *testing.T) {
	urls := []string{"http://replica-a:1", "http://replica-b:2"}
	f1, err := fleet.New(fleet.Options{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f2, err := fleet.New(fleet.Options{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()

	hit := map[string]int{}
	for _, req := range testSources() {
		r1, r2 := f1.Route(req.Source), f2.Route(req.Source)
		if r1 != r2 {
			t.Fatalf("%s: route differs across identically configured fronts (%s vs %s)", req.Name, r1, r2)
		}
		hit[r1]++
	}
	if len(hit) != 2 {
		t.Fatalf("all %d sources routed to one replica: %v (corpus must span the ring)", len(testSources()), hit)
	}
	// Renaming a module must not move it: routing keys off source only.
	src := testSources()[0].Source
	if f1.Route(src) != f1.Route(src) {
		t.Fatal("route not a function of source")
	}
}

// TestBatchThroughFrontMatchesSingleReplica is the fleet's correctness
// criterion: a batch split across two replicas and merged back is
// result-identical (canonical wire form, global seq order) to the same batch
// against one replica.
func TestBatchThroughFrontMatchesSingleReplica(t *testing.T) {
	reqs := testSources()
	mono := newBackend(t, nil)
	status, want := postBatch(t, mono.ts.URL, reqs)
	if status != http.StatusOK {
		t.Fatalf("mono batch status %d", status)
	}

	backs, front, fs := newFleet(t, 2, nil)
	// The corpus must actually shard, or the test proves nothing.
	owners := map[string]bool{}
	for _, r := range reqs {
		owners[front.Route(r.Source)] = true
	}
	if len(owners) != 2 {
		t.Fatalf("corpus landed on %d replica(s); want both", len(owners))
	}
	status, got := postBatch(t, fs.URL, reqs)
	if status != http.StatusOK {
		t.Fatalf("fleet batch status %d", status)
	}
	if len(got) != len(want) {
		t.Fatalf("fleet returned %d results, mono %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != i {
			t.Errorf("result %d carries seq %d; merge must restore global submit order", i, got[i].Seq)
		}
		if canonical(t, got[i]) != canonical(t, want[i]) {
			t.Errorf("%s: fleet result differs from single-replica result", want[i].Name)
		}
	}
	// Both replicas actually served traffic.
	for i, b := range backs {
		if b.svc.Stats().Completed == 0 {
			t.Errorf("replica %d completed nothing; routing sent it no work", i)
		}
	}
}

// TestStreamThroughFrontGlobalSeq pins the NDJSON contract across the fleet
// boundary: lines arrive in completion order, but reassembling by seq
// reproduces the batch exactly.
func TestStreamThroughFrontGlobalSeq(t *testing.T) {
	reqs := testSources()
	mono := newBackend(t, nil)
	_, want := postBatch(t, mono.ts.URL, reqs)

	_, _, fs := newFleet(t, 2, nil)
	body, _ := json.Marshal(reqs)
	resp, err := http.Post(fs.URL+"/v1/detect/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/x-ndjson") {
		t.Errorf("stream Content-Type = %q", ct)
	}
	got := make([]idiomatic.DetectResult, len(reqs))
	seen := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		var r idiomatic.DetectResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line: %v (%s)", err, sc.Bytes())
		}
		if r.Seq < 0 || r.Seq >= len(reqs) {
			t.Fatalf("line carries out-of-range seq %d", r.Seq)
		}
		got[r.Seq] = r
		seen++
	}
	if seen != len(reqs) {
		t.Fatalf("stream delivered %d lines; want %d", seen, len(reqs))
	}
	for i := range want {
		if canonical(t, got[i]) != canonical(t, want[i]) {
			t.Errorf("%s: streamed fleet result differs from single-replica batch", want[i].Name)
		}
	}
}

// TestFailoverReroutesToSurvivor kills one replica and asserts the batch
// still succeeds — the dead shard's modules fail over along the ring — and
// that with zero replicas the failure is reported in-band per module, never
// as a torn response.
func TestFailoverReroutesToSurvivor(t *testing.T) {
	reqs := testSources()
	backs, front, fs := newFleet(t, 2, nil)

	backs[0].ts.Close() // kill replica 0 (Close is idempotent for the cleanup)
	front.CheckNow()
	status, got := postBatch(t, fs.URL, reqs)
	if status != http.StatusOK {
		t.Fatalf("batch with one dead replica: status %d", status)
	}
	mono := newBackend(t, nil)
	_, want := postBatch(t, mono.ts.URL, reqs)
	for i := range want {
		if got[i].Err != "" {
			t.Errorf("%s: in-band error despite a live survivor: %s", want[i].Name, got[i].Err)
		} else if canonical(t, got[i]) != canonical(t, want[i]) {
			t.Errorf("%s: failover result differs", want[i].Name)
		}
	}

	backs[1].ts.Close()
	front.CheckNow()
	status, got = postBatch(t, fs.URL, reqs)
	if status != http.StatusOK {
		t.Fatalf("batch with zero replicas: status %d; fleet exhaustion is in-band", status)
	}
	for i, r := range got {
		if r.Err == "" || !strings.Contains(r.Err, "no replica reachable") {
			t.Errorf("result %d: Err = %q; want an in-band no-replica report", i, r.Err)
		}
		if r.Name != reqs[i].Name {
			t.Errorf("result %d: name %q; in-band errors must keep the request's name", i, r.Name)
		}
	}

	// Health surface agrees: zero live replicas is a 503.
	resp, err := http.Get(fs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz with dead fleet = %d; want 503", resp.StatusCode)
	}
}

// TestPackBroadcast pins pack semantics through the front door: one POST
// /v1/idioms lands the pack on every replica, so any module routed anywhere
// can use it.
func TestPackBroadcast(t *testing.T) {
	backs, _, fs := newFleet(t, 2, nil)
	reg, _ := json.Marshal(map[string]any{
		"pack":   "fleetpack",
		"source": idiomatic.LibrarySource(),
		"idioms": []map[string]any{{"name": "Dot", "top": "Reduction", "scheme": "reduction", "kind": "reduction"}},
	})
	resp, err := http.Post(fs.URL+"/v1/idioms", "application/json", bytes.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pack broadcast status %d", resp.StatusCode)
	}
	for i, b := range backs {
		if _, ok := b.svc.PackByName("fleetpack"); !ok {
			t.Errorf("replica %d missing the broadcast pack", i)
		}
	}
	// And a routed request using the pack works wherever it lands.
	status, got := postBatch(t, fs.URL, []idiomatic.DetectRequest{
		{Name: "dot.c", Source: testSources()[0].Source, Pack: "fleetpack"},
	})
	if status != http.StatusOK || len(got) != 1 || got[0].Err != "" {
		t.Fatalf("detect via broadcast pack: status %d results %+v", status, got)
	}
}

// TestAggregatedSurfaces covers /statsz (schema, per-replica rows, sums) and
// /v1/clients (per-tenant sums, auth relayed) through the front.
func TestAggregatedSurfaces(t *testing.T) {
	kr, err := httpapi.ParseKeyring(strings.NewReader("k-user user 1\nk-admin ops 1 admin\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, _, fs := newFleet(t, 2, kr)

	// Push a couple of authenticated modules through the router.
	body, _ := json.Marshal(testSources()[:4])
	req, _ := http.NewRequest(http.MethodPost, fs.URL+"/v1/detect", bytes.NewReader(body))
	req.Header.Set("X-API-Key", "k-user")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated batch via front: %d", resp.StatusCode)
	}

	// /statsz: open endpoint, aggregated shape.
	resp, err = http.Get(fs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats fleet.FleetStatsResponse
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if stats.Schema != fleet.FleetStatsSchemaVersion || stats.Replicas != 2 || stats.Live != 2 {
		t.Fatalf("statsz header = %+v", stats)
	}
	if len(stats.Rows) != 2 || stats.Rows[0].Stats == nil || stats.Rows[1].Stats == nil {
		t.Fatalf("statsz rows incomplete: %+v", stats.Rows)
	}
	if sum := stats.Rows[0].Stats.Completed + stats.Rows[1].Stats.Completed; stats.Sums.Completed != sum || sum == 0 {
		t.Errorf("fleet_sums.completed = %d; rows sum to %d", stats.Sums.Completed, sum)
	}

	// /v1/clients without a key relays the replicas' 401 envelope.
	resp, err = http.Get(fs.URL + "/v1/clients")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var env idiomatic.ErrorEnvelope
	if resp.StatusCode != http.StatusUnauthorized || json.Unmarshal(data, &env) != nil ||
		env.Error.Code != idiomatic.CodeUnauthenticated {
		t.Fatalf("anonymous /v1/clients via front: %d %s", resp.StatusCode, data)
	}

	// With the admin key: per-tenant rows summed across replicas.
	req, _ = http.NewRequest(http.MethodGet, fs.URL+"/v1/clients", nil)
	req.Header.Set("X-API-Key", "k-admin")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var clients struct {
		Clients []struct {
			Name   string `json:"name"`
			Served int64  `json:"served"`
		} `json:"clients"`
	}
	if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &clients) != nil {
		t.Fatalf("admin /v1/clients via front: %d %s", resp.StatusCode, data)
	}
	names := make([]string, 0, len(clients.Clients))
	var userServed int64
	for _, c := range clients.Clients {
		names = append(names, c.Name)
		if c.Name == "user" {
			userServed = c.Served
		}
	}
	sort.Strings(names)
	if got := strings.Join(names, ","); got != "ops,user" {
		t.Fatalf("aggregated tenants = %s; want ops,user", got)
	}
	if userServed != 4 {
		t.Errorf("user served = %d across the fleet; want the 4 batch modules", userServed)
	}
}
