// Package idl implements the Idiom Description Language of the paper: a
// constraint language over SSA IR in which computational idioms are
// specified and then detected by a constraint solver.
//
// The grammar follows the paper's Figure 7 BNF, including the extensions the
// paper's own examples rely on:
//
//   - "post dominates" variants (used by the SESE specification, Fig. 9);
//   - optional count on collect (Fig. 11 writes `collect i (...)`);
//   - phi/fcmp/cast opcodes in opcode atomics;
//   - an "all operands of {v} come from {list} below {w}" atomic used to
//     express well-behaved kernel functions (the paper's KernelFunction
//     building block is not printed in the paper; this atomic provides the
//     data-flow closure check it needs).
package idl

import (
	"fmt"
	"strings"
)

// CalcTerm is one signed term of a calculation: either a parameter name or
// an integer literal.
type CalcTerm struct {
	Neg  bool
	Name string // parameter reference when non-empty
	Num  int
}

// Calc is a linear integer calculation: t0 ± t1 ± t2 ...
type Calc []CalcTerm

// Eval evaluates the calculation under the parameter environment.
func (c Calc) Eval(env map[string]int) (int, error) {
	out := 0
	for _, t := range c {
		v := t.Num
		if t.Name != "" {
			bound, ok := env[t.Name]
			if !ok {
				return 0, fmt.Errorf("idl: unbound parameter %q in calculation", t.Name)
			}
			v = bound
		}
		if t.Neg {
			out -= v
		} else {
			out += v
		}
	}
	return out, nil
}

// String renders the calculation.
func (c Calc) String() string {
	var b strings.Builder
	for i, t := range c {
		if i > 0 || t.Neg {
			if t.Neg {
				b.WriteString("-")
			} else {
				b.WriteString("+")
			}
		}
		if t.Name != "" {
			b.WriteString(t.Name)
		} else {
			fmt.Fprintf(&b, "%d", t.Num)
		}
	}
	return b.String()
}

// ConstCalc builds a constant calculation.
func ConstCalc(n int) Calc { return Calc{{Num: n}} }

// VarPart is one dotted segment of a variable, optionally indexed:
// "read" + index in "read[i].value".
type VarPart struct {
	Text string
	// Index is non-nil for an indexed segment; RangeEnd is non-nil for a
	// range segment (varmulti) "x[a..b]".
	Index    Calc
	RangeEnd Calc
}

// Var is a hierarchical variable reference such as {inner.iter_begin} or
// {read[i].value}.
type Var struct {
	Parts []VarPart
}

// String renders the variable without braces.
func (v Var) String() string {
	var b strings.Builder
	for i, p := range v.Parts {
		if i > 0 {
			b.WriteString(".")
		}
		b.WriteString(p.Text)
		if p.Index != nil {
			b.WriteString("[")
			b.WriteString(p.Index.String())
			if p.RangeEnd != nil {
				b.WriteString("..")
				b.WriteString(p.RangeEnd.String())
			}
			b.WriteString("]")
		}
	}
	return b.String()
}

// SimpleVar builds an unindexed variable from a dotted name.
func SimpleVar(name string) Var {
	var v Var
	for _, part := range strings.Split(name, ".") {
		v.Parts = append(v.Parts, VarPart{Text: part})
	}
	return v
}

// --- Constraint tree ---

// Constraint is a node in the IDL constraint tree.
type Constraint interface{ constraintNode() }

// AtomicKind identifies which atomic predicate an Atomic encodes.
type AtomicKind int

// Atomic predicate kinds (paper Fig. 7 atomic productions).
const (
	// AtomTypeIs: {v} is integer|float|pointer [constant zero]
	AtomTypeIs AtomicKind = iota
	// AtomClassIs: {v} is unused | a constant | a compile time value |
	// an argument | an instruction
	AtomClassIs
	// AtomOpcodeIs: {v} is <opcode> instruction
	AtomOpcodeIs
	// AtomSameAs: {v} is [not] the same as {w}
	AtomSameAs
	// AtomEdge: {v} has data flow|control flow|control dominance|dependence
	// edge to {w}
	AtomEdge
	// AtomArgOf: {v} is first|second|third|fourth argument of {w}
	AtomArgOf
	// AtomReachesPhi: {v} reaches phi node {w} from {u}
	AtomReachesPhi
	// AtomDominates: {v} [does not] [strictly] [data flow|control flow]
	// [post] dominates {w}
	AtomDominates
	// AtomPassesThrough: all [data|control] flow from {v} to {w} passes
	// through {u}
	AtomPassesThrough
	// AtomKilledBy: all flow from {list} to {list} is killed by {list}
	AtomKilledBy
	// AtomOperandsFrom: all operands of {v} come from {list} below {w}
	AtomOperandsFrom
	// AtomNoOpcodeBelow: no <opcode> instruction below {v}. Like
	// AtomOperandsFrom this is a documented extension beyond the paper's
	// Figure 7: it demands that the region dominated by {v} contains no
	// instruction of the given opcode, which makes idioms like Reduction
	// reject loops with memory side effects (prefix scans, queue pushes)
	// whose replacement by a pure API call would be unsound.
	AtomNoOpcodeBelow
)

// EdgeKind distinguishes the "has ... to" atomics.
type EdgeKind int

// Edge kinds.
const (
	EdgeDataFlow EdgeKind = iota
	EdgeControlFlow
	EdgeControlDominance
	EdgeDependence
)

// FlowKind distinguishes flavours of dominance / passes-through.
type FlowKind int

// Flow kinds.
const (
	FlowAny FlowKind = iota
	FlowData
	FlowControl
)

// Atomic is a leaf predicate.
type Atomic struct {
	Kind AtomicKind

	// Vars holds the variable operands in order of appearance.
	Vars []Var
	// Lists holds varlist operands for AtomKilledBy / AtomOperandsFrom.
	Lists [][]Var

	// TypeName is integer/float/pointer for AtomTypeIs.
	TypeName string
	// ConstantZero marks "... constant zero".
	ConstantZero bool
	// ClassName for AtomClassIs: unused/constant/compiletime/argument/instruction.
	ClassName string
	// Opcode for AtomOpcodeIs (IDL spelling, e.g. "gep", "branch").
	Opcode string
	// Negated marks "is not the same as" / "does not ... dominate".
	Negated bool
	// Strict marks "strictly dominates".
	Strict bool
	// Post marks "post dominates".
	Post bool
	// Flow qualifies dominance and passes-through atomics.
	Flow FlowKind
	// Edge qualifies AtomEdge.
	Edge EdgeKind
	// ArgIndex is 0-based for AtomArgOf.
	ArgIndex int
}

// And is a conjunction of constraints.
type And struct{ List []Constraint }

// Or is a disjunction of constraints.
type Or struct{ List []Constraint }

// Inherit inserts another idiom specification, with optional integer
// parameter bindings (e.g. ForNest(N=3)).
type Inherit struct {
	Name string
	Args []InheritArg
}

// InheritArg is one parameter binding of an inheritance.
type InheritArg struct {
	Name string
	Calc Calc
}

// ForAll duplicates the body for each index value, conjoining the copies.
type ForAll struct {
	Idx      string
	From, To Calc // inclusive range From..To
	Body     Constraint
}

// ForSome duplicates the body for each index value, disjoining the copies.
type ForSome struct {
	Idx      string
	From, To Calc
	Body     Constraint
}

// ForOne binds an index name to a single value in the body.
type ForOne struct {
	Idx  string
	Val  Calc
	Body Constraint
}

// If selects between two constraints by comparing calculations.
type If struct {
	L, R       Calc
	Then, Else Constraint
}

// RenamePair maps the inner variable name to the outer variable.
type RenamePair struct {
	Outer Var // replacement seen by the surrounding constraint
	Inner Var // name used inside the wrapped constraint
}

// Rename rewrites variable names of the wrapped constraint by dictionary;
// unmentioned variables keep their names.
type Rename struct {
	Base  Constraint
	Pairs []RenamePair
}

// Rebase rewrites dictionary names like Rename, but prefixes every other
// variable with the base variable's name.
type Rebase struct {
	Base  Constraint
	Pairs []RenamePair
	At    Var
}

// Collect captures all solutions of the body constraint, binding indexed
// copies of the body's variables (paper §3: "used to capture all possible
// solutions of a given constraint", the logical ∀).
type Collect struct {
	Idx  string
	Max  int // 0 = unbounded
	Body Constraint
}

func (*Atomic) constraintNode()  {}
func (*And) constraintNode()     {}
func (*Or) constraintNode()      {}
func (*Inherit) constraintNode() {}
func (*ForAll) constraintNode()  {}
func (*ForSome) constraintNode() {}
func (*ForOne) constraintNode()  {}
func (*If) constraintNode()      {}
func (*Rename) constraintNode()  {}
func (*Rebase) constraintNode()  {}
func (*Collect) constraintNode() {}

// Spec is one named "Constraint ... End" specification.
type Spec struct {
	Name string
	Body Constraint
}

// Program is a set of specifications compiled together; inheritance resolves
// against this set.
type Program struct {
	Specs map[string]*Spec
	Order []string
}

// NewProgram builds an empty program.
func NewProgram() *Program {
	return &Program{Specs: map[string]*Spec{}}
}

// Add registers a specification.
func (p *Program) Add(s *Spec) error {
	if _, dup := p.Specs[s.Name]; dup {
		return fmt.Errorf("idl: duplicate constraint %q", s.Name)
	}
	p.Specs[s.Name] = s
	p.Order = append(p.Order, s.Name)
	return nil
}
