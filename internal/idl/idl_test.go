package idl

import (
	"testing"
)

// figure2 is the paper's Figure 2 IDL program, verbatim modulo the paper's
// own typo ("augment" → "argument").
const figure2 = `
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend}) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend}))
End
`

func TestParseFigure2(t *testing.T) {
	spec, err := ParseConstraint(figure2)
	if err != nil {
		t.Fatalf("ParseConstraint: %v", err)
	}
	if spec.Name != "FactorizationOpportunity" {
		t.Errorf("name = %q", spec.Name)
	}
	and, ok := spec.Body.(*And)
	if !ok {
		t.Fatalf("body is %T, want *And", spec.Body)
	}
	if len(and.List) != 7 {
		t.Errorf("conjuncts = %d, want 7", len(and.List))
	}
	// Last two conjuncts are disjunctions of two ArgOf atomics.
	for _, i := range []int{5, 6} {
		or, ok := and.List[i].(*Or)
		if !ok {
			t.Fatalf("conjunct %d is %T, want *Or", i, and.List[i])
		}
		if len(or.List) != 2 {
			t.Errorf("disjuncts = %d, want 2", len(or.List))
		}
		a := or.List[0].(*Atomic)
		if a.Kind != AtomArgOf || a.ArgIndex != 0 {
			t.Errorf("first disjunct = %+v", a)
		}
	}
}

// figure9 is the paper's SESE region constraint (Figure 9).
const figure9 = `
Constraint SESE
( {precursor} is branch instruction and
  {precursor} has control flow to {begin} and
  {end} is branch instruction and
  {end} has control flow to {successor} and
  {begin} control flow dominates {end} and
  {end} control flow post dominates {begin} and
  {precursor} strictly control flow dominates {begin} and
  {successor} strictly control flow post dominates {end} and
  all control flow from {begin} to {precursor} passes through {end} and
  all control flow from {successor} to {end} passes through {begin})
End
`

func TestParseFigure9SESE(t *testing.T) {
	spec, err := ParseConstraint(figure9)
	if err != nil {
		t.Fatalf("ParseConstraint: %v", err)
	}
	and := spec.Body.(*And)
	if len(and.List) != 10 {
		t.Fatalf("conjuncts = %d, want 10", len(and.List))
	}
	dom := and.List[4].(*Atomic)
	if dom.Kind != AtomDominates || dom.Flow != FlowControl || dom.Post || dom.Strict {
		t.Errorf("conjunct 4 = %+v, want plain control flow dominates", dom)
	}
	pdom := and.List[5].(*Atomic)
	if pdom.Kind != AtomDominates || !pdom.Post || pdom.Strict {
		t.Errorf("conjunct 5 = %+v, want post dominates", pdom)
	}
	spdom := and.List[7].(*Atomic)
	if !spdom.Post || !spdom.Strict {
		t.Errorf("conjunct 7 = %+v, want strictly post dominates", spdom)
	}
	pass := and.List[8].(*Atomic)
	if pass.Kind != AtomPassesThrough {
		t.Errorf("conjunct 8 = %+v, want passes-through", pass)
	}
}

func TestParseInheritanceRenameRebase(t *testing.T) {
	src := `
Constraint Outer
( inherits ForNest(N=3) and
  inherits MatrixRead
    with {iterator[0]} as {col}
    and {iterator[2]} as {row}
    and {begin} as {begin} at {input1} and
  {x} is add instruction)
End
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	and := prog.Specs["Outer"].Body.(*And)
	if len(and.List) != 3 {
		t.Fatalf("conjuncts = %d, want 3 — rename 'and' disambiguation failed", len(and.List))
	}
	inh, ok := and.List[0].(*Inherit)
	if !ok || inh.Name != "ForNest" {
		t.Fatalf("first conjunct = %+v", and.List[0])
	}
	if len(inh.Args) != 1 || inh.Args[0].Name != "N" {
		t.Errorf("inherit args = %+v", inh.Args)
	}
	rb, ok := and.List[1].(*Rebase)
	if !ok {
		t.Fatalf("second conjunct is %T, want *Rebase", and.List[1])
	}
	if rb.At.String() != "input1" {
		t.Errorf("rebase at = %q", rb.At.String())
	}
	if len(rb.Pairs) != 3 {
		t.Fatalf("rebase pairs = %d, want 3", len(rb.Pairs))
	}
	if rb.Pairs[0].Outer.String() != "iterator[0]" || rb.Pairs[0].Inner.String() != "col" {
		t.Errorf("pair 0 = %+v", rb.Pairs[0])
	}
}

func TestParseForAllAndCollect(t *testing.T) {
	src := `
Constraint Loops
( ( {loop[i]} is phi instruction and
    {loop[i]} has data flow to {loop[i+1]} ) for all i = 0..N-2 and
  collect j 2
  ( {read[j]} is load instruction ) and
  ( {x} is add instruction or {x} is mul instruction ) for some k = 0..3 )
End
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	and := prog.Specs["Loops"].Body.(*And)
	fa, ok := and.List[0].(*ForAll)
	if !ok {
		t.Fatalf("first = %T, want ForAll", and.List[0])
	}
	if fa.Idx != "i" || fa.From.String() != "0" || fa.To.String() != "N-2" {
		t.Errorf("forall = %+v from=%s to=%s", fa, fa.From, fa.To)
	}
	col, ok := and.List[1].(*Collect)
	if !ok {
		t.Fatalf("second = %T, want Collect", and.List[1])
	}
	if col.Idx != "j" || col.Max != 2 {
		t.Errorf("collect = idx %q max %d", col.Idx, col.Max)
	}
	fs, ok := and.List[2].(*ForSome)
	if !ok {
		t.Fatalf("third = %T, want ForSome", and.List[2])
	}
	if fs.Idx != "k" {
		t.Errorf("forsome idx = %q", fs.Idx)
	}
}

func TestParseKilledByAndOperandsFrom(t *testing.T) {
	src := `
Constraint Kernel
( all flow from {a, b[0..2]} to {c} is killed by {d} and
  all operands of {out} come from {in, old} below {begin} and
  all data flow from {x} to {y} passes through {z} )
End
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	and := prog.Specs["Kernel"].Body.(*And)
	kb := and.List[0].(*Atomic)
	if kb.Kind != AtomKilledBy {
		t.Fatalf("first = %+v, want killed-by", kb)
	}
	if len(kb.Lists[0]) != 2 {
		t.Errorf("from-list entries = %d, want 2 (a and ranged b)", len(kb.Lists[0]))
	}
	if kb.Lists[0][1].Parts[0].RangeEnd == nil {
		t.Error("b[0..2] should parse as a range")
	}
	of := and.List[1].(*Atomic)
	if of.Kind != AtomOperandsFrom || len(of.Lists[0]) != 2 {
		t.Errorf("second = %+v", of)
	}
	pt := and.List[2].(*Atomic)
	if pt.Kind != AtomPassesThrough || pt.Flow != FlowData {
		t.Errorf("third = %+v, want data passes-through", pt)
	}
}

func TestParseIfConstraint(t *testing.T) {
	src := `
Constraint Cond
( if N = 1 then {x} is add instruction else {x} is mul instruction endif )
End
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	ifc, ok := prog.Specs["Cond"].Body.(*If)
	if !ok {
		t.Fatalf("body = %T, want If", prog.Specs["Cond"].Body)
	}
	if ifc.L.String() != "N" || ifc.R.String() != "1" {
		t.Errorf("if calc = %s / %s", ifc.L, ifc.R)
	}
}

func TestParseClassAtomics(t *testing.T) {
	src := `
Constraint Classes
( {a} is a constant and
  {b} is an argument and
  {c} is a compile time value and
  {d} is an instruction and
  {e} is unused and
  {f} is integer constant zero and
  {g} is float and
  {h} is pointer and
  {i} is not the same as {j} and
  {k} reaches phi node {l} from {m} and
  {n} has dependence edge to {o} and
  {p} has control dominance to {q} and
  {r} does not strictly dominate... )
End
`
	// The last atomic is intentionally malformed to check error reporting.
	if _, err := ParseProgram(src); err == nil {
		t.Fatal("expected parse error for malformed dominance atomic")
	}
	good := `
Constraint Classes
( {a} is a constant and
  {b} is an argument and
  {c} is a compile time value and
  {d} is an instruction and
  {e} is unused and
  {f} is integer constant zero and
  {i} is not the same as {j} and
  {r} does not strictly dominate {s1} )
End
`
	// "dominate" without the final s is invalid too.
	if _, err := ParseProgram(good); err == nil {
		t.Fatal("expected parse error for 'dominate'")
	}
	fixed := `
Constraint Classes
( {a} is a constant and
  {b} is an argument and
  {c} is a compile time value and
  {d} is an instruction and
  {e} is unused and
  {f} is integer constant zero and
  {i} is not the same as {j} and
  {r} does not strictly dominates {s1} )
End
`
	prog, err := ParseProgram(fixed)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	and := prog.Specs["Classes"].Body.(*And)
	classes := []string{"constant", "argument", "compiletime", "instruction", "unused"}
	for i, want := range classes {
		a := and.List[i].(*Atomic)
		if a.ClassName != want {
			t.Errorf("atomic %d class = %q, want %q", i, a.ClassName, want)
		}
	}
	cz := and.List[5].(*Atomic)
	if cz.Kind != AtomTypeIs || !cz.ConstantZero {
		t.Errorf("constant zero atomic = %+v", cz)
	}
	neg := and.List[6].(*Atomic)
	if !neg.Negated {
		t.Error("is not the same as must set Negated")
	}
	dom := and.List[7].(*Atomic)
	if !dom.Negated || !dom.Strict {
		t.Errorf("negated strict dominance = %+v", dom)
	}
}

func TestCalcEval(t *testing.T) {
	c := Calc{{Name: "N"}, {Neg: true, Num: 2}, {Num: 1}}
	v, err := c.Eval(map[string]int{"N": 5})
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Errorf("N-2+1 with N=5 = %d, want 4", v)
	}
	if _, err := c.Eval(map[string]int{}); err == nil {
		t.Error("unbound parameter must error")
	}
}

func TestProgramDuplicate(t *testing.T) {
	src := `
Constraint A ( {x} is add instruction ) End
Constraint A ( {x} is mul instruction ) End
`
	if _, err := ParseProgram(src); err == nil {
		t.Fatal("duplicate constraint names must error")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexIDL("# comment line\nConstraint X # trailing\n( {a} is add instruction ) End")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "Constraint" {
		t.Errorf("first token = %v", toks[0])
	}
}
