package idl

import (
	"fmt"
)

// ParseProgram parses a sequence of "Constraint <name> ... End" blocks.
func ParseProgram(src string) (*Program, error) {
	toks, err := lexIDL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := NewProgram()
	for !p.at(tEOF) {
		spec, err := p.spec()
		if err != nil {
			return nil, err
		}
		if err := prog.Add(spec); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// ParseConstraint parses a single specification.
func ParseConstraint(src string) (*Spec, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Order) != 1 {
		return nil, fmt.Errorf("idl: expected exactly one constraint, found %d", len(prog.Order))
	}
	return prog.Specs[prog.Order[0]], nil
}

type parser struct {
	toks []tok
	pos  int
}

func (p *parser) cur() tok  { return p.toks[p.pos] }
func (p *parser) next() tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tkind) bool { return p.cur().kind == k }

func (p *parser) atWord(w string) bool {
	return p.cur().kind == tWord && p.cur().text == w
}

func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}

func (p *parser) acceptWord(w string) bool {
	if p.atWord(w) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectWord(w string) error {
	if !p.acceptWord(w) {
		return p.errf("expected %q, found %s", w, p.cur())
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("idl: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) spec() (*Spec, error) {
	if err := p.expectWord("Constraint"); err != nil {
		return nil, err
	}
	if !p.at(tWord) {
		return nil, p.errf("expected constraint name, found %s", p.cur())
	}
	name := p.next().text
	body, err := p.constraint()
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("End"); err != nil {
		return nil, err
	}
	return &Spec{Name: name, Body: body}, nil
}

// constraint parses one constraint plus any postfix modifiers (for-all/
// for-some/for, with-rename, at-rebase).
func (p *parser) constraint() (Constraint, error) {
	base, err := p.basicConstraint()
	if err != nil {
		return nil, err
	}
	return p.postfix(base)
}

// postfix applies trailing modifiers to a parsed constraint.
func (p *parser) postfix(base Constraint) (Constraint, error) {
	for {
		switch {
		case p.atWord("for"):
			p.pos++
			switch {
			case p.acceptWord("all"), p.atWord("some"):
				some := p.acceptWord("some")
				if !p.at(tWord) {
					return nil, p.errf("expected index name after for all/some")
				}
				idx := p.next().text
				if err := p.expectPunct("="); err != nil {
					return nil, err
				}
				from, err := p.calc()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(".."); err != nil {
					return nil, err
				}
				to, err := p.calc()
				if err != nil {
					return nil, err
				}
				if some {
					base = &ForSome{Idx: idx, From: from, To: to, Body: base}
				} else {
					base = &ForAll{Idx: idx, From: from, To: to, Body: base}
				}
			default:
				if !p.at(tWord) {
					return nil, p.errf("expected index name after for")
				}
				idx := p.next().text
				if err := p.expectPunct("="); err != nil {
					return nil, err
				}
				val, err := p.calc()
				if err != nil {
					return nil, err
				}
				base = &ForOne{Idx: idx, Val: val, Body: base}
			}
		case p.atWord("with"):
			p.pos++
			pairs, err := p.renamePairs()
			if err != nil {
				return nil, err
			}
			if p.acceptWord("at") {
				at, err := p.varRef()
				if err != nil {
					return nil, err
				}
				base = &Rebase{Base: base, Pairs: pairs, At: at}
			} else {
				base = &Rename{Base: base, Pairs: pairs}
			}
		case p.atWord("at"):
			p.pos++
			at, err := p.varRef()
			if err != nil {
				return nil, err
			}
			base = &Rebase{Base: base, At: at}
		default:
			return base, nil
		}
	}
}

// renamePairs parses "{outer} as {inner} [and {outer} as {inner}]*" where
// the trailing "and" is disambiguated from a conjunction separator by
// looking for "{var} as".
func (p *parser) renamePairs() ([]RenamePair, error) {
	var pairs []RenamePair
	for {
		outer, err := p.varRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("as"); err != nil {
			return nil, err
		}
		inner, err := p.varRef()
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, RenamePair{Outer: outer, Inner: inner})
		// Another pair only if: "and" "{...}" "as"
		if !p.atWord("and") {
			return pairs, nil
		}
		save := p.pos
		p.pos++ // and
		if !p.atPunct("{") {
			p.pos = save
			return pairs, nil
		}
		if _, err := p.varRef(); err != nil {
			p.pos = save
			return pairs, nil
		}
		if !p.atWord("as") {
			p.pos = save
			return pairs, nil
		}
		p.pos = save + 1 // consume just the "and", re-parse the pair
	}
}

func (p *parser) basicConstraint() (Constraint, error) {
	switch {
	case p.atPunct("("):
		p.pos++
		first, err := p.constraint()
		if err != nil {
			return nil, err
		}
		switch {
		case p.atWord("and"):
			list := []Constraint{first}
			for p.acceptWord("and") {
				c, err := p.constraint()
				if err != nil {
					return nil, err
				}
				list = append(list, c)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &And{List: list}, nil
		case p.atWord("or"):
			list := []Constraint{first}
			for p.acceptWord("or") {
				c, err := p.constraint()
				if err != nil {
					return nil, err
				}
				list = append(list, c)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &Or{List: list}, nil
		default:
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return first, nil
		}

	case p.atWord("inherits"):
		p.pos++
		if !p.at(tWord) {
			return nil, p.errf("expected constraint name after inherits")
		}
		inh := &Inherit{Name: p.next().text}
		if p.acceptPunct("(") {
			for !p.atPunct(")") {
				if len(inh.Args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				if !p.at(tWord) {
					return nil, p.errf("expected parameter name")
				}
				name := p.next().text
				if err := p.expectPunct("="); err != nil {
					return nil, err
				}
				c, err := p.calc()
				if err != nil {
					return nil, err
				}
				inh.Args = append(inh.Args, InheritArg{Name: name, Calc: c})
			}
			p.pos++ // ')'
		}
		return inh, nil

	case p.atWord("collect"):
		p.pos++
		if !p.at(tWord) {
			return nil, p.errf("expected index name after collect")
		}
		idx := p.next().text
		max := 0
		if p.at(tNum) {
			max = p.next().num
		}
		body, err := p.constraint()
		if err != nil {
			return nil, err
		}
		return &Collect{Idx: idx, Max: max, Body: body}, nil

	case p.atWord("if"):
		p.pos++
		l, err := p.calc()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		r, err := p.calc()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("then"); err != nil {
			return nil, err
		}
		then, err := p.constraint()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("else"); err != nil {
			return nil, err
		}
		els, err := p.constraint()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("endif"); err != nil {
			return nil, err
		}
		return &If{L: l, R: r, Then: then, Else: els}, nil

	case p.atWord("all"):
		return p.allAtomic()

	case p.atWord("no"):
		// no <opcode> instruction below {v}
		p.pos++
		if !p.at(tWord) {
			return nil, p.errf("expected opcode after 'no'")
		}
		a := &Atomic{Kind: AtomNoOpcodeBelow, Opcode: p.next().text}
		if err := p.expectWord("instruction"); err != nil {
			return nil, err
		}
		if err := p.expectWord("below"); err != nil {
			return nil, err
		}
		v, err := p.varRef()
		if err != nil {
			return nil, err
		}
		a.Vars = []Var{v}
		return a, nil

	case p.atPunct("{"):
		return p.varAtomic()
	}
	return nil, p.errf("unexpected token %s in constraint", p.cur())
}

// calc parses a linear calculation: (name|num) ((+|-) (name|num))*.
func (p *parser) calc() (Calc, error) {
	var out Calc
	neg := false
	if p.acceptPunct("-") {
		neg = true
	}
	t, err := p.calcTerm(neg)
	if err != nil {
		return nil, err
	}
	out = append(out, t)
	for p.atPunct("+") || p.atPunct("-") {
		neg = p.next().text == "-"
		t, err := p.calcTerm(neg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func (p *parser) calcTerm(neg bool) (CalcTerm, error) {
	switch {
	case p.at(tWord):
		return CalcTerm{Neg: neg, Name: p.next().text}, nil
	case p.at(tNum):
		return CalcTerm{Neg: neg, Num: p.next().num}, nil
	}
	return CalcTerm{}, p.errf("expected name or number in calculation, found %s", p.cur())
}

// varRef parses "{" varsingle/varmulti "}".
func (p *parser) varRef() (Var, error) {
	if err := p.expectPunct("{"); err != nil {
		return Var{}, err
	}
	v, err := p.varBody()
	if err != nil {
		return Var{}, err
	}
	return v, p.expectPunct("}")
}

func (p *parser) varBody() (Var, error) {
	var v Var
	for {
		if !p.at(tWord) {
			return v, p.errf("expected variable segment, found %s", p.cur())
		}
		part := VarPart{Text: p.next().text}
		if p.acceptPunct("[") {
			idx, err := p.calc()
			if err != nil {
				return v, err
			}
			part.Index = idx
			if p.acceptPunct("..") {
				end, err := p.calc()
				if err != nil {
					return v, err
				}
				part.RangeEnd = end
			}
			if err := p.expectPunct("]"); err != nil {
				return v, err
			}
		}
		v.Parts = append(v.Parts, part)
		if !p.acceptPunct(".") {
			return v, nil
		}
	}
}

// varList parses "{" varmulti ("," varmulti)* "}" — a list of variables.
func (p *parser) varList() ([]Var, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []Var
	for {
		v, err := p.varBody()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if !p.acceptPunct(",") {
			break
		}
	}
	return out, p.expectPunct("}")
}

// isListAhead reports whether the upcoming {...} contains a comma at depth 1
// (making it a varlist rather than a single var).
func (p *parser) isListAhead() bool {
	if !p.atPunct("{") {
		return false
	}
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		t := p.toks[i]
		if t.kind != tPunct {
			continue
		}
		switch t.text {
		case "{", "[":
			depth++
		case "}", "]":
			depth--
			if depth == 0 {
				return false
			}
		case ",":
			if depth == 1 {
				return true
			}
		}
	}
	return false
}

// allAtomic parses the "all ..." atomics.
func (p *parser) allAtomic() (Constraint, error) {
	p.pos++ // all
	a := &Atomic{}
	switch {
	case p.acceptWord("operands"):
		// all operands of {v} come from {list} below {w}
		if err := p.expectWord("of"); err != nil {
			return nil, err
		}
		v, err := p.varRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("come"); err != nil {
			return nil, err
		}
		if err := p.expectWord("from"); err != nil {
			return nil, err
		}
		list, err := p.varList()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("below"); err != nil {
			return nil, err
		}
		w, err := p.varRef()
		if err != nil {
			return nil, err
		}
		a.Kind = AtomOperandsFrom
		a.Vars = []Var{v, w}
		a.Lists = [][]Var{list}
		return a, nil

	case p.acceptWord("data"):
		a.Flow = FlowData
	case p.acceptWord("control"):
		a.Flow = FlowControl
	}
	if err := p.expectWord("flow"); err != nil {
		return nil, err
	}
	if err := p.expectWord("from"); err != nil {
		return nil, err
	}
	if p.isListAhead() || a.Flow == FlowAny && p.killAhead() {
		// all flow from {list} to {list} is killed by {list}
		from, err := p.varList()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("to"); err != nil {
			return nil, err
		}
		to, err := p.varList()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("is"); err != nil {
			return nil, err
		}
		if err := p.expectWord("killed"); err != nil {
			return nil, err
		}
		if err := p.expectWord("by"); err != nil {
			return nil, err
		}
		by, err := p.varList()
		if err != nil {
			return nil, err
		}
		a.Kind = AtomKilledBy
		a.Lists = [][]Var{from, to, by}
		return a, nil
	}
	// all [data|control] flow from {v} to {w} passes through {u}
	v, err := p.varRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("to"); err != nil {
		return nil, err
	}
	w, err := p.varRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("passes"); err != nil {
		return nil, err
	}
	if err := p.expectWord("through"); err != nil {
		return nil, err
	}
	u, err := p.varRef()
	if err != nil {
		return nil, err
	}
	a.Kind = AtomPassesThrough
	a.Vars = []Var{v, w, u}
	return a, nil
}

// killAhead looks ahead for "is killed by" to distinguish the killed-by
// atomic with single-var lists from passes-through.
func (p *parser) killAhead() bool {
	for i := p.pos; i < len(p.toks) && i < p.pos+40; i++ {
		if p.toks[i].kind == tWord {
			switch p.toks[i].text {
			case "killed":
				return true
			case "passes":
				return false
			}
		}
	}
	return false
}

// idlOpcodes are the opcode spellings accepted in "is <op> instruction".
var idlOpcodes = map[string]bool{
	"store": true, "load": true, "return": true, "branch": true,
	"add": true, "sub": true, "mul": true, "sdiv": true, "srem": true,
	"fadd": true, "fsub": true, "fmul": true, "fdiv": true,
	"select": true, "gep": true, "icmp": true, "fcmp": true, "phi": true,
	"sext": true, "zext": true, "trunc": true, "sitofp": true, "fptosi": true,
	"fpext": true, "fptrunc": true, "call": true, "alloca": true,
}

// varAtomic parses atomics that start with a variable reference.
func (p *parser) varAtomic() (Constraint, error) {
	v, err := p.varRef()
	if err != nil {
		return nil, err
	}
	switch {
	case p.atWord("is"):
		p.pos++
		return p.isAtomic(v)
	case p.atWord("has"):
		p.pos++
		a := &Atomic{Kind: AtomEdge, Vars: []Var{v}}
		switch {
		case p.acceptWord("data"):
			if err := p.expectWord("flow"); err != nil {
				return nil, err
			}
			a.Edge = EdgeDataFlow
		case p.acceptWord("control"):
			switch {
			case p.acceptWord("flow"):
				a.Edge = EdgeControlFlow
			case p.acceptWord("dominance"):
				a.Edge = EdgeControlDominance
			default:
				return nil, p.errf("expected flow or dominance after control")
			}
		case p.acceptWord("dependence"):
			if err := p.expectWord("edge"); err != nil {
				return nil, err
			}
			a.Edge = EdgeDependence
		default:
			return nil, p.errf("unknown edge kind %s", p.cur())
		}
		if err := p.expectWord("to"); err != nil {
			return nil, err
		}
		w, err := p.varRef()
		if err != nil {
			return nil, err
		}
		a.Vars = append(a.Vars, w)
		return a, nil

	case p.atWord("reaches"):
		p.pos++
		if err := p.expectWord("phi"); err != nil {
			return nil, err
		}
		if err := p.expectWord("node"); err != nil {
			return nil, err
		}
		phi, err := p.varRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("from"); err != nil {
			return nil, err
		}
		from, err := p.varRef()
		if err != nil {
			return nil, err
		}
		return &Atomic{Kind: AtomReachesPhi, Vars: []Var{v, phi, from}}, nil

	default:
		// dominance forms: [does not] [strictly] [data|control flow] [post] dominates
		a := &Atomic{Kind: AtomDominates, Vars: []Var{v}}
		if p.atWord("does") {
			p.pos++
			if err := p.expectWord("not"); err != nil {
				return nil, err
			}
			a.Negated = true
		}
		if p.acceptWord("strictly") {
			a.Strict = true
		}
		if p.acceptWord("data") {
			if err := p.expectWord("flow"); err != nil {
				return nil, err
			}
			a.Flow = FlowData
		} else if p.acceptWord("control") {
			if err := p.expectWord("flow"); err != nil {
				return nil, err
			}
			a.Flow = FlowControl
		}
		if p.acceptWord("post") {
			a.Post = true
		}
		if !p.acceptWord("dominates") {
			return nil, p.errf("expected dominance atomic, found %s", p.cur())
		}
		w, err := p.varRef()
		if err != nil {
			return nil, err
		}
		a.Vars = append(a.Vars, w)
		return a, nil
	}
}

// isAtomic parses the "... is ..." atomics after the leading var and "is".
func (p *parser) isAtomic(v Var) (Constraint, error) {
	a := &Atomic{Vars: []Var{v}}
	switch {
	case p.atWord("not"):
		p.pos++
		if err := p.expectWord("the"); err != nil {
			return nil, err
		}
		if err := p.expectWord("same"); err != nil {
			return nil, err
		}
		if err := p.expectWord("as"); err != nil {
			return nil, err
		}
		w, err := p.varRef()
		if err != nil {
			return nil, err
		}
		a.Kind = AtomSameAs
		a.Negated = true
		a.Vars = append(a.Vars, w)
		return a, nil

	case p.atWord("the"):
		p.pos++
		if err := p.expectWord("same"); err != nil {
			return nil, err
		}
		if err := p.expectWord("as"); err != nil {
			return nil, err
		}
		w, err := p.varRef()
		if err != nil {
			return nil, err
		}
		a.Kind = AtomSameAs
		a.Vars = append(a.Vars, w)
		return a, nil

	case p.atWord("integer") || p.atWord("float") || p.atWord("pointer"):
		a.Kind = AtomTypeIs
		a.TypeName = p.next().text
		if p.atWord("constant") {
			p.pos++
			if err := p.expectWord("zero"); err != nil {
				return nil, err
			}
			a.ConstantZero = true
		}
		return a, nil

	case p.atWord("unused"):
		p.pos++
		a.Kind = AtomClassIs
		a.ClassName = "unused"
		return a, nil

	case p.atWord("a") || p.atWord("an"):
		p.pos++
		switch {
		case p.acceptWord("constant"):
			a.Kind = AtomClassIs
			a.ClassName = "constant"
		case p.acceptWord("compile"):
			if err := p.expectWord("time"); err != nil {
				return nil, err
			}
			if err := p.expectWord("value"); err != nil {
				return nil, err
			}
			a.Kind = AtomClassIs
			a.ClassName = "compiletime"
		case p.acceptWord("argument"):
			a.Kind = AtomClassIs
			a.ClassName = "argument"
		case p.acceptWord("instruction"):
			a.Kind = AtomClassIs
			a.ClassName = "instruction"
		default:
			return nil, p.errf("unknown class %s", p.cur())
		}
		return a, nil

	case p.atWord("first") || p.atWord("second") || p.atWord("third") || p.atWord("fourth"):
		word := p.next().text
		if err := p.expectWord("argument"); err != nil {
			return nil, err
		}
		if err := p.expectWord("of"); err != nil {
			return nil, err
		}
		w, err := p.varRef()
		if err != nil {
			return nil, err
		}
		a.Kind = AtomArgOf
		a.Vars = append(a.Vars, w)
		switch word {
		case "first":
			a.ArgIndex = 0
		case "second":
			a.ArgIndex = 1
		case "third":
			a.ArgIndex = 2
		case "fourth":
			a.ArgIndex = 3
		}
		return a, nil

	case p.at(tWord) && idlOpcodes[p.cur().text]:
		a.Kind = AtomOpcodeIs
		a.Opcode = p.next().text
		if err := p.expectWord("instruction"); err != nil {
			return nil, err
		}
		return a, nil
	}
	return nil, p.errf("unknown atomic after 'is': %s", p.cur())
}
