package idl

import "fmt"

type tkind int

const (
	tEOF tkind = iota
	tWord
	tNum
	tPunct
)

type tok struct {
	kind      tkind
	text      string
	num       int
	line, col int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexIDL scans IDL source into tokens. Comments run from '#' to end of line.
func lexIDL(src string) ([]tok, error) {
	var toks []tok
	line, col := 1, 1
	i := 0
	adv := func() {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		i++
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv()
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				adv()
			}
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			start := i
			sl, sc := line, col
			for i < len(src) && (src[i] == '_' || src[i] >= 'a' && src[i] <= 'z' ||
				src[i] >= 'A' && src[i] <= 'Z' || src[i] >= '0' && src[i] <= '9') {
				adv()
			}
			toks = append(toks, tok{kind: tWord, text: src[start:i], line: sl, col: sc})
		case c >= '0' && c <= '9':
			start := i
			sl, sc := line, col
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				adv()
			}
			n := 0
			for _, d := range src[start:i] {
				n = n*10 + int(d-'0')
			}
			toks = append(toks, tok{kind: tNum, text: src[start:i], num: n, line: sl, col: sc})
		case c == '.':
			sl, sc := line, col
			if i+1 < len(src) && src[i+1] == '.' {
				adv()
				adv()
				toks = append(toks, tok{kind: tPunct, text: "..", line: sl, col: sc})
			} else {
				adv()
				toks = append(toks, tok{kind: tPunct, text: ".", line: sl, col: sc})
			}
		case c == '{' || c == '}' || c == '(' || c == ')' || c == '[' || c == ']' ||
			c == '=' || c == ',' || c == '+' || c == '-':
			toks = append(toks, tok{kind: tPunct, text: string(c), line: line, col: col})
			adv()
		default:
			return nil, fmt.Errorf("idl: %d:%d: unexpected character %q", line, col, string(c))
		}
	}
	toks = append(toks, tok{kind: tEOF, line: line, col: col})
	return toks, nil
}
