// Package lint assembles the idiomvet analyzer suite. Each analyzer pins one
// invariant the repo's tests can only probe pointwise:
//
//   - mapdeterminism — map iteration order must not reach wire output,
//     golden files, or similarity scores (PR 7 golden flake class),
//   - cancelpoll — solver candidate loops poll cancellation per candidate
//     (PR 9 latency discipline),
//   - fsyncrename — blob-store renames publish only fsynced temp files
//     (PR 8 durability contract),
//   - errenvelope — every non-2xx HTTP response carries the v1 error
//     envelope (PR 6 API contract),
//   - wallclock — solve and merge paths stay wall-clock free so memoized
//     payloads replay byte-identically (PR 8 warm-state determinism).
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/cancelpoll"
	"repro/internal/lint/errenvelope"
	"repro/internal/lint/fsyncrename"
	"repro/internal/lint/mapdeterminism"
	"repro/internal/lint/wallclock"
)

// Suite is every idiomvet analyzer, in the order findings group in output.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapdeterminism.Analyzer,
		cancelpoll.Analyzer,
		fsyncrename.Analyzer,
		errenvelope.Analyzer,
		wallclock.Analyzer,
	}
}
