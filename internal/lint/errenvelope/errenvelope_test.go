package errenvelope_test

import (
	"testing"

	"repro/internal/lint/errenvelope"
	"repro/internal/lint/linttest"
)

func TestErrEnvelope(t *testing.T) {
	linttest.Run(t, errenvelope.Analyzer, "a")
}
