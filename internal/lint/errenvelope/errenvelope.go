// Package errenvelope makes the PR 6 error contract structural: every
// non-2xx response from the HTTP API carries the uniform
// {"error":{code,message,retry_after_ms?}} envelope, which holds by
// construction only if every error status flows through the writeError
// helpers. A stray http.Error or bare WriteHeader(4xx/5xx) ships a non-2xx
// without an envelope, and clients parsing envelopes see garbage.
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the errenvelope check.
var Analyzer = &analysis.Analyzer{
	Name:      "errenvelope",
	Doc:       "flags error responses written outside the writeError helpers",
	Rationale: "every non-2xx must carry the v1 error envelope; write errors through writeError/writeErrorRetry, never http.Error or a bare WriteHeader(>=400) (PR 6 contract)",
	Scope:     []string{"internal/httpapi"},
	Run:       run,
}

// allowedFuncs are the helpers that own status-line writing. writeJSON is
// the shared encoder both success and envelope paths go through.
var allowedFuncs = map[string]bool{
	"writeError":      true,
	"writeErrorRetry": true,
	"writeJSON":       true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allowedFuncs[fd.Name.Name] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case isHTTPError(pass, sel):
			pass.Reportf(call.Pos(), "http.Error bypasses the v1 error envelope; use writeError")
		case sel.Sel.Name == "WriteHeader" && len(call.Args) == 1:
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil {
				pass.Reportf(call.Pos(), "WriteHeader with a non-constant status outside the writeError helpers (an error status here would skip the envelope)")
				return true
			}
			if v, exact := constant.Int64Val(tv.Value); exact && v >= 400 {
				pass.Reportf(call.Pos(), "WriteHeader(%d) outside the writeError helpers skips the v1 error envelope", v)
			}
		}
		return true
	})
}

// isHTTPError reports whether sel references net/http.Error.
func isHTTPError(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Error" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "net/http"
}
