// Package a seeds the errenvelope analyzer: error statuses must flow
// through the writeError helpers so every non-2xx carries the v1 envelope.
package a

import "net/http"

func handlerHTTPError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest) // want "http.Error bypasses the v1 error envelope"
}

func handlerBareHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusInternalServerError) // want `WriteHeader\(500\) outside the writeError helpers`
}

func handlerNonConst(w http.ResponseWriter, status int) {
	w.WriteHeader(status) // want "WriteHeader with a non-constant status"
}

// Success statuses outside the helpers are fine — the envelope contract only
// covers errors.
func handlerOK(w http.ResponseWriter) {
	w.WriteHeader(http.StatusAccepted)
}

// The helpers themselves own the status line.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.WriteHeader(status)
	http.Error(w, msg, status)
}

func writeErrorRetry(w http.ResponseWriter, status int) {
	w.WriteHeader(status)
}

func writeJSON(w http.ResponseWriter, status int) {
	w.WriteHeader(status)
}

// healthGate is a documented exception: a bare 503 probe response that
// monitoring reads by status only.
func healthGate(w http.ResponseWriter, ready bool) {
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable) //lint:allow errenvelope probe endpoint, status-only contract with the LB
	}
}
