package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// TestSuiteMetadata pins the suite's shape: unique names, a rationale on
// every analyzer (the failure output depends on it), and an explicit scope
// (a scope-less invariant analyzer would silently run everywhere).
func TestSuiteMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.Suite() {
		if a.Name == "" || seen[a.Name] {
			t.Errorf("duplicate or empty analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Rationale == "" {
			t.Errorf("%s: empty rationale; findings would be unexplained", a.Name)
		}
		if len(a.Scope) == 0 {
			t.Errorf("%s: empty scope; invariant analyzers must declare their packages", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s: nil Run", a.Name)
		}
	}
	if len(seen) != 5 {
		t.Errorf("suite has %d analyzers, want 5", len(seen))
	}
}

// TestSuiteCleanOnRepo runs every analyzer over the whole module — the same
// thing `make lint` does through cmd/idiomvet — and fails on any finding.
// This keeps the invariants enforced by plain `go test ./...` even where the
// Makefile isn't used.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module via go list -export")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	suite := lint.Suite()
	for _, p := range pkgs {
		diags, err := analysis.Run(suite, &analysis.Target{
			PkgPath: p.PkgPath,
			Fset:    p.Fset,
			Files:   p.Files,
			Types:   p.Types,
			Info:    p.Info,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
}
