// Package linttest is the analysistest-style harness for the repo's lint
// analyzers: a testdata package annotates the lines it expects findings on
// with `// want "regexp"` comments, the harness runs the analyzer and fails
// on any mismatch in either direction — a seeded violation that stops being
// caught and a clean idiom that starts being flagged are both test failures.
package linttest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// TestData returns the absolute path of the calling test's testdata dir.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads testdata/src/<pkg>, applies the analyzer (scope bypassed — the
// testdata package path never matches a real scope), and matches findings
// against the package's want comments. Suppression comments work exactly as
// in production, so testdata can pin the //lint:allow behavior too.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(TestData(t), "src", pkg)
	p, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	unscoped := *a
	unscoped.Scope = nil
	// The testdata-relative path stands in for the import path, so analyzers
	// that key behavior on PkgPath (wallclock's approved sites) can be
	// exercised by naming the testdata directory after the real package.
	diags, err := analysis.Run([]*analysis.Analyzer{&unscoped}, &analysis.Target{
		PkgPath: pkg,
		Fset:    p.Fset,
		Files:   p.Files,
		Types:   p.Types,
		Info:    p.Info,
	})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, p.Fset, dir)

	// Match every diagnostic against the wants on its line.
	matched := map[*want]bool{}
	for _, d := range diags {
		key := lineKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		var hit *want
		for _, w := range wants[key] {
			if !matched[w] && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s:%d: unexpected finding: %s", key.file, key.line, d.Message)
			continue
		}
		matched[hit] = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants scans the testdata package's sources for want comments. Each
// is one or more Go-quoted regexps: // want "foo" `bar.*`
func collectWants(t *testing.T, fset *token.FileSet, dir string) map[lineKey][]*want {
	t.Helper()
	out := map[lineKey][]*want{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := lineKey{e.Name(), i + 1}
			for _, pat := range splitQuoted(t, e.Name(), i+1, strings.TrimSpace(m[1])) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, pat, err)
				}
				out[key] = append(out[key], &want{re: re})
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go string literals.
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	for s != "" {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		q := s[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s:%d: want patterns must be quoted strings, got %q", file, line, s)
		}
		end := strings.IndexByte(s[1:], q)
		for q == '"' && end >= 0 && s[end] == '\\' { // skip escaped quotes
			next := strings.IndexByte(s[end+2:], q)
			if next < 0 {
				end = -1
				break
			}
			end += next + 1
		}
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want pattern: %s", file, line, s)
		}
		lit := s[:end+2]
		un, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want literal %s: %v", file, line, lit, err)
		}
		out = append(out, un)
		s = s[end+2:]
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: empty want comment", file, line)
	}
	return out
}
