package fsyncrename_test

import (
	"testing"

	"repro/internal/lint/fsyncrename"
	"repro/internal/lint/linttest"
)

func TestFsyncRename(t *testing.T) {
	linttest.Run(t, fsyncrename.Analyzer, "a")
}
