// Package a seeds the fsyncrename analyzer: goodWrite is the store's
// canonical temp+fsync+rename sequence, badWrite drops the Sync — the torn
// write a crash between rename and writeback would expose.
package a

import (
	"os"
	"path/filepath"
)

func goodWrite(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "blob-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), filepath.Join(dir, "final"))
}

func badWrite(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "blob-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), filepath.Join(dir, "final")) // want "os.Rename without a preceding File.Sync"
}

// renameOnly never wrote the source in this function; still flagged — the
// invariant is per-function so reviewers must either move the rename next to
// the write or document the exception.
func renameOnly(from, to string) error {
	return os.Rename(from, to) // want "os.Rename without a preceding File.Sync"
}

// suppressed is the documented exception form.
func suppressed(from, to string) error {
	return os.Rename(from, to) //lint:allow fsyncrename source was synced by the caller that produced it
}
