// Package fsyncrename pins the durability contract of the blob store: a
// temp file renamed into place must be fsynced first, or a crash after the
// rename can leave a validly-named file whose contents never reached disk —
// exactly the torn-blob class the store's integrity container exists to
// catch, except the container itself would be torn. PR 8's store writes
// temp+fsync+rename; this analyzer makes removing the fsync a CI failure.
package fsyncrename

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the fsyncrename check.
var Analyzer = &analysis.Analyzer{
	Name:      "fsyncrename",
	Doc:       "flags os.Rename calls not preceded by a File.Sync in the same function",
	Rationale: "crash-safe blob writes are temp+fsync+rename: renaming an unsynced temp file can publish a name whose bytes never hit disk (store.go durability contract)",
	Scope:     []string{"internal/store"},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var renames []*ast.CallExpr
	var syncs []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case isPkgFunc(pass, sel, "os", "Rename"):
			renames = append(renames, call)
		case sel.Sel.Name == "Sync" && isOSFile(pass, sel.X):
			syncs = append(syncs, call.Pos())
		}
		return true
	})
	for _, r := range renames {
		ok := false
		for _, s := range syncs {
			if s < r.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(r.Pos(), "os.Rename without a preceding File.Sync on the written temp file in this function")
		}
	}
}

// isPkgFunc reports whether sel is a reference to pkg.fn where pkg is the
// named standard-library package.
func isPkgFunc(pass *analysis.Pass, sel *ast.SelectorExpr, pkgPath, fn string) bool {
	if sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// isOSFile reports whether e's static type is *os.File.
func isOSFile(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	return t != nil && types.TypeString(t, nil) == "*os.File"
}
