package mapdeterminism_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/mapdeterminism"
)

func TestMapDeterminism(t *testing.T) {
	linttest.Run(t, mapdeterminism.Analyzer, "a")
}
