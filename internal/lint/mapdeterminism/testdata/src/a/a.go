// Package a seeds the mapdeterminism analyzer: each flagged line reproduces
// an order-leaking idiom (the first one is the PR 7 golden-flake bug
// verbatim), each clean function is a production pattern the analyzer must
// keep accepting.
package a

import "sort"

// scoreCoverage is the PR 7 bug: a float sum accumulated in map order. The
// rounding of float addition is not commutative, so the last ulp of the
// score varied run to run and golden files flaked.
func scoreCoverage(demand map[string]float64) float64 {
	var sum float64
	for _, w := range demand { // want "accumulates .= into sum in map order"
		sum += w
	}
	return sum
}

// scoreCoverageFixed is the PR 7 fix: collect keys, sort, then accumulate.
func scoreCoverageFixed(demand map[string]float64) float64 {
	keys := make([]string, 0, len(demand))
	for k := range demand {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += demand[k]
	}
	return sum
}

// countOps accumulates integers: addition over int is commutative, so map
// order cannot reach the result.
func countOps(hist map[string]int) int {
	var n int
	for _, c := range hist { // int += is order-insensitive
		n += c
	}
	return n
}

// mergeDemand writes map-to-map: a map is an unordered sink.
func mergeDemand(dst, src map[string]int) {
	for k, v := range src {
		dst[k] += v
	}
}

// dropZeros deletes during range — explicitly allowed by the spec and
// order-insensitive.
func dropZeros(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// collectUnsorted appends map contents and returns them unsorted.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "collects into out in map order without sorting"
		out = append(out, k)
	}
	return out
}

// collectSorted is the same collect with the sort after the loop.
func collectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lastWins keeps one loop-dependent value: the survivor depends on order.
func lastWins(m map[string]string) string {
	var picked string
	for _, v := range m { // want "assigns picked per iteration"
		picked = v
	}
	return picked
}

// flagSet assigns a loop-independent value: every iteration writes the same
// thing, so order is irrelevant.
func flagSet(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v > 0 {
			found = true
		}
	}
	return found
}

// firstValue returns mid-loop with a loop-dependent value.
func firstValue(m map[string]int) int {
	for _, v := range m { // want "returns a value chosen by map iteration order"
		return v
	}
	return 0
}

// streamKeys sends on a channel per iteration: receive order follows map
// order.
func streamKeys(m map[string]int, ch chan string) {
	for k := range m { // want "sends on a channel per iteration"
		ch <- k
	}
}

// emit calls an order-sensitive sink per iteration.
func emit(m map[string]int, sink func(string)) {
	for k := range m { // want "calls sink per iteration"
		sink(k)
	}
}

// suppressed shows the escape hatch: the allow comment names the analyzer
// and documents why the invariant does not apply.
func suppressed(m map[string]float64) float64 {
	var sum float64
	for _, w := range m { //lint:allow mapdeterminism result feeds a tolerance comparison, not a golden file
		sum += w
	}
	return sum
}
