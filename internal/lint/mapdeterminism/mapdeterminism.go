// Package mapdeterminism flags `range` over a map whose loop body exposes
// the iteration order — in the packages where that order can reach wire
// encoding, golden files, or similarity scores. PR 7 shipped exactly this
// bug: a float demand-coverage sum accumulated in map order varied the last
// ulp of a score that golden files pin.
//
// The analyzer reasons about sinks, not sources: a map-range body is fine as
// long as every statement is order-insensitive —
//
//   - writes into another map (set/merge/copy),
//   - delete(),
//   - commutative integer/boolean accumulation (+=, |=, ++, counters),
//   - assignments to variables declared inside the loop,
//   - assignments of loop-independent values (found = true),
//   - appends into a slice that the function sorts after the loop
//     (the collect-then-sort idiom),
//   - plain control flow over those.
//
// Anything else — floating-point accumulation (rounding is not commutative),
// appends never sorted, per-iteration writes to outer variables, calls with
// external effects, channel sends, go/defer, returns of loop-dependent
// values — depends on the order Go deliberately randomizes, and is flagged.
package mapdeterminism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
)

// Analyzer is the mapdeterminism check.
var Analyzer = &analysis.Analyzer{
	Name:      "mapdeterminism",
	Doc:       "flags map iteration whose order can leak into wire output, golden files, or scores",
	Rationale: "wire encodings, golden files and similarity scores must be byte-identical across runs; Go randomizes map order, so collect keys and sort before anything order-sensitive (PR 7 golden flake)",
	Scope: []string{
		"idiomatic",
		"internal/httpapi",
		"internal/similarity",
		"internal/report",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		c := &checker{pass: pass, loop: rs, fnBody: fd.Body}
		c.block(rs.Body)
		if c.reason != "" {
			pass.Reportf(rs.For, "map iteration order leaks: %s", c.reason)
		}
		// The body was classified wholesale (including nested map ranges,
		// which are judged against this loop's locals and are strictly more
		// local); don't descend and double-report.
		return false
	})
}

// checker classifies one map-range body. The first order-sensitive statement
// wins; reason stays empty when the body is order-insensitive.
type checker struct {
	pass   *analysis.Pass
	loop   *ast.RangeStmt
	fnBody *ast.BlockStmt
	reason string
}

func (c *checker) fail(pos token.Pos, format string, args ...any) {
	if c.reason != "" {
		return
	}
	p := c.pass.Fset.Position(pos)
	c.reason = fmt.Sprintf(format, args...) + fmt.Sprintf(" (line %d)", p.Line)
}

// loopLocal reports whether the root identifier of e is declared within the
// loop (including the range's own key/value variables).
func (c *checker) loopLocal(e ast.Expr) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= c.loop.Pos() && obj.Pos() <= c.loop.End()
}

// loopDependent reports whether e reads any loop-declared variable.
func (c *checker) loopDependent(e ast.Expr) bool {
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil &&
				obj.Pos() >= c.loop.Pos() && obj.Pos() <= c.loop.End() {
				dep = true
			}
		}
		return !dep
	})
	return dep
}

func (c *checker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
		if c.reason != "" {
			return
		}
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch t := s.(type) {
	case *ast.AssignStmt:
		c.assign(t)
	case *ast.IncDecStmt:
		c.incDec(t)
	case *ast.ExprStmt:
		c.exprStmt(t)
	case *ast.DeclStmt, *ast.EmptyStmt, *ast.BranchStmt:
		// declarations introduce locals; break/continue don't leak order.
	case *ast.ReturnStmt:
		for _, r := range t.Results {
			if c.loopDependent(r) {
				c.fail(t.Pos(), "returns a value chosen by map iteration order")
				return
			}
		}
	case *ast.IfStmt:
		if t.Init != nil {
			c.stmt(t.Init)
		}
		c.block(t.Body)
		if t.Else != nil && c.reason == "" {
			c.stmt(t.Else)
		}
	case *ast.BlockStmt:
		c.block(t)
	case *ast.ForStmt:
		if t.Init != nil {
			c.stmt(t.Init)
		}
		if t.Post != nil {
			c.stmt(t.Post)
		}
		c.block(t.Body)
	case *ast.RangeStmt:
		c.block(t.Body)
	case *ast.SwitchStmt:
		if t.Init != nil {
			c.stmt(t.Init)
		}
		for _, cc := range t.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				c.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range t.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				c.stmt(st)
			}
		}
	case *ast.SendStmt:
		c.fail(t.Pos(), "sends on a channel per iteration (receive order follows map order)")
	case *ast.GoStmt:
		c.fail(t.Pos(), "spawns a goroutine per iteration in map order")
	case *ast.DeferStmt:
		c.fail(t.Pos(), "defers a call per iteration in map order")
	case *ast.LabeledStmt:
		c.stmt(t.Stmt)
	default:
		c.fail(s.Pos(), "statement of kind %T may depend on map iteration order", s)
	}
}

func (c *checker) assign(a *ast.AssignStmt) {
	if a.Tok == token.DEFINE {
		return // introduces loop locals
	}
	for i, lhs := range a.Lhs {
		if isBlank(lhs) || c.isMapIndex(lhs) || c.loopLocal(lhs) {
			continue
		}
		// Writing to state that outlives the loop.
		switch a.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
			token.XOR_ASSIGN, token.MUL_ASSIGN:
			if c.commutativeType(lhs) {
				continue
			}
			c.fail(a.Pos(), "accumulates %s into %s in map order (floating-point rounding is order-dependent)",
				a.Tok, types.ExprString(lhs))
			return
		case token.ASSIGN:
			if i < len(a.Rhs) {
				if call, ok := appendCall(a.Rhs[i]); ok && sameExpr(call.Args[0], lhs) {
					if !c.sortedAfterLoop(lhs) {
						c.fail(a.Pos(), "collects into %s in map order without sorting it afterwards",
							types.ExprString(lhs))
					}
					continue
				}
				if !c.loopDependent(a.Rhs[i]) {
					continue // same value every iteration: deterministic
				}
			}
			c.fail(a.Pos(), "assigns %s per iteration (the surviving value depends on map order)",
				types.ExprString(lhs))
			return
		default:
			c.fail(a.Pos(), "%s on %s in map order", a.Tok, types.ExprString(lhs))
			return
		}
	}
}

func (c *checker) incDec(s *ast.IncDecStmt) {
	if c.isMapIndex(s.X) || c.loopLocal(s.X) || c.commutativeType(s.X) {
		return
	}
	c.fail(s.Pos(), "%s on %s in map order", s.Tok, types.ExprString(s.X))
}

func (c *checker) exprStmt(s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		c.fail(s.Pos(), "expression statement may depend on map iteration order")
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "delete", "len", "cap", "panic":
			return // delete is order-insensitive; panic aborts either way
		}
	case *ast.SelectorExpr:
		// Methods on loop-local receivers only touch per-iteration state.
		if c.loopLocal(fun.X) {
			return
		}
	}
	c.fail(s.Pos(), "calls %s per iteration (effects happen in map order)", types.ExprString(call.Fun))
}

// isMapIndex reports whether e indexes into a map (an order-insensitive sink).
func (c *checker) isMapIndex(e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := c.pass.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// commutativeType reports whether accumulating into e is order-insensitive:
// integers and booleans are; floats, strings and complex numbers are not.
func (c *checker) commutativeType(e ast.Expr) bool {
	t := c.pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	i := b.Info()
	return i&types.IsInteger != 0 || i&types.IsBoolean != 0
}

// sortedAfterLoop reports whether a sort.*/slices.* call after the loop
// mentions the collected variable — the collect-then-sort idiom.
func (c *checker) sortedAfterLoop(collected ast.Expr) bool {
	want := boundary(types.ExprString(collected))
	found := false
	ast.Inspect(c.fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.loop.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if want.MatchString(types.ExprString(arg)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func boundary(expr string) *regexp.Regexp {
	return regexp.MustCompile(`(?:^|[^\pL\pN_.])` + regexp.QuoteMeta(expr) + `(?:$|[^\pL\pN_])`)
}

func appendCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	return call, true
}

func sameExpr(a, b ast.Expr) bool {
	return types.ExprString(a) == types.ExprString(b)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}
