// Package analysis is the repo-local analyzer framework behind cmd/idiomvet:
// the same Analyzer/Pass/Diagnostic shape as golang.org/x/tools/go/analysis,
// reimplemented on the standard library because the build environment is
// fully offline (no module proxy, no vendored x/tools). Analyzers written
// against it are deliberately API-compatible in spirit, so porting them onto
// the real framework later is mechanical.
//
// Two conventions the driver enforces uniformly:
//
//   - Scope: each analyzer declares the import-path suffixes it applies to;
//     the driver runs it only on matching packages. The test harness bypasses
//     scoping so testdata packages exercise the analyzer directly.
//
//   - Suppression: a finding on a line carrying (or directly below) a
//     `//lint:allow <name> <reason>` comment is dropped. The reason is
//     mandatory — an allow comment without one is itself reported, so every
//     suppression in the tree documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// //lint:allow comments.
	Name string
	// Doc is a short description of what the analyzer flags.
	Doc string
	// Rationale is the one-line statement of the invariant the analyzer
	// protects — printed under every finding so a CI failure is actionable
	// without reading analyzer source.
	Rationale string
	// Scope lists import-path suffixes the analyzer applies to. The driver
	// skips packages matching none of them; an empty scope means every
	// package.
	Scope []string
	// Run reports findings in one package through pass.Report.
	Run func(pass *Pass) error
}

// AppliesTo reports whether pkgPath falls under the analyzer's scope.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Rationale echoes the analyzer's invariant line.
	Rationale string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:       p.Fset.Position(pos),
		Analyzer:  p.Analyzer.Name,
		Message:   fmt.Sprintf(format, args...),
		Rationale: p.Analyzer.Rationale,
	})
}

// TypeOf is a nil-safe shorthand for the static type of e.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// IsTestFile reports whether the file's position is in a _test.go file.
// Analyzers skip test files: the invariants guard production paths, and
// tests legitimately use wall clocks, raw status codes, and map iteration.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// allowRe matches `//lint:allow <name> <reason>`; the reason group must be
// non-empty for the suppression to count.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+(\S+)\s*(.*)$`)

// suppressions maps file → line → analyzer names allowed on that line.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans every comment in the files. An allow comment
// suppresses matching findings on its own line and on the line below it (so
// it can sit on the flagged line or alone on the line above). Malformed
// allows — missing reason — are returned as diagnostics.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Pos:       pos,
						Analyzer:  "lint",
						Message:   fmt.Sprintf("//lint:allow %s needs a reason", m[1]),
						Rationale: "every suppression must document why the invariant does not apply",
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					lines[ln][m[1]] = true
				}
			}
		}
	}
	return sup, bad
}

// Target is the package shape the runner analyzes; satisfied by
// loader.Package without importing it (keeps the dependency edge one-way).
type Target struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Run applies every in-scope analyzer to the package and returns surviving
// findings: suppressed ones are dropped, malformed suppressions are added.
// Findings come back sorted by position.
func Run(analyzers []*Analyzer, t *Target) ([]Diagnostic, error) {
	sup, bad := collectSuppressions(t.Fset, t.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		if !a.AppliesTo(t.PkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Types,
			PkgPath:   t.PkgPath,
			TypesInfo: t.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, t.PkgPath, err)
		}
		for _, d := range pass.diags {
			if lines, ok := sup[d.Pos.Filename]; ok && lines[d.Pos.Line][d.Analyzer] {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, bad...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
