package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse turns one source string into a Target (no type info — the framework
// paths under test never touch it).
func parse(t *testing.T, src string) *Target {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Target{PkgPath: "example/pkg", Fset: fset, Files: []*ast.File{f}, Info: nil}
}

// reportAtLine builds an analyzer that flags line n of the file.
func reportAtLine(name string, line int) *Analyzer {
	return &Analyzer{
		Name:      name,
		Doc:       "test analyzer",
		Rationale: "test invariant",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if n == nil {
						return true
					}
					if p.Fset.Position(n.Pos()).Line == line {
						p.Reportf(n.Pos(), "finding on line %d", line)
						return false
					}
					return true
				})
			}
			return nil
		},
	}
}

func TestSuppressionSameLine(t *testing.T) {
	tgt := parse(t, `package x

var v = 1 //lint:allow demo constant is arbitrary
`)
	diags, err := Run([]*Analyzer{reportAtLine("demo", 3)}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("suppressed finding still reported: %v", diags)
	}
}

func TestSuppressionLineAbove(t *testing.T) {
	tgt := parse(t, `package x

//lint:allow demo documented exception
var v = 1
`)
	diags, err := Run([]*Analyzer{reportAtLine("demo", 4)}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("suppressed finding still reported: %v", diags)
	}
}

func TestSuppressionWrongAnalyzerDoesNotApply(t *testing.T) {
	tgt := parse(t, `package x

var v = 1 //lint:allow other not this analyzer
`)
	diags, err := Run([]*Analyzer{reportAtLine("demo", 3)}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want the unsuppressed finding", len(diags))
	}
}

func TestAllowWithoutReasonIsReported(t *testing.T) {
	tgt := parse(t, `package x

var v = 1 //lint:allow demo
`)
	diags, err := Run(nil, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "needs a reason") {
		t.Fatalf("malformed allow not reported: %v", diags)
	}
	// And a reasonless allow must not suppress anything either.
	diags, err = Run([]*Analyzer{reportAtLine("demo", 3)}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want finding + malformed-allow: %v", len(diags), diags)
	}
}

func TestAppliesTo(t *testing.T) {
	a := &Analyzer{Name: "demo", Scope: []string{"internal/constraint"}}
	for path, want := range map[string]bool{
		"internal/constraint":       true,
		"repro/internal/constraint": true,
		"repro/internal/detect":     false,
		"myinternal/constraint":     false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	empty := &Analyzer{Name: "all"}
	if !empty.AppliesTo("anything/at/all") {
		t.Error("empty scope must apply everywhere")
	}
}

func TestOutOfScopeAnalyzerSkipped(t *testing.T) {
	tgt := parse(t, `package x

var v = 1
`)
	a := reportAtLine("demo", 3)
	a.Scope = []string{"internal/elsewhere"}
	diags, err := Run([]*Analyzer{a}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope analyzer ran: %v", diags)
	}
}
