// Package a seeds the cancelpoll analyzer with the solver's loop shapes:
// the flagged functions reproduce the two historical bugs (the check-free
// chunk loop PR 9 retrofitted per-candidate polls into, and the unwind loop
// PR 10 fixed), the clean ones are the disciplines the production solver
// uses today.
package a

type val int

type solver struct {
	Cancel    chan struct{}
	cancelled bool
}

func (s *solver) candidateList(v string) []val        { return nil }
func (s *solver) candidates(v string) ([]val, bool)   { return nil, false }
func (s *solver) tryCandidate(k int, v string, c val) {}
func (s *solver) pollCancel() bool                    { return s.cancelled }

// stepBad is the unwind bug: enumerates candidates and never reacts to a
// cancellation observed deeper in the recursion.
func (s *solver) stepBad(k int, v string) {
	for _, c := range s.candidateList(v) { // want "never checks cancellation"
		s.tryCandidate(k, v, c)
	}
}

// stepGood observes the cancelled flag once per candidate.
func (s *solver) stepGood(k int, v string) {
	for _, c := range s.candidateList(v) {
		s.tryCandidate(k, v, c)
		if s.cancelled {
			return
		}
	}
}

// chunkBad is the PR 9 bug: a branch chunk can be smaller than the periodic
// poll interval, so a chunk loop with no per-candidate check has unbounded
// cancellation latency.
func (s *solver) chunkBad(cands []val) {
	for _, c := range cands { // want "never checks cancellation"
		s.tryCandidate(0, "v", c)
	}
}

// chunkGood is the production discipline: flag check plus a non-blocking
// channel poll before every candidate.
func (s *solver) chunkGood(cands []val) {
	for _, c := range cands {
		if s.cancelled {
			return
		}
		if s.Cancel != nil {
			select {
			case <-s.Cancel:
				s.cancelled = true
				return
			default:
			}
		}
		s.tryCandidate(0, "v", c)
	}
}

// chunkHelper polls through a named helper; any callee mentioning cancel
// counts as a check.
func (s *solver) chunkHelper(cands []val) {
	for _, c := range cands {
		if s.pollCancel() {
			return
		}
		s.tryCandidate(0, "v", c)
	}
}

// indexLoop drives tryCandidate from a plain for loop; same rules apply.
func (s *solver) indexLoop(cands []val) {
	for i := 0; i < len(cands); i++ { // want "never checks cancellation"
		s.tryCandidate(0, "v", cands[i])
	}
}

// closureCredit must not leak: a cancel check inside a nested function
// literal does not run per iteration of the outer loop.
func (s *solver) closureCredit(cands []val) {
	for _, c := range cands { // want "never checks cancellation"
		f := func() bool { return s.cancelled }
		_ = f
		s.tryCandidate(0, "v", c)
	}
}

// otherLoop iterates something that is not a candidate enumeration; the
// analyzer must leave it alone.
func (s *solver) otherLoop(steps []int) int {
	total := 0
	for _, st := range steps {
		total += st
	}
	return total
}

// suppressed documents a loop that is provably bounded.
func (s *solver) suppressed(cands []val) {
	for _, c := range cands[:1] { //lint:allow cancelpoll single candidate, bounded by construction
		s.tryCandidate(0, "v", c)
	}
}
