package cancelpoll_test

import (
	"testing"

	"repro/internal/lint/cancelpoll"
	"repro/internal/lint/linttest"
)

func TestCancelPoll(t *testing.T) {
	linttest.Run(t, cancelpoll.Analyzer, "a")
}
