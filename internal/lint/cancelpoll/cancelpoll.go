// Package cancelpoll pins the PR 9 cancellation discipline in the solver:
// every candidate-enumeration loop must react to cancellation once per
// candidate. The periodic 64-step poll inside step() alone is not enough —
// re-split branch chunks can be smaller than one polling interval, so a
// chunk loop that never checks can run to completion after the request was
// shed (the exact bug PR 9 retrofitted per-candidate polls for), and the
// sequential loop must at least observe the cancelled flag so a deep abort
// doesn't keep enumerating siblings through bind/eval work on the way out.
package cancelpoll

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the cancelpoll check.
var Analyzer = &analysis.Analyzer{
	Name:      "cancelpoll",
	Doc:       "flags candidate-enumeration loops in solve paths that never check cancellation",
	Rationale: "solver loops must poll Cancel (or observe the cancelled flag) every candidate: re-split chunks can be smaller than the 64-step poll interval, so a loop without a per-iteration check has unbounded cancellation latency (PR 9 retrofit)",
	Scope:     []string{"internal/constraint"},
	Run:       run,
}

// candidateNames mark range expressions that enumerate solver candidates.
var candidateNames = []string{"candidateList", "candidates"}

// pollCallRe matches helper calls that poll or observe cancellation.
var pollCallRe = regexp.MustCompile(`(?i)cancel`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				// A closure runs on its own schedule; its loops are checked
				// when the inspection reaches them, but a loop *containing*
				// a closure must not take credit for polls inside it.
				return true
			}
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.RangeStmt:
				if !isCandidateRange(loop) && !callsTryCandidate(loop.Body) {
					return true
				}
				body = loop.Body
			case *ast.ForStmt:
				if !callsTryCandidate(loop.Body) {
					return true
				}
				body = loop.Body
			default:
				return true
			}
			if !hasCancelCheck(body) {
				pass.Reportf(n.Pos(), "candidate-enumeration loop never checks cancellation; poll Cancel or observe the cancelled flag once per candidate")
			}
			return true
		})
	}
	return nil
}

// isCandidateRange reports whether the range expression enumerates solver
// candidates: a call to candidateList/candidates, or a variable whose name
// starts with "cand" (the chunk-slice convention).
func isCandidateRange(rs *ast.RangeStmt) bool {
	switch x := rs.X.(type) {
	case *ast.CallExpr:
		name := calleeName(x)
		for _, c := range candidateNames {
			if name == c {
				return true
			}
		}
	case *ast.Ident:
		return strings.HasPrefix(x.Name, "cand")
	}
	return false
}

// callsTryCandidate reports whether the loop body (outside nested function
// literals) calls tryCandidate — the shared per-candidate search body.
func callsTryCandidate(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && calleeName(call) == "tryCandidate" {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasCancelCheck reports whether the loop body (outside nested function
// literals) contains any accepted cancellation check:
//
//   - a select with a receive case on a channel expression mentioning Cancel,
//   - a call to a function or method whose name mentions cancel
//     (Cancelled, pollCancel, ...),
//   - a read of a field or variable named cancelled (observing the flag a
//     deeper periodic poll sets).
func hasCancelCheck(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			for _, cl := range t.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm != nil && recvMentionsCancel(cc.Comm) {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if pollCallRe.MatchString(calleeName(t)) {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if t.Sel.Name == "cancelled" {
				found = true
				return false
			}
		case *ast.Ident:
			if t.Name == "cancelled" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// recvMentionsCancel reports whether a select communication receives from an
// expression whose rendering mentions Cancel.
func recvMentionsCancel(comm ast.Stmt) bool {
	var expr ast.Expr
	switch t := comm.(type) {
	case *ast.ExprStmt:
		expr = t.X
	case *ast.AssignStmt:
		if len(t.Rhs) == 1 {
			expr = t.Rhs[0]
		}
	}
	un, ok := expr.(*ast.UnaryExpr)
	if !ok {
		return false
	}
	return strings.Contains(types.ExprString(un.X), "Cancel")
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
