package wallclock_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/wallclock"
)

// TestWallClock runs the analyzer over a package with no approved sites:
// every wall-clock read is a finding.
func TestWallClock(t *testing.T) {
	linttest.Run(t, wallclock.Analyzer, "a")
}

// TestWallClockApprovedSites runs it over a package whose path matches
// internal/detect, where the approved measurement sites are exempt.
func TestWallClockApprovedSites(t *testing.T) {
	linttest.Run(t, wallclock.Analyzer, "internal/detect")
}
