// Package wallclock keeps the solver and the detection merge paths
// wall-clock free. SolverSteps is the paper's deterministic cost metric and
// memoized solve payloads replay byte-identically across restarts; a
// time.Now anywhere in those paths is either dead weight or — worse — a
// value that leaks into output and breaks byte-identity between a fresh
// solve and a memo hit. Measurement has designated sites (module Elapsed
// timing, solve-cost recording, prescreen accounting); everything else is
// flagged, and a new measurement site must be added to the approved list or
// carry an explicit //lint:allow with its reason.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name:      "wallclock",
	Doc:       "flags time.Now/time.Since outside approved measurement sites",
	Rationale: "internal/constraint and internal/detect merge paths must be wall-clock free so SolverSteps and memoized solve payloads stay byte-identical across runs and restarts; measure time only at approved sites",
	Scope:     []string{"internal/constraint", "internal/detect"},
	Run:       run,
}

// approvedSites lists, per scoped package, the functions allowed to read the
// wall clock — the timing/measurement surface. Methods are Receiver.Name.
var approvedSites = map[string]map[string]bool{
	"internal/constraint": {},
	"internal/detect": {
		"Module":               true, // Result.Elapsed timing
		"Function":             true, // Result.Elapsed timing
		"Engine.Modules":       true, // batch Elapsed timing
		"Engine.solveResolved": true, // solve-cost measurement for RecordCost
		"Engine.prescreen":     true, // prescreen_ns accounting
		"Stream.SubmitJob":     true, // per-module wall-time start stamp
		"Stream.detect":        true, // per-module Elapsed + prescreen_ns
	},
}

func run(pass *analysis.Pass) error {
	approved := map[string]bool{}
	for suffix, set := range approvedSites {
		if pass.PkgPath == suffix || strings.HasSuffix(pass.PkgPath, "/"+suffix) {
			approved = set
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if approved[qualifiedName(fd)] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
		if !ok || pn.Imported().Path() != "time" {
			return true
		}
		pass.Reportf(call.Pos(), "wall-clock read time.%s in %s is outside the approved measurement sites",
			sel.Sel.Name, qualifiedName(fd))
		return true
	})
}

// qualifiedName renders a function as Name or Receiver.Name.
func qualifiedName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
