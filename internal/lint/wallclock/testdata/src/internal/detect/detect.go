// Package detect mirrors the real internal/detect package path so the
// analyzer's approved-sites table applies: the measurement functions may
// read the wall clock, everything else may not.
package detect

import "time"

type Engine struct{}

type Stream struct{}

// Module is an approved measurement site (Result.Elapsed timing).
func Module() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Engine.Modules is approved (batch Elapsed timing).
func (e *Engine) Modules() time.Time {
	return time.Now()
}

// Engine.prescreen is approved (prescreen_ns accounting).
func (e *Engine) prescreen() time.Time {
	return time.Now()
}

// Engine.merge is NOT on the approved list: merge paths must stay
// wall-clock free.
func (e *Engine) merge() time.Time {
	return time.Now() // want `wall-clock read time.Now in Engine.merge`
}

// Stream.drain is NOT approved either.
func (s *Stream) drain(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time.Since in Stream.drain`
}
