// Package a seeds the wallclock analyzer in a package with no approved
// sites (the internal/constraint situation): every wall-clock read is
// flagged.
package a

import "time"

func solve() int {
	start := time.Now() // want `wall-clock read time.Now in solve`
	_ = start
	return 0
}

func merge(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time.Since in merge`
}

type worker struct{}

func (w *worker) run() {
	_ = time.Now() // want `wall-clock read time.Now in worker.run`
}

// deadlines built from a caller-supplied clock are fine — only the global
// wall clock is order/restart-hostile.
func deadline(now time.Time, budget time.Duration) time.Time {
	return now.Add(budget)
}

// suppressed is the escape hatch for a measurement site not worth listing.
func suppressed() {
	_ = time.Now() //lint:allow wallclock one-off startup banner timestamp, never reaches solve output
}
