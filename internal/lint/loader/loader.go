// Package loader turns Go package patterns into parsed, type-checked
// packages for the lint analyzers, using only the standard library and the
// go tool itself: `go list -deps -export` compiles (or reuses from the build
// cache) export data for every dependency, and go/types checks each root
// package's source against that export data. This is the same architecture
// as golang.org/x/tools/go/packages, shrunk to exactly what a repo-local
// analyzer driver needs — the module has no external dependencies and the
// build environment may be fully offline, so vendoring the real framework is
// not an option.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked root package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File // non-test files, with comments
	Types   *types.Package
	Info    *types.Info
}

type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` for the patterns in dir and
// returns the decoded package records.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", derr)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists patterns relative to dir, type-checks every non-dependency
// package listed, and returns them in list order. Test files are excluded
// (go list without -test already lists only the plain package).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var roots []listPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, p := range roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, g := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, g))
		}
		pkg, err := check(fset, imp, p.ImportPath, p.Dir, paths)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir (every
// non-test .go file in it), resolving its imports — which must be standard
// library packages — through fresh export data. This is the entry point the
// linttest harness uses for testdata packages, which live outside the module.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, paths)
	if err != nil {
		return nil, err
	}

	// Resolve the imports' export data. The testdata package itself is not
	// part of any module, but its (standard library) imports list fine from
	// anywhere.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, im := range f.Imports {
			path := strings.Trim(im.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		pkgs, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})
	name := files[0].Name.Name
	return checkParsed(fset, imp, name, dir, files)
}

func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, paths []string) (*Package, error) {
	files, err := parseFiles(fset, paths)
	if err != nil {
		return nil, err
	}
	return checkParsed(fset, imp, pkgPath, dir, files)
}

func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	var errs []error
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		files = append(files, f)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return files, nil
}
