package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("long-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "title") {
		t.Error("missing title")
	}
	// Both data rows must align the second column at the same offset.
	aOff := strings.Index(lines[3], "1")
	bOff := strings.Index(lines[4], "22")
	if aOff != bOff {
		t.Errorf("column misaligned: %d vs %d\n%s", aOff, bOff, out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if out := tb.String(); !strings.Contains(out, "x") {
		t.Error("short row dropped")
	}
}

func TestBarScaling(t *testing.T) {
	full := Bar("x", 10, 10, 20)
	if !strings.Contains(full, strings.Repeat("#", 20)) {
		t.Errorf("full bar not full: %q", full)
	}
	empty := Bar("x", 0, 10, 20)
	if strings.Contains(empty, "#") {
		t.Errorf("zero bar has hashes: %q", empty)
	}
	if !strings.Contains(Bar("x", 5, 0, 10), "|") {
		t.Error("zero max must not panic")
	}
}

// Property: a bar never exceeds its width and never has negative length.
func TestBarBounded(t *testing.T) {
	f := func(val, max uint16) bool {
		s := Bar("l", float64(val), float64(max), 30)
		n := strings.Count(s, "#")
		return n >= 0 && n <= 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("chart", 10)
	c.Add("one", 1, "")
	c.Add("two", 2, "note")
	out := c.String()
	if !strings.Contains(out, "chart") || !strings.Contains(out, "note") {
		t.Errorf("chart rendering: %q", out)
	}
	// The larger value must render strictly more hashes.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bars not scaled: %q", out)
	}
}

func TestStacked(t *testing.T) {
	out := Stacked("fig", []string{"x", "y"},
		[]string{"Red", "Blue"}, []byte{'R', 'B'},
		map[string]map[string]int{
			"x": {"Red": 2, "Blue": 1},
			"y": {"Blue": 3},
		})
	if !strings.Contains(out, "RRB") {
		t.Errorf("stacked segment missing: %q", out)
	}
	if !strings.Contains(out, "BBB") {
		t.Errorf("y row wrong: %q", out)
	}
	if !strings.Contains(out, "R=Red") {
		t.Errorf("legend missing: %q", out)
	}
}

func TestMsAndSpeedup(t *testing.T) {
	if Ms(0.5) != "500.00" {
		t.Errorf("Ms(0.5) = %s", Ms(0.5))
	}
	if Speedup(2.5) != "2.50x" {
		t.Errorf("Speedup(2.5) = %s", Speedup(2.5))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
