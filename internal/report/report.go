// Package report renders the paper's artifacts — tables and bar charts — as
// plain text, so every experiment driver prints rows directly comparable to
// the published Table 1-3 and Figures 16-19.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Bar renders one labelled horizontal bar scaled to maxVal.
func Bar(label string, val, maxVal float64, width int) string {
	if maxVal <= 0 {
		maxVal = 1
	}
	n := int(math.Round(val / maxVal * float64(width)))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return fmt.Sprintf("%-10s |%s%s| %8.2f", label,
		strings.Repeat("#", n), strings.Repeat(" ", width-n), val)
}

// BarChart renders a labelled bar chart with a shared scale.
type BarChart struct {
	Title string
	Width int
	rows  []barRow
}

type barRow struct {
	label string
	val   float64
	note  string
}

// NewBarChart creates a chart; width is the bar width in characters.
func NewBarChart(title string, width int) *BarChart {
	return &BarChart{Title: title, Width: width}
}

// Add appends a bar with an optional annotation.
func (c *BarChart) Add(label string, val float64, note string) {
	c.rows = append(c.rows, barRow{label, val, note})
}

// String renders the chart.
func (c *BarChart) String() string {
	maxVal := 0.0
	for _, r := range c.rows {
		if r.val > maxVal {
			maxVal = r.val
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for _, r := range c.rows {
		b.WriteString(Bar(r.label, r.val, maxVal, c.Width))
		if r.note != "" {
			b.WriteString("  " + r.note)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Stacked renders the per-benchmark stacked idiom counts of Figure 16: one
// row per benchmark with one letter per detected instance. letters assigns
// the glyph for each class (parallel to classes).
func Stacked(title string, order []string, classes []string, letters []byte, counts map[string]map[string]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	glyph := map[string]byte{}
	for i, cl := range classes {
		glyph[cl] = letters[i]
	}
	for _, name := range order {
		var seg strings.Builder
		total := 0
		for _, cl := range classes {
			n := counts[name][cl]
			total += n
			seg.WriteString(strings.Repeat(string(glyph[cl]), n))
		}
		fmt.Fprintf(&b, "%-8s %2d %s\n", name, total, seg.String())
	}
	fmt.Fprintf(&b, "legend:")
	for _, cl := range classes {
		fmt.Fprintf(&b, " %c=%s", glyph[cl], cl)
	}
	b.WriteString("\n")
	return b.String()
}

// Ms formats seconds as the paper's millisecond table entries.
func Ms(sec float64) string {
	return fmt.Sprintf("%.2f", sec*1000)
}

// Speedup formats a ratio like the paper's speedup annotations.
func Speedup(x float64) string {
	return fmt.Sprintf("%.2fx", x)
}

// SortedKeys returns map keys in sorted order (stable rendering).
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
