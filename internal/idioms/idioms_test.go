package idioms

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/cc"
	"repro/internal/constraint"
)

func TestLibraryParses(t *testing.T) {
	prog, err := Library()
	if err != nil {
		t.Fatalf("Library: %v", err)
	}
	for _, name := range []string{"SESE", "For", "ForNest", "GEMM", "SPMV",
		"Reduction", "Histogram", "Stencil1", "Stencil2", "Stencil3",
		"DotProductLoop", "KernelFunction", "FactorizationOpportunity"} {
		if prog.Specs[name] == nil {
			t.Errorf("library missing constraint %s", name)
		}
	}
}

func TestLibraryLineCount(t *testing.T) {
	n := LibraryLineCount()
	// The paper quotes ≈500 lines for the complete idiom set.
	if n < 250 || n > 800 {
		t.Errorf("library is %d non-empty lines, expected a few hundred", n)
	}
	t.Logf("idiom library: %d non-empty IDL lines", n)
}

func TestAllProblemsCompile(t *testing.T) {
	for _, idm := range All() {
		if _, err := Problem(idm.Top); err != nil {
			t.Errorf("compile %s: %v", idm.Name, err)
		}
	}
}

func solveOn(t *testing.T, top, csrc, fn string) []constraint.Solution {
	t.Helper()
	prob, err := Problem(top)
	if err != nil {
		t.Fatalf("Problem(%s): %v", top, err)
	}
	mod, err := cc.Compile("test", csrc)
	if err != nil {
		t.Fatalf("cc.Compile: %v", err)
	}
	f := mod.FunctionByName(fn)
	if f == nil {
		t.Fatalf("function %s not found", fn)
	}
	info := analysis.Analyze(f)
	return constraint.NewSolver(prob, info).Solve()
}

func TestForMatchesCountedLoop(t *testing.T) {
	sols := solveOn(t, "For", `
double sum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}`, "sum")
	if len(sols) != 1 {
		t.Fatalf("For solutions = %d, want 1", len(sols))
	}
	sol := sols[0]
	if sol["iterator"] == nil || sol["guard"] == nil || sol["begin"] == nil {
		t.Fatalf("missing loop variables: %s", sol)
	}
}

func TestForNestMatchesTwoLoops(t *testing.T) {
	prog, err := Library()
	if err != nil {
		t.Fatal(err)
	}
	prob, err := constraint.Compile(prog, "ForNest", constraint.CompileOptions{Params: map[string]int{"N": 2}})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := cc.Compile("test", `
void init(double* a, int n, int m) {
    for (int i = 0; i < n; i++)
        for (int j = 0; j < m; j++)
            a[i*m+j] = 0.0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.Analyze(mod.FunctionByName("init"))
	sols := constraint.NewSolver(prob, info).Solve()
	if len(sols) != 1 {
		t.Fatalf("ForNest(2) solutions = %d, want 1", len(sols))
	}
}

// Figure 8, style 1: BLAS-style GEMM with strides and alpha/beta epilogue.
const gemmStyle1 = `
void gemm1(int m, int n, int k, float* A, int lda, float* B, int ldb,
           float* C, int ldc, float alpha, float beta) {
    for (int mm = 0; mm < m; mm++) {
        for (int nn = 0; nn < n; nn++) {
            float c = 0.0f;
            for (int i = 0; i < k; i++) {
                float a = A[mm + i * lda];
                float b = B[nn + i * ldb];
                c += a * b;
            }
            C[mm + nn * ldc] = C[mm + nn * ldc] * beta + alpha * c;
        }
    }
}`

// Figure 8, style 2: textbook triple loop on 2D arrays.
const gemmStyle2 = `
void gemm2(float M1[500][500], float M2[500][500], float M3[500][500]) {
    for (int i = 0; i < 500; i++) {
        for (int j = 0; j < 500; j++) {
            M3[i][j] = 0.0f;
            for (int k = 0; k < 500; k++) {
                M3[i][j] += M1[i][k] * M2[k][j];
            }
        }
    }
}`

func TestGEMMStyle1(t *testing.T) {
	sols := solveOn(t, "GEMM", gemmStyle1, "gemm1")
	if len(sols) == 0 {
		t.Fatal("GEMM did not match the BLAS-style loop nest (Figure 8 top)")
	}
}

func TestGEMMStyle2(t *testing.T) {
	sols := solveOn(t, "GEMM", gemmStyle2, "gemm2")
	if len(sols) == 0 {
		t.Fatal("GEMM did not match the textbook loop nest (Figure 8 bottom)")
	}
}

func TestGEMMNegative(t *testing.T) {
	// A triple loop that is not a matrix multiplication (no dot product).
	sols := solveOn(t, "GEMM", `
void notgemm(float* A, float* B, float* C, int n) {
    for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
            for (int k = 0; k < n; k++)
                C[i + j*n] = A[i + k*n] + B[j + k*n];
}`, "notgemm")
	if len(sols) != 0 {
		t.Fatalf("GEMM matched a non-GEMM nest: %d solutions", len(sols))
	}
}

// The paper's Figure 4 CSR sparse matrix-vector kernel from NAS CG.
const spmvSrc = `
void spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}`

func TestSPMVMatches(t *testing.T) {
	sols := solveOn(t, "SPMV", spmvSrc, "spmv")
	if len(sols) == 0 {
		t.Fatal("SPMV did not match the Figure 4 CSR kernel")
	}
	sol := sols[0]
	// Spot-check the Figure 5 variable assignment shape.
	for _, v := range []string{"iterator", "inner.iterator", "inner.iter_begin",
		"inner.iter_end", "idx_read.value", "indir_read.value", "seq_read.value",
		"output.address"} {
		if sol[v] == nil {
			t.Errorf("solution missing %s\n%s", v, sol)
		}
	}
}

func TestSPMVNegativeOnDense(t *testing.T) {
	sols := solveOn(t, "SPMV", `
void densemv(int n, double* a, double* x, double* y) {
    for (int i = 0; i < n; i++) {
        double d = 0.0;
        for (int j = 0; j < n; j++) {
            d = d + a[i*n+j] * x[j];
        }
        y[i] = d;
    }
}`, "densemv")
	if len(sols) != 0 {
		t.Fatalf("SPMV matched a dense kernel: %d solutions", len(sols))
	}
}

func TestReductionMatchesSum(t *testing.T) {
	sols := solveOn(t, "Reduction", `
double sum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}`, "sum")
	if len(sols) == 0 {
		t.Fatal("Reduction did not match a plain sum")
	}
}

func TestReductionMatchesDotAndKernel(t *testing.T) {
	sols := solveOn(t, "Reduction", `
double kernelred(double* x, double* y, int n) {
    double acc = 0.0;
    for (int i = 0; i < n; i++) {
        acc = acc + sqrt(x[i]*x[i] + y[i]*y[i]);
    }
    return acc;
}`, "kernelred")
	if len(sols) == 0 {
		t.Fatal("Reduction did not match a kernel-function reduction")
	}
}

func TestReductionMatchesMax(t *testing.T) {
	sols := solveOn(t, "Reduction", `
double maxval(double* a, int n) {
    double m = 0.0;
    for (int i = 0; i < n; i++) {
        if (a[i] > m) { m = a[i]; }
    }
    return m;
}`, "maxval")
	if len(sols) == 0 {
		t.Fatal("Reduction did not match a max reduction")
	}
}

func TestReductionRejectsImpureKernel(t *testing.T) {
	// The kernel reads memory not indexed by the iterator (z[c[i]] pattern):
	// the data-flow closure must reject it (it is SPMV-shaped, not a scalar
	// reduction over iterator-indexed reads).
	sols := solveOn(t, "Reduction", `
double indirect(double* a, int* c, double* z, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s = s + a[i] * z[c[i]];
    }
    return s;
}`, "indirect")
	if len(sols) != 0 {
		t.Fatalf("Reduction matched an impure kernel: %d solutions", len(sols))
	}
}

func TestHistogramMatches(t *testing.T) {
	sols := solveOn(t, "Histogram", `
void histo(int* data, int* bins, int n) {
    for (int i = 0; i < n; i++) {
        bins[data[i]] += 1;
    }
}`, "histo")
	if len(sols) == 0 {
		t.Fatal("Histogram did not match the basic histogram")
	}
}

func TestHistogramWithIndexKernel(t *testing.T) {
	sols := solveOn(t, "Histogram", `
void histo2(double* data, int* bins, int n, int nbins) {
    for (int i = 0; i < n; i++) {
        int b = (int)(data[i] * 10.0) % nbins;
        bins[b] += 1;
    }
}`, "histo2")
	if len(sols) == 0 {
		t.Fatal("Histogram did not match a computed-index histogram")
	}
}

func TestHistogramRejectsVectorScale(t *testing.T) {
	// y[i] = y[i] * 2 is an iterator-indexed RMW, not a histogram.
	sols := solveOn(t, "Histogram", `
void scale(double* y, int n) {
    for (int i = 0; i < n; i++) {
        y[i] = y[i] * 2.0;
    }
}`, "scale")
	if len(sols) != 0 {
		t.Fatalf("Histogram matched a vector scale: %d solutions", len(sols))
	}
}

func TestStencil1Matches(t *testing.T) {
	sols := solveOn(t, "Stencil1", `
void jacobi1d(double* in, double* out, int n) {
    for (int i = 1; i < n - 1; i++) {
        out[i] = (in[i-1] + in[i] + in[i+1]) / 3.0;
    }
}`, "jacobi1d")
	if len(sols) == 0 {
		t.Fatal("Stencil1 did not match a 1D Jacobi")
	}
}

func TestStencil1RejectsCopy(t *testing.T) {
	// A copy loop reads only one cell: the collect minimum of 2 reads fails.
	sols := solveOn(t, "Stencil1", `
void copy(double* in, double* out, int n) {
    for (int i = 0; i < n; i++) {
        out[i] = in[i];
    }
}`, "copy")
	if len(sols) != 0 {
		t.Fatalf("Stencil1 matched a copy loop: %d solutions", len(sols))
	}
}

func TestStencil2Matches(t *testing.T) {
	sols := solveOn(t, "Stencil2", `
void jacobi2d(double* in, double* out, int n, int m) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < m - 1; j++) {
            out[i*500 + j] = 0.25 * (in[(i-1)*500 + j] + in[(i+1)*500 + j]
                                   + in[i*500 + (j-1)] + in[i*500 + (j+1)]);
        }
    }
}`, "jacobi2d")
	if len(sols) == 0 {
		t.Fatal("Stencil2 did not match a 2D Jacobi")
	}
}

func TestStencil3Matches(t *testing.T) {
	sols := solveOn(t, "Stencil3", `
void stencil7(double* in, double* out, int n) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            for (int k = 1; k < n - 1; k++) {
                out[(i*64 + j)*64 + k] =
                    in[(i*64 + j)*64 + k] * -6.0
                  + in[((i-1)*64 + j)*64 + k] + in[((i+1)*64 + j)*64 + k]
                  + in[(i*64 + (j-1))*64 + k] + in[(i*64 + (j+1))*64 + k]
                  + in[(i*64 + j)*64 + (k-1)] + in[(i*64 + j)*64 + (k+1)];
            }
        }
    }
}`, "stencil7")
	if len(sols) == 0 {
		t.Fatal("Stencil3 did not match a 7-point stencil")
	}
}
