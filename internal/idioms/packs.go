package idioms

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/constraint"
	"repro/internal/idl"
	"repro/internal/similarity"
)

// TopSpec declares one idiom of a pack: the top-level constraint to compile
// plus the detection/transformation metadata the built-in roster carries for
// the paper's idioms. It is the JSON element of POST /v1/idioms and the unit
// `idlc -pack` validates.
type TopSpec struct {
	// Name is the idiom name requests use; empty defaults to Top.
	Name string `json:"name,omitempty"`
	// Top is the top-level constraint in the pack's IDL source.
	Top string `json:"top"`
	// Class is the Table 1 class label ("Matrix Op.", "Parallel Map", ...);
	// empty means "Demo".
	Class string `json:"class,omitempty"`
	// Scheme selects the transform strategy ("gemm", "spmv", "reduction",
	// "loopbody1/2/3"); empty means the idiom detects but has no code
	// replacement.
	Scheme string `json:"scheme,omitempty"`
	// Kind is the hetero API kind used for offload estimates ("gemm",
	// "spmv", "reduction", "histogram", "stencil1/2/3", "map"); empty means
	// no backend estimate.
	Kind string `json:"kind,omitempty"`
}

// Pack is one registered idiom pack: an immutable roster of idioms whose
// constraint problems were compiled (and solver-prepared) exactly once at
// registration. Version is the registry-wide registration counter stamped
// into every problem, so solve-memo entries of superseded registrations can
// never be served to a newer pack of the same name.
type Pack struct {
	Name    string
	Version uint64
	// Idioms is the pack roster in precedence order.
	Idioms []Idiom
	// Lines is the pack's non-empty IDL line count.
	Lines int

	problems map[string]*constraint.Problem   // by idiom name
	sigs     map[string]*similarity.Signature // by idiom name
}

// Problem returns the compiled constraint problem for an idiom name.
func (p *Pack) Problem(name string) (*constraint.Problem, bool) {
	prob, ok := p.problems[name]
	return prob, ok
}

// Signature returns the prescreen signature compiled for an idiom name.
// Signatures live on the pack snapshot next to the compiled problems, so a
// re-registration replaces problems and signatures atomically: a roster
// resolved from an old snapshot keeps consistent (problem, signature) pairs,
// and nothing resolved from the new snapshot can see a stale signature.
func (p *Pack) Signature(name string) (*similarity.Signature, bool) {
	sg, ok := p.sigs[name]
	return sg, ok
}

// Idiom returns the pack's idiom of that name.
func (p *Pack) Idiom(name string) (Idiom, bool) {
	for _, idm := range p.Idioms {
		if idm.Name == name {
			return idm, true
		}
	}
	return Idiom{}, false
}

// ClassByName resolves a Table 1 class label ("Matrix Op.", "Stencil", ...)
// as rendered by Class.String.
func ClassByName(s string) (Class, bool) {
	for c := ClassScalarReduction; c <= ClassDemo; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// validSchemes are the transform strategies a pack idiom may declare; they
// name the transformer's generic replacement paths (see transform.Apply).
var validSchemes = map[string]bool{
	"": true, "gemm": true, "spmv": true, "reduction": true,
	"loopbody1": true, "loopbody2": true, "loopbody3": true,
}

// CompilePack validates and compiles a pack without installing it anywhere:
// the IDL source is parsed once, every top-level constraint is resolved,
// flattened (constraint.Compile) and solver-prepared (constraint.Prepare),
// and the metadata is checked. `idlc -pack` and the server's POST /v1/idioms
// both call this — one code path, so CLI and HTTP report identical errors.
//
// version is stamped into each compiled problem's PackVersion; stand-alone
// validation passes 0.
func CompilePack(name, idlSource string, tops []TopSpec, version uint64) (*Pack, error) {
	if name == "" {
		return nil, fmt.Errorf("idioms: pack name required")
	}
	if len(tops) == 0 {
		return nil, fmt.Errorf("idioms: pack %s declares no idioms", name)
	}
	prog, err := idl.ParseProgram(idlSource)
	if err != nil {
		return nil, fmt.Errorf("idioms: pack %s: %w", name, err)
	}
	pack := &Pack{
		Name:     name,
		Version:  version,
		Lines:    countLines(idlSource),
		problems: make(map[string]*constraint.Problem, len(tops)),
		sigs:     make(map[string]*similarity.Signature, len(tops)),
	}
	for _, spec := range tops {
		if spec.Top == "" {
			return nil, fmt.Errorf("idioms: pack %s: idiom with empty top constraint", name)
		}
		idm := Idiom{Name: spec.Name, Top: spec.Top, Class: ClassDemo,
			Scheme: spec.Scheme, Kind: spec.Kind}
		if idm.Name == "" {
			idm.Name = spec.Top
		}
		if _, dup := pack.problems[idm.Name]; dup {
			return nil, fmt.Errorf("idioms: pack %s: duplicate idiom %q", name, idm.Name)
		}
		if spec.Class != "" {
			c, ok := ClassByName(spec.Class)
			if !ok {
				return nil, fmt.Errorf("idioms: pack %s: idiom %s: unknown class %q", name, idm.Name, spec.Class)
			}
			idm.Class = c
		}
		if !validSchemes[spec.Scheme] {
			return nil, fmt.Errorf("idioms: pack %s: idiom %s: unknown transform scheme %q", name, idm.Name, spec.Scheme)
		}
		prob, err := constraint.Compile(prog, spec.Top, constraint.CompileOptions{})
		if err != nil {
			return nil, fmt.Errorf("idioms: pack %s: idiom %s: %w", name, idm.Name, err)
		}
		prob.PackVersion = version
		// The durable identity hashes source + top, not the registration
		// counter: a pack re-registered (or replayed at boot) from
		// byte-identical source re-addresses its spilled memo entries,
		// while any source change makes them unreachable.
		prob.StoreID = constraint.ProblemStoreID(idlSource, spec.Top)
		constraint.Prepare(prob)
		pack.problems[idm.Name] = prob
		pack.sigs[idm.Name] = similarity.Compile(idm.Name, prob)
		pack.Idioms = append(pack.Idioms, idm)
	}
	return pack, nil
}

// Registry is a versioned, copy-on-write store of idiom packs. Register
// compiles a pack once and atomically swaps it into a fresh snapshot map;
// readers (per-request roster resolution) load the snapshot pointer without
// locking, so an in-flight detection keeps solving against exactly the pack
// object it resolved — a concurrent re-registration can never tear its
// roster or swap its compiled problems out from under it.
type Registry struct {
	mu      sync.Mutex // serializes registrations and guards version
	version uint64
	limit   int
	packs   atomic.Pointer[map[string]*Pack]
}

// DefaultMaxPacks bounds a registry's distinct pack names. Every other
// intake path of a serving process is bounded (queue limit, body size, memo
// LRU); compiled packs are held for the process lifetime, so unbounded
// registration would grow memory without limit. Replacing an existing name
// never counts against the bound.
const DefaultMaxPacks = 64

// NewRegistry returns an empty pack registry bounded at DefaultMaxPacks
// distinct names.
func NewRegistry() *Registry {
	return NewRegistrySize(DefaultMaxPacks)
}

// NewRegistrySize returns an empty pack registry bounded at max distinct
// names; max <= 0 means unbounded.
func NewRegistrySize(max int) *Registry {
	r := &Registry{limit: max}
	m := map[string]*Pack{}
	r.packs.Store(&m)
	return r
}

// Register compiles and installs a pack under name, replacing any previous
// registration of that name. Each call — including a replacement — gets a
// fresh registry-wide version, stamped into the pack and its compiled
// problems; solve-memo keys include it, so cached solves of a superseded
// pack are unreachable from the new one. Registration failures install
// nothing.
func (r *Registry) Register(name, idlSource string, tops []TopSpec) (*Pack, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, replacing := (*r.packs.Load())[name]; !replacing && r.limit > 0 && len(*r.packs.Load()) >= r.limit {
		return nil, fmt.Errorf("idioms: registry full (%d packs); replace an existing pack or raise the bound", r.limit)
	}
	pack, err := CompilePack(name, idlSource, tops, r.version+1)
	if err != nil {
		return nil, err
	}
	r.version++
	old := *r.packs.Load()
	next := make(map[string]*Pack, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = pack
	r.packs.Store(&next)
	return pack, nil
}

// Pack returns the current registration of name, if any. The returned pack
// is immutable: it stays valid (and self-consistent) even if a later
// Register replaces it in the registry.
func (r *Registry) Pack(name string) (*Pack, bool) {
	p, ok := (*r.packs.Load())[name]
	return p, ok
}

// Packs returns the current registrations sorted by name.
func (r *Registry) Packs() []*Pack {
	m := *r.packs.Load()
	out := make([]*Pack, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
