// Package idioms contains the IDL idiom library of the paper: the reusable
// building blocks (SESE, For, ForNest, vector and matrix accesses, dot
// product loops, induction variables, kernel functions) and the five
// top-level computational idioms (GEMM, SPMV, Histogram, Stencil, Reduction)
// plus the Figure 2 FactorizationOpportunity demo.
//
// The paper reports that the complete idiom set is ≈500 lines of IDL; the
// library below is in the same ballpark. The building-block specifications
// are not printed in the paper, so they are authored here against the same
// published atomic vocabulary (Figure 7), with one documented extension: the
// "all operands of {v} come from {list} below {w}" atomic expressing
// well-behaved kernel functions (see DESIGN.md).
package idioms

// SESESource is the paper's Figure 9 single-entry single-exit region.
const SESESource = `
Constraint SESE
( {precursor} is branch instruction and
  {precursor} has control flow to {begin} and
  {end} is branch instruction and
  {end} has control flow to {successor} and
  {begin} control flow dominates {end} and
  {end} control flow post dominates {begin} and
  {precursor} strictly control flow dominates {begin} and
  {successor} strictly control flow post dominates {end} and
  all control flow from {begin} to {precursor} passes through {end} and
  all control flow from {successor} to {end} passes through {begin})
End
`

// ForSource matches a canonical counted loop:
//
//	header: {iterator} = phi [{iter_begin}, {precursor}], [{increment}, {backedge}]
//	        {comparison} = icmp {iterator}, {iter_end}
//	        {guard}: br {comparison}, {begin}, {successor}
//	body:   ... {increment} = add {iterator}, step ... br {backedge target}
const ForSource = `
Constraint For
( {iterator} is phi instruction and
  {iterator} is integer and
  {iter_begin} reaches phi node {iterator} from {precursor} and
  {increment} reaches phi node {iterator} from {backedge} and
  {precursor} is not the same as {backedge} and
  {increment} is add instruction and
  {iterator} is first argument of {increment} and
  {comparison} is icmp instruction and
  {iterator} is first argument of {comparison} and
  {iter_end} is second argument of {comparison} and
  {guard} is branch instruction and
  {comparison} is first argument of {guard} and
  {guard} has control flow to {begin} and
  {guard} has control flow to {successor} and
  {precursor} strictly control flow dominates {guard} and
  {begin} is not the same as {successor} and
  {begin} control flow dominates {increment} and
  {successor} does not control flow dominates {increment} and
  {guard} strictly control flow dominates {begin} and
  {successor} strictly control flow post dominates {guard})
End
`

// ForNestSource nests N For loops; exposes iterator[i], loop[i].* and the
// outermost body {begin}.
const ForNestSource = `
Constraint ForNest
( inherits For at {loop[0]} and
  ( ( inherits For at {loop[i+1]} and
      {loop[i].begin} control flow dominates {loop[i+1].guard} and
      {loop[i+1].successor} control flow dominates {loop[i].increment} )
    for all i = 0..N-2 ) and
  ( ( {iterator[i]} is the same as {loop[i].iterator} ) for all i = 0..N-1 ) and
  {begin} is the same as {loop[0].begin})
End
`

// IterMatchSource: {value} is {iterator} itself or its sign extension (the
// frontend widens i32 induction variables to i64 at address computations).
const IterMatchSource = `
Constraint IterMatch
( {value} is the same as {iterator} or
  ( {value} is sext instruction and
    {iterator} is first argument of {value} ) )
End
`

// MatrixIndexSource decomposes a flattened 2D index {index} = row*stride+col
// (any operand order, transposed assignments allowed, per the paper:
// "allowing strides, transposed matrices etc").
const MatrixIndexSource = `
Constraint MatrixIndex
( {index} is add instruction and
  ( ( {plain} is first argument of {index} and
      {product} is second argument of {index} ) or
    ( {plain} is second argument of {index} and
      {product} is first argument of {index} ) ) and
  {product} is mul instruction and
  ( ( {scaled} is first argument of {product} and
      {stride} is second argument of {product} ) or
    ( {scaled} is second argument of {product} and
      {stride} is first argument of {product} ) ) and
  {stride} is a compile time value and
  ( ( inherits IterMatch with {plain} as {value} and {col} as {iterator} and
      inherits IterMatch with {scaled} as {value} and {row} as {iterator} ) or
    ( inherits IterMatch with {plain} as {value} and {row} as {iterator} and
      inherits IterMatch with {scaled} as {value} and {col} as {iterator} ) ) )
End
`

// MatrixReadSource is a load whose address is a strided 2D access over two
// loop iterators {col} and {row} inside the region starting at {begin}.
const MatrixReadSource = `
Constraint MatrixRead
( {value} is load instruction and
  {address} is first argument of {value} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {base_pointer} is an argument and
  {gep_index} is second argument of {address} and
  ( {index} is the same as {gep_index} or
    ( {gep_index} is sext instruction and
      {index} is first argument of {gep_index} ) ) and
  inherits MatrixIndex and
  {begin} control flow dominates {value} )
End
`

// MatrixStoreSource is the store counterpart of MatrixRead.
const MatrixStoreSource = `
Constraint MatrixStore
( {store} is store instruction and
  {value} is first argument of {store} and
  {address} is second argument of {store} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {base_pointer} is an argument and
  {gep_index} is second argument of {address} and
  ( {index} is the same as {gep_index} or
    ( {gep_index} is sext instruction and
      {index} is first argument of {gep_index} ) ) and
  inherits MatrixIndex and
  {begin} control flow dominates {store} )
End
`

// VectorReadSource is a load at a single index {idx} (directly or through a
// sign extension) inside the region at {begin}.
const VectorReadSource = `
Constraint VectorRead
( {value} is load instruction and
  {address} is first argument of {value} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {gep_index} is second argument of {address} and
  ( {gep_index} is the same as {idx} or
    ( {gep_index} is sext instruction and
      {idx} is first argument of {gep_index} ) ) and
  {begin} control flow dominates {value} )
End
`

// VectorStoreSource is the store counterpart of VectorRead.
const VectorStoreSource = `
Constraint VectorStore
( {store} is store instruction and
  {value} is first argument of {store} and
  {address} is second argument of {store} and
  {address} is gep instruction and
  {base_pointer} is first argument of {address} and
  {gep_index} is second argument of {address} and
  ( {gep_index} is the same as {idx} or
    ( {gep_index} is sext instruction and
      {idx} is first argument of {gep_index} ) ) and
  {begin} control flow dominates {store} )
End
`

// ReadRangeSource matches loop bounds read from an index array:
// {range_begin} = base[{idx}], {range_end} = base[{idx}+1] (CSR row ranges).
const ReadRangeSource = `
Constraint ReadRange
( {range_begin} is load instruction and
  {begin_addr} is first argument of {range_begin} and
  {begin_addr} is gep instruction and
  {base_pointer} is first argument of {begin_addr} and
  {begin_index} is second argument of {begin_addr} and
  ( {begin_index} is the same as {idx} or
    ( {begin_index} is sext instruction and
      {idx} is first argument of {begin_index} ) ) and
  {range_end} is load instruction and
  {end_addr} is first argument of {range_end} and
  {end_addr} is gep instruction and
  {base_pointer} is first argument of {end_addr} and
  {end_index} is second argument of {end_addr} and
  ( {end_plus} is the same as {end_index} or
    ( {end_index} is sext instruction and
      {end_plus} is first argument of {end_index} ) ) and
  {end_plus} is add instruction and
  {idx} is first argument of {end_plus} )
End
`

// AccUseSource: {use} consumes the accumulator {acc}, possibly scaled by a
// constant factor (the alpha of a generalized matrix multiplication).
const AccUseSource = `
Constraint AccUse
( {use} is the same as {acc} or
  ( {use} is fmul instruction and
    ( {acc} is first argument of {use} or
      {acc} is second argument of {use} ) ) )
End
`

// DotProductLoopSource is the computation core shared by GEMM and SPMV: a
// loop multiplying {src1} and {src2} and accumulating into a scalar carried
// by a phi (form A) or directly into memory at {update_address} (form B).
// Form A's epilogue allows the generalized alpha/beta linear combination.
const DotProductLoopSource = `
Constraint DotProductLoop
( {product} is fmul instruction and
  ( ( {src1} is first argument of {product} and
      {src2} is second argument of {product} ) or
    ( {src2} is first argument of {product} and
      {src1} is second argument of {product} ) ) and
  {sum} is fadd instruction and
  ( {product} is first argument of {sum} or
    {product} is second argument of {sum} ) and
  {loop.begin} control flow dominates {product} and
  {store} is store instruction and
  {update_address} is second argument of {store} and
  {stored} is first argument of {store} and
  ( ( {acc} is phi instruction and
      {sum} reaches phi node {acc} from {loop.backedge} and
      ( {acc} is first argument of {sum} or
        {acc} is second argument of {sum} ) and
      {acc_init} reaches phi node {acc} from {loop.precursor} and
      {loop.successor} control flow dominates {store} and
      ( {stored} is the same as {acc} or
        inherits AccUse with {stored} as {use} or
        ( {stored} is fadd instruction and
          ( {epi} is first argument of {stored} or
            {epi} is second argument of {stored} ) and
          inherits AccUse with {epi} as {use} ) ) ) or
    ( {acc} is load instruction and
      {update_address} is first argument of {acc} and
      ( {acc} is first argument of {sum} or
        {acc} is second argument of {sum} ) and
      {stored} is the same as {sum} and
      {loop.begin} control flow dominates {store} ) ) )
End
`

// GEMMSource is the paper's Figure 10 generalized matrix multiplication.
const GEMMSource = `
Constraint GEMM
( inherits ForNest(N=3) and
  inherits MatrixStore
    with {iterator[0]} as {col}
    and {iterator[1]} as {row}
    and {begin} as {begin} at {output} and
  inherits MatrixRead
    with {iterator[0]} as {col}
    and {iterator[2]} as {row}
    and {begin} as {begin} at {input1} and
  inherits MatrixRead
    with {iterator[1]} as {col}
    and {iterator[2]} as {row}
    and {begin} as {begin} at {input2} and
  inherits DotProductLoop
    with {loop[2]} as {loop}
    and {input1.value} as {src1}
    and {input2.value} as {src2}
    and {output.address} as {update_address})
End
`

// SPMVSource is the paper's Figure 12 sparse matrix-vector multiplication in
// CSR form: the inner iteration space is read from an array (ReadRange) and
// one of the dot product operands is accessed indirectly.
const SPMVSource = `
Constraint SPMV
( inherits For and
  inherits VectorStore
    with {iterator} as {idx}
    and {begin} as {begin} at {output} and
  inherits ReadRange
    with {iterator} as {idx}
    and {inner.iter_begin} as {range_begin}
    and {inner.iter_end} as {range_end} and
  inherits For at {inner} and
  inherits VectorRead
    with {inner.iterator} as {idx}
    and {begin} as {begin} at {idx_read} and
  inherits VectorRead
    with {idx_read.value} as {idx}
    and {begin} as {begin} at {indir_read} and
  inherits VectorRead
    with {inner.iterator} as {idx}
    and {begin} as {begin} at {seq_read} and
  inherits DotProductLoop
    with {inner} as {loop}
    and {indir_read.value} as {src1}
    and {seq_read.value} as {src2}
    and {output.address} as {update_address})
End
`

// KernelFunctionSource expresses a well-behaved kernel: {output} is computed
// inside the region at {outer} purely from the {input}/{extra} values,
// constants and loop-invariant values — no loads, stores or calls.
const KernelFunctionSource = `
Constraint KernelFunction
( {output} is an instruction and
  {outer} control flow dominates {output} and
  all operands of {output} come from {input, extra} below {outer} )
End
`

// InductionVarSource is a loop-carried scalar: a phi distinct from the loop
// iterator, updated on every iteration.
const InductionVarSource = `
Constraint InductionVar
( {old_ind} is phi instruction and
  {ind_init} reaches phi node {old_ind} from {precursor} and
  {new_ind} reaches phi node {old_ind} from {backedge} and
  {new_ind} is an instruction )
End
`

// ReductionSource is the paper's Figure 14 generalized scalar reduction,
// with one addition: the loop body must be store-free ("no store instruction
// below {begin}"), so prefix scans and conditional queue pushes — whose
// intermediate values escape to memory every iteration — are rejected.
// Replacing such loops with a pure reduction API call would be unsound.
const ReductionSource = `
Constraint Reduction
( inherits For and
  no store instruction below {begin} and
  inherits InductionVar
    with {old_value} as {old_ind}
    and {new_value} as {new_ind} and
  {old_value} is not the same as {iterator} and
  collect i 1
  ( inherits VectorRead
      with {iterator} as {idx}
      and {read_value[i]} as {value}
      and {begin} as {begin} at {read[i]} ) and
  inherits KernelFunction
    with {new_value} as {output}
    and {read_value} as {input}
    and {old_value} as {extra}
    and {begin} as {outer})
End
`

// HistogramSource is the paper's Figure 11 generalized histogram: a
// read-modify-write to a bin array whose index is computed by a well-behaved
// kernel from data read at the loop iterator.
const HistogramSource = `
Constraint Histogram
( inherits For and
  {store} is store instruction and
  {stored_value} is first argument of {store} and
  {bin_address} is second argument of {store} and
  {bin_address} is gep instruction and
  {bin_base} is first argument of {bin_address} and
  {bin_index} is second argument of {bin_address} and
  ( {index_value} is the same as {bin_index} or
    ( {bin_index} is sext instruction and
      {index_value} is first argument of {bin_index} ) ) and
  {index_value} is not the same as {iterator} and
  {old_value} is load instruction and
  ( {bin_address} is first argument of {old_value} or
    ( {old_address} is first argument of {old_value} and
      {old_address} is gep instruction and
      {bin_base} is first argument of {old_address} and
      {bin_index} is second argument of {old_address} ) ) and
  {old_value} has data flow to {stored_value} and
  {begin} control flow dominates {store} and
  collect i 1
  ( inherits VectorRead
      with {iterator} as {idx}
      and {read_value[i]} as {value}
      and {begin} as {begin} at {read[i]} ) and
  inherits KernelFunction
    with {stored_value} as {output}
    and {read_value} as {input}
    and {old_value} as {extra}
    and {begin} as {outer} and
  inherits KernelFunction
    with {index_value} as {output}
    and {read_value} as {input}
    and {read_value} as {extra}
    and {begin} as {outer} at {indexkernel})
End
`

// OffsetCoreSource: {core} is {iterator} or {iterator} ± constant.
const OffsetCoreSource = `
Constraint OffsetCore
( {core} is the same as {iterator} or
  ( ( {core} is add instruction or
      {core} is sub instruction ) and
    {iterator} is first argument of {core} and
    {offset} is second argument of {core} and
    {offset} is a constant ) )
End
`

// OffsetIndexSource: {value} is an OffsetCore or its sign extension.
const OffsetIndexSource = `
Constraint OffsetIndex
( ( inherits OffsetCore with {value} as {core} ) or
  ( {value} is sext instruction and
    {inner_core} is first argument of {value} and
    inherits OffsetCore with {inner_core} as {core} ) )
End
`

// Stencil1Source is a one-dimensional stencil: a store at the loop iterator
// whose value is a pure kernel of at least two constant-offset reads of a
// different array (paper Figure 13 specialized to one dimension).
const Stencil1Source = `
Constraint Stencil1
( inherits For and
  {store} is store instruction and
  {stored_value} is first argument of {store} and
  {out_address} is second argument of {store} and
  {out_address} is gep instruction and
  {out_base} is first argument of {out_address} and
  {out_index} is second argument of {out_address} and
  inherits OffsetIndex
    with {out_index} as {value}
    and {iterator} as {iterator} at {outoff} and
  {begin} control flow dominates {store} and
  collect i 2
  ( {read_value[i]} is load instruction and
    {read[i].address} is first argument of {read_value[i]} and
    {read[i].address} is gep instruction and
    {in_base} is first argument of {read[i].address} and
    {read[i].index} is second argument of {read[i].address} and
    inherits OffsetIndex
      with {read[i].index} as {value}
      and {iterator} as {iterator} at {read[i].off} and
    {begin} control flow dominates {read_value[i]} ) and
  {out_base} is pointer and
  {in_base} is pointer and
  {out_base} is not the same as {in_base} and
  inherits KernelFunction
    with {stored_value} as {output}
    and {read_value} as {input}
    and {read_value} as {extra}
    and {begin} as {outer})
End
`

// Stencil2IndexSource decomposes a flattened 2D stencil index with constant
// offsets on both iterators.
const Stencil2IndexSource = `
Constraint Stencil2Index
( {index} is add instruction and
  ( ( {plain} is first argument of {index} and
      {product} is second argument of {index} ) or
    ( {plain} is second argument of {index} and
      {product} is first argument of {index} ) ) and
  {product} is mul instruction and
  ( ( {scaled} is first argument of {product} and
      {stride} is second argument of {product} ) or
    ( {scaled} is second argument of {product} and
      {stride} is first argument of {product} ) ) and
  {stride} is a compile time value and
  inherits OffsetIndex
    with {scaled} as {value}
    and {it_row} as {iterator} at {rowoff} and
  inherits OffsetIndex
    with {plain} as {value}
    and {it_col} as {iterator} at {coloff} )
End
`

// Stencil2Source is a two-dimensional stencil over a ForNest(N=2).
const Stencil2Source = `
Constraint Stencil2
( inherits ForNest(N=2) and
  {store} is store instruction and
  {stored_value} is first argument of {store} and
  {out_address} is second argument of {store} and
  {out_address} is gep instruction and
  {out_base} is first argument of {out_address} and
  {out_index} is second argument of {out_address} and
  ( {out_flat} is the same as {out_index} or
    ( {out_index} is sext instruction and
      {out_flat} is first argument of {out_index} ) ) and
  inherits Stencil2Index
    with {out_flat} as {index}
    and {iterator[0]} as {it_row}
    and {iterator[1]} as {it_col} at {outidx} and
  {begin} control flow dominates {store} and
  collect i 2
  ( {read_value[i]} is load instruction and
    {read[i].address} is first argument of {read_value[i]} and
    {read[i].address} is gep instruction and
    {in_base} is first argument of {read[i].address} and
    {read[i].index} is second argument of {read[i].address} and
    ( {read[i].flat} is the same as {read[i].index} or
      ( {read[i].index} is sext instruction and
        {read[i].flat} is first argument of {read[i].index} ) ) and
    inherits Stencil2Index
      with {read[i].flat} as {index}
      and {iterator[0]} as {it_row}
      and {iterator[1]} as {it_col} at {read[i].idx} and
    {begin} control flow dominates {read_value[i]} ) and
  {out_base} is pointer and
  {in_base} is pointer and
  {out_base} is not the same as {in_base} and
  inherits KernelFunction
    with {stored_value} as {output}
    and {read_value} as {input}
    and {read_value} as {extra}
    and {begin} as {outer})
End
`

// Stencil3IndexSource decomposes ((i*d2)+j)*d3+k flattened 3D indices with
// constant offsets on every iterator.
const Stencil3IndexSource = `
Constraint Stencil3Index
( {index} is add instruction and
  ( ( {plain} is first argument of {index} and
      {product} is second argument of {index} ) or
    ( {plain} is second argument of {index} and
      {product} is first argument of {index} ) ) and
  {product} is mul instruction and
  ( ( {level2} is first argument of {product} and
      {stride2} is second argument of {product} ) or
    ( {level2} is second argument of {product} and
      {stride2} is first argument of {product} ) ) and
  {stride2} is a compile time value and
  inherits Stencil2Index
    with {level2} as {index}
    and {it_plane} as {it_row}
    and {it_row2} as {it_col} at {lvl} and
  inherits OffsetIndex
    with {plain} as {value}
    and {it_col} as {iterator} at {coloff} )
End
`

// Stencil3Source is a three-dimensional stencil over a ForNest(N=3) with a
// flattened linear index.
const Stencil3Source = `
Constraint Stencil3
( inherits ForNest(N=3) and
  {store} is store instruction and
  {stored_value} is first argument of {store} and
  {out_address} is second argument of {store} and
  {out_address} is gep instruction and
  {out_base} is first argument of {out_address} and
  {out_index} is second argument of {out_address} and
  ( {out_flat} is the same as {out_index} or
    ( {out_index} is sext instruction and
      {out_flat} is first argument of {out_index} ) ) and
  inherits Stencil3Index
    with {out_flat} as {index}
    and {iterator[0]} as {it_plane}
    and {iterator[1]} as {it_row2}
    and {iterator[2]} as {it_col} at {outidx} and
  {begin} control flow dominates {store} and
  collect i 2
  ( {read_value[i]} is load instruction and
    {read[i].address} is first argument of {read_value[i]} and
    {read[i].address} is gep instruction and
    {in_base} is first argument of {read[i].address} and
    {read[i].index} is second argument of {read[i].address} and
    ( {read[i].flat} is the same as {read[i].index} or
      ( {read[i].index} is sext instruction and
        {read[i].flat} is first argument of {read[i].index} ) ) and
    inherits Stencil3Index
      with {read[i].flat} as {index}
      and {iterator[0]} as {it_plane}
      and {iterator[1]} as {it_row2}
      and {iterator[2]} as {it_col} at {read[i].idx} and
    {begin} control flow dominates {read_value[i]} ) and
  {out_base} is pointer and
  {in_base} is pointer and
  {out_base} is not the same as {in_base} and
  inherits KernelFunction
    with {stored_value} as {output}
    and {read_value} as {input}
    and {read_value} as {extra}
    and {begin} as {outer})
End
`

// MapSource is the paper's named future-work idiom ("future work will
// examine outer loop parallelism as an idiom to exploit"): a data-parallel
// loop storing a pure function of same-index reads at every iteration.
// Reads and the store may share a base (out[i] += f(in[i]) is independent
// across iterations); loop-carried scalar state is excluded by requiring
// the stored value's kernel to draw only on the collected reads.
const MapSource = `
Constraint Map
( inherits For and
  inherits VectorStore
    with {iterator} as {idx}
    and {begin} as {begin} at {out} and
  collect i 1
  ( inherits VectorRead
      with {iterator} as {idx}
      and {read_value[i]} as {value}
      and {begin} as {begin} at {read[i]} ) and
  inherits KernelFunction
    with {out.value} as {output}
    and {read_value} as {input}
    and {read_value} as {extra}
    and {begin} as {outer})
End
`

// FactorizationSource is the paper's Figure 2 demonstration idiom.
const FactorizationSource = `
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend}) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend}))
End
`

// LibrarySource is the complete idiom library source.
var LibrarySource = SESESource + ForSource + ForNestSource + IterMatchSource +
	MatrixIndexSource + MatrixReadSource + MatrixStoreSource +
	VectorReadSource + VectorStoreSource + ReadRangeSource + AccUseSource +
	DotProductLoopSource + GEMMSource + SPMVSource + KernelFunctionSource +
	InductionVarSource + ReductionSource + HistogramSource +
	OffsetCoreSource + OffsetIndexSource + Stencil1Source +
	Stencil2IndexSource + Stencil2Source + Stencil3IndexSource +
	Stencil3Source + MapSource + FactorizationSource
