package idioms

import (
	"strings"
	"sync"
	"testing"
)

func TestCompilePackValidation(t *testing.T) {
	cases := []struct {
		name    string
		pack    string
		source  string
		tops    []TopSpec
		wantErr string
	}{
		{"empty name", "", LibrarySource, []TopSpec{{Top: "Reduction"}}, "pack name required"},
		{"no idioms", "p", LibrarySource, nil, "declares no idioms"},
		{"empty top", "p", LibrarySource, []TopSpec{{}}, "empty top constraint"},
		{"unknown top", "p", LibrarySource, []TopSpec{{Top: "NoSuchConstraint"}}, `unknown constraint "NoSuchConstraint"`},
		{"bad IDL", "p", "Constraint Broken (", []TopSpec{{Top: "Broken"}}, "idl:"},
		{"dup idiom", "p", LibrarySource, []TopSpec{{Top: "Reduction"}, {Name: "Reduction", Top: "GEMM"}}, `duplicate idiom "Reduction"`},
		{"bad class", "p", LibrarySource, []TopSpec{{Top: "Reduction", Class: "Nonsense"}}, `unknown class "Nonsense"`},
		{"bad scheme", "p", LibrarySource, []TopSpec{{Top: "Reduction", Scheme: "outline9"}}, `unknown transform scheme "outline9"`},
	}
	for _, tc := range cases {
		_, err := CompilePack(tc.pack, tc.source, tc.tops, 0)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}

	p, err := CompilePack("blas", LibrarySource, []TopSpec{
		{Name: "MyGEMM", Top: "GEMM", Class: "Matrix Op.", Scheme: "gemm", Kind: "gemm"},
		{Top: "Reduction"},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != 7 || len(p.Idioms) != 2 || p.Lines == 0 {
		t.Fatalf("pack = %+v", p)
	}
	idm, ok := p.Idiom("MyGEMM")
	if !ok || idm.Top != "GEMM" || idm.Class != ClassMatrixOp || idm.Scheme != "gemm" {
		t.Fatalf("MyGEMM = %+v ok=%v", idm, ok)
	}
	if idm2, _ := p.Idiom("Reduction"); idm2.Class != ClassDemo {
		t.Errorf("default class = %v, want Demo", idm2.Class)
	}
	prob, ok := p.Problem("MyGEMM")
	if !ok || prob.PackVersion != 7 {
		t.Fatalf("problem version = %v ok=%v, want 7", prob, ok)
	}
}

func TestRegistryCopyOnWrite(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Pack("p"); ok {
		t.Fatal("pack in empty registry")
	}
	v1, err := r.Register("p", LibrarySource, []TopSpec{{Name: "X", Top: "Reduction"}})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 {
		t.Fatalf("first registration version = %d, want 1", v1.Version)
	}

	// Replace: the old snapshot object stays intact, the registry serves the
	// new one, and the version advances.
	v2, err := r.Register("p", LibrarySource, []TopSpec{{Name: "X", Top: "GEMM"}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version != 2 {
		t.Fatalf("replacement version = %d, want 2", v2.Version)
	}
	cur, ok := r.Pack("p")
	if !ok || cur != v2 {
		t.Fatal("registry does not serve the replacement")
	}
	if idm, _ := v1.Idiom("X"); idm.Top != "Reduction" {
		t.Error("old snapshot mutated by re-registration")
	}
	p1, _ := v1.Problem("X")
	p2, _ := v2.Problem("X")
	if p1 == p2 || p1.PackVersion == p2.PackVersion {
		t.Error("replacement shares compiled problems with the superseded pack")
	}

	// A failed registration installs nothing.
	if _, err := r.Register("q", LibrarySource, []TopSpec{{Top: "Nope"}}); err == nil {
		t.Fatal("expected failure")
	}
	if _, ok := r.Pack("q"); ok {
		t.Fatal("failed registration installed a pack")
	}
	if got := r.Packs(); len(got) != 1 || got[0] != v2 {
		t.Fatalf("Packs() = %v", got)
	}
}

// TestRegistryBound pins the registration cap: distinct names beyond the
// bound are rejected, replacements always go through.
func TestRegistryBound(t *testing.T) {
	r := NewRegistrySize(2)
	tops := []TopSpec{{Name: "X", Top: "Reduction"}}
	for _, name := range []string{"a", "b"} {
		if _, err := r.Register(name, LibrarySource, tops); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Register("c", LibrarySource, tops); err == nil ||
		!strings.Contains(err.Error(), "registry full") {
		t.Fatalf("over-bound registration err = %v", err)
	}
	if _, err := r.Register("a", LibrarySource, []TopSpec{{Name: "X", Top: "GEMM"}}); err != nil {
		t.Fatalf("replacement at the bound rejected: %v", err)
	}
	if len(r.Packs()) != 2 {
		t.Fatalf("packs = %d, want 2", len(r.Packs()))
	}
}

// TestRegistryConcurrentReaders races Register against Pack/Packs readers
// under -race: snapshot loads must never observe a torn map.
func TestRegistryConcurrentReaders(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if p, ok := r.Pack("p"); ok {
					if _, probOK := p.Problem("X"); !probOK {
						t.Error("pack visible without its problems")
						return
					}
				}
				r.Packs()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		top := "Reduction"
		if i%2 == 1 {
			top = "Histogram"
		}
		if _, err := r.Register("p", LibrarySource, []TopSpec{{Name: "X", Top: top}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
