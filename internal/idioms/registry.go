package idioms

import (
	"fmt"
	"sync"

	"repro/internal/constraint"
	"repro/internal/idl"
)

// Class categorizes idioms the way the paper's Table 1 does.
type Class int

// Idiom classes.
const (
	ClassScalarReduction Class = iota
	ClassHistogram
	ClassStencil
	ClassMatrixOp
	ClassSparseMatrixOp
	ClassMap
	ClassDemo
)

// String renders the class like the paper's table headers.
func (c Class) String() string {
	switch c {
	case ClassScalarReduction:
		return "Scalar Reduction"
	case ClassHistogram:
		return "Histogram Reduction"
	case ClassStencil:
		return "Stencil"
	case ClassMatrixOp:
		return "Matrix Op."
	case ClassSparseMatrixOp:
		return "Sparse Matrix Op."
	case ClassMap:
		return "Parallel Map"
	default:
		return "Demo"
	}
}

// Idiom describes one detectable idiom: its top-level IDL constraint and its
// class. Precedence is the order idioms are tried; more specific idioms come
// first so the detection driver can claim instructions before general ones.
type Idiom struct {
	Name  string
	Top   string // top-level constraint name in the library
	Class Class
	// Scheme names the code-replacement strategy the transform phase uses
	// for this idiom ("gemm", "spmv", "reduction", "loopbody1/2/3"). Empty
	// means the transformer's built-in per-name dispatch (the paper's
	// evaluated idioms); pack-registered idioms set it explicitly.
	Scheme string
	// Kind is the heterogeneous API kind the idiom offloads as (the key of
	// hetero.APIProfile efficiencies: "gemm", "spmv", "reduction",
	// "histogram", "stencil1/2/3", "map"). Empty means the idiom carries no
	// offload model and match results report no backend estimates for it.
	Kind string
}

// All returns the detection idioms in precedence order — the paper's idiom
// set, reproducing its Table 1 classes.
func All() []Idiom {
	return []Idiom{
		{Name: "GEMM", Top: "GEMM", Class: ClassMatrixOp, Kind: "gemm"},
		{Name: "SPMV", Top: "SPMV", Class: ClassSparseMatrixOp, Kind: "spmv"},
		{Name: "Stencil3", Top: "Stencil3", Class: ClassStencil, Kind: "stencil3"},
		{Name: "Stencil2", Top: "Stencil2", Class: ClassStencil, Kind: "stencil2"},
		{Name: "Stencil1", Top: "Stencil1", Class: ClassStencil, Kind: "stencil1"},
		{Name: "Histogram", Top: "Histogram", Class: ClassHistogram, Kind: "histogram"},
		{Name: "Reduction", Top: "Reduction", Class: ClassScalarReduction, Kind: "reduction"},
	}
}

// Extensions returns idioms beyond the paper's evaluated set — its §9
// future work. They are only detected when requested by name, so the
// Table 1 reproduction is unaffected.
func Extensions() []Idiom {
	return []Idiom{
		{Name: "Map", Top: "Map", Class: ClassMap, Kind: "map"},
	}
}

// ByName finds an idiom in the core set or the extensions.
func ByName(name string) (Idiom, bool) {
	for _, i := range All() {
		if i.Name == name {
			return i, true
		}
	}
	for _, i := range Extensions() {
		if i.Name == name {
			return i, true
		}
	}
	return Idiom{}, false
}

var (
	libOnce sync.Once
	libProg *idl.Program
	libErr  error

	probMu    sync.RWMutex
	probCache = map[string]*constraint.Problem{}
)

// Library parses the embedded IDL library once and returns it.
func Library() (*idl.Program, error) {
	libOnce.Do(func() {
		libProg, libErr = idl.ParseProgram(LibrarySource)
	})
	return libProg, libErr
}

// Problem compiles (and caches) the flattened constraint problem for a
// top-level idiom name. Every caller of the same name shares one *Problem,
// so downstream per-problem caches (the solver's static index) hit too. The
// fast path is a read lock: detection workers resolve problems concurrently.
func Problem(top string) (*constraint.Problem, error) {
	probMu.RLock()
	p, ok := probCache[top]
	probMu.RUnlock()
	if ok {
		return p, nil
	}
	probMu.Lock()
	defer probMu.Unlock()
	if p, ok := probCache[top]; ok {
		return p, nil
	}
	prog, err := Library()
	if err != nil {
		return nil, err
	}
	p, err = constraint.Compile(prog, top, constraint.CompileOptions{})
	if err != nil {
		return nil, fmt.Errorf("idioms: compiling %s: %w", top, err)
	}
	// Built-in problems carry a durable identity derived from the embedded
	// library source, so their memo entries can spill to disk and be
	// re-addressed by any process running the same library.
	p.StoreID = constraint.ProblemStoreID(LibrarySource, top)
	probCache[top] = p
	return p, nil
}

// Problems precompiles the constraint problems for a whole idiom roster,
// returning them keyed by idiom name. detect.NewEngine calls this once at
// construction so no compilation happens on the solving hot path.
func Problems(roster []Idiom) (map[string]*constraint.Problem, error) {
	out := make(map[string]*constraint.Problem, len(roster))
	for _, idm := range roster {
		p, err := Problem(idm.Top)
		if err != nil {
			return nil, err
		}
		out[idm.Name] = p
	}
	return out, nil
}

// LibraryLineCount reports the number of non-empty IDL lines — the paper
// quotes ≈500 lines for the complete idiom set.
func LibraryLineCount() int { return countLines(LibrarySource) }

// countLines counts non-empty lines of an IDL source text.
func countLines(src string) int {
	n := 0
	start := 0
	for i := 0; i <= len(src); i++ {
		if i == len(src) || src[i] == '\n' {
			line := src[start:i]
			start = i + 1
			for _, c := range line {
				if c != ' ' && c != '\t' {
					n++
					break
				}
			}
		}
	}
	return n
}
