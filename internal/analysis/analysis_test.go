package analysis

import (
	"testing"

	"repro/internal/ir"
)

// buildDiamond builds:
//
//	entry:  %c = icmp ; br %c, then, else
//	then:   %x = add 1,2 ; br merge
//	else:   %y = add 3,4 ; br merge
//	merge:  %p = phi [x,then],[y,else] ; ret %p
func buildDiamond(t *testing.T) (*ir.Function, map[string]*ir.Instruction) {
	t.Helper()
	f := ir.NewFunction("diamond", ir.Int32, ir.Arg("n", ir.Int32))
	b := ir.NewBuilder(f)
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	merge := f.NewBlock("merge")

	cond := b.ICmp(ir.PredLT, f.Args[0], ir.ConstInt(ir.Int32, 10))
	brE := b.CondBr(cond, then, els)

	b.SetBlock(then)
	x := b.Add(ir.ConstInt(ir.Int32, 1), ir.ConstInt(ir.Int32, 2))
	brT := b.Br(merge)

	b.SetBlock(els)
	y := b.Add(ir.ConstInt(ir.Int32, 3), ir.ConstInt(ir.Int32, 4))
	brF := b.Br(merge)

	b.SetBlock(merge)
	p := b.Phi(ir.Int32, "p")
	ir.AddIncoming(p, x, then)
	ir.AddIncoming(p, y, els)
	ret := b.Ret(p)

	if err := ir.Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return f, map[string]*ir.Instruction{
		"cond": cond, "brE": brE, "x": x, "brT": brT, "y": y, "brF": brF, "p": p, "ret": ret,
	}
}

// buildLoop builds a canonical counted loop summing a[i].
func buildLoop(t *testing.T) (*ir.Function, map[string]*ir.Instruction) {
	t.Helper()
	f := ir.NewFunction("sum", ir.Double, ir.Arg("a", ir.PointerTo(ir.Double)), ir.Arg("n", ir.Int64))
	b := ir.NewBuilder(f)
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	brEntry := b.Br(header)

	b.SetBlock(header)
	i := b.Phi(ir.Int64, "i")
	acc := b.Phi(ir.Double, "acc")
	cond := b.ICmp(ir.PredLT, i, f.Args[1])
	guard := b.CondBr(cond, body, exit)

	b.SetBlock(body)
	addr := b.GEP(f.Args[0], i)
	v := b.Load(addr)
	acc2 := b.FAdd(acc, v)
	i2 := b.Add(i, ir.ConstInt(ir.Int64, 1))
	backedge := b.Br(header)

	ir.AddIncoming(i, ir.ConstInt(ir.Int64, 0), f.Entry())
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(acc, ir.ConstFloat(ir.Double, 0), f.Entry())
	ir.AddIncoming(acc, acc2, body)

	b.SetBlock(exit)
	ret := b.Ret(acc)

	if err := ir.Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return f, map[string]*ir.Instruction{
		"brEntry": brEntry, "i": i, "acc": acc, "cond": cond, "guard": guard,
		"addr": addr, "v": v, "acc2": acc2, "i2": i2, "backedge": backedge, "ret": ret,
	}
}

func TestCFGEdges(t *testing.T) {
	f, m := buildDiamond(t)
	a := Analyze(f)

	if !a.HasControlFlowTo(m["cond"], m["brE"]) {
		t.Error("fallthrough edge cond→brE missing")
	}
	if !a.HasControlFlowTo(m["brE"], m["x"]) || !a.HasControlFlowTo(m["brE"], m["y"]) {
		t.Error("branch edges to both arms missing")
	}
	if !a.HasControlFlowTo(m["brT"], m["p"]) {
		t.Error("edge brT→phi missing (phi is first instr of merge)")
	}
	if a.HasControlFlowTo(m["x"], m["y"]) {
		t.Error("no edge between the two arms")
	}
	if got := len(a.Successors(m["ret"])); got != 0 {
		t.Errorf("ret should have no successors, got %d", got)
	}
	if got := len(a.Predecessors(m["p"])); got != 2 {
		t.Errorf("phi should have 2 predecessors, got %d", got)
	}
}

func TestDominance(t *testing.T) {
	f, m := buildDiamond(t)
	a := Analyze(f)

	if !a.Dominates(m["cond"], m["ret"]) {
		t.Error("entry cond must dominate ret")
	}
	if !a.Dominates(m["brE"], m["x"]) {
		t.Error("brE must dominate then-arm")
	}
	if a.Dominates(m["x"], m["p"]) {
		t.Error("then-arm must not dominate merge (else path exists)")
	}
	if !a.Dominates(m["p"], m["p"]) {
		t.Error("dominance is reflexive")
	}
	if a.StrictlyDominates(m["p"], m["p"]) {
		t.Error("strict dominance is irreflexive")
	}
	if !a.StrictlyDominates(m["cond"], m["p"]) {
		t.Error("cond strictly dominates phi")
	}
}

func TestPostDominance(t *testing.T) {
	f, m := buildDiamond(t)
	a := Analyze(f)

	if !a.PostDominates(m["ret"], m["cond"]) {
		t.Error("ret must post-dominate entry")
	}
	if !a.PostDominates(m["p"], m["brE"]) {
		t.Error("merge phi must post-dominate the branch")
	}
	if a.PostDominates(m["x"], m["brE"]) {
		t.Error("then-arm must not post-dominate the branch")
	}
	if !a.StrictlyPostDominates(m["ret"], m["p"]) {
		t.Error("ret strictly post-dominates phi")
	}
}

func TestLoopDominance(t *testing.T) {
	f, m := buildLoop(t)
	a := Analyze(f)

	if !a.Dominates(m["i"], m["acc2"]) {
		t.Error("header phi dominates loop body")
	}
	if !a.Dominates(m["guard"], m["backedge"]) {
		t.Error("guard dominates backedge")
	}
	if !a.PostDominates(m["ret"], m["i"]) {
		t.Error("ret post-dominates header")
	}
	// The backedge returns control to the header: loop body does not
	// post-dominate the guard (exit path skips it).
	if a.PostDominates(m["v"], m["guard"]) {
		t.Error("body must not post-dominate guard")
	}
}

func TestDataFlow(t *testing.T) {
	f, m := buildLoop(t)
	a := Analyze(f)

	if !a.HasDataFlowTo(m["i"], m["addr"]) {
		t.Error("i flows into gep")
	}
	if !a.HasDataFlowTo(f.Args[0], m["addr"]) {
		t.Error("argument flows into gep")
	}
	if a.HasDataFlowTo(m["v"], m["i2"]) {
		t.Error("loaded value does not flow into increment")
	}
	if !a.DataFlowReaches(f.Args[0], m["acc2"]) {
		t.Error("a reaches the accumulator transitively (gep→load→fadd)")
	}
	if !a.DataFlowReaches(m["i"], m["ret"]) {
		t.Error("i reaches ret via acc? no — but via addr->load->facc->phi->ret yes")
	}
	if len(a.Users(m["i"])) < 3 {
		t.Errorf("i should have >=3 users (cmp, gep, inc), got %d", len(a.Users(m["i"])))
	}
}

func TestReachesPhiFrom(t *testing.T) {
	f, m := buildLoop(t)
	a := Analyze(f)
	_ = f

	if !a.ReachesPhiFrom(m["i2"], m["i"], m["backedge"]) {
		t.Error("i2 reaches phi i from backedge")
	}
	if !a.ReachesPhiFrom(ir.ConstInt(ir.Int64, 0), m["i"], m["brEntry"]) {
		// Note: constants are interned per call; this uses a fresh constant
		// so pointer equality fails — that is intended SSA behaviour. The
		// actual incoming constant must be fetched from the phi.
		t.Skip("constant identity is by pointer; see TestReachesPhiConstIdentity")
	}
}

func TestReachesPhiConstIdentity(t *testing.T) {
	f, m := buildLoop(t)
	a := Analyze(f)
	_ = f
	phi := m["i"]
	initVal := phi.IncomingFor(f_entryOf(phi))
	if initVal == nil {
		t.Fatal("no incoming from entry")
	}
	if !a.ReachesPhiFrom(initVal, phi, m["brEntry"]) {
		t.Error("stored incoming constant must satisfy ReachesPhiFrom")
	}
	if a.ReachesPhiFrom(initVal, phi, m["backedge"]) {
		t.Error("init value must not reach from backedge")
	}
}

func f_entryOf(phi *ir.Instruction) *ir.Block {
	return phi.Block.Parent.Entry()
}

func TestAllControlFlowPassesThrough(t *testing.T) {
	f, m := buildLoop(t)
	a := Analyze(f)
	_ = f

	// Every path from the guard to the backedge passes through the load.
	if !a.AllControlFlowPassesThrough(m["guard"], m["backedge"], m["v"]) {
		t.Error("guard→backedge must pass through loop body load")
	}
	// Not every path from guard to ret passes through the body.
	if a.AllControlFlowPassesThrough(m["guard"], m["ret"], m["v"]) {
		t.Error("guard→ret can bypass the body")
	}
	// Endpoint cases hold trivially.
	if !a.AllControlFlowPassesThrough(m["guard"], m["v"], m["guard"]) {
		t.Error("via == from holds trivially")
	}
}

func TestAllDataFlowPassesThrough(t *testing.T) {
	f, m := buildLoop(t)
	a := Analyze(f)

	// a flows to acc2 only through the load v.
	if !a.AllDataFlowPassesThrough(f.Args[0], m["acc2"], m["v"]) {
		t.Error("a→acc2 passes through load")
	}
	// i flows to backedge... i has no path to ret except via phi/acc chain;
	// check a failing case: i→acc2 does not all pass through i2.
	if a.AllDataFlowPassesThrough(m["i"], m["acc2"], m["i2"]) {
		t.Error("i→acc2 via addr/load bypasses i2")
	}
}

func TestAllFlowKilledBy(t *testing.T) {
	f, m := buildLoop(t)
	a := Analyze(f)

	// All flow from {a, i} into {acc2} is killed by {v}: the only paths go
	// addr→v→acc2 where v is the killer... i also flows via addr into v.
	if !a.AllFlowKilledBy(
		[]ir.Value{f.Args[0], m["i"]},
		[]ir.Value{m["acc2"]},
		[]ir.Value{m["v"]},
	) {
		t.Error("flow into acc2 should be killed by the load")
	}
	// Without the killer it is not killed.
	if a.AllFlowKilledBy(
		[]ir.Value{f.Args[0]},
		[]ir.Value{m["acc2"]},
		[]ir.Value{m["i2"]},
	) {
		t.Error("i2 does not kill a→acc2")
	}
	// A source that is itself a sink fails immediately.
	if a.AllFlowKilledBy([]ir.Value{m["v"]}, []ir.Value{m["v"]}, nil) {
		t.Error("source==sink must not be killed")
	}
}

func TestMemoryDependence(t *testing.T) {
	// store then load through the same argument pointer must carry a
	// dependence edge; loads/stores on distinct allocas must not.
	f := ir.NewFunction("mem", ir.Void, ir.Arg("p", ir.PointerTo(ir.Double)))
	b := ir.NewBuilder(f)
	st := b.Store(ir.ConstFloat(ir.Double, 1), f.Args[0])
	ld := b.Load(f.Args[0])
	al1 := b.Alloca(ir.Double, 1, "s1")
	al2 := b.Alloca(ir.Double, 1, "s2")
	st2 := b.Store(ir.ConstFloat(ir.Double, 2), al1)
	ld2 := b.Load(al2)
	b.Ret(nil)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	a := Analyze(f)

	if !a.HasDependenceEdgeTo(st, ld) {
		t.Error("store→load on same pointer needs a dependence edge")
	}
	if a.HasDependenceEdgeTo(st2, ld2) {
		t.Error("accesses to distinct allocas must not carry an edge")
	}
	_ = ld
}

func TestBasePointerAndAlias(t *testing.T) {
	f := ir.NewFunction("alias", ir.Void,
		ir.Arg("p", ir.PointerTo(ir.Double)), ir.Arg("q", ir.PointerTo(ir.Double)))
	b := ir.NewBuilder(f)
	g1 := b.GEP(f.Args[0], ir.ConstInt(ir.Int64, 1))
	g2 := b.GEP(g1, ir.ConstInt(ir.Int64, 2))
	b.Ret(nil)
	a := Analyze(f)

	if a.BasePointer(g2) != f.Args[0] {
		t.Error("BasePointer must walk GEP chains to the argument")
	}
	if !a.MayAlias(g2, f.Args[0]) {
		t.Error("derived pointer aliases its base")
	}
	if a.MayAlias(f.Args[0], f.Args[1]) {
		t.Error("distinct arguments assumed non-aliasing (runtime-checked)")
	}
}

func TestDataFlowDominates(t *testing.T) {
	f, m := buildLoop(t)
	a := Analyze(f)
	_ = f

	// Every flow into acc2 from roots passes through... acc2's operands are
	// acc(phi) and v(load). The phi acc has operands const + acc2 (cycle).
	// v dominates nothing else's paths: check reflexivity + a positive case.
	if !a.DataFlowDominates(m["acc2"], m["acc2"]) {
		t.Error("reflexive")
	}
	// addr data-flow dominates v: v's only operand is addr.
	if !a.DataFlowDominates(m["addr"], m["v"]) {
		t.Error("addr dominates v in dataflow")
	}
	// v does not dominate acc2 (path via phi acc reaches roots).
	if a.DataFlowDominates(m["v"], m["acc2"]) {
		t.Error("v must not dominate acc2")
	}
}

func TestUnreachableBlockDoesNotBreakAnalysis(t *testing.T) {
	f := ir.NewFunction("unreach", ir.Void)
	b := ir.NewBuilder(f)
	exit := f.NewBlock("exit")
	b.Br(exit)
	dead := f.NewBlock("dead")
	b.SetBlock(dead)
	deadAdd := b.Add(ir.ConstInt(ir.Int32, 1), ir.ConstInt(ir.Int32, 1))
	b.Br(exit)
	b.SetBlock(exit)
	ret := b.Ret(nil)
	a := Analyze(f)
	_ = deadAdd
	if !a.PostDominates(ret, f.Entry().Instrs[0]) {
		t.Error("ret still post-dominates entry")
	}
}
