package analysis

import (
	"repro/internal/ir"
)

// Info holds every analysis result for one function. It is computed once by
// Analyze and then queried (read-only) by the constraint solver, so a single
// Info may be shared across goroutines.
type Info struct {
	Fn *ir.Function

	// Instrs is every instruction of the function in block order.
	Instrs []*ir.Instruction
	// Index maps an instruction to its position in Instrs.
	Index map[*ir.Instruction]int

	succs [][]int
	preds [][]int

	// dom[i] is the set of instructions dominating instruction i
	// (reflexive). pdom[i] is the post-dominator set.
	dom  []bitset
	pdom []bitset

	// users maps a value to the instructions using it as an operand.
	users map[ir.Value][]*ir.Instruction

	// memdeps[i] lists indices of instructions with a memory dependence
	// edge from Instrs[i].
	memdeps [][]int

	// base holds the precomputed BasePointer of every instruction, argument
	// and operand of the function. It is filled in Analyze and read-only
	// afterwards, keeping the shared-across-goroutines contract above.
	base map[ir.Value]ir.Value
}

// Analyze computes all analyses for f.
func Analyze(f *ir.Function) *Info {
	info := &Info{
		Fn:    f,
		Index: map[*ir.Instruction]int{},
		users: map[ir.Value][]*ir.Instruction{},
		base:  map[ir.Value]ir.Value{},
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			info.Index[in] = len(info.Instrs)
			info.Instrs = append(info.Instrs, in)
		}
	}
	n := len(info.Instrs)
	info.succs = make([][]int, n)
	info.preds = make([][]int, n)

	for i, in := range info.Instrs {
		switch {
		case in.Op == ir.OpRet:
			// no successors
		case in.Op == ir.OpBr:
			for _, s := range in.Succs {
				if first := s.First(); first != nil {
					j := info.Index[first]
					info.succs[i] = append(info.succs[i], j)
					info.preds[j] = append(info.preds[j], i)
				}
			}
		default:
			// fallthrough to next instruction in the same block
			blk := in.Block
			pos := -1
			for k, bi := range blk.Instrs {
				if bi == in {
					pos = k
					break
				}
			}
			if pos >= 0 && pos+1 < len(blk.Instrs) {
				j := info.Index[blk.Instrs[pos+1]]
				info.succs[i] = append(info.succs[i], j)
				info.preds[j] = append(info.preds[j], i)
			}
		}
		for _, op := range in.Ops {
			info.users[op] = append(info.users[op], in)
		}
	}

	info.computeBasePointers()
	info.computeDominance()
	info.computePostDominance()
	info.computeMemDeps()
	return info
}

// computeBasePointers memoizes basePointerWalk for every value reachable
// from the function so that BasePointer never mutates Info at query time.
func (a *Info) computeBasePointers() {
	for _, arg := range a.Fn.Args {
		a.base[arg] = basePointerWalk(arg)
	}
	for _, in := range a.Instrs {
		a.base[in] = basePointerWalk(in)
		for _, op := range in.Ops {
			if _, ok := a.base[op]; !ok {
				a.base[op] = basePointerWalk(op)
			}
		}
	}
}

func (a *Info) computeDominance() {
	n := len(a.Instrs)
	a.dom = make([]bitset, n)
	for i := range a.dom {
		a.dom[i] = newBitset(n)
		a.dom[i].setAll()
	}
	if n == 0 {
		return
	}
	entry := 0
	a.dom[entry] = newBitset(n)
	a.dom[entry].set(entry)

	changed := true
	tmp := newBitset(n)
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if i == entry {
				continue
			}
			if len(a.preds[i]) == 0 {
				// unreachable: keep "all" (vacuous)
				continue
			}
			tmp.setAll()
			for _, p := range a.preds[i] {
				tmp.intersectWith(a.dom[p])
			}
			tmp.set(i)
			if !equalBits(tmp, a.dom[i]) {
				a.dom[i].copyFrom(tmp)
				changed = true
			}
		}
	}
}

func (a *Info) computePostDominance() {
	n := len(a.Instrs)
	a.pdom = make([]bitset, n)
	for i := range a.pdom {
		a.pdom[i] = newBitset(n)
		a.pdom[i].setAll()
	}
	exits := []int{}
	for i, in := range a.Instrs {
		if len(a.succs[i]) == 0 || in.Op == ir.OpRet {
			exits = append(exits, i)
		}
	}
	for _, e := range exits {
		a.pdom[e] = newBitset(n)
		a.pdom[e].set(e)
	}
	changed := true
	tmp := newBitset(n)
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			if len(a.succs[i]) == 0 {
				continue
			}
			tmp.setAll()
			for _, s := range a.succs[i] {
				tmp.intersectWith(a.pdom[s])
			}
			tmp.set(i)
			if !equalBits(tmp, a.pdom[i]) {
				a.pdom[i].copyFrom(tmp)
				changed = true
			}
		}
	}
}

func equalBits(x, y bitset) bool {
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// computeMemDeps records store→load and load→store dependence edges between
// instructions whose base pointers may alias.
func (a *Info) computeMemDeps() {
	n := len(a.Instrs)
	a.memdeps = make([][]int, n)
	var mems []int
	for i, in := range a.Instrs {
		if in.Op == ir.OpLoad || in.Op == ir.OpStore {
			mems = append(mems, i)
		}
	}
	for _, i := range mems {
		for _, j := range mems {
			if i == j {
				continue
			}
			x, y := a.Instrs[i], a.Instrs[j]
			// A dependence edge exists when at least one endpoint writes
			// and the accessed objects may alias.
			if x.Op == ir.OpLoad && y.Op == ir.OpLoad {
				continue
			}
			if a.MayAlias(memPointer(x), memPointer(y)) {
				a.memdeps[i] = append(a.memdeps[i], j)
			}
		}
	}
}

func memPointer(in *ir.Instruction) ir.Value {
	if in.Op == ir.OpLoad {
		return in.Ops[0]
	}
	return in.Ops[1] // store
}

// BasePointer walks a GEP chain back to the underlying object: an argument,
// alloca, global, load result or phi.
func (a *Info) BasePointer(v ir.Value) ir.Value {
	if b, ok := a.base[v]; ok {
		return b
	}
	// Values outside the analysed function (or fresh constants) miss the
	// precomputed memo; walk without memoizing so reads stay lock-free.
	return basePointerWalk(v)
}

func basePointerWalk(v ir.Value) ir.Value {
	cur := v
	for {
		in, ok := cur.(*ir.Instruction)
		if !ok {
			return cur
		}
		switch in.Op {
		case ir.OpGEP, ir.OpBitcast:
			cur = in.Ops[0]
		default:
			return cur
		}
	}
}

// MayAlias conservatively decides whether two pointers may address the same
// object. Distinct allocas never alias; distinct arguments are assumed not
// to alias (the paper relies on runtime checks for this, see §6.3); anything
// else may alias when the bases are equal.
func (a *Info) MayAlias(p, q ir.Value) bool {
	bp, bq := a.BasePointer(p), a.BasePointer(q)
	if bp == bq {
		return true
	}
	ip, okp := bp.(*ir.Instruction)
	iq, okq := bq.(*ir.Instruction)
	if okp && okq && ip.Op == ir.OpAlloca && iq.Op == ir.OpAlloca {
		return false
	}
	_, ap := bp.(*ir.Argument)
	_, aq := bq.(*ir.Argument)
	if ap && aq {
		return false // restrict-style assumption, backed by runtime checks
	}
	if ap && okq && iq.Op == ir.OpAlloca || aq && okp && ip.Op == ir.OpAlloca {
		return false
	}
	return true
}
