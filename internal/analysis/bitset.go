// Package analysis provides the program analyses the Idiom Description
// Language's atomic constraints are evaluated against: an instruction-
// granularity control flow graph, dominance and post-dominance, def-use
// data flow, memory dependence edges, and path ("passes through" / "killed
// by") queries.
//
// Control flow is modelled at the granularity of instructions, exactly as
// the paper specifies: "Control flow in our model is evaluated on the
// granularity of instructions. ... For phi nodes, the incoming basic blocks
// are identified with their terminating branch instruction."
package analysis

import "math/bits"

// bitset is a fixed-capacity bit vector used by the dataflow solvers.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) setAll() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

func (b bitset) copyFrom(o bitset) {
	copy(b, o)
}

// intersectWith computes b &= o and reports whether b changed.
func (b bitset) intersectWith(o bitset) bool {
	changed := false
	for i := range b {
		nv := b[i] & o[i]
		if nv != b[i] {
			changed = true
			b[i] = nv
		}
	}
	return changed
}

// unionWith computes b |= o and reports whether b changed.
func (b bitset) unionWith(o bitset) bool {
	changed := false
	for i := range b {
		nv := b[i] | o[i]
		if nv != b[i] {
			changed = true
			b[i] = nv
		}
	}
	return changed
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}
