package analysis

// Natural-loop structure queries over the instruction-level CFG. The
// similarity prescreen consumes these to characterize a function's loop nest
// without re-deriving dominance; they are exact for the reducible CFGs the
// mini-C frontend emits (every loop is a counted For with a single back edge).

// LoopHeaders returns the indices (into Instrs) of natural-loop headers: the
// targets of CFG back edges, i.e. instructions h with an incoming edge i→h
// where h dominates i. Each source-level loop contributes exactly one header.
func (a *Info) LoopHeaders() []int {
	var out []int
	seen := map[int]bool{}
	for i, ss := range a.succs {
		for _, h := range ss {
			if a.dom[i].has(h) && !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	return out
}

// LoopDepth returns the maximum loop-nest depth of the function: the largest
// number of natural loops any single instruction belongs to. Sequential
// sibling loops each count depth 1; straight-line code reports 0. Membership
// is the textbook natural loop of each back edge — the header plus every
// node that reaches the back-edge source without passing through the header.
func (a *Info) LoopDepth() int {
	depth := make([]int, len(a.Instrs))
	counted := map[int]bool{} // headers already expanded (one loop per header)
	for i, ss := range a.succs {
		for _, h := range ss {
			if !a.dom[i].has(h) || counted[h] {
				continue
			}
			counted[h] = true
			// Backward walk from every back-edge source of h, stopping at h.
			in := map[int]bool{h: true}
			var stack []int
			for j, tt := range a.succs {
				for _, t := range tt {
					if t == h && a.dom[j].has(h) && !in[j] {
						in[j] = true
						stack = append(stack, j)
					}
				}
			}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range a.preds[n] {
					if !in[p] {
						in[p] = true
						stack = append(stack, p)
					}
				}
			}
			for n := range in {
				depth[n]++
			}
		}
	}
	max := 0
	for _, d := range depth {
		if d > max {
			max = d
		}
	}
	return max
}
