package analysis

import (
	"repro/internal/ir"
)

// HasControlFlowTo reports whether there is a direct control flow edge from
// a to b in the instruction-granularity CFG.
func (a *Info) HasControlFlowTo(x, y *ir.Instruction) bool {
	i, ok := a.Index[x]
	if !ok {
		return false
	}
	j, ok := a.Index[y]
	if !ok {
		return false
	}
	for _, s := range a.succs[i] {
		if s == j {
			return true
		}
	}
	return false
}

// Successors returns the CFG successors of x.
func (a *Info) Successors(x *ir.Instruction) []*ir.Instruction {
	i, ok := a.Index[x]
	if !ok {
		return nil
	}
	out := make([]*ir.Instruction, 0, len(a.succs[i]))
	for _, s := range a.succs[i] {
		out = append(out, a.Instrs[s])
	}
	return out
}

// Predecessors returns the CFG predecessors of x.
func (a *Info) Predecessors(x *ir.Instruction) []*ir.Instruction {
	i, ok := a.Index[x]
	if !ok {
		return nil
	}
	out := make([]*ir.Instruction, 0, len(a.preds[i]))
	for _, p := range a.preds[i] {
		out = append(out, a.Instrs[p])
	}
	return out
}

// Dominates reports whether x dominates y (reflexively).
func (a *Info) Dominates(x, y *ir.Instruction) bool {
	i, ok := a.Index[x]
	if !ok {
		return false
	}
	j, ok := a.Index[y]
	if !ok {
		return false
	}
	return a.dom[j].has(i)
}

// StrictlyDominates reports whether x dominates y and x != y.
func (a *Info) StrictlyDominates(x, y *ir.Instruction) bool {
	return x != y && a.Dominates(x, y)
}

// PostDominates reports whether x post-dominates y (reflexively).
func (a *Info) PostDominates(x, y *ir.Instruction) bool {
	i, ok := a.Index[x]
	if !ok {
		return false
	}
	j, ok := a.Index[y]
	if !ok {
		return false
	}
	return a.pdom[j].has(i)
}

// StrictlyPostDominates reports whether x post-dominates y and x != y.
func (a *Info) StrictlyPostDominates(x, y *ir.Instruction) bool {
	return x != y && a.PostDominates(x, y)
}

// HasDataFlowTo reports a direct def-use edge: y uses x as an operand.
func (a *Info) HasDataFlowTo(x ir.Value, y *ir.Instruction) bool {
	for _, op := range y.Ops {
		if op == x {
			return true
		}
	}
	return false
}

// Users returns the instructions that use v as an operand.
func (a *Info) Users(v ir.Value) []*ir.Instruction {
	return a.users[v]
}

// HasDependenceEdgeTo reports a dependence edge from x to y: either a direct
// def-use edge or a memory dependence (may-aliasing load/store pair).
func (a *Info) HasDependenceEdgeTo(x, y *ir.Instruction) bool {
	if a.HasDataFlowTo(x, y) {
		return true
	}
	i, ok := a.Index[x]
	if !ok {
		return false
	}
	j, ok := a.Index[y]
	if !ok {
		return false
	}
	for _, d := range a.memdeps[i] {
		if d == j {
			return true
		}
	}
	return false
}

// DataFlowReaches reports whether value x transitively flows into value y
// through def-use edges.
func (a *Info) DataFlowReaches(x, y ir.Value) bool {
	if x == y {
		return true
	}
	seen := map[ir.Value]bool{x: true}
	stack := []ir.Value{x}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range a.users[cur] {
			if ir.Value(u) == y {
				return true
			}
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return false
}

// AllControlFlowPassesThrough reports whether every CFG path from `from` to
// `to` passes through `via`. It holds vacuously when `to` is unreachable
// from `from`. Paths are instruction paths; `via` on an endpoint counts.
func (a *Info) AllControlFlowPassesThrough(from, to, via *ir.Instruction) bool {
	if from == via || to == via {
		return true
	}
	i, ok := a.Index[from]
	if !ok {
		return true
	}
	j, ok := a.Index[to]
	if !ok {
		return true
	}
	v, ok := a.Index[via]
	if !ok {
		return false
	}
	// Reachability from `from` to `to` avoiding `via`.
	seen := newBitset(len(a.Instrs))
	seen.set(i)
	stack := []int{i}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == j {
			return false
		}
		for _, s := range a.succs[cur] {
			if s == v || seen.has(s) {
				continue
			}
			seen.set(s)
			stack = append(stack, s)
		}
	}
	return true
}

// AllDataFlowPassesThrough reports whether every def-use path from value x
// to value y passes through value via.
func (a *Info) AllDataFlowPassesThrough(x, y, via ir.Value) bool {
	if x == via || y == via {
		return true
	}
	seen := map[ir.Value]bool{x: true}
	stack := []ir.Value{x}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range a.users[cur] {
			uv := ir.Value(u)
			if uv == via {
				continue
			}
			if uv == y {
				return false
			}
			if !seen[uv] {
				seen[uv] = true
				stack = append(stack, uv)
			}
		}
	}
	return true
}

// AllFlowKilledBy reports whether every def-use path from any source to any
// sink passes through at least one killer. This implements IDL's
// "all flow from {..} to {..} is killed by {..}" atomic.
func (a *Info) AllFlowKilledBy(sources, sinks, killers []ir.Value) bool {
	killer := map[ir.Value]bool{}
	for _, k := range killers {
		killer[k] = true
	}
	sink := map[ir.Value]bool{}
	for _, s := range sinks {
		sink[s] = true
	}
	for _, src := range sources {
		if killer[src] {
			continue
		}
		if sink[src] {
			return false
		}
		seen := map[ir.Value]bool{src: true}
		stack := []ir.Value{src}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range a.users[cur] {
				uv := ir.Value(u)
				if killer[uv] {
					continue
				}
				if sink[uv] {
					return false
				}
				if !seen[uv] {
					seen[uv] = true
					stack = append(stack, uv)
				}
			}
		}
	}
	return true
}

// ReachesPhiFrom reports whether value v is the incoming value of phi for
// the predecessor block terminated by branch instruction from. This is the
// paper's "{v} reaches phi node {phi} from {from}" atomic: incoming basic
// blocks are identified with their terminating branch instruction.
func (a *Info) ReachesPhiFrom(v ir.Value, phi, from *ir.Instruction) bool {
	if phi.Op != ir.OpPhi || from.Op != ir.OpBr {
		return false
	}
	for i, ib := range phi.Incoming {
		if ib.Terminator() == from && phi.Ops[i] == v {
			return true
		}
	}
	return false
}

// DataFlowDominates reports whether x dominates y in the data-flow graph:
// every def-use path from a data-flow root (function argument or operand-
// free instruction) to y passes through x. Reflexive.
func (a *Info) DataFlowDominates(x, y ir.Value) bool {
	if x == y {
		return true
	}
	// BFS backwards from y over operands, stopping at x. If we can reach a
	// root without meeting x, x does not dominate y.
	seen := map[ir.Value]bool{y: true}
	stack := []ir.Value{y}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in, ok := cur.(*ir.Instruction)
		if !ok {
			// reached an argument or constant without passing x
			return false
		}
		if len(in.Ops) == 0 {
			return false
		}
		for _, op := range in.Ops {
			if op == x {
				continue
			}
			if !seen[op] {
				seen[op] = true
				stack = append(stack, op)
			}
		}
	}
	return true
}
