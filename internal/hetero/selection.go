package hetero

import "sort"

// RankedAPI is one API choice for an idiom kind on one device, with the
// profile efficiency and the resulting effective throughput — the static
// Table 3 style ranking the match surface serves before any execution
// happens (the dynamic counterpart, Estimate/BestOnDevice, needs measured
// operation counts from a run).
type RankedAPI struct {
	API string
	// Efficiency is the profile's fraction-of-peak for (device, kind).
	Efficiency float64
	// EffectiveGFLOPS is Efficiency × the device's kernel throughput — the
	// cross-device comparison score (0.85 of a Titan X beats 0.85 of a
	// four-core CPU).
	EffectiveGFLOPS float64
}

// RankOnDevice lists every API implementing the idiom kind on the device,
// best first (efficiency descending, name ascending on ties — deterministic
// for wire encoding). branchyKernel excludes NeedsStraightLineKernel APIs:
// a kernel containing control flow cannot be expressed in them (the paper's
// Halide restriction), so they must not be ranked or selected for it.
func RankOnDevice(dev DeviceKind, kind string, branchyKernel bool) []RankedAPI {
	d := DeviceByKind(dev)
	var out []RankedAPI
	for _, a := range APIs() {
		if a.NeedsStraightLineKernel && branchyKernel {
			continue
		}
		if eff, ok := a.Supports(dev, kind); ok {
			out = append(out, RankedAPI{
				API:             a.Name,
				Efficiency:      eff,
				EffectiveGFLOPS: eff * d.ComputeGFLOPS,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Efficiency != out[j].Efficiency {
			return out[i].Efficiency > out[j].Efficiency
		}
		return out[i].API < out[j].API
	})
	return out
}

// SelectBackend picks the API serving an idiom kind: the best-ranked API on
// the target device, or — with no target — the best effective throughput
// across all devices (the paper's "try all applicable libraries and DSLs
// and pick the best", statically). branchyKernel propagates the
// straight-line restriction as in RankOnDevice. ok is false when no
// profiled API implements the kind (custom idioms without an offload
// model, or every candidate excluded).
func SelectBackend(kind string, target DeviceKind, anyDevice, branchyKernel bool) (api string, dev DeviceKind, ok bool) {
	if kind == "" {
		return "", 0, false
	}
	if !anyDevice {
		ranked := RankOnDevice(target, kind, branchyKernel)
		if len(ranked) == 0 {
			return "", 0, false
		}
		return ranked[0].API, target, true
	}
	best := RankedAPI{}
	for _, d := range Devices() {
		ranked := RankOnDevice(d.Kind, kind, branchyKernel)
		if len(ranked) == 0 {
			continue
		}
		if !ok || ranked[0].EffectiveGFLOPS > best.EffectiveGFLOPS {
			best, dev, ok = ranked[0], d.Kind, true
		}
	}
	return best.API, dev, ok
}

// DeviceKindByName resolves a wire device name ("CPU", "iGPU", "GPU") as
// rendered by DeviceKind.String.
func DeviceKindByName(name string) (DeviceKind, bool) {
	for _, d := range Devices() {
		if d.Kind.String() == name {
			return d.Kind, true
		}
	}
	return 0, false
}
