// Package hetero is the heterogeneous execution substrate of the
// reproduction. It provides:
//
//   - runtime implementations for every API entry point the transformation
//     phase emits (gemm, spmv, reduction, histogram, stencil1/2/3), executing
//     outlined kernels through the interpreter so results are bit-identical
//     to the sequential original;
//   - analytic device models for the paper's three platforms (AMD A10-7850K
//     CPU, Radeon R7 iGPU, GTX Titan X external GPU) — the documented
//     substitution for the hardware we do not have;
//   - per-API efficiency profiles reproducing the relative standings of
//     MKL/cuBLAS/clBLAS/CLBlast/cuSPARSE/clSPARSE/libSPMV/Halide/Lift in the
//     paper's Table 3.
package hetero

import (
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
)

// CallRecord captures the dynamic cost of one API call for the device
// timing model.
type CallRecord struct {
	Extern  string
	Backend string // e.g. "cusparse", "mkl", "lift"
	API     string // gemm | spmv | reduction | histogram | stencil1/2/3
	Counts  interp.Counts
	// Buffers are the distinct memory objects the call touched; their sizes
	// drive the transfer cost model.
	Buffers []*interp.Buffer
	// KernelHasBranch marks DSL calls whose outlined kernel contains
	// control flow (conditional stencils, clamped updates); APIs with
	// NeedsStraightLineKernel cannot take these.
	KernelHasBranch bool
}

// TransferBytes sums the sizes of all touched buffers.
func (c *CallRecord) TransferBytes() int64 {
	var n int64
	for _, b := range c.Buffers {
		n += int64(len(b.Data))
	}
	return n
}

// Ledger accumulates API call records during a transformed-program run.
type Ledger struct {
	Calls []CallRecord
}

// SplitExtern decomposes "backend.api#kernel".
func SplitExtern(name string) (backend, api, kernel string) {
	if i := strings.Index(name, "#"); i >= 0 {
		kernel = name[i+1:]
		name = name[:i]
	}
	if i := strings.Index(name, "."); i >= 0 {
		backend = name[:i]
		api = name[i+1:]
	} else {
		api = name
	}
	return backend, api, kernel
}

// Bind registers implementations for every external symbol declared in the
// machine's module. Call records are appended to the ledger (which may be
// nil when only correctness matters).
func Bind(m *interp.Machine, ledger *Ledger) error {
	for _, g := range m.Mod.Externals {
		g := g
		backend, api, kernel := SplitExtern(g.Ident)
		var kernelFn *ir.Function
		if kernel != "" {
			kernelFn = m.Mod.FunctionByName(kernel)
			if kernelFn == nil {
				return fmt.Errorf("hetero: extern %s references missing kernel %s", g.Ident, kernel)
			}
		}
		impl, err := implFor(api, kernelFn)
		if err != nil {
			return fmt.Errorf("hetero: %s: %w", g.Ident, err)
		}
		kernelBranches := KernelHasBranches(kernelFn)
		m.Externs[g.Ident] = func(mach *interp.Machine, args []interp.Value) (interp.Value, error) {
			before := mach.Counts
			ret, err := impl(mach, args)
			if err != nil {
				return ret, err
			}
			if ledger != nil {
				delta := mach.Counts
				deltaSub(&delta, before)
				ledger.Calls = append(ledger.Calls, CallRecord{
					Extern:          g.Ident,
					Backend:         backend,
					API:             api,
					Counts:          delta,
					Buffers:         distinctBuffers(args),
					KernelHasBranch: kernelBranches,
				})
			}
			return ret, nil
		}
	}
	return nil
}

// KernelHasBranches reports whether an outlined kernel function contains
// control flow — the property that disqualifies NeedsStraightLineKernel
// APIs (the paper's Halide failures on conditional stencils). A nil kernel
// (library calls) is branch-free.
func KernelHasBranches(fn *ir.Function) bool {
	if fn == nil {
		return false
	}
	for _, blk := range fn.Blocks {
		if t := blk.Terminator(); t != nil && len(t.Succs) > 1 {
			return true
		}
	}
	return false
}

func deltaSub(c *interp.Counts, before interp.Counts) {
	c.Flops -= before.Flops
	c.MathOps -= before.MathOps
	c.IntOps -= before.IntOps
	c.Loads -= before.Loads
	c.Stores -= before.Stores
	c.LoadBytes -= before.LoadBytes
	c.StoreBytes -= before.StoreBytes
	c.Branches -= before.Branches
	c.Calls -= before.Calls
	c.Steps -= before.Steps
}

func distinctBuffers(args []interp.Value) []*interp.Buffer {
	var out []*interp.Buffer
	seen := map[*interp.Buffer]bool{}
	for _, a := range args {
		if a.IsPtr() {
			if b := a.Ptr().Buf; b != nil && !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	return out
}

type implFn func(*interp.Machine, []interp.Value) (interp.Value, error)

func implFor(api string, kernel *ir.Function) (implFn, error) {
	switch api {
	case "spmv":
		return implSPMV, nil
	case "gemm":
		return implGEMM, nil
	case "reduction":
		if kernel == nil {
			return nil, fmt.Errorf("reduction requires a kernel")
		}
		return implReduction(kernel), nil
	case "histogram", "stencil1", "map":
		if kernel == nil {
			return nil, fmt.Errorf("%s requires a kernel", api)
		}
		return implForEach(kernel, 1), nil
	case "stencil2":
		return implForEach(kernel, 2), nil
	case "stencil3":
		return implForEach(kernel, 3), nil
	}
	return nil, fmt.Errorf("unknown API %q", api)
}

// implSPMV executes the CSR sparse matrix-vector product, mirroring the
// paper's cusparseDcsrmv call (Figure 6): r = A·z with int32 row ranges and
// column indices and float64 values.
func implSPMV(m *interp.Machine, args []interp.Value) (interp.Value, error) {
	if len(args) != 6 {
		return interp.Value{}, fmt.Errorf("spmv expects 6 args, got %d", len(args))
	}
	rows := args[0].Int()
	a := args[1].Ptr().Buf
	rowstr := args[2].Ptr().Buf
	colidx := args[3].Ptr().Buf
	z := args[4].Ptr().Buf
	r := args[5].Ptr().Buf
	for j := int64(0); j < rows; j++ {
		d := 0.0
		lo := int64(rowstr.Int32At(int(j)))
		hi := int64(rowstr.Int32At(int(j + 1)))
		for k := lo; k < hi; k++ {
			d += a.Float64At(int(k)) * z.Float64At(int(colidx.Int32At(int(k))))
		}
		r.SetFloat64(int(j), d)
		m.Counts.Flops += 2 * (hi - lo)
		m.Counts.Loads += 2*(hi-lo) + 2
		m.Counts.LoadBytes += 12*(hi-lo) + 8
		m.Counts.Stores++
		m.Counts.StoreBytes += 8
		// Addressing and loop-control work equivalent to the replaced
		// region, so library and DSL call records are comparable.
		m.Counts.IntOps += 7*(hi-lo) + 8
		m.Counts.Branches += (hi - lo) + 2
	}
	return interp.Value{}, nil
}

// implGEMM executes the generalized matrix multiplication
// C = alpha·A·B + beta·C over strided, possibly transposed accesses.
// Argument layout (see transform.applyGEMM):
//
//	M, N, K, C, ldc, cScaledIsCol, A, lda, aScaledIsCol,
//	B, ldb, bScaledIsCol, alpha, beta, elemKind
func implGEMM(m *interp.Machine, args []interp.Value) (interp.Value, error) {
	if len(args) != 15 {
		return interp.Value{}, fmt.Errorf("gemm expects 15 args, got %d", len(args))
	}
	M, N, K := args[0].Int(), args[1].Int(), args[2].Int()
	c := args[3].Ptr().Buf
	ldc, cfl := args[4].Int(), args[5].Int() != 0
	a := args[6].Ptr().Buf
	lda, afl := args[7].Int(), args[8].Int() != 0
	bb := args[9].Ptr().Buf
	ldb, bfl := args[10].Int(), args[11].Int() != 0
	alpha, beta := args[12].Float(), args[13].Float()
	single := args[14].Int() == 0

	idx := func(col, row, ld int64, scaledIsCol bool) int {
		if scaledIsCol {
			return int(col*ld + row)
		}
		return int(col + row*ld)
	}
	for ci := int64(0); ci < M; ci++ {
		for ri := int64(0); ri < N; ri++ {
			if single {
				acc := float32(0)
				for k := int64(0); k < K; k++ {
					acc += a.Float32At(idx(ci, k, lda, afl)) * bb.Float32At(idx(ri, k, ldb, bfl))
				}
				off := idx(ci, ri, ldc, cfl)
				old := c.Float32At(off)
				c.SetFloat32(off, float32(beta)*old+float32(alpha)*acc)
			} else {
				acc := 0.0
				for k := int64(0); k < K; k++ {
					acc += a.Float64At(idx(ci, k, lda, afl)) * bb.Float64At(idx(ri, k, ldb, bfl))
				}
				off := idx(ci, ri, ldc, cfl)
				old := c.Float64At(off)
				c.SetFloat64(off, beta*old+alpha*acc)
			}
		}
	}
	elemSize := int64(8)
	if single {
		elemSize = 4
	}
	m.Counts.Flops += 2*M*N*K + 3*M*N
	m.Counts.Loads += 2*M*N*K + M*N
	// Blocked GEMM streams each matrix approximately once: DRAM traffic is
	// the operand footprint, not the 2MNK element touches (which hit cache).
	m.Counts.LoadBytes += (M*K + N*K + M*N) * elemSize
	m.Counts.Stores += M * N
	m.Counts.StoreBytes += M * N * elemSize
	// Addressing and loop-control work equivalent to the replaced region.
	m.Counts.IntOps += 10*M*N*K + 12*M*N
	m.Counts.Branches += M*N*K + 2*M*N
	return interp.Value{}, nil
}

// implReduction folds the outlined cell over [begin, end):
// acc = cell(i, acc, captured...).
func implReduction(kernel *ir.Function) implFn {
	return func(m *interp.Machine, args []interp.Value) (interp.Value, error) {
		if len(args) < 3 {
			return interp.Value{}, fmt.Errorf("reduction expects >=3 args")
		}
		begin, end, acc := args[0].Int(), args[1].Int(), args[2]
		invars := args[3:]
		for i := begin; i < end; i++ {
			callArgs := append([]interp.Value{interp.IntValue(i), acc}, invars...)
			v, err := m.Exec(kernel, callArgs...)
			if err != nil {
				return interp.Value{}, err
			}
			acc = v
		}
		return acc, nil
	}
}

// implForEach runs the outlined cell over a 1-, 2- or 3-deep rectangular
// iteration space: histogram bodies and stencils.
func implForEach(kernel *ir.Function, depth int) implFn {
	return func(m *interp.Machine, args []interp.Value) (interp.Value, error) {
		if len(args) < 2*depth {
			return interp.Value{}, fmt.Errorf("forEach depth %d expects >=%d args", depth, 2*depth)
		}
		bounds := make([][2]int64, depth)
		for d := 0; d < depth; d++ {
			bounds[d] = [2]int64{args[2*d].Int(), args[2*d+1].Int()}
		}
		invars := args[2*depth:]

		var run func(d int, iters []interp.Value) error
		run = func(d int, iters []interp.Value) error {
			if d == depth {
				callArgs := append(append([]interp.Value{}, iters...), invars...)
				_, err := m.Exec(kernel, callArgs...)
				return err
			}
			for i := bounds[d][0]; i < bounds[d][1]; i++ {
				if err := run(d+1, append(iters, interp.IntValue(i))); err != nil {
					return err
				}
			}
			return nil
		}
		return interp.Value{}, run(0, nil)
	}
}
