package hetero

import (
	"fmt"
	"strings"

	"repro/internal/interp"
)

// RunCost summarizes one transformed-program execution for timing.
type RunCost struct {
	// Host is the op count outside API calls.
	Host interp.Counts
	// Calls are the per-API-call records.
	Calls []CallRecord
}

// SplitCosts separates a machine's total counts into host work and API work
// using the ledger recorded during execution.
func SplitCosts(total interp.Counts, ledger *Ledger) RunCost {
	host := total
	for _, c := range ledger.Calls {
		deltaSub(&host, c.Counts)
	}
	return RunCost{Host: host, Calls: ledger.Calls}
}

// TimingOptions configure the end-to-end model.
type TimingOptions struct {
	// LazyCopy enables the paper's red-bar runtime optimization: buffers
	// stay resident on the device across consecutive API calls, so each
	// distinct buffer is transferred once per program instead of per call.
	LazyCopy bool
	// WorkScale linearly extrapolates the measured operation mix and
	// transfer volumes to class-size inputs (the paper evaluated NAS class
	// inputs and full Parboil datasets, far beyond what an interpreter can
	// execute; the arithmetic-intensity ratios are input-size invariant for
	// these kernels, so who-wins and crossover structure is preserved).
	// Zero means 1 (no scaling).
	WorkScale float64
}

func (o TimingOptions) scale() float64 {
	if o.WorkScale <= 0 {
		return 1
	}
	return o.WorkScale
}

// ScaleCounts multiplies an operation mix by k.
func ScaleCounts(c interp.Counts, k float64) interp.Counts {
	return interp.Counts{
		Flops:      int64(float64(c.Flops) * k),
		MathOps:    int64(float64(c.MathOps) * k),
		IntOps:     int64(float64(c.IntOps) * k),
		Loads:      int64(float64(c.Loads) * k),
		Stores:     int64(float64(c.Stores) * k),
		LoadBytes:  int64(float64(c.LoadBytes) * k),
		StoreBytes: int64(float64(c.StoreBytes) * k),
		Branches:   int64(float64(c.Branches) * k),
		Calls:      int64(float64(c.Calls) * k),
		Steps:      int64(float64(c.Steps) * k),
	}
}

// callSupported reports whether the API can take the call on the device.
// distinctStencils is the number of distinct stencil kernels in the whole
// run: single-stage APIs (Halide in our integration, matching the paper's
// Halide failures on MG and lbm) cannot take multi-stage stencil pipelines.
func callSupported(api *APIProfile, dev DeviceKind, call *CallRecord, distinctStencils int) (float64, bool) {
	eff, ok := api.Supports(dev, call.API)
	if !ok {
		return 0, false
	}
	if api.NeedsStraightLineKernel && call.KernelHasBranch {
		return 0, false
	}
	if api.NeedsStraightLineKernel && distinctStencils > 1 && strings.HasPrefix(call.API, "stencil") {
		return 0, false
	}
	return eff, true
}

// DistinctStencilKernels counts the distinct outlined stencil kernels.
func DistinctStencilKernels(rc RunCost) int {
	seen := map[string]bool{}
	for i := range rc.Calls {
		if strings.HasPrefix(rc.Calls[i].API, "stencil") {
			seen[rc.Calls[i].Extern] = true
		}
	}
	return len(seen)
}

// bestEffFor finds the best efficiency any API offers for the call on the
// device (the per-idiom fallback when the primary API lacks a kind).
func bestEffFor(dev DeviceKind, call *CallRecord, distinctStencils int) (float64, bool) {
	best, found := 0.0, false
	for _, a := range APIs() {
		a := a
		if eff, ok := callSupported(&a, dev, call, distinctStencils); ok && eff > best {
			best, found = eff, true
		}
	}
	return best, found
}

// DominantCall returns the single heaviest API call — the benchmark's
// headline idiom instance (the CSR SpMV for CG, the GEMM for sgemm, the
// collision stencil for lbm, ...).
func DominantCall(rc RunCost) *CallRecord {
	var best *CallRecord
	bestW := -1.0
	for i := range rc.Calls {
		w := DeviceByKind(CPU).HostSeconds(rc.Calls[i].Counts)
		if w > bestW {
			best, bestW = &rc.Calls[i], w
		}
	}
	return best
}

// Estimate computes modelled wall-clock seconds for the run on the device
// with `api` as the primary API. The paper maps every detected idiom to its
// own API call; a Table 3 column therefore names the API serving the
// benchmark's dominant idiom, while remaining idioms use the best available
// implementation on the same device (or stay on the host when none exists).
// It returns an error when the primary API does not implement the dominant
// idiom kind on the device.
func Estimate(rc RunCost, dev Device, api *APIProfile, opts TimingOptions) (float64, error) {
	k := opts.scale()
	host := DeviceByKind(CPU).HostSeconds(ScaleCounts(rc.Host, k))
	total := host

	dominant := DominantCall(rc)
	dominantServed := false
	distinctStencils := DistinctStencilKernels(rc)

	seen := map[*interp.Buffer]bool{}
	for i := range rc.Calls {
		call := &rc.Calls[i]
		eff, ok := callSupported(api, dev.Kind, call, distinctStencils)
		if ok && dominant != nil && call.API == dominant.API && call.KernelHasBranch == dominant.KernelHasBranch {
			dominantServed = true
		}
		if !ok {
			// Per-idiom fallback: best other API on this device, else host.
			if fb, found := bestEffFor(dev.Kind, call, distinctStencils); found {
				eff = fb
			} else {
				total += DeviceByKind(CPU).HostSeconds(ScaleCounts(call.Counts, k))
				continue
			}
		}
		total += dev.KernelSeconds(ScaleCounts(call.Counts, k), eff)
		for _, b := range call.Buffers {
			if opts.LazyCopy && seen[b] {
				continue
			}
			seen[b] = true
			total += dev.TransferSeconds(int64(float64(len(b.Data)) * k))
		}
	}
	if !dominantServed {
		kind := "any idiom"
		if dominant != nil {
			kind = dominant.API
		}
		return 0, fmt.Errorf("hetero: %s does not implement %s on %s", api.Name, kind, dev.Kind)
	}
	return total, nil
}

// SequentialSeconds models the untransformed sequential run.
func SequentialSeconds(total interp.Counts) float64 {
	return DeviceByKind(CPU).HostSeconds(total)
}

// SequentialSecondsScaled models the sequential run at a work scale.
func SequentialSecondsScaled(total interp.Counts, k float64) float64 {
	return DeviceByKind(CPU).HostSeconds(ScaleCounts(total, k))
}

// BestChoice is the outcome of trying every applicable API on a device
// (the paper: "we just try all applicable libraries and DSLs and pick the
// best executing code").
type BestChoice struct {
	API     string
	Seconds float64
}

// BestOnDevice tries every API on dev and returns the fastest, or ok=false
// when none serves the dominant idiom.
func BestOnDevice(rc RunCost, dev Device, opts TimingOptions) (BestChoice, bool) {
	best := BestChoice{}
	found := false
	for _, a := range APIs() {
		a := a
		t, err := Estimate(rc, dev, &a, opts)
		if err != nil {
			continue
		}
		if !found || t < best.Seconds {
			best = BestChoice{API: a.Name, Seconds: t}
			found = true
		}
	}
	return best, found
}

// AllChoices evaluates every applicable API on the device, for Table 3.
func AllChoices(rc RunCost, dev Device, opts TimingOptions) []BestChoice {
	var out []BestChoice
	for _, a := range APIs() {
		a := a
		t, err := Estimate(rc, dev, &a, opts)
		if err != nil {
			continue
		}
		out = append(out, BestChoice{API: a.Name, Seconds: t})
	}
	return out
}
