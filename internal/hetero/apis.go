package hetero

// APIProfile describes one heterogeneous API: which devices it targets,
// which idioms it implements, and how efficiently (fraction of the device's
// peak it attains). The profiles reproduce the availability matrix and the
// relative standings of the paper's Table 3:
//
//   - MKL is the best dense/sparse library on the CPU;
//   - cuBLAS/cuSPARSE dominate on the Nvidia GPU;
//   - clBLAS beats CLBlast on the iGPU; clSPARSE targets the iGPU;
//   - Halide excels at CPU stencils (vectorization) but, as in the paper,
//     "failed to generate valid GPU code" — CPU only;
//   - Lift targets everything, strongest on GPU stencils and reductions;
//   - libSPMV is the custom library for Parboil's unusual sparse format.
type APIProfile struct {
	Name string
	// Eff maps (device, api-kind) to an efficiency in (0, 1]; a missing
	// entry means the API does not support that combination.
	Eff map[DeviceKind]map[string]float64
	// NeedsStraightLineKernel marks APIs that cannot express extracted
	// kernels containing control flow. The paper notes stencils involving
	// control flow "are not easily expressible in Halide" — which is why
	// Table 3 has no Halide entry for lbm.
	NeedsStraightLineKernel bool
}

// stencilKinds expands a stencil efficiency to all three depths.
func stencil(e float64) map[string]float64 {
	return map[string]float64{"stencil1": e, "stencil2": e, "stencil3": e}
}

func merged(ms ...map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for _, m := range ms {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}

// APIs returns every targeted API profile.
func APIs() []APIProfile {
	return []APIProfile{
		{
			Name: "mkl",
			Eff: map[DeviceKind]map[string]float64{
				CPU: {"gemm": 0.85, "spmv": 0.45},
			},
		},
		{
			Name: "cublas",
			Eff: map[DeviceKind]map[string]float64{
				GPU: {"gemm": 0.90},
			},
		},
		{
			Name: "cusparse",
			Eff: map[DeviceKind]map[string]float64{
				GPU: {"spmv": 0.85},
			},
		},
		{
			Name: "clblas",
			Eff: map[DeviceKind]map[string]float64{
				IGPU: {"gemm": 0.55},
				GPU:  {"gemm": 0.40},
			},
		},
		{
			Name: "clblast",
			Eff: map[DeviceKind]map[string]float64{
				IGPU: {"gemm": 0.42},
				GPU:  {"gemm": 0.31},
			},
		},
		{
			Name: "clsparse",
			Eff: map[DeviceKind]map[string]float64{
				IGPU: {"spmv": 0.60},
			},
		},
		{
			// The custom library the paper wrote for Parboil's spmv, whose
			// JDS storage none of the vendor CSR libraries accept.
			Name: "libspmv",
			Eff: map[DeviceKind]map[string]float64{
				CPU:  {"spmvjds": 0.30},
				IGPU: {"spmvjds": 0.45},
				GPU:  {"spmvjds": 0.55},
			},
		},
		{
			Name:                    "halide",
			NeedsStraightLineKernel: true,
			Eff: map[DeviceKind]map[string]float64{
				// CPU only: the paper's Halide version failed to produce
				// valid GPU code for the evaluated benchmarks.
				CPU: merged(stencil(0.80), map[string]float64{
					"histogram": 0.70, "reduction": 0.55,
				}),
			},
		},
		{
			Name: "lift",
			Eff: map[DeviceKind]map[string]float64{
				// The CPU histogram is atomic-contention bound and CPU stencils
				// lack Halide's vectorization: the paper's own Table 3 shows
				// Lift's CPU histo slower than sequential C and its CPU
				// stencils at parity.
				CPU: merged(stencil(0.10), map[string]float64{
					"reduction": 0.55, "histogram": 0.06, "gemm": 0.20,
					"map": 0.50,
				}),
				IGPU: merged(stencil(0.60), map[string]float64{
					"reduction": 0.70, "histogram": 0.65, "gemm": 0.45,
					"map": 0.65,
				}),
				GPU: merged(stencil(0.85), map[string]float64{
					"reduction": 0.85, "histogram": 0.70, "gemm": 0.60,
					"map": 0.85,
				}),
			},
		},
	}
}

// APIByName returns the profile for name, or nil.
func APIByName(name string) *APIProfile {
	for _, a := range APIs() {
		if a.Name == name {
			p := a
			return &p
		}
	}
	return nil
}

// Supports reports whether the API implements the idiom kind on the device,
// returning the efficiency.
func (a *APIProfile) Supports(dev DeviceKind, apiKind string) (float64, bool) {
	m, ok := a.Eff[dev]
	if !ok {
		return 0, false
	}
	e, ok := m[apiKind]
	return e, ok
}

// CandidateAPIs lists APIs that implement the given idiom kind on a device.
func CandidateAPIs(dev DeviceKind, apiKind string) []string {
	var out []string
	for _, a := range APIs() {
		if _, ok := a.Supports(dev, apiKind); ok {
			out = append(out, a.Name)
		}
	}
	return out
}
