package hetero

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/ir"
)

func TestSplitExtern(t *testing.T) {
	cases := []struct {
		in                   string
		backend, api, kernel string
	}{
		{"cusparse.spmv", "cusparse", "spmv", ""},
		{"lift.reduction#sum_kernel", "lift", "reduction", "sum_kernel"},
		{"halide.stencil2#jacobi_kernel", "halide", "stencil2", "jacobi_kernel"},
		{"plain", "", "plain", ""},
	}
	for _, c := range cases {
		b, a, k := SplitExtern(c.in)
		if b != c.backend || a != c.api || k != c.kernel {
			t.Errorf("SplitExtern(%q) = %q,%q,%q", c.in, b, a, k)
		}
	}
}

func TestDevices(t *testing.T) {
	devs := Devices()
	if len(devs) != 3 {
		t.Fatalf("devices = %d, want 3 (CPU, iGPU, GPU)", len(devs))
	}
	gpu := DeviceByKind(GPU)
	igpu := DeviceByKind(IGPU)
	cpu := DeviceByKind(CPU)
	if !(gpu.ComputeGFLOPS > igpu.ComputeGFLOPS && igpu.ComputeGFLOPS > cpu.ComputeGFLOPS) {
		t.Error("compute throughput must order CPU < iGPU < GPU")
	}
	if gpu.MemBWGBs <= cpu.MemBWGBs {
		t.Error("external GPU memory bandwidth must exceed the host's")
	}
	if cpu.TransferGBs != 0 {
		t.Error("CPU needs no host-device transfers")
	}
	if igpu.TransferGBs <= gpu.TransferGBs {
		t.Error("integrated GPU transfers must be cheaper than PCIe")
	}
}

func TestDeviceKindString(t *testing.T) {
	if CPU.String() != "CPU" || IGPU.String() != "iGPU" || GPU.String() != "GPU" {
		t.Error("device kind names")
	}
}

// Property: HostSeconds is monotone in the operation counts.
func TestHostSecondsMonotone(t *testing.T) {
	cpu := DeviceByKind(CPU)
	f := func(flops, bytes uint32) bool {
		a := interp.Counts{Flops: int64(flops), LoadBytes: int64(bytes)}
		b := interp.Counts{Flops: int64(flops) * 2, LoadBytes: int64(bytes) * 2}
		return cpu.HostSeconds(b) >= cpu.HostSeconds(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ScaleCounts by k then HostSeconds equals k times the original
// (within integer truncation slack).
func TestScaleCountsLinear(t *testing.T) {
	cpu := DeviceByKind(CPU)
	f := func(flops, bytes uint16) bool {
		c := interp.Counts{Flops: int64(flops), LoadBytes: int64(bytes)}
		t1 := cpu.HostSeconds(c)
		t4 := cpu.HostSeconds(ScaleCounts(c, 4))
		return t4 >= 3.99*t1 && t4 <= 4.01*t1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelSecondsLaunchOverhead(t *testing.T) {
	gpu := DeviceByKind(GPU)
	empty := interp.Counts{}
	if got := gpu.KernelSeconds(empty, 1); got < gpu.LaunchUs*1e-6 {
		t.Errorf("kernel time %g must include launch overhead", got)
	}
}

func TestTransferSeconds(t *testing.T) {
	if DeviceByKind(CPU).TransferSeconds(1<<30) != 0 {
		t.Error("CPU transfers must be free")
	}
	gpu := DeviceByKind(GPU)
	if gpu.TransferSeconds(2<<30) <= gpu.TransferSeconds(1<<30) {
		t.Error("transfer time must grow with bytes")
	}
}

func TestAPIAvailabilityMatrix(t *testing.T) {
	// The Table 3 availability structure.
	cases := []struct {
		api  string
		dev  DeviceKind
		kind string
		want bool
	}{
		{"mkl", CPU, "gemm", true},
		{"mkl", GPU, "gemm", false},
		{"cublas", GPU, "gemm", true},
		{"cublas", CPU, "gemm", false},
		{"cusparse", GPU, "spmv", true},
		{"cusparse", IGPU, "spmv", false},
		{"clsparse", IGPU, "spmv", true},
		{"halide", CPU, "stencil2", true},
		{"halide", GPU, "stencil2", false}, // failed to generate GPU code
		{"lift", GPU, "reduction", true},
		{"lift", CPU, "histogram", true},
		{"libspmv", GPU, "spmvjds", true},
		{"libspmv", GPU, "spmv", false}, // JDS only
	}
	for _, c := range cases {
		a := APIByName(c.api)
		if a == nil {
			t.Fatalf("API %s missing", c.api)
		}
		_, ok := a.Supports(c.dev, c.kind)
		if ok != c.want {
			t.Errorf("%s on %s for %s = %v, want %v", c.api, c.dev, c.kind, ok, c.want)
		}
	}
}

func TestCandidateAPIs(t *testing.T) {
	got := CandidateAPIs(GPU, "gemm")
	joined := strings.Join(got, ",")
	for _, want := range []string{"cublas", "clblas", "clblast", "lift"} {
		if !strings.Contains(joined, want) {
			t.Errorf("GPU gemm candidates %v missing %s", got, want)
		}
	}
	if len(CandidateAPIs(CPU, "spmvjds")) != 1 {
		t.Error("only libspmv handles the JDS format")
	}
}

func TestImplSPMV(t *testing.T) {
	// y = A x for a 2x2 CSR matrix [[1 2],[0 3]].
	a := interp.NewBuffer("a", 3*8)
	a.SetFloat64(0, 1)
	a.SetFloat64(1, 2)
	a.SetFloat64(2, 3)
	rowstr := interp.NewBuffer("rowstr", 3*4)
	rowstr.SetInt32(0, 0)
	rowstr.SetInt32(1, 2)
	rowstr.SetInt32(2, 3)
	colidx := interp.NewBuffer("colidx", 3*4)
	colidx.SetInt32(0, 0)
	colidx.SetInt32(1, 1)
	colidx.SetInt32(2, 1)
	x := interp.NewBuffer("x", 2*8)
	x.SetFloat64(0, 10)
	x.SetFloat64(1, 20)
	y := interp.NewBuffer("y", 2*8)

	m := interp.NewMachine(&ir.Module{})
	_, err := implSPMV(m, []interp.Value{
		interp.IntValue(2),
		interp.PtrValue(interp.Pointer{Buf: a}),
		interp.PtrValue(interp.Pointer{Buf: rowstr}),
		interp.PtrValue(interp.Pointer{Buf: colidx}),
		interp.PtrValue(interp.Pointer{Buf: x}),
		interp.PtrValue(interp.Pointer{Buf: y}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if y.Float64At(0) != 50 || y.Float64At(1) != 60 {
		t.Errorf("y = [%g %g], want [50 60]", y.Float64At(0), y.Float64At(1))
	}
	if m.Counts.Flops == 0 || m.Counts.IntOps == 0 {
		t.Error("spmv must account flops and addressing work")
	}
}

func TestDominantCall(t *testing.T) {
	rc := RunCost{Calls: []CallRecord{
		{API: "reduction", Counts: interp.Counts{Flops: 10}},
		{API: "spmv", Counts: interp.Counts{Flops: 100000}},
		{API: "reduction", Counts: interp.Counts{Flops: 20}},
	}}
	if d := DominantCall(rc); d == nil || d.API != "spmv" {
		t.Errorf("dominant = %+v, want spmv", d)
	}
}

func TestEstimateRejectsWrongAPI(t *testing.T) {
	rc := RunCost{Calls: []CallRecord{
		{API: "spmv", Counts: interp.Counts{Flops: 1000, LoadBytes: 1 << 12}},
	}}
	gpu := DeviceByKind(GPU)
	if _, err := Estimate(rc, gpu, APIByName("cublas"), TimingOptions{}); err == nil {
		t.Error("cublas must not serve an SPMV-dominant run")
	}
	if _, err := Estimate(rc, gpu, APIByName("cusparse"), TimingOptions{}); err != nil {
		t.Errorf("cusparse must serve SPMV: %v", err)
	}
}

func TestLazyCopyReducesTime(t *testing.T) {
	buf := interp.NewBuffer("b", 1<<20)
	rc := RunCost{Calls: []CallRecord{
		{API: "reduction", Counts: interp.Counts{Flops: 1000}, Buffers: []*interp.Buffer{buf}},
		{API: "reduction", Counts: interp.Counts{Flops: 1000}, Buffers: []*interp.Buffer{buf}},
	}}
	gpu := DeviceByKind(GPU)
	lift := APIByName("lift")
	eager, err := Estimate(rc, gpu, lift, TimingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Estimate(rc, gpu, lift, TimingOptions{LazyCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	if lazy >= eager {
		t.Errorf("lazy %g must beat eager %g on repeated buffers", lazy, eager)
	}
}

func TestStraightLineKernelRestriction(t *testing.T) {
	rc := RunCost{Calls: []CallRecord{
		{API: "stencil2", KernelHasBranch: true, Counts: interp.Counts{Flops: 1000}},
	}}
	cpu := DeviceByKind(CPU)
	if _, err := Estimate(rc, cpu, APIByName("halide"), TimingOptions{}); err == nil {
		t.Error("halide must reject control-flow kernels")
	}
	if _, err := Estimate(rc, cpu, APIByName("lift"), TimingOptions{}); err != nil {
		t.Errorf("lift handles control-flow kernels: %v", err)
	}
}

func TestMultiStageStencilRestriction(t *testing.T) {
	// Two distinct stencil kernels (an MG-like resid/psinv pair): halide's
	// single-stage translation cannot take either.
	rc := RunCost{Calls: []CallRecord{
		{API: "stencil3", Extern: "lift.stencil3#resid", Counts: interp.Counts{Flops: 1000}},
		{API: "stencil3", Extern: "lift.stencil3#psinv", Counts: interp.Counts{Flops: 900}},
	}}
	cpu := DeviceByKind(CPU)
	if _, err := Estimate(rc, cpu, APIByName("halide"), TimingOptions{}); err == nil {
		t.Error("halide must reject multi-stage stencil pipelines")
	}
	single := RunCost{Calls: rc.Calls[:1]}
	if _, err := Estimate(single, cpu, APIByName("halide"), TimingOptions{}); err != nil {
		t.Errorf("halide handles a single stencil stage: %v", err)
	}
}

func TestBestOnDevice(t *testing.T) {
	rc := RunCost{Calls: []CallRecord{
		{API: "gemm", Counts: interp.Counts{Flops: 1 << 20, LoadBytes: 1 << 16}},
	}}
	best, ok := BestOnDevice(rc, DeviceByKind(GPU), TimingOptions{})
	if !ok {
		t.Fatal("no API found for GEMM on GPU")
	}
	if best.API != "cublas" {
		t.Errorf("best GPU GEMM = %s, want cublas", best.API)
	}
	best, ok = BestOnDevice(rc, DeviceByKind(CPU), TimingOptions{})
	if !ok || best.API != "mkl" {
		t.Errorf("best CPU GEMM = %v %v, want mkl", best, ok)
	}
}

func TestReferenceModels(t *testing.T) {
	counts := interp.Counts{Flops: 1 << 28, LoadBytes: 1 << 20}
	likeForLike := Reference{Parallelizable: 0.95, AlgorithmicFactor: 1}
	rewrite := Reference{Parallelizable: 0.99, AlgorithmicFactor: 2.5}
	seq := SequentialSeconds(counts)
	if omp := likeForLike.OpenMPSeconds(counts); omp >= seq {
		t.Errorf("OpenMP %g must beat sequential %g on compute-bound work", omp, seq)
	}
	if rewrite.OpenMPSeconds(counts) >= likeForLike.OpenMPSeconds(counts) {
		t.Error("algorithmic rewrites must help")
	}
	memBound := interp.Counts{Flops: 1 << 10, LoadBytes: 1 << 30}
	seqMem := SequentialSeconds(memBound)
	if omp := likeForLike.OpenMPSeconds(memBound); omp < seqMem*0.9 {
		t.Errorf("OpenMP %g cannot beat DRAM bandwidth (seq %g)", omp, seqMem)
	}
}
