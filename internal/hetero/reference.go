package hetero

import "repro/internal/interp"

// Reference models the handwritten parallel implementations that ship with
// the benchmark suites (Figure 19's OpenMP and OpenCL bars). The paper notes
// that for EP, IS, MG and tpacf the handwritten versions parallelize the
// whole application or change the algorithm — "beyond the domain of
// automation" — which the model expresses as whole-program parallelization
// with an extra algorithmic factor.
type Reference struct {
	// Parallelizable is the fraction of the sequential work the handwritten
	// version accelerates (idiom region for like-for-like benchmarks, ~all
	// of it for whole-application rewrites).
	Parallelizable float64
	// AlgorithmicFactor is an additional speedup from algorithm changes the
	// suite authors made (1 = none).
	AlgorithmicFactor float64
}

// OpenMPSeconds models the suite's OpenMP implementation on the 4-core CPU:
// Amdahl over the cores with imperfect scaling, floored by the socket's
// memory bandwidth (threads share the same DRAM as the sequential run).
func (r Reference) OpenMPSeconds(total interp.Counts) float64 {
	seq := SequentialSeconds(total)
	cpu := DeviceByKind(CPU)
	par := seq * r.Parallelizable
	ser := seq - par
	speedup := cpu.ComputeGFLOPS / cpu.SeqGFLOPS * 0.55 * r.AlgorithmicFactor
	parTime := par / speedup
	memFloor := bytesMoved(total) * r.Parallelizable / (cpu.MemBWGBs * 1e9) / r.AlgorithmicFactor
	if memFloor > parTime {
		parTime = memFloor
	}
	return ser + parTime + 50e-6
}

// OpenCLSeconds models the suite's handwritten OpenCL version on the GPU:
// one transfer of the touched bytes, kernels floored by the GPU's memory
// bandwidth.
func (r Reference) OpenCLSeconds(total interp.Counts, transferBytes int64) float64 {
	seq := SequentialSeconds(total)
	gpu := DeviceByKind(GPU)
	par := seq * r.Parallelizable
	ser := seq - par
	gpuSpeedup := gpu.ComputeGFLOPS / gpu.SeqGFLOPS * 0.15 * r.AlgorithmicFactor
	parTime := par / gpuSpeedup
	memFloor := bytesMoved(total) * r.Parallelizable / (gpu.MemBWGBs * 1e9) / r.AlgorithmicFactor
	if memFloor > parTime {
		parTime = memFloor
	}
	return ser + parTime + gpu.TransferSeconds(transferBytes) + gpu.LaunchUs*1e-6
}
