package hetero

import (
	"repro/internal/interp"
)

// DeviceKind enumerates the paper's three evaluation platforms.
type DeviceKind int

// Device kinds.
const (
	CPU DeviceKind = iota
	IGPU
	GPU
)

// String names the device kind like the paper's figures.
func (k DeviceKind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case IGPU:
		return "iGPU"
	default:
		return "GPU"
	}
}

// Device is an analytic model of one platform: a roofline (compute rate vs
// memory bandwidth) plus host-device transfer characteristics. The models
// are calibrated to the published specifications of the paper's hardware —
// this is the documented substitution for the machines we do not have.
type Device struct {
	Kind Device0Kind
	Name string
	// SeqGFLOPS is the effective single-thread scalar rate used for host
	// (sequential) execution.
	SeqGFLOPS float64
	// ComputeGFLOPS is the full-device throughput available to kernels.
	ComputeGFLOPS float64
	// MemBWGBs is device memory bandwidth.
	MemBWGBs float64
	// TransferGBs is host<->device copy bandwidth (PCIe for the external
	// GPU, shared-memory mapping for the iGPU, free for the CPU).
	TransferGBs float64
	// LaunchUs is per-kernel launch overhead in microseconds.
	LaunchUs float64
}

// Device0Kind aliases DeviceKind (kept for struct field clarity).
type Device0Kind = DeviceKind

// Devices returns the three platform models of the paper's §7:
// an AMD A10-7850K multicore CPU, its integrated Radeon R7 GPU, and an
// Nvidia GTX Titan X external GPU.
func Devices() []Device {
	return []Device{
		{
			Kind: CPU, Name: "AMD A10-7850K (4 cores)",
			SeqGFLOPS: 3.2, ComputeGFLOPS: 55, MemBWGBs: 21,
			TransferGBs: 0, // host memory: no transfer cost
			LaunchUs:    2,
		},
		{
			Kind: IGPU, Name: "Radeon R7 (integrated)",
			SeqGFLOPS: 3.2, ComputeGFLOPS: 700, MemBWGBs: 21,
			TransferGBs: 18, // same-die mapping, cheap but not free
			LaunchUs:    25,
		},
		{
			Kind: GPU, Name: "Nvidia GTX Titan X",
			SeqGFLOPS: 3.2, ComputeGFLOPS: 6100, MemBWGBs: 336,
			TransferGBs: 6, // PCIe 3.0 effective
			LaunchUs:    12,
		},
	}
}

// DeviceByKind returns the model for a kind.
func DeviceByKind(k DeviceKind) Device {
	for _, d := range Devices() {
		if d.Kind == k {
			return d
		}
	}
	return Devices()[0]
}

// workFlops folds an operation count into flop-equivalents: transcendental
// math ops cost several flops, integer/address arithmetic a fraction.
func workFlops(c interp.Counts) float64 {
	return float64(c.Flops) + 8*float64(c.MathOps) + 0.35*float64(c.IntOps)
}

func bytesMoved(c interp.Counts) float64 {
	return float64(c.LoadBytes + c.StoreBytes)
}

// HostSeconds models sequential scalar execution of the counted work: a
// roofline over single-thread compute rate and memory bandwidth.
func (d Device) HostSeconds(c interp.Counts) float64 {
	compute := workFlops(c) / (d.SeqGFLOPS * 1e9)
	memory := bytesMoved(c) / (d.MemBWGBs * 1e9)
	if memory > compute {
		return memory
	}
	return compute
}

// KernelSeconds models one accelerated kernel at the given efficiency:
// launch overhead plus a roofline over effective compute and bandwidth.
func (d Device) KernelSeconds(c interp.Counts, efficiency float64) float64 {
	if efficiency <= 0 {
		efficiency = 1e-6
	}
	compute := workFlops(c) / (d.ComputeGFLOPS * efficiency * 1e9)
	memory := bytesMoved(c) / (d.MemBWGBs * 1e9)
	t := compute
	if memory > t {
		t = memory
	}
	return t + d.LaunchUs*1e-6
}

// TransferSeconds models moving n bytes between host and device.
func (d Device) TransferSeconds(n int64) float64 {
	if d.TransferGBs <= 0 {
		return 0
	}
	return float64(n) / (d.TransferGBs * 1e9)
}
