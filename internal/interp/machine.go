package interp

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Counts aggregates dynamic operation counts; the heterogeneous performance
// model consumes these (see internal/hetero/platform).
type Counts struct {
	Flops      int64 // floating point add/sub/mul/div
	MathOps    int64 // sqrt/exp/log/... (weighted as several flops by models)
	IntOps     int64 // integer arithmetic, compares, casts, geps
	Loads      int64
	Stores     int64
	LoadBytes  int64
	StoreBytes int64
	Branches   int64
	Calls      int64
	Steps      int64 // every executed instruction
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Flops += other.Flops
	c.MathOps += other.MathOps
	c.IntOps += other.IntOps
	c.Loads += other.Loads
	c.Stores += other.Stores
	c.LoadBytes += other.LoadBytes
	c.StoreBytes += other.StoreBytes
	c.Branches += other.Branches
	c.Calls += other.Calls
	c.Steps += other.Steps
}

// ExternFn implements an external (runtime API) function. It receives the
// machine so it can touch buffers directly.
type ExternFn func(m *Machine, args []Value) (Value, error)

// Machine executes IR functions.
type Machine struct {
	Mod *ir.Module
	// Externs maps external symbol names to implementations.
	Externs map[string]ExternFn
	// Counts accumulates operation counts across Exec calls.
	Counts Counts
	// MaxSteps bounds execution (0 = default limit).
	MaxSteps int64
	// Profile, when non-nil, receives per-instruction execution counts.
	Profile map[*ir.Instruction]int64

	// ptrTable backs pointers stored to memory (double** support).
	ptrTable []Pointer
}

// NewMachine creates a machine for the module.
func NewMachine(mod *ir.Module) *Machine {
	return &Machine{
		Mod:      mod,
		Externs:  map[string]ExternFn{},
		MaxSteps: 2_000_000_000,
	}
}

// frame is one function activation.
type frame struct {
	fn   *ir.Function
	vals map[ir.Value]Value
}

func (fr *frame) get(v ir.Value) (Value, error) {
	switch x := v.(type) {
	case *ir.Const:
		switch {
		case x.Null:
			return PtrValue(Pointer{}), nil
		case x.Ty.IsFloat():
			return FloatValue(x.FloatVal), nil
		default:
			return IntValue(x.IntVal), nil
		}
	default:
		val, ok := fr.vals[v]
		if !ok {
			return Value{}, fmt.Errorf("interp: use of undefined value %s", v.Operand())
		}
		return val, nil
	}
}

// Exec runs fn with the given arguments and returns its result (zero Value
// for void functions).
func (m *Machine) Exec(fn *ir.Function, args ...Value) (Value, error) {
	if len(args) != len(fn.Args) {
		return Value{}, fmt.Errorf("interp: %s expects %d args, got %d", fn.Ident, len(fn.Args), len(args))
	}
	fr := &frame{fn: fn, vals: map[ir.Value]Value{}}
	for i, a := range fn.Args {
		fr.vals[a] = args[i]
	}

	block := fn.Entry()
	var prev *ir.Block
	for {
		// Phase 1: evaluate all phis of the block against prev.
		phis := block.Phis()
		if len(phis) > 0 {
			tmp := make([]Value, len(phis))
			for i, phi := range phis {
				in := phi.IncomingFor(prev)
				if in == nil {
					return Value{}, fmt.Errorf("interp: phi %%%s has no incoming for %s", phi.Ident, prev.Ident)
				}
				v, err := fr.get(in)
				if err != nil {
					return Value{}, err
				}
				tmp[i] = v
			}
			for i, phi := range phis {
				fr.vals[phi] = tmp[i]
				m.Counts.Steps++
				if m.Profile != nil {
					m.Profile[phi]++
				}
			}
		}

		for _, in := range block.Instrs[len(phis):] {
			m.Counts.Steps++
			if m.Counts.Steps > m.MaxSteps {
				return Value{}, fmt.Errorf("interp: step limit exceeded in %s", fn.Ident)
			}
			if m.Profile != nil {
				m.Profile[in]++
			}
			switch in.Op {
			case ir.OpBr:
				m.Counts.Branches++
				next := block
				if len(in.Ops) == 1 {
					c, err := fr.get(in.Ops[0])
					if err != nil {
						return Value{}, err
					}
					if c.Bool() {
						next = in.Succs[0]
					} else {
						next = in.Succs[1]
					}
				} else {
					next = in.Succs[0]
				}
				prev = block
				block = next
				goto nextBlock

			case ir.OpRet:
				if len(in.Ops) == 0 {
					return Value{}, nil
				}
				return fr.get(in.Ops[0])

			default:
				if err := m.execInstr(fr, in); err != nil {
					return Value{}, err
				}
			}
		}
		return Value{}, fmt.Errorf("interp: block %s fell through without terminator", block.Ident)
	nextBlock:
	}
}

func (m *Machine) execInstr(fr *frame, in *ir.Instruction) error {
	ops := make([]Value, len(in.Ops))
	for i, o := range in.Ops {
		if i == 0 && in.Op == ir.OpCall {
			continue // the callee is not a runtime value
		}
		v, err := fr.get(o)
		if err != nil {
			return err
		}
		ops[i] = v
	}
	switch in.Op {
	case ir.OpAdd:
		m.Counts.IntOps++
		fr.vals[in] = IntValue(wrapInt(in.Ty, ops[0].Int()+ops[1].Int()))
	case ir.OpSub:
		m.Counts.IntOps++
		fr.vals[in] = IntValue(wrapInt(in.Ty, ops[0].Int()-ops[1].Int()))
	case ir.OpMul:
		m.Counts.IntOps++
		fr.vals[in] = IntValue(wrapInt(in.Ty, ops[0].Int()*ops[1].Int()))
	case ir.OpSDiv:
		m.Counts.IntOps++
		if ops[1].Int() == 0 {
			return fmt.Errorf("interp: division by zero at %%%s", in.Ident)
		}
		fr.vals[in] = IntValue(wrapInt(in.Ty, ops[0].Int()/ops[1].Int()))
	case ir.OpSRem:
		m.Counts.IntOps++
		if ops[1].Int() == 0 {
			return fmt.Errorf("interp: remainder by zero at %%%s", in.Ident)
		}
		fr.vals[in] = IntValue(wrapInt(in.Ty, ops[0].Int()%ops[1].Int()))

	case ir.OpFAdd:
		m.Counts.Flops++
		fr.vals[in] = m.roundFloat(in.Ty, ops[0].Float()+ops[1].Float())
	case ir.OpFSub:
		m.Counts.Flops++
		fr.vals[in] = m.roundFloat(in.Ty, ops[0].Float()-ops[1].Float())
	case ir.OpFMul:
		m.Counts.Flops++
		fr.vals[in] = m.roundFloat(in.Ty, ops[0].Float()*ops[1].Float())
	case ir.OpFDiv:
		m.Counts.Flops++
		fr.vals[in] = m.roundFloat(in.Ty, ops[0].Float()/ops[1].Float())

	case ir.OpAlloca:
		size := in.Ty.Elem.Size() * max(in.AllocaCount, 1)
		fr.vals[in] = PtrValue(Pointer{Buf: NewBuffer("%"+in.Ident, size)})

	case ir.OpLoad:
		m.Counts.Loads++
		m.Counts.LoadBytes += int64(in.Ty.Size())
		p := ops[0].Ptr()
		if p.Buf == nil {
			return fmt.Errorf("interp: load through null pointer at %%%s", in.Ident)
		}
		if in.Ty.IsPointer() {
			v, err := m.loadPtr(p)
			if err != nil {
				return err
			}
			fr.vals[in] = v
			return nil
		}
		v, err := p.Buf.load(p.Off, in.Ty)
		if err != nil {
			return err
		}
		fr.vals[in] = v

	case ir.OpStore:
		m.Counts.Stores++
		ty := in.Ops[0].Type()
		m.Counts.StoreBytes += int64(ty.Size())
		p := ops[1].Ptr()
		if p.Buf == nil {
			return fmt.Errorf("interp: store through null pointer at %%%s", in.Ident)
		}
		if ty.IsPointer() {
			return m.storePtr(p, ops[0])
		}
		return p.Buf.store(p.Off, ty, ops[0])

	case ir.OpGEP:
		m.Counts.IntOps++
		p := ops[0].Ptr()
		elem := int64(in.Ty.Elem.Size())
		fr.vals[in] = PtrValue(Pointer{Buf: p.Buf, Off: p.Off + ops[1].Int()*elem})

	case ir.OpICmp:
		m.Counts.IntOps++
		fr.vals[in] = IntValue(boolToInt(cmpInt(in.Pred, ops[0], ops[1])))
	case ir.OpFCmp:
		m.Counts.IntOps++
		fr.vals[in] = IntValue(boolToInt(cmpFloat(in.Pred, ops[0].Float(), ops[1].Float())))

	case ir.OpSelect:
		m.Counts.IntOps++
		if ops[0].Bool() {
			fr.vals[in] = ops[1]
		} else {
			fr.vals[in] = ops[2]
		}

	case ir.OpSExt, ir.OpZExt:
		m.Counts.IntOps++
		fr.vals[in] = IntValue(wrapInt(in.Ty, ops[0].Int()))
	case ir.OpTrunc:
		m.Counts.IntOps++
		fr.vals[in] = IntValue(wrapInt(in.Ty, ops[0].Int()))
	case ir.OpSIToFP:
		m.Counts.IntOps++
		fr.vals[in] = m.roundFloat(in.Ty, float64(ops[0].Int()))
	case ir.OpFPToSI:
		m.Counts.IntOps++
		fr.vals[in] = IntValue(wrapInt(in.Ty, int64(ops[0].Float())))
	case ir.OpFPExt:
		m.Counts.IntOps++
		fr.vals[in] = FloatValue(ops[0].Float())
	case ir.OpFPTrunc:
		m.Counts.IntOps++
		fr.vals[in] = FloatValue(float64(float32(ops[0].Float())))
	case ir.OpBitcast:
		fr.vals[in] = ops[0]

	case ir.OpCall:
		m.Counts.Calls++
		callee := in.Ops[0]
		callArgs := ops[1:]
		switch c := callee.(type) {
		case *ir.Function:
			v, err := m.Exec(c, callArgs...)
			if err != nil {
				return err
			}
			fr.vals[in] = v
		case *ir.GlobalRef:
			ext, ok := m.Externs[c.Ident]
			if !ok {
				return fmt.Errorf("interp: call to unbound external @%s", c.Ident)
			}
			v, err := ext(m, callArgs)
			if err != nil {
				return err
			}
			fr.vals[in] = v
		default:
			return fmt.Errorf("interp: call through unsupported callee %T", callee)
		}

	case ir.OpSqrt:
		m.Counts.MathOps++
		fr.vals[in] = m.roundFloat(in.Ty, math.Sqrt(ops[0].Float()))
	case ir.OpFAbs:
		m.Counts.MathOps++
		fr.vals[in] = m.roundFloat(in.Ty, math.Abs(ops[0].Float()))
	case ir.OpExp:
		m.Counts.MathOps++
		fr.vals[in] = m.roundFloat(in.Ty, math.Exp(ops[0].Float()))
	case ir.OpLog:
		m.Counts.MathOps++
		fr.vals[in] = m.roundFloat(in.Ty, math.Log(ops[0].Float()))
	case ir.OpSin:
		m.Counts.MathOps++
		fr.vals[in] = m.roundFloat(in.Ty, math.Sin(ops[0].Float()))
	case ir.OpCos:
		m.Counts.MathOps++
		fr.vals[in] = m.roundFloat(in.Ty, math.Cos(ops[0].Float()))
	case ir.OpPow:
		m.Counts.MathOps++
		fr.vals[in] = m.roundFloat(in.Ty, math.Pow(ops[0].Float(), ops[1].Float()))
	case ir.OpFloor:
		m.Counts.MathOps++
		fr.vals[in] = m.roundFloat(in.Ty, math.Floor(ops[0].Float()))

	default:
		return fmt.Errorf("interp: unsupported opcode %s", in.Op)
	}
	return nil
}

// roundFloat narrows to float32 precision for float-typed results so the
// interpreter matches single-precision kernels bit-for-bit.
func (m *Machine) roundFloat(ty *ir.Type, v float64) Value {
	if ty.Kind == ir.KindFloat {
		return FloatValue(float64(float32(v)))
	}
	return FloatValue(v)
}

// loadPtr/storePtr implement pointer-in-memory via a handle table.
func (m *Machine) storePtr(p Pointer, v Value) error {
	handle := int64(len(m.ptrTable)) + 1
	m.ptrTable = append(m.ptrTable, v.Ptr())
	return p.Buf.store(p.Off, ir.Int64, IntValue(handle))
}

func (m *Machine) loadPtr(p Pointer) (Value, error) {
	hv, err := p.Buf.load(p.Off, ir.Int64)
	if err != nil {
		return Value{}, err
	}
	h := hv.Int()
	if h <= 0 || h > int64(len(m.ptrTable)) {
		return Value{}, fmt.Errorf("interp: invalid pointer handle %d", h)
	}
	return PtrValue(m.ptrTable[h-1]), nil
}

func wrapInt(ty *ir.Type, v int64) int64 {
	switch ty.Kind {
	case ir.KindBool:
		return v & 1
	case ir.KindInt32:
		return int64(int32(v))
	default:
		return v
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpInt(p ir.Predicate, a, b Value) bool {
	if a.IsPtr() || b.IsPtr() {
		switch p {
		case ir.PredEQ:
			return a.Ptr() == b.Ptr()
		case ir.PredNE:
			return a.Ptr() != b.Ptr()
		}
	}
	x, y := a.Int(), b.Int()
	switch p {
	case ir.PredEQ:
		return x == y
	case ir.PredNE:
		return x != y
	case ir.PredLT:
		return x < y
	case ir.PredLE:
		return x <= y
	case ir.PredGT:
		return x > y
	case ir.PredGE:
		return x >= y
	}
	return false
}

func cmpFloat(p ir.Predicate, x, y float64) bool {
	switch p {
	case ir.PredEQ:
		return x == y
	case ir.PredNE:
		return x != y
	case ir.PredLT:
		return x < y
	case ir.PredLE:
		return x <= y
	case ir.PredGT:
		return x > y
	case ir.PredGE:
		return x >= y
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
