// Package interp executes IR functions against simulated memory. It is the
// correctness oracle of the reproduction — original and transformed programs
// must produce identical outputs — and the operation-accounting substrate
// that feeds the heterogeneous performance model (Figures 17 and 18).
package interp

import (
	"fmt"

	"repro/internal/ir"
)

// Buffer is a simulated memory object (the target of a pointer).
type Buffer struct {
	// Name identifies the buffer in diagnostics and transfer accounting.
	Name string
	// Data is the raw byte storage.
	Data []byte
}

// NewBuffer allocates a zeroed buffer of n bytes.
func NewBuffer(name string, n int) *Buffer {
	return &Buffer{Name: name, Data: make([]byte, n)}
}

// Pointer addresses a byte offset within a buffer.
type Pointer struct {
	Buf *Buffer
	Off int64
}

// Value is a runtime value: one of int64, float64, pointer.
type Value struct {
	kind kind
	i    int64
	f    float64
	p    Pointer
}

type kind uint8

const (
	kindInt kind = iota
	kindFloat
	kindPtr
)

// IntValue wraps an integer (including booleans as 0/1).
func IntValue(v int64) Value { return Value{kind: kindInt, i: v} }

// FloatValue wraps a float.
func FloatValue(v float64) Value { return Value{kind: kindFloat, f: v} }

// PtrValue wraps a pointer.
func PtrValue(p Pointer) Value { return Value{kind: kindPtr, p: p} }

// Int returns the integer payload.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload.
func (v Value) Float() float64 { return v.f }

// Ptr returns the pointer payload.
func (v Value) Ptr() Pointer { return v.p }

// IsPtr reports whether the value is a pointer.
func (v Value) IsPtr() bool { return v.kind == kindPtr }

// Bool interprets the value as a truth value.
func (v Value) Bool() bool {
	switch v.kind {
	case kindInt:
		return v.i != 0
	case kindFloat:
		return v.f != 0
	default:
		return v.p.Buf != nil
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.kind {
	case kindInt:
		return fmt.Sprintf("%d", v.i)
	case kindFloat:
		return fmt.Sprintf("%g", v.f)
	default:
		if v.p.Buf == nil {
			return "null"
		}
		return fmt.Sprintf("&%s+%d", v.p.Buf.Name, v.p.Off)
	}
}

// --- typed buffer access helpers ---

func (b *Buffer) load(off int64, ty *ir.Type) (Value, error) {
	size := int64(ty.Size())
	if off < 0 || off+size > int64(len(b.Data)) {
		return Value{}, fmt.Errorf("interp: load out of bounds: %s+%d (size %d, buffer %d bytes)", b.Name, off, size, len(b.Data))
	}
	switch ty.Kind {
	case ir.KindBool:
		return IntValue(int64(b.Data[off])), nil
	case ir.KindInt32:
		return IntValue(int64(int32(le32(b.Data[off:])))), nil
	case ir.KindInt64:
		return IntValue(int64(le64(b.Data[off:]))), nil
	case ir.KindFloat:
		return FloatValue(float64(f32frombits(le32(b.Data[off:])))), nil
	case ir.KindDouble:
		return FloatValue(f64frombits(le64(b.Data[off:]))), nil
	case ir.KindPointer:
		// Pointers in memory are stored as buffer-table handles maintained
		// by the Machine; see Machine.loadPtr/storePtr.
		return Value{}, fmt.Errorf("interp: raw pointer load must go through Machine")
	}
	return Value{}, fmt.Errorf("interp: load of unsupported type %s", ty)
}

func (b *Buffer) store(off int64, ty *ir.Type, v Value) error {
	size := int64(ty.Size())
	if off < 0 || off+size > int64(len(b.Data)) {
		return fmt.Errorf("interp: store out of bounds: %s+%d (size %d, buffer %d bytes)", b.Name, off, size, len(b.Data))
	}
	switch ty.Kind {
	case ir.KindBool:
		b.Data[off] = byte(v.Int() & 1)
	case ir.KindInt32:
		put32(b.Data[off:], uint32(v.Int()))
	case ir.KindInt64:
		put64(b.Data[off:], uint64(v.Int()))
	case ir.KindFloat:
		put32(b.Data[off:], f32bits(float32(v.Float())))
	case ir.KindDouble:
		put64(b.Data[off:], f64bits(v.Float()))
	default:
		return fmt.Errorf("interp: store of unsupported type %s", ty)
	}
	return nil
}

// Float64Slice views the buffer as float64 values (for harness convenience).
func (b *Buffer) Float64Slice() []float64 {
	n := len(b.Data) / 8
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = f64frombits(le64(b.Data[i*8:]))
	}
	return out
}

// SetFloat64 writes v at element index i (8-byte elements).
func (b *Buffer) SetFloat64(i int, v float64) { put64(b.Data[i*8:], f64bits(v)) }

// Float64At reads element index i.
func (b *Buffer) Float64At(i int) float64 { return f64frombits(le64(b.Data[i*8:])) }

// SetFloat32 writes v at element index i (4-byte elements).
func (b *Buffer) SetFloat32(i int, v float32) { put32(b.Data[i*4:], f32bits(v)) }

// Float32At reads element index i.
func (b *Buffer) Float32At(i int) float32 { return f32frombits(le32(b.Data[i*4:])) }

// SetInt32 writes v at element index i (4-byte elements).
func (b *Buffer) SetInt32(i int, v int32) { put32(b.Data[i*4:], uint32(v)) }

// Int32At reads element index i.
func (b *Buffer) Int32At(i int) int32 { return int32(le32(b.Data[i*4:])) }

// SetInt64 writes v at element index i (8-byte elements).
func (b *Buffer) SetInt64(i int, v int64) { put64(b.Data[i*8:], uint64(v)) }

// Int64At reads element index i.
func (b *Buffer) Int64At(i int) int64 { return int64(le64(b.Data[i*8:])) }
