package interp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/ir"
)

func machineFor(t *testing.T, src string) *Machine {
	t.Helper()
	mod, err := cc.Compile("test", src)
	if err != nil {
		t.Fatalf("cc.Compile: %v", err)
	}
	return NewMachine(mod)
}

func TestArithmetic(t *testing.T) {
	m := machineFor(t, `
int calc(int a, int b) {
    return (a + b) * (a - b) / 2 + a % b;
}`)
	fn := m.Mod.FunctionByName("calc")
	v, err := m.Exec(fn, IntValue(10), IntValue(3))
	if err != nil {
		t.Fatal(err)
	}
	want := int64((10+3)*(10-3)/2 + 10%3)
	if v.Int() != want {
		t.Errorf("calc(10,3) = %d, want %d", v.Int(), want)
	}
}

func TestFloatKernelAndCounts(t *testing.T) {
	m := machineFor(t, `
double dist(double x, double y) {
    return sqrt(x*x + y*y);
}`)
	fn := m.Mod.FunctionByName("dist")
	v, err := m.Exec(fn, FloatValue(3), FloatValue(4))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 5 {
		t.Errorf("dist(3,4) = %g, want 5", v.Float())
	}
	if m.Counts.Flops != 3 {
		t.Errorf("flops = %d, want 3 (two muls, one add)", m.Counts.Flops)
	}
	if m.Counts.MathOps != 1 {
		t.Errorf("mathops = %d, want 1 (sqrt)", m.Counts.MathOps)
	}
}

func TestLoopOverBuffer(t *testing.T) {
	m := machineFor(t, `
double sum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}`)
	fn := m.Mod.FunctionByName("sum")
	buf := NewBuffer("a", 10*8)
	for i := 0; i < 10; i++ {
		buf.SetFloat64(i, float64(i+1))
	}
	v, err := m.Exec(fn, PtrValue(Pointer{Buf: buf}), IntValue(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 55 {
		t.Errorf("sum = %g, want 55", v.Float())
	}
	if m.Counts.Loads != 10 {
		t.Errorf("loads = %d, want 10", m.Counts.Loads)
	}
	if m.Counts.LoadBytes != 80 {
		t.Errorf("load bytes = %d, want 80", m.Counts.LoadBytes)
	}
}

func TestStoreAndReadBack(t *testing.T) {
	m := machineFor(t, `
void scale(double* a, int n, double f) {
    for (int i = 0; i < n; i++) { a[i] = a[i] * f; }
}`)
	fn := m.Mod.FunctionByName("scale")
	buf := NewBuffer("a", 4*8)
	for i := 0; i < 4; i++ {
		buf.SetFloat64(i, float64(i))
	}
	if _, err := m.Exec(fn, PtrValue(Pointer{Buf: buf}), IntValue(4), FloatValue(2.5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := buf.Float64At(i); got != float64(i)*2.5 {
			t.Errorf("a[%d] = %g, want %g", i, got, float64(i)*2.5)
		}
	}
	if m.Counts.Stores != 4 {
		t.Errorf("stores = %d, want 4", m.Counts.Stores)
	}
}

func TestSPMVExecution(t *testing.T) {
	m := machineFor(t, `
void spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}`)
	fn := m.Mod.FunctionByName("spmv")
	// 2x2 matrix [[1 2][0 3]] in CSR.
	a := NewBuffer("a", 3*8)
	a.SetFloat64(0, 1)
	a.SetFloat64(1, 2)
	a.SetFloat64(2, 3)
	rowstr := NewBuffer("rowstr", 3*4)
	rowstr.SetInt32(0, 0)
	rowstr.SetInt32(1, 2)
	rowstr.SetInt32(2, 3)
	colidx := NewBuffer("colidx", 3*4)
	colidx.SetInt32(0, 0)
	colidx.SetInt32(1, 1)
	colidx.SetInt32(2, 1)
	z := NewBuffer("z", 2*8)
	z.SetFloat64(0, 10)
	z.SetFloat64(1, 20)
	r := NewBuffer("r", 2*8)

	_, err := m.Exec(fn, IntValue(2),
		PtrValue(Pointer{Buf: a}), PtrValue(Pointer{Buf: rowstr}),
		PtrValue(Pointer{Buf: colidx}), PtrValue(Pointer{Buf: z}),
		PtrValue(Pointer{Buf: r}))
	if err != nil {
		t.Fatal(err)
	}
	if r.Float64At(0) != 50 || r.Float64At(1) != 60 {
		t.Errorf("r = [%g %g], want [50 60]", r.Float64At(0), r.Float64At(1))
	}
}

func TestFloat32Precision(t *testing.T) {
	m := machineFor(t, `
float fsum(float a, float b) { return a + b; }`)
	fn := m.Mod.FunctionByName("fsum")
	v, err := m.Exec(fn, FloatValue(0.1), FloatValue(0.2))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(float32(0.1) + float32(0.2))
	// Arguments arrive as float64; the add narrows to float32.
	if math.Abs(v.Float()-want) > 1e-7 {
		t.Errorf("fsum = %v, want ~%v", v.Float(), want)
	}
}

func TestCallBetweenFunctions(t *testing.T) {
	m := machineFor(t, `
double square(double x) { return x * x; }
double poly(double x) { return square(x) + square(x + 1.0); }
`)
	fn := m.Mod.FunctionByName("poly")
	v, err := m.Exec(fn, FloatValue(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 13 {
		t.Errorf("poly(2) = %g, want 13", v.Float())
	}
	if m.Counts.Calls != 2 {
		t.Errorf("calls = %d, want 2", m.Counts.Calls)
	}
}

func TestExternCall(t *testing.T) {
	mod, err := cc.Compile("test", `double idf(double x) { return x; }`)
	if err != nil {
		t.Fatal(err)
	}
	// Build a function that calls an external symbol.
	fn := ir.NewFunction("callext", ir.Double, ir.Arg("x", ir.Double))
	b := ir.NewBuilder(fn)
	g := mod.DeclareExternal("magic", ir.Double)
	call := b.Call(g, ir.Double, fn.Args[0])
	b.Ret(call)
	mod.AddFunction(fn)

	m := NewMachine(mod)
	m.Externs["magic"] = func(_ *Machine, args []Value) (Value, error) {
		return FloatValue(args[0].Float() * 3), nil
	}
	v, err := m.Exec(fn, FloatValue(7))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 21 {
		t.Errorf("callext(7) = %g, want 21", v.Float())
	}
}

func TestExternUnboundError(t *testing.T) {
	mod := ir.NewModule("m")
	fn := ir.NewFunction("f", ir.Void)
	b := ir.NewBuilder(fn)
	g := mod.DeclareExternal("missing", ir.Void)
	b.Call(g, ir.Void)
	b.Ret(nil)
	mod.AddFunction(fn)
	m := NewMachine(mod)
	if _, err := m.Exec(fn); err == nil {
		t.Fatal("expected unbound external error")
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	m := machineFor(t, `
double peek(double* a, int i) { return a[i]; }`)
	fn := m.Mod.FunctionByName("peek")
	buf := NewBuffer("a", 2*8)
	if _, err := m.Exec(fn, PtrValue(Pointer{Buf: buf}), IntValue(5)); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestDivisionByZero(t *testing.T) {
	m := machineFor(t, `int div(int a, int b) { return a / b; }`)
	fn := m.Mod.FunctionByName("div")
	if _, err := m.Exec(fn, IntValue(1), IntValue(0)); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestStepLimit(t *testing.T) {
	m := machineFor(t, `
void spin() {
    while (1) { }
}`)
	m.MaxSteps = 1000
	fn := m.Mod.FunctionByName("spin")
	if _, err := m.Exec(fn); err == nil {
		t.Fatal("expected step limit error")
	}
}

func TestLocalArrayHistogram(t *testing.T) {
	m := machineFor(t, `
int histo8(int* data, int n) {
    int bins[8];
    for (int i = 0; i < 8; i++) { bins[i] = 0; }
    for (int i = 0; i < n; i++) { bins[data[i] % 8] += 1; }
    int best = 0;
    for (int i = 0; i < 8; i++) { if (bins[i] > best) { best = bins[i]; } }
    return best;
}`)
	fn := m.Mod.FunctionByName("histo8")
	data := NewBuffer("data", 16*4)
	for i := 0; i < 16; i++ {
		data.SetInt32(i, int32(i%4)) // bins 0..3 get 4 each
	}
	v, err := m.Exec(fn, PtrValue(Pointer{Buf: data}), IntValue(16))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 4 {
		t.Errorf("histo8 max = %d, want 4", v.Int())
	}
}

func TestPointerToPointer(t *testing.T) {
	m := machineFor(t, `
double cell(double** rows, int i, int j) { return rows[i][j]; }`)
	fn := m.Mod.FunctionByName("cell")

	row0 := NewBuffer("row0", 2*8)
	row0.SetFloat64(0, 1)
	row0.SetFloat64(1, 2)
	row1 := NewBuffer("row1", 2*8)
	row1.SetFloat64(0, 3)
	row1.SetFloat64(1, 42)
	rows := NewBuffer("rows", 2*8)

	// Store the row pointers via the machine's handle table.
	if err := m.storePtr(Pointer{Buf: rows, Off: 0}, PtrValue(Pointer{Buf: row0})); err != nil {
		t.Fatal(err)
	}
	if err := m.storePtr(Pointer{Buf: rows, Off: 8}, PtrValue(Pointer{Buf: row1})); err != nil {
		t.Fatal(err)
	}
	v, err := m.Exec(fn, PtrValue(Pointer{Buf: rows}), IntValue(1), IntValue(1))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 42 {
		t.Errorf("cell(1,1) = %g, want 42", v.Float())
	}
}

func TestProfileCounts(t *testing.T) {
	m := machineFor(t, `
double sum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}`)
	m.Profile = map[*ir.Instruction]int64{}
	fn := m.Mod.FunctionByName("sum")
	buf := NewBuffer("a", 8*8)
	if _, err := m.Exec(fn, PtrValue(Pointer{Buf: buf}), IntValue(8)); err != nil {
		t.Fatal(err)
	}
	var loadCount int64
	for in, c := range m.Profile {
		if in.Op == ir.OpLoad {
			loadCount += c
		}
	}
	if loadCount != 8 {
		t.Errorf("profiled loads = %d, want 8", loadCount)
	}
}

// Property: interpreting x+y-x returns y for arbitrary inputs.
func TestQuickIntIdentity(t *testing.T) {
	m := machineFor(t, `long f(long x, long y) { return x + y - x; }`)
	fn := m.Mod.FunctionByName("f")
	if err := quick.Check(func(x, y int32) bool {
		v, err := m.Exec(fn, IntValue(int64(x)), IntValue(int64(y)))
		return err == nil && v.Int() == int64(y)
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: the interpreter agrees with Go float64 semantics on a*b+c.
func TestQuickFMA(t *testing.T) {
	m := machineFor(t, `double f(double a, double b, double c) { return a*b + c; }`)
	fn := m.Mod.FunctionByName("f")
	if err := quick.Check(func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		v, err := m.Exec(fn, FloatValue(a), FloatValue(b), FloatValue(c))
		want := a*b + c
		if math.IsNaN(want) {
			return err == nil && math.IsNaN(v.Float())
		}
		return err == nil && v.Float() == want
	}, nil); err != nil {
		t.Error(err)
	}
}
