package interp

import "math"

// Little-endian raw memory helpers (stdlib only, no unsafe).

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func put64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func f32bits(f float32) uint32     { return math.Float32bits(f) }
func f32frombits(u uint32) float32 { return math.Float32frombits(u) }
func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(u uint64) float64 { return math.Float64frombits(u) }
