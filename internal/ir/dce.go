package ir

// EliminateDeadCode removes pure instructions whose results do not
// (transitively) feed any side-effecting instruction. It is a mark-and-sweep
// pass: stores, branches, returns and calls are the roots; everything their
// operand graphs reach is live; the rest — including dead phi cycles left by
// SSA construction — is deleted. This is the "standard dead code
// elimination pass" the paper's transformation phase relies on after cutting
// out idiom code.
func EliminateDeadCode(f *Function) int {
	live := map[*Instruction]bool{}
	var stack []*Instruction
	markOps := func(in *Instruction) {
		for _, op := range in.Ops {
			if oi, ok := op.(*Instruction); ok && !live[oi] {
				live[oi] = true
				stack = append(stack, oi)
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !isPure(in) {
				live[in] = true
				stack = append(stack, in)
			}
		}
	}
	for len(stack) > 0 {
		in := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		markOps(in)
	}

	removed := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if live[in] {
				kept = append(kept, in)
			} else {
				removed++
			}
		}
		b.Instrs = kept
	}
	return removed
}

// isPure reports whether removing the instruction cannot change observable
// behaviour provided its result is unused.
func isPure(in *Instruction) bool {
	switch in.Op {
	case OpStore, OpBr, OpRet, OpCall:
		return false
	default:
		return in.HasResult()
	}
}
