package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		ty   *Type
		want string
	}{
		{Void, "void"},
		{Bool, "i1"},
		{Int32, "i32"},
		{Int64, "i64"},
		{Float, "float"},
		{Double, "double"},
		{PointerTo(Double), "double*"},
		{PointerTo(PointerTo(Int32)), "i32**"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !PointerTo(Double).Equal(PointerTo(Double)) {
		t.Error("identical pointer types must compare equal")
	}
	if PointerTo(Double).Equal(PointerTo(Float)) {
		t.Error("pointer types with different pointees must differ")
	}
	if Int32.Equal(Int64) {
		t.Error("i32 must differ from i64")
	}
	if Int32.Equal(nil) {
		t.Error("non-nil type must differ from nil")
	}
}

func TestTypeSize(t *testing.T) {
	sizes := map[*Type]int{
		Bool: 1, Int32: 4, Int64: 8, Float: 4, Double: 8,
		PointerTo(Int32): 8, Void: 0, Label: 0,
	}
	for ty, want := range sizes {
		if got := ty.Size(); got != want {
			t.Errorf("%s.Size() = %d, want %d", ty, got, want)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	if !Int64.IsInteger() || !Bool.IsInteger() || Double.IsInteger() {
		t.Error("IsInteger misclassifies")
	}
	if !Double.IsFloat() || !Float.IsFloat() || Int32.IsFloat() {
		t.Error("IsFloat misclassifies")
	}
	if !PointerTo(Double).IsPointer() || Int64.IsPointer() {
		t.Error("IsPointer misclassifies")
	}
}

func TestConstRendering(t *testing.T) {
	if got := ConstInt(Int64, 42).Operand(); got != "42" {
		t.Errorf("int const = %q", got)
	}
	if got := ConstFloat(Double, 1.5).Operand(); got != "1.5" {
		t.Errorf("float const = %q", got)
	}
	if got := ConstNull(PointerTo(Int32)).Operand(); got != "null" {
		t.Errorf("null const = %q", got)
	}
}

func TestConstIsZero(t *testing.T) {
	if !ConstInt(Int32, 0).IsZero() || ConstInt(Int32, 1).IsZero() {
		t.Error("integer IsZero wrong")
	}
	if !ConstFloat(Double, 0).IsZero() || ConstFloat(Double, 0.5).IsZero() {
		t.Error("float IsZero wrong")
	}
	if !ConstNull(PointerTo(Int32)).IsZero() {
		t.Error("null IsZero wrong")
	}
}

func TestConstIntPanicsOnFloatType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ConstInt(Double) should panic")
		}
	}()
	ConstInt(Double, 1)
}

// buildExample builds the Figure 3 example function:
//
//	define i32 @example(i32 %a, i32 %b, i32 %c) {
//	  %1 = mul i32 %a, %b
//	  %2 = mul i32 %c, %a
//	  %3 = add i32 %1, %2
//	  ret i32 %3
//	}
func buildExample() *Function {
	f := NewFunction("example", Int32, Arg("a", Int32), Arg("b", Int32), Arg("c", Int32))
	b := NewBuilder(f)
	m1 := b.Mul(f.Args[0], f.Args[1])
	m2 := b.Mul(f.Args[2], f.Args[0])
	sum := b.Add(m1, m2)
	b.Ret(sum)
	return f
}

func TestBuilderExample(t *testing.T) {
	f := buildExample()
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	s := f.String()
	for _, want := range []string{"define i32 @example(i32 %a, i32 %b, i32 %c)", "mul i32 %a, %b", "mul i32 %c, %a", "add i32", "ret i32"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed function missing %q:\n%s", want, s)
		}
	}
}

func TestBuilderLoop(t *testing.T) {
	// for (i = 0; i < n; i++) sum += a[i]
	f := NewFunction("sum", Double, Arg("a", PointerTo(Double)), Arg("n", Int64))
	b := NewBuilder(f)
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	b.Br(header)

	b.SetBlock(header)
	i := b.Phi(Int64, "i")
	acc := b.Phi(Double, "acc")
	cond := b.ICmp(PredLT, i, f.Args[1])
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	addr := b.GEP(f.Args[0], i)
	v := b.Load(addr)
	acc2 := b.FAdd(acc, v)
	i2 := b.Add(i, ConstInt(Int64, 1))
	b.Br(header)

	AddIncoming(i, ConstInt(Int64, 0), f.Entry())
	AddIncoming(i, i2, body)
	AddIncoming(acc, ConstFloat(Double, 0), f.Entry())
	AddIncoming(acc, acc2, body)

	b.SetBlock(exit)
	b.Ret(acc)

	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := len(f.Blocks); got != 4 {
		t.Errorf("blocks = %d, want 4", got)
	}
	if f.Entry().Ident != "entry1" {
		t.Errorf("entry block name = %q", f.Entry().Ident)
	}
	if header.Phis()[0] != i {
		t.Errorf("first phi should be %%i")
	}
	if v := i.IncomingFor(body); v != i2 {
		t.Errorf("IncomingFor(body) = %v, want %%%s", v, i2.Ident)
	}
	if v := i.IncomingFor(exit); v != nil {
		t.Errorf("IncomingFor(exit) should be nil, got %v", v)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	f := NewFunction("bad", Void)
	b := NewBuilder(f)
	b.Add(ConstInt(Int32, 1), ConstInt(Int32, 2))
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "lacks a terminator") {
		t.Fatalf("expected missing-terminator error, got %v", err)
	}
}

func TestVerifyCatchesDuplicateNames(t *testing.T) {
	f := NewFunction("dup", Void)
	b := NewBuilder(f)
	a1 := b.Add(ConstInt(Int32, 1), ConstInt(Int32, 2))
	a2 := b.Add(ConstInt(Int32, 3), ConstInt(Int32, 4))
	a2.Ident = a1.Ident
	b.Ret(nil)
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "duplicate SSA name") {
		t.Fatalf("expected duplicate-name error, got %v", err)
	}
}

func TestVerifyCatchesIncompletePhi(t *testing.T) {
	f := NewFunction("phi", Int32)
	b := NewBuilder(f)
	merge := f.NewBlock("merge")
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	cond := b.ICmp(PredLT, ConstInt(Int32, 1), ConstInt(Int32, 2))
	b.CondBr(cond, left, right)
	b.SetBlock(left)
	b.Br(merge)
	b.SetBlock(right)
	b.Br(merge)
	b.SetBlock(merge)
	p := b.Phi(Int32, "p")
	AddIncoming(p, ConstInt(Int32, 1), left) // missing incoming from right
	b.Ret(p)
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "covers 1 of 2 predecessors") {
		t.Fatalf("expected phi-coverage error, got %v", err)
	}
}

func TestVerifyCatchesForeignInstruction(t *testing.T) {
	other := buildExample()
	foreign := other.Blocks[0].Instrs[0]

	f := NewFunction("borrow", Int32)
	b := NewBuilder(f)
	b.Ret(foreign)
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "another function") {
		t.Fatalf("expected foreign-instruction error, got %v", err)
	}
}

func TestModuleLookup(t *testing.T) {
	m := NewModule("test")
	f := buildExample()
	m.AddFunction(f)
	if m.FunctionByName("example") != f {
		t.Error("FunctionByName failed")
	}
	if m.FunctionByName("missing") != nil {
		t.Error("FunctionByName should return nil for missing")
	}
	g1 := m.DeclareExternal("cusparseDcsrmv", Void)
	g2 := m.DeclareExternal("cusparseDcsrmv", Void)
	if g1 != g2 {
		t.Error("DeclareExternal should intern by name")
	}
	if len(m.Externals) != 1 {
		t.Errorf("externals = %d, want 1", len(m.Externals))
	}
}

func TestValueByName(t *testing.T) {
	f := buildExample()
	if f.ValueByName("a") != f.Args[0] {
		t.Error("ValueByName(a) should return the argument")
	}
	sum := f.Entry().Instrs[2]
	if f.ValueByName(sum.Ident) != sum {
		t.Error("ValueByName should find the add instruction")
	}
	if f.ValueByName("nope") != nil {
		t.Error("ValueByName(nope) should be nil")
	}
}

func TestInstructionStringForms(t *testing.T) {
	f := NewFunction("strs", Void, Arg("p", PointerTo(Double)), Arg("x", Double))
	b := NewBuilder(f)
	p, x := f.Args[0], f.Args[1]
	gep := b.GEP(p, ConstInt(Int64, 3))
	ld := b.Load(gep)
	st := b.Store(x, gep)
	sel := b.Select(b.FCmp(PredGT, ld, x), ld, x)
	cast := b.Cast(OpFPTrunc, sel, Float)
	call := b.Call(&GlobalRef{Ident: "sink", Ty: Void}, Void, cast)
	ret := b.Ret(nil)

	wants := map[*Instruction]string{
		gep:  "getelementptr double, double* %p, i64 3",
		ld:   "load double, double* %",
		st:   "store double %x, double* %",
		sel:  "select i1 %",
		cast: "fptrunc double %",
		call: "call void @sink(float %",
		ret:  "ret void",
	}
	for in, want := range wants {
		if !strings.Contains(in.String(), want) {
			t.Errorf("instr %q missing %q", in.String(), want)
		}
	}
}

func TestOpcodeNamesTotal(t *testing.T) {
	// Every opcode used by the idiom library must have a printable name so
	// IDL diagnostics stay readable.
	for op := OpAdd; op <= OpFloor; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestPhiInsertionOrder(t *testing.T) {
	f := NewFunction("phiorder", Int32)
	b := NewBuilder(f)
	add := b.Add(ConstInt(Int32, 1), ConstInt(Int32, 2))
	p := b.Phi(Int32, "p")
	if f.Entry().Instrs[0] != p || f.Entry().Instrs[1] != add {
		t.Fatal("phi must be inserted before non-phi instructions")
	}
	if f.Entry().Instrs[0].index != 0 || f.Entry().Instrs[1].index != 1 {
		t.Fatal("indices must be recomputed after phi insertion")
	}
}

func TestQuickConstRoundTrip(t *testing.T) {
	// Property: integer constants render to their decimal value for any int64.
	if err := quick.Check(func(v int64) bool {
		c := ConstInt(Int64, v)
		return c.Operand() == formatInt(v)
	}, nil); err != nil {
		t.Error(err)
	}
}

func formatInt(v int64) string {
	c := &Const{Ty: Int64, IntVal: v}
	return c.Operand()
}

func TestQuickTypePointerDepth(t *testing.T) {
	// Property: n levels of PointerTo produce n stars and Equal holds
	// reflexively at every depth.
	if err := quick.Check(func(n uint8) bool {
		depth := int(n%8) + 1
		ty := Int32
		for i := 0; i < depth; i++ {
			ty = PointerTo(ty)
		}
		if strings.Count(ty.String(), "*") != depth {
			return false
		}
		ty2 := Int32
		for i := 0; i < depth; i++ {
			ty2 = PointerTo(ty2)
		}
		return ty.Equal(ty2)
	}, nil); err != nil {
		t.Error(err)
	}
}
