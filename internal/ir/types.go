// Package ir implements an LLVM-inspired SSA intermediate representation.
//
// The representation deliberately mirrors the subset of LLVM IR that the
// paper's Idiom Description Language (IDL) atomic constraints operate on:
// typed values, instructions with ordered operands, basic blocks terminated
// by branch or return instructions, and phi nodes whose incoming blocks are
// identified with their terminating branch instruction.
package ir

import "fmt"

// Kind enumerates the primitive type kinds supported by the IR.
type Kind int

const (
	// KindVoid is the type of instructions that produce no value.
	KindVoid Kind = iota
	// KindBool is the 1-bit integer type (LLVM i1).
	KindBool
	// KindInt32 is the 32-bit signed integer type (LLVM i32).
	KindInt32
	// KindInt64 is the 64-bit signed integer type (LLVM i64).
	KindInt64
	// KindFloat is the 32-bit IEEE float type.
	KindFloat
	// KindDouble is the 64-bit IEEE float type.
	KindDouble
	// KindPointer is a typed pointer.
	KindPointer
	// KindLabel is the type of basic block references.
	KindLabel
	// KindFunc is the type of function references.
	KindFunc
)

// Type describes the type of an IR value. Types are interned per module by
// the convenience constructors; equality is structural via Equal.
type Type struct {
	Kind Kind
	// Elem is the pointee type for KindPointer and nil otherwise.
	Elem *Type
}

// Predefined scalar types. Pointers are built with PointerTo.
var (
	Void   = &Type{Kind: KindVoid}
	Bool   = &Type{Kind: KindBool}
	Int32  = &Type{Kind: KindInt32}
	Int64  = &Type{Kind: KindInt64}
	Float  = &Type{Kind: KindFloat}
	Double = &Type{Kind: KindDouble}
	Label  = &Type{Kind: KindLabel}
)

// PointerTo returns the pointer type with element type elem.
func PointerTo(elem *Type) *Type {
	return &Type{Kind: KindPointer, Elem: elem}
}

// IsInteger reports whether t is one of the integer types (i1, i32, i64).
func (t *Type) IsInteger() bool {
	return t != nil && (t.Kind == KindBool || t.Kind == KindInt32 || t.Kind == KindInt64)
}

// IsFloat reports whether t is a floating point type.
func (t *Type) IsFloat() bool {
	return t != nil && (t.Kind == KindFloat || t.Kind == KindDouble)
}

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool {
	return t != nil && t.Kind == KindPointer
}

// Equal reports structural equality of two types.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	if t.Kind == KindPointer {
		return t.Elem.Equal(o.Elem)
	}
	return true
}

// Size returns the size of the type in bytes as laid out by the interpreter's
// simulated memory. Labels and void have size zero.
func (t *Type) Size() int {
	switch t.Kind {
	case KindBool:
		return 1
	case KindInt32, KindFloat:
		return 4
	case KindInt64, KindDouble, KindPointer:
		return 8
	default:
		return 0
	}
}

// String renders the type in LLVM-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil-type>"
	}
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindBool:
		return "i1"
	case KindInt32:
		return "i32"
	case KindInt64:
		return "i64"
	case KindFloat:
		return "float"
	case KindDouble:
		return "double"
	case KindPointer:
		return t.Elem.String() + "*"
	case KindLabel:
		return "label"
	case KindFunc:
		return "func"
	default:
		return fmt.Sprintf("<kind %d>", t.Kind)
	}
}
