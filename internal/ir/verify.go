package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural well-formedness of a function:
//
//   - every block is non-empty and ends in exactly one terminator;
//   - terminators appear only at the end of blocks;
//   - phis appear only at the start of blocks and cover all predecessors;
//   - every operand that is an instruction belongs to the same function;
//   - SSA names are unique;
//   - branch successors belong to the function.
//
// It returns a joined error listing every violation found.
func Verify(f *Function) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("%s: %s", f.Ident, fmt.Sprintf(format, args...)))
	}

	if len(f.Blocks) == 0 {
		fail("function has no blocks")
		return errors.Join(errs...)
	}

	names := map[string]bool{}
	for _, a := range f.Args {
		if names[a.Ident] {
			fail("duplicate argument name %q", a.Ident)
		}
		names[a.Ident] = true
	}

	inFunc := map[*Instruction]bool{}
	blocks := map[*Block]bool{}
	for _, b := range f.Blocks {
		blocks[b] = true
		for _, in := range b.Instrs {
			inFunc[in] = true
			if in.HasResult() {
				if in.Ident == "" {
					fail("unnamed value-producing %s in block %s", in.Op, b.Ident)
				} else if names[in.Ident] {
					fail("duplicate SSA name %%%s", in.Ident)
				}
				names[in.Ident] = true
			}
		}
	}

	preds := map[*Block][]*Block{}
	for _, b := range f.Blocks {
		term := b.Terminator()
		if term == nil {
			fail("block %s lacks a terminator", b.Ident)
			continue
		}
		for i, in := range b.Instrs {
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				fail("terminator %s not at end of block %s", in.Op, b.Ident)
			}
			if in.Op == OpPhi {
				if i > 0 && b.Instrs[i-1].Op != OpPhi {
					fail("phi %%%s not at start of block %s", in.Ident, b.Ident)
				}
			}
		}
		for _, s := range term.Succs {
			if !blocks[s] {
				fail("branch in %s targets foreign block %s", b.Ident, s.Ident)
			}
			preds[s] = append(preds[s], b)
		}
	}

	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, op := range in.Ops {
				if oi, ok := op.(*Instruction); ok && !inFunc[oi] {
					fail("%s in %s uses instruction %%%s from another function", in.Op, b.Ident, oi.Ident)
				}
				if arg, ok := op.(*Argument); ok && arg.Parent != nil && arg.Parent != f {
					fail("%s in %s uses foreign argument %%%s", in.Op, b.Ident, arg.Ident)
				}
			}
			if in.Op == OpPhi {
				if len(in.Ops) != len(in.Incoming) {
					fail("phi %%%s has %d values but %d incoming blocks", in.Ident, len(in.Ops), len(in.Incoming))
					continue
				}
				want := preds[b]
				if len(in.Incoming) != len(want) {
					fail("phi %%%s in %s covers %d of %d predecessors", in.Ident, b.Ident, len(in.Incoming), len(want))
				}
				for _, ib := range in.Incoming {
					found := false
					for _, p := range want {
						if p == ib {
							found = true
							break
						}
					}
					if !found {
						fail("phi %%%s lists non-predecessor %s", in.Ident, ib.Ident)
					}
				}
			}
		}
	}

	return errors.Join(errs...)
}

// VerifyModule verifies every function in the module.
func VerifyModule(m *Module) error {
	var errs []error
	for _, f := range m.Functions {
		if err := Verify(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
