package ir

import (
	"fmt"
	"strings"
)

// Opcode identifies the operation an instruction performs. The set mirrors
// the opcodes named by IDL's atomic constraints plus the casts and calls the
// mini-C frontend needs.
type Opcode int

const (
	// OpInvalid is the zero value and never appears in a valid function.
	OpInvalid Opcode = iota

	// Integer arithmetic.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem

	// Floating point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Memory.
	OpAlloca
	OpLoad
	OpStore
	OpGEP

	// Comparisons and selection.
	OpICmp
	OpFCmp
	OpSelect

	// Casts.
	OpSExt
	OpZExt
	OpTrunc
	OpSIToFP
	OpFPToSI
	OpFPExt
	OpFPTrunc
	OpBitcast

	// Control flow.
	OpBr
	OpRet
	OpPhi
	OpCall

	// Intrinsic-like math calls kept as opcodes so the interpreter and cost
	// model can account for them individually.
	OpSqrt
	OpFAbs
	OpExp
	OpLog
	OpSin
	OpCos
	OpPow
	OpFloor
)

var opcodeNames = map[Opcode]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "getelementptr",
	OpICmp: "icmp", OpFCmp: "fcmp", OpSelect: "select",
	OpSExt: "sext", OpZExt: "zext", OpTrunc: "trunc",
	OpSIToFP: "sitofp", OpFPToSI: "fptosi", OpFPExt: "fpext", OpFPTrunc: "fptrunc",
	OpBitcast: "bitcast",
	OpBr:      "br", OpRet: "ret", OpPhi: "phi", OpCall: "call",
	OpSqrt: "sqrt", OpFAbs: "fabs", OpExp: "exp", OpLog: "log",
	OpSin: "sin", OpCos: "cos", OpPow: "pow", OpFloor: "floor",
}

// String returns the LLVM-style mnemonic for the opcode.
func (op Opcode) String() string {
	if s, ok := opcodeNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Predicate is the comparison predicate for icmp/fcmp instructions.
type Predicate int

// Comparison predicates. Integer comparisons are signed.
const (
	PredEQ Predicate = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

var predNames = map[Predicate]string{
	PredEQ: "eq", PredNE: "ne", PredLT: "slt", PredLE: "sle", PredGT: "sgt", PredGE: "sge",
}

// String returns the LLVM-style predicate mnemonic.
func (p Predicate) String() string {
	if s, ok := predNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pred(%d)", int(p))
}

// Instruction is a single SSA operation inside a basic block. Instructions
// that produce a value implement Value and are referred to by their Ident.
type Instruction struct {
	Op    Opcode
	Ty    *Type // result type; Void for store/br/ret
	Ident string
	Block *Block

	// Ops are the ordered operands. Conventions (match LLVM argument order
	// as exposed to IDL's "is first/second argument of"):
	//   add/sub/mul/...:   [lhs, rhs]
	//   load:              [pointer]
	//   store:             [value, pointer]
	//   gep:               [pointer, index]
	//   icmp/fcmp:         [lhs, rhs] with Pred
	//   select:            [cond, ifTrue, ifFalse]
	//   casts:             [value]
	//   br (cond):         [cond] with Succs [then, else]
	//   br (uncond):       []     with Succs [target]
	//   ret:               [value] or []
	//   phi:               incoming values in Ops, incoming blocks in Incoming
	//   call:              [callee, args...]
	//   math ops:          [args...]
	Ops []Value

	// Pred is meaningful for icmp/fcmp.
	Pred Predicate

	// Succs are the successor blocks of a br terminator.
	Succs []*Block

	// Incoming are the predecessor blocks of a phi, parallel to Ops.
	Incoming []*Block

	// AllocaCount is the element count for alloca instructions.
	AllocaCount int

	// index caches the position within the parent block (maintained by Block).
	index int
}

// Type implements Value.
func (in *Instruction) Type() *Type { return in.Ty }

// Name implements Value.
func (in *Instruction) Name() string { return in.Ident }

// Operand implements Value.
func (in *Instruction) Operand() string { return "%" + in.Ident }

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instruction) IsTerminator() bool { return in.Op == OpBr || in.Op == OpRet }

// HasResult reports whether the instruction produces an SSA value.
func (in *Instruction) HasResult() bool {
	return in.Ty != nil && in.Ty.Kind != KindVoid
}

// Operand returns the i-th operand or nil if out of range.
func (in *Instruction) OperandAt(i int) Value {
	if i < 0 || i >= len(in.Ops) {
		return nil
	}
	return in.Ops[i]
}

// IncomingFor returns the incoming value of a phi for predecessor block b,
// or nil if b is not an incoming block.
func (in *Instruction) IncomingFor(b *Block) Value {
	for i, ib := range in.Incoming {
		if ib == b {
			return in.Ops[i]
		}
	}
	return nil
}

// String renders the instruction in LLVM-like textual form.
func (in *Instruction) String() string {
	var b strings.Builder
	if in.HasResult() {
		fmt.Fprintf(&b, "%%%s = ", in.Ident)
	}
	switch in.Op {
	case OpStore:
		fmt.Fprintf(&b, "store %s %s, %s %s",
			in.Ops[0].Type(), in.Ops[0].Operand(), in.Ops[1].Type(), in.Ops[1].Operand())
	case OpLoad:
		fmt.Fprintf(&b, "load %s, %s %s", in.Ty, in.Ops[0].Type(), in.Ops[0].Operand())
	case OpGEP:
		fmt.Fprintf(&b, "getelementptr %s, %s %s, %s %s",
			in.Ty.Elem, in.Ops[0].Type(), in.Ops[0].Operand(), in.Ops[1].Type(), in.Ops[1].Operand())
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s, i64 %d", in.Ty.Elem, in.AllocaCount)
	case OpICmp:
		fmt.Fprintf(&b, "icmp %s %s %s, %s", in.Pred, in.Ops[0].Type(), in.Ops[0].Operand(), in.Ops[1].Operand())
	case OpFCmp:
		fmt.Fprintf(&b, "fcmp %s %s %s, %s", in.Pred, in.Ops[0].Type(), in.Ops[0].Operand(), in.Ops[1].Operand())
	case OpSelect:
		fmt.Fprintf(&b, "select i1 %s, %s %s, %s %s", in.Ops[0].Operand(),
			in.Ops[1].Type(), in.Ops[1].Operand(), in.Ops[2].Type(), in.Ops[2].Operand())
	case OpBr:
		if len(in.Ops) == 1 {
			fmt.Fprintf(&b, "br i1 %s, label %%%s, label %%%s", in.Ops[0].Operand(), in.Succs[0].Ident, in.Succs[1].Ident)
		} else {
			fmt.Fprintf(&b, "br label %%%s", in.Succs[0].Ident)
		}
	case OpRet:
		if len(in.Ops) == 0 {
			b.WriteString("ret void")
		} else {
			fmt.Fprintf(&b, "ret %s %s", in.Ops[0].Type(), in.Ops[0].Operand())
		}
	case OpPhi:
		fmt.Fprintf(&b, "phi %s ", in.Ty)
		for i := range in.Ops {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "[ %s, %%%s ]", in.Ops[i].Operand(), in.Incoming[i].Ident)
		}
	case OpCall:
		callee := in.Ops[0]
		fmt.Fprintf(&b, "call %s %s(", in.Ty, callee.Operand())
		for i, a := range in.Ops[1:] {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", a.Type(), a.Operand())
		}
		b.WriteString(")")
	case OpSExt, OpZExt, OpTrunc, OpSIToFP, OpFPToSI, OpFPExt, OpFPTrunc, OpBitcast:
		fmt.Fprintf(&b, "%s %s %s to %s", in.Op, in.Ops[0].Type(), in.Ops[0].Operand(), in.Ty)
	default:
		fmt.Fprintf(&b, "%s %s ", in.Op, in.Ty)
		for i, o := range in.Ops {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Operand())
		}
	}
	return b.String()
}
