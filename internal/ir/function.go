package ir

import (
	"fmt"
	"strings"
)

// Block is a basic block: a label followed by a straight-line instruction
// sequence ending in exactly one terminator.
type Block struct {
	Ident  string
	Parent *Function
	Instrs []*Instruction

	// index caches the position within the parent function.
	index int
}

// Type implements Value (blocks appear as label operands conceptually).
func (b *Block) Type() *Type { return Label }

// Name implements Value.
func (b *Block) Name() string { return b.Ident }

// Operand implements Value.
func (b *Block) Operand() string { return "%" + b.Ident }

// Append adds an instruction at the end of the block and sets its parent.
func (b *Block) Append(in *Instruction) *Instruction {
	in.Block = b
	in.index = len(b.Instrs)
	b.Instrs = append(b.Instrs, in)
	return in
}

// Terminator returns the block's terminator, or nil if the block is still
// under construction.
func (b *Block) Terminator() *Instruction {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// First returns the first instruction of the block, or nil when empty.
func (b *Block) First() *Instruction {
	if len(b.Instrs) == 0 {
		return nil
	}
	return b.Instrs[0]
}

// Phis returns the leading phi instructions of the block.
func (b *Block) Phis() []*Instruction {
	var out []*Instruction
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		out = append(out, in)
	}
	return out
}

// Function is a single function: arguments plus a list of basic blocks, the
// first of which is the entry block.
type Function struct {
	Ident  string
	Ret    *Type
	Args   []*Argument
	Blocks []*Block
	Parent *Module

	nameCounter int
}

// NewFunction creates a function with the given name, return type and typed
// parameter names.
func NewFunction(name string, ret *Type, params ...*Argument) *Function {
	f := &Function{Ident: name, Ret: ret}
	for i, p := range params {
		p.Parent = f
		p.Index = i
		f.Args = append(f.Args, p)
	}
	return f
}

// Arg creates an argument suitable for passing to NewFunction.
func Arg(name string, ty *Type) *Argument {
	return &Argument{Ident: name, Ty: ty}
}

// Type implements Value.
func (f *Function) Type() *Type { return &Type{Kind: KindFunc} }

// Name implements Value.
func (f *Function) Name() string { return f.Ident }

// Operand implements Value.
func (f *Function) Operand() string { return "@" + f.Ident }

// NewBlock appends a new basic block with a unique label derived from hint.
func (f *Function) NewBlock(hint string) *Block {
	if hint == "" {
		hint = "bb"
	}
	name := f.uniqueName(hint)
	b := &Block{Ident: name, Parent: f, index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block of the function.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// uniqueName returns hint, made unique within the function by suffixing.
func (f *Function) uniqueName(hint string) string {
	f.nameCounter++
	return fmt.Sprintf("%s%d", hint, f.nameCounter)
}

// FreshName returns a new SSA name unique within the function, derived from
// hint. It is used by passes that synthesize values (e.g. mem2reg phis).
func (f *Function) FreshName(hint string) string {
	return f.uniqueName(hint)
}

// Instructions returns all instructions of the function in block order. The
// returned slice is freshly allocated.
func (f *Function) Instructions() []*Instruction {
	var out []*Instruction
	for _, b := range f.Blocks {
		out = append(out, b.Instrs...)
	}
	return out
}

// BlockOf returns the block with the given label, or nil.
func (f *Function) BlockOf(name string) *Block {
	for _, b := range f.Blocks {
		if b.Ident == name {
			return b
		}
	}
	return nil
}

// ValueByName finds an instruction or argument by SSA name, or nil.
func (f *Function) ValueByName(name string) Value {
	for _, a := range f.Args {
		if a.Ident == name {
			return a
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Ident == name && in.HasResult() {
				return in
			}
		}
	}
	return nil
}

// String renders the function in LLVM-like textual form.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "define %s @%s(", f.Ret, f.Ident)
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %%%s", a.Ty, a.Ident)
	}
	sb.WriteString(") {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Ident)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Module is a collection of functions plus references to external symbols.
type Module struct {
	Ident     string
	Functions []*Function
	// Externals lists declared-but-not-defined symbols (API entry points).
	Externals []*GlobalRef
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Ident: name}
}

// AddFunction appends fn to the module.
func (m *Module) AddFunction(fn *Function) {
	fn.Parent = m
	m.Functions = append(m.Functions, fn)
}

// FunctionByName returns the named function or nil.
func (m *Module) FunctionByName(name string) *Function {
	for _, f := range m.Functions {
		if f.Ident == name {
			return f
		}
	}
	return nil
}

// DeclareExternal registers (or returns the existing) external symbol name.
func (m *Module) DeclareExternal(name string, ty *Type) *GlobalRef {
	for _, g := range m.Externals {
		if g.Ident == name {
			return g
		}
	}
	g := &GlobalRef{Ident: name, Ty: ty}
	m.Externals = append(m.Externals, g)
	return g
}

// String renders every function of the module.
func (m *Module) String() string {
	var sb strings.Builder
	for i, f := range m.Functions {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}
