package ir

import (
	"fmt"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// function arguments, instructions, functions and basic block labels.
type Value interface {
	// Type returns the type of the value.
	Type() *Type
	// Name returns the SSA name of the value without the leading sigil.
	Name() string
	// Operand renders the value as it appears in an operand position.
	Operand() string
}

// Const is a compile-time constant scalar value.
type Const struct {
	Ty *Type
	// IntVal holds the value for integer-typed constants.
	IntVal int64
	// FloatVal holds the value for float-typed constants.
	FloatVal float64
	// Null marks a null pointer constant.
	Null bool
}

// ConstInt returns an integer constant of the given type.
func ConstInt(ty *Type, v int64) *Const {
	if !ty.IsInteger() {
		panic(fmt.Sprintf("ir: ConstInt with non-integer type %s", ty))
	}
	return &Const{Ty: ty, IntVal: v}
}

// ConstFloat returns a floating point constant of the given type.
func ConstFloat(ty *Type, v float64) *Const {
	if !ty.IsFloat() {
		panic(fmt.Sprintf("ir: ConstFloat with non-float type %s", ty))
	}
	return &Const{Ty: ty, FloatVal: v}
}

// ConstNull returns the null constant for pointer type ty.
func ConstNull(ty *Type) *Const {
	return &Const{Ty: ty, Null: true}
}

// Type implements Value.
func (c *Const) Type() *Type { return c.Ty }

// Name implements Value. Constants are unnamed; the rendered literal is used.
func (c *Const) Name() string { return c.Operand() }

// Operand implements Value.
func (c *Const) Operand() string {
	switch {
	case c.Null:
		return "null"
	case c.Ty.IsInteger():
		return strconv.FormatInt(c.IntVal, 10)
	case c.Ty.IsFloat():
		return strconv.FormatFloat(c.FloatVal, 'g', -1, 64)
	default:
		return "<const>"
	}
}

// IsZero reports whether the constant is a numeric zero (or null pointer).
func (c *Const) IsZero() bool {
	if c.Null {
		return true
	}
	if c.Ty.IsInteger() {
		return c.IntVal == 0
	}
	if c.Ty.IsFloat() {
		return c.FloatVal == 0
	}
	return false
}

// Argument is a formal parameter of a function.
type Argument struct {
	Parent *Function
	Ty     *Type
	Ident  string
	// Index is the zero-based position in the parameter list.
	Index int
}

// Type implements Value.
func (a *Argument) Type() *Type { return a.Ty }

// Name implements Value.
func (a *Argument) Name() string { return a.Ident }

// Operand implements Value.
func (a *Argument) Operand() string { return "%" + a.Ident }

// GlobalRef names an external symbol (an API function or global array)
// referenced from a call instruction.
type GlobalRef struct {
	Ty    *Type
	Ident string
}

// Type implements Value.
func (g *GlobalRef) Type() *Type { return g.Ty }

// Name implements Value.
func (g *GlobalRef) Name() string { return g.Ident }

// Operand implements Value.
func (g *GlobalRef) Operand() string { return "@" + g.Ident }
