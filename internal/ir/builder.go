package ir

import "fmt"

// Builder incrementally constructs instructions at the end of a current
// block, assigning unique SSA names. It mirrors llvm::IRBuilder.
type Builder struct {
	Func *Function
	// Cur is the block new instructions are appended to.
	Cur *Block
}

// NewBuilder returns a builder positioned at fn's entry block (creating it
// if the function has no blocks yet).
func NewBuilder(fn *Function) *Builder {
	b := &Builder{Func: fn}
	if len(fn.Blocks) == 0 {
		b.Cur = fn.NewBlock("entry")
	} else {
		b.Cur = fn.Blocks[len(fn.Blocks)-1]
	}
	return b
}

// SetBlock repositions the builder at the end of blk.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

func (b *Builder) emit(in *Instruction) *Instruction {
	if in.Ident == "" {
		// Result-less instructions get names too, so diagnostics and
		// solution orderings can tell distinct branches and stores apart.
		in.Ident = b.Func.uniqueName("t")
	}
	return b.Cur.Append(in)
}

// Named sets the SSA name for the next value-producing instruction built via
// the returned function. Used sparingly; most callers accept generated names.
func (b *Builder) Named(name string, in *Instruction) *Instruction {
	in.Ident = name
	return in
}

func binOpType(op Opcode, lhs Value) *Type { return lhs.Type() }

// Bin builds a binary arithmetic instruction.
func (b *Builder) Bin(op Opcode, lhs, rhs Value) *Instruction {
	return b.emit(&Instruction{Op: op, Ty: binOpType(op, lhs), Ops: []Value{lhs, rhs}})
}

// Add builds an integer add.
func (b *Builder) Add(lhs, rhs Value) *Instruction { return b.Bin(OpAdd, lhs, rhs) }

// Sub builds an integer sub.
func (b *Builder) Sub(lhs, rhs Value) *Instruction { return b.Bin(OpSub, lhs, rhs) }

// Mul builds an integer mul.
func (b *Builder) Mul(lhs, rhs Value) *Instruction { return b.Bin(OpMul, lhs, rhs) }

// SDiv builds a signed integer division.
func (b *Builder) SDiv(lhs, rhs Value) *Instruction { return b.Bin(OpSDiv, lhs, rhs) }

// SRem builds a signed integer remainder.
func (b *Builder) SRem(lhs, rhs Value) *Instruction { return b.Bin(OpSRem, lhs, rhs) }

// FAdd builds a floating point add.
func (b *Builder) FAdd(lhs, rhs Value) *Instruction { return b.Bin(OpFAdd, lhs, rhs) }

// FSub builds a floating point sub.
func (b *Builder) FSub(lhs, rhs Value) *Instruction { return b.Bin(OpFSub, lhs, rhs) }

// FMul builds a floating point mul.
func (b *Builder) FMul(lhs, rhs Value) *Instruction { return b.Bin(OpFMul, lhs, rhs) }

// FDiv builds a floating point div.
func (b *Builder) FDiv(lhs, rhs Value) *Instruction { return b.Bin(OpFDiv, lhs, rhs) }

// Alloca builds a stack allocation of count elements of elem type.
func (b *Builder) Alloca(elem *Type, count int, name string) *Instruction {
	return b.emit(&Instruction{Op: OpAlloca, Ty: PointerTo(elem), Ident: name, AllocaCount: count})
}

// Load builds a load through ptr.
func (b *Builder) Load(ptr Value) *Instruction {
	pt := ptr.Type()
	if !pt.IsPointer() {
		panic(fmt.Sprintf("ir: load from non-pointer %s", pt))
	}
	return b.emit(&Instruction{Op: OpLoad, Ty: pt.Elem, Ops: []Value{ptr}})
}

// Store builds a store of val through ptr.
func (b *Builder) Store(val, ptr Value) *Instruction {
	return b.emit(&Instruction{Op: OpStore, Ty: Void, Ops: []Value{val, ptr}})
}

// GEP builds an element address computation ptr + idx (scaled by elem size).
func (b *Builder) GEP(ptr, idx Value) *Instruction {
	return b.emit(&Instruction{Op: OpGEP, Ty: ptr.Type(), Ops: []Value{ptr, idx}})
}

// ICmp builds an integer comparison.
func (b *Builder) ICmp(p Predicate, lhs, rhs Value) *Instruction {
	return b.emit(&Instruction{Op: OpICmp, Ty: Bool, Pred: p, Ops: []Value{lhs, rhs}})
}

// FCmp builds a floating point comparison.
func (b *Builder) FCmp(p Predicate, lhs, rhs Value) *Instruction {
	return b.emit(&Instruction{Op: OpFCmp, Ty: Bool, Pred: p, Ops: []Value{lhs, rhs}})
}

// Select builds a select between two values.
func (b *Builder) Select(cond, ifTrue, ifFalse Value) *Instruction {
	return b.emit(&Instruction{Op: OpSelect, Ty: ifTrue.Type(), Ops: []Value{cond, ifTrue, ifFalse}})
}

// Cast builds a conversion instruction of the given opcode to type ty.
func (b *Builder) Cast(op Opcode, v Value, ty *Type) *Instruction {
	return b.emit(&Instruction{Op: op, Ty: ty, Ops: []Value{v}})
}

// Br builds an unconditional branch to target.
func (b *Builder) Br(target *Block) *Instruction {
	return b.emit(&Instruction{Op: OpBr, Ty: Void, Succs: []*Block{target}})
}

// CondBr builds a conditional branch.
func (b *Builder) CondBr(cond Value, then, els *Block) *Instruction {
	return b.emit(&Instruction{Op: OpBr, Ty: Void, Ops: []Value{cond}, Succs: []*Block{then, els}})
}

// Ret builds a return; v may be nil for void returns.
func (b *Builder) Ret(v Value) *Instruction {
	in := &Instruction{Op: OpRet, Ty: Void}
	if v != nil {
		in.Ops = []Value{v}
	}
	return b.emit(in)
}

// Phi builds an empty phi of type ty; incoming edges are added with
// AddIncoming. Phis must precede non-phi instructions in their block; the
// builder inserts them at the phi position.
func (b *Builder) Phi(ty *Type, name string) *Instruction {
	in := &Instruction{Op: OpPhi, Ty: ty, Ident: name}
	if in.Ident == "" {
		in.Ident = b.Func.uniqueName("phi")
	}
	// Insert after existing phis, before any other instruction.
	pos := 0
	for pos < len(b.Cur.Instrs) && b.Cur.Instrs[pos].Op == OpPhi {
		pos++
	}
	in.Block = b.Cur
	b.Cur.Instrs = append(b.Cur.Instrs, nil)
	copy(b.Cur.Instrs[pos+1:], b.Cur.Instrs[pos:])
	b.Cur.Instrs[pos] = in
	for i := pos; i < len(b.Cur.Instrs); i++ {
		b.Cur.Instrs[i].index = i
	}
	return in
}

// AddIncoming appends an incoming (value, predecessor) pair to a phi.
func AddIncoming(phi *Instruction, v Value, pred *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Ops = append(phi.Ops, v)
	phi.Incoming = append(phi.Incoming, pred)
}

// Call builds a call to callee with the given result type and arguments.
func (b *Builder) Call(callee Value, ret *Type, args ...Value) *Instruction {
	ops := append([]Value{callee}, args...)
	return b.emit(&Instruction{Op: OpCall, Ty: ret, Ops: ops})
}

// MathOp builds one of the math intrinsics (sqrt, exp, ...).
func (b *Builder) MathOp(op Opcode, args ...Value) *Instruction {
	return b.emit(&Instruction{Op: op, Ty: args[0].Type(), Ops: args})
}
