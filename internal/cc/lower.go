package cc

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// BaseBool is the internal type of comparison results (LLVM i1). It is not
// spellable in source; conversions to arithmetic types insert zext.
const BaseBool BaseKind = 99

var ctypeBool = CType{Base: BaseBool}

// irScalar maps a scalar base kind to its IR type.
func irScalar(b BaseKind) *ir.Type {
	switch b {
	case BaseVoid:
		return ir.Void
	case BaseBool:
		return ir.Bool
	case BaseInt:
		return ir.Int32
	case BaseLong:
		return ir.Int64
	case BaseFloat:
		return ir.Float
	case BaseDouble:
		return ir.Double
	}
	panic(fmt.Sprintf("cc: no IR type for base %d", b))
}

// irType maps a frontend type to its IR type. Arrays decay to a pointer to
// the (flattened) element type; multi-level pointers nest.
func irType(t CType) *ir.Type {
	out := irScalar(t.Base)
	for i := 0; i < t.PtrDepth; i++ {
		out = ir.PointerTo(out)
	}
	if len(t.Dims) > 0 {
		out = ir.PointerTo(out)
	}
	return out
}

// slot is a named storage location (an alloca) with its frontend type.
type slot struct {
	ty CType
	// ptr is the alloca holding the value. For local arrays ptr is the
	// array storage itself rather than a cell holding a pointer.
	ptr      ir.Value
	isStorge bool // true when ptr IS the array storage (local arrays)
}

type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type lowerer struct {
	mod   *ir.Module
	fns   map[string]*ir.Function
	decls map[string]*FuncDecl

	fn     *ir.Function
	b      *ir.Builder
	scopes []map[string]*slot
	loops  []loopCtx
	// terminated marks that the current block already ends in a terminator.
	terminated bool
}

// Compile parses and lowers a translation unit into an SSA-form module.
func Compile(name, src string) (*ir.Module, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFile(name, file)
}

// CompileFile lowers an already-parsed file.
func CompileFile(name string, file *File) (*ir.Module, error) {
	mod := ir.NewModule(name)
	lw := &lowerer{mod: mod, fns: map[string]*ir.Function{}, decls: map[string]*FuncDecl{}}

	// First pass: declare all functions so calls can reference them.
	for _, fd := range file.Funcs {
		var args []*ir.Argument
		for _, p := range fd.Params {
			args = append(args, ir.Arg(p.Name, irType(p.Ty)))
		}
		fn := ir.NewFunction(fd.Name, irScalar(fd.Ret.Base), args...)
		mod.AddFunction(fn)
		lw.fns[fd.Name] = fn
		lw.decls[fd.Name] = fd
	}

	for _, fd := range file.Funcs {
		if err := lw.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	for _, fn := range mod.Functions {
		removeUnreachable(fn)
		PromoteMemToReg(fn)
		ir.EliminateDeadCode(fn)
		if err := ir.Verify(fn); err != nil {
			return nil, fmt.Errorf("cc: internal error lowering %s: %w", fn.Ident, err)
		}
	}
	return mod, nil
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]*slot{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) lookup(name string) *slot {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if s, ok := lw.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (lw *lowerer) define(name string, s *slot) error {
	top := lw.scopes[len(lw.scopes)-1]
	if _, exists := top[name]; exists {
		return lw.errf("redeclaration of %s", name)
	}
	top[name] = s
	return nil
}

func (lw *lowerer) errf(format string, args ...any) error {
	return fmt.Errorf("cc: %s: %s", lw.fn.Ident, fmt.Sprintf(format, args...))
}

func (lw *lowerer) lowerFunc(fd *FuncDecl) error {
	fn := lw.fns[fd.Name]
	lw.fn = fn
	lw.b = ir.NewBuilder(fn)
	lw.scopes = nil
	lw.pushScope()
	defer lw.popScope()
	lw.terminated = false

	// Spill every parameter into an alloca; mem2reg re-promotes scalars and
	// pointers, producing clean SSA.
	for i, p := range fd.Params {
		al := lw.b.Alloca(irType(p.Ty), 1, p.Name+".addr")
		lw.b.Store(fn.Args[i], al)
		if err := lw.define(p.Name, &slot{ty: p.Ty, ptr: al}); err != nil {
			return err
		}
	}
	if err := lw.stmt(fd.Body, fd); err != nil {
		return err
	}
	if !lw.terminated {
		lw.emitDefaultReturn(fd)
	}
	// Terminate any dangling blocks created after returns.
	for _, blk := range fn.Blocks {
		if blk.Terminator() == nil {
			lw.b.SetBlock(blk)
			lw.terminated = false
			lw.emitDefaultReturn(fd)
		}
	}
	return nil
}

func (lw *lowerer) emitDefaultReturn(fd *FuncDecl) {
	if fd.Ret.Base == BaseVoid {
		lw.b.Ret(nil)
	} else if irScalar(fd.Ret.Base).IsFloat() {
		lw.b.Ret(ir.ConstFloat(irScalar(fd.Ret.Base), 0))
	} else {
		lw.b.Ret(ir.ConstInt(irScalar(fd.Ret.Base), 0))
	}
	lw.terminated = true
}

// startBlock repositions the builder and clears the terminated flag.
func (lw *lowerer) startBlock(b *ir.Block) {
	lw.b.SetBlock(b)
	lw.terminated = false
}

func flatCount(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

func (lw *lowerer) stmt(s Stmt, fd *FuncDecl) error {
	if lw.terminated {
		// Code after return/break: emit into a fresh unreachable block so
		// lowering stays simple; removeUnreachable cleans it up.
		lw.startBlock(lw.fn.NewBlock("dead"))
	}
	switch st := s.(type) {
	case *Block:
		lw.pushScope()
		defer lw.popScope()
		for _, inner := range st.Stmts {
			if err := lw.stmt(inner, fd); err != nil {
				return err
			}
		}
		return nil

	case *VarDecl:
		elemTy := irScalar(st.Ty.Base)
		if len(st.Ty.Dims) > 0 {
			al := lw.b.Alloca(elemTy, flatCount(st.Ty.Dims), st.Name)
			if err := lw.define(st.Name, &slot{ty: st.Ty, ptr: al, isStorge: true}); err != nil {
				return err
			}
			if st.Init != nil {
				return lw.errf("array initializers are not supported")
			}
			return nil
		}
		al := lw.b.Alloca(irType(st.Ty), 1, st.Name+".addr")
		if err := lw.define(st.Name, &slot{ty: st.Ty, ptr: al}); err != nil {
			return err
		}
		if st.Init != nil {
			v, vt, err := lw.expr(st.Init)
			if err != nil {
				return err
			}
			cv, err := lw.convert(v, vt, st.Ty)
			if err != nil {
				return err
			}
			lw.b.Store(cv, al)
		}
		return nil

	case *Assign:
		addr, lt, err := lw.addr(st.LHS)
		if err != nil {
			return err
		}
		rhs, rt, err := lw.expr(st.RHS)
		if err != nil {
			return err
		}
		if st.Op != "=" {
			old := lw.b.Load(addr)
			opch := strings.TrimSuffix(st.Op, "=")
			nv, nt, err := lw.binArith(opch, old, lt, rhs, rt)
			if err != nil {
				return err
			}
			rhs, rt = nv, nt
		}
		cv, err := lw.convert(rhs, rt, lt)
		if err != nil {
			return err
		}
		lw.b.Store(cv, addr)
		return nil

	case *IncDec:
		addr, lt, err := lw.addr(st.LHS)
		if err != nil {
			return err
		}
		old := lw.b.Load(addr)
		var nv ir.Value
		if lt.IsFloat() {
			one := ir.ConstFloat(irScalar(lt.Base), 1)
			if st.Dec {
				nv = lw.b.FSub(old, one)
			} else {
				nv = lw.b.FAdd(old, one)
			}
		} else {
			one := ir.ConstInt(irScalar(lt.Base), 1)
			if st.Dec {
				nv = lw.b.Sub(old, one)
			} else {
				nv = lw.b.Add(old, one)
			}
		}
		lw.b.Store(nv, addr)
		return nil

	case *ExprStmt:
		_, _, err := lw.expr(st.X)
		return err

	case *Return:
		if st.X == nil {
			lw.b.Ret(nil)
			lw.terminated = true
			return nil
		}
		v, vt, err := lw.expr(st.X)
		if err != nil {
			return err
		}
		cv, err := lw.convert(v, vt, fd.Ret)
		if err != nil {
			return err
		}
		lw.b.Ret(cv)
		lw.terminated = true
		return nil

	case *If:
		cond, err := lw.cond(st.Cond)
		if err != nil {
			return err
		}
		thenB := lw.fn.NewBlock("if.then")
		var elseB *ir.Block
		mergeB := lw.fn.NewBlock("if.end")
		if st.Else != nil {
			elseB = lw.fn.NewBlock("if.else")
			lw.b.CondBr(cond, thenB, elseB)
		} else {
			lw.b.CondBr(cond, thenB, mergeB)
		}
		lw.startBlock(thenB)
		if err := lw.stmt(st.Then, fd); err != nil {
			return err
		}
		if !lw.terminated {
			lw.b.Br(mergeB)
		}
		if st.Else != nil {
			lw.startBlock(elseB)
			if err := lw.stmt(st.Else, fd); err != nil {
				return err
			}
			if !lw.terminated {
				lw.b.Br(mergeB)
			}
		}
		lw.startBlock(mergeB)
		return nil

	case *For:
		lw.pushScope()
		defer lw.popScope()
		if st.Init != nil {
			if err := lw.stmt(st.Init, fd); err != nil {
				return err
			}
		}
		header := lw.fn.NewBlock("for.cond")
		body := lw.fn.NewBlock("for.body")
		latch := lw.fn.NewBlock("for.inc")
		exit := lw.fn.NewBlock("for.end")
		lw.b.Br(header)

		lw.startBlock(header)
		if st.Cond != nil {
			cond, err := lw.cond(st.Cond)
			if err != nil {
				return err
			}
			lw.b.CondBr(cond, body, exit)
		} else {
			lw.b.Br(body)
		}

		lw.loops = append(lw.loops, loopCtx{breakTo: exit, continueTo: latch})
		lw.startBlock(body)
		if err := lw.stmt(st.Body, fd); err != nil {
			return err
		}
		if !lw.terminated {
			lw.b.Br(latch)
		}
		lw.loops = lw.loops[:len(lw.loops)-1]

		lw.startBlock(latch)
		if st.Post != nil {
			if err := lw.stmt(st.Post, fd); err != nil {
				return err
			}
		}
		lw.b.Br(header)
		lw.startBlock(exit)
		return nil

	case *While:
		header := lw.fn.NewBlock("while.cond")
		body := lw.fn.NewBlock("while.body")
		exit := lw.fn.NewBlock("while.end")
		lw.b.Br(header)

		lw.startBlock(header)
		cond, err := lw.cond(st.Cond)
		if err != nil {
			return err
		}
		lw.b.CondBr(cond, body, exit)

		lw.loops = append(lw.loops, loopCtx{breakTo: exit, continueTo: header})
		lw.startBlock(body)
		if err := lw.stmt(st.Body, fd); err != nil {
			return err
		}
		if !lw.terminated {
			lw.b.Br(header)
		}
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.startBlock(exit)
		return nil

	case *BreakStmt:
		if len(lw.loops) == 0 {
			return lw.errf("break outside loop")
		}
		lw.b.Br(lw.loops[len(lw.loops)-1].breakTo)
		lw.terminated = true
		return nil

	case *ContinueStmt:
		if len(lw.loops) == 0 {
			return lw.errf("continue outside loop")
		}
		lw.b.Br(lw.loops[len(lw.loops)-1].continueTo)
		lw.terminated = true
		return nil
	}
	return lw.errf("unhandled statement %T", s)
}

// addr lowers an lvalue expression to an address and its element type.
func (lw *lowerer) addr(e Expr) (ir.Value, CType, error) {
	switch x := e.(type) {
	case *Ident:
		sl := lw.lookup(x.Name)
		if sl == nil {
			return nil, CType{}, lw.errf("undefined variable %s at %d:%d", x.Name, x.Line, x.Col)
		}
		if sl.ty.IsPointerLike() && sl.isStorge {
			return nil, CType{}, lw.errf("cannot assign to array %s", x.Name)
		}
		return sl.ptr, sl.ty, nil
	case *Index:
		return lw.indexAddr(x)
	}
	return nil, CType{}, lw.errf("expression is not assignable")
}

// indexAddr lowers (possibly nested) array subscripts to an element address.
func (lw *lowerer) indexAddr(x *Index) (ir.Value, CType, error) {
	// Collect the chain of indices, innermost base first.
	var idxs []Expr
	base := Expr(x)
	for {
		ix, ok := base.(*Index)
		if !ok {
			break
		}
		idxs = append([]Expr{ix.Idx}, idxs...)
		base = ix.Base
	}

	bv, bt, err := lw.expr(base)
	if err != nil {
		return nil, CType{}, err
	}

	k := 0
	for k < len(idxs) {
		switch {
		case len(bt.Dims) > 0:
			// Consume up to len(Dims) indices with flattened addressing.
			nd := len(bt.Dims)
			if len(idxs[k:]) < nd {
				return nil, CType{}, lw.errf("partial array indexing is not supported")
			}
			var flat ir.Value
			for d := 0; d < nd; d++ {
				iv, it, err := lw.expr(idxs[k+d])
				if err != nil {
					return nil, CType{}, err
				}
				iv64, err := lw.convert(iv, it, CType{Base: BaseLong})
				if err != nil {
					return nil, CType{}, err
				}
				if d == 0 {
					flat = iv64
				} else {
					flat = lw.b.Add(lw.b.Mul(flat, ir.ConstInt(ir.Int64, int64(bt.Dims[d]))), iv64)
				}
			}
			addr := lw.b.GEP(bv, flat)
			elem := CType{Base: bt.Base, PtrDepth: bt.PtrDepth}
			k += nd
			if k == len(idxs) {
				return addr, elem, nil
			}
			bv = lw.b.Load(addr)
			bt = elem
		case bt.PtrDepth > 0:
			iv, it, err := lw.expr(idxs[k])
			if err != nil {
				return nil, CType{}, err
			}
			iv64, err := lw.convert(iv, it, CType{Base: BaseLong})
			if err != nil {
				return nil, CType{}, err
			}
			addr := lw.b.GEP(bv, iv64)
			elem := bt.Elem()
			k++
			if k == len(idxs) {
				return addr, elem, nil
			}
			bv = lw.b.Load(addr)
			bt = elem
		default:
			return nil, CType{}, lw.errf("cannot index non-pointer type %s", bt)
		}
	}
	return nil, CType{}, lw.errf("empty index chain")
}

// expr lowers an rvalue expression, returning its value and frontend type.
func (lw *lowerer) expr(e Expr) (ir.Value, CType, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.Val > 1<<31-1 || x.Val < -(1<<31) {
			return ir.ConstInt(ir.Int64, x.Val), CType{Base: BaseLong}, nil
		}
		return ir.ConstInt(ir.Int32, x.Val), CType{Base: BaseInt}, nil

	case *FloatLit:
		if x.Single {
			return ir.ConstFloat(ir.Float, x.Val), CType{Base: BaseFloat}, nil
		}
		return ir.ConstFloat(ir.Double, x.Val), CType{Base: BaseDouble}, nil

	case *Ident:
		sl := lw.lookup(x.Name)
		if sl == nil {
			return nil, CType{}, lw.errf("undefined variable %s at %d:%d", x.Name, x.Line, x.Col)
		}
		if sl.isStorge {
			// Local array: the value is the storage pointer itself.
			return sl.ptr, sl.ty, nil
		}
		return lw.b.Load(sl.ptr), sl.ty, nil

	case *Index:
		addr, et, err := lw.indexAddr(x)
		if err != nil {
			return nil, CType{}, err
		}
		if et.IsPointerLike() && len(et.Dims) > 0 {
			return addr, et, nil
		}
		return lw.b.Load(addr), et, nil

	case *Unary:
		v, vt, err := lw.expr(x.X)
		if err != nil {
			return nil, CType{}, err
		}
		switch x.Op {
		case "-":
			if vt.IsFloat() {
				return lw.b.FSub(ir.ConstFloat(irScalar(vt.Base), 0), v), vt, nil
			}
			if vt.Base == BaseBool {
				var cerr error
				v, cerr = lw.convert(v, vt, CType{Base: BaseInt})
				if cerr != nil {
					return nil, CType{}, cerr
				}
				vt = CType{Base: BaseInt}
			}
			return lw.b.Sub(ir.ConstInt(irScalar(vt.Base), 0), v), vt, nil
		case "!":
			c, err := lw.toBool(v, vt)
			if err != nil {
				return nil, CType{}, err
			}
			cmp := lw.b.ICmp(ir.PredEQ, c, ir.ConstInt(ir.Bool, 0))
			return cmp, ctypeBool, nil
		}
		return nil, CType{}, lw.errf("unhandled unary %s", x.Op)

	case *Binary:
		return lw.binary(x)

	case *Call:
		return lw.call(x)
	}
	return nil, CType{}, lw.errf("unhandled expression %T", e)
}

func (lw *lowerer) binary(x *Binary) (ir.Value, CType, error) {
	switch x.Op {
	case "&&", "||":
		lv, lt, err := lw.expr(x.L)
		if err != nil {
			return nil, CType{}, err
		}
		lb, err := lw.toBool(lv, lt)
		if err != nil {
			return nil, CType{}, err
		}
		rv, rt, err := lw.expr(x.R)
		if err != nil {
			return nil, CType{}, err
		}
		rb, err := lw.toBool(rv, rt)
		if err != nil {
			return nil, CType{}, err
		}
		if x.Op == "&&" {
			return lw.b.Select(lb, rb, ir.ConstInt(ir.Bool, 0)), ctypeBool, nil
		}
		return lw.b.Select(lb, ir.ConstInt(ir.Bool, 1), rb), ctypeBool, nil
	}

	lv, lt, err := lw.expr(x.L)
	if err != nil {
		return nil, CType{}, err
	}
	rv, rt, err := lw.expr(x.R)
	if err != nil {
		return nil, CType{}, err
	}
	switch x.Op {
	case "==", "!=", "<", "<=", ">", ">=":
		return lw.compare(x.Op, lv, lt, rv, rt)
	default:
		return lw.binArith(x.Op, lv, lt, rv, rt)
	}
}

// usualConv computes the C "usual arithmetic conversions" target type.
func usualConv(a, b CType) CType {
	rank := func(t CType) int {
		switch t.Base {
		case BaseDouble:
			return 5
		case BaseFloat:
			return 4
		case BaseLong:
			return 3
		case BaseInt:
			return 2
		case BaseBool:
			return 1
		}
		return 0
	}
	if rank(a) >= rank(b) {
		if a.Base == BaseBool {
			return CType{Base: BaseInt}
		}
		return CType{Base: a.Base}
	}
	if b.Base == BaseBool {
		return CType{Base: BaseInt}
	}
	return CType{Base: b.Base}
}

// binArith lowers + - * / %. Pointer arithmetic p + i is supported for
// pointer-typed operands.
func (lw *lowerer) binArith(op string, lv ir.Value, lt CType, rv ir.Value, rt CType) (ir.Value, CType, error) {
	if lt.IsPointerLike() && (op == "+" || op == "-") && rt.IsArith() {
		idx, err := lw.convert(rv, rt, CType{Base: BaseLong})
		if err != nil {
			return nil, CType{}, err
		}
		if op == "-" {
			idx = lw.b.Sub(ir.ConstInt(ir.Int64, 0), idx)
		}
		return lw.b.GEP(lv, idx), lt, nil
	}
	if !lt.IsArith() && lt.Base != BaseBool || !rt.IsArith() && rt.Base != BaseBool {
		return nil, CType{}, lw.errf("invalid operands to %s (%s, %s)", op, lt, rt)
	}
	ct := usualConv(lt, rt)
	clv, err := lw.convert(lv, lt, ct)
	if err != nil {
		return nil, CType{}, err
	}
	crv, err := lw.convert(rv, rt, ct)
	if err != nil {
		return nil, CType{}, err
	}
	isF := ct.IsFloat()
	switch op {
	case "+":
		if isF {
			return lw.b.FAdd(clv, crv), ct, nil
		}
		return lw.b.Add(clv, crv), ct, nil
	case "-":
		if isF {
			return lw.b.FSub(clv, crv), ct, nil
		}
		return lw.b.Sub(clv, crv), ct, nil
	case "*":
		if isF {
			return lw.b.FMul(clv, crv), ct, nil
		}
		return lw.b.Mul(clv, crv), ct, nil
	case "/":
		if isF {
			return lw.b.FDiv(clv, crv), ct, nil
		}
		return lw.b.SDiv(clv, crv), ct, nil
	case "%":
		if isF {
			return nil, CType{}, lw.errf("%% requires integer operands")
		}
		return lw.b.SRem(clv, crv), ct, nil
	}
	return nil, CType{}, lw.errf("unhandled operator %s", op)
}

var cmpPreds = map[string]ir.Predicate{
	"==": ir.PredEQ, "!=": ir.PredNE, "<": ir.PredLT, "<=": ir.PredLE, ">": ir.PredGT, ">=": ir.PredGE,
}

func (lw *lowerer) compare(op string, lv ir.Value, lt CType, rv ir.Value, rt CType) (ir.Value, CType, error) {
	if lt.IsPointerLike() && rt.IsPointerLike() {
		return lw.b.ICmp(cmpPreds[op], lv, rv), ctypeBool, nil
	}
	ct := usualConv(lt, rt)
	clv, err := lw.convert(lv, lt, ct)
	if err != nil {
		return nil, CType{}, err
	}
	crv, err := lw.convert(rv, rt, ct)
	if err != nil {
		return nil, CType{}, err
	}
	if ct.IsFloat() {
		return lw.b.FCmp(cmpPreds[op], clv, crv), ctypeBool, nil
	}
	return lw.b.ICmp(cmpPreds[op], clv, crv), ctypeBool, nil
}

// cond lowers an expression in boolean context to an i1 value.
func (lw *lowerer) cond(e Expr) (ir.Value, error) {
	v, vt, err := lw.expr(e)
	if err != nil {
		return nil, err
	}
	return lw.toBool(v, vt)
}

func (lw *lowerer) toBool(v ir.Value, vt CType) (ir.Value, error) {
	switch {
	case vt.Base == BaseBool:
		return v, nil
	case vt.IsFloat():
		return lw.b.FCmp(ir.PredNE, v, ir.ConstFloat(irScalar(vt.Base), 0)), nil
	case vt.IsInteger():
		return lw.b.ICmp(ir.PredNE, v, ir.ConstInt(irScalar(vt.Base), 0)), nil
	case vt.IsPointerLike():
		return lw.b.ICmp(ir.PredNE, v, ir.ConstNull(irType(vt))), nil
	}
	return nil, lw.errf("expression of type %s is not a condition", vt)
}

// convert inserts the conversion from type `from` to type `to`.
func (lw *lowerer) convert(v ir.Value, from, to CType) (ir.Value, error) {
	if from.Base == to.Base && from.PtrDepth == to.PtrDepth && len(from.Dims) == len(to.Dims) {
		return v, nil
	}
	if from.IsPointerLike() && to.IsPointerLike() {
		return v, nil // pointer conversions are free in this IR
	}
	// Constant folding keeps literals readable in the IR.
	if c, ok := v.(*ir.Const); ok {
		return foldConst(c, to)
	}
	fb, tb := from.Base, to.Base
	switch {
	case fb == BaseBool && (tb == BaseInt || tb == BaseLong):
		return lw.b.Cast(ir.OpZExt, v, irScalar(tb)), nil
	case fb == BaseBool && (tb == BaseFloat || tb == BaseDouble):
		i := lw.b.Cast(ir.OpZExt, v, ir.Int32)
		return lw.b.Cast(ir.OpSIToFP, i, irScalar(tb)), nil
	case fb == BaseInt && tb == BaseLong:
		return lw.b.Cast(ir.OpSExt, v, ir.Int64), nil
	case fb == BaseLong && tb == BaseInt:
		return lw.b.Cast(ir.OpTrunc, v, ir.Int32), nil
	case (fb == BaseInt || fb == BaseLong) && (tb == BaseFloat || tb == BaseDouble):
		return lw.b.Cast(ir.OpSIToFP, v, irScalar(tb)), nil
	case (fb == BaseFloat || fb == BaseDouble) && (tb == BaseInt || tb == BaseLong):
		return lw.b.Cast(ir.OpFPToSI, v, irScalar(tb)), nil
	case fb == BaseFloat && tb == BaseDouble:
		return lw.b.Cast(ir.OpFPExt, v, ir.Double), nil
	case fb == BaseDouble && tb == BaseFloat:
		return lw.b.Cast(ir.OpFPTrunc, v, ir.Float), nil
	}
	return nil, lw.errf("cannot convert %s to %s", from, to)
}

func foldConst(c *ir.Const, to CType) (ir.Value, error) {
	t := irScalar(to.Base)
	switch {
	case c.Ty.IsInteger() && t.IsInteger():
		return ir.ConstInt(t, c.IntVal), nil
	case c.Ty.IsInteger() && t.IsFloat():
		return ir.ConstFloat(t, float64(c.IntVal)), nil
	case c.Ty.IsFloat() && t.IsFloat():
		return ir.ConstFloat(t, c.FloatVal), nil
	case c.Ty.IsFloat() && t.IsInteger():
		return ir.ConstInt(t, int64(c.FloatVal)), nil
	}
	return c, nil
}

// mathBuiltins maps C math function names to IR opcodes.
var mathBuiltins = map[string]ir.Opcode{
	"sqrt": ir.OpSqrt, "sqrtf": ir.OpSqrt,
	"fabs": ir.OpFAbs, "fabsf": ir.OpFAbs,
	"exp": ir.OpExp, "expf": ir.OpExp,
	"log": ir.OpLog, "logf": ir.OpLog,
	"sin": ir.OpSin, "sinf": ir.OpSin,
	"cos": ir.OpCos, "cosf": ir.OpCos,
	"pow": ir.OpPow, "powf": ir.OpPow,
	"floor": ir.OpFloor, "floorf": ir.OpFloor,
}

func (lw *lowerer) call(x *Call) (ir.Value, CType, error) {
	if strings.HasPrefix(x.Name, "__cast_") {
		tyStr := strings.TrimPrefix(x.Name, "__cast_")
		to, err := parseTypeString(tyStr)
		if err != nil {
			return nil, CType{}, lw.errf("bad cast: %v", err)
		}
		v, vt, err := lw.expr(x.Args[0])
		if err != nil {
			return nil, CType{}, err
		}
		cv, err := lw.convert(v, vt, to)
		return cv, to, err
	}

	if op, ok := mathBuiltins[x.Name]; ok {
		single := strings.HasSuffix(x.Name, "f")
		want := CType{Base: BaseDouble}
		if single {
			want = CType{Base: BaseFloat}
		}
		var args []ir.Value
		for _, ae := range x.Args {
			v, vt, err := lw.expr(ae)
			if err != nil {
				return nil, CType{}, err
			}
			cv, err := lw.convert(v, vt, want)
			if err != nil {
				return nil, CType{}, err
			}
			args = append(args, cv)
		}
		return lw.b.MathOp(op, args...), want, nil
	}

	callee, ok := lw.fns[x.Name]
	if !ok {
		return nil, CType{}, lw.errf("call to undefined function %s", x.Name)
	}
	decl := lw.decls[x.Name]
	if len(x.Args) != len(decl.Params) {
		return nil, CType{}, lw.errf("%s expects %d arguments, got %d", x.Name, len(decl.Params), len(x.Args))
	}
	var args []ir.Value
	for i, ae := range x.Args {
		v, vt, err := lw.expr(ae)
		if err != nil {
			return nil, CType{}, err
		}
		cv, err := lw.convert(v, vt, decl.Params[i].Ty)
		if err != nil {
			return nil, CType{}, err
		}
		args = append(args, cv)
	}
	ret := lw.b.Call(callee, irScalar(decl.Ret.Base), args...)
	return ret, decl.Ret, nil
}

// parseTypeString parses type syntax used by cast pseudo-calls.
func parseTypeString(s string) (CType, error) {
	base := strings.TrimRight(s, "*")
	depth := len(s) - len(base)
	var b BaseKind
	switch base {
	case "int":
		b = BaseInt
	case "long":
		b = BaseLong
	case "float":
		b = BaseFloat
	case "double":
		b = BaseDouble
	case "void":
		b = BaseVoid
	default:
		return CType{}, fmt.Errorf("unknown type %q", s)
	}
	return CType{Base: b, PtrDepth: depth}, nil
}

// removeUnreachable deletes blocks with no path from the entry block.
func removeUnreachable(fn *ir.Function) {
	if len(fn.Blocks) == 0 {
		return
	}
	reachable := map[*ir.Block]bool{fn.Entry(): true}
	stack := []*ir.Block{fn.Entry()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t := b.Terminator(); t != nil {
			for _, s := range t.Succs {
				if !reachable[s] {
					reachable[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	var kept []*ir.Block
	for _, b := range fn.Blocks {
		if reachable[b] {
			kept = append(kept, b)
		}
	}
	fn.Blocks = kept
}
