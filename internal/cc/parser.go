package cc

import "fmt"

// parser is a recursive descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	file := &File{}
	for !p.at(tokEOF) {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		file.Funcs = append(file.Funcs, fn)
	}
	return file, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) atKeyword(s string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errorf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// atType reports whether the current token starts a type.
func (p *parser) atType() bool {
	if p.cur().kind != tokKeyword {
		return false
	}
	switch p.cur().text {
	case "void", "int", "long", "float", "double", "const":
		return true
	}
	return false
}

// parseType parses a base type with pointer stars: "double**".
func (p *parser) parseType() (CType, error) {
	if p.atKeyword("const") {
		p.pos++ // const is accepted and ignored
	}
	if p.cur().kind != tokKeyword {
		return CType{}, p.errorf("expected type, found %s", p.cur())
	}
	var base BaseKind
	switch p.cur().text {
	case "void":
		base = BaseVoid
	case "int":
		base = BaseInt
	case "long":
		base = BaseLong
	case "float":
		base = BaseFloat
	case "double":
		base = BaseDouble
	default:
		return CType{}, p.errorf("expected type, found %s", p.cur())
	}
	p.pos++
	ty := CType{Base: base}
	for p.acceptPunct("*") {
		ty.PtrDepth++
	}
	return ty, nil
}

// parseDims parses trailing array dimensions "[10][20]".
func (p *parser) parseDims(ty CType) (CType, error) {
	for p.atPunct("[") {
		p.pos++
		if !p.at(tokIntLit) {
			return ty, p.errorf("array dimension must be an integer literal")
		}
		ty.Dims = append(ty.Dims, int(p.next().intVal))
		if err := p.expectPunct("]"); err != nil {
			return ty, err
		}
	}
	return ty, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if !p.at(tokIdent) {
		return nil, p.errorf("expected function name, found %s", p.cur())
	}
	name := p.next().text
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name, Ret: ret}
	for !p.atPunct(")") {
		if len(fn.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if !p.at(tokIdent) {
			return nil, p.errorf("expected parameter name, found %s", p.cur())
		}
		pname := p.next().text
		pt, err = p.parseDims(pt)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Name: pname, Ty: pt})
	}
	p.pos++ // ')'
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.atPunct("}") {
		if p.at(tokEOF) {
			return nil, p.errorf("unexpected end of input in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // '}'
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.atPunct("{"):
		return p.block()
	case p.atKeyword("if"):
		return p.ifStmt()
	case p.atKeyword("for"):
		return p.forStmt()
	case p.atKeyword("while"):
		return p.whileStmt()
	case p.atKeyword("return"):
		p.pos++
		r := &Return{}
		if !p.atPunct(";") {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		return r, p.expectPunct(";")
	case p.atKeyword("break"):
		p.pos++
		return &BreakStmt{}, p.expectPunct(";")
	case p.atKeyword("continue"):
		p.pos++
		return &ContinueStmt{}, p.expectPunct(";")
	case p.atType():
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return d, p.expectPunct(";")
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expectPunct(";")
	}
}

func (p *parser) varDecl() (Stmt, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if !p.at(tokIdent) {
		return nil, p.errorf("expected variable name, found %s", p.cur())
	}
	name := p.next().text
	ty, err = p.parseDims(ty)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name, Ty: ty}
	if p.acceptPunct("=") {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = x
	}
	return d, nil
}

// simpleStmt parses assignments, inc/dec and expression statements.
func (p *parser) simpleStmt() (Stmt, error) {
	if p.atPunct("++") || p.atPunct("--") {
		dec := p.next().text == "--"
		lhs, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &IncDec{LHS: lhs, Dec: dec}, nil
	}
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.atPunct("=") || p.atPunct("+=") || p.atPunct("-=") || p.atPunct("*=") || p.atPunct("/="):
		op := p.next().text
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Assign{LHS: lhs, Op: op, RHS: rhs}, nil
	case p.atPunct("++"):
		p.pos++
		return &IncDec{LHS: lhs}, nil
	case p.atPunct("--"):
		p.pos++
		return &IncDec{LHS: lhs, Dec: true}, nil
	default:
		return &ExprStmt{X: lhs}, nil
	}
}

func (p *parser) ifStmt() (Stmt, error) {
	p.pos++ // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	out := &If{Cond: cond, Then: then}
	if p.atKeyword("else") {
		p.pos++
		els, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out.Else = els
	}
	return out, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.pos++ // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	out := &For{}
	if !p.atPunct(";") {
		var err error
		if p.atType() {
			out.Init, err = p.varDecl()
		} else {
			out.Init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		out.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		out.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	out.Body = body
	return out, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	p.pos++ // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body}, nil
}

// --- expression precedence climbing ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("||") {
		p.pos++
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("&&") {
		p.pos++
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("==") || p.atPunct("!=") || p.atPunct("<") || p.atPunct("<=") || p.atPunct(">") || p.atPunct(">=") {
		op := p.next().text
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || p.atPunct("/") || p.atPunct("%") {
		op := p.next().text
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.atPunct("-") || p.atPunct("!") {
		op := p.next().text
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	}
	if p.atPunct("(") {
		// Could be a cast "(double) expr" or a parenthesised expression.
		save := p.pos
		p.pos++
		if p.atType() {
			ty, err := p.parseType()
			if err == nil && p.atPunct(")") {
				p.pos++
				x, err := p.unary()
				if err != nil {
					return nil, err
				}
				// Represent an explicit cast as a call to a pseudo builtin.
				return &Call{Name: "__cast_" + ty.String(), Args: []Expr{x}}, nil
			}
		}
		p.pos = save
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("["):
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{Base: x, Idx: idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.at(tokIntLit):
		t := p.next()
		return &IntLit{Val: t.intVal}, nil
	case p.at(tokFloatLit):
		t := p.next()
		return &FloatLit{Val: t.floatVal, Single: t.isFloat32}, nil
	case p.at(tokIdent):
		t := p.next()
		if p.atPunct("(") {
			p.pos++
			call := &Call{Name: t.text}
			for !p.atPunct(")") {
				if len(call.Args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.pos++ // ')'
			return call, nil
		}
		return &Ident{Name: t.text, Line: t.line, Col: t.col}, nil
	case p.atPunct("("):
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return x, p.expectPunct(")")
	default:
		return nil, p.errorf("unexpected token %s in expression", p.cur())
	}
}
