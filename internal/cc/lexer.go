package cc

import "strconv"

// lexer converts source text into tokens. It supports // and /* */ comments.
type lexer struct {
	src       string
	pos       int
	line, col int
	toks      []token
}

// lex scans the entire input and returns the token stream.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Line: l.line, Col: l.col, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-character punctuation, longest first.
var punct2 = []string{"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "++", "--"}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	start := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		start.kind = tokEOF
		return start, nil
	}
	c := l.peekByte()

	if isIdentStart(c) {
		begin := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		start.text = l.src[begin:l.pos]
		if keywords[start.text] {
			start.kind = tokKeyword
		} else {
			start.kind = tokIdent
		}
		return start, nil
	}

	if isDigit(c) || c == '.' && isDigit(l.peekByte2()) {
		begin := l.pos
		isFloat := false
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		if l.pos < len(l.src) && l.peekByte() == '.' {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		if l.pos < len(l.src) && (l.peekByte() == 'e' || l.peekByte() == 'E') {
			isFloat = true
			l.advance()
			if l.pos < len(l.src) && (l.peekByte() == '+' || l.peekByte() == '-') {
				l.advance()
			}
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		text := l.src[begin:l.pos]
		if l.pos < len(l.src) && (l.peekByte() == 'f' || l.peekByte() == 'F') {
			l.advance()
			isFloat = true
			start.isFloat32 = true
		}
		start.text = text
		if isFloat {
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return token{}, &Error{Line: start.line, Col: start.col, Msg: "bad float literal " + text}
			}
			start.kind = tokFloatLit
			start.floatVal = v
		} else {
			v, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return token{}, &Error{Line: start.line, Col: start.col, Msg: "bad int literal " + text}
			}
			start.kind = tokIntLit
			start.intVal = v
		}
		return start, nil
	}

	// punctuation
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		for _, p := range punct2 {
			if two == p {
				l.advance()
				l.advance()
				start.kind = tokPunct
				start.text = p
				return start, nil
			}
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', '!', '(', ')', '{', '}', '[', ']', ';', ',', '&':
		l.advance()
		start.kind = tokPunct
		start.text = string(c)
		return start, nil
	}
	return token{}, &Error{Line: l.line, Col: l.col, Msg: "unexpected character " + strconv.QuoteRune(rune(c))}
}
