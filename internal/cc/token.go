// Package cc implements a small C frontend: lexer, parser and a lowering
// pass that produces SSA form in the repro/internal/ir representation. It
// stands in for clang in the paper's pipeline — the supported subset covers
// the sequential compute kernels of the NAS and Parboil benchmarks: typed
// functions, scalars, pointers, fixed-size multi-dimensional arrays,
// for/while/if control flow and arithmetic with the usual C promotions.
package cc

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokIntLit
	tokFloatLit
	tokPunct   // operators and punctuation
	tokKeyword // reserved words
)

// token is a single lexical token with its source position.
type token struct {
	kind tokKind
	text string
	// intVal/floatVal are set for literals. isFloat32 marks a 1.0f literal.
	intVal    int64
	floatVal  float64
	isFloat32 bool
	line, col int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"void": true, "int": true, "long": true, "float": true, "double": true,
	"if": true, "else": true, "for": true, "while": true, "return": true,
	"break": true, "continue": true, "const": true,
}

// Error is a frontend diagnostic with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}
