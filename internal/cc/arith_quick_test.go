package cc

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/interp"
)

// Property-based frontend checks: for randomly drawn operands, a compiled
// arithmetic function must agree with Go's own arithmetic. This exercises
// lexing, parsing, type conversion, SSA construction and the interpreter
// end to end.

func runInt(t *testing.T, src, fn string, args ...int64) int64 {
	t.Helper()
	mod, err := Compile("quick", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := interp.NewMachine(mod)
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.IntValue(a)
	}
	out, err := m.Exec(mod.FunctionByName(fn), vals...)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return out.Int()
}

func TestQuickIntArithmetic(t *testing.T) {
	const src = `
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }
int div(int a, int b) { return a / b; }
int rem(int a, int b) { return a % b; }`
	mod, err := Compile("quick", src)
	if err != nil {
		t.Fatal(err)
	}
	check := func(fn string, golden func(a, b int32) int64) func(a, b int32) bool {
		return func(a, b int32) bool {
			if (fn == "div" || fn == "rem") && b == 0 {
				return true
			}
			if (fn == "div" || fn == "rem") && a == -2147483648 && b == -1 {
				return true // UB in C; skip
			}
			m := interp.NewMachine(mod)
			out, err := m.Exec(mod.FunctionByName(fn),
				interp.IntValue(int64(a)), interp.IntValue(int64(b)))
			if err != nil {
				t.Fatalf("%s: %v", fn, err)
			}
			return int32(out.Int()) == int32(golden(a, b))
		}
	}
	cases := map[string]func(a, b int32) int64{
		"add": func(a, b int32) int64 { return int64(a) + int64(b) },
		"sub": func(a, b int32) int64 { return int64(a) - int64(b) },
		"mul": func(a, b int32) int64 { return int64(a) * int64(b) },
		"div": func(a, b int32) int64 { return int64(a / b) },
		"rem": func(a, b int32) int64 { return int64(a % b) },
	}
	for fn, golden := range cases {
		if err := quick.Check(check(fn, golden), nil); err != nil {
			t.Errorf("%s: %v", fn, err)
		}
	}
}

func TestQuickFloatArithmetic(t *testing.T) {
	const src = `
double axpy(double a, double x, double y) { return a * x + y; }
double quad(double x) { return x*x*0.5 - x*2.0 + 1.0; }`
	mod, err := Compile("quick", src)
	if err != nil {
		t.Fatal(err)
	}
	axpy := func(a, x, y float64) bool {
		m := interp.NewMachine(mod)
		out, err := m.Exec(mod.FunctionByName("axpy"),
			interp.FloatValue(a), interp.FloatValue(x), interp.FloatValue(y))
		if err != nil {
			t.Fatal(err)
		}
		want := a*x + y
		return out.Float() == want || (want != want && out.Float() != out.Float())
	}
	if err := quick.Check(axpy, nil); err != nil {
		t.Error(err)
	}
	quad := func(x float64) bool {
		m := interp.NewMachine(mod)
		out, err := m.Exec(mod.FunctionByName("quad"), interp.FloatValue(x))
		if err != nil {
			t.Fatal(err)
		}
		want := x*x*0.5 - x*2.0 + 1.0
		return out.Float() == want || (want != want && out.Float() != out.Float())
	}
	if err := quick.Check(quad, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickComparisons: every comparison operator agrees with Go.
func TestQuickComparisons(t *testing.T) {
	ops := []struct {
		op     string
		golden func(a, b int32) bool
	}{
		{"<", func(a, b int32) bool { return a < b }},
		{"<=", func(a, b int32) bool { return a <= b }},
		{">", func(a, b int32) bool { return a > b }},
		{">=", func(a, b int32) bool { return a >= b }},
		{"==", func(a, b int32) bool { return a == b }},
		{"!=", func(a, b int32) bool { return a != b }},
	}
	for _, c := range ops {
		c := c
		src := fmt.Sprintf(`int f(int a, int b) { if (a %s b) { return 1; } return 0; }`, c.op)
		mod, err := Compile("quick", src)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		f := func(a, b int32) bool {
			m := interp.NewMachine(mod)
			out, err := m.Exec(mod.FunctionByName("f"),
				interp.IntValue(int64(a)), interp.IntValue(int64(b)))
			if err != nil {
				t.Fatal(err)
			}
			return (out.Int() == 1) == c.golden(a, b)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", c.op, err)
		}
	}
}

// TestQuickLoopSum: a compiled counted loop sums exactly like Go for
// arbitrary small lengths and contents.
func TestQuickLoopSum(t *testing.T) {
	const src = `
long total(int* a, int n) {
    long s = 0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}`
	mod, err := Compile("quick", src)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []int32) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		buf := interp.NewBuffer("a", len(raw)*4+4)
		var want int64
		for i, v := range raw {
			buf.SetInt32(i, v)
			want += int64(v)
		}
		m := interp.NewMachine(mod)
		out, err := m.Exec(mod.FunctionByName("total"),
			interp.PtrValue(interp.Pointer{Buf: buf}), interp.IntValue(int64(len(raw))))
		if err != nil {
			t.Fatal(err)
		}
		return out.Int() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
