package cc

import (
	"repro/internal/ir"
)

// PromoteMemToReg rewrites promotable stack slots into SSA registers with
// phi nodes, mirroring LLVM's mem2reg pass. A slot is promotable when it is
// a single-element alloca that is only ever used as the pointer operand of
// loads and stores.
//
// The implementation is the textbook algorithm: block-level dominator tree,
// dominance frontiers, phi insertion at the iterated dominance frontier of
// the stores, then a renaming walk over the dominator tree.
func PromoteMemToReg(fn *ir.Function) {
	allocas := promotableAllocas(fn)
	if len(allocas) == 0 {
		return
	}
	dt := buildDomTree(fn)
	df := dominanceFrontiers(fn, dt)

	// Insert phi nodes at the iterated dominance frontier of each store.
	phiFor := map[*ir.Instruction]map[*ir.Block]*ir.Instruction{} // alloca -> block -> phi
	for _, al := range allocas {
		phiFor[al] = map[*ir.Block]*ir.Instruction{}
		work := []*ir.Block{}
		seen := map[*ir.Block]bool{}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && in.Ops[1] == ir.Value(al) && !seen[b] {
					seen[b] = true
					work = append(work, b)
				}
			}
		}
		placed := map[*ir.Block]bool{}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if placed[fb] {
					continue
				}
				placed[fb] = true
				phi := &ir.Instruction{
					Op:    ir.OpPhi,
					Ty:    al.Ty.Elem,
					Ident: fn.FreshName(al.Ident + ".ssa"),
					Block: fb,
				}
				fb.Instrs = append([]*ir.Instruction{phi}, fb.Instrs...)
				phiFor[al][fb] = phi
				if !seen[fb] {
					seen[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Renaming walk.
	cur := map[*ir.Instruction]ir.Value{} // alloca -> reaching value
	replaced := map[ir.Value]ir.Value{}   // load -> value
	dead := map[*ir.Instruction]bool{}

	resolve := func(v ir.Value) ir.Value {
		for {
			nv, ok := replaced[v]
			if !ok {
				return v
			}
			v = nv
		}
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		saved := map[*ir.Instruction]ir.Value{}
		save := func(al *ir.Instruction) {
			if _, ok := saved[al]; !ok {
				saved[al] = cur[al]
			}
		}

		for _, al := range allocas {
			if phi, ok := phiFor[al][b]; ok {
				save(al)
				cur[al] = phi
			}
		}
		for _, in := range b.Instrs {
			// Rewrite operands through the replacement map first.
			for i, op := range in.Ops {
				in.Ops[i] = resolve(op)
			}
			switch in.Op {
			case ir.OpLoad:
				if al, ok := in.Ops[0].(*ir.Instruction); ok && isPromotable(al, allocas) {
					v := cur[al]
					if v == nil {
						v = zeroValue(al.Ty.Elem)
					}
					replaced[in] = v
					dead[in] = true
				}
			case ir.OpStore:
				if al, ok := in.Ops[1].(*ir.Instruction); ok && isPromotable(al, allocas) {
					save(al)
					cur[al] = in.Ops[0]
					dead[in] = true
				}
			}
		}
		// Fill phi incoming values in CFG successors.
		if t := b.Terminator(); t != nil {
			for _, s := range t.Succs {
				for _, al := range allocas {
					if phi, ok := phiFor[al][s]; ok {
						v := cur[al]
						if v == nil {
							v = zeroValue(al.Ty.Elem)
						}
						ir.AddIncoming(phi, v, b)
					}
				}
			}
		}
		for _, child := range dt.children[b] {
			rename(child)
		}
		for al, v := range saved {
			cur[al] = v
		}
	}
	rename(fn.Entry())

	// Second pass: resolve any operands referencing replaced loads that were
	// rewritten before their replacement was recorded (back edges).
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for i, op := range in.Ops {
				in.Ops[i] = resolve(op)
			}
		}
	}

	// Remove dead loads/stores and the allocas themselves.
	for _, al := range allocas {
		dead[al] = true
	}
	for _, b := range fn.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !dead[in] {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}

	pruneTrivialPhis(fn)
}

func isPromotable(al *ir.Instruction, allocas []*ir.Instruction) bool {
	for _, a := range allocas {
		if a == al {
			return true
		}
	}
	return false
}

func zeroValue(t *ir.Type) ir.Value {
	switch {
	case t.IsFloat():
		return ir.ConstFloat(t, 0)
	case t.IsInteger():
		return ir.ConstInt(t, 0)
	default:
		return ir.ConstNull(t)
	}
}

// promotableAllocas returns single-cell allocas used only by load/store
// pointer operands.
func promotableAllocas(fn *ir.Function) []*ir.Instruction {
	var out []*ir.Instruction
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpAlloca || in.AllocaCount != 1 {
				continue
			}
			ok := true
		uses:
			for _, ub := range fn.Blocks {
				for _, user := range ub.Instrs {
					for oi, op := range user.Ops {
						if op != ir.Value(in) {
							continue
						}
						if user.Op == ir.OpLoad && oi == 0 {
							continue
						}
						if user.Op == ir.OpStore && oi == 1 {
							continue
						}
						ok = false
						break uses
					}
				}
			}
			if ok {
				out = append(out, in)
			}
		}
	}
	return out
}

// pruneTrivialPhis removes phis whose incoming values are all identical (or
// the phi itself), replacing their uses with that single value. Repeats to a
// fixpoint, which tidies the straight-line code the renaming produces.
func pruneTrivialPhis(fn *ir.Function) {
	for {
		changed := false
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpPhi {
					continue
				}
				var only ir.Value
				trivial := true
				for _, v := range in.Ops {
					if v == ir.Value(in) {
						continue
					}
					if only == nil {
						only = v
					} else if !sameValue(only, v) {
						trivial = false
						break
					}
				}
				if !trivial || only == nil {
					continue
				}
				replaceAllUses(fn, in, only)
				removeInstr(b, in)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// sameValue compares values, treating equal constants as identical.
func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, ok1 := a.(*ir.Const)
	cb, ok2 := b.(*ir.Const)
	if !ok1 || !ok2 || !ca.Ty.Equal(cb.Ty) {
		return false
	}
	return ca.Null == cb.Null && ca.IntVal == cb.IntVal && ca.FloatVal == cb.FloatVal
}

func replaceAllUses(fn *ir.Function, old, nv ir.Value) {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for i, op := range in.Ops {
				if op == old {
					in.Ops[i] = nv
				}
			}
		}
	}
}

func removeInstr(b *ir.Block, target *ir.Instruction) {
	kept := b.Instrs[:0]
	for _, in := range b.Instrs {
		if in != target {
			kept = append(kept, in)
		}
	}
	b.Instrs = kept
}

// --- block-level dominator tree ---

type domTree struct {
	idom     map[*ir.Block]*ir.Block
	children map[*ir.Block][]*ir.Block
}

func blockPreds(fn *ir.Function) map[*ir.Block][]*ir.Block {
	preds := map[*ir.Block][]*ir.Block{}
	for _, b := range fn.Blocks {
		if t := b.Terminator(); t != nil {
			for _, s := range t.Succs {
				preds[s] = append(preds[s], b)
			}
		}
	}
	return preds
}

// buildDomTree computes immediate dominators with the iterative set-based
// algorithm (block counts here are small).
func buildDomTree(fn *ir.Function) *domTree {
	n := len(fn.Blocks)
	index := map[*ir.Block]int{}
	for i, b := range fn.Blocks {
		index[b] = i
	}
	preds := blockPreds(fn)

	dom := make([]map[int]bool, n)
	all := map[int]bool{}
	for i := 0; i < n; i++ {
		all[i] = true
	}
	for i := range dom {
		if i == 0 {
			dom[i] = map[int]bool{0: true}
		} else {
			d := map[int]bool{}
			for k := range all {
				d[k] = true
			}
			dom[i] = d
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			b := fn.Blocks[i]
			ps := preds[b]
			if len(ps) == 0 {
				continue
			}
			nd := map[int]bool{}
			first := true
			for _, p := range ps {
				pd := dom[index[p]]
				if first {
					for k := range pd {
						nd[k] = true
					}
					first = false
				} else {
					for k := range nd {
						if !pd[k] {
							delete(nd, k)
						}
					}
				}
			}
			nd[i] = true
			if len(nd) != len(dom[i]) {
				dom[i] = nd
				changed = true
			} else {
				for k := range nd {
					if !dom[i][k] {
						dom[i] = nd
						changed = true
						break
					}
				}
			}
		}
	}

	dt := &domTree{idom: map[*ir.Block]*ir.Block{}, children: map[*ir.Block][]*ir.Block{}}
	for i := 1; i < n; i++ {
		// idom = the strict dominator dominated by all other strict doms,
		// i.e. the one with the largest dominator set.
		best := -1
		bestSize := -1
		for k := range dom[i] {
			if k == i {
				continue
			}
			if sz := len(dom[k]); sz > bestSize {
				bestSize = sz
				best = k
			}
		}
		if best >= 0 {
			ib := fn.Blocks[best]
			dt.idom[fn.Blocks[i]] = ib
			dt.children[ib] = append(dt.children[ib], fn.Blocks[i])
		}
	}
	return dt
}

// dominanceFrontiers computes DF with the standard two-pred walk.
func dominanceFrontiers(fn *ir.Function, dt *domTree) map[*ir.Block][]*ir.Block {
	df := map[*ir.Block][]*ir.Block{}
	preds := blockPreds(fn)
	inDF := map[*ir.Block]map[*ir.Block]bool{}
	add := func(b, f *ir.Block) {
		if inDF[b] == nil {
			inDF[b] = map[*ir.Block]bool{}
		}
		if !inDF[b][f] {
			inDF[b][f] = true
			df[b] = append(df[b], f)
		}
	}
	for _, b := range fn.Blocks {
		ps := preds[b]
		if len(ps) < 2 {
			continue
		}
		for _, p := range ps {
			runner := p
			for runner != nil && runner != dt.idom[b] {
				add(runner, b)
				runner = dt.idom[runner]
			}
		}
	}
	return df
}
