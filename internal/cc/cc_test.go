package cc

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return mod
}

func countOp(f *ir.Function, op ir.Opcode) int {
	n := 0
	for _, in := range f.Instructions() {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("int x = 42; // comment\n/* block */ double y = 1.5e3f;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].text != "int" || toks[0].kind != tokKeyword {
		t.Errorf("first token = %v", toks[0])
	}
	found42 := false
	foundFloat := false
	for _, tk := range toks {
		if tk.kind == tokIntLit && tk.intVal == 42 {
			found42 = true
		}
		if tk.kind == tokFloatLit && tk.floatVal == 1500 && tk.isFloat32 {
			foundFloat = true
		}
	}
	if !found42 || !foundFloat {
		t.Errorf("literal scanning failed: kinds=%v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("int @ x;"); err == nil {
		t.Error("expected error for '@'")
	}
	if _, err := lex("/* unterminated"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestParseErrors(t *testing.T) {
	bads := []string{
		"int f( { }",
		"void f() { int; }",
		"void f() { x = ; }",
		"void f() { if x { } }",
		"void f() { for (;; }",
		"void f() { return 1 }",
		"void f() {",
	}
	for _, src := range bads {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

// The Figure 3 example: (a*b) + (c*d) with d = a must lower to exactly two
// muls and an add over arguments, after mem2reg removes the d alias.
func TestFigure3Example(t *testing.T) {
	mod := compile(t, `
int example(int a, int b, int c) {
    int d = a;
    return (a*b) + (c*d);
}`)
	f := mod.FunctionByName("example")
	if f == nil {
		t.Fatal("function not found")
	}
	if got := countOp(f, ir.OpMul); got != 2 {
		t.Errorf("muls = %d, want 2\n%s", got, f)
	}
	if got := countOp(f, ir.OpAdd); got != 1 {
		t.Errorf("adds = %d, want 1\n%s", got, f)
	}
	if got := countOp(f, ir.OpAlloca); got != 0 {
		t.Errorf("allocas remaining = %d, want 0 (mem2reg)\n%s", got, f)
	}
	if got := countOp(f, ir.OpLoad); got != 0 {
		t.Errorf("loads remaining = %d, want 0\n%s", got, f)
	}
	// The second mul must use %a (the d alias resolved to a).
	var muls []*ir.Instruction
	for _, in := range f.Instructions() {
		if in.Op == ir.OpMul {
			muls = append(muls, in)
		}
	}
	usesA := false
	for _, op := range muls[1].Ops {
		if op == ir.Value(f.Args[0]) {
			usesA = true
		}
	}
	if !usesA {
		t.Errorf("alias d was not folded to a:\n%s", f)
	}
}

// A counted loop must produce the canonical phi/icmp/br shape of Figure 4.
func TestLoopShape(t *testing.T) {
	mod := compile(t, `
double sum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        s = s + a[i];
    }
    return s;
}`)
	f := mod.FunctionByName("sum")
	if got := countOp(f, ir.OpPhi); got != 2 {
		t.Errorf("phis = %d, want 2 (i and s)\n%s", got, f)
	}
	if got := countOp(f, ir.OpICmp); got != 1 {
		t.Errorf("icmps = %d, want 1\n%s", got, f)
	}
	if got := countOp(f, ir.OpGEP); got != 1 {
		t.Errorf("geps = %d, want 1\n%s", got, f)
	}
	if got := countOp(f, ir.OpFAdd); got != 1 {
		t.Errorf("fadds = %d, want 1\n%s", got, f)
	}
	if got := countOp(f, ir.OpAlloca); got != 0 {
		t.Errorf("allocas = %d, want 0\n%s", got, f)
	}
	// Index i (i32) must be sign-extended for the gep.
	if got := countOp(f, ir.OpSExt); got < 1 {
		t.Errorf("sexts = %d, want >=1\n%s", got, f)
	}
}

// The paper's CSR SpMV kernel (Figure 4) must compile with a memory-
// dependent inner loop bound and indirect access.
func TestSPMVKernel(t *testing.T) {
	mod := compile(t, `
void spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}`)
	f := mod.FunctionByName("spmv")
	// Inner loads: rowstr[j], rowstr[j+1], a[k], z[colidx[k]], colidx[k].
	if got := countOp(f, ir.OpLoad); got != 5 {
		t.Errorf("loads = %d, want 5\n%s", got, f)
	}
	if got := countOp(f, ir.OpStore); got != 1 {
		t.Errorf("stores = %d, want 1\n%s", got, f)
	}
	if got := countOp(f, ir.OpFMul); got != 1 {
		t.Errorf("fmuls = %d, want 1\n%s", got, f)
	}
	if got := countOp(f, ir.OpPhi); got < 3 {
		t.Errorf("phis = %d, want >= 3 (j, k, d)\n%s", got, f)
	}
}

// Both GEMM styles of Figure 8 must compile; the flattened 2D array style
// must produce an index of shape i*1000 + k.
func TestGEMMTwoStyles(t *testing.T) {
	mod := compile(t, `
void gemm1(int m, int n, int k, float* A, int lda, float* B, int ldb,
           float* C, int ldc, float alpha, float beta) {
    for (int mm = 0; mm < m; mm++) {
        for (int nn = 0; nn < n; nn++) {
            float c = 0.0f;
            for (int i = 0; i < k; i++) {
                float a = A[mm + i * lda];
                float b = B[nn + i * ldb];
                c += a * b;
            }
            C[mm + nn * ldc] = C[mm + nn * ldc] * beta + alpha * c;
        }
    }
}

void gemm2(float M1[1000][1000], float M2[1000][1000], float M3[1000][1000]) {
    for (int i = 0; i < 1000; i++) {
        for (int j = 0; j < 1000; j++) {
            M3[i][j] = 0.0f;
            for (int k = 0; k < 1000; k++) {
                M3[i][j] += M1[i][k] * M2[k][j];
            }
        }
    }
}`)
	g1 := mod.FunctionByName("gemm1")
	g2 := mod.FunctionByName("gemm2")
	if g1 == nil || g2 == nil {
		t.Fatal("missing functions")
	}
	if got := countOp(g2, ir.OpMul); got < 3 {
		t.Errorf("gemm2 should flatten 2D indices with muls, got %d\n%s", got, g2)
	}
	// gemm1 keeps a scalar accumulator (4 phis); gemm2 accumulates in memory
	// via M3[i][j] += so only the 3 iterators need phis.
	if got := countOp(g1, ir.OpPhi); got < 4 {
		t.Errorf("gemm1 phis = %d, want >= 4 (3 iterators + acc)", got)
	}
	if got := countOp(g2, ir.OpPhi); got != 3 {
		t.Errorf("gemm2 phis = %d, want 3 iterators", got)
	}
}

func TestIfElseLowering(t *testing.T) {
	mod := compile(t, `
int maxi(int a, int b) {
    int m = 0;
    if (a > b) { m = a; } else { m = b; }
    return m;
}`)
	f := mod.FunctionByName("maxi")
	if got := countOp(f, ir.OpPhi); got != 1 {
		t.Errorf("phis = %d, want 1 merge phi\n%s", got, f)
	}
	if got := countOp(f, ir.OpICmp); got != 1 {
		t.Errorf("icmps = %d, want 1\n%s", got, f)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	mod := compile(t, `
int count(int n) {
    int i = 0;
    int c = 0;
    while (1) {
        if (i >= n) { break; }
        i = i + 1;
        if (i % 2 == 0) { continue; }
        c = c + 1;
    }
    return c;
}`)
	f := mod.FunctionByName("count")
	if got := countOp(f, ir.OpSRem); got != 1 {
		t.Errorf("srems = %d, want 1\n%s", got, f)
	}
}

func TestMathBuiltins(t *testing.T) {
	mod := compile(t, `
double dist(double x, double y) {
    return sqrt(x*x + y*y) + fabs(x) + pow(x, 2.0) + exp(y) + log(x) + sin(x) + cos(y) + floor(x);
}`)
	f := mod.FunctionByName("dist")
	for _, op := range []ir.Opcode{ir.OpSqrt, ir.OpFAbs, ir.OpPow, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpFloor} {
		if got := countOp(f, op); got != 1 {
			t.Errorf("%s count = %d, want 1", op, got)
		}
	}
}

func TestCasts(t *testing.T) {
	mod := compile(t, `
double mix(int i, long l, float f, double d) {
    double a = i;
    double b = l;
    double c = f;
    int e = (int) d;
    long g = i;
    float h = (float) d;
    return a + b + c + e + g + h;
}`)
	f := mod.FunctionByName("mix")
	if got := countOp(f, ir.OpSIToFP); got < 3 {
		t.Errorf("sitofp = %d, want >= 3\n%s", got, f)
	}
	if got := countOp(f, ir.OpFPToSI); got != 1 {
		t.Errorf("fptosi = %d, want 1\n%s", got, f)
	}
	if got := countOp(f, ir.OpFPTrunc); got != 1 {
		t.Errorf("fptrunc = %d, want 1\n%s", got, f)
	}
	if got := countOp(f, ir.OpFPExt); got != 2 {
		// float c = f (fpext) plus promoting h in the mixed-type sum.
		t.Errorf("fpext = %d, want 2\n%s", got, f)
	}
}

func TestCallBetweenFunctions(t *testing.T) {
	mod := compile(t, `
double square(double x) { return x * x; }
double use(double v) { return square(v) + square(2.0); }
`)
	f := mod.FunctionByName("use")
	if got := countOp(f, ir.OpCall); got != 2 {
		t.Errorf("calls = %d, want 2\n%s", got, f)
	}
}

func TestLocalArray(t *testing.T) {
	mod := compile(t, `
int histo_local(int* data, int n) {
    int bins[8];
    for (int i = 0; i < 8; i++) { bins[i] = 0; }
    for (int i = 0; i < n; i++) {
        bins[data[i] % 8] += 1;
    }
    return bins[0];
}`)
	f := mod.FunctionByName("histo_local")
	if got := countOp(f, ir.OpAlloca); got != 1 {
		t.Errorf("allocas = %d, want exactly the array\n%s", got, f)
	}
}

func TestPointerToPointer(t *testing.T) {
	mod := compile(t, `
double cell(double** rows, int i, int j) {
    return rows[i][j];
}`)
	f := mod.FunctionByName("cell")
	if got := countOp(f, ir.OpLoad); got != 2 {
		t.Errorf("loads = %d, want 2 (row pointer + element)\n%s", got, f)
	}
}

func TestLogicalOperators(t *testing.T) {
	mod := compile(t, `
int inrange(int x, int lo, int hi) {
    if (x >= lo && x < hi || x == 0) { return 1; }
    return 0;
}`)
	f := mod.FunctionByName("inrange")
	if got := countOp(f, ir.OpSelect); got != 2 {
		t.Errorf("selects = %d, want 2 (&& and ||)\n%s", got, f)
	}
}

func TestSemanticsErrors(t *testing.T) {
	bads := map[string]string{
		"undefined var":    `void f() { x = 1; }`,
		"undefined func":   `void f() { g(); }`,
		"redeclaration":    `void f() { int x; int x; }`,
		"mod on float":     `double f(double a) { return a % 2.0; }`,
		"break outside":    `void f() { break; }`,
		"continue outside": `void f() { continue; }`,
		"assign to array":  `void f(int n) { double a[4]; a = 0; }`,
		"index scalar":     `void f(int n) { n[0] = 1; }`,
		"bad arg count":    `void g(int a) {} void f() { g(); }`,
	}
	for what, src := range bads {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("%s: expected error for %q", what, src)
		}
	}
}

func TestVoidReturnInsertion(t *testing.T) {
	mod := compile(t, `void f(int n) { if (n > 0) { return; } }`)
	f := mod.FunctionByName("f")
	rets := countOp(f, ir.OpRet)
	if rets < 2 {
		t.Errorf("rets = %d, want >= 2 (explicit + implicit)\n%s", rets, f)
	}
}

func TestCompoundAssignAndIncForms(t *testing.T) {
	mod := compile(t, `
int forms(int n) {
    int x = 0;
    x += n; x -= 1; x *= 2; x /= 3;
    x++; ++x; x--; --x;
    return x;
}`)
	f := mod.FunctionByName("forms")
	if got := countOp(f, ir.OpAdd); got != 3 {
		t.Errorf("adds = %d, want 3 (+=, x++, ++x)\n%s", got, f)
	}
	if got := countOp(f, ir.OpSub); got != 3 {
		t.Errorf("subs = %d, want 3\n%s", got, f)
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	mod := compile(t, `
int f(int n) {
    return n;
    n = n + 1;
}`)
	f := mod.FunctionByName("f")
	// The unreachable increment must be pruned along with its block.
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Ident, "dead") {
			t.Errorf("dead block survived:\n%s", f)
		}
	}
}

func TestNestedLoopDominance(t *testing.T) {
	// A regression guard: triple nesting with accumulators must verify and
	// keep exactly one phi per loop level plus one for the accumulator.
	mod := compile(t, `
float triple(int n) {
    float acc = 0.0f;
    for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
            for (int k = 0; k < n; k++)
                acc += 1.0f;
    return acc;
}`)
	f := mod.FunctionByName("triple")
	phis := countOp(f, ir.OpPhi)
	// 3 iterators + acc carried through 3 loop headers = 6 phis.
	if phis < 4 || phis > 7 {
		t.Errorf("phis = %d, expected between 4 and 7\n%s", phis, f)
	}
}
