package cc

import (
	"fmt"
	"strings"
)

// BaseKind is the scalar base of a frontend type.
type BaseKind int

// Scalar base kinds.
const (
	BaseVoid BaseKind = iota
	BaseInt           // 32-bit signed
	BaseLong          // 64-bit signed
	BaseFloat
	BaseDouble
)

// CType is a frontend type: a scalar base, a pointer depth and optional
// fixed array dimensions (e.g. double[1000][1000]). Array-of-T parameters
// decay to pointers but keep their dimensions for index flattening.
type CType struct {
	Base     BaseKind
	PtrDepth int
	Dims     []int
}

// IsScalar reports a plain scalar value type.
func (t CType) IsScalar() bool { return t.PtrDepth == 0 && len(t.Dims) == 0 }

// IsArith reports a scalar arithmetic type.
func (t CType) IsArith() bool { return t.IsScalar() && t.Base != BaseVoid }

// IsFloat reports float/double scalars.
func (t CType) IsFloat() bool {
	return t.IsScalar() && (t.Base == BaseFloat || t.Base == BaseDouble)
}

// IsInteger reports int/long scalars.
func (t CType) IsInteger() bool {
	return t.IsScalar() && (t.Base == BaseInt || t.Base == BaseLong)
}

// IsPointerLike reports pointer or array types.
func (t CType) IsPointerLike() bool { return t.PtrDepth > 0 || len(t.Dims) > 0 }

// Elem returns the type addressed by one level of indexing.
func (t CType) Elem() CType {
	if len(t.Dims) > 0 {
		return CType{Base: t.Base, PtrDepth: t.PtrDepth, Dims: t.Dims[1:]}
	}
	if t.PtrDepth > 0 {
		return CType{Base: t.Base, PtrDepth: t.PtrDepth - 1}
	}
	return t
}

// String renders the type in C-like syntax.
func (t CType) String() string {
	var b strings.Builder
	switch t.Base {
	case BaseVoid:
		b.WriteString("void")
	case BaseInt:
		b.WriteString("int")
	case BaseLong:
		b.WriteString("long")
	case BaseFloat:
		b.WriteString("float")
	case BaseDouble:
		b.WriteString("double")
	}
	b.WriteString(strings.Repeat("*", t.PtrDepth))
	for _, d := range t.Dims {
		fmt.Fprintf(&b, "[%d]", d)
	}
	return b.String()
}

// --- Expressions ---

// Expr is any expression node.
type Expr interface{ exprNode() }

// Ident references a variable.
type Ident struct {
	Name      string
	Line, Col int
}

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// FloatLit is a floating literal; Single marks an 'f'-suffixed literal.
type FloatLit struct {
	Val    float64
	Single bool
}

// Binary is a binary operation: + - * / % == != < <= > >= && ||.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is a prefix operation: - or !.
type Unary struct {
	Op string
	X  Expr
}

// Index is array subscripting, possibly multi-dimensional via nesting.
type Index struct {
	Base Expr
	Idx  Expr
}

// Call is a function call (math builtin or module-level function).
type Call struct {
	Name string
	Args []Expr
}

func (*Ident) exprNode()    {}
func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Binary) exprNode()   {}
func (*Unary) exprNode()    {}
func (*Index) exprNode()    {}
func (*Call) exprNode()     {}

// --- Statements ---

// Stmt is any statement node.
type Stmt interface{ stmtNode() }

// VarDecl declares a local variable, optionally initialized.
type VarDecl struct {
	Name string
	Ty   CType
	Init Expr
}

// Assign writes to an lvalue. Op is "=", "+=", "-=", "*=", "/=".
type Assign struct {
	LHS Expr // Ident or Index
	Op  string
	RHS Expr
}

// IncDec is lvalue++ / lvalue--.
type IncDec struct {
	LHS Expr
	Dec bool
}

// ExprStmt evaluates an expression for side effects (calls).
type ExprStmt struct{ X Expr }

// Block is a brace-delimited statement list.
type Block struct{ Stmts []Stmt }

// If is a conditional with optional else.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

// For is a C for loop. Init and Post may be nil, as may Cond.
type For struct {
	Init Stmt // VarDecl, Assign or IncDec
	Cond Expr
	Post Stmt
	Body Stmt
}

// While is a while loop.
type While struct {
	Cond Expr
	Body Stmt
}

// Return returns from the function; X may be nil.
type Return struct{ X Expr }

// BreakStmt exits the innermost loop.
type BreakStmt struct{}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{}

func (*VarDecl) stmtNode()      {}
func (*Assign) stmtNode()       {}
func (*IncDec) stmtNode()       {}
func (*ExprStmt) stmtNode()     {}
func (*Block) stmtNode()        {}
func (*If) stmtNode()           {}
func (*For) stmtNode()          {}
func (*While) stmtNode()        {}
func (*Return) stmtNode()       {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Param is a formal function parameter.
type Param struct {
	Name string
	Ty   CType
}

// FuncDecl is a top-level function definition.
type FuncDecl struct {
	Name   string
	Ret    CType
	Params []Param
	Body   *Block
}

// File is a parsed translation unit.
type File struct {
	Funcs []*FuncDecl
}
