// Package workloads provides the 21 benchmark programs of the paper's
// evaluation: the sequential C kernels of the NAS Parallel Benchmarks (SNU
// NPB: BT, CG, DC, EP, FT, IS, LU, MG, SP, UA) and Parboil (bfs, cutcp,
// histo, lbm, mri-gridding, mri-q, sad, sgemm, spmv, stencil, tpacf).
//
// Substitution note (see DESIGN.md): the original suites are tens of
// thousands of lines of C; what the paper's experiments consume from them is
// (a) the idiom instances they contain, and (b) the share of sequential
// execution time those idioms cover. Each workload here is therefore a
// faithful distillation: the real benchmark's core computational kernels —
// written in the same style as the originals — embedded in representative
// non-idiomatic driver code that recreates the coverage profile of
// Figure 17. Expected idiom counts reproduce Table 1 / Figure 16.
package workloads

import (
	"math/rand"

	"repro/internal/cc"
	"repro/internal/idioms"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Workload is one benchmark program.
type Workload struct {
	Name  string
	Suite string // "NAS" or "Parboil"
	// Source is the mini-C program text.
	Source string
	// Entry is the driver function executed by Run.
	Entry string
	// Expected are the idiom-instance counts the detector should report.
	Expected map[idioms.Class]int
	// Exploitable marks the ten benchmarks whose detected idioms dominate
	// sequential execution time (Figure 17/18).
	Exploitable bool
	// Setup builds the entry function's arguments at the given scale
	// (1 = unit test size; larger values grow the dominant dimension).
	Setup func(scale int) []Arg
}

// Arg describes one driver argument declaratively so both the original and
// transformed runs construct identical inputs.
type Arg struct {
	Int   int64
	F     float64
	IsF   bool
	Buf   *BufSpec
	IsBuf bool
}

// BufSpec declares a buffer argument.
type BufSpec struct {
	Name string
	// Bytes is the allocation size.
	Bytes int
	// Fill populates the buffer (may be nil for outputs).
	Fill func(b *interp.Buffer)
}

// IntArg wraps an integer argument.
func IntArg(v int64) Arg { return Arg{Int: v} }

// FloatArg wraps a float argument.
func FloatArg(v float64) Arg { return Arg{F: v, IsF: true} }

// BufArg wraps a buffer argument.
func BufArg(b *BufSpec) Arg { return Arg{Buf: b, IsBuf: true} }

// Materialize builds interpreter values (fresh buffers) for the args.
func Materialize(args []Arg) []interp.Value {
	out := make([]interp.Value, len(args))
	for i, a := range args {
		switch {
		case a.IsBuf:
			b := interp.NewBuffer(a.Buf.Name, a.Buf.Bytes)
			if a.Buf.Fill != nil {
				a.Buf.Fill(b)
			}
			out[i] = interp.PtrValue(interp.Pointer{Buf: b})
		case a.IsF:
			out[i] = interp.FloatValue(a.F)
		default:
			out[i] = interp.IntValue(a.Int)
		}
	}
	return out
}

// Compile compiles the workload's source.
func (w *Workload) Compile() (*ir.Module, error) {
	return cc.Compile(w.Name, w.Source)
}

// F64Fill fills with a deterministic pseudo-random series.
func F64Fill(seed int64) func(*interp.Buffer) {
	return func(b *interp.Buffer) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < len(b.Data)/8; i++ {
			b.SetFloat64(i, rng.NormFloat64())
		}
	}
}

// F64FillUnit fills with uniform values in [0,1).
func F64FillUnit(seed int64) func(*interp.Buffer) {
	return func(b *interp.Buffer) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < len(b.Data)/8; i++ {
			b.SetFloat64(i, rng.Float64())
		}
	}
}

// F32Fill fills float32 data.
func F32Fill(seed int64) func(*interp.Buffer) {
	return func(b *interp.Buffer) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < len(b.Data)/4; i++ {
			b.SetFloat32(i, float32(rng.NormFloat64()))
		}
	}
}

// I32FillMod fills int32 data with values in [0, mod).
func I32FillMod(seed int64, mod int32) func(*interp.Buffer) {
	return func(b *interp.Buffer) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < len(b.Data)/4; i++ {
			b.SetInt32(i, rng.Int31n(mod))
		}
	}
}

// CSRFill builds a random sparse matrix with `rows` rows, `perRow` non-zeros
// per row over `cols` columns: three specs for rowstr/colidx/values.
func CSRFill(seed int64, rows, cols, perRow int) (rowstr, colidx, vals *BufSpec) {
	nnz := rows * perRow
	rowstr = &BufSpec{Name: "rowstr", Bytes: (rows + 1) * 4, Fill: func(b *interp.Buffer) {
		for i := 0; i <= rows; i++ {
			b.SetInt32(i, int32(i*perRow))
		}
	}}
	colidx = &BufSpec{Name: "colidx", Bytes: nnz * 4, Fill: func(b *interp.Buffer) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < nnz; i++ {
			b.SetInt32(i, rng.Int31n(int32(cols)))
		}
	}}
	vals = &BufSpec{Name: "a", Bytes: nnz * 8, Fill: F64Fill(seed + 1)}
	return rowstr, colidx, vals
}

// All returns every workload: NAS first, then Parboil, as in the paper.
func All() []*Workload {
	out := append([]*Workload{}, NAS()...)
	return append(out, Parboil()...)
}

// ByName finds a workload.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// TotalExpected sums the expected idiom counts per class across workloads —
// the paper's Table 1 bottom line (45/5/6/1/3 = 60).
func TotalExpected() map[idioms.Class]int {
	out := map[idioms.Class]int{}
	for _, w := range All() {
		for c, n := range w.Expected {
			out[c] += n
		}
	}
	return out
}
