package workloads

import (
	"math/rand"

	"repro/internal/idioms"
	"repro/internal/interp"
)

// Parboil returns the eleven Parboil benchmark workloads (sequential C
// distillations).
func Parboil() []*Workload {
	return []*Workload{bfsWorkload(), cutcpWorkload(), histoWorkload(),
		lbmWorkload(), mrigWorkload(), mriqWorkload(), sadWorkload(),
		sgemmWorkload(), spmvWorkload(), stencilWorkload(), tpacfWorkload()}
}

// bfs: breadth-first search. The queue-driven traversal has data-dependent
// control flow and conditional writes (not idiomatic); the cost checksum is
// a scalar reduction.
func bfsWorkload() *Workload {
	src := `
int bfs_traverse(int* rowstr, int* colidx, int* cost, int* visited, int* queue, int n, int src) {
    int front = 0;
    int rear = 1;
    queue[0] = src;
    visited[src] = 1;
    cost[src] = 0;
    while (front < rear) {
        int cur = queue[front];
        front = front + 1;
        for (int e = rowstr[cur]; e < rowstr[cur+1]; e++) {
            int nb = colidx[e];
            if (visited[nb] == 0) {
                visited[nb] = 1;
                cost[nb] = cost[cur] + 1;
                queue[rear] = nb;
                rear = rear + 1;
            }
        }
    }
    return rear;
}

void bfs_reset(int* cost, int* visited, int n) {
    for (int i = 0; i < n; i++) {
        cost[i] = -1;
        visited[i] = 0;
    }
}

int bfs_cost_sum(int* cost, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s = s + cost[i]; }
    return s;
}

int bfs_main(int* rowstr, int* colidx, int* cost, int* visited, int* queue, int n, int iters) {
    int acc = 0;
    for (int it = 0; it < iters; it++) {
        bfs_reset(cost, visited, n);
        acc = acc + bfs_traverse(rowstr, colidx, cost, visited, queue, n, 0);
    }
    acc = acc + bfs_cost_sum(cost, n);
    return acc;
}
`
	return &Workload{
		Name: "bfs", Suite: "Parboil", Source: src, Entry: "bfs_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 1},
		Setup: func(scale int) []Arg {
			n := 256 * scale
			deg := 4
			rowstr := &BufSpec{Name: "rowstr", Bytes: (n + 1) * 4, Fill: func(b *interp.Buffer) {
				for i := 0; i <= n; i++ {
					b.SetInt32(i, int32(i*deg))
				}
			}}
			colidx := &BufSpec{Name: "colidx", Bytes: n * deg * 4, Fill: func(b *interp.Buffer) {
				rng := rand.New(rand.NewSource(100))
				for i := 0; i < n*deg; i++ {
					b.SetInt32(i, rng.Int31n(int32(n)))
				}
			}}
			return []Arg{
				BufArg(rowstr), BufArg(colidx),
				BufArg(&BufSpec{Name: "cost", Bytes: n * 4}),
				BufArg(&BufSpec{Name: "visited", Bytes: n * 4}),
				BufArg(&BufSpec{Name: "queue", Bytes: (n*deg + n + 1) * 4}),
				IntArg(int64(n)), IntArg(4),
			}
		},
	}
}

// cutcp: cutoff Coulombic potential. The lattice update is serialised by a
// neighbouring-cell dependence (pot[g-1]) and so is not idiomatic, matching
// the paper's low coverage; the total-energy check is a scalar reduction.
func cutcpWorkload() *Workload {
	src := `
void cutcp_lattice(double* pot, double* ax, double* aq, int natoms, int nx, double h, double cutoff2) {
    for (int a = 0; a < natoms; a++) {
        double x = ax[a];
        double q = aq[a];
        int start = (int)(x / h) - 4;
        for (int gi = 0; gi < 8; gi++) {
            int g = start + gi;
            if (g >= 1) {
                if (g < nx) {
                    double dx = x - (double)g * h;
                    double r2 = dx * dx;
                    if (r2 < cutoff2) {
                        pot[g] = pot[g-1] * 0.0001 + pot[g] + q / sqrt(r2 + 0.5);
                    }
                }
            }
        }
    }
}

double cutcp_energy(double* pot, int nx) {
    double e = 0.0;
    for (int i = 0; i < nx; i++) { e = e + fabs(pot[i]); }
    return e;
}

double cutcp_main(double* pot, double* ax, double* aq, int natoms, int nx, double h, double cutoff2, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        cutcp_lattice(pot, ax, aq, natoms, nx, h, cutoff2);
    }
    acc = cutcp_energy(pot, nx);
    return acc;
}
`
	return &Workload{
		Name: "cutcp", Suite: "Parboil", Source: src, Entry: "cutcp_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 1},
		Setup: func(scale int) []Arg {
			natoms := 256 * scale
			nx := 512
			return []Arg{
				BufArg(&BufSpec{Name: "pot", Bytes: nx * 8}),
				BufArg(&BufSpec{Name: "ax", Bytes: natoms * 8, Fill: func(b *interp.Buffer) {
					rng := rand.New(rand.NewSource(110))
					for i := 0; i < natoms; i++ {
						b.SetFloat64(i, rng.Float64()*float64(nx-16)+8.0)
					}
				}}),
				BufArg(&BufSpec{Name: "aq", Bytes: natoms * 8, Fill: F64FillUnit(111)}),
				IntArg(int64(natoms)), IntArg(int64(nx)),
				FloatArg(1.0), FloatArg(4.0), IntArg(6),
			}
		},
	}
}

// histo: image histogramming, the paper's canonical histogram benchmark.
// The binning loop dominates; the max-bin scan used for output scaling is a
// scalar reduction.
func histoWorkload() *Workload {
	src := `
void histo_kernel(int* img, int* bins, int n) {
    for (int i = 0; i < n; i++) {
        int w = img[i];
        int inc = 1 + (w * w * 3 + w * 7) % 2;
        if (bins[w] < 255) {
            bins[w] += inc;
        }
    }
}

int histo_max(int* bins, int nb) {
    int m = 0;
    for (int i = 0; i < nb; i++) {
        if (bins[i] > m) { m = bins[i]; }
    }
    return m;
}

int histo_main(int* img, int* bins, int n, int nb, int iters) {
    int acc = 0;
    for (int it = 0; it < iters; it++) {
        histo_kernel(img, bins, n);
    }
    acc = histo_max(bins, 256);
    return acc;
}
`
	return &Workload{
		Name: "histo", Suite: "Parboil", Source: src, Entry: "histo_main",
		Exploitable: true,
		Expected: map[idioms.Class]int{
			idioms.ClassScalarReduction: 1,
			idioms.ClassHistogram:       1,
		},
		Setup: func(scale int) []Arg {
			n := 2048 * scale
			nb := 2048 * scale // Parboil histo: the output histogram is as large as the input image
			return []Arg{
				BufArg(&BufSpec{Name: "img", Bytes: n * 4, Fill: I32FillMod(120, int32(nb))}),
				BufArg(&BufSpec{Name: "bins", Bytes: nb * 4}),
				IntArg(int64(n)), IntArg(int64(nb)), IntArg(1),
			}
		},
	}
}

// lbm: lattice-Boltzmann. The distilled time step is three grid sweeps —
// streaming and collision over the 16x16x16 volume (3D stencils) and a wall
// boundary update over a plane (2D stencil); together they are the whole
// execution, as in the paper.
func lbmWorkload() *Workload {
	src := `
void lbm_stream(double* src, double* dst, int n) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            for (int k = 1; k < n - 1; k++) {
                dst[(i*16 + j)*16 + k] =
                    src[(i*16 + j)*16 + k] * 0.4
                  + src[((i-1)*16 + j)*16 + k] * 0.1
                  + src[((i+1)*16 + j)*16 + k] * 0.1
                  + src[(i*16 + (j-1))*16 + k] * 0.1
                  + src[(i*16 + (j+1))*16 + k] * 0.1
                  + src[(i*16 + j)*16 + (k-1)] * 0.1
                  + src[(i*16 + j)*16 + (k+1)] * 0.1;
            }
        }
    }
}

void lbm_collide(double* dst, double* feq, int n) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            for (int k = 1; k < n - 1; k++) {
                double c = dst[(i*16 + j)*16 + k];
                double up = dst[(i*16 + (j+1))*16 + k];
                double dn = dst[(i*16 + (j-1))*16 + k];
                double fw = dst[(i*16 + j)*16 + (k+1)];
                double bw = dst[(i*16 + j)*16 + (k-1)];
                double rho = c + up + dn + fw + bw;
                double ux = (up - dn) * 0.8 + (fw - bw) * 0.2;
                double eq = rho * 0.2 * (1.0 + 3.0 * ux + 4.5 * ux * ux
                                        - 1.5 * (ux * ux + 0.01));
                double v = c - (c - eq) * 0.6;
                if (v > 1.5) { v = 1.5; }
                feq[(i*16 + j)*16 + k] = v;
            }
        }
    }
}

void lbm_boundary(double* feq, double* src, int n) {
    for (int j = 1; j < n - 1; j++) {
        for (int k = 1; k < n - 1; k++) {
            src[j*16 + k] = feq[j*16 + k] * 0.7
                          + feq[(j-1)*16 + k] * 0.1
                          + feq[(j+1)*16 + k] * 0.1
                          + feq[j*16 + (k+1)] * 0.1;
        }
    }
}

double lbm_mass(double* src, int n3) {
    double s = 0.0;
    int i = 0;
    while (i < n3) {
        s = s + fabs(src[i]) + src[i+1];
        i = i + 2;
    }
    return s;
}

double lbm_main(double* src, double* dst, double* feq, int n, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        lbm_stream(src, dst, n);
        lbm_collide(dst, feq, n);
        lbm_boundary(feq, src, n);
    }
    acc = lbm_mass(src, n * 16 * 16);
    return acc;
}
`
	return &Workload{
		Name: "lbm", Suite: "Parboil", Source: src, Entry: "lbm_main",
		Exploitable: true,
		Expected:    map[idioms.Class]int{idioms.ClassStencil: 3},
		Setup: func(scale int) []Arg {
			n := 16
			return []Arg{
				BufArg(&BufSpec{Name: "src", Bytes: n * 16 * 16 * 8, Fill: F64FillUnit(130)}),
				BufArg(&BufSpec{Name: "dst", Bytes: n * 16 * 16 * 8}),
				BufArg(&BufSpec{Name: "feq", Bytes: n * 16 * 16 * 8}),
				IntArg(int64(n)), IntArg(int64(4 * scale)),
			}
		},
	}
}

// mri-g: MRI gridding. The heavy interpolation sweep carries a serial
// neighbour dependence (grid[g-1]) so only the sample-binning histogram and
// the density checksum are idiomatic — coverage stays low as in the paper.
func mrigWorkload() *Workload {
	src := `
void mrig_interp(double* grid, double* kx, double* val, int ns, int ng) {
    for (int s = 0; s < ns; s++) {
        double pos = kx[s] * (double)ng;
        double v = val[s];
        int start = (int)pos - 2;
        for (int w = 0; w < 4; w++) {
            int g = start + w;
            if (g >= 1) {
                if (g < ng) {
                    double d = pos - (double)g;
                    grid[g] = grid[g-1] * 0.0001 + grid[g] + v * exp(0.0 - d * d);
                }
            }
        }
    }
}

void mrig_bin(int* bins, double* kx, int ns, int nb) {
    for (int s = 0; s < ns; s++) {
        int b = (int)(kx[s] * (double)nb);
        bins[b] += 1;
    }
}

double mrig_density(double* grid, int ng) {
    double s = 0.0;
    for (int i = 0; i < ng; i++) { s = s + grid[i] * 0.25; }
    return s;
}

double mrig_main(double* grid, int* bins, double* kx, double* val, int ns, int ng, int nb, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        mrig_interp(grid, kx, val, ns, ng);
    }
    mrig_bin(bins, kx, ns, nb);
    acc = mrig_density(grid, ng);
    return acc;
}
`
	return &Workload{
		Name: "mri-g", Suite: "Parboil", Source: src, Entry: "mrig_main",
		Expected: map[idioms.Class]int{
			idioms.ClassScalarReduction: 1,
			idioms.ClassHistogram:       1,
		},
		Setup: func(scale int) []Arg {
			ns := 512 * scale
			ng := 256
			return []Arg{
				BufArg(&BufSpec{Name: "grid", Bytes: ng * 8}),
				BufArg(&BufSpec{Name: "bins", Bytes: 64 * 4}),
				BufArg(&BufSpec{Name: "kx", Bytes: ns * 8, Fill: F64FillUnit(140)}),
				BufArg(&BufSpec{Name: "val", Bytes: ns * 8, Fill: F64Fill(141)}),
				IntArg(int64(ns)), IntArg(int64(ng)), IntArg(64), IntArg(4),
			}
		},
	}
}

// mri-q: MRI Q-matrix computation. The dominant ComputeQ sweep updates every
// voxel in the inner loop (a data-parallel map, which the idiom library does
// not cover), so coverage is low; the phi-magnitude and the result norm are
// scalar reductions.
func mriqWorkload() *Workload {
	src := `
void mriq_computeq(double* qr, double* qi, double* x, double* kx, double* mag, int nx, int nk) {
    for (int k = 0; k < nk; k++) {
        double kv = kx[k] * 6.2831853;
        double m = mag[k];
        for (int v = 0; v < nx; v++) {
            double arg = kv * x[v];
            qr[v] = qr[v] + m * cos(arg);
            qi[v] = qi[v] + m * sin(arg);
        }
    }
}

double mriq_phimag(double* phir, double* phii, int nk) {
    double s = 0.0;
    for (int k = 0; k < nk; k++) {
        s = s + phir[k] * phir[k] + phii[k] * phii[k];
    }
    return s;
}

double mriq_norm(double* qr, int nx) {
    double s = 0.0;
    for (int v = 0; v < nx; v++) { s = s + qr[v] * qr[v]; }
    return s;
}

double mriq_main(double* qr, double* qi, double* x, double* kx, double* mag, double* phir, double* phii, int nx, int nk, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        mriq_computeq(qr, qi, x, kx, mag, nx, nk);
    }
    acc = mriq_phimag(phir, phii, nk) + mriq_norm(qr, nx);
    return acc;
}
`
	return &Workload{
		Name: "mri-q", Suite: "Parboil", Source: src, Entry: "mriq_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 2},
		Setup: func(scale int) []Arg {
			nx := 128 * scale
			nk := 64
			return []Arg{
				BufArg(&BufSpec{Name: "qr", Bytes: nx * 8}),
				BufArg(&BufSpec{Name: "qi", Bytes: nx * 8}),
				BufArg(&BufSpec{Name: "x", Bytes: nx * 8, Fill: F64FillUnit(150)}),
				BufArg(&BufSpec{Name: "kx", Bytes: nk * 8, Fill: F64FillUnit(151)}),
				BufArg(&BufSpec{Name: "mag", Bytes: nk * 8, Fill: F64FillUnit(152)}),
				BufArg(&BufSpec{Name: "phir", Bytes: nk * 8, Fill: F64Fill(153)}),
				BufArg(&BufSpec{Name: "phii", Bytes: nk * 8, Fill: F64Fill(154)}),
				IntArg(int64(nx)), IntArg(int64(nk)), IntArg(4),
			}
		},
	}
}

// sad: sum of absolute differences for motion estimation. The search sweep
// reads the reference frame at iterator+offset (non-idiomatic access); the
// aligned residual and the best-score scan are scalar reductions.
func sadWorkload() *Workload {
	src := `
void sad_search(double* cur, double* ref, double* scores, int blk, int npos) {
    for (int p = 0; p < npos; p++) {
        double s = 0.0;
        for (int i = 0; i < blk; i++) {
            s = s + fabs(cur[i] - ref[i + p]);
        }
        scores[p] = s;
    }
}

double sad_best(double* scores, int npos) {
    double m = 1000000000.0;
    for (int p = 0; p < npos; p++) {
        if (scores[p] < m) { m = scores[p]; }
    }
    return m;
}

double sad_residual(double* cur, double* prev, int blk) {
    double s = 0.0;
    for (int i = 0; i < blk; i++) {
        double d = cur[i] - prev[i];
        s = s + d * d;
    }
    return s;
}

double sad_main(double* cur, double* ref, double* prev, double* scores, int blk, int npos, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        sad_search(cur, ref, scores, blk, npos);
    }
    acc = sad_best(scores, npos) + sad_residual(cur, prev, blk);
    return acc;
}
`
	return &Workload{
		Name: "sad", Suite: "Parboil", Source: src, Entry: "sad_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 2},
		Setup: func(scale int) []Arg {
			blk := 64
			npos := 64 * scale
			return []Arg{
				BufArg(&BufSpec{Name: "cur", Bytes: blk * 8, Fill: F64Fill(160)}),
				BufArg(&BufSpec{Name: "ref", Bytes: (blk + npos) * 8, Fill: F64Fill(161)}),
				BufArg(&BufSpec{Name: "prev", Bytes: blk * 8, Fill: F64Fill(162)}),
				BufArg(&BufSpec{Name: "scores", Bytes: npos * 8}),
				IntArg(int64(blk)), IntArg(int64(npos)), IntArg(4),
			}
		},
	}
}

// sgemm: dense matrix multiplication, written exactly in the style of the
// paper's Figure 8 (first variant): column-major accesses with leading
// dimensions and the alpha/beta linear combination. One GEMM instance that
// is the entire execution.
func sgemmWorkload() *Workload {
	src := `
void sgemm_kernel(int m, int n, int k, float* A, int lda, float* B, int ldb,
                  float* C, int ldc, float alpha, float beta) {
    for (int mm = 0; mm < m; mm++) {
        for (int nn = 0; nn < n; nn++) {
            float c = 0.0f;
            for (int i = 0; i < k; i++) {
                float a = A[mm + i * lda];
                float b = B[nn + i * ldb];
                c = c + a * b;
            }
            C[mm + nn * ldc] = C[mm + nn * ldc] * beta + alpha * c;
        }
    }
}

float sgemm_main(int m, int n, int k, float* A, float* B, float* C, float alpha, float beta, int iters) {
    for (int it = 0; it < iters; it++) {
        sgemm_kernel(m, n, k, A, m, B, n, C, m, alpha, beta);
    }
    return C[0];
}
`
	return &Workload{
		Name: "sgemm", Suite: "Parboil", Source: src, Entry: "sgemm_main",
		Exploitable: true,
		Expected:    map[idioms.Class]int{idioms.ClassMatrixOp: 1},
		Setup: func(scale int) []Arg {
			dim := 16 * scale
			return []Arg{
				IntArg(int64(dim)), IntArg(int64(dim)), IntArg(int64(dim)),
				BufArg(&BufSpec{Name: "A", Bytes: dim * dim * 4, Fill: F32Fill(170)}),
				BufArg(&BufSpec{Name: "B", Bytes: dim * dim * 4, Fill: F32Fill(171)}),
				BufArg(&BufSpec{Name: "C", Bytes: dim * dim * 4, Fill: F32Fill(172)}),
				FloatArg(1.5), FloatArg(0.5), IntArg(2),
			}
		},
	}
}

// spmv: sparse matrix-vector multiplication. The Parboil original stores the
// matrix in JDS format; the kernel here is the row-compressed equivalent
// (same indirect access structure), and the transformation stage maps it to
// the custom libSPMV backend as the paper did for this benchmark.
func spmvWorkload() *Workload {
	src := `
void spmv_kernel(int m, double* a, int* rowstr, int* colidx, double* x, double* y) {
    for (int r = 0; r < m; r++) {
        double d = 0.0;
        for (int e = rowstr[r]; e < rowstr[r+1]; e++) {
            d = d + a[e] * x[colidx[e]];
        }
        y[r] = d;
    }
}

double spmv_main(int m, double* a, int* rowstr, int* colidx, double* x, double* y, int iters) {
    for (int it = 0; it < iters; it++) {
        spmv_kernel(m, a, rowstr, colidx, x, y);
    }
    return y[0];
}
`
	return &Workload{
		Name: "spmv", Suite: "Parboil", Source: src, Entry: "spmv_main",
		Exploitable: true,
		Expected:    map[idioms.Class]int{idioms.ClassSparseMatrixOp: 1},
		Setup: func(scale int) []Arg {
			rows := 128 * scale
			rowstr, colidx, vals := CSRFill(180, rows, rows, 8)
			return []Arg{
				IntArg(int64(rows)), BufArg(vals), BufArg(rowstr), BufArg(colidx),
				BufArg(&BufSpec{Name: "x", Bytes: rows * 8, Fill: F64Fill(181)}),
				BufArg(&BufSpec{Name: "y", Bytes: rows * 8}),
				IntArg(25),
			}
		},
	}
}

// stencil: 3D 7-point Jacobi iteration over a 16x16x16 grid — the Parboil
// stencil benchmark. One 3D stencil instance that dominates execution.
func stencilWorkload() *Workload {
	src := `
void stencil_step(double* in, double* out, int n, double c0, double c1) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            for (int k = 1; k < n - 1; k++) {
                out[(i*16 + j)*16 + k] =
                    in[(i*16 + j)*16 + k] * c0
                  + (in[((i-1)*16 + j)*16 + k] + in[((i+1)*16 + j)*16 + k]
                   + in[(i*16 + (j-1))*16 + k] + in[(i*16 + (j+1))*16 + k]
                   + in[(i*16 + j)*16 + (k-1)] + in[(i*16 + j)*16 + (k+1)]) * c1;
            }
        }
    }
}

double stencil_main(double* in, double* out, int n, double c0, double c1, int iters) {
    for (int it = 0; it < iters; it++) {
        stencil_step(in, out, n, c0, c1);
        stencil_step(out, in, n, c0, c1);
    }
    return in[273];
}
`
	return &Workload{
		Name: "stencil", Suite: "Parboil", Source: src, Entry: "stencil_main",
		Exploitable: true,
		Expected:    map[idioms.Class]int{idioms.ClassStencil: 1},
		Setup: func(scale int) []Arg {
			n := 16
			return []Arg{
				BufArg(&BufSpec{Name: "in", Bytes: n * 16 * 16 * 8, Fill: F64Fill(190)}),
				BufArg(&BufSpec{Name: "out", Bytes: n * 16 * 16 * 8}),
				IntArg(int64(n)), FloatArg(0.5), FloatArg(0.08), IntArg(int64(5 * scale)),
			}
		},
	}
}

// tpacf: two-point angular correlation function. Pair separations are
// histogrammed with an expensive binning kernel that dominates execution;
// the mean separation is a scalar reduction.
func tpacfWorkload() *Workload {
	src := `
void tpacf_pairs(double* xs, double* ys, double* dots, int n) {
    int w = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            dots[w] = xs[i] * xs[j] + ys[i] * ys[j];
            w = w + 1;
        }
    }
}

void tpacf_bin(double* dots, int* bins, int npairs, int nb) {
    for (int p = 0; p < npairs; p++) {
        double d = dots[p];
        double ang = sqrt(fabs(1.0 - d * d) + 0.0001);
        int b = (int)(log(ang * 2.7182818 + 1.0) * (double)nb * 0.5);
        bins[b] += 1;
    }
}

double tpacf_mean(double* dots, int npairs) {
    double s = 0.0;
    for (int p = 0; p < npairs; p++) { s = s + dots[p] * 0.001; }
    return s;
}

double tpacf_main(double* xs, double* ys, double* dots, int* bins, int n, int nb, int iters) {
    double acc = 0.0;
    tpacf_pairs(xs, ys, dots, n);
    for (int it = 0; it < iters; it++) {
        tpacf_bin(dots, bins, n * n, nb);
    }
    acc = tpacf_mean(dots, n * n);
    return acc;
}
`
	return &Workload{
		Name: "tpacf", Suite: "Parboil", Source: src, Entry: "tpacf_main",
		Exploitable: true,
		Expected: map[idioms.Class]int{
			idioms.ClassScalarReduction: 1,
			idioms.ClassHistogram:       1,
		},
		Setup: func(scale int) []Arg {
			n := 32 * scale
			return []Arg{
				BufArg(&BufSpec{Name: "xs", Bytes: n * 8, Fill: F64FillUnit(200)}),
				BufArg(&BufSpec{Name: "ys", Bytes: n * 8, Fill: F64FillUnit(201)}),
				BufArg(&BufSpec{Name: "dots", Bytes: n * n * 8}),
				BufArg(&BufSpec{Name: "bins", Bytes: 64 * 4}),
				IntArg(int64(n)), IntArg(32), IntArg(6),
			}
		},
	}
}
