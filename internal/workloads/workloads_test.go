package workloads

import (
	"testing"

	"repro/internal/detect"
	"repro/internal/idioms"
	"repro/internal/interp"
)

// TestWorkloadCount checks the 21-benchmark roster of the paper's §7.
func TestWorkloadCount(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("workloads = %d, want 21", len(all))
	}
	nas, parboil := 0, 0
	for _, w := range all {
		switch w.Suite {
		case "NAS":
			nas++
		case "Parboil":
			parboil++
		default:
			t.Errorf("%s: unknown suite %q", w.Name, w.Suite)
		}
	}
	if nas != 10 || parboil != 11 {
		t.Errorf("suites = %d NAS + %d Parboil, want 10 + 11", nas, parboil)
	}
}

// TestWorkloadsCompile compiles every benchmark source.
func TestWorkloadsCompile(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			mod, err := w.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if mod.FunctionByName(w.Entry) == nil {
				t.Fatalf("entry %s missing", w.Entry)
			}
		})
	}
}

// TestWorkloadDetection verifies the per-benchmark idiom counts of the
// paper's Figure 16 — and hence the Table 1 totals.
func TestWorkloadDetection(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			mod, err := w.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := detect.Module(mod, detect.Options{})
			if err != nil {
				t.Fatalf("detect: %v", err)
			}
			got := res.CountByClass()
			for c, n := range w.Expected {
				if got[c] != n {
					t.Errorf("%s: %s = %d, want %d", w.Name, c, got[c], n)
				}
			}
			for c, n := range got {
				if w.Expected[c] != n {
					t.Errorf("%s: unexpected %s = %d (want %d)", w.Name, c, n, w.Expected[c])
				}
			}
			if t.Failed() {
				for _, inst := range res.Instances {
					t.Logf("  instance: %s in %s", inst.Idiom.Name, inst.Function.Ident)
				}
			}
		})
	}
}

// TestTable1Totals pins the headline numbers: 45 scalar reductions, 5
// histograms, 6 stencils, 1 matrix op, 3 sparse ops — 60 idioms in total.
func TestTable1Totals(t *testing.T) {
	want := map[idioms.Class]int{
		idioms.ClassScalarReduction: 45,
		idioms.ClassHistogram:       5,
		idioms.ClassStencil:         6,
		idioms.ClassMatrixOp:        1,
		idioms.ClassSparseMatrixOp:  3,
	}
	got := TotalExpected()
	total := 0
	for c, n := range want {
		if got[c] != n {
			t.Errorf("%s = %d, want %d", c, got[c], n)
		}
		total += got[c]
	}
	if total != 60 {
		t.Errorf("total = %d, want 60", total)
	}
}

// TestWorkloadsExecute runs every benchmark at scale 1 under the interpreter
// and checks it terminates with a value.
func TestWorkloadsExecute(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			mod, err := w.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := interp.NewMachine(mod)
			args := Materialize(w.Setup(1))
			res, err := m.Exec(mod.FunctionByName(w.Entry), args...)
			if err != nil {
				t.Fatalf("exec: %v", err)
			}
			_ = res
			if m.Counts.Steps == 0 {
				t.Error("no operations recorded")
			}
		})
	}
}

// TestByName exercises lookup.
func TestByName(t *testing.T) {
	if w := ByName("CG"); w == nil || w.Name != "CG" {
		t.Error("ByName(CG) failed")
	}
	if w := ByName("nonesuch"); w != nil {
		t.Error("ByName(nonesuch) must be nil")
	}
}

// TestExploitableRoster pins the ten benchmarks of Figures 17/18.
func TestExploitableRoster(t *testing.T) {
	want := map[string]bool{
		"CG": true, "EP": true, "IS": true, "MG": true,
		"histo": true, "lbm": true, "sgemm": true, "spmv": true,
		"stencil": true, "tpacf": true,
	}
	for _, w := range All() {
		if w.Exploitable != want[w.Name] {
			t.Errorf("%s: exploitable = %v, want %v", w.Name, w.Exploitable, want[w.Name])
		}
	}
}
