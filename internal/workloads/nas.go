package workloads

import (
	"repro/internal/idioms"
	"repro/internal/interp"
)

// NAS returns the ten NAS Parallel Benchmark workloads (SNU NPB sequential
// C distillations).
func NAS() []*Workload {
	return []*Workload{btWorkload(), cgWorkload(), dcWorkload(), epWorkload(),
		ftWorkload(), isWorkload(), luWorkload(), mgWorkload(), spWorkload(),
		uaWorkload()}
}

// BT: block tridiagonal solver. The solver sweeps are recurrences (not
// idiomatic); the rhs norms are scalar reductions.
func btWorkload() *Workload {
	src := `
void bt_solve_sweep(double* lhs, double* rhs, int n) {
    for (int i = 1; i < n; i++) {
        rhs[i] = rhs[i] - lhs[i] * rhs[i-1];
        lhs[i] = lhs[i] / (2.0 + lhs[i-1]);
    }
    for (int i = n - 2; i > 0; i--) {
        rhs[i] = rhs[i] - lhs[i] * rhs[i+1];
    }
}

double bt_rhs_norm(double* rhs, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + rhs[i] * rhs[i]; }
    return s;
}

double bt_u_norm(double* u, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + fabs(u[i]); }
    return s;
}

double bt_err_norm(double* u, double* exact, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        double d = u[i] - exact[i];
        s = s + d * d;
    }
    return s;
}

double bt_res_max(double* r, int n) {
    double m = 0.0;
    for (int i = 0; i < n; i++) {
        if (fabs(r[i]) > m) { m = fabs(r[i]); }
    }
    return m;
}

double bt_main(double* lhs, double* rhs, double* u, double* exact, int n, int iters) {
    double total = 0.0;
    for (int it = 0; it < iters; it++) {
        bt_solve_sweep(lhs, rhs, n);
        bt_solve_sweep(lhs, u, n);
        bt_solve_sweep(lhs, exact, n);
        bt_solve_sweep(lhs, rhs, n);
    }
    total = total + bt_rhs_norm(rhs, n) + bt_u_norm(u, n)
          + bt_err_norm(u, exact, n) + bt_res_max(rhs, n);
    return total;
}
`
	return &Workload{
		Name: "BT", Suite: "NAS", Source: src, Entry: "bt_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 4},
		Setup: func(scale int) []Arg {
			n := 256 * scale
			return []Arg{
				BufArg(&BufSpec{Name: "lhs", Bytes: n * 8, Fill: F64FillUnit(10)}),
				BufArg(&BufSpec{Name: "rhs", Bytes: n * 8, Fill: F64Fill(11)}),
				BufArg(&BufSpec{Name: "u", Bytes: n * 8, Fill: F64Fill(12)}),
				BufArg(&BufSpec{Name: "exact", Bytes: n * 8, Fill: F64Fill(13)}),
				IntArg(int64(n)), IntArg(12),
			}
		},
	}
}

// CG: conjugate gradient. The paper's flagship: the Figure 4 CSR SpMV plus
// the solver's dot products and norms; idioms dominate execution. As in the
// real NPB conj_grad, the CSR loop appears twice statically — once for
// q = A.p inside the iteration and once for the final residual r = A.z.
func cgWorkload() *Workload {
	src := `
void cg_spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}

void cg_residual(int m, double* a, int* rowstr, int* colidx, double* p, double* q) {
    for (int j = 0; j < m; j++) {
        double sum = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            sum = sum + a[k] * p[colidx[k]];
        }
        q[j] = sum;
    }
}

double cg_dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i] * y[i]; }
    return s;
}

double cg_norm2(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i] * x[i]; }
    return s;
}

double cg_diff_norm(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        double d = x[i] - y[i];
        s = s + d * d;
    }
    return s;
}

double cg_sum(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i] * 0.5; }
    return s;
}

double cg_abs_sum(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + fabs(x[i]); }
    return s;
}

double cg_max_abs(double* x, int n) {
    double m = 0.0;
    for (int i = 0; i < n; i++) {
        if (fabs(x[i]) > m) { m = fabs(x[i]); }
    }
    return m;
}

double cg_weighted(double* x, double* w, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i] * w[i] * 0.5; }
    return s;
}

double cg_main(int m, double* a, int* rowstr, int* colidx,
               double* z, double* r, double* p, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        cg_spmv(m, a, rowstr, colidx, z, r);
        double rho = cg_norm2(r, m);
        double alpha = rho / (cg_dot(p, r, m) + 1.0);
        cg_residual(m, a, rowstr, colidx, p, z);
        acc = acc + alpha + cg_sum(r, m) * 0.000001
            + cg_diff_norm(r, z, m) * 0.000001
            + cg_abs_sum(p, m) * 0.000001
            + cg_max_abs(r, m) + cg_weighted(r, p, m) * 0.000001;
    }
    return acc;
}
`
	return &Workload{
		Name: "CG", Suite: "NAS", Source: src, Entry: "cg_main",
		Exploitable: true,
		Expected: map[idioms.Class]int{
			idioms.ClassScalarReduction: 7,
			idioms.ClassSparseMatrixOp:  2,
		},
		Setup: func(scale int) []Arg {
			rows := 128 * scale
			perRow := 8
			rowstr, colidx, vals := CSRFill(20, rows, rows, perRow)
			return []Arg{
				IntArg(int64(rows)), BufArg(vals), BufArg(rowstr), BufArg(colidx),
				BufArg(&BufSpec{Name: "z", Bytes: rows * 8, Fill: F64Fill(21)}),
				BufArg(&BufSpec{Name: "r", Bytes: rows * 8}),
				BufArg(&BufSpec{Name: "p", Bytes: rows * 8, Fill: F64Fill(22)}),
				IntArg(25),
			}
		},
	}
}

// DC: data cube. Tuple/aggregation processing is branch-heavy and
// pointer-driven; a single checksum reduction is idiomatic.
func dcWorkload() *Workload {
	src := `
void dc_sort_pass(int* keys, int* tmp, int n) {
    for (int gap = n / 2; gap > 0; gap = gap / 2) {
        for (int i = gap; i < n; i++) {
            int v = keys[i];
            int j = i;
            while (j >= gap) {
                if (keys[j - gap] > v) {
                    keys[j] = keys[j - gap];
                    j = j - gap;
                } else {
                    break;
                }
            }
            keys[j] = v;
            tmp[i] = j;
        }
    }
}

double dc_checksum(double* view, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + view[i]; }
    return s;
}

double dc_main(int* keys, int* tmp, double* view, int n, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        dc_sort_pass(keys, tmp, n);
    }
    acc = dc_checksum(view, n);
    return acc;
}
`
	return &Workload{
		Name: "DC", Suite: "NAS", Source: src, Entry: "dc_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 1},
		Setup: func(scale int) []Arg {
			n := 256 * scale
			return []Arg{
				BufArg(&BufSpec{Name: "keys", Bytes: n * 4, Fill: I32FillMod(30, 1<<20)}),
				BufArg(&BufSpec{Name: "tmp", Bytes: n * 4}),
				BufArg(&BufSpec{Name: "view", Bytes: n * 8, Fill: F64Fill(31)}),
				IntArg(int64(n)), IntArg(6),
			}
		},
	}
}

// EP: embarrassingly parallel gaussian pairs. Half the time generates the
// pseudo-random stream (recurrence, not idiomatic), half tallies the
// histogram of pair annuli — the paper's ~50% coverage outlier.
func epWorkload() *Workload {
	src := `
void ep_generate(double* x, double* y, int n) {
    double seed = 0.314159265;
    for (int i = 0; i < n; i++) {
        seed = seed * 5.0 + 0.5;
        seed = seed - floor(seed);
        x[i] = 2.0 * seed - 1.0;
        seed = seed * 11.0 + 0.25;
        seed = seed - floor(seed);
        y[i] = 2.0 * seed - 1.0;
    }
}

void ep_tally(double* x, double* y, double* q, int n) {
    for (int i = 0; i < n; i++) {
        double t = x[i] * x[i] + y[i] * y[i];
        if (t <= 1.0) {
            double w = sqrt(0.0 - 2.0 * log(t + 0.000001) / (t + 0.5));
            int l = (int)(4.0 * t);
            q[l] += w;
        }
    }
}

double ep_count(double* q, int nq) {
    double s = 0.0;
    for (int i = 0; i < nq; i++) { s = s + q[i] * 2.0; }
    return s;
}

double ep_main(double* x, double* y, double* q, int n, int nq, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        ep_generate(x, y, n);
        ep_tally(x, y, q, n);
    }
    acc = ep_count(q, nq);
    return acc;
}
`
	return &Workload{
		Name: "EP", Suite: "NAS", Source: src, Entry: "ep_main",
		Exploitable: true,
		Expected: map[idioms.Class]int{
			idioms.ClassScalarReduction: 1,
			idioms.ClassHistogram:       1,
		},
		Setup: func(scale int) []Arg {
			n := 512 * scale
			return []Arg{
				BufArg(&BufSpec{Name: "x", Bytes: n * 8}),
				BufArg(&BufSpec{Name: "y", Bytes: n * 8}),
				BufArg(&BufSpec{Name: "q", Bytes: 8 * 8}),
				IntArg(int64(n)), IntArg(8), IntArg(1),
			}
		},
	}
}

// FT: 3D FFT. Butterflies are strided in-place recurrences; the per-
// iteration checksums are reductions.
func ftWorkload() *Workload {
	src := `
void ft_butterfly(double* re, double* im, int n) {
    for (int span = n / 2; span >= 1; span = span / 2) {
        for (int j = 0; j + span < n; j = j + 2 * span) {
            for (int k = 0; k < span; k++) {
                double ar = re[j + k];
                double br = re[j + k + span];
                double ai = im[j + k];
                double bi = im[j + k + span];
                re[j + k] = ar + br;
                im[j + k] = ai + bi;
                re[j + k + span] = ar - br;
                im[j + k + span] = ai - bi;
            }
        }
    }
}

double ft_checksum_re(double* re, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + re[i]; }
    return s;
}

double ft_checksum_im(double* im, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + im[i] * im[i]; }
    return s;
}

double ft_main(double* re, double* im, int n, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        ft_butterfly(re, im, n);
    }
    acc = ft_checksum_re(re, n) + ft_checksum_im(im, n);
    return acc;
}
`
	return &Workload{
		Name: "FT", Suite: "NAS", Source: src, Entry: "ft_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 2},
		Setup: func(scale int) []Arg {
			n := 256 * scale
			return []Arg{
				BufArg(&BufSpec{Name: "re", Bytes: n * 8, Fill: F64Fill(40)}),
				BufArg(&BufSpec{Name: "im", Bytes: n * 8, Fill: F64Fill(41)}),
				IntArg(int64(n)), IntArg(10),
			}
		},
	}
}

// IS: integer sort. Key counting is a histogram; the key extrema a
// reduction; both dominate.
func isWorkload() *Workload {
	src := `
void is_count(int* keys, int* counts, int n) {
    for (int i = 0; i < n; i++) {
        counts[keys[i]] += 1;
    }
}

int is_max_key(int* keys, int n) {
    int m = 0;
    for (int i = 0; i < n; i++) {
        if (keys[i] > m) { m = keys[i]; }
    }
    return m;
}

void is_scan(int* counts, int* starts, int nb) {
    int run = 0;
    for (int b = 0; b < nb; b++) {
        starts[b] = run;
        run = run + counts[b];
    }
}

int is_main(int* keys, int* counts, int* starts, int n, int nb, int iters) {
    int acc = 0;
    for (int it = 0; it < iters; it++) {
        is_count(keys, counts, n);
        acc = acc + is_max_key(keys, n);
        is_scan(counts, starts, nb);
    }
    return acc;
}
`
	return &Workload{
		Name: "IS", Suite: "NAS", Source: src, Entry: "is_main",
		Exploitable: true,
		Expected: map[idioms.Class]int{
			idioms.ClassScalarReduction: 1,
			idioms.ClassHistogram:       1,
		},
		Setup: func(scale int) []Arg {
			n := 2048 * scale
			nb := 64
			return []Arg{
				BufArg(&BufSpec{Name: "keys", Bytes: n * 4, Fill: I32FillMod(50, int32(nb))}),
				BufArg(&BufSpec{Name: "counts", Bytes: nb * 4}),
				BufArg(&BufSpec{Name: "starts", Bytes: nb * 4}),
				IntArg(int64(n)), IntArg(int64(nb)), IntArg(4),
			}
		},
	}
}

// LU: SSOR solver. Wavefront sweeps are recurrences; the residual norms (one
// loop per flow variable in the distillation) are reductions.
func luWorkload() *Workload {
	src := `
void lu_ssor_sweep(double* v, double* rsd, int n) {
    for (int i = 1; i < n; i++) {
        rsd[i] = rsd[i] - 0.5 * rsd[i-1] * v[i];
    }
    for (int i = n - 2; i >= 0; i--) {
        rsd[i] = rsd[i] - 0.5 * rsd[i+1] * v[i];
    }
}

double lu_norm_c1(double* r, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + r[i] * r[i]; }
    return s;
}
double lu_norm_c2(double* r, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + fabs(r[i]); }
    return s;
}
double lu_norm_c3(double* r, double* w, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + r[i] * w[i]; }
    return s;
}
double lu_norm_c4(double* r, int n) {
    double m = 0.0;
    for (int i = 0; i < n; i++) {
        if (r[i] > m) { m = r[i]; }
    }
    return m;
}
double lu_norm_c5(double* r, double* w, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        double d = r[i] - w[i];
        s = s + d * d;
    }
    return s;
}
double lu_norm_c6(double* r, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + sqrt(fabs(r[i])); }
    return s;
}

double lu_main(double* v, double* rsd, double* w, int n, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        lu_ssor_sweep(v, rsd, n);
        lu_ssor_sweep(w, rsd, n);
        lu_ssor_sweep(v, w, n);
    }
    acc = lu_norm_c1(rsd, n) + lu_norm_c2(rsd, n) + lu_norm_c3(rsd, w, n)
        + lu_norm_c4(rsd, n) + lu_norm_c5(rsd, w, n) + lu_norm_c6(rsd, n);
    return acc;
}
`
	return &Workload{
		Name: "LU", Suite: "NAS", Source: src, Entry: "lu_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 6},
		Setup: func(scale int) []Arg {
			n := 256 * scale
			return []Arg{
				BufArg(&BufSpec{Name: "v", Bytes: n * 8, Fill: F64FillUnit(60)}),
				BufArg(&BufSpec{Name: "rsd", Bytes: n * 8, Fill: F64Fill(61)}),
				BufArg(&BufSpec{Name: "w", Bytes: n * 8, Fill: F64Fill(62)}),
				IntArg(int64(n)), IntArg(12),
			}
		},
	}
}

// MG: multigrid. The resid and psinv smoothers are 3D stencils; the final
// norm is a reduction; together they dominate execution.
func mgWorkload() *Workload {
	src := `
void mg_resid(double* u, double* r, int n) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            for (int k = 1; k < n - 1; k++) {
                r[(i*18 + j)*18 + k] =
                    u[(i*18 + j)*18 + k] * -2.0
                  + u[((i-1)*18 + j)*18 + k] + u[((i+1)*18 + j)*18 + k]
                  + u[(i*18 + (j-1))*18 + k] + u[(i*18 + (j+1))*18 + k]
                  + u[(i*18 + j)*18 + (k-1)] + u[(i*18 + j)*18 + (k+1)];
            }
        }
    }
}

void mg_psinv(double* r, double* u, int n) {
    for (int i = 1; i < n - 1; i++) {
        for (int j = 1; j < n - 1; j++) {
            for (int k = 1; k < n - 1; k++) {
                u[(i*18 + j)*18 + k] = 0.25 * (
                    r[(i*18 + j)*18 + k] * 2.0
                  + r[((i-1)*18 + j)*18 + k] + r[((i+1)*18 + j)*18 + k]
                  + r[(i*18 + (j-1))*18 + k] + r[(i*18 + (j+1))*18 + k]);
            }
        }
    }
}

double mg_norm(double* r, int n3) {
    double s = 0.0;
    for (int i = 0; i < n3; i++) { s = s + r[i] * r[i]; }
    return s;
}

double mg_main(double* u, double* r, int n, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        mg_resid(u, r, n);
        mg_psinv(r, u, n);
    }
    acc = mg_norm(r, n * 18 * 18);
    return acc;
}
`
	return &Workload{
		Name: "MG", Suite: "NAS", Source: src, Entry: "mg_main",
		Exploitable: true,
		Expected: map[idioms.Class]int{
			idioms.ClassScalarReduction: 1,
			idioms.ClassStencil:         2,
		},
		Setup: func(scale int) []Arg {
			_ = scale // grid fixed by the flattened stride; iterate more instead
			n := 18
			return []Arg{
				BufArg(&BufSpec{Name: "u", Bytes: n * 18 * 18 * 8, Fill: F64Fill(70)}),
				BufArg(&BufSpec{Name: "r", Bytes: n * 18 * 18 * 8, Fill: F64Fill(71)}),
				IntArg(int64(n)), IntArg(int64(2 * scale)),
			}
		},
	}
}

// SP: scalar pentadiagonal solver. Like BT: sweeps plus reduction norms.
func spWorkload() *Workload {
	src := `
void sp_sweep(double* lhs, double* rhs, int n) {
    for (int i = 2; i < n; i++) {
        rhs[i] = rhs[i] - lhs[i] * rhs[i-1] - 0.25 * lhs[i] * rhs[i-2];
    }
}

double sp_rhs_norm(double* rhs, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + rhs[i] * rhs[i]; }
    return s;
}

double sp_err_sum(double* u, double* exact, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + fabs(u[i] - exact[i]); }
    return s;
}

double sp_u_max(double* u, int n) {
    double m = 0.0;
    for (int i = 0; i < n; i++) {
        if (u[i] > m) { m = u[i]; }
    }
    return m;
}

double sp_main(double* lhs, double* rhs, double* exact, int n, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        sp_sweep(lhs, rhs, n);
        sp_sweep(lhs, exact, n);
        sp_sweep(rhs, lhs, n);
    }
    acc = sp_rhs_norm(rhs, n) + sp_err_sum(rhs, exact, n) + sp_u_max(rhs, n);
    return acc;
}
`
	return &Workload{
		Name: "SP", Suite: "NAS", Source: src, Entry: "sp_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 3},
		Setup: func(scale int) []Arg {
			n := 256 * scale
			return []Arg{
				BufArg(&BufSpec{Name: "lhs", Bytes: n * 8, Fill: F64FillUnit(80)}),
				BufArg(&BufSpec{Name: "rhs", Bytes: n * 8, Fill: F64Fill(81)}),
				BufArg(&BufSpec{Name: "exact", Bytes: n * 8, Fill: F64Fill(82)}),
				IntArg(int64(n)), IntArg(12),
			}
		},
	}
}

// UA: unstructured adaptive mesh. Mesh adaptation is pointer-chasing and
// branching; element quality metrics and integrals are many small
// reductions (UA has the most of any benchmark).
func uaWorkload() *Workload {
	src := `
void ua_adapt(int* next, int* flags, int n) {
    int cur = 0;
    int steps = 0;
    while (steps < n) {
        flags[cur] = flags[cur] + 1;
        cur = next[cur];
        steps++;
    }
}

double ua_q1(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}
double ua_q2(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i] * a[i]; }
    return s;
}
double ua_q3(double* a, double* b, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i] * b[i]; }
    return s;
}
double ua_q4(double* a, int n) {
    double m = 0.0;
    for (int i = 0; i < n; i++) {
        if (a[i] > m) { m = a[i]; }
    }
    return m;
}
double ua_q5(double* a, int n) {
    double m = 1000000.0;
    for (int i = 0; i < n; i++) {
        if (a[i] < m) { m = a[i]; }
    }
    return m;
}
double ua_q6(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i] * a[i] * a[i]; }
    return s;
}
double ua_q7(double* a, double* b, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + fabs(a[i] - b[i]); }
    return s;
}
double ua_q8(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + sqrt(fabs(a[i])); }
    return s;
}
double ua_q9(double* a, double* b, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i] * b[i] * b[i]; }
    return s;
}
double ua_q10(double* a, int n) {
    double s = 1.0;
    for (int i = 0; i < n; i++) { s = s * (1.0 + a[i] * 0.001); }
    return s;
}

double ua_main(int* next, int* flags, double* a, double* b, int n, int iters) {
    double acc = 0.0;
    for (int it = 0; it < iters; it++) {
        ua_adapt(next, flags, n * 16);
    }
    acc = ua_q1(a, n) + ua_q2(a, n) + ua_q3(a, b, n) + ua_q4(a, n)
        + ua_q5(a, n) + ua_q6(a, n) + ua_q7(a, b, n) + ua_q8(a, n)
        + ua_q9(a, b, n) + ua_q10(a, n);
    return acc;
}
`
	return &Workload{
		Name: "UA", Suite: "NAS", Source: src, Entry: "ua_main",
		Expected: map[idioms.Class]int{idioms.ClassScalarReduction: 10},
		Setup: func(scale int) []Arg {
			n := 128 * scale
			return []Arg{
				BufArg(&BufSpec{Name: "next", Bytes: n * 4, Fill: func(b *interp.Buffer) {
					for i := 0; i < n; i++ {
						b.SetInt32(i, int32((i*7+3)%n))
					}
				}}),
				BufArg(&BufSpec{Name: "flags", Bytes: n * 4}),
				BufArg(&BufSpec{Name: "a", Bytes: n * 8, Fill: F64Fill(90)}),
				BufArg(&BufSpec{Name: "b", Bytes: n * 8, Fill: F64Fill(91)}),
				IntArg(int64(n)), IntArg(10),
			}
		},
	}
}
