// Package httpapi serves the idiomatic.Service wire model over HTTP — the
// ROADMAP's network front door. The endpoints mirror the in-process
// streaming semantics exactly:
//
//	POST /v1/detect         single-shot JSON: body is one DetectRequest or an
//	                        array of them; the response carries every result
//	                        in submit order.
//	POST /v1/detect/stream  the same body, answered as NDJSON: one
//	                        DetectResult per line in completion order, each
//	                        carrying its submit-order sequence number (the
//	                        same contract as detect.Stream).
//	POST /v1/match          the end-to-end pipeline: detect → transformation
//	                        plans → backend selection. Body is one
//	                        MatchRequest or an array; results in submit
//	                        order.
//	POST /v1/match/stream   the same body as NDJSON, one MatchResult per
//	                        line in completion order (DetectResult sequence
//	                        semantics).
//	POST /v1/idioms         register an idiom pack ({"pack", "source",
//	                        "idioms": [{"top", ...}]}) — live, no rebuild.
//	GET  /v1/idioms         roster introspection (built-in roster plus
//	                        registered packs; ?pack=NAME for one pack).
//	GET  /v1/backends       heterogeneous API profiles and device models
//	                        backend selection ranks over.
//	GET  /v1/clients        admin surface: authenticated clients with weights
//	                        and live fairness gauges (admin key required).
//	GET  /v1/memo/snapshot  admin surface: stream the replica's durable warm
//	                        state (packs + memo blobs) as NDJSON for a booting
//	                        replica's -warm-from (requires -state-dir).
//	GET  /healthz           liveness.
//	GET  /statsz            versioned idiomatic.StatsResponse: queue depth,
//	                        worker utilization, memo hit rate, per-client
//	                        fairness rows.
//
// Multi-tenant serving: NewServer with Options.Keys enables API-key auth
// (static keyfile, idiomd -keys); authenticated requests carry their tenant
// identity into the service's weighted-fair intake. The X-Deadline-Ms
// request header (or the deadline_ms body field) bounds a request's total
// latency — expiry sheds queued work and aborts constraint solving
// mid-search, reported in-band per module, never as a torn stream.
//
// Every non-2xx response is the v1 error envelope
// {"error":{"code","message","retry_after_ms?"}} (idiomatic.ErrorEnvelope).
// Intake overload maps to 429 "overloaded" with a Retry-After hint; a batch
// larger than the queue limit is 429 "batch_too_large" WITHOUT Retry-After
// (split it — retrying cannot succeed); token-bucket rejections are 429
// "rate_limited" with the bucket's refill hint. Unknown pack, idiom or
// target device is 400, never an empty 200; cancelled client connections
// propagate as context cancellation into the service, shedding the
// request's remaining compile and solver work.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/idiomatic"
	"repro/internal/pipeline"
)

// maxBodyBytes bounds request bodies; legacy sources a detection service
// ingests are text files, not gigabytes.
const maxBodyBytes = 16 << 20

// Options configure the HTTP front door beyond the service it serves.
type Options struct {
	// Keys enables API-key auth: every /v1/* request must present a known
	// key (Authorization: Bearer <key> or X-API-Key) and runs under its
	// tenant identity; /healthz and /statsz stay open. Nil disables auth —
	// all traffic is the anonymous tier.
	Keys *Keyring
}

// New returns the HTTP handler serving svc with no auth (anonymous tier).
func New(svc *idiomatic.Service) http.Handler { return NewServer(svc, Options{}) }

// NewServer returns the HTTP handler serving svc under the given options.
func NewServer(svc *idiomatic.Service, o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", methods(map[string]http.HandlerFunc{
		http.MethodPost: func(w http.ResponseWriter, r *http.Request) { handleDetect(svc, w, r) },
	}))
	mux.HandleFunc("/v1/detect/stream", methods(map[string]http.HandlerFunc{
		http.MethodPost: func(w http.ResponseWriter, r *http.Request) { handleStream(svc, w, r) },
	}))
	mux.HandleFunc("/v1/match", methods(map[string]http.HandlerFunc{
		http.MethodPost: func(w http.ResponseWriter, r *http.Request) { handleMatch(svc, w, r) },
	}))
	mux.HandleFunc("/v1/match/stream", methods(map[string]http.HandlerFunc{
		http.MethodPost: func(w http.ResponseWriter, r *http.Request) { handleMatchStream(svc, w, r) },
	}))
	mux.HandleFunc("/v1/idioms", methods(map[string]http.HandlerFunc{
		http.MethodPost: func(w http.ResponseWriter, r *http.Request) { handleRegisterPack(svc, w, r) },
		http.MethodGet:  func(w http.ResponseWriter, r *http.Request) { handleIdioms(svc, w, r) },
	}))
	mux.HandleFunc("/v1/backends", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{
				"devices":  svc.DevicePlatforms(),
				"backends": svc.Backends(),
			})
		},
	}))
	mux.HandleFunc("/v1/clients", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) { handleClients(svc, o.Keys, w, r) },
	}))
	mux.HandleFunc("/v1/memo/snapshot", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) { handleMemoSnapshot(svc, o.Keys, w, r) },
	}))
	mux.HandleFunc("/healthz", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		},
	}))
	mux.HandleFunc("/statsz", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, svc.Stats())
		},
	}))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, idiomatic.CodeNotFound,
			fmt.Sprintf("no such endpoint %s", r.URL.Path))
	})
	var h http.Handler = mux
	if o.Keys != nil {
		h = authenticate(o.Keys, h)
	}
	return h
}

// methods dispatches on the request method, answering anything unlisted with
// the enveloped 405 (HEAD rides a GET registration, as with Go's mux).
func methods(handlers map[string]http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := r.Method
		if m == http.MethodHead {
			m = http.MethodGet
		}
		if fn, ok := handlers[m]; ok {
			fn(w, r)
			return
		}
		writeError(w, http.StatusMethodNotAllowed, idiomatic.CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s", r.Method, r.URL.Path))
	}
}

func handleIdioms(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("pack"); name != "" {
		pack, ok := svc.PackByName(name)
		if !ok {
			writeError(w, http.StatusNotFound, idiomatic.CodeNotFound, fmt.Sprintf("unknown pack %q", name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"pack": pack})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"idioms":        svc.Idioms(),
		"library_lines": idiomatic.LibraryLineCount(),
		"packs":         svc.Packs(),
	})
}

// ClientInfo is one row of the GET /v1/clients admin listing: the keyring
// identity joined with the live fairness gauges of the service (zero gauges
// for a client that has not sent traffic yet).
type ClientInfo struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	Admin  bool   `json:"admin,omitempty"`
	// Live usage, mirroring idiomatic.ClientStatsRow.
	InFlight    int64 `json:"in_flight"`
	IntakeQueue int   `json:"intake_queue"`
	ReadyQueue  int   `json:"ready_queue"`
	Served      int64 `json:"served"`
	Shed        int64 `json:"shed"`
}

// handleClients serves the admin listing. It is gated twice: the surface
// requires auth to be enabled at all (401 otherwise — there are no clients
// to list on an anonymous server) and the presented key must carry the
// admin role (403 otherwise).
func handleClients(svc *idiomatic.Service, kr *Keyring, w http.ResponseWriter, r *http.Request) {
	if kr == nil {
		writeError(w, http.StatusUnauthorized, idiomatic.CodeUnauthenticated,
			"client listing requires API-key auth (idiomd -keys)")
		return
	}
	cl, _ := idiomatic.ClientFromContext(r.Context())
	if !cl.Admin {
		writeError(w, http.StatusForbidden, idiomatic.CodeForbidden,
			fmt.Sprintf("client %q lacks the admin role", cl.Name))
		return
	}
	rows := map[string]idiomatic.ClientStatsRow{}
	for _, row := range svc.Stats().Clients {
		rows[row.Name] = row
	}
	out := []ClientInfo{}
	for _, known := range kr.Clients() {
		info := ClientInfo{Name: known.Name, Weight: known.Weight, Admin: known.Admin}
		if row, ok := rows[known.Name]; ok {
			info.Weight = row.Weight
			info.InFlight = row.InFlight
			info.IntakeQueue = row.IntakeQueue
			info.ReadyQueue = row.ReadyQueue
			info.Served = row.Served
			info.Shed = row.Shed
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"clients": out})
}

// handleMemoSnapshot streams the replica's durable warm state (packs + memo
// blobs) as NDJSON — the warm-handoff source a booting replica's -warm-from
// ingests. On a server with auth enabled the key must carry the admin role
// (the snapshot exposes every tenant's solved shapes); without auth the
// surface is open like the rest of the API. 404 without a state dir.
func handleMemoSnapshot(svc *idiomatic.Service, kr *Keyring, w http.ResponseWriter, r *http.Request) {
	if kr != nil {
		cl, _ := idiomatic.ClientFromContext(r.Context())
		if !cl.Admin {
			writeError(w, http.StatusForbidden, idiomatic.CodeForbidden,
				fmt.Sprintf("client %q lacks the admin role", cl.Name))
			return
		}
	}
	if !svc.StoreEnabled() {
		writeError(w, http.StatusNotFound, idiomatic.CodeNotFound,
			"memo snapshots require a durable state dir (idiomd -state-dir)")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Mid-stream failures surface as a truncated body; the ingest side
	// rejects torn NDJSON, so a partial snapshot is never half-applied.
	_ = svc.WriteMemoSnapshot(w)
}

// readBody reads the (bounded) request body, handling the oversize error.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, idiomatic.CodeBodyTooLarge,
				fmt.Sprintf("body exceeds %d bytes", mbe.Limit))
			return nil, false
		}
		badRequest(w, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return body, true
}

// decodeBatch accepts either a single request object or a JSON array of
// them, so `curl -d '{"name":...,"source":...}'` works without batch
// ceremony. It serves both the detect and the match endpoints.
func decodeBatch[T any](w http.ResponseWriter, r *http.Request) ([]T, bool) {
	body, ok := readBody(w, r)
	if !ok {
		return nil, false
	}
	body = bytes.TrimLeft(body, " \t\r\n")
	if len(body) > 0 && body[0] == '[' {
		var reqs []T
		if err := json.Unmarshal(body, &reqs); err != nil {
			badRequest(w, fmt.Errorf("invalid request array: %w", err))
			return nil, false
		}
		if len(reqs) == 0 {
			badRequest(w, errors.New("empty request batch"))
			return nil, false
		}
		return reqs, true
	}
	var req T
	if err := json.Unmarshal(body, &req); err != nil {
		badRequest(w, fmt.Errorf("invalid request: %w", err))
		return nil, false
	}
	return []T{req}, true
}

func decodeRequests(w http.ResponseWriter, r *http.Request) ([]idiomatic.DetectRequest, bool) {
	return decodeBatch[idiomatic.DetectRequest](w, r)
}

// deadlineHeader parses the optional X-Deadline-Ms request header. The
// header is the whole-request default; a request body's own deadline_ms
// field takes precedence per entry.
func deadlineHeader(w http.ResponseWriter, r *http.Request) (int64, bool) {
	h := r.Header.Get("X-Deadline-Ms")
	if h == "" {
		return 0, true
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		badRequest(w, fmt.Errorf("invalid X-Deadline-Ms %q (want a positive integer)", h))
		return 0, false
	}
	return ms, true
}

func handleDetect(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	reqs, ok := decodeRequests(w, r)
	if !ok {
		return
	}
	ms, ok := deadlineHeader(w, r)
	if !ok {
		return
	}
	for i := range reqs {
		if reqs[i].DeadlineMs == 0 {
			reqs[i].DeadlineMs = ms
		}
	}
	results, err := svc.DetectBatch(r.Context(), reqs)
	if err != nil {
		intakeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func handleStream(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	reqs, ok := decodeRequests(w, r)
	if !ok {
		return
	}
	ms, ok := deadlineHeader(w, r)
	if !ok {
		return
	}
	for i := range reqs {
		if reqs[i].DeadlineMs == 0 {
			reqs[i].DeadlineMs = ms
		}
	}
	ch, err := svc.DetectStream(r.Context(), reqs)
	if err != nil {
		intakeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res := range ch {
		if err := enc.Encode(res); err != nil {
			// Client gone; the request context cancellation already sheds the
			// remaining work. Keep draining so the channel's senders finish.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func handleMatch(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	reqs, ok := decodeBatch[idiomatic.MatchRequest](w, r)
	if !ok {
		return
	}
	ms, ok := deadlineHeader(w, r)
	if !ok {
		return
	}
	for i := range reqs {
		if reqs[i].DeadlineMs == 0 {
			reqs[i].DeadlineMs = ms
		}
	}
	results, err := svc.MatchBatch(r.Context(), reqs)
	if err != nil {
		intakeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func handleMatchStream(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	reqs, ok := decodeBatch[idiomatic.MatchRequest](w, r)
	if !ok {
		return
	}
	ms, ok := deadlineHeader(w, r)
	if !ok {
		return
	}
	for i := range reqs {
		if reqs[i].DeadlineMs == 0 {
			reqs[i].DeadlineMs = ms
		}
	}
	ch, err := svc.MatchStream(r.Context(), reqs)
	if err != nil {
		intakeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res := range ch {
		if err := enc.Encode(res); err != nil {
			// Client gone; keep draining so the channel's senders finish.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// packRequest is the POST /v1/idioms body.
type packRequest struct {
	Pack   string              `json:"pack"`
	Source string              `json:"source"`
	Idioms []idiomatic.TopSpec `json:"idioms"`
}

// handleRegisterPack installs an idiom pack. Validation (IDL parse, top
// constraint resolution, Prepare) is idiomatic.Service.RegisterPack — the
// same code path `idlc -pack` runs, so CLI and HTTP report identical errors.
func handleRegisterPack(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req packRequest
	if err := json.Unmarshal(body, &req); err != nil {
		badRequest(w, fmt.Errorf("invalid pack registration: %w", err))
		return
	}
	info, err := svc.RegisterPack(req.Pack, req.Source, req.Idioms)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"pack": info})
}

// intakeError maps service intake failures onto the error envelope. The
// three 429 flavors are distinct codes: "batch_too_large" (no Retry-After —
// the batch can never fit, split it), "rate_limited" (the client's token
// bucket is empty; retry after its refill hint) and "overloaded" (the queue
// is transiently full; back off briefly). Closed is 503, anything else
// (invalid request) is 400.
func intakeError(w http.ResponseWriter, err error) {
	var rl *pipeline.RateLimitedError
	switch {
	case errors.Is(err, idiomatic.ErrBatchTooLarge):
		writeError(w, http.StatusTooManyRequests, idiomatic.CodeBatchTooLarge, err.Error())
	case errors.As(err, &rl):
		writeErrorRetry(w, http.StatusTooManyRequests, idiomatic.CodeRateLimited, err.Error(), rl.RetryAfter)
	case errors.Is(err, idiomatic.ErrOverloaded):
		writeErrorRetry(w, http.StatusTooManyRequests, idiomatic.CodeOverloaded, err.Error(), time.Second)
	case errors.Is(err, idiomatic.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, idiomatic.CodeUnavailable, err.Error())
	default:
		badRequest(w, err)
	}
}

func badRequest(w http.ResponseWriter, err error) {
	writeError(w, http.StatusBadRequest, idiomatic.CodeInvalidRequest, err.Error())
}

// writeError writes the v1 error envelope with no retry hint.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, idiomatic.ErrorEnvelope{Error: idiomatic.ErrorBody{Code: code, Message: message}})
}

// writeErrorRetry writes the v1 error envelope with a retry hint: the
// millisecond-precision retry_after_ms field plus the legacy whole-second
// Retry-After header (rounded up, so header-only clients never retry early).
func writeErrorRetry(w http.ResponseWriter, status int, code, message string, retry time.Duration) {
	ms := retry.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	secs := (ms + 999) / 1000
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, idiomatic.ErrorEnvelope{Error: idiomatic.ErrorBody{
		Code: code, Message: message, RetryAfterMs: ms,
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
