// Package httpapi serves the idiomatic.Service wire model over HTTP — the
// ROADMAP's network front door. The endpoints mirror the in-process
// streaming semantics exactly:
//
//	POST /v1/detect         single-shot JSON: body is one DetectRequest or an
//	                        array of them; the response carries every result
//	                        in submit order.
//	POST /v1/detect/stream  the same body, answered as NDJSON: one
//	                        DetectResult per line in completion order, each
//	                        carrying its submit-order sequence number (the
//	                        same contract as detect.Stream).
//	POST /v1/match          the end-to-end pipeline: detect → transformation
//	                        plans → backend selection. Body is one
//	                        MatchRequest or an array; results in submit
//	                        order.
//	POST /v1/match/stream   the same body as NDJSON, one MatchResult per
//	                        line in completion order (DetectResult sequence
//	                        semantics).
//	POST /v1/idioms         register an idiom pack ({"pack", "source",
//	                        "idioms": [{"top", ...}]}) — live, no rebuild.
//	GET  /v1/idioms         roster introspection (built-in roster plus
//	                        registered packs; ?pack=NAME for one pack).
//	GET  /v1/backends       heterogeneous API profiles and device models
//	                        backend selection ranks over.
//	GET  /healthz           liveness.
//	GET  /statsz            queue depth, worker utilization, memo hit rate.
//
// Intake overload (idiomatic.ErrOverloaded) maps to 429 with a Retry-After
// hint; unknown pack, idiom or target device is 400, never an empty 200;
// cancelled client connections propagate as context cancellation into
// the service, shedding the request's remaining compile and solver work.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/idiomatic"
)

// maxBodyBytes bounds request bodies; legacy sources a detection service
// ingests are text files, not gigabytes.
const maxBodyBytes = 16 << 20

// New returns the HTTP handler serving svc.
func New(svc *idiomatic.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", func(w http.ResponseWriter, r *http.Request) {
		handleDetect(svc, w, r)
	})
	mux.HandleFunc("POST /v1/detect/stream", func(w http.ResponseWriter, r *http.Request) {
		handleStream(svc, w, r)
	})
	mux.HandleFunc("POST /v1/match", func(w http.ResponseWriter, r *http.Request) {
		handleMatch(svc, w, r)
	})
	mux.HandleFunc("POST /v1/match/stream", func(w http.ResponseWriter, r *http.Request) {
		handleMatchStream(svc, w, r)
	})
	mux.HandleFunc("POST /v1/idioms", func(w http.ResponseWriter, r *http.Request) {
		handleRegisterPack(svc, w, r)
	})
	mux.HandleFunc("GET /v1/idioms", func(w http.ResponseWriter, r *http.Request) {
		if name := r.URL.Query().Get("pack"); name != "" {
			pack, ok := svc.PackByName(name)
			if !ok {
				writeJSON(w, http.StatusNotFound, map[string]any{
					"error": fmt.Sprintf("unknown pack %q", name),
				})
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"pack": pack})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"idioms":        svc.Idioms(),
			"library_lines": idiomatic.LibraryLineCount(),
			"packs":         svc.Packs(),
		})
	})
	mux.HandleFunc("GET /v1/backends", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"devices":  svc.DevicePlatforms(),
			"backends": svc.Backends(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	return mux
}

// readBody reads the (bounded) request body, handling the oversize error.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error": fmt.Sprintf("body exceeds %d bytes", mbe.Limit),
			})
			return nil, false
		}
		badRequest(w, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return body, true
}

// decodeBatch accepts either a single request object or a JSON array of
// them, so `curl -d '{"name":...,"source":...}'` works without batch
// ceremony. It serves both the detect and the match endpoints.
func decodeBatch[T any](w http.ResponseWriter, r *http.Request) ([]T, bool) {
	body, ok := readBody(w, r)
	if !ok {
		return nil, false
	}
	body = bytes.TrimLeft(body, " \t\r\n")
	if len(body) > 0 && body[0] == '[' {
		var reqs []T
		if err := json.Unmarshal(body, &reqs); err != nil {
			badRequest(w, fmt.Errorf("invalid request array: %w", err))
			return nil, false
		}
		if len(reqs) == 0 {
			badRequest(w, errors.New("empty request batch"))
			return nil, false
		}
		return reqs, true
	}
	var req T
	if err := json.Unmarshal(body, &req); err != nil {
		badRequest(w, fmt.Errorf("invalid request: %w", err))
		return nil, false
	}
	return []T{req}, true
}

func decodeRequests(w http.ResponseWriter, r *http.Request) ([]idiomatic.DetectRequest, bool) {
	return decodeBatch[idiomatic.DetectRequest](w, r)
}

func handleDetect(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	reqs, ok := decodeRequests(w, r)
	if !ok {
		return
	}
	results, err := svc.DetectBatch(r.Context(), reqs)
	if err != nil {
		intakeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func handleStream(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	reqs, ok := decodeRequests(w, r)
	if !ok {
		return
	}
	ch, err := svc.DetectStream(r.Context(), reqs)
	if err != nil {
		intakeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res := range ch {
		if err := enc.Encode(res); err != nil {
			// Client gone; the request context cancellation already sheds the
			// remaining work. Keep draining so the channel's senders finish.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func handleMatch(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	reqs, ok := decodeBatch[idiomatic.MatchRequest](w, r)
	if !ok {
		return
	}
	results, err := svc.MatchBatch(r.Context(), reqs)
	if err != nil {
		intakeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func handleMatchStream(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	reqs, ok := decodeBatch[idiomatic.MatchRequest](w, r)
	if !ok {
		return
	}
	ch, err := svc.MatchStream(r.Context(), reqs)
	if err != nil {
		intakeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res := range ch {
		if err := enc.Encode(res); err != nil {
			// Client gone; keep draining so the channel's senders finish.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// packRequest is the POST /v1/idioms body.
type packRequest struct {
	Pack   string              `json:"pack"`
	Source string              `json:"source"`
	Idioms []idiomatic.TopSpec `json:"idioms"`
}

// handleRegisterPack installs an idiom pack. Validation (IDL parse, top
// constraint resolution, Prepare) is idiomatic.Service.RegisterPack — the
// same code path `idlc -pack` runs, so CLI and HTTP report identical errors.
func handleRegisterPack(svc *idiomatic.Service, w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req packRequest
	if err := json.Unmarshal(body, &req); err != nil {
		badRequest(w, fmt.Errorf("invalid pack registration: %w", err))
		return
	}
	info, err := svc.RegisterPack(req.Pack, req.Source, req.Idioms)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"pack": info})
}

// intakeError maps service intake failures to HTTP statuses: overload is the
// load-shedding 429 (with a Retry-After hint only when retrying can help —
// a batch larger than the queue can never fit and must be split instead),
// closed is 503, anything else (invalid request) is 400.
func intakeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, idiomatic.ErrBatchTooLarge):
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error()})
	case errors.Is(err, idiomatic.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error()})
	case errors.Is(err, idiomatic.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
	default:
		badRequest(w, err)
	}
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
