package httpapi_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/idiomatic"
	"repro/internal/workloads"
)

// streamSuite posts the full 21-workload suite to /v1/detect/stream and
// returns the results reassembled by sequence number.
func streamSuite(t *testing.T, url string, body []byte) []idiomatic.DetectResult {
	t.Helper()
	resp, err := http.Post(url+"/v1/detect/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	n := len(workloads.All())
	got := make([]idiomatic.DetectResult, n)
	seen := make([]bool, n)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var res idiomatic.DetectResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatal(err)
		}
		if res.Err != "" {
			t.Fatalf("seq %d (%s): %s", res.Seq, res.Name, res.Err)
		}
		if res.Seq < 0 || res.Seq >= n || seen[res.Seq] {
			t.Fatalf("bad or duplicate seq %d", res.Seq)
		}
		got[res.Seq], seen[res.Seq] = res, true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("seq %d never delivered", i)
		}
	}
	return got
}

// TestStreamReorderByteIdenticalToOff pins the PR's wire-level acceptance
// criterion: a server running the default prune=reorder mode streams
// byte-identical NDJSON (canonical encoding — run-dependent timing and memo
// counters zeroed, everything else exact, solver step counts included) to a
// server with the prescreen disabled, across the whole 21-workload suite.
// Reordering is scheduling-only; no client can observe it.
func TestStreamReorderByteIdenticalToOff(t *testing.T) {
	opts := idiomatic.RequestOptions{Solutions: true}
	body := suiteBody(t, opts)

	offTS, _ := newServer(t, idiomatic.ServiceOptions{Workers: 4, Prune: "off"})
	reorderTS, _ := newServer(t, idiomatic.ServiceOptions{Workers: 4, Prune: "reorder"})

	want := streamSuite(t, offTS.URL, body)
	got := streamSuite(t, reorderTS.URL, body)
	for i := range want {
		if g, w := canonical(t, got[i]), canonical(t, want[i]); g != w {
			t.Errorf("seq %d (%s) differs between prune modes:\n  reorder: %s\n  off:     %s",
				i, want[i].Name, g, w)
		}
	}
}

// TestStreamPruneKeepsAllMatches asserts prune=on over the same suite streams
// the same findings (idiom, function, claims — solver steps may legitimately
// shrink) as the prescreen-free server: skipping is restricted to provably
// unmatchable pairs, so no match a client would have seen can disappear.
func TestStreamPruneKeepsAllMatches(t *testing.T) {
	opts := idiomatic.RequestOptions{Solutions: true}
	body := suiteBody(t, opts)

	offTS, _ := newServer(t, idiomatic.ServiceOptions{Workers: 4, Prune: "off"})
	onTS, _ := newServer(t, idiomatic.ServiceOptions{Workers: 4, Prune: "on"})

	want := streamSuite(t, offTS.URL, body)
	got := streamSuite(t, onTS.URL, body)
	total := 0
	for i := range want {
		wf, err := json.Marshal(want[i].Findings)
		if err != nil {
			t.Fatal(err)
		}
		gf, err := json.Marshal(got[i].Findings)
		if err != nil {
			t.Fatal(err)
		}
		if string(wf) != string(gf) {
			t.Errorf("seq %d (%s): findings differ under prune=on:\n  on:  %s\n  off: %s",
				i, want[i].Name, gf, wf)
		}
		total += len(want[i].Findings)
	}
	if total == 0 {
		t.Fatal("suite produced no findings; assertion is vacuous")
	}
}
