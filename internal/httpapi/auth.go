package httpapi

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/idiomatic"
)

// Keyring is the static API-key table behind the auth middleware: one line
// per key in the keyfile, resolved to a tenant identity (name, fair-share
// weight, admin role). It is immutable after load — key rotation is a
// restart, which matches the static-keyfile trust model.
//
// Keyfile format (idiomd -keys), one entry per line:
//
//	<key> <client-name> [weight] [admin]
//
// '#' starts a comment; blank lines are skipped. Weight defaults to 1; the
// literal token "admin" grants access to the admin surface (GET
// /v1/clients). Two keys may share a client name (key rotation) — they are
// the same tenant to the fairness layer.
type Keyring struct {
	byKey map[string]idiomatic.Client
}

// LoadKeyring reads a keyfile from disk.
func LoadKeyring(path string) (*Keyring, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	kr, err := ParseKeyring(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return kr, nil
}

// ParseKeyring parses keyfile lines from r.
func ParseKeyring(r io.Reader) (*Keyring, error) {
	kr := &Keyring{byKey: map[string]idiomatic.Client{}}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: want \"<key> <name> [weight] [admin]\", got %q", line, text)
		}
		key := fields[0]
		if _, dup := kr.byKey[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key", line)
		}
		cl := idiomatic.Client{Name: fields[1], Weight: 1}
		for _, f := range fields[2:] {
			if f == "admin" {
				cl.Admin = true
				continue
			}
			w, err := strconv.Atoi(f)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("line %d: bad weight %q (positive integer or \"admin\")", line, f)
			}
			cl.Weight = w
		}
		kr.byKey[key] = cl
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(kr.byKey) == 0 {
		return nil, fmt.Errorf("keyfile holds no keys")
	}
	return kr, nil
}

// Lookup resolves an API key to its client identity.
func (k *Keyring) Lookup(key string) (idiomatic.Client, bool) {
	cl, ok := k.byKey[key]
	return cl, ok
}

// Clients lists the distinct client identities in the ring, sorted by name.
// Two keys for the same name collapse to one entry (admin if any key is).
func (k *Keyring) Clients() []idiomatic.Client {
	byName := map[string]idiomatic.Client{}
	for _, cl := range k.byKey {
		have, ok := byName[cl.Name]
		if !ok {
			byName[cl.Name] = cl
			continue
		}
		have.Admin = have.Admin || cl.Admin
		if cl.Weight > have.Weight {
			have.Weight = cl.Weight
		}
		byName[cl.Name] = have
	}
	out := make([]idiomatic.Client, 0, len(byName))
	for _, cl := range byName {
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// requestKey extracts the API key from a request: "Authorization: Bearer
// <key>" or the X-API-Key header.
func requestKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return r.Header.Get("X-API-Key")
}

// authenticate wraps the API mux with key auth: every /v1/* request must
// present a known key and proceeds with its tenant identity on the request
// context; /healthz and /statsz stay open (liveness probes and scrapers
// carry no keys). Missing or unknown keys get the structured 401 envelope.
func authenticate(kr *Keyring, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		key := requestKey(r)
		if key == "" {
			writeError(w, http.StatusUnauthorized, idiomatic.CodeUnauthenticated,
				"missing API key (use Authorization: Bearer <key> or X-API-Key)")
			return
		}
		cl, ok := kr.Lookup(key)
		if !ok {
			writeError(w, http.StatusUnauthorized, idiomatic.CodeUnauthenticated, "unknown API key")
			return
		}
		next.ServeHTTP(w, r.WithContext(idiomatic.WithClient(r.Context(), cl)))
	})
}
