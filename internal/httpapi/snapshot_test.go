package httpapi_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/idiomatic"
	"repro/internal/httpapi"
)

const snapshotDotSource = `
double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; }
    return s;
}`

// TestMemoSnapshotEndpoint pins the warm-handoff surface: admin-gated under
// auth, NDJSON out, and the stream ingests into a fresh replica which then
// serves the donor's module without a fresh solve.
func TestMemoSnapshotEndpoint(t *testing.T) {
	ts, _ := newAuthServer(t, idiomatic.ServiceOptions{Workers: 2, StateDir: t.TempDir()})

	// Warm one module through the API so the snapshot has content.
	resp, body := do(t, http.MethodPost, ts.URL+"/v1/detect", "key-admin",
		[]byte(`{"name":"dot.c","source":`+jsonString(snapshotDotSource)+`}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up detect: %d %s", resp.StatusCode, body)
	}

	// No key and a non-admin key are rejected with the structured envelope.
	resp, body = do(t, http.MethodGet, ts.URL+"/v1/memo/snapshot", "", nil)
	if resp.StatusCode != http.StatusUnauthorized || envelope(t, body).Code != idiomatic.CodeUnauthenticated {
		t.Fatalf("anonymous snapshot: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, http.MethodGet, ts.URL+"/v1/memo/snapshot", "key-light", nil)
	if resp.StatusCode != http.StatusForbidden || envelope(t, body).Code != idiomatic.CodeForbidden {
		t.Fatalf("non-admin snapshot: %d %s", resp.StatusCode, body)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/v1/memo/snapshot", "key-admin", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin snapshot: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/x-ndjson") {
		t.Errorf("snapshot Content-Type = %q; want NDJSON", ct)
	}

	// The stream must ingest into a fresh service and make it warm.
	heir, err := idiomatic.NewService(idiomatic.ServiceOptions{Workers: 2, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer heir.Close()
	entries, _, err := heir.IngestMemoSnapshot(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ingesting the endpoint's stream: %v", err)
	}
	if entries == 0 {
		t.Fatal("snapshot carried no memo entries despite a warmed module")
	}
}

// TestMemoSnapshotRequiresStateDir pins the stateless-service contract: 404
// with the envelope, both with and without auth.
func TestMemoSnapshotRequiresStateDir(t *testing.T) {
	ts, _ := newAuthServer(t, idiomatic.ServiceOptions{Workers: 1})
	resp, body := do(t, http.MethodGet, ts.URL+"/v1/memo/snapshot", "key-admin", nil)
	if resp.StatusCode != http.StatusNotFound || envelope(t, body).Code != idiomatic.CodeNotFound {
		t.Fatalf("stateless snapshot: %d %s", resp.StatusCode, body)
	}

	// Open server (no keyring): the endpoint is reachable but still 404.
	svc, err := idiomatic.NewService(idiomatic.ServiceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	open := httptest.NewServer(httpapi.New(svc))
	t.Cleanup(func() { open.Close(); svc.Close() })
	resp, body = do(t, http.MethodGet, open.URL+"/v1/memo/snapshot", "", nil)
	if resp.StatusCode != http.StatusNotFound || envelope(t, body).Code != idiomatic.CodeNotFound {
		t.Fatalf("open stateless snapshot: %d %s", resp.StatusCode, body)
	}
}

// jsonString renders s as a JSON string literal (newlines escaped).
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
