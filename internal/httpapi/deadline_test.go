package httpapi_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/idiomatic"
	"repro/internal/workloads"
)

// TestDeadlineHeaderShedsMidSolve extends the PR 4 cancellation pins to
// header-derived deadlines at the HTTP layer, under intra-solve parallelism
// (SolveSplit 4): a whole-suite stream under a tight X-Deadline-Ms must
// deliver one line per request — deadline-exceeded reported in-band per
// module, never a torn stream or a partial result — free every branch
// worker, and never memoize an aborted solve: a second pass without a
// deadline on the same service is byte-identical to the sequential
// reference.
func TestDeadlineHeaderShedsMidSolve(t *testing.T) {
	opts := idiomatic.RequestOptions{Solutions: true}
	want := wantSuite(t, opts)
	ts, svc := newServer(t, idiomatic.ServiceOptions{Workers: 4, SolveSplit: 4})
	body := suiteBody(t, opts)

	// Round 1: the whole suite under a deadline tight enough to expire while
	// solves (and their branch tasks) are in flight.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Deadline-Ms", "120")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (deadline errors are in-band, not a torn stream)", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lines := 0
	expired := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lines++
		var res idiomatic.DetectResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("torn stream: line %d is not valid JSON: %v", lines, err)
		}
		if res.Err != "" {
			if !strings.Contains(res.Err, "deadline exceeded") {
				t.Errorf("seq %d: err = %q, want a deadline-exceeded report", res.Seq, res.Err)
			}
			expired++
			continue
		}
		// Raced the deadline and won: the result must be full, not partial.
		if g, w := canonical(t, res), canonical(t, want[res.Seq]); g != w {
			t.Errorf("seq %d: completed result differs from reference (partial solve leaked):\n  got:  %s\n  want: %s",
				res.Seq, g, w)
		}
	}
	resp.Body.Close()
	if lines != len(want) {
		t.Fatalf("stream delivered %d lines, want %d (every request must resolve in-band)", lines, len(want))
	}
	t.Logf("deadline expired on %d/%d modules", expired, lines)

	// Every worker — including branch helpers — must be free promptly.
	waitDrained(t, svc)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.SolveActive == 0 && st.SolveBranchActive == 0 && st.DetectActive == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers still active after deadline shedding: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Round 2, same service, no deadline: aborted solves must not have been
	// memoized, so the suite reproduces the reference byte-for-byte (and with
	// the reference step counts — a poisoned cache entry would change both).
	resp2, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("round 2 status = %d, want 200", resp2.StatusCode)
	}
	var round2 struct {
		Results []idiomatic.DetectResult `json:"results"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&round2); err != nil {
		t.Fatal(err)
	}
	if len(round2.Results) != len(want) {
		t.Fatalf("round 2 returned %d results, want %d", len(round2.Results), len(want))
	}
	for i := range want {
		if round2.Results[i].Err != "" {
			t.Fatalf("round 2 seq %d failed: %s", i, round2.Results[i].Err)
		}
		if g, w := canonical(t, round2.Results[i]), canonical(t, want[i]); g != w {
			t.Errorf("round 2 seq %d differs (memo poisoned by aborted solve):\n  got:  %s\n  want: %s", i, g, w)
		}
	}
}

// TestDeadlineBodyField pins the wire-field route to the same plumbing: a
// per-request deadline_ms in the body expires in-band while an undeadlined
// request in the same batch completes. The doomed request is a module whose
// compile+solve outlasts 1ms on any machine — the deadline is only observed
// at stage boundaries and solver polls, so a module cheap enough to finish
// between polls could race past it on an idle service.
func TestDeadlineBodyField(t *testing.T) {
	ts, _ := newServer(t, idiomatic.ServiceOptions{Workers: 2})
	var doomed string
	for _, w := range workloads.All() {
		if w.Name == "lbm" {
			doomed = w.Source
		}
	}
	if doomed == "" {
		t.Fatal("no lbm workload in the suite")
	}
	body, err := json.Marshal([]idiomatic.DetectRequest{
		{Name: "quick.c", Source: "double s(double* x,int n){double a=0.0;for(int i=0;i<n;i++){a=a+x[i];}return a;}"},
		{Name: "doomed.c", Source: doomed, DeadlineMs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results []idiomatic.DetectResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(out.Results))
	}
	if out.Results[0].Err != "" || len(out.Results[0].Findings) == 0 {
		t.Fatalf("undeadlined request = %+v, want findings", out.Results[0])
	}
	if !strings.Contains(out.Results[1].Err, "deadline exceeded") {
		t.Fatalf("deadlined request err = %q, want deadline exceeded in-band", out.Results[1].Err)
	}
}
