package httpapi_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/idiomatic"
	"repro/internal/detect"
	"repro/internal/httpapi"
	"repro/internal/ir"
	"repro/internal/leakcheck"
	"repro/internal/workloads"
)

func newServer(t *testing.T, opts idiomatic.ServiceOptions) (*httptest.Server, *idiomatic.Service) {
	t.Helper()
	// Registered before the Close cleanup below, so the leak assertion runs
	// after the server and service have shut down: a worker the Close path
	// forgets to reap fails the test that spawned it.
	leakcheck.Register(t)
	svc, err := idiomatic.NewService(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

// canonical renders a wire result with the run-dependent fields (wall time,
// memo counters) zeroed; everything else the protocol guarantees to be
// deterministic, so tests compare these bytes directly.
func canonical(t *testing.T, r idiomatic.DetectResult) string {
	t.Helper()
	r.ElapsedNs = 0
	r.Memo = idiomatic.MemoSnapshot{}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// wantSuite builds the reference wire results for the full 21-workload suite
// straight from the batch engine (detect.Modules), encoded by the same
// WireResult conversion the server uses.
func wantSuite(t *testing.T, opts idiomatic.RequestOptions) []idiomatic.DetectResult {
	t.Helper()
	ws := workloads.All()
	mods := make([]*ir.Module, len(ws))
	for i, w := range ws {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		mods[i] = mod
	}
	ress, err := detect.Modules(mods, detect.Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]idiomatic.DetectResult, len(ress))
	for i, res := range ress {
		out[i] = idiomatic.WireResult(i, ws[i].Name, res, opts)
	}
	return out
}

func suiteBody(t *testing.T, opts idiomatic.RequestOptions) []byte {
	t.Helper()
	var reqs []idiomatic.DetectRequest
	for _, w := range workloads.All() {
		reqs = append(reqs, idiomatic.DetectRequest{Name: w.Name, Source: w.Source, Opts: opts})
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestStreamByteIdenticalToModules is the acceptance criterion: the NDJSON
// stream for the 21-workload suite, reassembled by sequence number, is
// byte-identical (canonical encoding, full solutions) to detect.Modules
// order — and the single-shot endpoint agrees line for line.
func TestStreamByteIdenticalToModules(t *testing.T) {
	opts := idiomatic.RequestOptions{Solutions: true}
	want := wantSuite(t, opts)
	ts, _ := newServer(t, idiomatic.ServiceOptions{Workers: 4})
	body := suiteBody(t, opts)

	resp, err := http.Post(ts.URL+"/v1/detect/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	got := make([]*idiomatic.DetectResult, len(want))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lines := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lines++
		var res idiomatic.DetectResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if res.Err != "" {
			t.Fatalf("seq %d (%s): %s", res.Seq, res.Name, res.Err)
		}
		if res.Seq < 0 || res.Seq >= len(want) || got[res.Seq] != nil {
			t.Fatalf("bad or duplicate seq %d", res.Seq)
		}
		got[res.Seq] = &res
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != len(want) {
		t.Fatalf("stream delivered %d lines, want %d", lines, len(want))
	}
	for i := range want {
		if g, w := canonical(t, *got[i]), canonical(t, want[i]); g != w {
			t.Errorf("seq %d (%s) differs from detect.Modules:\n  stream: %s\n  batch:  %s",
				i, want[i].Name, g, w)
		}
	}

	// Single-shot endpoint: same batch, submit-order results, same bytes.
	resp2, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("single-shot status = %d, want 200", resp2.StatusCode)
	}
	var single struct {
		Results []idiomatic.DetectResult `json:"results"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	if len(single.Results) != len(want) {
		t.Fatalf("single-shot returned %d results, want %d", len(single.Results), len(want))
	}
	for i := range want {
		if g, w := canonical(t, single.Results[i]), canonical(t, want[i]); g != w {
			t.Errorf("single-shot seq %d differs:\n  got:  %s\n  want: %s", i, g, w)
		}
	}
}

// canonicalMatch renders a match result with the run-dependent fields
// zeroed, like canonical.
func canonicalMatch(t *testing.T, r idiomatic.MatchResult) string {
	t.Helper()
	r.ElapsedNs = 0
	r.Memo = idiomatic.MemoSnapshot{}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// wantMatchSuite builds the reference match results for the 21-workload
// suite from the blessed in-process pieces: detection legs straight from the
// batch engine (wantSuite), transformation plans from Service.Compile →
// DetectProgram → Plan — the library path the HTTP pipeline must mirror
// byte for byte.
func wantMatchSuite(t *testing.T, opts idiomatic.RequestOptions) []idiomatic.MatchResult {
	t.Helper()
	detWant := wantSuite(t, opts)
	svc, err := idiomatic.NewService(idiomatic.ServiceOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	out := make([]idiomatic.MatchResult, len(detWant))
	for i, w := range workloads.All() {
		prog, err := svc.Compile(ctx, w.Name, w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		det, err := svc.DetectProgram(ctx, prog)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		plans, err := svc.Plan(ctx, prog, det, "")
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		out[i] = idiomatic.MatchResult{DetectResult: detWant[i], Plans: plans}
	}
	return out
}

// TestMatchStreamByteIdenticalToInProcess extends the byte-identity
// acceptance criterion to the full pipeline: the /v1/match/stream NDJSON for
// all 21 workloads, reassembled by sequence number, is byte-identical to the
// in-process DetectProgram + Plan (transform.Apply) results — detection
// findings and wire-encoded transformation plans alike — and the single-shot
// /v1/match endpoint agrees line for line.
func TestMatchStreamByteIdenticalToInProcess(t *testing.T) {
	opts := idiomatic.RequestOptions{Solutions: true}
	want := wantMatchSuite(t, opts)
	ts, _ := newServer(t, idiomatic.ServiceOptions{Workers: 4})
	var reqs []idiomatic.MatchRequest
	for _, w := range workloads.All() {
		reqs = append(reqs, idiomatic.MatchRequest{Name: w.Name, Source: w.Source, Opts: opts})
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/match/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	got := make([]*idiomatic.MatchResult, len(want))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lines := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lines++
		var res idiomatic.MatchResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if res.Err != "" {
			t.Fatalf("seq %d (%s): %s", res.Seq, res.Name, res.Err)
		}
		if res.Seq < 0 || res.Seq >= len(want) || got[res.Seq] != nil {
			t.Fatalf("bad or duplicate seq %d", res.Seq)
		}
		got[res.Seq] = &res
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != len(want) {
		t.Fatalf("stream delivered %d lines, want %d", lines, len(want))
	}
	for i := range want {
		if g, w := canonicalMatch(t, *got[i]), canonicalMatch(t, want[i]); g != w {
			t.Errorf("seq %d (%s) differs from in-process match:\n  stream:     %s\n  in-process: %s",
				i, want[i].Name, g, w)
		}
	}

	// Single-shot endpoint: same batch, submit-order results, same bytes.
	resp2, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("single-shot status = %d, want 200", resp2.StatusCode)
	}
	var single struct {
		Results []idiomatic.MatchResult `json:"results"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	if len(single.Results) != len(want) {
		t.Fatalf("single-shot returned %d results, want %d", len(single.Results), len(want))
	}
	for i := range want {
		if g, w := canonicalMatch(t, single.Results[i]), canonicalMatch(t, want[i]); g != w {
			t.Errorf("single-shot seq %d differs:\n  got:  %s\n  want: %s", i, g, w)
		}
	}
}

// TestSingleObjectBody pins the curl-friendly form: one bare DetectRequest
// object (not an array) works on both endpoints.
func TestSingleObjectBody(t *testing.T) {
	ts, _ := newServer(t, idiomatic.ServiceOptions{Workers: 2})
	w := workloads.ByName("CG")
	body, _ := json.Marshal(idiomatic.DetectRequest{Name: w.Name, Source: w.Source})
	for _, path := range []string{"/v1/detect", "/v1/detect/stream"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, data)
		}
		if !bytes.Contains(data, []byte(`"idiom"`)) {
			t.Errorf("%s: no findings in %s", path, data)
		}
	}
}

// TestOverloadReturns429 pins load shedding at the front door: a batch
// exceeding the intake bound is rejected with 429 on both endpoints — with
// no Retry-After, because an over-limit batch can never fit and must be
// split, not retried — and the server keeps serving afterwards.
func TestOverloadReturns429(t *testing.T) {
	ts, svc := newServer(t, idiomatic.ServiceOptions{Workers: 2, QueueLimit: 2})
	body := suiteBody(t, idiomatic.RequestOptions{})

	for _, path := range []string{"/v1/detect", "/v1/detect/stream"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: status = %d, want 429 (body %s)", path, resp.StatusCode, data)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			t.Errorf("%s: Retry-After %q on an unservable batch; retrying can never help", path, ra)
		}
		var e idiomatic.ErrorEnvelope
		if err := json.Unmarshal(data, &e); err != nil || e.Error.Code != idiomatic.CodeBatchTooLarge ||
			!strings.Contains(e.Error.Message, "split the batch") || e.Error.RetryAfterMs != 0 {
			t.Errorf("%s: error body = %s", path, data)
		}
		waitDrained(t, svc)
	}

	// Within-bound traffic still serves.
	w := workloads.ByName("EP")
	small, _ := json.Marshal(idiomatic.DetectRequest{Name: w.Name, Source: w.Source})
	resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload status = %d, want 200", resp.StatusCode)
	}
}

// TestCancelMidStreamFreesWorkers pins client-disconnect shedding: a
// cancelled streaming request stops mid-delivery, the service's queues and
// solver pool drain, and the next request is served normally.
func TestCancelMidStreamFreesWorkers(t *testing.T) {
	ts, svc := newServer(t, idiomatic.ServiceOptions{Workers: 2})
	body := suiteBody(t, idiomatic.RequestOptions{})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/detect/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	// Read one result line, then hang up mid-stream.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		cancel()
		t.Fatal("no first line before cancel")
	}
	cancel()
	resp.Body.Close()

	waitDrained(t, svc)

	// The pool is free again: a fresh request completes correctly.
	w := workloads.ByName("CG")
	small, _ := json.Marshal(idiomatic.DetectRequest{Name: w.Name, Source: w.Source})
	resp2, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out struct {
		Results []idiomatic.DetectResult `json:"results"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Err != "" || len(out.Results[0].Findings) == 0 {
		t.Fatalf("post-cancel detection broken: %+v", out.Results)
	}
}

// TestIntrospectionEndpoints covers /healthz, /statsz and /v1/idioms.
func TestIntrospectionEndpoints(t *testing.T) {
	// A two-entry memo forces LRU evictions on the very first request, and
	// SolveSplit makes the branch fan-out config visible — both must show up
	// in /statsz.
	ts, _ := newServer(t, idiomatic.ServiceOptions{
		Workers: 2, QueueLimit: 7, SolveSplit: 3, ResplitDepth: 1, MemoMaxEntries: 2,
	})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	// Serve one request so the stats counters move.
	w := workloads.ByName("EP")
	body, _ := json.Marshal(idiomatic.DetectRequest{Name: w.Name, Source: w.Source})
	if resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body)); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var stats idiomatic.ServiceStats
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.QueueLimit != 7 || stats.SolveWorkers != 2 || stats.Submitted < 1 {
		t.Errorf("statsz = %+v", stats)
	}
	if stats.Memo.Misses == 0 {
		t.Errorf("statsz memo counters never moved: %+v", stats.Memo)
	}
	if stats.SolveSplit != 3 {
		t.Errorf("statsz solve_split = %d, want 3", stats.SolveSplit)
	}
	if stats.ResplitDepth != 1 {
		t.Errorf("statsz resplit_depth = %d, want 1", stats.ResplitDepth)
	}
	// With splitting configured, a cold memo (no cost predictions yet) and
	// fresh solves served, at least one solve must have forked — the
	// split-decision gauges are live, not decorative. The chosen-variable
	// histogram must account for every decision.
	if stats.SplitDecisions < 1 {
		t.Errorf("statsz split_decisions = %d, want >= 1 after a served request with split 3", stats.SplitDecisions)
	}
	var histTotal int64
	for _, n := range stats.SplitVarHist {
		histTotal += n
	}
	if histTotal != stats.SplitDecisions {
		t.Errorf("statsz split_var_hist sums to %d, want split_decisions = %d", histTotal, stats.SplitDecisions)
	}
	if stats.SplitResplits < 0 || stats.SplitSkippedCheap < 0 {
		t.Errorf("statsz split counters negative: %+v", stats)
	}
	if stats.Memo.Evictions == 0 || stats.Memo.MaxEntries != 2 {
		t.Errorf("statsz memo eviction state invisible: %+v", stats.Memo)
	}
	if stats.Schema != idiomatic.StatsSchemaVersion {
		t.Errorf("statsz schema = %d, want %d", stats.Schema, idiomatic.StatsSchemaVersion)
	}
	// The default prescreen mode is reorder, and serving one request must
	// move its gauges: solves get reordered and prescreen time accrues, but
	// nothing is ever skipped in reorder mode.
	if stats.PruneMode != "reorder" {
		t.Errorf("statsz prune_mode = %q, want reorder", stats.PruneMode)
	}
	if stats.PruneSkipped != 0 {
		t.Errorf("statsz prune_skipped = %d in reorder mode, want 0", stats.PruneSkipped)
	}
	if stats.PrescreenNsTotal <= 0 {
		t.Errorf("statsz prescreen_ns_total = %d, want > 0 after a served request", stats.PrescreenNsTotal)
	}
	// The wire names are part of the versioned surface: dashboards key on
	// them, so their presence is pinned here, not just the struct fields.
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"solve_split", "solve_branch_active",
		"resplit_depth", "split_decisions", "split_resplits",
		"split_skipped_cheap", "split_var_hist",
		"prune_mode", "prune_skipped", "prune_reordered", "prescreen_ns_total",
	} {
		if _, ok := fields[key]; !ok {
			t.Errorf("statsz missing %q field", key)
		}
	}
	var memoFields struct {
		Memo map[string]json.RawMessage `json:"memo"`
	}
	if err := json.Unmarshal(raw, &memoFields); err != nil {
		t.Fatal(err)
	}
	if _, ok := memoFields.Memo["cost_entries"]; !ok {
		t.Errorf("statsz memo snapshot missing \"cost_entries\" field")
	}

	resp, err = http.Get(ts.URL + "/v1/idioms")
	if err != nil {
		t.Fatal(err)
	}
	var roster struct {
		Idioms       []idiomatic.IdiomInfo `json:"idioms"`
		LibraryLines int                   `json:"library_lines"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&roster); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	names := map[string]idiomatic.IdiomInfo{}
	for _, ii := range roster.Idioms {
		names[ii.Name] = ii
	}
	if !names["GEMM"].Default || !names["Map"].Extension || names["Map"].Default {
		t.Errorf("roster misclassified: %+v", roster.Idioms)
	}
	if roster.LibraryLines == 0 {
		t.Error("library_lines missing")
	}
}

// TestBadRequests pins 400 on malformed bodies — including an unknown idiom
// name, which must never be answered with an empty 200.
func TestBadRequests(t *testing.T) {
	ts, _ := newServer(t, idiomatic.ServiceOptions{Workers: 1})
	for _, body := range []string{
		"", "not json", "[]", `{"name":"x"}`,
		`{"name":"x","source":"int f() { return 0; }","idioms":["gemm"]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/detect", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400 (%s)", body, resp.StatusCode, data)
		}
	}
}

// TestPackRegistrationOverHTTP pins the acceptance criterion's wire flow:
// POST /v1/idioms installs a pack on the live server — no rebuild, no
// restart — and a subsequent POST /v1/match with that pack detects,
// transforms and ranks backends for an idiom the built-in roster does not
// know. Unknown pack and unknown target on /v1/match are 400, never an
// empty 200.
func TestPackRegistrationOverHTTP(t *testing.T) {
	ts, _ := newServer(t, idiomatic.ServiceOptions{Workers: 2})
	source := `
double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; }
    return s;
}`

	// Pre-registration: unknown pack is 400 on both match endpoints.
	for _, path := range []string{"/v1/match", "/v1/match/stream"} {
		body, _ := json.Marshal(idiomatic.MatchRequest{Source: source, Pack: "blas1"})
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), `unknown pack`) {
			t.Fatalf("%s unknown pack: status %d body %s", path, resp.StatusCode, data)
		}
	}

	// Invalid registrations are 400 with the CompilePack error text.
	bad, _ := json.Marshal(map[string]any{
		"pack": "blas1", "source": idiomatic.LibrarySource(),
		"idioms": []idiomatic.TopSpec{{Top: "NoSuchConstraint"}},
	})
	resp, err := http.Post(ts.URL+"/v1/idioms", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "unknown constraint") {
		t.Fatalf("bad registration: status %d body %s", resp.StatusCode, data)
	}

	// Register, then match with the pack.
	reg, _ := json.Marshal(map[string]any{
		"pack": "blas1", "source": idiomatic.LibrarySource(),
		"idioms": []idiomatic.TopSpec{{
			Name: "Dot", Top: "Reduction", Class: "Scalar Reduction",
			Scheme: "reduction", Kind: "reduction",
		}},
	})
	resp, err = http.Post(ts.URL+"/v1/idioms", "application/json", bytes.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	var regOut struct {
		Pack idiomatic.PackInfo `json:"pack"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&regOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || regOut.Pack.Version != 1 || len(regOut.Pack.Idioms) != 1 {
		t.Fatalf("registration: status %d pack %+v", resp.StatusCode, regOut.Pack)
	}

	body, _ := json.Marshal(idiomatic.MatchRequest{Name: "dot.c", Source: source, Pack: "blas1"})
	resp, err = http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []idiomatic.MatchResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Results) != 1 {
		t.Fatalf("results = %+v", out.Results)
	}
	res := out.Results[0]
	if res.Err != "" || len(res.Findings) != 1 || res.Findings[0].Idiom != "Dot" ||
		res.Pack != "blas1" || res.PackVersion != 1 {
		t.Fatalf("match result = %+v", res)
	}
	plan := res.Plans[0]
	if plan.Err != "" || plan.Backend != "lift" || plan.Device != "GPU" ||
		!strings.HasPrefix(plan.Extern, "lift.reduction#") || len(plan.Offload) != 3 {
		t.Fatalf("plan = %+v", plan)
	}

	// Unknown target is 400.
	body, _ = json.Marshal(idiomatic.MatchRequest{Source: source, Target: "FPGA"})
	resp, err = http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "unknown target device") {
		t.Fatalf("unknown target: status %d body %s", resp.StatusCode, data)
	}

	// Introspection: the pack shows up in the roster payload, per-pack query
	// works, unknown pack query is 404.
	resp, err = http.Get(ts.URL + "/v1/idioms")
	if err != nil {
		t.Fatal(err)
	}
	var roster struct {
		Packs []idiomatic.PackInfo `json:"packs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&roster); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(roster.Packs) != 1 || roster.Packs[0].Name != "blas1" {
		t.Fatalf("roster packs = %+v", roster.Packs)
	}
	resp, err = http.Get(ts.URL + "/v1/idioms?pack=blas1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pack query status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/idioms?pack=nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown pack query status = %d, want 404", resp.StatusCode)
	}
}

// TestBackendsEndpoint pins GET /v1/backends: the device models and the
// Table 3 API profiles backend selection ranks over.
func TestBackendsEndpoint(t *testing.T) {
	ts, _ := newServer(t, idiomatic.ServiceOptions{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Devices  []idiomatic.DeviceInfo  `json:"devices"`
		Backends []idiomatic.BackendInfo `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(out.Devices) != 3 {
		t.Fatalf("status %d devices %+v", resp.StatusCode, out.Devices)
	}
	byName := map[string]idiomatic.BackendInfo{}
	for _, b := range out.Backends {
		byName[b.Name] = b
	}
	if eff := byName["cublas"].Kinds["GPU"]["gemm"]; eff != 0.90 {
		t.Errorf("cublas GPU gemm efficiency = %v, want 0.90", eff)
	}
	if !byName["halide"].NeedsStraightLineKernel {
		t.Error("halide straight-line restriction missing")
	}
}

func waitDrained(t *testing.T, svc *idiomatic.Service) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.Stats()
		if st.InFlight == 0 && st.SolveActive == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not drain: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
