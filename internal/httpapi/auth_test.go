package httpapi_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/idiomatic"
	"repro/internal/httpapi"
	"repro/internal/workloads"
)

const testKeyfile = `
# test keyring
key-light  light  1
key-heavy  heavy  2
key-admin  ops    1 admin
`

func newAuthServer(t *testing.T, opts idiomatic.ServiceOptions) (*httptest.Server, *idiomatic.Service) {
	t.Helper()
	kr, err := httpapi.ParseKeyring(strings.NewReader(testKeyfile))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := idiomatic.NewService(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.Options{Keys: kr}))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

// do issues one request with optional API key and body, returning status,
// headers and body bytes.
func do(t *testing.T, method, url, key string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

func envelope(t *testing.T, data []byte) idiomatic.ErrorBody {
	t.Helper()
	var e idiomatic.ErrorEnvelope
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("response is not the error envelope: %v (body %s)", err, data)
	}
	if e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", data)
	}
	return e.Error
}

// TestKeyringParse pins the keyfile format: comments, weights, the admin
// role, and every malformed-line rejection.
func TestKeyringParse(t *testing.T) {
	kr, err := httpapi.ParseKeyring(strings.NewReader(testKeyfile))
	if err != nil {
		t.Fatal(err)
	}
	cl, ok := kr.Lookup("key-heavy")
	if !ok || cl.Name != "heavy" || cl.Weight != 2 || cl.Admin {
		t.Fatalf("key-heavy = %+v, %v", cl, ok)
	}
	cl, ok = kr.Lookup("key-admin")
	if !ok || cl.Name != "ops" || !cl.Admin {
		t.Fatalf("key-admin = %+v, %v", cl, ok)
	}
	if _, ok := kr.Lookup("nope"); ok {
		t.Fatal("unknown key resolved")
	}
	if names := kr.Clients(); len(names) != 3 || names[0].Name != "heavy" || names[1].Name != "light" || names[2].Name != "ops" {
		t.Fatalf("Clients() = %+v, want heavy/light/ops sorted", names)
	}

	for _, bad := range []string{
		"only-key",              // missing name
		"k name zero",           // non-integer weight
		"k name 0",              // weight < 1
		"k a\nk b",              // duplicate key
		"# nothing but comment", // no keys at all
		"",                      // empty
	} {
		if _, err := httpapi.ParseKeyring(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseKeyring(%q) accepted a malformed keyfile", bad)
		}
	}
}

// TestAuthGate pins the auth middleware: /v1/* requires a known key (401
// envelope otherwise, via Bearer or X-API-Key), while /healthz and /statsz
// stay open for probes and scrapers.
func TestAuthGate(t *testing.T) {
	ts, _ := newAuthServer(t, idiomatic.ServiceOptions{Workers: 2})
	w := workloads.ByName("EP")
	body, _ := json.Marshal(idiomatic.DetectRequest{Name: w.Name, Source: w.Source})

	// No key → 401 envelope.
	resp, data := do(t, http.MethodPost, ts.URL+"/v1/detect", "", body)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless status = %d, want 401 (body %s)", resp.StatusCode, data)
	}
	if e := envelope(t, data); e.Code != idiomatic.CodeUnauthenticated {
		t.Fatalf("keyless code = %q, want unauthenticated", e.Code)
	}

	// Unknown key → 401.
	resp, data = do(t, http.MethodPost, ts.URL+"/v1/detect", "wrong-key", body)
	if resp.StatusCode != http.StatusUnauthorized || envelope(t, data).Code != idiomatic.CodeUnauthenticated {
		t.Fatalf("bad-key status = %d body %s, want 401 unauthenticated", resp.StatusCode, data)
	}

	// Known key → served.
	resp, data = do(t, http.MethodPost, ts.URL+"/v1/detect", "key-light", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authed status = %d, want 200 (body %s)", resp.StatusCode, data)
	}

	// X-API-Key works too.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(body))
	req.Header.Set("X-API-Key", "key-light")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key status = %d, want 200", resp2.StatusCode)
	}

	// Probes stay open.
	for _, path := range []string{"/healthz", "/statsz"} {
		resp, data := do(t, http.MethodGet, ts.URL+path, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s keyless status = %d, want 200 (body %s)", path, resp.StatusCode, data)
		}
	}
}

// TestClientsAdminSurface pins GET /v1/clients: admin keys get the listing
// (weights + live usage), non-admin keys get 403, and a server without auth
// answers 401 (there is no client table to list).
func TestClientsAdminSurface(t *testing.T) {
	ts, _ := newAuthServer(t, idiomatic.ServiceOptions{Workers: 2})
	w := workloads.ByName("EP")
	body, _ := json.Marshal(idiomatic.DetectRequest{Name: w.Name, Source: w.Source})

	// Drive one request as "heavy" so its usage gauges are live.
	if resp, data := do(t, http.MethodPost, ts.URL+"/v1/detect", "key-heavy", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request failed: %d %s", resp.StatusCode, data)
	}

	resp, data := do(t, http.MethodGet, ts.URL+"/v1/clients", "key-light", nil)
	if resp.StatusCode != http.StatusForbidden || envelope(t, data).Code != idiomatic.CodeForbidden {
		t.Fatalf("non-admin status = %d body %s, want 403 forbidden", resp.StatusCode, data)
	}

	resp, data = do(t, http.MethodGet, ts.URL+"/v1/clients", "key-admin", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin status = %d, want 200 (body %s)", resp.StatusCode, data)
	}
	var listing struct {
		Clients []httpapi.ClientInfo `json:"clients"`
	}
	if err := json.Unmarshal(data, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Clients) != 3 {
		t.Fatalf("clients = %+v, want 3 rows", listing.Clients)
	}
	byName := map[string]httpapi.ClientInfo{}
	for _, c := range listing.Clients {
		byName[c.Name] = c
	}
	if h := byName["heavy"]; h.Weight != 2 || h.Served != 1 {
		t.Fatalf("heavy row = %+v, want weight 2 / served 1", h)
	}
	if o := byName["ops"]; !o.Admin {
		t.Fatalf("ops row = %+v, want admin", o)
	}
	if l := byName["light"]; l.Served != 0 {
		t.Fatalf("light row = %+v, want zero usage", l)
	}

	// Anonymous server: the surface is 401, not an empty 200.
	tsAnon, _ := newServer(t, idiomatic.ServiceOptions{Workers: 1})
	resp, data = do(t, http.MethodGet, tsAnon.URL+"/v1/clients", "", nil)
	if resp.StatusCode != http.StatusUnauthorized || envelope(t, data).Code != idiomatic.CodeUnauthenticated {
		t.Fatalf("no-auth server status = %d body %s, want 401 unauthenticated", resp.StatusCode, data)
	}
}

// TestErrorEnvelopeEveryPath is the table-driven pin of the unified v1 error
// contract: every non-2xx path answers with
// {"error":{"code","message","retry_after_ms?"}} and the expected machine
// code.
func TestErrorEnvelopeEveryPath(t *testing.T) {
	ts, _ := newServer(t, idiomatic.ServiceOptions{Workers: 2, QueueLimit: 2})
	w := workloads.ByName("EP")
	good, _ := json.Marshal(idiomatic.DetectRequest{Name: w.Name, Source: w.Source})

	cases := []struct {
		name     string
		method   string
		path     string
		header   [2]string
		body     []byte
		status   int
		code     string
		msgPart  string
		retryHdr string // want Retry-After header ("" = must be absent)
	}{
		{name: "malformed json", method: "POST", path: "/v1/detect", body: []byte("{nope"),
			status: 400, code: idiomatic.CodeInvalidRequest, msgPart: "invalid request"},
		{name: "empty batch", method: "POST", path: "/v1/detect", body: []byte("[]"),
			status: 400, code: idiomatic.CodeInvalidRequest, msgPart: "empty request batch"},
		{name: "empty source", method: "POST", path: "/v1/detect", body: []byte(`{"name":"x"}`),
			status: 400, code: idiomatic.CodeInvalidRequest, msgPart: "empty source"},
		{name: "unknown idiom", method: "POST", path: "/v1/detect",
			body:   []byte(`{"name":"x","source":"int f(){return 0;}","idioms":["Nope"]}`),
			status: 400, code: idiomatic.CodeInvalidRequest, msgPart: "unknown idiom"},
		{name: "unknown pack", method: "POST", path: "/v1/match",
			body:   []byte(`{"name":"x","source":"int f(){return 0;}","pack":"ghost"}`),
			status: 400, code: idiomatic.CodeInvalidRequest, msgPart: "unknown pack"},
		{name: "unknown target", method: "POST", path: "/v1/match",
			body:   []byte(`{"name":"x","source":"int f(){return 0;}","target":"TPU"}`),
			status: 400, code: idiomatic.CodeInvalidRequest, msgPart: "target"},
		{name: "bad deadline header", method: "POST", path: "/v1/detect",
			header: [2]string{"X-Deadline-Ms", "soon"}, body: good,
			status: 400, code: idiomatic.CodeInvalidRequest, msgPart: "X-Deadline-Ms"},
		{name: "unknown endpoint", method: "GET", path: "/v1/nope",
			status: 404, code: idiomatic.CodeNotFound, msgPart: "no such endpoint"},
		{name: "unknown pack query", method: "GET", path: "/v1/idioms?pack=ghost",
			status: 404, code: idiomatic.CodeNotFound, msgPart: "unknown pack"},
		{name: "wrong method", method: "GET", path: "/v1/detect",
			status: 405, code: idiomatic.CodeMethodNotAllowed, msgPart: "not allowed"},
		{name: "batch too large", method: "POST", path: "/v1/detect",
			body:   []byte(`[{"name":"a","source":"int a;"},{"name":"b","source":"int b;"},{"name":"c","source":"int c;"}]`),
			status: 429, code: idiomatic.CodeBatchTooLarge, msgPart: "split the batch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != nil {
				rd = bytes.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			if tc.header[0] != "" {
				req.Header.Set(tc.header[0], tc.header[1])
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.status, data)
			}
			e := envelope(t, data)
			if e.Code != tc.code {
				t.Errorf("code = %q, want %q (body %s)", e.Code, tc.code, data)
			}
			if !strings.Contains(e.Message, tc.msgPart) {
				t.Errorf("message %q does not mention %q", e.Message, tc.msgPart)
			}
			if got := resp.Header.Get("Retry-After"); got != tc.retryHdr {
				t.Errorf("Retry-After = %q, want %q", got, tc.retryHdr)
			}
			if tc.retryHdr == "" && e.RetryAfterMs != 0 {
				t.Errorf("retry_after_ms = %d on a non-retryable error", e.RetryAfterMs)
			}
		})
	}
}

// TestRateLimitedEnvelope pins the third 429 flavor: an authenticated client
// over its token bucket gets code "rate_limited" with both the Retry-After
// header and retry_after_ms, while the anonymous tier on a keyless server is
// never rate limited.
func TestRateLimitedEnvelope(t *testing.T) {
	ts, svc := newAuthServer(t, idiomatic.ServiceOptions{
		Workers:     2,
		ClientRate:  0.001,
		ClientBurst: 1,
	})
	w := workloads.ByName("EP")
	body, _ := json.Marshal(idiomatic.DetectRequest{Name: w.Name, Source: w.Source})

	if resp, data := do(t, http.MethodPost, ts.URL+"/v1/detect", "key-light", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("within-burst status = %d (body %s)", resp.StatusCode, data)
	}
	waitDrained(t, svc)

	resp, data := do(t, http.MethodPost, ts.URL+"/v1/detect", "key-light", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate status = %d, want 429 (body %s)", resp.StatusCode, data)
	}
	e := envelope(t, data)
	if e.Code != idiomatic.CodeRateLimited {
		t.Fatalf("code = %q, want rate_limited (body %s)", e.Code, data)
	}
	if e.RetryAfterMs <= 0 {
		t.Errorf("retry_after_ms = %d, want positive refill hint", e.RetryAfterMs)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("Retry-After header missing on rate_limited")
	}
}
