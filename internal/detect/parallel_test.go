package detect_test

import (
	"fmt"
	"testing"

	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// instanceKey renders everything observable about one instance: idiom,
// function, the full solution and the claim set (claims are compared by
// operand identity within the function, which pins instruction-level
// equality for modules compiled once).
func instanceKey(inst detect.Instance) string {
	s := fmt.Sprintf("%s|%s|%s|claims[", inst.Idiom.Name, inst.Function.Ident, inst.Solution)
	for _, c := range inst.Claims {
		s += c.Operand() + ","
	}
	return s + "]"
}

func resultKeys(t *testing.T, res *detect.Result) []string {
	t.Helper()
	keys := make([]string, len(res.Instances))
	for i, inst := range res.Instances {
		keys[i] = instanceKey(inst)
	}
	return keys
}

// TestParallelMatchesSequential asserts the concurrent engine is
// deterministic: for every benchmark module, the sequential driver and the
// engine at 1, 4 and 8 workers report identical instances — same idioms,
// same claim sets, same order — and identical solver step totals. Run under
// -race this also exercises the shared Info / shared Problem paths.
func TestParallelMatchesSequential(t *testing.T) {
	var mods []*ir.Module
	var names []string
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", w.Name, err)
		}
		mods = append(mods, mod)
		names = append(names, w.Name)
	}

	// Sequential reference over the shared modules.
	var want []*detect.Result
	for i, mod := range mods {
		res, err := detect.Module(mod, detect.Options{})
		if err != nil {
			t.Fatalf("%s: sequential detect: %v", names[i], err)
		}
		want = append(want, res)
	}

	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := detect.Modules(mods, detect.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("got %d results, want %d", len(got), len(want))
			}
			for i := range want {
				wk, gk := resultKeys(t, want[i]), resultKeys(t, got[i])
				if len(wk) != len(gk) {
					t.Fatalf("%s: %d instances, want %d", names[i], len(gk), len(wk))
				}
				for j := range wk {
					if wk[j] != gk[j] {
						t.Errorf("%s: instance %d differs:\n  sequential: %s\n  parallel:   %s",
							names[i], j, wk[j], gk[j])
					}
				}
				if got[i].SolverSteps != want[i].SolverSteps {
					t.Errorf("%s: solver steps %d, want %d", names[i], got[i].SolverSteps, want[i].SolverSteps)
				}
			}
		})
	}
}

// TestEngineIdiomSubset checks the engine honors Options.Idioms like the
// sequential driver does, including extension idioms that only run when
// named.
func TestEngineIdiomSubset(t *testing.T) {
	w := workloads.ByName("sgemm")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	opts := detect.Options{Idioms: []string{"GEMM"}, Workers: 4}
	seq, err := detect.Module(mod, detect.Options{Idioms: opts.Idioms})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := detect.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Module(mod)
	if err != nil {
		t.Fatal(err)
	}
	wk, gk := resultKeys(t, seq), resultKeys(t, got)
	if len(wk) == 0 {
		t.Fatal("expected at least one GEMM instance in sgemm")
	}
	if len(wk) != len(gk) {
		t.Fatalf("instances: got %d, want %d", len(gk), len(wk))
	}
	for j := range wk {
		if wk[j] != gk[j] {
			t.Errorf("instance %d differs:\n  sequential: %s\n  parallel:   %s", j, wk[j], gk[j])
		}
	}
}

// TestEngineModuleBatch checks per-module aggregation: a batch call must
// attribute instances to the right module result.
func TestEngineModuleBatch(t *testing.T) {
	a, err := workloads.ByName("sgemm").Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloads.ByName("CG").Compile()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := detect.Modules([]*ir.Module{a, b}, detect.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, mod := range []*ir.Module{a, b} {
		fns := map[*ir.Function]bool{}
		for _, fn := range mod.Functions {
			fns[fn] = true
		}
		for _, inst := range batch[i].Instances {
			if !fns[inst.Function] {
				t.Errorf("result %d contains instance from foreign module (%s)", i, inst.Function.Ident)
			}
		}
		if len(batch[i].Instances) == 0 {
			t.Errorf("result %d: no instances", i)
		}
	}
}
