package detect_test

import (
	"fmt"
	"testing"

	"repro/internal/detect"
	"repro/internal/idioms"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// compileAll compiles the full benchmark suite once per test.
func compileAll(t *testing.T) ([]*ir.Module, []string) {
	t.Helper()
	var mods []*ir.Module
	var names []string
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", w.Name, err)
		}
		mods = append(mods, mod)
		names = append(names, w.Name)
	}
	return mods, names
}

// streamKeys runs every module through a fresh engine's stream and returns
// per-module instance keys plus step counts, reassembled in submit order.
func streamKeys(t *testing.T, opts detect.Options, mods []*ir.Module) ([][]string, []int) {
	t.Helper()
	eng, err := detect.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stream(len(mods))
	for _, mod := range mods {
		st.Submit(mod)
	}
	st.Close()
	keys := make([][]string, len(mods))
	steps := make([]int, len(mods))
	for sr := range st.Results() {
		if sr.Err != nil {
			t.Fatalf("seq %d: %v", sr.Seq, sr.Err)
		}
		keys[sr.Seq] = resultKeys(t, sr.Result)
		steps[sr.Seq] = sr.Result.SolverSteps
	}
	return keys, steps
}

// TestReorderByteIdenticalToOff pins the tentpole's central invariant: the
// default reorder mode only reschedules solves, so its output — instances,
// order, claim sets AND solver step totals — is byte-identical to the
// prescreen-free engine at every worker count and split factor, on both the
// batch and streaming paths. Run under -race this also exercises the
// prescreen's shared-state paths.
func TestReorderByteIdenticalToOff(t *testing.T) {
	mods, names := compileAll(t)

	// Batch path at several worker counts.
	off, err := detect.Modules(mods, detect.Options{Workers: 4, Prune: detect.PruneOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("batch/workers=%d", workers), func(t *testing.T) {
			got, err := detect.Modules(mods, detect.Options{Workers: workers, Prune: detect.PruneReorder})
			if err != nil {
				t.Fatal(err)
			}
			for i := range off {
				wk, gk := resultKeys(t, off[i]), resultKeys(t, got[i])
				if len(wk) != len(gk) {
					t.Fatalf("%s: %d instances, want %d", names[i], len(gk), len(wk))
				}
				for j := range wk {
					if wk[j] != gk[j] {
						t.Errorf("%s: instance %d differs:\n  off:     %s\n  reorder: %s", names[i], j, wk[j], gk[j])
					}
				}
				if got[i].SolverSteps != off[i].SolverSteps {
					t.Errorf("%s: solver steps %d, want %d", names[i], got[i].SolverSteps, off[i].SolverSteps)
				}
			}
		})
	}

	// Streaming path: worker count × intra-solve split grid.
	offKeys, offSteps := streamKeys(t, detect.Options{Workers: 4, Prune: detect.PruneOff}, mods)
	for _, workers := range []int{1, 4, 8} {
		for _, split := range []int{1, 4} {
			workers, split := workers, split
			t.Run(fmt.Sprintf("stream/workers=%d/split=%d", workers, split), func(t *testing.T) {
				keys, steps := streamKeys(t, detect.Options{
					Workers: workers, SolveSplit: split, Prune: detect.PruneReorder,
				}, mods)
				for i := range offKeys {
					if len(keys[i]) != len(offKeys[i]) {
						t.Fatalf("%s: %d instances, want %d", names[i], len(keys[i]), len(offKeys[i]))
					}
					for j := range offKeys[i] {
						if keys[i][j] != offKeys[i][j] {
							t.Errorf("%s: instance %d differs:\n  off:     %s\n  reorder: %s",
								names[i], j, offKeys[i][j], keys[i][j])
						}
					}
					if steps[i] != offSteps[i] {
						t.Errorf("%s: solver steps %d, want %d", names[i], steps[i], offSteps[i])
					}
				}
			})
		}
	}
}

// TestPruneNeverSkipsSequentialMatches pins prune soundness across the whole
// benchmark suite: every instance the sequential (never-prescreened) driver
// detects is also detected with pruning on. Step counts may shrink — that is
// the point — but the instance lists must be identical, because skipping is
// only allowed at score 0, where a required opcode is provably absent.
func TestPruneNeverSkipsSequentialMatches(t *testing.T) {
	mods, names := compileAll(t)
	pruned, err := detect.Modules(mods, detect.Options{Workers: 4, Prune: detect.PruneOn})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, mod := range mods {
		seq, err := detect.Module(mod, detect.Options{})
		if err != nil {
			t.Fatalf("%s: sequential detect: %v", names[i], err)
		}
		wk, gk := resultKeys(t, seq), resultKeys(t, pruned[i])
		if len(wk) != len(gk) {
			t.Fatalf("%s: pruned run found %d instances, sequential %d", names[i], len(gk), len(wk))
		}
		for j := range wk {
			if wk[j] != gk[j] {
				t.Errorf("%s: instance %d differs:\n  sequential: %s\n  pruned:     %s", names[i], j, wk[j], gk[j])
			}
		}
		total += len(wk)
	}
	if total == 0 {
		t.Fatal("suite detected no instances; soundness assertion is vacuous")
	}
}

// axpyPackIDL is a small runtime pack (a BLAS-1 style kernel plus a
// reduction alias) used to pin prune soundness on the pack-roster path.
const axpyPackIDL = `
Constraint AXPYCore
( {store} is store instruction and
  {mul} is fmul instruction and
  {acc} is fadd instruction and
  {mul} has data flow to {acc} and
  {acc} has data flow to {store} and
  {guard} is branch instruction )
End

Constraint PackReduce
( {old_value} is phi instruction and
  {acc} is fadd instruction and
  {old_value} has data flow to {acc} and
  {guard} is branch instruction )
End`

// packRoster compiles the test pack and resolves its full roster, signatures
// included — the same shape idiomatic.Service.resolve produces.
func packRoster(t *testing.T) []detect.Resolved {
	t.Helper()
	pack, err := idioms.CompilePack("blas1", axpyPackIDL, []idioms.TopSpec{
		{Top: "AXPYCore", Scheme: "loopbody1"},
		{Top: "PackReduce", Scheme: "reduction"},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	ros := make([]detect.Resolved, 0, len(pack.Idioms))
	for _, idm := range pack.Idioms {
		prob, _ := pack.Problem(idm.Name)
		sig, _ := pack.Signature(idm.Name)
		ros = append(ros, detect.Resolved{Idiom: idm, Prob: prob, Sig: sig})
	}
	return ros
}

// TestPrunePackRosterSound runs the whole suite against a runtime-registered
// pack roster with pruning on and asserts the instance lists match the
// prescreen-free engine exactly — the pack path derives its signatures at
// CompilePack time, and they must be as sound as the built-in roster's.
func TestPrunePackRosterSound(t *testing.T) {
	mods, names := compileAll(t)
	run := func(prune detect.PruneMode) [][]string {
		eng, err := detect.NewEngine(detect.Options{Workers: 4, Prune: prune})
		if err != nil {
			t.Fatal(err)
		}
		ros := packRoster(t)
		st := eng.Stream(len(mods))
		for _, mod := range mods {
			st.SubmitJob(detect.Submission{Mod: mod, Roster: ros})
		}
		st.Close()
		keys := make([][]string, len(mods))
		for sr := range st.Results() {
			if sr.Err != nil {
				t.Fatalf("seq %d: %v", sr.Seq, sr.Err)
			}
			keys[sr.Seq] = resultKeys(t, sr.Result)
		}
		return keys
	}
	want := run(detect.PruneOff)
	got := run(detect.PruneOn)
	total := 0
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: pruned pack run found %d instances, baseline %d", names[i], len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("%s: instance %d differs:\n  off:    %s\n  pruned: %s", names[i], j, want[i][j], got[i][j])
			}
		}
		total += len(want[i])
	}
	if total == 0 {
		t.Fatal("pack roster matched nothing; soundness assertion is vacuous")
	}
}

// TestPruneSkipsAndCounts checks prune mode actually skips work on a module
// that provably cannot match (an integer-only function can never satisfy the
// float idioms' fmul/fadd requirements) and that the engine's counters move.
func TestPruneSkipsAndCounts(t *testing.T) {
	mod, err := workloads.ByName("IS").Compile() // integer sort: no float math
	if err != nil {
		t.Fatal(err)
	}
	eng, err := detect.NewEngine(detect.Options{Workers: 4, Prune: detect.PruneOn})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Module(mod); err != nil {
		t.Fatal(err)
	}
	skipped, _, prescreenNs := eng.PruneStats()
	if skipped == 0 {
		t.Error("prune=on over an integer-only workload skipped nothing")
	}
	if prescreenNs <= 0 {
		t.Error("prescreen time not recorded")
	}

	// Reorder mode must never skip, whatever the scores say.
	reng, err := detect.NewEngine(detect.Options{Workers: 4, Prune: detect.PruneReorder})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reng.Module(mod); err != nil {
		t.Fatal(err)
	}
	if s, _, _ := reng.PruneStats(); s != 0 {
		t.Errorf("reorder mode skipped %d solves; must never skip", s)
	}
}
