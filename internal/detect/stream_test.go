package detect_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/constraint"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/leakcheck"
	"repro/internal/workloads"
)

// collectBySeq drains a stream after Close and reassembles results in submit
// order, recording the arrival order as a side channel.
func collectBySeq(t *testing.T, st *detect.Stream, n int) (bySeq []*detect.Result, arrival []int) {
	t.Helper()
	bySeq = make([]*detect.Result, n)
	for sr := range st.Results() {
		if sr.Err != nil {
			t.Fatalf("seq %d: %v", sr.Seq, sr.Err)
		}
		if sr.Seq < 0 || sr.Seq >= n {
			t.Fatalf("seq %d out of range [0,%d)", sr.Seq, n)
		}
		if bySeq[sr.Seq] != nil {
			t.Fatalf("seq %d delivered twice", sr.Seq)
		}
		bySeq[sr.Seq] = sr.Result
		arrival = append(arrival, sr.Seq)
	}
	if len(arrival) != n {
		t.Fatalf("delivered %d results, want %d", len(arrival), n)
	}
	return bySeq, arrival
}

// TestStreamMatchesBatch asserts the streaming intake is deterministic:
// collecting the stream in submit order is byte-identical (instances and
// solver steps) to the batch Modules call over the same modules, at 1, 4 and
// 8 workers, with solver memoization both off and on. Under -race this also
// exercises cross-module task interleaving on the shared pool and the memo
// cache's concurrent access paths.
func TestStreamMatchesBatch(t *testing.T) {
	leakcheck.Register(t)
	var mods []*ir.Module
	var names []string
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", w.Name, err)
		}
		mods = append(mods, mod)
		names = append(names, w.Name)
	}

	// Batch reference without memoization: pure fresh solves.
	want, err := detect.Modules(mods, detect.Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 8} {
		for _, memo := range []bool{false, true} {
			workers, memo := workers, memo
			t.Run(fmt.Sprintf("workers=%d/memo=%v", workers, memo), func(t *testing.T) {
				opts := detect.Options{Workers: workers, NoMemo: !memo}
				if memo {
					opts.Memo = constraint.NewSolveCache()
				}
				eng, err := detect.NewEngine(opts)
				if err != nil {
					t.Fatal(err)
				}
				st := eng.Stream(len(mods))
				for _, mod := range mods {
					st.Submit(mod)
				}
				st.Close()
				got, _ := collectBySeq(t, st, len(mods))
				for i := range want {
					wk, gk := resultKeys(t, want[i]), resultKeys(t, got[i])
					if len(wk) != len(gk) {
						t.Fatalf("%s: %d instances, want %d", names[i], len(gk), len(wk))
					}
					for j := range wk {
						if wk[j] != gk[j] {
							t.Errorf("%s: instance %d differs:\n  batch:  %s\n  stream: %s",
								names[i], j, wk[j], gk[j])
						}
					}
					if got[i].SolverSteps != want[i].SolverSteps {
						t.Errorf("%s: solver steps %d, want %d", names[i], got[i].SolverSteps, want[i].SolverSteps)
					}
					if got[i].Elapsed <= 0 {
						t.Errorf("%s: streamed Elapsed = %v, want > 0", names[i], got[i].Elapsed)
					}
				}
			})
		}
	}
}

// TestStreamOutOfOrderCompletion pins that delivery order is completion
// order, not submit order, and that sequence numbers alone carry the
// determinism: every submitted module's result is delivered exactly once and
// matches its sequential reference no matter when it arrives. Submitting the
// heaviest module first at several workers makes interleaved completion
// overwhelmingly likely (the test's assertions do not depend on it).
func TestStreamOutOfOrderCompletion(t *testing.T) {
	leakcheck.Register(t)
	names := []string{"lbm", "EP", "IS", "sgemm", "histo"}
	var mods []*ir.Module
	for _, n := range names {
		mod, err := workloads.ByName(n).Compile()
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		mods = append(mods, mod)
	}
	var want []*detect.Result
	for i, mod := range mods {
		res, err := detect.Module(mod, detect.Options{})
		if err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
		want = append(want, res)
	}

	eng, err := detect.NewEngine(detect.Options{Workers: 4, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stream(0)
	for _, mod := range mods {
		st.Submit(mod)
	}
	st.Close()
	got, arrival := collectBySeq(t, st, len(mods))
	t.Logf("arrival order: %v", arrival)
	for i := range want {
		wk, gk := resultKeys(t, want[i]), resultKeys(t, got[i])
		if len(wk) != len(gk) {
			t.Fatalf("%s: %d instances, want %d", names[i], len(gk), len(wk))
		}
		for j := range wk {
			if wk[j] != gk[j] {
				t.Errorf("%s: instance %d differs", names[i], j)
			}
		}
	}
}

// TestStreamSubmitAtElapsed pins the per-module wall-time contract: Elapsed
// spans from the caller-provided start (compile start in a pipeline) to
// merge completion.
func TestStreamSubmitAtElapsed(t *testing.T) {
	leakcheck.Register(t)
	mod, err := workloads.ByName("EP").Compile()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := detect.NewEngine(detect.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stream(1)
	offset := 250 * time.Millisecond
	st.SubmitAt(mod, time.Now().Add(-offset))
	st.Close()
	sr := <-st.Results()
	if sr.Err != nil {
		t.Fatal(sr.Err)
	}
	if sr.Result.Elapsed < offset {
		t.Errorf("Elapsed = %v, want >= %v (must span from the provided start)", sr.Result.Elapsed, offset)
	}
}

// TestMemoZeroFreshSolves asserts the acceptance criterion directly: the
// second detection of an identical module (a fresh compile of the same
// source, so all IR pointers differ) performs zero fresh solves — every
// (function × idiom) task is served from the fingerprint memo — and still
// produces byte-identical results.
func TestMemoZeroFreshSolves(t *testing.T) {
	leakcheck.Register(t)
	w := workloads.ByName("CG")
	mod1, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	mod2, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := detect.NewEngine(detect.Options{Workers: 4, Memo: constraint.NewSolveCache()})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := eng.Module(mod1)
	if err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := eng.MemoStats()
	if misses1 == 0 {
		t.Fatal("first detection reported zero fresh solves; memo accounting broken")
	}

	res2, err := eng.Module(mod2)
	if err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := eng.MemoStats()
	if misses2 != misses1 {
		t.Errorf("second detection performed %d fresh solves, want 0", misses2-misses1)
	}
	// The first pass may itself hit for duplicate function shapes within the
	// module; the second pass must hit on every single task.
	tasks := hits1 + misses1
	if hits2-hits1 != tasks {
		t.Errorf("second detection hit the memo %d times, want %d (one per task)", hits2-hits1, tasks)
	}

	k1, k2 := resultKeys(t, res1), resultKeys(t, res2)
	if len(k1) != len(k2) {
		t.Fatalf("instance counts differ: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Errorf("instance %d differs:\n  fresh: %s\n  memo:  %s", i, k1[i], k2[i])
		}
	}
	if res1.SolverSteps != res2.SolverSteps {
		t.Errorf("solver steps %d vs %d; memo must report the skipped search's count", res1.SolverSteps, res2.SolverSteps)
	}
}
