package detect

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/idioms"
	"repro/internal/ir"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := cc.Compile("test", src)
	if err != nil {
		t.Fatalf("cc.Compile: %v", err)
	}
	return mod
}

// A module mixing several idioms must report each exactly once with the
// right classification.
func TestModuleMixedIdioms(t *testing.T) {
	mod := compile(t, `
void spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}

double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; }
    return s;
}

void histo(int* data, int* bins, int n) {
    for (int i = 0; i < n; i++) {
        bins[data[i]] += 1;
    }
}

void jacobi(double* in, double* out, int n) {
    for (int i = 1; i < n - 1; i++) {
        out[i] = (in[i-1] + in[i] + in[i+1]) / 3.0;
    }
}`)
	res, err := Module(mod, Options{})
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	counts := res.CountByClass()
	if counts[idioms.ClassSparseMatrixOp] != 1 {
		t.Errorf("sparse ops = %d, want 1", counts[idioms.ClassSparseMatrixOp])
	}
	if counts[idioms.ClassScalarReduction] != 1 {
		t.Errorf("reductions = %d, want 1", counts[idioms.ClassScalarReduction])
	}
	if counts[idioms.ClassHistogram] != 1 {
		t.Errorf("histograms = %d, want 1", counts[idioms.ClassHistogram])
	}
	if counts[idioms.ClassStencil] != 1 {
		t.Errorf("stencils = %d, want 1", counts[idioms.ClassStencil])
	}
	if res.SolverSteps == 0 {
		t.Error("solver steps not recorded")
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

// Precedence: a GEMM must not double-report its inner loop as a reduction,
// nor its store as a histogram.
func TestPrecedenceGEMM(t *testing.T) {
	mod := compile(t, `
void gemm(int m, int n, int k, float* A, int lda, float* B, int ldb,
          float* C, int ldc, float alpha, float beta) {
    for (int mm = 0; mm < m; mm++) {
        for (int nn = 0; nn < n; nn++) {
            float c = 0.0f;
            for (int i = 0; i < k; i++) {
                c += A[mm + i*lda] * B[nn + i*ldb];
            }
            C[mm + nn*ldc] = C[mm + nn*ldc] * beta + alpha * c;
        }
    }
}`)
	res, err := Module(mod, Options{})
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	if len(res.Instances) != 1 {
		for _, inst := range res.Instances {
			t.Logf("instance: %s", inst.Idiom.Name)
		}
		t.Fatalf("instances = %d, want exactly 1 (the GEMM)", len(res.Instances))
	}
	if res.Instances[0].Idiom.Name != "GEMM" {
		t.Errorf("idiom = %s, want GEMM", res.Instances[0].Idiom.Name)
	}
}

// SPMV precedence over reduction on the same loops.
func TestPrecedenceSPMV(t *testing.T) {
	mod := compile(t, `
void spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}`)
	res, err := Module(mod, Options{})
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	if len(res.Instances) != 1 || res.Instances[0].Idiom.Name != "SPMV" {
		for _, inst := range res.Instances {
			t.Logf("instance: %s", inst.Idiom.Name)
		}
		t.Fatalf("want exactly one SPMV instance, got %d instances", len(res.Instances))
	}
}

// Restricting the idiom set must skip others.
func TestOptionsIdiomFilter(t *testing.T) {
	mod := compile(t, `
double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; }
    return s;
}`)
	res, err := Module(mod, Options{Idioms: []string{"Histogram"}})
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	if len(res.Instances) != 0 {
		t.Fatalf("instances = %d, want 0 with Histogram-only filter", len(res.Instances))
	}
}

// Multiple independent reductions in one function all surface.
func TestMultipleReductions(t *testing.T) {
	mod := compile(t, `
double stats(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]; }
    double sq = 0.0;
    for (int i = 0; i < n; i++) { sq = sq + x[i]*x[i]; }
    return s + sq;
}`)
	res, err := Module(mod, Options{})
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	if got := res.CountByClass()[idioms.ClassScalarReduction]; got != 2 {
		t.Fatalf("reductions = %d, want 2", got)
	}
}

func TestFunctionEntryPoint(t *testing.T) {
	mod := compile(t, `
double sum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}`)
	res, err := Function(mod.FunctionByName("sum"), Options{})
	if err != nil {
		t.Fatalf("Function: %v", err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("instances = %d, want 1", len(res.Instances))
	}
	inst := res.Instances[0]
	if inst.Function.Ident != "sum" {
		t.Errorf("function = %s", inst.Function.Ident)
	}
	if len(inst.Claims) == 0 {
		t.Error("claims must not be empty")
	}
}

// Code with no idioms yields a clean empty result.
func TestNoIdioms(t *testing.T) {
	mod := compile(t, `
int collatz(int x) {
    int steps = 0;
    while (x > 1) {
        if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
        steps++;
    }
    return steps;
}`)
	res, err := Module(mod, Options{})
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	if len(res.Instances) != 0 {
		for _, inst := range res.Instances {
			t.Logf("unexpected: %s %s", inst.Idiom.Name, inst.Solution)
		}
		t.Fatalf("instances = %d, want 0", len(res.Instances))
	}
}
