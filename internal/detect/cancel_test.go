package detect_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/constraint"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// TestStreamIdiomSubsetMatchesSequential pins the per-submission roster
// subset: a Submission carrying Idioms must be byte-identical to the
// sequential driver run with the same Options.Idioms (same instances, same
// precedence, same step count), while other submissions on the same stream
// keep the full roster.
func TestStreamIdiomSubsetMatchesSequential(t *testing.T) {
	mod, err := workloads.ByName("CG").Compile()
	if err != nil {
		t.Fatal(err)
	}
	subset := []string{"Reduction", "SPMV"}
	want, err := detect.Module(mod, detect.Options{Idioms: subset})
	if err != nil {
		t.Fatal(err)
	}
	wantFull, err := detect.Module(mod, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}

	eng, err := detect.NewEngine(detect.Options{Workers: 4, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stream(2)
	st.SubmitJob(detect.Submission{Mod: mod, Idioms: subset})
	st.Submit(mod) // full roster rides the same stream
	st.Close()

	got := make([]*detect.Result, 2)
	for sr := range st.Results() {
		if sr.Err != nil {
			t.Fatalf("seq %d: %v", sr.Seq, sr.Err)
		}
		got[sr.Seq] = sr.Result
	}
	for name, pair := range map[string][2]*detect.Result{
		"subset": {want, got[0]},
		"full":   {wantFull, got[1]},
	} {
		wk, gk := resultKeys(t, pair[0]), resultKeys(t, pair[1])
		if len(wk) != len(gk) {
			t.Fatalf("%s: %d instances, want %d", name, len(gk), len(wk))
		}
		for i := range wk {
			if wk[i] != gk[i] {
				t.Errorf("%s: instance %d differs:\n  sequential: %s\n  stream:     %s", name, i, wk[i], gk[i])
			}
		}
		if pair[1].SolverSteps != pair[0].SolverSteps {
			t.Errorf("%s: solver steps %d, want %d", name, pair[1].SolverSteps, pair[0].SolverSteps)
		}
	}
}

// TestStreamCancellation pins load shedding: cancelling a submission's
// context makes the stream deliver the context error for that sequence
// number (instead of wedging or delivering partial results), frees the
// worker pool, and leaves the stream fully usable for later submissions.
func TestStreamCancellation(t *testing.T) {
	var mods []*ir.Module
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		mods = append(mods, mod)
	}
	ref, err := detect.Modules(mods, detect.Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}

	eng, err := detect.NewEngine(detect.Options{Workers: 4, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stream(len(mods) + 1)

	// A pre-cancelled context must never run any detection work.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	st.SubmitJob(detect.Submission{Mod: mods[0], Ctx: pre})

	// The rest get a context cancelled while solves are in flight.
	ctx, cancel := context.WithCancel(context.Background())
	for _, mod := range mods {
		st.SubmitJob(detect.Submission{Mod: mod, Ctx: ctx})
	}
	cancel()

	// One uncancelled straggler proves the pool survives shedding.
	lastSeq := st.SubmitJob(detect.Submission{Mod: mods[0]})
	st.Close()

	delivered := 0
	for sr := range st.Results() {
		delivered++
		switch {
		case sr.Seq == 0:
			if !errors.Is(sr.Err, context.Canceled) {
				t.Errorf("pre-cancelled submission: err = %v, want context.Canceled", sr.Err)
			}
		case sr.Seq == lastSeq:
			if sr.Err != nil {
				t.Errorf("uncancelled submission failed: %v", sr.Err)
				break
			}
			wk, gk := resultKeys(t, ref[0]), resultKeys(t, sr.Result)
			if len(wk) != len(gk) {
				t.Fatalf("straggler: %d instances, want %d", len(gk), len(wk))
			}
			for i := range wk {
				if wk[i] != gk[i] {
					t.Errorf("straggler instance %d differs after shedding", i)
				}
			}
		default:
			// Raced with cancel: either a clean cancellation error or a full,
			// correct result — never a partial one.
			if sr.Err != nil {
				if !errors.Is(sr.Err, context.Canceled) {
					t.Errorf("seq %d: err = %v, want context.Canceled", sr.Seq, sr.Err)
				}
				break
			}
			wk, gk := resultKeys(t, ref[sr.Seq-1]), resultKeys(t, sr.Result)
			if len(wk) != len(gk) {
				t.Fatalf("seq %d: %d instances, want %d (partial result leaked)", sr.Seq, len(gk), len(wk))
			}
			for i := range wk {
				if wk[i] != gk[i] {
					t.Errorf("seq %d: instance %d differs", sr.Seq, i)
				}
			}
		}
	}
	if want := len(mods) + 2; delivered != want {
		t.Fatalf("delivered %d results, want %d (every submission must resolve)", delivered, want)
	}

	// The pool must drain completely once the stream is done.
	deadline := time.Now().Add(5 * time.Second)
	for st.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d workers still active after cancellation drain", st.Active())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSplitCancellation pins load shedding under intra-solve parallelism:
// cancelling a request while its split solves are in flight must abort every
// branch task promptly (freeing all branch workers, not just the forking
// one) and must never memoize the partial merged result — a later fresh
// detection of the same modules has to rebuild the complete answer, not
// rehydrate a poisoned cache entry. ResplitDepth is set so cancellation also
// lands mid-re-split: nested sub-branches forked off an idle-pool probe must
// be freed and their partial enumerations discarded just like root branches.
func TestSplitCancellation(t *testing.T) {
	var mods []*ir.Module
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		mods = append(mods, mod)
	}
	ref, err := detect.Modules(mods, detect.Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}

	// A private cache makes the poisoning observable: after the cancelled
	// round, re-detecting through the same engine must still be complete.
	cache := constraint.NewSolveCache()
	eng, err := detect.NewEngine(detect.Options{Workers: 4, SolveSplit: 4, ResplitDepth: 2, Memo: cache})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stream(2 * len(mods))

	// Round 1: every module under one context, cancelled while solves (and
	// their branches) are in flight.
	ctx, cancel := context.WithCancel(context.Background())
	for _, mod := range mods {
		st.SubmitJob(detect.Submission{Mod: mod, Ctx: ctx})
	}
	cancel()

	// Round 2 on the same stream: the same modules, uncancelled. Whatever
	// round 1 memoized must be complete, so these have to match the
	// sequential reference exactly.
	base := len(mods)
	for _, mod := range mods {
		st.SubmitJob(detect.Submission{Mod: mod})
	}
	st.Close()

	for sr := range st.Results() {
		if sr.Seq < base {
			// Raced with cancel: a clean context error or a full result.
			if sr.Err != nil {
				if !errors.Is(sr.Err, context.Canceled) {
					t.Errorf("seq %d: err = %v, want context.Canceled", sr.Seq, sr.Err)
				}
				continue
			}
		}
		mi := sr.Seq % base
		if sr.Err != nil {
			t.Errorf("seq %d: unexpected error %v", sr.Seq, sr.Err)
			continue
		}
		wk, gk := resultKeys(t, ref[mi]), resultKeys(t, sr.Result)
		if len(wk) != len(gk) {
			t.Fatalf("seq %d: %d instances, want %d (partial solve leaked%s)",
				sr.Seq, len(gk), len(wk),
				map[bool]string{true: " through the memo", false: ""}[sr.Seq >= base])
		}
		for i := range wk {
			if wk[i] != gk[i] {
				t.Errorf("seq %d: instance %d differs", sr.Seq, i)
			}
		}
		if sr.Result.SolverSteps != ref[mi].SolverSteps {
			t.Errorf("seq %d: steps %d, want %d", sr.Seq, sr.Result.SolverSteps, ref[mi].SolverSteps)
		}
	}

	// Every worker — including branch helpers — must be free promptly.
	deadline := time.Now().Add(5 * time.Second)
	for st.Active() != 0 || st.ActiveBranches() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d workers / %d branches still active after cancellation drain",
				st.Active(), st.ActiveBranches())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
