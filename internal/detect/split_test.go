package detect_test

import (
	"fmt"
	"testing"

	"repro/internal/constraint"
	"repro/internal/detect"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// TestSplitMatchesSequential pins the intra-solve parallelism contract: a
// streaming engine whose backtracking searches fork into 1, 2, 4 or 8 root
// branches must deliver byte-identical results to the sequential driver over
// every workload — same instances, same claim sets, same merge precedence
// and the same aggregated solver step totals. Run under -race this also
// exercises branch scheduling on the shared pool (workers steal branch tasks
// of each other's solves).
func TestSplitMatchesSequential(t *testing.T) {
	var mods []*ir.Module
	var names []string
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", w.Name, err)
		}
		mods = append(mods, mod)
		names = append(names, w.Name)
	}
	var want []*detect.Result
	for i, mod := range mods {
		res, err := detect.Module(mod, detect.Options{})
		if err != nil {
			t.Fatalf("%s: sequential detect: %v", names[i], err)
		}
		want = append(want, res)
	}

	for _, split := range []int{1, 2, 4, 8} {
		for _, resplit := range []int{0, 1, 2} {
			split, resplit := split, resplit
			t.Run(fmt.Sprintf("split=%d/resplit=%d", split, resplit), func(t *testing.T) {
				eng, err := detect.NewEngine(detect.Options{
					Workers: 4, SolveSplit: split, ResplitDepth: resplit, NoMemo: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if eng.SolveSplit() != split {
					t.Fatalf("SolveSplit = %d, want %d", eng.SolveSplit(), split)
				}
				if eng.ResplitDepth() != resplit {
					t.Fatalf("ResplitDepth = %d, want %d", eng.ResplitDepth(), resplit)
				}
				st := eng.Stream(len(mods))
				for _, mod := range mods {
					st.Submit(mod)
				}
				st.Close()
				got := make([]*detect.Result, len(mods))
				for sr := range st.Results() {
					if sr.Err != nil {
						t.Fatalf("seq %d: %v", sr.Seq, sr.Err)
					}
					got[sr.Seq] = sr.Result
				}
				for i := range want {
					wk, gk := resultKeys(t, want[i]), resultKeys(t, got[i])
					if len(wk) != len(gk) {
						t.Fatalf("%s: %d instances, want %d", names[i], len(gk), len(wk))
					}
					for j := range wk {
						if wk[j] != gk[j] {
							t.Errorf("%s: instance %d differs:\n  sequential: %s\n  split:      %s",
								names[i], j, wk[j], gk[j])
						}
					}
					if got[i].SolverSteps != want[i].SolverSteps {
						t.Errorf("%s: solver steps %d, want %d", names[i], got[i].SolverSteps, want[i].SolverSteps)
					}
				}
				if b := st.ActiveBranches(); b != 0 {
					t.Errorf("ActiveBranches = %d after drain, want 0", b)
				}
				decisions, resplits, skipped := eng.SplitStats()
				if split <= 1 && decisions != 0 {
					t.Errorf("split decisions = %d with split %d, want 0", decisions, split)
				}
				if resplit == 0 && resplits != 0 {
					t.Errorf("resplits = %d with depth 0, want 0", resplits)
				}
				var histTotal int64
				for _, n := range eng.SplitVars() {
					histTotal += n
				}
				if histTotal != decisions {
					t.Errorf("split-var histogram sums to %d, want %d decisions", histTotal, decisions)
				}
				if skipped < 0 {
					t.Errorf("split_skipped_cheap = %d, want >= 0", skipped)
				}
			})
		}
	}
}

// TestBatchMatchesSequential pins the parallel batch path: Engine.Modules now
// folds the whole slice onto the same branch-scheduling stream as Submit, so
// batch results must stay byte-identical to the sequential per-module driver
// at every split × re-split combination — and with Workers:1 the batch is
// sequential by construction.
func TestBatchMatchesSequential(t *testing.T) {
	var mods []*ir.Module
	var names []string
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", w.Name, err)
		}
		mods = append(mods, mod)
		names = append(names, w.Name)
	}
	var want []*detect.Result
	for i, mod := range mods {
		res, err := detect.Module(mod, detect.Options{})
		if err != nil {
			t.Fatalf("%s: sequential detect: %v", names[i], err)
		}
		want = append(want, res)
	}

	for _, cfg := range []struct {
		workers, split, resplit int
	}{
		{1, 1, 0}, // sequential by construction
		{4, 1, 0},
		{4, 4, 0},
		{4, 4, 2},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("workers=%d/split=%d/resplit=%d", cfg.workers, cfg.split, cfg.resplit), func(t *testing.T) {
			eng, err := detect.NewEngine(detect.Options{
				Workers: cfg.workers, SolveSplit: cfg.split, ResplitDepth: cfg.resplit, NoMemo: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Modules(mods)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d results, want %d", len(got), len(want))
			}
			for i := range want {
				wk, gk := resultKeys(t, want[i]), resultKeys(t, got[i])
				if len(wk) != len(gk) {
					t.Fatalf("%s: %d instances, want %d", names[i], len(gk), len(wk))
				}
				for j := range wk {
					if wk[j] != gk[j] {
						t.Errorf("%s: instance %d differs:\n  sequential: %s\n  batch:      %s",
							names[i], j, wk[j], gk[j])
					}
				}
				if got[i].SolverSteps != want[i].SolverSteps {
					t.Errorf("%s: solver steps %d, want %d", names[i], got[i].SolverSteps, want[i].SolverSteps)
				}
			}
		})
	}
}

// TestSplitMemoizedMatchesSequential pins the split × memo interaction: the
// cache only ever stores complete merged solves, so a warm hit rehydrates
// exactly what the sequential solver would produce — and re-streaming the
// same modules does zero fresh solves.
func TestSplitMemoizedMatchesSequential(t *testing.T) {
	mod, err := workloads.ByName("sgemm").Compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := detect.Module(mod, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}

	cache := constraint.NewSolveCache()
	eng, err := detect.NewEngine(detect.Options{Workers: 4, SolveSplit: 4, Memo: cache})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		st := eng.Stream(1)
		st.Submit(mod)
		st.Close()
		for sr := range st.Results() {
			if sr.Err != nil {
				t.Fatalf("round %d: %v", round, sr.Err)
			}
			wk, gk := resultKeys(t, want), resultKeys(t, sr.Result)
			if len(wk) != len(gk) {
				t.Fatalf("round %d: %d instances, want %d", round, len(gk), len(wk))
			}
			for j := range wk {
				if wk[j] != gk[j] {
					t.Errorf("round %d: instance %d differs", round, j)
				}
			}
			if sr.Result.SolverSteps != want.SolverSteps {
				t.Errorf("round %d: steps %d, want %d", round, sr.Result.SolverSteps, want.SolverSteps)
			}
		}
	}
	hits, misses := eng.MemoStats()
	if hits == 0 {
		t.Errorf("second round did no memo hits (hits=%d misses=%d)", hits, misses)
	}
}
