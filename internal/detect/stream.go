package detect

import (
	"container/heap"
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/constraint"
	"repro/internal/ir"
	"repro/internal/similarity"
)

// StreamResult couples one streamed module's detection outcome with the
// sequence number its Submit call returned. Results arrive in completion
// order; reassembling them by Seq reproduces submit order. Err is non-nil
// when the submission's context was cancelled before detection completed.
type StreamResult struct {
	Seq    int
	Result *Result
	Err    error
}

// Submission describes one module entering a Stream.
type Submission struct {
	Mod *ir.Module
	// Start is the wall-clock origin of the module's Result.Elapsed; the zero
	// value means "now". A compile→detect pipeline passes its compile start
	// time so the reported elapsed spans compile-start → merge-done.
	Start time.Time
	// Ctx, when non-nil, cancels the submission: queued stage tasks become
	// no-ops, in-flight backtracking searches abort at their next poll, and
	// the StreamResult carries Ctx.Err(). A nil Ctx never cancels.
	Ctx context.Context
	// Deadline, when non-zero, is the submission's completion deadline. The
	// solver pool schedules deadlined stage tasks soonest-deadline-first,
	// ahead of deadline-free work, so a request that can still make its
	// deadline is never stuck behind open-ended traffic. Zero derives the
	// deadline from Ctx (context.WithDeadline reaches here automatically);
	// enforcement is still Ctx's — the deadline only orders the queue.
	Deadline time.Time
	// Client labels the submission with the tenant it belongs to (serving
	// layers thread the authenticated client name end-to-end). Purely
	// identifying: fairness between clients is the pipeline's intake job.
	Client string
	// Idioms restricts detection to the named idioms (resolved against the
	// engine's roster, in the order given — the same precedence semantics as
	// Options.Idioms on the sequential driver). Nil means the full roster.
	Idioms []string
	// Roster, when non-nil, overrides Idioms entirely: detection solves
	// exactly these (idiom, problem) pairs in the given precedence order —
	// the per-request pack path. The slice and the problems it references
	// must be immutable for the submission's lifetime (registry snapshots
	// are).
	Roster []Resolved
	// Explain requests near-miss diagnostics: the delivered Result carries
	// NearMisses for the top unmatched roster idioms (prescreen score,
	// dominant feature deltas, rejecting constraint family). Forces feature
	// extraction even when the engine's prune mode is off.
	Explain bool
}

// Stream is the incremental front door of an Engine: modules are submitted
// one at a time and one Result per module is delivered on Results as soon as
// its merge completes, while the (function × idiom) solves of every in-flight
// module interleave over a single shared worker pool — the same pool shape
// Modules uses, without its whole-batch barrier.
//
// Determinism: solves for one module land in a dense per-module grid and are
// merged serially in function order, exactly as in Modules, so collecting a
// stream in submit order is byte-identical (instances and step counts) to
// Modules over the same batch at any worker count. Unlike batch Modules,
// each streamed Result carries its own wall time: from the start recorded at
// SubmitAt (compile start, when fed by a pipeline) to merge completion.
//
// Consumers must drain Results; in-flight modules block delivering onto it.
//
// Scheduling: stage tasks enter a deadline-ordered queue (earliest deadline
// first; deadline-free tasks after every deadlined one, FIFO among
// themselves), so under mixed traffic the pool prefers the work whose
// deadline is soonest. Branch subtasks of split solves still outrank
// everything — finishing a forked solve releases its waiting worker, while
// new intake only deepens the queue. Determinism is unaffected: tasks write
// into dense per-module grids and merges are serial, so execution order
// never changes output bytes.
type Stream struct {
	eng     *Engine
	results chan StreamResult

	// qmu guards the two-level task queue: branchQ (branch subtasks of split
	// solves, strict priority) and taskQ (stage tasks, EDF order).
	qmu       sync.Mutex
	qcond     *sync.Cond
	branchQ   []*branchSet
	taskQ     taskQueue
	taskOrder int64 // FIFO tiebreak for equal/absent deadlines
	qclosed   bool

	branchActive atomic.Int64 // branch tasks executing right now

	inflight sync.WaitGroup // submitted modules not yet delivered
	workers  sync.WaitGroup // pool goroutines
	active   atomic.Int64   // workers currently executing a task

	mu      sync.Mutex
	nextSeq int
	closed  bool
}

// streamTask is one queued stage task with its scheduling key.
type streamTask struct {
	fn       func()
	deadline time.Time // zero = no deadline (scheduled after all deadlined work)
	score    float64   // prescreen score; higher runs first within a deadline class
	cost     int64     // predicted solve ns; longer runs first among equal scores
	order    int64     // enqueue order, the FIFO tiebreak
}

// taskQueue is a min-heap over streamTask: soonest deadline first,
// deadline-free tasks last; within a deadline class, higher prescreen score
// first, then higher predicted cost (start the likely-longest solves early so
// the pool never discovers its critical path last), then enqueue order. With
// prescreening off every score and cost is zero and the queue degrades to the
// historical deadline-then-FIFO pool exactly.
type taskQueue []streamTask

func (q taskQueue) Len() int { return len(q) }
func (q taskQueue) Less(i, j int) bool {
	di, dj := q[i].deadline, q[j].deadline
	if di.IsZero() != dj.IsZero() {
		return !di.IsZero()
	}
	if !di.IsZero() && !di.Equal(dj) {
		return di.Before(dj)
	}
	if q[i].score != q[j].score {
		return q[i].score > q[j].score
	}
	if q[i].cost != q[j].cost {
		return q[i].cost > q[j].cost
	}
	return q[i].order < q[j].order
}
func (q taskQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *taskQueue) Push(x any)   { *q = append(*q, x.(streamTask)) }
func (q *taskQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = streamTask{}
	*q = old[:n-1]
	return t
}

// branchSet is one split solve's fan-out: n branch tasks claimed by atomic
// index, so the forking worker and any helping workers partition them without
// coordination. wg releases the forking worker once every claimed task has
// finished.
type branchSet struct {
	n     int
	next  atomic.Int64
	task  func(i int)
	wg    sync.WaitGroup
	gauge *atomic.Int64
}

// help claims and runs branch tasks until none remain unclaimed. It is safe
// to call from any goroutine, any number of times; a drained set returns
// immediately.
func (bs *branchSet) help() {
	for {
		i := int(bs.next.Add(1)) - 1
		if i >= bs.n {
			return
		}
		bs.gauge.Add(1)
		bs.task(i)
		bs.gauge.Add(-1)
		bs.wg.Done()
	}
}

// Stream starts a worker pool of the engine's configured size and returns a
// new Stream over it. buffer is the capacity of the Results channel (0 means
// unbuffered). Close the stream to release the pool.
func (e *Engine) Stream(buffer int) *Stream {
	if buffer < 0 {
		buffer = 0
	}
	s := &Stream{
		eng:     e,
		results: make(chan StreamResult, buffer),
	}
	s.qcond = sync.NewCond(&s.qmu)
	for w := 0; w < e.workers; w++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for {
				s.qmu.Lock()
				for len(s.branchQ) == 0 && s.taskQ.Len() == 0 && !s.qclosed {
					s.qcond.Wait()
				}
				// Branch subtasks of in-flight split solves take priority
				// over stage tasks: finishing a forked solve releases its
				// waiting worker, while new intake only deepens the queue.
				if len(s.branchQ) > 0 {
					bs := s.branchQ[0]
					s.branchQ = s.branchQ[1:]
					s.qmu.Unlock()
					s.active.Add(1)
					bs.help()
					s.active.Add(-1)
					continue
				}
				if s.taskQ.Len() > 0 {
					t := heap.Pop(&s.taskQ).(streamTask)
					s.qmu.Unlock()
					s.active.Add(1)
					t.fn()
					s.active.Add(-1)
					continue
				}
				s.qmu.Unlock() // closed and drained
				return
			}
		}()
	}
	return s
}

// fanout is the constraint.TaskRunner the stream hands to split solves: it
// advertises the branch set to idle workers, then helps run the branches
// itself and waits for stragglers. The forking worker executing everything
// nobody claims is what makes nested scheduling deadlock-free — a split
// solve never waits on pool capacity, only on work that is already running.
func (s *Stream) fanout(n int, task func(i int)) {
	if n <= 0 {
		return
	}
	bs := &branchSet{n: n, task: task, gauge: &s.branchActive}
	bs.wg.Add(n)
	// Advertise the set to up to n-1 workers (the caller is the n-th pair of
	// hands). Workers that pop an already-drained set just fall through —
	// a stale advert costs a lock round-trip, never progress.
	s.qmu.Lock()
	for i := 0; i < n-1; i++ {
		s.branchQ = append(s.branchQ, bs)
	}
	s.qcond.Broadcast()
	s.qmu.Unlock()
	bs.help()
	bs.wg.Wait()
}

// Active reports how many pool workers are executing a task right now — the
// numerator of the serving layer's worker-utilization gauge (the denominator
// is the engine's Workers). Branch subtasks of split solves count too: a
// worker helping another solve's branches is every bit as busy as one
// running a whole solve.
func (s *Stream) Active() int { return int(s.active.Load()) }

// ActiveBranches reports how many branch subtasks of split solves are
// executing right now, across all workers (including the solves' own forking
// workers). Always 0 on an engine built with SolveSplit <= 1.
func (s *Stream) ActiveBranches() int { return int(s.branchActive.Load()) }

// IdleCapacity reports whether the pool has a worker idle right now with no
// queued work it could pick up instead — the probe adaptive re-splitting
// consults before forking a branch's remaining candidates. It is
// deliberately conservative: advertised branch sets and queued stage tasks
// both count as pending work (an idle worker will claim those first), and a
// fully active pool never re-splits. The answer is a racy snapshot; the
// solver treats it as a hint only, so staleness costs at most a fork that
// ends up sharing workers (or one that didn't happen), never correctness.
func (s *Stream) IdleCapacity() bool {
	if int(s.active.Load()) >= s.eng.workers {
		return false
	}
	s.qmu.Lock()
	idle := len(s.branchQ) == 0 && s.taskQ.Len() == 0
	s.qmu.Unlock()
	return idle
}

// Submit enqueues one module for detection and returns its sequence number.
// It never blocks on detection work.
func (s *Stream) Submit(mod *ir.Module) int {
	return s.SubmitJob(Submission{Mod: mod})
}

// SubmitAt is Submit with an explicit wall-clock start for the module's
// Result.Elapsed.
func (s *Stream) SubmitAt(mod *ir.Module, start time.Time) int {
	return s.SubmitJob(Submission{Mod: mod, Start: start})
}

// SubmitJob enqueues one submission (module, optional start time, optional
// cancellation context, optional idiom subset) and returns its sequence
// number. It never blocks on detection work.
func (s *Stream) SubmitJob(sub Submission) int {
	if sub.Start.IsZero() {
		sub.Start = time.Now()
	}
	if sub.Deadline.IsZero() && sub.Ctx != nil {
		if d, ok := sub.Ctx.Deadline(); ok {
			sub.Deadline = d
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("detect: Submit on closed Stream")
	}
	seq := s.nextSeq
	s.nextSeq++
	s.inflight.Add(1)
	s.mu.Unlock()
	go s.detect(seq, sub)
	return seq
}

// Results delivers one StreamResult per submitted module, in completion
// order. The channel closes after Close once every in-flight module has been
// delivered.
func (s *Stream) Results() <-chan StreamResult {
	return s.results
}

// Close stops intake. Delivery of in-flight modules continues; the Results
// channel closes (and the worker pool exits) once they drain. Close does not
// block and is idempotent.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	go func() {
		s.inflight.Wait()
		// Every submission has delivered, so every stage has joined and the
		// task queue is empty — wake the workers to observe the close.
		s.qmu.Lock()
		s.qclosed = true
		s.qcond.Broadcast()
		s.qmu.Unlock()
		s.workers.Wait()
		close(s.results)
	}()
}

// detect orchestrates one module: the same analyse → solve-grid → serial
// merge staging as Modules, with the stage tasks executed by the shared pool
// so concurrent modules interleave at (function × idiom) granularity. A
// cancelled context short-circuits remaining stage tasks (queued ones become
// no-ops, running solves abort at their next poll) and delivers the context
// error instead of a Result, so the pool is freed promptly under load
// shedding.
func (s *Stream) detect(seq int, sub Submission) {
	defer s.inflight.Done()
	e := s.eng
	mod := sub.Mod
	var done <-chan struct{}
	ctxErr := func() error { return nil }
	if sub.Ctx != nil {
		done = sub.Ctx.Done()
		ctxErr = func() error { return sub.Ctx.Err() }
	}
	fail := func(err error) {
		s.results <- StreamResult{Seq: seq, Err: err}
	}
	if err := ctxErr(); err != nil {
		fail(err)
		return
	}

	fns := mod.Functions
	infos := make([]*analysis.Info, len(fns))
	fps := make([]constraint.Fingerprint, len(fns))
	needFeats := e.prune != PruneOff || sub.Explain
	var feats []*similarity.Features
	if needFeats {
		feats = make([]*similarity.Features, len(fns))
	}
	// Analysis tasks of prescreened submissions outrank queued solve tasks of
	// other in-flight modules (score +Inf): finishing analysis is what lets
	// the scheduler see the module's scores at all.
	var ascores []float64
	if e.prune != PruneOff {
		ascores = make([]float64, len(fns))
		for i := range ascores {
			ascores[i] = math.Inf(1)
		}
	}
	s.stageKeyed(len(fns), sub.Deadline, ascores, nil, func(i int) {
		if cancelled(done) {
			return
		}
		infos[i] = analysis.Analyze(fns[i])
		fps[i] = e.fingerprint(infos[i])
		if needFeats {
			t0 := time.Now()
			feats[i] = similarity.Extract(infos[i])
			e.prescreenNs.Add(time.Since(t0).Nanoseconds())
		}
	})
	if err := ctxErr(); err != nil {
		fail(err)
		return
	}

	ros := sub.Roster
	if ros == nil {
		ros = e.resolved(e.subset(sub.Idioms))
	}
	nIdioms := len(ros)
	var run constraint.TaskRunner
	var idle func() bool
	if e.split > 1 {
		run = s.fanout
		idle = s.IdleCapacity
	}
	grid := make([]idiomSolutions, len(fns)*nIdioms)
	var scores []float64
	var costs []int64
	if e.prune != PruneOff {
		pre := e.prescreen(feats, infos, ros)
		scores, costs = pre.scores, pre.costs
	}
	s.stageKeyed(len(grid), sub.Deadline, scores, costs, func(t int) {
		if cancelled(done) {
			return
		}
		fi, si := t/nIdioms, t%nIdioms
		if scores != nil {
			if skip, reason := e.pruneSkip(scores[t]); skip {
				grid[t] = idiomSolutions{idiom: ros[si].Idiom, skipped: true, skipReason: reason}
				return
			}
		}
		grid[t] = e.solveResolved(done, run, idle, ros[si], infos[fi], fps[fi])
	})
	if err := ctxErr(); err != nil {
		fail(err)
		return
	}

	res := &Result{}
	for i, fn := range fns {
		merge(fn, grid[i*nIdioms:(i+1)*nIdioms], res)
	}
	if sub.Explain {
		res.NearMisses = nearMisses(ros, fns, feats, res, e.prune == PruneOn)
	}
	res.Elapsed = time.Since(sub.Start)
	s.results <- StreamResult{Seq: seq, Result: res}
}

func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// stage enqueues f(0..n-1) onto the shared pool under the submission's
// deadline and waits for all of them. Tasks of concurrent stages (other
// modules) interleave freely, with soonest-deadline tasks scheduled first;
// results must be written by index, as in Engine.run.
func (s *Stream) stage(n int, deadline time.Time, f func(i int)) {
	s.stageKeyed(n, deadline, nil, nil, f)
}

// stageKeyed is stage with per-task prescreen keys: scores[i]/costs[i] become
// task i's queue priority within its deadline class. Either slice may be nil
// (all-zero keys — plain FIFO within the class).
func (s *Stream) stageKeyed(n int, deadline time.Time, scores []float64, costs []int64, f func(i int)) {
	if n == 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	s.qmu.Lock()
	for i := 0; i < n; i++ {
		i := i
		t := streamTask{
			fn:       func() { defer wg.Done(); f(i) },
			deadline: deadline,
		}
		if scores != nil {
			t.score = scores[i]
		}
		if costs != nil {
			t.cost = costs[i]
		}
		s.taskOrder++
		t.order = s.taskOrder
		heap.Push(&s.taskQ, t)
	}
	s.qcond.Broadcast()
	s.qmu.Unlock()
	wg.Wait()
}
