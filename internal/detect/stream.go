package detect

import (
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/constraint"
	"repro/internal/ir"
)

// StreamResult couples one streamed module's detection outcome with the
// sequence number its Submit call returned. Results arrive in completion
// order; reassembling them by Seq reproduces submit order.
type StreamResult struct {
	Seq    int
	Result *Result
	Err    error
}

// Stream is the incremental front door of an Engine: modules are submitted
// one at a time and one Result per module is delivered on Results as soon as
// its merge completes, while the (function × idiom) solves of every in-flight
// module interleave over a single shared worker pool — the same pool shape
// Modules uses, without its whole-batch barrier.
//
// Determinism: solves for one module land in a dense per-module grid and are
// merged serially in function order, exactly as in Modules, so collecting a
// stream in submit order is byte-identical (instances and step counts) to
// Modules over the same batch at any worker count. Unlike batch Modules,
// each streamed Result carries its own wall time: from the start recorded at
// SubmitAt (compile start, when fed by a pipeline) to merge completion.
//
// Consumers must drain Results; in-flight modules block delivering onto it.
type Stream struct {
	eng     *Engine
	tasks   chan func()
	results chan StreamResult

	inflight sync.WaitGroup // submitted modules not yet delivered
	workers  sync.WaitGroup // pool goroutines

	mu      sync.Mutex
	nextSeq int
	closed  bool
}

// Stream starts a worker pool of the engine's configured size and returns a
// new Stream over it. buffer is the capacity of the Results channel (0 means
// unbuffered). Close the stream to release the pool.
func (e *Engine) Stream(buffer int) *Stream {
	if buffer < 0 {
		buffer = 0
	}
	s := &Stream{
		eng:     e,
		tasks:   make(chan func()),
		results: make(chan StreamResult, buffer),
	}
	for w := 0; w < e.workers; w++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for f := range s.tasks {
				f()
			}
		}()
	}
	return s
}

// Submit enqueues one module for detection and returns its sequence number.
// It never blocks on detection work.
func (s *Stream) Submit(mod *ir.Module) int {
	return s.SubmitAt(mod, time.Now())
}

// SubmitAt is Submit with an explicit wall-clock start for the module's
// Result.Elapsed. A compile→detect pipeline passes its compile start time so
// the reported elapsed spans compile-start → merge-done.
func (s *Stream) SubmitAt(mod *ir.Module, start time.Time) int {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("detect: Submit on closed Stream")
	}
	seq := s.nextSeq
	s.nextSeq++
	s.inflight.Add(1)
	s.mu.Unlock()
	go s.detect(seq, mod, start)
	return seq
}

// Results delivers one StreamResult per submitted module, in completion
// order. The channel closes after Close once every in-flight module has been
// delivered.
func (s *Stream) Results() <-chan StreamResult {
	return s.results
}

// Close stops intake. Delivery of in-flight modules continues; the Results
// channel closes (and the worker pool exits) once they drain. Close does not
// block and is idempotent.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	go func() {
		s.inflight.Wait()
		close(s.tasks)
		s.workers.Wait()
		close(s.results)
	}()
}

// detect orchestrates one module: the same analyse → solve-grid → serial
// merge staging as Modules, with the stage tasks executed by the shared pool
// so concurrent modules interleave at (function × idiom) granularity.
func (s *Stream) detect(seq int, mod *ir.Module, start time.Time) {
	defer s.inflight.Done()
	e := s.eng
	fns := mod.Functions

	infos := make([]*analysis.Info, len(fns))
	fps := make([]constraint.Fingerprint, len(fns))
	s.stage(len(fns), func(i int) {
		infos[i] = analysis.Analyze(fns[i])
		fps[i] = e.fingerprint(infos[i])
	})

	nIdioms := len(e.roster)
	grid := make([]idiomSolutions, len(fns)*nIdioms)
	s.stage(len(grid), func(t int) {
		fi, ri := t/nIdioms, t%nIdioms
		grid[t] = e.solve(ri, infos[fi], fps[fi])
	})

	res := &Result{}
	for i, fn := range fns {
		merge(fn, grid[i*nIdioms:(i+1)*nIdioms], res)
	}
	res.Elapsed = time.Since(start)
	s.results <- StreamResult{Seq: seq, Result: res}
}

// stage enqueues f(0..n-1) onto the shared pool and waits for all of them.
// Tasks of concurrent stages (other modules) interleave freely; results must
// be written by index, as in Engine.run.
func (s *Stream) stage(n int, f func(i int)) {
	if n == 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		s.tasks <- func() {
			defer wg.Done()
			f(i)
		}
	}
	wg.Wait()
}
