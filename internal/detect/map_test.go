package detect

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/idioms"
)

// TestMapExtension exercises the §9 future-work Map idiom: it finds
// data-parallel loops (the mri-q inner sweep shape), but only when asked
// for by name.
func TestMapExtension(t *testing.T) {
	mod, err := cc.Compile("t", `
void scale(double* out, double* in, int n, double a) {
    for (int i = 0; i < n; i++) {
        out[i] = in[i] * a + 1.0;
    }
}

void accum(double* qr, double* x, double kv, int n) {
    for (int v = 0; v < n; v++) {
        qr[v] = qr[v] + cos(kv * x[v]);
    }
}

void serial(double* a, int n) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i-1] * 0.5;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}

	// Not part of the default roster: the Table 1 counts stay faithful.
	def, err := Module(mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range def.Instances {
		if inst.Idiom.Name == "Map" {
			t.Error("Map must not run by default")
		}
	}

	res, err := Module(mod, Options{Idioms: []string{"Map"}})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, inst := range res.Instances {
		if inst.Idiom.Name != "Map" || inst.Idiom.Class != idioms.ClassMap {
			t.Errorf("unexpected instance %s/%s", inst.Idiom.Name, inst.Idiom.Class)
		}
		got[inst.Function.Ident]++
	}
	if got["scale"] != 1 {
		t.Errorf("scale: %d maps, want 1", got["scale"])
	}
	if got["accum"] != 1 {
		t.Errorf("accum (read-modify-write at the iterator): %d maps, want 1", got["accum"])
	}
	if got["serial"] != 0 {
		t.Errorf("serial recurrence misdetected as a map (%d)", got["serial"])
	}
}
