package detect

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/constraint"
	"repro/internal/idioms"
	"repro/internal/ir"
)

// Engine is the concurrent batch detector. It precompiles every idiom's IDL
// constraint problem exactly once at construction (including the solver's
// static node index, so workers never contend on the compile caches) and
// fans detection out over a worker pool: function analysis and each
// (function × idiom) solve are independent tasks. A serial merge stage then
// re-sorts and claim-deduplicates, so results are byte-identical to the
// sequential Module driver regardless of worker count.
type Engine struct {
	roster    []idioms.Idiom
	probs     []*constraint.Problem // parallel to roster
	rosterIdx map[string]int        // idiom name -> roster position
	workers   int
	split     int // intra-solve branch fan-out cap (>= 1)

	// memo is the solver memoization cache (nil when disabled): completed
	// (function-fingerprint × problem) solves are stored position-encoded, so
	// re-detecting an identical function shape — same module again, or a
	// recompile of the same source — rehydrates the cached solutions instead
	// of re-running the backtracking search.
	memo                 *constraint.SolveCache
	memoHits, memoMisses atomic.Int64
}

// NewEngine compiles the idiom roster for opts and sizes the worker pool.
// Workers <= 0 defaults to GOMAXPROCS.
func NewEngine(opts Options) (*Engine, error) {
	ros := roster(opts)
	e := &Engine{
		roster:    ros,
		probs:     make([]*constraint.Problem, len(ros)),
		rosterIdx: make(map[string]int, len(ros)),
		workers:   opts.Workers,
		split:     opts.SolveSplit,
	}
	if e.split < 1 {
		e.split = 1
	}
	for i, idm := range ros {
		e.rosterIdx[idm.Name] = i
	}
	switch {
	case opts.NoMemo:
		// leave e.memo nil
	case opts.Memo != nil:
		e.memo = opts.Memo
	case opts.MemoMaxEntries > 0:
		e.memo = constraint.NewSolveCacheSize(opts.MemoMaxEntries)
	default:
		e.memo = constraint.SharedSolveCache()
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	probs, err := idioms.Problems(ros)
	if err != nil {
		return nil, err
	}
	for i, idm := range ros {
		prob := probs[idm.Name]
		constraint.Prepare(prob)
		e.probs[i] = prob
	}
	return e, nil
}

// Workers reports the configured pool size.
func (e *Engine) Workers() int { return e.workers }

// SolveSplit reports the configured intra-solve branch fan-out cap (1 =
// sequential searches).
func (e *Engine) SolveSplit() int { return e.split }

// MemoStats reports this engine's solver memoization counters: hits are
// (function × idiom) solves served from the cache, misses are fresh
// backtracking searches. Both stay zero when memoization is disabled.
func (e *Engine) MemoStats() (hits, misses int64) {
	return e.memoHits.Load(), e.memoMisses.Load()
}

// Memo exposes the engine's solve cache (nil when memoization is disabled),
// for entry-count and eviction introspection by serving layers.
func (e *Engine) Memo() *constraint.SolveCache { return e.memo }

// Roster reports the engine's idiom roster in precedence order.
func (e *Engine) Roster() []idioms.Idiom {
	return append([]idioms.Idiom(nil), e.roster...)
}

// Resolved pairs an idiom with its compiled constraint problem. It is the
// unit of a per-submission roster: serving layers resolve a request's idiom
// pack against an immutable registry snapshot once at intake, and detection
// then solves exactly those problems — the engine's own precompiled roster
// is only the default. Order is merge precedence, as everywhere else.
type Resolved struct {
	Idiom idioms.Idiom
	Prob  *constraint.Problem
}

// resolved maps engine roster positions to Resolved entries.
func (e *Engine) resolved(ris []int) []Resolved {
	out := make([]Resolved, len(ris))
	for i, ri := range ris {
		out[i] = Resolved{Idiom: e.roster[ri], Prob: e.probs[ri]}
	}
	return out
}

// subset resolves idiom names to roster positions, preserving the request
// order (which becomes merge precedence, exactly as the sequential driver's
// Options.Idioms does). Unknown names are skipped. A nil names list means the
// engine's full roster.
func (e *Engine) subset(names []string) []int {
	if names == nil {
		out := make([]int, len(e.roster))
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, len(names))
	for _, n := range names {
		if ri, ok := e.rosterIdx[n]; ok {
			out = append(out, ri)
		}
	}
	return out
}

// fingerprint digests an analysed function for memo keying; the zero
// Fingerprint is returned (and never used) when memoization is off.
func (e *Engine) fingerprint(info *analysis.Info) constraint.Fingerprint {
	if e.memo == nil {
		return constraint.Fingerprint{}
	}
	return constraint.FingerprintInfo(info)
}

// solve runs one (function × idiom) task through the memo cache. The solver
// is deterministic, so a hit returns exactly what the skipped search would
// have: same solutions, same order after sortSolutions, same step count.
// done, when non-nil, aborts the backtracking search once closed; an aborted
// (incomplete) outcome is marked and never memoized — with splitting, one
// cancelled branch is enough to poison the whole solve for the cache, so the
// memo only ever stores complete merged enumerations. run, when non-nil, is
// the pool-backed scheduler for the engine's SolveSplit branch fan-out (the
// streaming path); a nil run keeps the search sequential.
func (e *Engine) solve(done <-chan struct{}, run constraint.TaskRunner, ri int, info *analysis.Info, fp constraint.Fingerprint) idiomSolutions {
	return e.solveResolved(done, run, Resolved{Idiom: e.roster[ri], Prob: e.probs[ri]}, info, fp)
}

// solveResolved is solve over an explicit (idiom, problem) pair — the shared
// path of the engine's own roster and per-submission pack rosters. Memo keys
// include the problem (and its pack version), so pack solves share the same
// cache without ever colliding across registrations.
func (e *Engine) solveResolved(done <-chan struct{}, run constraint.TaskRunner, r Resolved, info *analysis.Info, fp constraint.Fingerprint) idiomSolutions {
	split := 1
	if run != nil {
		split = e.split
	}
	if e.memo == nil {
		return solveIdiom(done, run, split, r.Idiom, r.Prob, info)
	}
	if sols, steps, ok := e.memo.Get(r.Prob, fp, info); ok {
		e.memoHits.Add(1)
		sortSolutions(sols)
		return idiomSolutions{idiom: r.Idiom, sols: sols, steps: steps}
	}
	e.memoMisses.Add(1)
	ps := solveIdiom(done, run, split, r.Idiom, r.Prob, info)
	if !ps.aborted {
		e.memo.Put(r.Prob, fp, info, ps.sols, ps.steps)
	}
	return ps
}

// Module detects idioms in one module using the worker pool.
func (e *Engine) Module(mod *ir.Module) (*Result, error) {
	rs, err := e.Modules([]*ir.Module{mod})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// Modules detects idioms across a batch of modules, returning one Result per
// module (index-aligned with mods). All (function × idiom) solves across the
// whole batch share one worker pool, so small modules do not serialize the
// pipeline. Because solves interleave across modules, per-module wall time is
// not meaningful here: every Result carries the whole batch's Elapsed (batch
// semantics, kept deliberately). Use Stream for true per-module wall times.
func (e *Engine) Modules(mods []*ir.Module) ([]*Result, error) {
	start := time.Now()

	// Flatten the batch into a function list; tasks index into it.
	type fnRef struct {
		mod int
		fn  *ir.Function
	}
	var fns []fnRef
	for mi, mod := range mods {
		for _, fn := range mod.Functions {
			fns = append(fns, fnRef{mi, fn})
		}
	}

	// Stage 1: analyse every function in parallel (and fingerprint it for
	// memo keying). The Info results are then shared read-only by all solver
	// tasks of that function.
	infos := make([]*analysis.Info, len(fns))
	fps := make([]constraint.Fingerprint, len(fns))
	e.run(len(fns), func(i int) {
		infos[i] = analysis.Analyze(fns[i].fn)
		fps[i] = e.fingerprint(infos[i])
	})

	// Stage 2: one task per (function × idiom), written to a dense result
	// grid so worker scheduling cannot affect ordering.
	nIdioms := len(e.roster)
	grid := make([]idiomSolutions, len(fns)*nIdioms)
	e.run(len(grid), func(t int) {
		fi, ri := t/nIdioms, t%nIdioms
		grid[t] = e.solve(nil, nil, ri, infos[fi], fps[fi])
	})

	// Stage 3: serial deterministic merge, in module order then function
	// order then roster precedence order — exactly the sequential nesting.
	out := make([]*Result, len(mods))
	for mi := range out {
		out[mi] = &Result{}
	}
	for i, ref := range fns {
		merge(ref.fn, grid[i*nIdioms:(i+1)*nIdioms], out[ref.mod])
	}
	elapsed := time.Since(start)
	for _, r := range out {
		r.Elapsed = elapsed
	}
	return out, nil
}

// run executes f(0..n-1) over the pool. Task pickup order is racy by design;
// callers must write results by index and merge serially afterwards.
func (e *Engine) run(n int, f func(i int)) {
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Modules is the batch convenience API: it builds an Engine for opts and
// detects idioms across all modules concurrently.
func Modules(mods []*ir.Module, opts Options) ([]*Result, error) {
	eng, err := NewEngine(opts)
	if err != nil {
		return nil, err
	}
	return eng.Modules(mods)
}
