package detect

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/constraint"
	"repro/internal/idioms"
	"repro/internal/ir"
	"repro/internal/similarity"
)

// Engine is the concurrent batch detector. It precompiles every idiom's IDL
// constraint problem exactly once at construction (including the solver's
// static node index, so workers never contend on the compile caches) and
// fans detection out over a worker pool: function analysis and each
// (function × idiom) solve are independent tasks. A serial merge stage then
// re-sorts and claim-deduplicates, so results are byte-identical to the
// sequential Module driver regardless of worker count.
type Engine struct {
	roster    []idioms.Idiom
	probs     []*constraint.Problem // parallel to roster
	rosterIdx map[string]int        // idiom name -> roster position
	workers   int
	split     int // intra-solve branch fan-out cap (>= 1)
	resplit   int // adaptive re-split depth budget below the root fork (>= 0)

	// memo is the solver memoization cache (nil when disabled): completed
	// (function-fingerprint × problem) solves are stored position-encoded, so
	// re-detecting an identical function shape — same module again, or a
	// recompile of the same source — rehydrates the cached solutions instead
	// of re-running the backtracking search.
	memo                 *constraint.SolveCache
	memoHits, memoMisses atomic.Int64

	// Similarity prescreen state: per-roster-idiom signatures (compiled once
	// alongside the problems), the configured mode, and the cumulative
	// counters the serving layer's /statsz surfaces.
	prune          PruneMode
	sigs           []*similarity.Signature // parallel to roster
	pruneSkipped   atomic.Int64            // solves skipped outright (PruneOn)
	pruneReordered atomic.Int64            // solves scheduled out of natural order
	prescreenNs    atomic.Int64            // time spent extracting + scoring

	// Split-decision gauges: solves that actually forked, adaptive branch
	// re-splits across them, splittable solves kept sequential because the
	// cost table predicted them cheap, and a histogram of the variables
	// solves forked at (the /statsz chosen-variable gauge).
	splitDecisions    atomic.Int64
	splitResplits     atomic.Int64
	splitSkippedCheap atomic.Int64
	splitVarMu        sync.Mutex
	splitVars         map[string]int64
}

// NewEngine compiles the idiom roster for opts and sizes the worker pool.
// Workers <= 0 defaults to GOMAXPROCS.
func NewEngine(opts Options) (*Engine, error) {
	ros := roster(opts)
	e := &Engine{
		roster:    ros,
		probs:     make([]*constraint.Problem, len(ros)),
		sigs:      make([]*similarity.Signature, len(ros)),
		rosterIdx: make(map[string]int, len(ros)),
		workers:   opts.Workers,
		split:     opts.SolveSplit,
		resplit:   opts.ResplitDepth,
		prune:     opts.Prune,
		splitVars: map[string]int64{},
	}
	if e.split < 1 {
		e.split = 1
	}
	if e.resplit < 0 {
		e.resplit = 0
	}
	for i, idm := range ros {
		e.rosterIdx[idm.Name] = i
	}
	switch {
	case opts.NoMemo:
		// leave e.memo nil
	case opts.Memo != nil:
		e.memo = opts.Memo
	case opts.MemoMaxEntries > 0:
		e.memo = constraint.NewSolveCacheSize(opts.MemoMaxEntries)
	default:
		e.memo = constraint.SharedSolveCache()
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	probs, err := idioms.Problems(ros)
	if err != nil {
		return nil, err
	}
	for i, idm := range ros {
		prob := probs[idm.Name]
		constraint.Prepare(prob)
		e.probs[i] = prob
		e.sigs[i] = similarity.Compile(idm.Name, prob)
	}
	return e, nil
}

// Workers reports the configured pool size.
func (e *Engine) Workers() int { return e.workers }

// SolveSplit reports the configured intra-solve branch fan-out cap (1 =
// sequential searches).
func (e *Engine) SolveSplit() int { return e.split }

// ResplitDepth reports the configured adaptive re-split budget: how many
// nesting levels below the root fork a branch may fork again when the pool
// reports idle capacity (0 = never).
func (e *Engine) ResplitDepth() int { return e.resplit }

// SplitStats reports the cumulative split-decision counters: solves that
// actually forked at a split variable, adaptive branch re-splits across
// them, and splittable solves kept sequential because the memo cost table
// predicted them cheaper than fork overhead.
func (e *Engine) SplitStats() (decisions, resplits, skippedCheap int64) {
	return e.splitDecisions.Load(), e.splitResplits.Load(), e.splitSkippedCheap.Load()
}

// SplitVars reports a copy of the chosen-split-variable histogram: how many
// forked solves picked each variable as their split point.
func (e *Engine) SplitVars() map[string]int64 {
	e.splitVarMu.Lock()
	defer e.splitVarMu.Unlock()
	out := make(map[string]int64, len(e.splitVars))
	for v, n := range e.splitVars {
		out[v] = n
	}
	return out
}

// MemoStats reports this engine's solver memoization counters: hits are
// (function × idiom) solves served from the cache, misses are fresh
// backtracking searches. Both stay zero when memoization is disabled.
func (e *Engine) MemoStats() (hits, misses int64) {
	return e.memoHits.Load(), e.memoMisses.Load()
}

// Memo exposes the engine's solve cache (nil when memoization is disabled),
// for entry-count and eviction introspection by serving layers.
func (e *Engine) Memo() *constraint.SolveCache { return e.memo }

// Prune reports the engine's configured prescreen mode.
func (e *Engine) Prune() PruneMode { return e.prune }

// PruneStats reports the cumulative prescreen counters: solves skipped
// outright (PruneOn only), solves scheduled out of their natural roster
// order, and total nanoseconds spent extracting features and scoring.
func (e *Engine) PruneStats() (skipped, reordered, prescreenNs int64) {
	return e.pruneSkipped.Load(), e.pruneReordered.Load(), e.prescreenNs.Load()
}

// Roster reports the engine's idiom roster in precedence order.
func (e *Engine) Roster() []idioms.Idiom {
	return append([]idioms.Idiom(nil), e.roster...)
}

// Resolved pairs an idiom with its compiled constraint problem. It is the
// unit of a per-submission roster: serving layers resolve a request's idiom
// pack against an immutable registry snapshot once at intake, and detection
// then solves exactly those problems — the engine's own precompiled roster
// is only the default. Order is merge precedence, as everywhere else.
type Resolved struct {
	Idiom idioms.Idiom
	Prob  *constraint.Problem
	// Sig is the idiom's prescreen signature (engine roster entries always
	// carry one; pack rosters carry the signature compiled at registration).
	// A nil signature scores 1 — unknown never deprioritizes, never skips.
	Sig *similarity.Signature
}

// resolved maps engine roster positions to Resolved entries.
func (e *Engine) resolved(ris []int) []Resolved {
	out := make([]Resolved, len(ris))
	for i, ri := range ris {
		out[i] = Resolved{Idiom: e.roster[ri], Prob: e.probs[ri], Sig: e.sigs[ri]}
	}
	return out
}

// subset resolves idiom names to roster positions, preserving the request
// order (which becomes merge precedence, exactly as the sequential driver's
// Options.Idioms does). Unknown names are skipped. A nil names list means the
// engine's full roster.
func (e *Engine) subset(names []string) []int {
	if names == nil {
		out := make([]int, len(e.roster))
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, len(names))
	for _, n := range names {
		if ri, ok := e.rosterIdx[n]; ok {
			out = append(out, ri)
		}
	}
	return out
}

// fingerprint digests an analysed function for memo keying; the zero
// Fingerprint is returned (and never used) when memoization is off.
func (e *Engine) fingerprint(info *analysis.Info) constraint.Fingerprint {
	if e.memo == nil {
		return constraint.Fingerprint{}
	}
	return constraint.FingerprintInfo(info)
}

// SplitCheapCost is the predicted solve duration below which a splittable
// solve stays sequential: forking, scheduling and merging branches costs
// real work, and a solve this short finishes before parallelism pays for
// it. It also sizes the fan-out of solves above the threshold — one branch
// per SplitCheapCost of predicted work, capped at the configured SolveSplit
// — so a 4ms solve forks 2 ways while a worst-case solve takes the full cap.
const SplitCheapCost = 2 * time.Millisecond

// splitPlan decides one solve's branch scheduling from configuration and
// the memo layer's measured cost table. No runner or no configured split
// keeps the solve sequential. With a cost prediction available, solves
// predicted cheaper than SplitCheapCost skip fork overhead entirely (the
// split_skipped_cheap gauge counts them) and costlier solves fork
// proportionally to predicted duration; without a prediction (cold cost
// table, memoization off) the plan is optimistic full fan-out — the
// pre-adaptive behavior.
func (e *Engine) splitPlan(run constraint.TaskRunner, idle func() bool, prob *constraint.Problem, info *analysis.Info) solvePlan {
	if run == nil || e.split <= 1 {
		return solvePlan{split: 1}
	}
	plan := solvePlan{run: run, split: e.split, resplit: e.resplit, idle: idle}
	if e.memo == nil {
		return plan
	}
	pred, ok := e.memo.PredictCost(prob, info)
	if !ok {
		return plan
	}
	if pred < SplitCheapCost {
		e.splitSkippedCheap.Add(1)
		return solvePlan{split: 1}
	}
	ways := int(pred / SplitCheapCost)
	if ways < 2 {
		ways = 2
	}
	if ways > e.split {
		ways = e.split
	}
	plan.split = ways
	return plan
}

// recordSplit feeds one fresh solve's outcome into the split-decision
// gauges: a solve that forked counts as a decision, its adaptive re-splits
// accumulate, and its chosen variable lands in the histogram. Solves that
// ran sequentially (unsplittable, or planned sequential) record nothing.
func (e *Engine) recordSplit(ps idiomSolutions) {
	if ps.splitVar == "" {
		return
	}
	e.splitDecisions.Add(1)
	e.splitResplits.Add(int64(ps.resplits))
	e.splitVarMu.Lock()
	e.splitVars[ps.splitVar]++
	e.splitVarMu.Unlock()
}

// solveResolved runs one (function × idiom) task — an explicit (idiom,
// problem) pair, the shared path of the engine's own roster and
// per-submission pack rosters — through the memo cache. The solver is
// deterministic, so a hit returns exactly what the skipped search would
// have: same solutions, same order after sortSolutions, same step count.
// Memo keys include the problem (and its pack version), so pack solves
// share the same cache without ever colliding across registrations. done,
// when non-nil, aborts the backtracking search once closed; an aborted
// (incomplete) outcome is marked and never memoized — with splitting, one
// cancelled branch (however deeply re-split) is enough to poison the whole
// solve for the cache, so the memo only ever stores complete merged
// enumerations. run, when non-nil, is the pool-backed scheduler for branch
// fan-out (sized per solve by splitPlan); a nil run keeps the search
// sequential.
func (e *Engine) solveResolved(done <-chan struct{}, run constraint.TaskRunner, idle func() bool, r Resolved, info *analysis.Info, fp constraint.Fingerprint) idiomSolutions {
	plan := e.splitPlan(run, idle, r.Prob, info)
	if e.memo == nil {
		ps := solveIdiom(done, plan, r.Idiom, r.Prob, info)
		e.recordSplit(ps)
		return ps
	}
	if sols, steps, ok := e.memo.Get(r.Prob, fp, info); ok {
		e.memoHits.Add(1)
		sortSolutions(sols)
		return idiomSolutions{idiom: r.Idiom, sols: sols, steps: steps}
	}
	e.memoMisses.Add(1)
	start := time.Now()
	ps := solveIdiom(done, plan, r.Idiom, r.Prob, info)
	e.recordSplit(ps)
	if !ps.aborted {
		e.memo.Put(r.Prob, fp, info, ps.sols, ps.steps)
		// Feed the scheduler's cost model: measured duration of a complete
		// fresh solve, keyed by (problem × function shape class).
		e.memo.RecordCost(r.Prob, info, time.Since(start))
	}
	return ps
}

// Module detects idioms in one module using the worker pool.
func (e *Engine) Module(mod *ir.Module) (*Result, error) {
	rs, err := e.Modules([]*ir.Module{mod})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// Modules detects idioms across a batch of modules, returning one Result per
// module (index-aligned with mods). The batch rides the stream's branch
// scheduler: every module is submitted to a private Stream over the engine's
// pool, so all (function × idiom) solves across the whole batch interleave —
// small modules do not serialize the pipeline — and, unlike the pre-adaptive
// batch path, split solves fork here too: a single huge module parallelizes
// in batch mode exactly as it would streaming. With Workers: 1 the pool is
// one worker, so every stage task and every solve runs sequentially by
// construction (the paper's Table 2 sequential metrics are unaffected).
// Because solves interleave across modules, per-module wall time is not
// meaningful here: every Result carries the whole batch's Elapsed (batch
// semantics, kept deliberately). Use Stream for true per-module wall times.
func (e *Engine) Modules(mods []*ir.Module) ([]*Result, error) {
	start := time.Now()
	st := e.Stream(len(mods))
	for _, mod := range mods {
		st.SubmitAt(mod, start)
	}
	st.Close()
	out := make([]*Result, len(mods))
	for sr := range st.Results() {
		if sr.Err != nil {
			// Unreachable today: batch submissions carry no context, and a
			// nil context never cancels. Kept for defense in depth.
			return nil, sr.Err
		}
		out[sr.Seq] = sr.Result
	}
	elapsed := time.Since(start)
	for _, r := range out {
		r.Elapsed = elapsed
	}
	return out, nil
}

// prescreened is one batch's prescreen outcome: the execution order of the
// (function × idiom) task grid plus each task's score and predicted cost.
type prescreened struct {
	order  []int // permutation of grid indices, best-first
	scores []float64
	costs  []int64
}

// prescreen scores every (function × idiom) pair of a dense task grid and
// returns the execution order: best-score-first, then (from the memo layer's
// measured cost table) longest-likely-solve-first, then natural index order.
// Running high-score long solves early keeps the pool from discovering its
// critical path last; output is unaffected because results are written by
// grid index and merged serially. The displaced-task count feeds the
// prune_reordered gauge.
func (e *Engine) prescreen(feats []*similarity.Features, infos []*analysis.Info, ros []Resolved) prescreened {
	start := time.Now()
	n := len(feats) * len(ros)
	p := prescreened{
		order:  make([]int, n),
		scores: make([]float64, n),
		costs:  make([]int64, n),
	}
	for t := 0; t < n; t++ {
		fi, si := t/len(ros), t%len(ros)
		p.scores[t] = ros[si].Sig.Score(feats[fi])
		if e.memo != nil {
			if d, ok := e.memo.PredictCost(ros[si].Prob, infos[fi]); ok {
				p.costs[t] = d.Nanoseconds()
			}
		}
		p.order[t] = t
	}
	sort.SliceStable(p.order, func(a, b int) bool {
		ta, tb := p.order[a], p.order[b]
		if p.scores[ta] != p.scores[tb] {
			return p.scores[ta] > p.scores[tb]
		}
		if p.costs[ta] != p.costs[tb] {
			return p.costs[ta] > p.costs[tb]
		}
		return ta < tb
	})
	var moved int64
	for k, t := range p.order {
		if k != t {
			moved++
		}
	}
	e.pruneReordered.Add(moved)
	e.prescreenNs.Add(time.Since(start).Nanoseconds())
	return p
}

// pruneSkip decides whether a task with the given prescreen score is skipped
// under the engine's mode. Only PruneOn skips, and only at score 0 — the
// "provably impossible" value Signature.Score reserves for violated
// necessary conditions — so a skipped solve can never have matched.
func (e *Engine) pruneSkip(score float64) (bool, string) {
	if e.prune != PruneOn || score > 0 {
		return false, ""
	}
	e.pruneSkipped.Add(1)
	return true, "prescreen: required opcodes absent from function"
}

// nearMisses builds a module's explain diagnostics: for every roster idiom
// without a detected instance, the best-scoring function with the
// signature's feature deltas and rejecting constraint family; the top
// NearMissTopK rows by score are reported. Deterministic: scores are pure
// arithmetic over features and roster order breaks ties.
func nearMisses(ros []Resolved, fns []*ir.Function, feats []*similarity.Features, res *Result, pruned bool) []NearMiss {
	matched := map[string]bool{}
	for _, inst := range res.Instances {
		matched[inst.Idiom.Name] = true
	}
	var out []NearMiss
	for _, r := range ros {
		if matched[r.Idiom.Name] || len(fns) == 0 {
			continue
		}
		best, bi := -1.0, 0
		for fi := range fns {
			if sc := r.Sig.Score(feats[fi]); sc > best {
				best, bi = sc, fi
			}
		}
		nm := NearMiss{
			Idiom:    r.Idiom.Name,
			Function: fns[bi].Ident,
			Score:    best,
			Skipped:  pruned && best <= 0,
		}
		nm.Deltas, nm.Family = r.Sig.Explain(feats[bi])
		out = append(out, nm)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > NearMissTopK {
		out = out[:NearMissTopK]
	}
	return out
}

// Modules is the batch convenience API: it builds an Engine for opts and
// detects idioms across all modules concurrently.
func Modules(mods []*ir.Module, opts Options) ([]*Result, error) {
	eng, err := NewEngine(opts)
	if err != nil {
		return nil, err
	}
	return eng.Modules(mods)
}
