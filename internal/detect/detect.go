// Package detect runs the idiom library over IR modules, de-duplicates and
// prioritizes solutions, and reports idiom instances — the "Constraints
// Solver" plus bookkeeping stage of the paper's Figure 1 workflow.
package detect

import (
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/constraint"
	"repro/internal/idioms"
	"repro/internal/ir"
)

// Instance is one detected idiom occurrence.
type Instance struct {
	Idiom    idioms.Idiom
	Function *ir.Function
	Solution constraint.Solution
	// Claims are the instructions this instance owns for de-duplication:
	// loop guards and the defining store.
	Claims []*ir.Instruction
}

// Result aggregates detection over a module.
type Result struct {
	Instances []Instance
	// SolverSteps is the total backtracking step count (compile-time cost).
	SolverSteps int
	// Elapsed is the wall-clock detection time.
	Elapsed time.Duration
}

// CountByClass tallies instances per idiom class.
func (r *Result) CountByClass() map[idioms.Class]int {
	out := map[idioms.Class]int{}
	for _, inst := range r.Instances {
		out[inst.Idiom.Class]++
	}
	return out
}

// Options tune detection.
type Options struct {
	// Idioms restricts detection to the named idioms (empty = all).
	Idioms []string
}

// Module detects idioms in every function of the module.
func Module(mod *ir.Module, opts Options) (*Result, error) {
	res := &Result{}
	start := time.Now()
	for _, fn := range mod.Functions {
		if err := function(fn, opts, res); err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Function detects idioms in a single function.
func Function(fn *ir.Function, opts Options) (*Result, error) {
	res := &Result{}
	start := time.Now()
	if err := function(fn, opts, res); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func function(fn *ir.Function, opts Options, res *Result) error {
	info := analysis.Analyze(fn)
	claimed := map[*ir.Instruction]bool{}

	// The default set is the paper's; extensions (the §9 future-work
	// idioms, e.g. Map) participate only when named explicitly.
	roster := idioms.All()
	if len(opts.Idioms) > 0 {
		roster = roster[:0]
		for _, n := range opts.Idioms {
			if idm, ok := idioms.ByName(n); ok {
				roster = append(roster, idm)
			}
		}
	}

	for _, idm := range roster {
		prob, err := idioms.Problem(idm.Top)
		if err != nil {
			return err
		}
		solver := constraint.NewSolver(prob, info)
		sols := solver.Solve()
		res.SolverSteps += solver.Steps

		// Deterministic order before claiming.
		sort.SliceStable(sols, func(i, j int) bool {
			return solutionOrder(sols[i]) < solutionOrder(sols[j])
		})
		for _, sol := range sols {
			claims := claimSet(idm, sol)
			overlap := false
			for _, c := range claims {
				if claimed[c] {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			for _, c := range claims {
				claimed[c] = true
			}
			res.Instances = append(res.Instances, Instance{
				Idiom: idm, Function: fn, Solution: sol, Claims: claims,
			})
		}
	}
	return nil
}

func solutionOrder(sol constraint.Solution) string {
	keys := make([]string, 0, len(sol))
	for k := range sol {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(sol[k].Operand())
		b.WriteString(";")
	}
	return b.String()
}

// claimSet derives the ownership set of a solution: every loop guard it
// spans plus its defining store. Claiming guards prevents an inner loop of a
// GEMM from also being reported as a reduction, and claiming the store keeps
// equivalent solutions (commutative rediscoveries) from double counting.
func claimSet(idm idioms.Idiom, sol constraint.Solution) []*ir.Instruction {
	var out []*ir.Instruction
	add := func(name string) {
		if v, ok := sol[name]; ok {
			if in, isInstr := v.(*ir.Instruction); isInstr {
				out = append(out, in)
			}
		}
	}
	switch idm.Name {
	case "GEMM":
		add("loop[0].guard")
		add("loop[1].guard")
		add("loop[2].guard")
		add("output.store")
	case "SPMV":
		add("guard")
		add("inner.guard")
		add("output.store")
	case "Stencil3":
		add("loop[0].guard")
		add("loop[1].guard")
		add("loop[2].guard")
		add("store")
	case "Stencil2":
		add("loop[0].guard")
		add("loop[1].guard")
		add("store")
	case "Stencil1":
		add("guard")
		add("store")
	case "Histogram":
		add("guard")
		add("store")
	case "Reduction":
		add("guard")
		add("old_value")
	case "Map":
		add("guard")
		add("out.store")
	}
	return out
}
