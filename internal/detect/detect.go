// Package detect runs the idiom library over IR modules, de-duplicates and
// prioritizes solutions, and reports idiom instances — the "Constraints
// Solver" plus bookkeeping stage of the paper's Figure 1 workflow.
//
// Two drivers are provided: Module/Function solve sequentially, while Engine
// (and the Modules convenience wrapper) precompiles every idiom's constraint
// problem once and fans the independent (function × idiom) solves out over a
// worker pool. Both produce byte-identical results: solutions are re-sorted
// deterministically and claim-based de-duplication always runs serially in
// roster precedence order.
package detect

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/constraint"
	"repro/internal/idioms"
	"repro/internal/ir"
)

// Instance is one detected idiom occurrence.
type Instance struct {
	Idiom    idioms.Idiom
	Function *ir.Function
	Solution constraint.Solution
	// Claims are the instructions this instance owns for de-duplication:
	// loop guards and the defining store.
	Claims []*ir.Instruction
}

// Result aggregates detection over a module.
type Result struct {
	Instances []Instance
	// SolverSteps is the total backtracking step count (compile-time cost).
	SolverSteps int
	// Elapsed is the wall-clock detection time.
	Elapsed time.Duration
	// NearMisses holds the prescreen's explain-mode diagnostics: the top
	// unmatched idioms of the module with their similarity evidence. Only
	// populated when the submission asked for it (Submission.Explain).
	NearMisses []NearMiss
}

// NearMiss is one explain-mode diagnostic: an idiom the module did not
// match, paired with the best-scoring function and the reason the pair was
// rejected — the "this loop is 1 constraint away from GEMM" report.
type NearMiss struct {
	// Idiom is the unmatched idiom; Function the best-scoring function.
	Idiom    string
	Function string
	// Score is the prescreen similarity in [0, 1] (0 = provably impossible).
	Score float64
	// Deltas are the dominant feature differences, largest deficit first.
	Deltas []string
	// Family is the constraint family that rejected the pair: "opcode",
	// "control-flow", or "dataflow" (structure matched; the backtracking
	// search itself found no assignment).
	Family string
	// Skipped marks pairs prune mode never solved (score 0).
	Skipped bool
}

// NearMissTopK bounds the near-miss rows reported per module.
const NearMissTopK = 3

// CountByClass tallies instances per idiom class.
func (r *Result) CountByClass() map[idioms.Class]int {
	out := map[idioms.Class]int{}
	for _, inst := range r.Instances {
		out[inst.Idiom.Class]++
	}
	return out
}

// Options tune detection.
type Options struct {
	// Idioms restricts detection to the named idioms (empty = all).
	Idioms []string
	// Workers bounds the worker pool of the parallel engine (Engine,
	// Modules). Zero or negative means GOMAXPROCS. Sequential Module and
	// Function ignore it.
	Workers int
	// Memo selects the solver memoization cache the engine keys solves into:
	// nil means the process-wide constraint.SharedSolveCache. Supply a
	// private cache for isolated hit/miss accounting (tests, benchmarks).
	Memo *constraint.SolveCache
	// NoMemo disables solver memoization entirely (overriding Memo). Table 2
	// uses this so its compile-time overhead rows keep measuring fresh
	// constraint solves.
	NoMemo bool
	// MemoMaxEntries, when positive and Memo is nil, gives the engine a
	// private solve cache LRU-bounded at this many entries instead of the
	// process-wide shared cache (which is itself bounded at
	// constraint.DefaultMemoMaxEntries).
	MemoMaxEntries int
	// Prune selects the similarity-prescreen mode of the parallel engine
	// (Engine, Modules, Stream). The zero value is PruneReorder: solves are
	// scheduled best-score-first and longest-likely-solve-first but never
	// skipped, so output stays byte-identical to PruneOff at any worker
	// count. PruneOn additionally skips (function × idiom) pairs whose
	// signature proves no solution can exist. The sequential Module/Function
	// drivers never prescreen — they are the soundness baseline.
	Prune PruneMode
	// SolveSplit caps intra-solve parallelism: each fresh backtracking
	// search may fork at its split variable's candidate list (the widest
	// relevant, unbound variable the search reaches deterministically; see
	// constraint.Solver) into up to this many branch tasks, scheduled on the
	// same shared worker pool as whole (function × idiom) solves (no second
	// pool; see Stream). Zero or one keeps every search sequential. Splitting
	// never changes output: solutions, merge precedence and step counts are
	// byte-identical to the sequential solver. Batch Modules rides the same
	// branch scheduler as Stream, so a single huge module parallelizes in
	// batch mode too; with Workers: 1 the pool has one worker and every
	// solve stays sequential by construction, so the paper's sequential
	// metrics (Table 2) are unaffected.
	SolveSplit int
	// ResplitDepth lets a branch of a split solve fork its unprocessed
	// candidate chunk again — up to this many nesting levels below the root
	// fork — whenever the shared pool reports idle capacity, adapting
	// fan-out to load instead of fixing it at intake. 0 (the default) never
	// re-splits (the pre-adaptive behavior). Like SolveSplit, re-splitting
	// never changes output.
	ResplitDepth int
}

// PruneMode selects how the engine uses similarity-prescreen scores.
type PruneMode int

const (
	// PruneReorder (the default) schedules solves best-score-first and
	// longest-likely-solve-first but runs every pair: output is
	// byte-identical to PruneOff.
	PruneReorder PruneMode = iota
	// PruneOff disables the prescreen entirely (the pre-PR 7 scheduler).
	PruneOff
	// PruneOn skips pairs whose signature proves no solution exists,
	// recording a skip reason; matched instances are unaffected because
	// signatures encode necessary conditions only.
	PruneOn
)

// String renders the mode as its flag spelling.
func (m PruneMode) String() string {
	switch m {
	case PruneOff:
		return "off"
	case PruneOn:
		return "on"
	}
	return "reorder"
}

// ParsePruneMode maps flag spellings to modes: "" and "reorder" are the
// default reorder-only mode, "off" disables the prescreen, "on"/"prune"
// enable skipping.
func ParsePruneMode(s string) (PruneMode, error) {
	switch s {
	case "", "reorder":
		return PruneReorder, nil
	case "off":
		return PruneOff, nil
	case "on", "prune":
		return PruneOn, nil
	}
	return PruneReorder, fmt.Errorf("detect: unknown prune mode %q (want off, reorder, or on)", s)
}

// roster resolves the idiom set for the options. The default set is the
// paper's; extensions (the §9 future-work idioms, e.g. Map) participate only
// when named explicitly.
func roster(opts Options) []idioms.Idiom {
	all := idioms.All()
	if len(opts.Idioms) == 0 {
		return all
	}
	out := all[:0]
	for _, n := range opts.Idioms {
		if idm, ok := idioms.ByName(n); ok {
			out = append(out, idm)
		}
	}
	return out
}

// Module detects idioms in every function of the module.
func Module(mod *ir.Module, opts Options) (*Result, error) {
	res := &Result{}
	start := time.Now()
	for _, fn := range mod.Functions {
		if err := function(fn, opts, res); err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Function detects idioms in a single function.
func Function(fn *ir.Function, opts Options) (*Result, error) {
	res := &Result{}
	start := time.Now()
	if err := function(fn, opts, res); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func function(fn *ir.Function, opts Options, res *Result) error {
	info := analysis.Analyze(fn)
	ros := roster(opts)
	per := make([]idiomSolutions, len(ros))
	for i, idm := range ros {
		prob, err := idioms.Problem(idm.Top)
		if err != nil {
			return err
		}
		per[i] = solveIdiom(nil, solvePlan{split: 1}, idm, prob, info)
	}
	merge(fn, per, res)
	return nil
}

// idiomSolutions is the outcome of one independent (function × idiom) solve:
// the sorted candidate solutions plus the solver's step count. It is the unit
// of work the parallel engine distributes. aborted marks a solve cancelled
// mid-search; its solutions are incomplete and must not be merged or cached.
type idiomSolutions struct {
	idiom   idioms.Idiom
	sols    []constraint.Solution
	steps   int
	aborted bool
	// skipped marks a solve prune mode never ran; skipReason records why.
	// A skipped entry merges as zero solutions and zero steps.
	skipped    bool
	skipReason string
	// splitVar is the variable the solve forked at ("" = ran sequentially)
	// and resplits the number of adaptive branch re-splits it performed —
	// the raw material of the engine's split-decision gauges.
	splitVar string
	resplits int
}

// solvePlan is one solve's scheduling decision: the runner branch tasks are
// executed through, how many ways to fork at the split variable (1 =
// sequential), how many re-split levels branches may nest, and the
// idle-capacity probe re-splitting consults. The engine derives it per solve
// from configuration and the memo layer's cost table (see Engine.splitPlan);
// the zero value runs fully sequential.
type solvePlan struct {
	run     constraint.TaskRunner
	split   int
	resplit int
	idle    func() bool
}

// solveIdiom runs one constraint problem over one analysed function and
// sorts the solutions deterministically. It touches no shared mutable state,
// so any number of solves may run concurrently against the same Info. done,
// when non-nil, cancels the backtracking search once closed. plan, when
// populated, lets the search fork at its split variable's candidate list
// into up to plan.split branch tasks executed through plan.run (the engine's
// shared pool), re-splitting adaptively under plan.resplit/plan.idle; the
// outcome —
// solutions, order and step count — is byte-identical to the sequential
// search, and a solve with any cancelled branch reports aborted so it is
// never merged or memoized.
func solveIdiom(done <-chan struct{}, plan solvePlan, idm idioms.Idiom, prob *constraint.Problem, info *analysis.Info) idiomSolutions {
	solver := constraint.NewSolver(prob, info)
	solver.Cancel = done
	solver.Split = plan.split
	solver.Run = plan.run
	solver.ResplitDepth = plan.resplit
	solver.Idle = plan.idle
	sols := solver.Solve()
	sortSolutions(sols)
	return idiomSolutions{
		idiom: idm, sols: sols, steps: solver.Steps, aborted: solver.Cancelled(),
		splitVar: solver.SplitVar(), resplits: solver.Resplits(),
	}
}

// sortSolutions imposes the deterministic pre-claim order. Memo-rehydrated
// solution lists go through the same sort as fresh ones, so a cache hit
// cannot perturb downstream claiming.
func sortSolutions(sols []constraint.Solution) {
	sort.SliceStable(sols, func(i, j int) bool {
		return solutionOrder(sols[i]) < solutionOrder(sols[j])
	})
}

// merge runs claim-based de-duplication over one function's per-idiom
// solutions, in roster precedence order, appending surviving instances to
// res. It must stay serial per function: claims made by earlier (more
// specific) idioms suppress later overlapping solutions.
func merge(fn *ir.Function, per []idiomSolutions, res *Result) {
	claimed := map[*ir.Instruction]bool{}
	for _, ps := range per {
		res.SolverSteps += ps.steps
		for _, sol := range ps.sols {
			claims := claimSet(ps.idiom, sol)
			overlap := false
			for _, c := range claims {
				if claimed[c] {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			for _, c := range claims {
				claimed[c] = true
			}
			res.Instances = append(res.Instances, Instance{
				Idiom: ps.idiom, Function: fn, Solution: sol, Claims: claims,
			})
		}
	}
}

func solutionOrder(sol constraint.Solution) string {
	keys := make([]string, 0, len(sol))
	for k := range sol {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(sol[k].Operand())
		b.WriteString(";")
	}
	return b.String()
}

// claimSet derives the ownership set of a solution: every loop guard it
// spans plus its defining store. Claiming guards prevents an inner loop of a
// GEMM from also being reported as a reduction, and claiming the store keeps
// equivalent solutions (commutative rediscoveries) from double counting.
func claimSet(idm idioms.Idiom, sol constraint.Solution) []*ir.Instruction {
	var out []*ir.Instruction
	add := func(name string) {
		if v, ok := sol[name]; ok {
			if in, isInstr := v.(*ir.Instruction); isInstr {
				out = append(out, in)
			}
		}
	}
	if idm.Scheme != "" {
		// Pack-registered idioms derive their ownership set from the
		// declared transform scheme: the canonical loop guards the scheme
		// consumes plus the defining store, mirroring the per-name table
		// below — so pack idioms participate in claim de-duplication like
		// built-ins instead of double-reporting commutative rediscoveries.
		// The scheme wins over the name table, exactly as in
		// transform.Apply, so a pack idiom reusing a built-in name claims
		// what its own scheme consumes.
		switch idm.Scheme {
		case "gemm":
			add("loop[0].guard")
			add("loop[1].guard")
			add("loop[2].guard")
			add("output.store")
		case "spmv":
			add("guard")
			add("inner.guard")
			add("output.store")
		case "reduction":
			add("guard")
			add("old_value")
		case "loopbody1":
			add("guard")
			add("store")
			add("out.store")
		case "loopbody2":
			add("loop[0].guard")
			add("loop[1].guard")
			add("store")
			add("out.store")
		case "loopbody3":
			add("loop[0].guard")
			add("loop[1].guard")
			add("loop[2].guard")
			add("store")
			add("out.store")
		}
		return out
	}
	switch idm.Name {
	case "GEMM":
		add("loop[0].guard")
		add("loop[1].guard")
		add("loop[2].guard")
		add("output.store")
	case "SPMV":
		add("guard")
		add("inner.guard")
		add("output.store")
	case "Stencil3":
		add("loop[0].guard")
		add("loop[1].guard")
		add("loop[2].guard")
		add("store")
	case "Stencil2":
		add("loop[0].guard")
		add("loop[1].guard")
		add("store")
	case "Stencil1":
		add("guard")
		add("store")
	case "Histogram":
		add("guard")
		add("store")
	case "Reduction":
		add("guard")
		add("old_value")
	case "Map":
		add("guard")
		add("out.store")
	}
	return out
}
