package baseline

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/workloads"
)

// TestICCPlainSum: the canonical reduction both tools see.
func TestICCBasics(t *testing.T) {
	mod, err := cc.Compile("t", `
double sum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}
double maxv(double* a, int n) {
    double m = 0.0;
    for (int i = 0; i < n; i++) {
        if (a[i] > m) { m = a[i]; }
    }
    return m;
}
double abssum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + fabs(a[i]); }
    return s;
}
void scan(int* c, int* out, int n) {
    int run = 0;
    for (int i = 0; i < n; i++) { out[i] = run; run = run + c[i]; }
}
void hist(int* data, int* bins, int n) {
    for (int i = 0; i < n; i++) { bins[data[i]] += 1; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	res := ICC(mod)
	// Only the unconditional pure-arithmetic sum qualifies: the conditional
	// max, the libm-call abs-sum, the scan (stores) and the indirect
	// histogram are all rejected.
	if res.Counts.ScalarReductions != 1 {
		t.Errorf("ICC reductions = %d, want 1 (%v)", res.Counts.ScalarReductions, res.Findings)
	}
	if res.Counts.Stencils != 0 {
		t.Errorf("ICC stencils = %d, want 0", res.Counts.Stencils)
	}
}

func TestPollyBasics(t *testing.T) {
	mod, err := cc.Compile("t", `
double plain(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}
double compound(double* a, double* b, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i] * b[i]; }
    return s;
}
void jacobi(double* in, double* out, int n) {
    for (int i = 1; i < n - 1; i++) {
        out[i] = (in[i-1] + in[i] + in[i+1]) * 0.333;
    }
}
void inplace(double* a, int n) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i] + a[i-1];
    }
}
void spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	res := Polly(mod)
	// plain sum: canonical reduction; compound: not Polly's form; jacobi:
	// stencil; in-place sweep: loop-carried (store base = load base); SPMV:
	// memory-dependent bounds and indirect subscripts break the SCoP.
	if res.Counts.ScalarReductions != 1 {
		t.Errorf("Polly reductions = %d, want 1 (%v)", res.Counts.ScalarReductions, res.Findings)
	}
	if res.Counts.Stencils != 1 {
		t.Errorf("Polly stencils = %d, want 1 (%v)", res.Counts.Stencils, res.Findings)
	}
}

// TestTable1Baselines pins the paper's Table 1 baseline rows over the full
// 21-benchmark suite: Polly 3 reductions + 5 stencils, ICC 28 reductions,
// and neither sees histograms, matrix ops or sparse ops (structurally:
// indirect access defeats both).
func TestTable1Baselines(t *testing.T) {
	polly, icc := Counts{}, Counts{}
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		p, i := Polly(mod), ICC(mod)
		polly.Add(p.Counts)
		icc.Add(i.Counts)
		t.Logf("%-8s polly=%+v icc=%+v", w.Name, p.Counts, i.Counts)
	}
	if polly.ScalarReductions != 3 {
		t.Errorf("Polly reductions = %d, want 3", polly.ScalarReductions)
	}
	if polly.Stencils != 5 {
		t.Errorf("Polly stencils = %d, want 5", polly.Stencils)
	}
	if icc.ScalarReductions != 28 {
		t.Errorf("ICC reductions = %d, want 28", icc.ScalarReductions)
	}
	if icc.Stencils != 0 {
		t.Errorf("ICC stencils = %d, want 0", icc.Stencils)
	}
}
