// Package baseline models the two alternative detection approaches the
// paper compares against in Table 1:
//
//   - Polly, an LLVM polyhedral compiler. The paper ran
//     -O3 -mllvm -polly -mllvm -polly-export and manually inspected the
//     reported SCoPs for stencil-like parallel loops and reduction
//     operations. Polly requires static control parts: affine loop bounds,
//     affine subscripts, no data-dependent control flow, and treats libm
//     routines as opaque calls that break SCoP formation. Its reduction
//     support recognizes the canonical floating-point `s += A[i]` chain.
//
//   - The Intel C++ Compiler (ICC) with -parallel -qopt-report, whose
//     dependence analysis parallelizes scalar reductions in well-formed
//     counted loops: straight-line bodies, unit-stride affine accesses and
//     pure arithmetic updates. Conditional min/max recurrences, libm calls
//     and symbolic-stride subscripts make it give up (or demand runtime
//     checks it refuses at this optimization level).
//
// Neither tool detects histograms or sparse matrix operations: indirect
// memory access "fundamentally contradicts assumptions that these tools
// rely on" (paper §8.1), which both models reproduce structurally rather
// than by special-casing benchmarks.
package baseline

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// Counts is a Table 1 row: idioms found per class (the baselines only ever
// find scalar reductions and stencils).
type Counts struct {
	ScalarReductions int
	Stencils         int
}

// Add accumulates.
func (c *Counts) Add(o Counts) {
	c.ScalarReductions += o.ScalarReductions
	c.Stencils += o.Stencils
}

// Finding names one detection for reporting and tests.
type Finding struct {
	Function string
	Kind     string // "reduction" | "stencil"
}

// Result is a full module analysis.
type Result struct {
	Counts   Counts
	Findings []Finding
}

// Polly analyses the module with the polyhedral-compiler model.
func Polly(mod *ir.Module) *Result {
	return run(mod, pollyClassify)
}

// ICC analyses the module with the dependence-based reduction model.
func ICC(mod *ir.Module) *Result {
	return run(mod, iccClassify)
}

func run(mod *ir.Module, classify func(*natLoop) string) *Result {
	res := &Result{}
	for _, fn := range mod.Functions {
		info := analysis.Analyze(fn)
		for _, lp := range findLoops(info) {
			switch classify(lp) {
			case "reduction":
				res.Counts.ScalarReductions++
				res.Findings = append(res.Findings, Finding{fn.Ident, "reduction"})
			case "stencil":
				res.Counts.Stencils++
				res.Findings = append(res.Findings, Finding{fn.Ident, "stencil"})
			}
		}
	}
	return res
}

// --- natural-loop discovery ---

// natLoop is a counted loop in the shape both models analyse: an integer
// induction phi with a constant step, guarded by a compare-and-branch.
type natLoop struct {
	info     *analysis.Info
	iterator *ir.Instruction // header phi
	update   *ir.Instruction // add iterator, const
	guard    *ir.Instruction // conditional branch
	begin    *ir.Instruction // first instruction of the body-side block
	lo, hi   ir.Value        // bound values
	body     []*ir.Instruction
}

// findLoops discovers every counted loop of the function.
func findLoops(info *analysis.Info) []*natLoop {
	var out []*natLoop
	for _, in := range info.Instrs {
		if in.Op != ir.OpPhi || len(in.Ops) != 2 || !in.Ty.IsInteger() {
			continue
		}
		lp := loopFromPhi(info, in)
		if lp != nil {
			out = append(out, lp)
		}
	}
	return out
}

func loopFromPhi(info *analysis.Info, phi *ir.Instruction) *natLoop {
	// One incoming must be an add of the phi with a constant (the update).
	var update *ir.Instruction
	var init ir.Value
	for i, op := range phi.Ops {
		if in, ok := op.(*ir.Instruction); ok && in.Op == ir.OpAdd && len(in.Ops) == 2 {
			if in.Ops[0] == ir.Value(phi) {
				if _, isConst := in.Ops[1].(*ir.Const); isConst {
					update = in
					init = phi.Ops[1-i]
					continue
				}
			}
		}
	}
	if update == nil {
		return nil
	}
	// The guard is a branch on a compare of the phi.
	var guard, cmp *ir.Instruction
	for _, u := range info.Users(phi) {
		if u.Op != ir.OpICmp {
			continue
		}
		for _, b := range info.Users(u) {
			if b.Op == ir.OpBr && len(b.Succs) == 2 {
				guard, cmp = b, u
			}
		}
	}
	if guard == nil || cmp.Ops[0] != ir.Value(phi) {
		return nil
	}
	// Body side: the successor that leads back to the update.
	var begin *ir.Instruction
	for _, succ := range guard.Succs {
		first := succ.First()
		if first != nil && info.Dominates(first, update) {
			begin = first
		}
	}
	if begin == nil {
		return nil
	}
	lp := &natLoop{
		info: info, iterator: phi, update: update, guard: guard,
		begin: begin, lo: init, hi: cmp.Ops[1],
	}
	for _, in := range info.Instrs {
		if info.Dominates(begin, in) {
			lp.body = append(lp.body, in)
		}
	}
	return lp
}

// --- shared structural predicates ---

// mathOps are the opcodes both tools treat as opaque libm calls.
func isMathOp(op ir.Opcode) bool {
	switch op {
	case ir.OpSqrt, ir.OpFAbs, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos,
		ir.OpPow, ir.OpFloor, ir.OpCall:
		return true
	}
	return false
}

// straightLine reports whether the body has static straight-line control
// flow: no conditional branches (if-statements or inner loop guards) —
// unconditional block-structure branches are permitted.
func (lp *natLoop) straightLine() bool {
	for _, in := range lp.body {
		if in.Op == ir.OpBr && len(in.Succs) > 1 {
			return false
		}
	}
	return true
}

func (lp *natLoop) hasMath() bool {
	for _, in := range lp.body {
		if isMathOp(in.Op) {
			return true
		}
	}
	return false
}

func (lp *natLoop) hasStore() bool {
	for _, in := range lp.body {
		if in.Op == ir.OpStore {
			return true
		}
	}
	return false
}

// boundsAffine demands compile-time-fixed loop bounds: constants, arguments
// or affine expressions of them (not loads, as in CSR row ranges).
func (lp *natLoop) boundsAffine() bool {
	return lp.affineValue(lp.lo, false) && lp.affineValue(lp.hi, false)
}

// affineValue checks v is an affine expression of constants, arguments and
// induction phis. When constStride is true, multiplications must have a
// constant operand (ICC's unit/constant-stride requirement).
func (lp *natLoop) affineValue(v ir.Value, constStride bool) bool {
	switch x := v.(type) {
	case *ir.Const, *ir.Argument:
		return true
	case *ir.Instruction:
		switch x.Op {
		case ir.OpPhi:
			// Induction phis of enclosing counted loops are affine dimensions.
			return loopFromPhi(lp.info, x) != nil
		case ir.OpAdd, ir.OpSub:
			return lp.affineValue(x.Ops[0], constStride) && lp.affineValue(x.Ops[1], constStride)
		case ir.OpMul:
			if constStride {
				_, c0 := x.Ops[0].(*ir.Const)
				_, c1 := x.Ops[1].(*ir.Const)
				if !c0 && !c1 {
					return false
				}
			}
			return lp.affineValue(x.Ops[0], constStride) && lp.affineValue(x.Ops[1], constStride)
		case ir.OpSExt, ir.OpZExt, ir.OpTrunc:
			return lp.affineValue(x.Ops[0], constStride)
		}
	}
	return false
}

// loadsAffine demands every load in the body addresses an affine subscript
// over a plain base pointer — indirect accesses (histogram bins, sparse
// gathers) fail here, which is the structural reason neither baseline can
// see histograms or SPMV.
func (lp *natLoop) loadsAffine(constStride bool) bool {
	for _, in := range lp.body {
		if in.Op != ir.OpLoad {
			continue
		}
		gep, ok := in.Ops[0].(*ir.Instruction)
		if !ok || gep.Op != ir.OpGEP {
			return false
		}
		if !lp.affineValue(gep.Ops[1], constStride) {
			return false
		}
	}
	return true
}

// accumulator finds a loop-carried scalar phi other than the iterator.
func (lp *natLoop) accumulator() (phi, upd *ir.Instruction) {
	header := lp.iterator.Block
	for _, in := range header.Instrs {
		if in.Op != ir.OpPhi || in == lp.iterator || len(in.Ops) != 2 {
			continue
		}
		for _, op := range in.Ops {
			if u, ok := op.(*ir.Instruction); ok && lp.info.Dominates(lp.begin, u) {
				return in, u
			}
		}
	}
	return nil, nil
}

// pureArithChain checks upd is computed from acc, affine loads, constants
// and loop-invariant values through plain arithmetic (no phis, no math).
func (lp *natLoop) pureArithChain(acc, upd ir.Value) bool {
	seen := map[ir.Value]bool{}
	var walk func(v ir.Value) bool
	walk = func(v ir.Value) bool {
		if v == acc || seen[v] {
			return true
		}
		seen[v] = true
		in, ok := v.(*ir.Instruction)
		if !ok {
			return true // constants, arguments
		}
		if !lp.info.Dominates(lp.begin, in) {
			return true // loop invariant
		}
		switch in.Op {
		case ir.OpLoad:
			return true // affinity checked separately
		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
			ir.OpAdd, ir.OpSub, ir.OpMul,
			ir.OpSExt, ir.OpZExt, ir.OpTrunc, ir.OpSIToFP, ir.OpFPExt, ir.OpGEP:
			for _, op := range in.Ops {
				if !walk(op) {
					return false
				}
			}
			return true
		}
		return false
	}
	return walk(upd)
}

// --- classifiers ---

// iccClassify is the ICC -parallel reduction recognizer: counted loop with
// affine bounds, straight-line body, no stores, no libm calls, unit- or
// constant-stride affine loads, and an accumulator updated by a pure
// arithmetic chain.
func iccClassify(lp *natLoop) string {
	if !lp.boundsAffine() || !lp.straightLine() || lp.hasStore() || lp.hasMath() {
		return ""
	}
	if !lp.loadsAffine(true) {
		return ""
	}
	acc, upd := lp.accumulator()
	if acc == nil {
		return ""
	}
	if !lp.pureArithChain(acc, upd) {
		return ""
	}
	return "reduction"
}

// pollyClassify models SCoP-based detection. Within a valid SCoP (affine
// bounds and subscripts, static control flow, no libm calls) it recognizes
//
//   - stencil-like parallel loops: a straight-line body storing to one array
//     at an affine subscript while reading two or more others, with the
//     output array disjoint from the inputs (no loop-carried dependence);
//   - canonical reductions: the floating point `s += A[i]` chain that
//     Polly's reduction dependencies cover.
func pollyClassify(lp *natLoop) string {
	if !lp.boundsAffine() || !lp.straightLine() || lp.hasMath() {
		return ""
	}
	if !lp.loadsAffine(false) {
		return ""
	}

	// Stencil: two or more reads feeding a store whose base array is
	// disjoint from every load base (no loop-carried dependence).
	nloads := 0
	for _, in := range lp.body {
		if in.Op == ir.OpLoad {
			nloads++
		}
	}
	if stores, loads := lp.storeBases(), lp.loadBases(); len(stores) > 0 && nloads >= 2 && len(loads) > 0 {
		disjoint := true
		for sb := range stores {
			if loads[sb] {
				disjoint = false
			}
		}
		affineStores := true
		for _, in := range lp.body {
			if in.Op != ir.OpStore {
				continue
			}
			gep, ok := in.Ops[1].(*ir.Instruction)
			if !ok || gep.Op != ir.OpGEP || !lp.affineValue(gep.Ops[1], false) {
				affineStores = false
			}
		}
		if disjoint && affineStores && lp.noScalarRecurrences() {
			return "stencil"
		}
		return ""
	}

	// Reduction: float acc with acc = fadd(acc, load) exactly.
	if lp.hasStore() {
		return ""
	}
	acc, upd := lp.accumulator()
	if acc == nil || !acc.Ty.IsFloat() || upd == nil || upd.Op != ir.OpFAdd {
		return ""
	}
	var other ir.Value
	switch {
	case upd.Ops[0] == ir.Value(acc):
		other = upd.Ops[1]
	case upd.Ops[1] == ir.Value(acc):
		other = upd.Ops[0]
	default:
		return ""
	}
	if ld, ok := other.(*ir.Instruction); ok && ld.Op == ir.OpLoad {
		return "reduction"
	}
	return ""
}

func (lp *natLoop) storeBases() map[ir.Value]bool {
	out := map[ir.Value]bool{}
	for _, in := range lp.body {
		if in.Op == ir.OpStore {
			if gep, ok := in.Ops[1].(*ir.Instruction); ok && gep.Op == ir.OpGEP {
				out[lp.info.BasePointer(gep)] = true
			}
		}
	}
	return out
}

func (lp *natLoop) loadBases() map[ir.Value]bool {
	out := map[ir.Value]bool{}
	for _, in := range lp.body {
		if in.Op == ir.OpLoad {
			if gep, ok := in.Ops[0].(*ir.Instruction); ok && gep.Op == ir.OpGEP {
				out[lp.info.BasePointer(gep)] = true
			}
		}
	}
	return out
}

// noScalarRecurrences rejects bodies carrying non-iterator phis in the loop
// header (e.g. running seeds), which break the polyhedral dependence model.
func (lp *natLoop) noScalarRecurrences() bool {
	for _, in := range lp.iterator.Block.Instrs {
		if in.Op == ir.OpPhi && in != lp.iterator {
			return false
		}
	}
	return true
}
