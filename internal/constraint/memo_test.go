package constraint

import (
	"testing"
)

const memoTestC = `
int example(int a, int b, int c) {
    int d = a;
    return (a*b) + (c*d);
}`

// A same-shape program with different identifier names: the fingerprint
// normalizes names away, so it must match example's.
const memoTestCRenamed = `
int other(int x, int y, int z) {
    int w = x;
    return (x*y) + (z*w);
}`

const memoTestCDifferent = `
int example(int a, int b, int c) {
    return (a*b) - (c*a);
}`

func TestFingerprintStability(t *testing.T) {
	a := FingerprintInfo(analyzeC(t, memoTestC, "example"))
	b := FingerprintInfo(analyzeC(t, memoTestC, "example"))
	if a != b {
		t.Fatal("fingerprints of two compiles of the same source differ")
	}
	renamed := FingerprintInfo(analyzeC(t, memoTestCRenamed, "other"))
	if a != renamed {
		t.Error("fingerprint depends on identifier names; it must only digest shape")
	}
	diff := FingerprintInfo(analyzeC(t, memoTestCDifferent, "example"))
	if a == diff {
		t.Error("fingerprints of structurally different functions collide")
	}
}

// TestSolveCacheRoundTrip solves once, then rehydrates the cached entry onto
// a fresh compile of the same source and checks the outcome is byte-identical
// to a fresh solve: same solutions (canonical keys, same order) and the same
// step count.
func TestSolveCacheRoundTrip(t *testing.T) {
	prob := mustProblem(t, figure2, "FactorizationOpportunity", nil)
	info1 := analyzeC(t, memoTestC, "example")
	fp1 := FingerprintInfo(info1)

	s1 := NewSolver(prob, info1)
	sols1 := s1.Solve()
	if len(sols1) == 0 {
		t.Fatal("expected solutions")
	}

	c := NewSolveCache()
	if _, _, ok := c.Get(prob, fp1, info1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(prob, fp1, info1, sols1, s1.Steps)
	if c.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", c.Len())
	}

	// Rehydrate against a fresh compile (fresh IR pointers).
	info2 := analyzeC(t, memoTestC, "example")
	fp2 := FingerprintInfo(info2)
	if fp1 != fp2 {
		t.Fatal("recompile changed the fingerprint")
	}
	got, steps, ok := c.Get(prob, fp2, info2)
	if !ok {
		t.Fatal("expected cache hit")
	}
	s2 := NewSolver(prob, info2)
	want := s2.Solve()
	if steps != s2.Steps {
		t.Errorf("cached steps = %d, fresh solve = %d", steps, s2.Steps)
	}
	if len(got) != len(want) {
		t.Fatalf("rehydrated %d solutions, fresh solve found %d", len(got), len(want))
	}
	for i := range want {
		if canonicalKey(got[i]) != canonicalKey(want[i]) {
			t.Errorf("solution %d differs:\n  cached: %s\n  fresh:  %s",
				i, canonicalKey(got[i]), canonicalKey(want[i]))
		}
	}
	// Rehydrated values must be live objects of the *new* function, not the
	// cached one's: the detect layer claims instructions by pointer.
	for i := range got {
		for name, v := range got[i] {
			if v == Unconstrained {
				continue
			}
			fresh, ok := want[i][name]
			if !ok || !sameValue(v, fresh) {
				t.Errorf("solution %d: %s rehydrated to %v, fresh solve bound %v", i, name, v, fresh)
			}
		}
	}

	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

// TestSolveCacheDistinguishesShapes pins that a different function shape is
// a miss even under the same problem.
func TestSolveCacheDistinguishesShapes(t *testing.T) {
	prob := mustProblem(t, figure2, "FactorizationOpportunity", nil)
	info := analyzeC(t, memoTestC, "example")
	s := NewSolver(prob, info)
	c := NewSolveCache()
	c.Put(prob, FingerprintInfo(info), info, s.Solve(), s.Steps)

	other := analyzeC(t, memoTestCDifferent, "example")
	if _, _, ok := c.Get(prob, FingerprintInfo(other), other); ok {
		t.Fatal("cache hit across different function shapes")
	}
}
