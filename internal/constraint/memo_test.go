package constraint

import (
	"testing"

	"repro/internal/analysis"
)

const memoTestC = `
int example(int a, int b, int c) {
    int d = a;
    return (a*b) + (c*d);
}`

// A same-shape program with different identifier names: the fingerprint
// normalizes names away, so it must match example's.
const memoTestCRenamed = `
int other(int x, int y, int z) {
    int w = x;
    return (x*y) + (z*w);
}`

const memoTestCDifferent = `
int example(int a, int b, int c) {
    return (a*b) - (c*a);
}`

func TestFingerprintStability(t *testing.T) {
	a := FingerprintInfo(analyzeC(t, memoTestC, "example"))
	b := FingerprintInfo(analyzeC(t, memoTestC, "example"))
	if a != b {
		t.Fatal("fingerprints of two compiles of the same source differ")
	}
	renamed := FingerprintInfo(analyzeC(t, memoTestCRenamed, "other"))
	if a != renamed {
		t.Error("fingerprint depends on identifier names; it must only digest shape")
	}
	diff := FingerprintInfo(analyzeC(t, memoTestCDifferent, "example"))
	if a == diff {
		t.Error("fingerprints of structurally different functions collide")
	}
}

// TestSolveCacheRoundTrip solves once, then rehydrates the cached entry onto
// a fresh compile of the same source and checks the outcome is byte-identical
// to a fresh solve: same solutions (canonical keys, same order) and the same
// step count.
func TestSolveCacheRoundTrip(t *testing.T) {
	prob := mustProblem(t, figure2, "FactorizationOpportunity", nil)
	info1 := analyzeC(t, memoTestC, "example")
	fp1 := FingerprintInfo(info1)

	s1 := NewSolver(prob, info1)
	sols1 := s1.Solve()
	if len(sols1) == 0 {
		t.Fatal("expected solutions")
	}

	c := NewSolveCache()
	if _, _, ok := c.Get(prob, fp1, info1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(prob, fp1, info1, sols1, s1.Steps)
	if c.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", c.Len())
	}

	// Rehydrate against a fresh compile (fresh IR pointers).
	info2 := analyzeC(t, memoTestC, "example")
	fp2 := FingerprintInfo(info2)
	if fp1 != fp2 {
		t.Fatal("recompile changed the fingerprint")
	}
	got, steps, ok := c.Get(prob, fp2, info2)
	if !ok {
		t.Fatal("expected cache hit")
	}
	s2 := NewSolver(prob, info2)
	want := s2.Solve()
	if steps != s2.Steps {
		t.Errorf("cached steps = %d, fresh solve = %d", steps, s2.Steps)
	}
	if len(got) != len(want) {
		t.Fatalf("rehydrated %d solutions, fresh solve found %d", len(got), len(want))
	}
	for i := range want {
		if canonicalKey(got[i]) != canonicalKey(want[i]) {
			t.Errorf("solution %d differs:\n  cached: %s\n  fresh:  %s",
				i, canonicalKey(got[i]), canonicalKey(want[i]))
		}
	}
	// Rehydrated values must be live objects of the *new* function, not the
	// cached one's: the detect layer claims instructions by pointer.
	for i := range got {
		for name, v := range got[i] {
			if v == Unconstrained {
				continue
			}
			fresh, ok := want[i][name]
			if !ok || !sameValue(v, fresh) {
				t.Errorf("solution %d: %s rehydrated to %v, fresh solve bound %v", i, name, v, fresh)
			}
		}
	}

	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

// TestSolveCachePackVersionIsolation pins that the memo key includes the
// problem's pack version: an entry stored by one pack registration is
// unreachable from any other version, so re-registering an idiom pack can
// never be served a superseded registration's solves — even for the same
// problem object and function fingerprint.
func TestSolveCachePackVersionIsolation(t *testing.T) {
	prob := mustProblem(t, figure2, "FactorizationOpportunity", nil)
	info := analyzeC(t, memoTestC, "example")
	fp := FingerprintInfo(info)
	s := NewSolver(prob, info)
	sols := s.Solve()

	c := NewSolveCache()
	prob.PackVersion = 1
	c.Put(prob, fp, info, sols, s.Steps)
	if _, _, ok := c.Get(prob, fp, info); !ok {
		t.Fatal("same-version lookup missed")
	}
	prob.PackVersion = 2
	if _, _, ok := c.Get(prob, fp, info); ok {
		t.Fatal("memo served a cross-version entry")
	}
	// The new version caches independently; both entries coexist.
	c.Put(prob, fp, info, sols, s.Steps)
	if c.Len() != 2 {
		t.Fatalf("cache entries = %d, want 2 (one per version)", c.Len())
	}
	if _, _, ok := c.Get(prob, fp, info); !ok {
		t.Fatal("new-version lookup missed after Put")
	}
}

// TestSolveCacheDistinguishesShapes pins that a different function shape is
// a miss even under the same problem.
func TestSolveCacheDistinguishesShapes(t *testing.T) {
	prob := mustProblem(t, figure2, "FactorizationOpportunity", nil)
	info := analyzeC(t, memoTestC, "example")
	s := NewSolver(prob, info)
	c := NewSolveCache()
	c.Put(prob, FingerprintInfo(info), info, s.Solve(), s.Steps)

	other := analyzeC(t, memoTestCDifferent, "example")
	if _, _, ok := c.Get(prob, FingerprintInfo(other), other); ok {
		t.Fatal("cache hit across different function shapes")
	}
}

// memoShapeSource builds a family of structurally distinct functions (each
// extra statement changes the IR shape, hence the fingerprint) that all still
// contain the figure-2 factorization opportunity.
func memoShapeSource(i int) string {
	src := "int f(int a, int b, int c) { int r = (a*b) + (c*a);"
	for j := 0; j < i; j++ {
		src += " r = r + b;"
	}
	return src + " return r; }"
}

// TestSolveCacheLRUEviction pins the size bound: a cache of 3 entries holds
// at most 3, counts evictions, and an evicted shape simply re-solves to the
// byte-identical outcome on its next appearance.
func TestSolveCacheLRUEviction(t *testing.T) {
	prob := mustProblem(t, figure2, "FactorizationOpportunity", nil)
	const shapes, bound = 6, 3
	c := NewSolveCacheSize(bound)
	if c.MaxEntries() != bound {
		t.Fatalf("MaxEntries = %d, want %d", c.MaxEntries(), bound)
	}

	fps := make([]Fingerprint, shapes)
	wantKeys := make([][]string, shapes)
	wantSteps := make([]int, shapes)
	for i := 0; i < shapes; i++ {
		info := analyzeC(t, memoShapeSource(i), "f")
		fps[i] = FingerprintInfo(info)
		for j := 0; j < i; j++ {
			if fps[i] == fps[j] {
				t.Fatalf("shapes %d and %d share a fingerprint; test needs distinct shapes", i, j)
			}
		}
		s := NewSolver(prob, info)
		sols := s.Solve()
		if len(sols) == 0 {
			t.Fatalf("shape %d: no solutions", i)
		}
		for _, sol := range sols {
			wantKeys[i] = append(wantKeys[i], canonicalKey(sol))
		}
		wantSteps[i] = s.Steps
		c.Put(prob, fps[i], info, sols, s.Steps)
		if c.Len() > bound {
			t.Fatalf("after %d puts: Len = %d exceeds bound %d", i+1, c.Len(), bound)
		}
	}
	if c.Len() != bound {
		t.Fatalf("Len = %d, want %d", c.Len(), bound)
	}
	if ev := c.Evictions(); ev != shapes-bound {
		t.Fatalf("Evictions = %d, want %d", ev, shapes-bound)
	}

	// Every shape — evicted or resident — must produce the identical outcome:
	// residents rehydrate, evictees miss and re-solve to the same result.
	// (Verification never Puts, so residency is stable across the loop.)
	for i := 0; i < shapes; i++ {
		info := analyzeC(t, memoShapeSource(i), "f")
		sols, steps, ok := c.Get(prob, fps[i], info)
		if ok != (i >= shapes-bound) {
			t.Fatalf("shape %d: resident = %v, want %v (LRU keeps the last %d)", i, ok, !ok, bound)
		}
		if !ok {
			s := NewSolver(prob, info)
			sols, steps = s.Solve(), s.Steps
		}
		if steps != wantSteps[i] {
			t.Errorf("shape %d: steps = %d, want %d", i, steps, wantSteps[i])
		}
		if len(sols) != len(wantKeys[i]) {
			t.Fatalf("shape %d: %d solutions, want %d", i, len(sols), len(wantKeys[i]))
		}
		for j, sol := range sols {
			if canonicalKey(sol) != wantKeys[i][j] {
				t.Errorf("shape %d solution %d differs after eviction round-trip", i, j)
			}
		}
	}
}

// TestCancelledSplitSolveNotMemoized pins the split × memo poison contract:
// a split solve with any cancelled branch reports Cancelled, the caller-side
// guard (the detection engine's) therefore never stores it, and the cache
// only ever serves the complete enumeration.
func TestCancelledSplitSolveNotMemoized(t *testing.T) {
	prob := mustProblem(t, figure2, "FactorizationOpportunity", nil)
	info := analyzeC(t, bigKernelSource(120), "kernel")
	fp := FingerprintInfo(info)
	c := NewSolveCache()

	// The engine's memoization guard, verbatim: complete solves only.
	solveThrough := func(s *Solver) []Solution {
		sols := s.Solve()
		if !s.Cancelled() {
			c.Put(prob, fp, info, sols, s.Steps)
		}
		return sols
	}

	cancel := make(chan struct{})
	aborted := NewSolver(prob, info)
	aborted.Split = 4
	aborted.Cancel = cancel
	aborted.Run = func(n int, task func(i int)) {
		close(cancel) // deterministic mid-split abort
		parallelRunner(n, task)
	}
	partial := solveThrough(aborted)
	if !aborted.Cancelled() {
		t.Fatal("mid-split cancellation not reported")
	}
	if c.Len() != 0 {
		t.Fatalf("cancelled solve was memoized (%d entries)", c.Len())
	}

	// A complete split solve memoizes, and the entry rehydrates to exactly
	// the full enumeration — not the aborted prefix.
	full := NewSolver(prob, info)
	full.Split = 4
	full.Run = parallelRunner
	want := solveThrough(full)
	if len(want) == 0 || len(partial) >= len(want) {
		t.Fatalf("aborted solve found %d solutions, complete found %d; test needs a real prefix",
			len(partial), len(want))
	}
	got, steps, ok := c.Get(prob, fp, info)
	if !ok {
		t.Fatal("complete split solve was not memoized")
	}
	if steps != full.Steps || len(got) != len(want) {
		t.Fatalf("rehydrated %d solutions / %d steps, want %d / %d",
			len(got), steps, len(want), full.Steps)
	}
	for i := range want {
		if canonicalKey(got[i]) != canonicalKey(want[i]) {
			t.Errorf("solution %d differs after memo round-trip", i)
		}
	}
}

// TestSolveCacheLRUTouchOnGet pins that Get refreshes recency: the
// most-recently-read entry survives the next eviction.
func TestSolveCacheLRUTouchOnGet(t *testing.T) {
	prob := mustProblem(t, figure2, "FactorizationOpportunity", nil)
	c := NewSolveCacheSize(2)
	infos := make([]*analysis.Info, 3)
	fps := make([]Fingerprint, 3)
	for i := range infos {
		infos[i] = analyzeC(t, memoShapeSource(i), "f")
		fps[i] = FingerprintInfo(infos[i])
		if i < 2 {
			s := NewSolver(prob, infos[i])
			c.Put(prob, fps[i], infos[i], s.Solve(), s.Steps)
		}
	}
	// Touch shape 0 so shape 1 becomes least-recently-used, then insert 2.
	if _, _, ok := c.Get(prob, fps[0], infos[0]); !ok {
		t.Fatal("shape 0 missing before eviction")
	}
	s := NewSolver(prob, infos[2])
	c.Put(prob, fps[2], infos[2], s.Solve(), s.Steps)
	if _, _, ok := c.Get(prob, fps[0], infos[0]); !ok {
		t.Error("recently-read shape 0 was evicted; LRU must evict shape 1")
	}
	if _, _, ok := c.Get(prob, fps[1], infos[1]); ok {
		t.Error("shape 1 survived; LRU must have evicted it")
	}
}
