package constraint

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/idl"
	"repro/internal/ir"
)

// Solution assigns IR values to the flat variable names of a problem.
type Solution map[string]ir.Value

// String renders a solution in a stable order (like the paper's Fig. 5).
func (s Solution) String() string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for _, n := range names {
		fmt.Fprintf(&b, "  %q : %s\n", n, s[n].Operand())
	}
	b.WriteString("}")
	return b.String()
}

// tribool is the three-valued logic the partial evaluator uses.
type tribool int

const (
	triFalse tribool = iota
	triTrue
	triUnknown
)

// probIndex is the per-problem static structure that makes node evaluation
// incremental: nodes are numbered, each node knows the set of solver
// variables occurring in its subtree, and each variable knows the nodes it
// can invalidate. It is built once per Problem and shared by all solvers.
type probIndex struct {
	nodes []Node  // id -> node
	kids  [][]int // id -> child node ids
	root  int

	varID    map[string]int
	varNodes [][]int  // var id -> ids of nodes whose subtree mentions it
	varIn    [][]bool // node id -> var id -> mentioned

	// collect metadata, keyed by position in nodes.
	collectProto map[*NCollect]*collectInfo
}

// collectInfo caches everything derivable from a collect body's prototype
// instance: the flattened body, its variable list and its own sub-index.
type collectInfo struct {
	proto     Node
	protoVars []string
	idx       *probIndex
}

var (
	indexMu    sync.RWMutex
	indexCache = map[*Problem]*probIndex{}
)

// indexFor builds (or returns the cached) static index of a problem. Solvers
// for the same problem are routinely constructed from many goroutines, so
// the hot path is a read lock; only the first solver per problem pays the
// build under the write lock.
func indexFor(p *Problem) *probIndex {
	indexMu.RLock()
	idx, ok := indexCache[p]
	indexMu.RUnlock()
	if ok {
		return idx
	}
	indexMu.Lock()
	defer indexMu.Unlock()
	if idx, ok := indexCache[p]; ok {
		return idx
	}
	idx = buildIndex(p.Root, p.Vars)
	indexCache[p] = idx
	return idx
}

// Prepare eagerly builds the static node index of a problem (and, via the
// index walk, the flattened collect prototypes) so that concurrent solver
// construction never contends on the build caches. It is idempotent and safe
// to call from multiple goroutines.
func Prepare(p *Problem) {
	indexFor(p)
}

func buildIndex(root Node, vars []string) *probIndex {
	idx := &probIndex{
		varID:        map[string]int{},
		collectProto: map[*NCollect]*collectInfo{},
	}
	for i, v := range vars {
		idx.varID[v] = i
	}
	nvars := len(vars)

	var walk func(n Node) (int, []bool)
	walk = func(n Node) (int, []bool) {
		id := len(idx.nodes)
		idx.nodes = append(idx.nodes, n)
		idx.kids = append(idx.kids, nil)
		idx.varIn = append(idx.varIn, nil)
		mask := make([]bool, nvars)
		switch t := n.(type) {
		case *NAnd:
			var kids []int
			for _, k := range t.Kids {
				kid, km := walk(k)
				kids = append(kids, kid)
				orInto(mask, km)
			}
			idx.kids[id] = kids
		case *NOr:
			var kids []int
			for _, k := range t.Kids {
				kid, km := walk(k)
				kids = append(kids, kid)
				orInto(mask, km)
			}
			idx.kids[id] = kids
		case *NAtom:
			for _, a := range t.Args {
				if vid, ok := idx.varID[a]; ok {
					mask[vid] = true
				}
			}
			for _, list := range t.Lists {
				for _, r := range list {
					if vid, ok := idx.varID[r.Name]; ok {
						mask[vid] = true
					}
				}
			}
		case *NCollect:
			ci := collectInfoFor(t)
			idx.collectProto[t] = ci
			if ci != nil {
				for _, v := range ci.protoVars {
					if vid, ok := idx.varID[v]; ok {
						mask[vid] = true
					}
				}
			}
		}
		idx.varIn[id] = mask
		return id, mask
	}
	rootID, _ := walk(root)
	idx.root = rootID

	idx.varNodes = make([][]int, nvars)
	for id, mask := range idx.varIn {
		for vid, in := range mask {
			if in {
				idx.varNodes[vid] = append(idx.varNodes[vid], id)
			}
		}
	}
	return idx
}

func orInto(dst, src []bool) {
	for i, b := range src {
		if b {
			dst[i] = true
		}
	}
}

var (
	collectMu      sync.RWMutex
	collectInfoMap = map[*NCollect]*collectInfo{}
)

// collectInfoFor flattens the prototype instance of a collect body once and
// caches its variable list and sub-index for reuse by every solver.
func collectInfoFor(c *NCollect) *collectInfo {
	collectMu.RLock()
	ci, ok := collectInfoMap[c]
	collectMu.RUnlock()
	if ok {
		return ci
	}
	collectMu.Lock()
	defer collectMu.Unlock()
	if ci, ok := collectInfoMap[c]; ok {
		return ci
	}
	proto, err := c.Instantiate(0)
	if err != nil {
		collectInfoMap[c] = nil
		return nil
	}
	var vars []string
	collectVars(proto, map[string]bool{}, &vars)
	// List references inside the body can also name outer variables.
	for _, at := range gatherAtoms(proto) {
		seen := map[string]bool{}
		for _, v := range vars {
			seen[v] = true
		}
		for _, list := range at.Lists {
			for _, r := range list {
				if !seen[r.Name] {
					seen[r.Name] = true
					vars = append(vars, r.Name)
				}
			}
		}
	}
	ci = &collectInfo{proto: proto, protoVars: vars}
	ci.idx = buildIndex(proto, vars)
	collectInfoMap[c] = ci
	return ci
}

// TaskRunner executes task(0..n-1), returning only when all n calls have
// completed. The tasks are independent and may run concurrently; the
// detection engine installs a runner backed by its shared worker pool so
// branch searches of one solve interleave with other solves. A nil runner
// runs the tasks inline (sequentially) on the calling goroutine.
type TaskRunner func(n int, task func(i int))

// searchState is the mutable state of one backtracking search: the
// assignment stack, the incremental node-evaluation cache, the solutions
// found so far and the step/cancel bookkeeping. It is embedded by value in
// Solver (field promotion keeps every accessor unqualified) and forked —
// copied assignment, fresh result set — when a split search spawns its root
// branches, so each branch owns its mutable state exclusively until the
// serial merge joins it back.
type searchState struct {
	assign map[string]ir.Value

	// node evaluation cache (invalidated per variable via idx.varNodes).
	nodeVal   []tribool
	nodeKnown []bool

	sols    []Solution
	solKeys map[string]bool

	// collectMemo caches resolved collects keyed by the binding signature of
	// the body's outer variables.
	collectMemo map[string]*collectResult

	// collectLedger records, per collect-memo key, the step count of that
	// key's first resolution in this search. Branches resolve their collects
	// independently, so one key may be paid for in several branches; the
	// merge consults the ledgers to charge each unique key exactly once,
	// which is what the sequential search's shared memo does. nil outside
	// branch searches (the sequential path needs no reconciliation).
	collectLedger map[string]int

	cancelled bool

	// lateBinds counts variable bindings performed after cancellation was
	// observed — wasted unwinding work. The per-candidate cancel checks in
	// step and searchChunk keep it at zero.
	lateBinds int

	// Steps counts backtracking search steps (the paper's compile-time cost
	// metric). It is owned by the goroutine running the search: branch
	// searches keep private counters that merge aggregates only after every
	// branch task has joined, so the field is never written concurrently and
	// reading it after Solve returns is race-free even at Split > 1.
	Steps int

	// resplits counts how many times this search (including its merged
	// branches, recursively) forked a branch's remaining candidate chunk into
	// sub-branches. Owned like Steps: written only by the goroutine running
	// the search, aggregated at merge after every branch task has joined.
	resplits int
}

// Solver searches one analysed function for all solutions of a problem.
type Solver struct {
	prob *Problem
	info *analysis.Info
	idx  *probIndex

	// domain is every value a variable may take: instructions, arguments
	// and constants appearing as operands.
	domain []ir.Value

	// byOpcode indexes the instructions for candidate generation.
	byOpcode map[ir.Opcode][]ir.Value

	searchState

	// Limit bounds the number of solutions collected (0 = unlimited).
	Limit int

	// NaiveCandidates disables atom-driven candidate generation: every
	// variable enumerates the full domain (the ablation of §4.4's search
	// space pruning; see bench_test.go).
	NaiveCandidates bool

	// Cancel, when non-nil, aborts the backtracking search as soon as the
	// channel is closed: Solve returns whatever it has found so far and
	// Cancelled reports true. An aborted search is incomplete — callers must
	// not treat (or memoize) its result as a full enumeration. A split
	// search shares the channel with every branch, so one close sheds all of
	// them at their next poll.
	Cancel <-chan struct{}

	// Split caps how many independent branch searches Solve may fork at the
	// split variable's candidate list; <= 1 keeps the search fully
	// sequential. The split variable is chosen by solveSplit: the widest
	// relevant, unbound variable the sequential search can reach on its
	// forced prefix (ties broken by problem variable order). Splitting
	// preserves the sequential solver's output exactly (solutions, order,
	// dedup precedence and aggregated step count) — see solveSplit.
	Split int

	// Run schedules the branch tasks of a split search; nil runs them inline
	// on the calling goroutine. Runners must execute every task even when
	// saturated (the detection engine's runner has the submitting worker help
	// run unclaimed branches, so scheduling cannot deadlock the pool).
	Run TaskRunner

	// ResplitDepth is the remaining re-split budget: how many more times a
	// branch of this search may fork its unprocessed candidate chunk into
	// sub-branches when Idle reports spare pool capacity. 0 (the default)
	// keeps branches strictly sequential after the root fork. Each fork
	// level hands its sub-branches a budget one lower, so total branch
	// nesting is bounded at 1+ResplitDepth regardless of how often the pool
	// goes idle.
	ResplitDepth int

	// Idle, consulted only when ResplitDepth > 0, reports whether the branch
	// scheduler has spare capacity right now. It is a heuristic probe (the
	// answer may be stale by the time sub-branches are queued); correctness
	// never depends on it because merged output is byte-identical to the
	// sequential search whether or not a re-split fires. nil never re-splits.
	Idle func() bool

	// splitVar records the variable the last Solve forked at ("" when the
	// search ran sequentially). Root-only: branch solvers never set it.
	splitVar string
}

type collectResult struct {
	ok       bool
	bindings []binding
}

type binding struct {
	name string
	val  ir.Value
}

// NewSolver prepares a solver for one function.
func NewSolver(prob *Problem, info *analysis.Info) *Solver {
	s := &Solver{prob: prob, info: info}
	s.assign = map[string]ir.Value{}
	for _, arg := range info.Fn.Args {
		s.domain = append(s.domain, arg)
	}
	seenConst := map[string]bool{}
	for _, in := range info.Instrs {
		if in.HasResult() {
			s.domain = append(s.domain, in)
		}
		for _, op := range in.Ops {
			if c, ok := op.(*ir.Const); ok {
				key := c.Ty.String() + ":" + c.Operand()
				if !seenConst[key] {
					seenConst[key] = true
					s.domain = append(s.domain, c)
				}
			}
		}
	}
	// Terminators and stores are values too for constraint purposes (they
	// can be bound even though they produce no SSA result).
	for _, in := range s.info.Instrs {
		if !in.HasResult() {
			s.domain = append(s.domain, in)
		}
	}
	s.byOpcode = map[ir.Opcode][]ir.Value{}
	for _, in := range info.Instrs {
		s.byOpcode[in.Op] = append(s.byOpcode[in.Op], in)
	}
	s.attachIndex(indexFor(prob))
	return s
}

// attachIndex installs the static index and resets the evaluation cache.
func (s *Solver) attachIndex(idx *probIndex) {
	s.idx = idx
	s.nodeVal = make([]tribool, len(idx.nodes))
	s.nodeKnown = make([]bool, len(idx.nodes))
}

// bind assigns a variable and invalidates affected node caches.
func (s *Solver) bind(v string, val ir.Value) {
	if s.cancelled {
		// Search effort spent after the abort was observed. The per-candidate
		// cancel checks keep this at zero; tracked so tests can pin it.
		s.lateBinds++
	}
	s.assign[v] = val
	if vid, ok := s.idx.varID[v]; ok {
		for _, id := range s.idx.varNodes[vid] {
			s.nodeKnown[id] = false
		}
	}
}

// unbind removes a variable assignment and invalidates node caches.
func (s *Solver) unbind(v string) {
	delete(s.assign, v)
	if vid, ok := s.idx.varID[v]; ok {
		for _, id := range s.idx.varNodes[vid] {
			s.nodeKnown[id] = false
		}
	}
}

// Solve enumerates all solutions. With Split > 1 the search forks at the
// split variable's candidate list into independent branch searches (scheduled
// through Run, optionally re-splitting under ResplitDepth); the result is
// byte-identical to the sequential search either way.
func (s *Solver) Solve() []Solution {
	s.sols = nil
	s.solKeys = map[string]bool{}
	s.splitVar = ""
	s.resplits = 0
	if !s.solveSplit() {
		s.step(0)
	}
	return s.sols
}

// SplitVar reports the variable the last Solve forked at, or "" when the
// search ran sequentially (splitting off, inapplicable, or fewer than two
// candidates at the split point).
func (s *Solver) SplitVar() string { return s.splitVar }

// Resplits reports how many branch re-split forks the last Solve performed
// across all (recursively merged) branches. Always 0 when ResplitDepth is 0.
func (s *Solver) Resplits() int { return s.resplits }

// inlineRunner runs split branch tasks on the calling goroutine when no
// pool-backed TaskRunner is configured.
func inlineRunner(n int, task func(i int)) {
	for i := 0; i < n; i++ {
		task(i)
	}
}

// solveSplit attempts the branch-split search. The split variable is the
// widest splittable point the sequential search can reach deterministically:
// solveSplit replays step(0)'s forced prefix — variables that are pre-bound
// (verify and continue), irrelevant (bound Unconstrained), or mono-candidate
// (width ≤ 1, so the search walks straight through them) — and stops at the
// first variable whose candidate list has two or more entries. Every variable
// on the prefix has width ≤ 1, so that frontier variable is exactly the
// relevant, unbound variable with the widest candidate list among those the
// search visits on a single path; ties cannot arise, and problem variable
// order decides which multi-candidate variable is reached first. Splitting
// any deeper would require duplicating the enumeration above it across
// branches, which breaks the byte-identical step count — so the frontier is
// both the widest and the only sound split point.
//
// The frontier's candidate list is partitioned into up to Split contiguous
// chunks, each searched by a forked branch solver, and the branch outcomes
// are merged serially in candidate order — the exact order the sequential
// search visits — so solutions, dedup precedence and the aggregated step
// count are byte-identical to step(0). It reports false (restoring the
// search state) when splitting is off or cannot apply: a Limit-bounded
// search (its global early-exit cannot be decomposed), or a search whose
// forced prefix ends — at a dead end handled inline, or at finish — before
// any variable with two candidates.
func (s *Solver) solveSplit() bool {
	if s.Split <= 1 || s.Limit > 0 || len(s.prob.Vars) == 0 {
		return false
	}

	// Replay the forced prefix on the root solver, recording our own
	// bindings so state is restored however the walk ends. Pre-bound
	// variables are verified but never bound here, exactly like step's
	// already-bound path.
	var walked []string
	restore := func() {
		for i := len(walked) - 1; i >= 0; i-- {
			s.unbind(walked[i])
		}
	}
	// dead mirrors the sequential dead-end accounting: reaching depth k
	// costs k+1 steps (one per step() entry on the path), after which the
	// single-path search unwinds with no solutions.
	dead := func(depth int) bool {
		s.Steps += depth + 1
		restore()
		return true
	}

	for depth := 0; depth < len(s.prob.Vars); depth++ {
		v := s.prob.Vars[depth]
		if _, already := s.assign[v]; already {
			if s.evalNode(s.idx.root) == triFalse {
				return dead(depth)
			}
			continue
		}
		vid, ok := s.idx.varID[v]
		if !ok || !s.relevantID(s.idx.root, vid) {
			s.bind(v, Unconstrained)
			walked = append(walked, v)
			continue
		}
		cands := s.candidateList(v)
		switch {
		case len(cands) == 0:
			return dead(depth)
		case len(cands) == 1:
			// Width 1: the sequential search tries the lone candidate and
			// either walks into its subtree or unwinds the whole search.
			s.bind(v, cands[0])
			walked = append(walked, v)
			if s.evalNode(s.idx.root) == triFalse {
				return dead(depth)
			}
			continue
		}

		// Frontier found: v is the widest relevant, unbound variable on the
		// path. Entering depths 0..depth cost one step each, exactly like
		// the sequential step() entries; each branch then counts only the
		// subtrees of its candidates.
		s.Steps += depth + 1
		s.splitVar = v

		n := s.Split
		if n > len(cands) {
			n = len(cands)
		}
		branches := make([]*Solver, n)
		for bi := range branches {
			b := s.fork()
			b.Split, b.Run, b.Idle = s.Split, s.Run, s.Idle
			b.ResplitDepth = s.ResplitDepth
			branches[bi] = b
		}
		run := s.Run
		if run == nil {
			run = inlineRunner
		}
		run(n, func(bi int) {
			lo, hi := bi*len(cands)/n, (bi+1)*len(cands)/n
			branches[bi].searchChunk(depth, v, cands[lo:hi])
		})
		s.merge(branches)
		restore()
		return true
	}

	// The forced prefix reached the end of the variable list: the whole
	// search is a single path with nothing to fork. Fall back to the
	// sequential search from a clean slate.
	restore()
	return false
}

// searchChunk runs one branch's contiguous slice of the split variable's
// candidates, in candidate order — the body of the sequential candidate loop
// restricted to the chunk. Before each candidate it may re-split: when at
// least two candidates remain unprocessed, re-split budget is left, and the
// pool reports idle capacity, the rest of the chunk forks into sub-branches
// (merged back in candidate order, so the branch's outcome is unchanged).
func (s *Solver) searchChunk(k int, v string, cands []ir.Value) {
	for i, c := range cands {
		if s.cancelled {
			return
		}
		// Re-split branches can be much smaller than the 64-step polling
		// interval in step(), so a branch-local Steps counter alone may never
		// observe Cancel. One non-blocking poll per frontier candidate keeps
		// cancellation latency bounded regardless of how finely the chunk was
		// re-split, at a cost proportional to the frontier width only.
		if s.Cancel != nil {
			select {
			case <-s.Cancel:
				s.cancelled = true
				return
			default:
			}
		}
		if len(cands)-i >= 2 && s.ResplitDepth > 0 && s.Idle != nil && s.Idle() {
			s.forkChunk(k, v, cands[i:])
			return
		}
		s.tryCandidate(k, v, c)
	}
}

// forkChunk forks the given candidate slice into up to Split sub-branches
// with a re-split budget one lower, schedules them through Run, and merges
// them back into s in candidate order — the root split's discipline applied
// recursively, so steps, ledgers, dedup precedence and cancellation
// aggregate exactly as if s had searched the slice itself.
func (s *Solver) forkChunk(k int, v string, cands []ir.Value) {
	n := s.Split
	if n > len(cands) {
		n = len(cands)
	}
	s.resplits++
	branches := make([]*Solver, n)
	for bi := range branches {
		b := s.fork()
		b.Split, b.Run, b.Idle = s.Split, s.Run, s.Idle
		b.ResplitDepth = s.ResplitDepth - 1
		branches[bi] = b
	}
	run := s.Run
	if run == nil {
		run = inlineRunner
	}
	run(n, func(bi int) {
		lo, hi := bi*len(cands)/n, (bi+1)*len(cands)/n
		branches[bi].searchChunk(k, v, cands[lo:hi])
	})
	s.merge(branches)
}

// fork clones the solver for one branch of a split search. The immutable
// parts (problem, index, analysis info, domain) are shared; the assignment
// and node-evaluation cache are copied (they reflect the pre-fork state);
// the solution set, collect memo and step counter start fresh so the branch
// owns its mutable state exclusively. Scheduling configuration (Split, Run,
// Idle, ResplitDepth) is deliberately not inherited here: the forking sites
// set it explicitly, decrementing the re-split budget per nesting level, so
// branch fan-out stays bounded no matter how often the pool reports idle.
// Deadlock is impossible even with re-splitting because runners make the
// forking worker help execute unclaimed branch tasks: a nested fork waits
// only on work that is already running, never on pool capacity.
func (s *Solver) fork() *Solver {
	b := &Solver{
		prob: s.prob, info: s.info, idx: s.idx,
		domain: s.domain, byOpcode: s.byOpcode,
		Limit: s.Limit, NaiveCandidates: s.NaiveCandidates, Cancel: s.Cancel,
	}
	b.assign = make(map[string]ir.Value, len(s.assign))
	for k, val := range s.assign {
		b.assign[k] = val
	}
	b.nodeVal = append([]tribool(nil), s.nodeVal...)
	b.nodeKnown = append([]bool(nil), s.nodeKnown...)
	b.solKeys = map[string]bool{}
	b.collectLedger = map[string]int{}
	return b
}

// merge joins branch outcomes back into the parent solver, serially, in
// branch (candidate) order. Solutions are re-deduplicated globally: a
// solution rediscovered across branches keeps its first — lowest-candidate —
// occurrence, exactly what the sequential search's running solKeys would
// keep. Cancellation ORs (one aborted branch makes the whole solve
// incomplete, so callers must not memoize it), and step counters aggregate
// with each unique collect resolution charged once via the branch ledgers.
// The discipline is recursive: when the parent is itself a branch (a
// re-split merging its sub-branches), keys the parent already paid for are
// subtracted too, and first occurrences are recorded into the parent's own
// ledger so the next merge level dedups across them as well — the net effect
// at the root is each unique key charged exactly once, which is what the
// sequential search's shared collect memo does.
func (s *Solver) merge(branches []*Solver) {
	seenCollect := map[string]bool{}
	for _, b := range branches {
		s.Steps += b.Steps
		s.resplits += b.resplits
		s.lateBinds += b.lateBinds
		for key, steps := range b.collectLedger {
			charged := seenCollect[key]
			if !charged && s.collectLedger != nil {
				_, charged = s.collectLedger[key]
			}
			if charged {
				s.Steps -= steps
			} else {
				seenCollect[key] = true
				if s.collectLedger != nil {
					s.collectLedger[key] = steps
				}
			}
		}
		if b.cancelled {
			s.cancelled = true
		}
		for _, sol := range b.sols {
			key := canonicalKey(sol)
			if s.solKeys[key] {
				continue
			}
			s.solKeys[key] = true
			s.sols = append(s.sols, sol)
		}
	}
}

// Cancelled reports whether the last Solve was aborted through Cancel before
// exhausting the search space.
func (s *Solver) Cancelled() bool { return s.cancelled }

func (s *Solver) limitReached() bool {
	return s.Limit > 0 && len(s.sols) >= s.Limit
}

func (s *Solver) step(k int) {
	if s.cancelled || s.limitReached() {
		return
	}
	s.Steps++
	// Poll Cancel every 64 steps: cheap enough to be invisible on the hot
	// path, frequent enough to shed a multi-millisecond solve promptly.
	if s.Cancel != nil && s.Steps&63 == 0 {
		select {
		case <-s.Cancel:
			s.cancelled = true
			return
		default:
		}
	}
	if k == len(s.prob.Vars) {
		s.finish()
		return
	}
	v := s.prob.Vars[k]
	if _, already := s.assign[v]; already {
		// Bound through an alias earlier; just verify and continue.
		if s.evalNode(s.idx.root) != triFalse {
			s.step(k + 1)
		}
		return
	}
	vid := s.idx.varID[v]
	if !s.relevantID(s.idx.root, vid) {
		// Every occurrence of v lies under an already-satisfied
		// disjunction: its value cannot affect the formula. Bind the
		// canonical marker so equivalent solutions collapse.
		s.bind(v, Unconstrained)
		s.step(k + 1)
		s.unbind(v)
		return
	}
	for _, c := range s.candidateList(v) {
		s.tryCandidate(k, v, c)
		// Observe the flag set by the periodic poll deeper in the recursion:
		// without this, a cancel detected at depth d keeps enumerating
		// siblings through bind/eval work at every frame on the way out.
		if s.cancelled || s.limitReached() {
			return
		}
	}
}

// candidateList returns every value variable v must be drawn from under the
// current assignment: the atom-derived candidate set when it is bounded, the
// full domain otherwise (or always, under the NaiveCandidates ablation).
func (s *Solver) candidateList(v string) []ir.Value {
	if !s.NaiveCandidates {
		if cands, bounded := s.candidates(s.prob.Root, v); bounded {
			return cands
		}
	}
	return s.domain
}

// tryCandidate binds v to c, recurses into the next variable when the
// formula stays satisfiable, and unbinds. It is the per-candidate body of
// both the sequential loop (step) and the branch chunks of a split search —
// one copy, so the two cannot drift apart.
func (s *Solver) tryCandidate(k int, v string, c ir.Value) {
	s.bind(v, c)
	if s.evalNode(s.idx.root) != triFalse {
		s.step(k + 1)
	}
	s.unbind(v)
}

// evalNode is the cached three-valued evaluation of a formula node under the
// current partial assignment. Collects never prune the partial search; they
// are resolved in evalFinal.
func (s *Solver) evalNode(id int) tribool {
	if s.nodeKnown[id] {
		return s.nodeVal[id]
	}
	var out tribool
	switch t := s.idx.nodes[id].(type) {
	case *NAnd:
		out = triTrue
		for _, kid := range s.idx.kids[id] {
			switch s.evalNode(kid) {
			case triFalse:
				out = triFalse
			case triUnknown:
				if out != triFalse {
					out = triUnknown
				}
			}
			if out == triFalse {
				break
			}
		}
	case *NOr:
		out = triFalse
		for _, kid := range s.idx.kids[id] {
			switch s.evalNode(kid) {
			case triTrue:
				out = triTrue
			case triUnknown:
				if out != triTrue {
					out = triUnknown
				}
			}
			if out == triTrue {
				break
			}
		}
	case *NAtom:
		out = s.evalAtom(t, false)
	case *NCollect:
		out = triUnknown
	}
	s.nodeKnown[id] = true
	s.nodeVal[id] = out
	return out
}

// relevantID reports whether variable vid can still influence the truth of
// the formula under the current partial assignment. Three-valued evaluation
// is monotone in assignments — decided nodes (true or false) stay decided —
// so only Unknown regions of the formula can be affected by the variable.
func (s *Solver) relevantID(id int, vid int) bool {
	if !s.idx.varIn[id][vid] {
		return false
	}
	if s.evalNode(id) != triUnknown {
		return false
	}
	switch s.idx.nodes[id].(type) {
	case *NAnd, *NOr:
		for _, kid := range s.idx.kids[id] {
			if s.relevantID(kid, vid) {
				return true
			}
		}
		return false
	case *NAtom, *NCollect:
		return true
	}
	return false
}

// finish validates the full assignment including collects, then records the
// solution. Collect bindings are installed into the live assignment while
// the remainder of the formula evaluates, so list atomics following a
// collect (e.g. a kernel over collected reads) can see them.
func (s *Solver) finish() {
	// Canonicalize: variables whose assignment no longer influences the
	// formula (their occurrences all sit in decided subformulas) are reset
	// to the Unconstrained marker so equivalent solutions collapse. The
	// original values are restored before returning to the search.
	saved := map[string]ir.Value{}
	for _, v := range s.prob.Vars {
		val, bound := s.assign[v]
		if !bound || val == Unconstrained {
			continue
		}
		s.unbind(v)
		if s.relevantID(s.idx.root, s.idx.varID[v]) {
			s.bind(v, val)
		} else {
			saved[v] = val
			s.bind(v, Unconstrained)
		}
	}
	restore := func() {
		for k, val := range saved {
			s.bind(k, val)
		}
	}

	extra := map[string]ir.Value{}
	ok := s.evalFinal(s.prob.Root, extra)
	for k := range extra {
		delete(s.assign, k)
	}
	if ok != triTrue {
		restore()
		return
	}
	sol := Solution{}
	for k, v := range s.assign {
		sol[k] = v
	}
	for k, v := range extra {
		sol[k] = v
	}
	restore()
	// Deduplicate identical solutions arising from overlapping disjunctions.
	key := canonicalKey(sol)
	if s.solKeys[key] {
		return
	}
	s.solKeys[key] = true
	s.sols = append(s.sols, sol)
}

// canonicalKey renders a solution as a stable string for deduplication.
func canonicalKey(sol Solution) string {
	names := make([]string, 0, len(sol))
	for n := range sol {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('=')
		v := sol[n]
		if c, ok := v.(*ir.Const); ok {
			b.WriteString(c.Ty.String())
			b.WriteByte(':')
		}
		b.WriteString(v.Operand())
		b.WriteByte(';')
	}
	return b.String()
}

func sameSolution(a, b Solution) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !sameValue(v, w) {
			return false
		}
	}
	return true
}

// sameValue compares values; constants compare by type and payload.
func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, ok1 := a.(*ir.Const)
	cb, ok2 := b.(*ir.Const)
	if !ok1 || !ok2 || !ca.Ty.Equal(cb.Ty) {
		return false
	}
	return ca.Null == cb.Null && ca.IntVal == cb.IntVal && ca.FloatVal == cb.FloatVal
}

// --- three-valued evaluation (uncached walk used by final validation) ---

// eval evaluates the formula under the current partial assignment. When
// final is true, collects and list atomics are fully resolved.
func (s *Solver) eval(n Node, final bool) tribool {
	switch t := n.(type) {
	case *NAnd:
		out := triTrue
		for _, k := range t.Kids {
			switch s.eval(k, final) {
			case triFalse:
				return triFalse
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	case *NOr:
		out := triFalse
		for _, k := range t.Kids {
			switch s.eval(k, final) {
			case triTrue:
				return triTrue
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	case *NAtom:
		return s.evalAtom(t, final)
	case *NCollect:
		// Collects never prune the partial search; they are resolved in
		// evalFinal.
		return triUnknown
	}
	return triUnknown
}

// evalFinal evaluates with all regular variables assigned, resolving
// collect nodes and binding their solutions into extra.
func (s *Solver) evalFinal(n Node, extra map[string]ir.Value) tribool {
	switch t := n.(type) {
	case *NAnd:
		for _, k := range t.Kids {
			if s.evalFinal(k, extra) != triTrue {
				return triFalse
			}
		}
		return triTrue
	case *NOr:
		for _, k := range t.Kids {
			if s.evalFinal(k, extra) == triTrue {
				return triTrue
			}
		}
		return triFalse
	case *NAtom:
		return s.evalAtom(t, true)
	case *NCollect:
		return s.resolveCollect(t, extra)
	}
	return triFalse
}

// resolveCollect enumerates all solutions of the collect body and binds the
// indexed instances. Results are memoized on the binding signature of the
// body's outer variables: identical outer contexts resolve identically.
func (s *Solver) resolveCollect(c *NCollect, extra map[string]ir.Value) tribool {
	ci := s.idx.collectProto[c]
	if ci == nil {
		ci = collectInfoFor(c)
	}
	if ci == nil {
		return triFalse
	}

	// Memo lookup.
	var keyB strings.Builder
	fmt.Fprintf(&keyB, "%p|", c)
	for _, v := range ci.protoVars {
		if val, bound := s.assign[v]; bound {
			keyB.WriteString(v)
			keyB.WriteByte('=')
			if cst, ok := val.(*ir.Const); ok {
				keyB.WriteString(cst.Ty.String())
				keyB.WriteByte(':')
			}
			keyB.WriteString(val.Operand())
			keyB.WriteByte(';')
		}
	}
	key := keyB.String()
	if s.collectMemo == nil {
		s.collectMemo = map[string]*collectResult{}
	}
	if res, hit := s.collectMemo[key]; hit {
		if !res.ok {
			return triFalse
		}
		for _, b := range res.bindings {
			extra[b.name] = b.val
			s.assign[b.name] = b.val
		}
		return triTrue
	}
	memo := &collectResult{}
	s.collectMemo[key] = memo

	// Variables already bound by the outer assignment stay fixed; the rest
	// are solved for.
	var free []string
	freeSet := map[string]bool{}
	for _, v := range ci.protoVars {
		if _, bound := s.assign[v]; !bound {
			free = append(free, v)
			freeSet[v] = true
		}
	}
	sub := &Solver{
		prob:     &Problem{Name: "collect", Root: ci.proto, Vars: free},
		info:     s.info,
		domain:   s.domain,
		byOpcode: s.byOpcode,
		Cancel:   s.Cancel,
	}
	sub.assign = map[string]ir.Value{}
	sub.attachIndex(buildIndex(ci.proto, free))
	for k, v := range s.assign {
		sub.assign[k] = v
	}
	subSols := sub.Solve()
	if sub.cancelled {
		s.cancelled = true
	}
	s.lateBinds += sub.lateBinds
	if debugCollect {
		fmt.Printf("resolveCollect: free=%v assign-keys=%d subSols=%d\n", free, len(s.assign), len(subSols))
		for i, ss := range subSols {
			fmt.Printf("  sub %d: %s\n", i, ss)
		}
	}
	s.Steps += sub.Steps
	if s.collectLedger != nil {
		// Branch search: remember what this key's first resolution cost so
		// the split merge can de-duplicate charges across branches.
		s.collectLedger[key] = sub.Steps
	}
	if len(subSols) < c.Min {
		return triFalse
	}
	// Deterministic order: by position of the first free variable's value in
	// the textual rendering.
	sort.SliceStable(subSols, func(i, j int) bool {
		return solutionKey(subSols[i], free) < solutionKey(subSols[j], free)
	})
	for j, sol := range subSols {
		inst, err := c.Instantiate(j)
		if err != nil {
			return triFalse
		}
		var instVars []string
		collectVars(inst, map[string]bool{}, &instVars)
		var protoOrdered []string
		collectVars(ci.proto, map[string]bool{}, &protoOrdered)
		if len(instVars) != len(protoOrdered) {
			return triFalse
		}
		for i, pv := range protoOrdered {
			if v, ok := sol[pv]; ok && freeSet[pv] {
				extra[instVars[i]] = v
				s.assign[instVars[i]] = v
				memo.bindings = append(memo.bindings, binding{instVars[i], v})
			}
		}
	}
	memo.ok = true
	return triTrue
}

func solutionKey(sol Solution, vars []string) string {
	var b strings.Builder
	for _, v := range vars {
		if val, ok := sol[v]; ok {
			b.WriteString(val.Operand())
			b.WriteString("|")
		}
	}
	return b.String()
}

// --- candidate generation ---

// candidates derives a sound candidate set for variable v from the formula:
// any satisfying assignment must draw v from the returned set. AND nodes may
// use any child's set (the tightest is chosen); OR nodes need every child to
// produce one.
func (s *Solver) candidates(n Node, v string) ([]ir.Value, bool) {
	switch t := n.(type) {
	case *NAnd:
		best := []ir.Value(nil)
		found := false
		for _, k := range t.Kids {
			if set, ok := s.candidates(k, v); ok {
				if !found || len(set) < len(best) {
					best = set
					found = true
				}
			}
		}
		return best, found
	case *NOr:
		var union []ir.Value
		seen := map[ir.Value]bool{}
		for _, k := range t.Kids {
			set, ok := s.candidates(k, v)
			if !ok {
				return nil, false
			}
			for _, c := range set {
				if !seen[c] {
					seen[c] = true
					union = append(union, c)
				}
			}
		}
		return union, true
	case *NAtom:
		return s.atomCandidates(t, v)
	}
	return nil, false
}

func (s *Solver) atomCandidates(t *NAtom, v string) ([]ir.Value, bool) {
	pos := -1
	for i, a := range t.Args {
		if a == v {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, false
	}
	val := func(i int) (ir.Value, bool) {
		x, ok := s.assign[t.Args[i]]
		return x, ok
	}
	switch t.Kind {
	case idl.AtomOpcodeIs:
		op, ok := opcodeFor(t.Opcode)
		if !ok {
			return nil, true // unknown opcode: empty set
		}
		return s.byOpcode[op], true

	case idl.AtomClassIs:
		switch t.ClassName {
		case "argument":
			out := make([]ir.Value, 0, len(s.info.Fn.Args))
			for _, a := range s.info.Fn.Args {
				out = append(out, a)
			}
			return out, true
		case "constant":
			var out []ir.Value
			for _, d := range s.domain {
				if _, ok := d.(*ir.Const); ok {
					out = append(out, d)
				}
			}
			return out, true
		}
		return nil, false

	case idl.AtomTypeIs:
		var out []ir.Value
		for _, d := range s.domain {
			if s.evalTypeIs(t, d) {
				out = append(out, d)
			}
		}
		return out, true

	case idl.AtomSameAs:
		if t.Negated {
			return nil, false
		}
		other := 1 - pos
		if x, ok := val(other); ok {
			return []ir.Value{x}, true
		}
		return nil, false

	case idl.AtomArgOf:
		// Args[0] is the operand, Args[1] the instruction.
		if pos == 0 {
			if y, ok := val(1); ok {
				if yi, isInstr := y.(*ir.Instruction); isInstr {
					if op := yi.OperandAt(t.ArgIndex); op != nil {
						return []ir.Value{op}, true
					}
				}
				return nil, true
			}
			return nil, false
		}
		if x, ok := val(0); ok {
			var out []ir.Value
			for _, u := range s.usersOf(x) {
				if op := u.OperandAt(t.ArgIndex); op != nil && sameValue(op, x) {
					out = append(out, u)
				}
			}
			return out, true
		}
		return nil, false

	case idl.AtomEdge:
		other := 1 - pos
		x, ok := val(other)
		if !ok {
			return nil, false
		}
		switch t.Edge {
		case idl.EdgeDataFlow:
			if pos == 1 { // v is the user
				var out []ir.Value
				for _, u := range s.usersOf(x) {
					out = append(out, u)
				}
				return out, true
			}
			if xi, isInstr := x.(*ir.Instruction); isInstr { // v is an operand of x
				return append([]ir.Value(nil), xi.Ops...), true
			}
			return nil, true
		case idl.EdgeControlFlow:
			xi, isInstr := x.(*ir.Instruction)
			if !isInstr {
				return nil, true
			}
			var out []ir.Value
			if pos == 1 {
				for _, in := range s.info.Successors(xi) {
					out = append(out, in)
				}
			} else {
				for _, in := range s.info.Predecessors(xi) {
					out = append(out, in)
				}
			}
			return out, true
		default:
			return nil, false
		}

	case idl.AtomReachesPhi:
		// Args: value, phi, from-branch.
		phiV, phiBound := val(1)
		switch pos {
		case 0:
			if phiBound {
				if phi, ok := phiV.(*ir.Instruction); ok && phi.Op == ir.OpPhi {
					return append([]ir.Value(nil), phi.Ops...), true
				}
				return nil, true
			}
			return nil, false
		case 1:
			if x, ok := val(0); ok {
				var out []ir.Value
				for _, u := range s.usersOf(x) {
					if u.Op == ir.OpPhi {
						out = append(out, u)
					}
				}
				// Values reaching phis include constants, which have no
				// tracked users; fall back to scanning all phis then.
				if _, isConst := x.(*ir.Const); isConst {
					out = out[:0]
					for _, in := range s.byOpcode[ir.OpPhi] {
						out = append(out, in)
					}
				}
				return out, true
			}
			return nil, false
		case 2:
			if phiBound {
				if phi, ok := phiV.(*ir.Instruction); ok && phi.Op == ir.OpPhi {
					var out []ir.Value
					for _, ib := range phi.Incoming {
						if term := ib.Terminator(); term != nil {
							out = append(out, term)
						}
					}
					return out, true
				}
				return nil, true
			}
			return nil, false
		}
	}
	return nil, false
}

// usersOf returns instructions using x; constants are matched semantically.
func (s *Solver) usersOf(x ir.Value) []*ir.Instruction {
	if _, isConst := x.(*ir.Const); !isConst {
		return s.info.Users(x)
	}
	var out []*ir.Instruction
	for _, in := range s.info.Instrs {
		for _, op := range in.Ops {
			if sameValue(op, x) {
				out = append(out, in)
				break
			}
		}
	}
	return out
}

// debugCollect enables tracing of collect resolution (tests only).
var debugCollect bool
