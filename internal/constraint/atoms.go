package constraint

import (
	"repro/internal/idl"
	"repro/internal/ir"
)

// OpcodeByName maps an IDL opcode spelling ("store", "fmul", "branch", ...)
// to its IR opcode. Signature derivation in the similarity prescreen uses it
// to turn `is <opcode> instruction` atoms into histogram requirements.
func OpcodeByName(name string) (ir.Opcode, bool) { return opcodeFor(name) }

// opcodeFor maps IDL opcode spellings to IR opcodes.
func opcodeFor(name string) (ir.Opcode, bool) {
	switch name {
	case "store":
		return ir.OpStore, true
	case "load":
		return ir.OpLoad, true
	case "return":
		return ir.OpRet, true
	case "branch":
		return ir.OpBr, true
	case "add":
		return ir.OpAdd, true
	case "sub":
		return ir.OpSub, true
	case "mul":
		return ir.OpMul, true
	case "sdiv":
		return ir.OpSDiv, true
	case "srem":
		return ir.OpSRem, true
	case "fadd":
		return ir.OpFAdd, true
	case "fsub":
		return ir.OpFSub, true
	case "fmul":
		return ir.OpFMul, true
	case "fdiv":
		return ir.OpFDiv, true
	case "select":
		return ir.OpSelect, true
	case "gep":
		return ir.OpGEP, true
	case "icmp":
		return ir.OpICmp, true
	case "fcmp":
		return ir.OpFCmp, true
	case "phi":
		return ir.OpPhi, true
	case "sext":
		return ir.OpSExt, true
	case "zext":
		return ir.OpZExt, true
	case "trunc":
		return ir.OpTrunc, true
	case "sitofp":
		return ir.OpSIToFP, true
	case "fptosi":
		return ir.OpFPToSI, true
	case "fpext":
		return ir.OpFPExt, true
	case "fptrunc":
		return ir.OpFPTrunc, true
	case "call":
		return ir.OpCall, true
	case "alloca":
		return ir.OpAlloca, true
	}
	return ir.OpInvalid, false
}

// evalAtom evaluates an atomic predicate under the current assignment. When
// any referenced variable is unbound the result is triUnknown; list atomics
// only evaluate in the final phase.
func (s *Solver) evalAtom(t *NAtom, final bool) tribool {
	vals := make([]ir.Value, len(t.Args))
	for i, name := range t.Args {
		v, ok := s.assign[name]
		if !ok {
			return triUnknown
		}
		vals[i] = v
	}
	switch t.Kind {
	case idl.AtomTypeIs:
		return boolToTri(s.evalTypeIs(t, vals[0]))
	case idl.AtomClassIs:
		return boolToTri(s.evalClassIs(t, vals[0]))
	case idl.AtomOpcodeIs:
		op, ok := opcodeFor(t.Opcode)
		if !ok {
			return triFalse
		}
		in, isInstr := vals[0].(*ir.Instruction)
		return boolToTri(isInstr && in.Op == op)
	case idl.AtomSameAs:
		same := sameValue(vals[0], vals[1])
		return boolToTri(same != t.Negated)
	case idl.AtomEdge:
		return boolToTri(s.evalEdge(t, vals[0], vals[1]))
	case idl.AtomArgOf:
		in, isInstr := vals[1].(*ir.Instruction)
		if !isInstr {
			return triFalse
		}
		op := in.OperandAt(t.ArgIndex)
		return boolToTri(op != nil && sameValue(op, vals[0]))
	case idl.AtomReachesPhi:
		return boolToTri(s.evalReachesPhi(vals[0], vals[1], vals[2]))
	case idl.AtomDominates:
		return boolToTri(s.evalDominates(t, vals[0], vals[1]))
	case idl.AtomPassesThrough:
		if !final {
			return triUnknown
		}
		return boolToTri(s.evalPassesThrough(t, vals[0], vals[1], vals[2]))
	case idl.AtomKilledBy:
		if !final {
			return triUnknown
		}
		return boolToTri(s.info.AllFlowKilledBy(
			s.expandList(t.Lists[0]), s.expandList(t.Lists[1]), s.expandList(t.Lists[2])))
	case idl.AtomOperandsFrom:
		if !final {
			return triUnknown
		}
		return boolToTri(s.evalOperandsFrom(vals[0], t.Lists[0], vals[1]))
	case idl.AtomNoOpcodeBelow:
		return boolToTri(s.evalNoOpcodeBelow(t, vals[0]))
	}
	return triFalse
}

func boolToTri(b bool) tribool {
	if b {
		return triTrue
	}
	return triFalse
}

func (s *Solver) evalTypeIs(t *NAtom, v ir.Value) bool {
	ty := v.Type()
	if ty == nil {
		return false
	}
	okType := false
	switch t.TypeName {
	case "integer":
		okType = ty.IsInteger()
	case "float":
		okType = ty.IsFloat()
	case "pointer":
		okType = ty.IsPointer()
	}
	if !okType {
		return false
	}
	if t.ConstantZero {
		c, isConst := v.(*ir.Const)
		return isConst && c.IsZero()
	}
	return true
}

func (s *Solver) evalClassIs(t *NAtom, v ir.Value) bool {
	switch t.ClassName {
	case "constant":
		_, ok := v.(*ir.Const)
		return ok
	case "argument":
		_, ok := v.(*ir.Argument)
		return ok
	case "instruction":
		_, ok := v.(*ir.Instruction)
		return ok
	case "compiletime":
		// Compile time values: constants and function arguments, which are
		// fixed for the duration of any detected region.
		switch v.(type) {
		case *ir.Const, *ir.Argument:
			return true
		}
		return false
	case "unused":
		return len(s.usersOf(v)) == 0
	}
	return false
}

func (s *Solver) evalEdge(t *NAtom, x, y ir.Value) bool {
	switch t.Edge {
	case idl.EdgeDataFlow:
		yi, ok := y.(*ir.Instruction)
		if !ok {
			return false
		}
		for _, op := range yi.Ops {
			if sameValue(op, x) {
				return true
			}
		}
		return false
	case idl.EdgeControlFlow:
		xi, ok1 := x.(*ir.Instruction)
		yi, ok2 := y.(*ir.Instruction)
		return ok1 && ok2 && s.info.HasControlFlowTo(xi, yi)
	case idl.EdgeControlDominance:
		xi, ok1 := x.(*ir.Instruction)
		yi, ok2 := y.(*ir.Instruction)
		return ok1 && ok2 && s.info.Dominates(xi, yi)
	case idl.EdgeDependence:
		xi, ok1 := x.(*ir.Instruction)
		yi, ok2 := y.(*ir.Instruction)
		return ok1 && ok2 && s.info.HasDependenceEdgeTo(xi, yi)
	}
	return false
}

func (s *Solver) evalReachesPhi(v, phiV, fromV ir.Value) bool {
	phi, ok := phiV.(*ir.Instruction)
	if !ok || phi.Op != ir.OpPhi {
		return false
	}
	from, ok := fromV.(*ir.Instruction)
	if !ok || from.Op != ir.OpBr {
		return false
	}
	for i, ib := range phi.Incoming {
		if ib.Terminator() == from && sameValue(phi.Ops[i], v) {
			return true
		}
	}
	return false
}

func (s *Solver) evalDominates(t *NAtom, x, y ir.Value) bool {
	xi, ok1 := x.(*ir.Instruction)
	yi, ok2 := y.(*ir.Instruction)
	var res bool
	switch {
	case t.Flow == idl.FlowData:
		res = s.info.DataFlowDominates(x, y)
		if t.Strict {
			res = res && !sameValue(x, y)
		}
	case t.Post:
		if !ok1 || !ok2 {
			res = false
		} else if t.Strict {
			res = s.info.StrictlyPostDominates(xi, yi)
		} else {
			res = s.info.PostDominates(xi, yi)
		}
	default:
		if !ok1 || !ok2 {
			res = false
		} else if t.Strict {
			res = s.info.StrictlyDominates(xi, yi)
		} else {
			res = s.info.Dominates(xi, yi)
		}
	}
	if t.Negated {
		return !res
	}
	return res
}

func (s *Solver) evalPassesThrough(t *NAtom, from, to, via ir.Value) bool {
	if t.Flow == idl.FlowData {
		return s.info.AllDataFlowPassesThrough(from, to, via)
	}
	fi, ok1 := from.(*ir.Instruction)
	ti, ok2 := to.(*ir.Instruction)
	vi, ok3 := via.(*ir.Instruction)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return s.info.AllControlFlowPassesThrough(fi, ti, vi)
}

// expandList resolves a varlist to values. A name that is not bound expands
// to every bound variable named name[k]... (array expansion for collected
// variables); names bound directly resolve to their value.
func (s *Solver) expandList(refs []ListRef) []ir.Value {
	var out []ir.Value
	for _, r := range refs {
		if v, ok := s.assign[r.Name]; ok {
			out = append(out, v)
			continue
		}
		prefix := r.Name + "["
		for name, v := range s.assign {
			if len(name) > len(prefix) && name[:len(prefix)] == prefix {
				out = append(out, v)
			}
		}
	}
	return out
}

// evalNoOpcodeBelow checks that the region dominated by `begin` contains no
// instruction of the atom's opcode (begin itself included).
func (s *Solver) evalNoOpcodeBelow(t *NAtom, begin ir.Value) bool {
	op, ok := opcodeFor(t.Opcode)
	if !ok {
		return false
	}
	bi, isInstr := begin.(*ir.Instruction)
	if !isInstr {
		return false
	}
	for _, in := range s.info.Instrs {
		if in.Op == op && s.info.Dominates(bi, in) {
			return false
		}
	}
	return true
}

// evalOperandsFrom implements the kernel-function data-flow closure: walking
// backwards over operands from v, every path must terminate at a member of
// the list, a constant, an argument, or a value defined outside the region
// that begins at `begin` (a loop-invariant input). Inside the region only
// pure computation is allowed: loads, stores and calls fail the check.
func (s *Solver) evalOperandsFrom(v ir.Value, list []ListRef, begin ir.Value) bool {
	allowed := map[ir.Value]bool{}
	for _, av := range s.expandList(list) {
		allowed[av] = true
	}
	beginInstr, _ := begin.(*ir.Instruction)

	seen := map[ir.Value]bool{v: true}
	stack := []ir.Value{v}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if allowed[cur] {
			continue
		}
		in, isInstr := cur.(*ir.Instruction)
		if !isInstr {
			continue // constants and arguments are always permitted inputs
		}
		if cur != v && beginInstr != nil && !s.info.StrictlyDominates(beginInstr, in) {
			continue // defined outside the region: loop-invariant input
		}
		switch in.Op {
		case ir.OpLoad, ir.OpStore, ir.OpCall, ir.OpAlloca:
			return false // impure inside the kernel region
		}
		for _, op := range in.Ops {
			if !seen[op] {
				seen[op] = true
				stack = append(stack, op)
			}
		}
	}
	return true
}
