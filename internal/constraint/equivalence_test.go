package constraint

import (
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cc"
	"repro/internal/idl"
	"repro/internal/ir"
)

// The solver's two performance mechanisms — atom-driven candidate
// generation and greedy variable ordering — are optimizations only: they
// must never change the set of solutions. These tests pin that invariant
// over a corpus of programs and idioms.

var equivCorpus = []struct{ name, src string }{
	{"sum", `
double sum(double* a, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    return s;
}`},
	{"dotmax", `
double dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x[i]*y[i]; }
    return s;
}
double maxv(double* a, int n) {
    double m = 0.0;
    for (int i = 0; i < n; i++) {
        if (a[i] > m) { m = a[i]; }
    }
    return m;
}`},
	{"spmv", `
void spmv(int m, double* a, int* rowstr, int* colidx, double* z, double* r) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++) {
            d = d + a[k] * z[colidx[k]];
        }
        r[j] = d;
    }
}`},
	{"histogram", `
void histo(int* data, int* bins, int n) {
    for (int i = 0; i < n; i++) {
        bins[data[i]] += 1;
    }
}`},
	{"jacobi", `
void jacobi(double* in, double* out, int n) {
    for (int i = 1; i < n - 1; i++) {
        out[i] = (in[i-1] + in[i] + in[i+1]) / 3.0;
    }
}`},
}

func solutionSet(t *testing.T, prob *Problem, fn *ir.Function, naive bool) []string {
	t.Helper()
	solver := NewSolver(prob, analysis.Analyze(fn))
	solver.NaiveCandidates = naive
	sols := solver.Solve()
	keys := make([]string, 0, len(sols))
	for _, s := range sols {
		keys = append(keys, canonicalKey(s))
	}
	sort.Strings(keys)
	return keys
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func libraryProgram(t *testing.T) *idl.Program {
	t.Helper()
	// The full built-in library lives in internal/idioms, which imports
	// this package; these tests use a compact self-contained library
	// instead (full-library behaviour is covered by the detect tests).
	prog, err := idl.ParseProgram(equivTestLibrary)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

// TestCandidateGenerationEquivalence: indexed candidates find exactly the
// naive enumeration's solutions.
func TestCandidateGenerationEquivalence(t *testing.T) {
	prog := libraryProgram(t)
	for _, c := range equivCorpus {
		mod, err := cc.Compile(c.name, c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, top := range []string{"SimpleReduction", "SimpleLoad"} {
			prob, err := Compile(prog, top, CompileOptions{})
			if err != nil {
				t.Fatalf("%s: %v", top, err)
			}
			for _, fn := range mod.Functions {
				indexed := solutionSet(t, prob, fn, false)
				naive := solutionSet(t, prob, fn, true)
				if !equalSets(indexed, naive) {
					t.Errorf("%s/%s/%s: indexed %d solutions vs naive %d",
						c.name, top, fn.Ident, len(indexed), len(naive))
				}
			}
		}
	}
}

// TestOrderingEquivalence: greedy and appearance orderings find the same
// solutions (§4.4: ordering affects performance, not results).
func TestOrderingEquivalence(t *testing.T) {
	prog := libraryProgram(t)
	for _, c := range equivCorpus {
		mod, err := cc.Compile(c.name, c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, top := range []string{"SimpleReduction", "SimpleLoad"} {
			greedy, err := Compile(prog, top, CompileOptions{Ordering: OrderGreedy})
			if err != nil {
				t.Fatal(err)
			}
			appear, err := Compile(prog, top, CompileOptions{Ordering: OrderAppearance})
			if err != nil {
				t.Fatal(err)
			}
			for _, fn := range mod.Functions {
				a := solutionSet(t, greedy, fn, false)
				b := solutionSet(t, appear, fn, false)
				if !equalSets(a, b) {
					t.Errorf("%s/%s/%s: greedy %d vs appearance %d solutions",
						c.name, top, fn.Ident, len(a), len(b))
				}
			}
		}
	}
}

// equivTestLibrary is a compact self-contained pair of constraints used by
// the equivalence tests: a canonical reduction skeleton and a bare
// load-at-gep shape. They produce several solutions on the corpus, which
// is what makes set equality a meaningful check.
const equivTestLibrary = `
Constraint SimpleLoad
( {value} is load instruction and
  {address} is first argument of {value} and
  {address} is gep instruction and
  {base} is first argument of {address} and
  {base} is pointer )
End

Constraint SimpleReduction
( {acc} is phi instruction and
  {acc} is float and
  {init} reaches phi node {acc} from {pre} and
  {next} reaches phi node {acc} from {back} and
  {pre} is not the same as {back} and
  {next} is fadd instruction and
  ( {acc} is first argument of {next} or
    {acc} is second argument of {next} ) )
End
`
